// Processes: the OS functionalities of §3.4 and §4.4 end to end — fork
// with copy-on-write cloning, shared libraries with CVT-relative static
// data, memory-mapped files, and swapping under memory pressure.
//
// Run with: go run ./examples/processes
package main

import (
	"fmt"
	"log"

	"vbi/internal/addr"
	"vbi/internal/core"
	"vbi/internal/mtl"
	"vbi/internal/osmodel"
	"vbi/internal/prop"
)

func main() {
	m := mtl.NewSimple(mtl.Config{DelayedAlloc: true}, 512<<20)
	sys := core.NewSystem(m)
	os := osmodel.NewVBIOS(sys)

	// --- fork + copy-on-write (§4.4) ---
	parent := os.CreateProcess()
	cpuP := core.NewCore(sys)
	cpuP.SwitchClient(parent.Client)
	idx, _, err := os.RequestVB(parent, 64<<10, 0)
	if err != nil {
		log.Fatal(err)
	}
	must(cpuP.Store(core.VAddr{Index: idx, Offset: 0}, []byte("inherited state")))

	child, err := os.Fork(parent)
	if err != nil {
		log.Fatal(err)
	}
	cpuC := core.NewCore(sys)
	cpuC.SwitchClient(child.Client)
	buf := make([]byte, 15)
	must(cpuC.Load(core.VAddr{Index: idx, Offset: 0}, buf))
	fmt.Printf("child sees parent data at the same CVT index: %q\n", buf)
	fmt.Printf("copy-on-write copies so far: %d (sharing, not copying)\n", m.Stats.COWCopies)

	must(cpuC.Store(core.VAddr{Index: idx, Offset: 0}, []byte("child's own data")))
	must(cpuP.Load(core.VAddr{Index: idx, Offset: 0}, buf))
	fmt.Printf("after the child writes, parent still reads: %q (COW copies: %d)\n\n",
		buf, m.Stats.COWCopies)

	// --- shared library with +1 CVT-relative static data (§4.4) ---
	lib := addr.MakeVBUID(addr.Size128KB, 4000)
	must(sys.EnableVB(lib, prop.Code|prop.ReadOnly))
	codeIdx, err := os.LoadLibrary(parent, lib, 64<<10)
	if err != nil {
		log.Fatal(err)
	}
	ref := core.VAddr{Index: codeIdx, Offset: 0}
	must(cpuP.Store(ref.Rel(1), []byte("per-process statics")))
	fmt.Printf("library code at CVT[%d] (shared), statics at CVT[%d] (private)\n",
		codeIdx, codeIdx+1)
	fmt.Printf("library refcount: %d process(es) attached\n\n", m.RefCount(lib))

	// --- memory-mapped file (§3.4) ---
	fileVB := addr.MakeVBUID(addr.Size128KB, 4001)
	must(sys.EnableVB(fileVB, prop.MappedFile))
	must(m.AttachFile(fileVB, []byte("config_version=1\nthreads=8\n")))
	fIdx, err := os.AttachShared(parent, fileVB, core.PermRW)
	if err != nil {
		log.Fatal(err)
	}
	line := make([]byte, 16)
	must(cpuP.Load(core.VAddr{Index: fIdx, Offset: 0}, line))
	fmt.Printf("mapped file reads through: %q\n", line)
	must(cpuP.Store(core.VAddr{Index: fIdx, Offset: 15}, []byte("2")))
	out, err := m.SyncFile(fileVB, 27)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after store + msync, file image: %q\n\n", out[:17])

	// --- swapping under memory pressure (§3.4) ---
	dataVB := addr.MakeVBUID(addr.Size128KB, 4002)
	must(sys.EnableVB(dataVB, 0))
	must(m.Prefill(dataVB, 128<<10))
	free0 := m.FreeBytes()
	n, err := m.SwapOutVB(dataVB)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("swapped out %d regions, reclaimed %d KB\n", n, (m.FreeBytes()-free0)>>10)
	ev, err := m.TranslateRead(addr.Make(dataVB, 0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("next access faults the data back in (OS fault: %v)\n", ev.OSFault)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
