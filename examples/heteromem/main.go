// Heterogeneous memory: the paper's second headline use case (§7.3).
//
// The example runs the same workload over a hybrid PCM–DRAM main memory
// and a TL-DRAM under three placement policies — hotness-unaware, the
// VBI policy (property-guided initial placement plus epoch migration from
// the MTL's access counters), and the IDEAL oracle — and reports the
// speedups of Figures 9 and 10 for one application.
//
// Run with: go run ./examples/heteromem
package main

import (
	"fmt"
	"log"

	"vbi/internal/system"
	"vbi/internal/workloads"
)

func main() {
	const app = "sphinx3"
	const refs = 150_000
	prof := workloads.MustGet(app)
	fmt.Printf("workload: %s (%d MB footprint, %d structures)\n\n",
		app, prof.Footprint()>>20, len(prof.Structs))

	for _, mem := range []system.HeteroMem{system.HeteroPCMDRAM, system.HeteroTLDRAM} {
		fmt.Printf("--- %s ---\n", mem)
		var base float64
		for _, pol := range []system.Policy{
			system.PolicyUnaware, system.PolicyVBI, system.PolicyIdeal} {
			m, err := system.NewHetero(system.HeteroConfig{
				Mem: mem, Policy: pol, Refs: refs}, prof)
			if err != nil {
				log.Fatal(err)
			}
			res, err := m.Run()
			if err != nil {
				log.Fatal(err)
			}
			if pol == system.PolicyUnaware {
				base = res.IPC
			}
			fmt.Printf("%-18s IPC %7.4f  speedup %5.2fx  migrated %4d MB\n",
				pol, res.IPC, res.IPC/base, res.Extra["migrated.bytes"]>>20)
		}
		fmt.Println()
	}
	fmt.Println("The VBI policy identifies hot VBs from the MTL's access counters")
	fmt.Println("(information only the memory controller sees at this granularity, §2)")
	fmt.Println("and migrates them into the fast region, closing most of the gap to")
	fmt.Println("the oracle placement — the result of Figures 9 and 10.")
}
