// kvstore: a small persistent key–value store built on the VBI public API,
// the way a downstream system would adopt it.
//
//   - the hash index lives in its own VB, requested with the latency-
//     sensitive hint (the MTL's heterogeneous-memory policies would keep it
//     in fast memory, §7.3);
//   - the append-only value log lives in a VB requested with the bandwidth-
//     sensitive hint and grows through promote_vb when it fills (§4.4) —
//     no pointer in the index ever changes, because program addresses are
//     {CVT index, offset} pairs;
//   - snapshots persist through a memory-mapped-file VB (§3.4).
//
// Run with: go run ./examples/kvstore
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"vbi/internal/addr"
	"vbi/internal/core"
	"vbi/internal/mtl"
	"vbi/internal/osmodel"
	"vbi/internal/prop"
)

// store is the key–value store: an open-addressed index of fixed-size
// slots plus an append-only log of length-prefixed values.
type store struct {
	cpu      *core.Core
	os       *osmodel.VBIOS
	proc     *osmodel.VBIProcess
	indexIdx int // CVT index of the hash-index VB
	logIdx   int // CVT index of the value-log VB
	logSize  uint64
	logHead  uint64
	slots    uint64
}

const slotBytes = 16 // 8-byte key hash + 8-byte log offset

func newStore(cpu *core.Core, os *osmodel.VBIOS, proc *osmodel.VBIProcess) (*store, error) {
	indexIdx, _, err := os.RequestVB(proc, 1<<20, prop.LatencySensitive|prop.AccessRandom)
	if err != nil {
		return nil, err
	}
	logIdx, logVB, err := os.RequestVB(proc, 64<<10, prop.BandwidthSensitive|prop.AccessSequential)
	if err != nil {
		return nil, err
	}
	return &store{
		cpu: cpu, os: os, proc: proc,
		indexIdx: indexIdx, logIdx: logIdx,
		logSize: logVB.Size(), logHead: 8,
		slots: (1 << 20) / slotBytes,
	}, nil
}

func hashKey(key string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	if h == 0 {
		h = 1
	}
	return h
}

// put appends the value to the log and installs the slot, growing the log
// VB via promote_vb when it would overflow.
func (s *store) put(key, value string) error {
	need := s.logHead + 8 + uint64(len(value))
	if need > s.logSize {
		// The data structure outgrew its VB: promote to the next class
		// (§4.2.1). The CVT index — and so every stored offset — is
		// untouched.
		grown, err := s.os.PromoteVB(s.proc, s.logIdx, s.logSize*2)
		if err != nil {
			return err
		}
		s.logSize = grown.Size()
		fmt.Printf("  [log promoted to %s (%d KB)]\n", grown.Class(), s.logSize>>10)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(value)))
	if err := s.cpu.Store(core.VAddr{Index: s.logIdx, Offset: s.logHead}, hdr[:]); err != nil {
		return err
	}
	if err := s.cpu.Store(core.VAddr{Index: s.logIdx, Offset: s.logHead + 8}, []byte(value)); err != nil {
		return err
	}
	h := hashKey(key)
	var slot [slotBytes]byte
	binary.LittleEndian.PutUint64(slot[:8], h)
	binary.LittleEndian.PutUint64(slot[8:], s.logHead)
	for probe := uint64(0); probe < s.slots; probe++ {
		off := ((h + probe) % s.slots) * slotBytes
		var cur [slotBytes]byte
		if err := s.cpu.Load(core.VAddr{Index: s.indexIdx, Offset: off}, cur[:]); err != nil {
			return err
		}
		existing := binary.LittleEndian.Uint64(cur[:8])
		if existing == 0 || existing == h {
			if err := s.cpu.Store(core.VAddr{Index: s.indexIdx, Offset: off}, slot[:]); err != nil {
				return err
			}
			s.logHead = need
			return nil
		}
	}
	return fmt.Errorf("index full")
}

// get probes the index and reads the value out of the log.
func (s *store) get(key string) (string, bool, error) {
	h := hashKey(key)
	for probe := uint64(0); probe < s.slots; probe++ {
		off := ((h + probe) % s.slots) * slotBytes
		var cur [slotBytes]byte
		if err := s.cpu.Load(core.VAddr{Index: s.indexIdx, Offset: off}, cur[:]); err != nil {
			return "", false, err
		}
		existing := binary.LittleEndian.Uint64(cur[:8])
		if existing == 0 {
			return "", false, nil
		}
		if existing != h {
			continue
		}
		logOff := binary.LittleEndian.Uint64(cur[8:])
		var hdr [8]byte
		if err := s.cpu.Load(core.VAddr{Index: s.logIdx, Offset: logOff}, hdr[:]); err != nil {
			return "", false, err
		}
		val := make([]byte, binary.LittleEndian.Uint64(hdr[:]))
		if err := s.cpu.Load(core.VAddr{Index: s.logIdx, Offset: logOff + 8}, val); err != nil {
			return "", false, err
		}
		return string(val), true, nil
	}
	return "", false, nil
}

func main() {
	m := mtl.NewSimple(mtl.Config{DelayedAlloc: true, EarlyReservation: true}, 1<<30)
	sys := core.NewSystem(m)
	os := osmodel.NewVBIOS(sys)
	cpu := core.NewCore(sys)
	proc := os.CreateProcess()
	cpu.SwitchClient(proc.Client)

	kv, err := newStore(cpu, os, proc)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("writing 5000 entries (the log VB will outgrow its size class)...")
	for i := 0; i < 5000; i++ {
		if err := kv.put(fmt.Sprintf("key-%04d", i),
			fmt.Sprintf("value payload for entry %04d", i)); err != nil {
			log.Fatal(err)
		}
	}
	for _, key := range []string{"key-0000", "key-0999", "key-4999"} {
		val, ok, err := kv.get(key)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  get(%s) = %q (found=%v)\n", key, val, ok)
	}
	if _, ok, _ := kv.get("missing"); ok {
		log.Fatal("phantom key")
	}

	// Snapshot the index into a memory-mapped-file VB (§3.4).
	snapVB := addr.MakeVBUID(addr.Size4MB, 5000)
	if err := sys.EnableVB(snapVB, prop.MappedFile|prop.Persistent); err != nil {
		log.Fatal(err)
	}
	if err := m.AttachFile(snapVB, nil); err != nil {
		log.Fatal(err)
	}
	snapIdx, err := os.AttachShared(proc, snapVB, core.PermRW)
	if err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 1<<20)
	if err := cpu.Load(core.VAddr{Index: kv.indexIdx, Offset: 0}, buf); err != nil {
		log.Fatal(err)
	}
	if err := cpu.Store(core.VAddr{Index: snapIdx, Offset: 0}, buf); err != nil {
		log.Fatal(err)
	}
	img, err := m.SyncFile(snapVB, 1<<20)
	if err != nil {
		log.Fatal(err)
	}
	nonZero := 0
	for _, b := range img {
		if b != 0 {
			nonZero++
		}
	}
	fmt.Printf("index snapshot persisted: %d KB image, %d KB live slot data\n",
		len(img)>>10, nonZero>>10)

	if err := os.DestroyProcess(proc); err != nil {
		log.Fatal(err)
	}
	fmt.Println("store shut down; all physical memory reclaimed:",
		m.FreeBytes() == m.Zones()[0].Buddy.Capacity())
}
