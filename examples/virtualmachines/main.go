// Virtual machines: the paper's first headline use case (§6.1, §7.2).
//
// Part 1 partitions the global VBI address space among virtual machines
// (Figure 5): each VM owns a slice of every size class's VBID space, so a
// guest allocates VBs without coordinating with the host, and a VB's owner
// is recoverable from its VBUID alone.
//
// Part 2 measures why this matters: it runs a pointer-chasing workload on
// the conventional virtualized stack (two-dimensional page walks, up to 24
// memory accesses per TLB miss) and on VBI, where translation inside a VM
// is no different from native translation.
//
// Run with: go run ./examples/virtualmachines
package main

import (
	"fmt"
	"log"

	"vbi/internal/addr"
	"vbi/internal/system"
	"vbi/internal/trace"
)

func main() {
	// --- Part 1: address-space isolation between VMs (Figure 5) ---
	var part addr.VMPartition
	fmt.Println("VBI address-space partitioning (4 GB size class):")
	for _, vm := range []uint32{0, 1, 31} {
		lo, hi, _ := part.VBIDRange(addr.Size4GB, vm)
		who := fmt.Sprintf("VM %d", vm)
		if vm == 0 {
			who = "host"
		}
		fmt.Printf("  %-6s owns VBIDs [%d, %d] (%d VBs)\n", who, lo, hi, hi-lo+1)
	}
	u := part.MakeVMVBUID(addr.Size4GB, 7, 42)
	fmt.Printf("  %v belongs to VM %d\n\n", u, part.VMOf(u))

	// --- Part 2: translation overhead inside a VM ---
	prof := trace.Profile{
		Name: "vm-demo", MemRefsPer1000: 350,
		Structs: []trace.Struct{
			{Name: "index", Size: 256 << 20, Pattern: trace.Chase, Weight: 3,
				WriteFrac: 0.1, HotFrac: 0.2, HotBias: 0.85, SparseHot: true},
			{Name: "log", Size: 64 << 20, Pattern: trace.Seq, Weight: 1, WriteFrac: 0.6},
		},
	}
	const refs = 150_000
	fmt.Printf("workload: %d MB pointer-chasing, %d measured references\n\n",
		prof.Footprint()>>20, refs)

	run := func(kind system.Kind) system.RunResult {
		m, err := system.New(system.Config{Kind: kind, Refs: refs}, prof)
		if err != nil {
			log.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	native := run(system.Native)
	virt := run(system.Virtual)
	vbi := run(system.VBIFull)

	fmt.Printf("%-22s %8s %14s %16s\n", "system", "IPC", "walk accesses", "vs native")
	for _, r := range []system.RunResult{native, virt, vbi} {
		walks := r.Extra["walk.accesses"] + r.Extra["mtl.walk.accesses"]
		fmt.Printf("%-22s %8.4f %14d %15.2fx\n", r.System, r.IPC, walks, r.IPC/native.IPC)
	}
	fmt.Println()
	fmt.Printf("virtualization tax (Native/Virtual):    %.2fx slowdown\n", native.IPC/virt.IPC)
	fmt.Printf("VBI inside a VM runs at native speed:   %.2fx over Virtual\n", vbi.IPC/virt.IPC)
	fmt.Println("\n(Under VBI the guest attaches to VBs once and every access uses the")
	fmt.Println(" global VBI address; the MTL translates at the memory controller, so")
	fmt.Println(" there is no second dimension of page walks — §3.5.)")
}
