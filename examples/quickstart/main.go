// Quickstart: the life cycle of VBI memory (§4.2) on a functional VBI
// system — enable a virtual block, attach with permissions, store and load
// real data through the CVT check and the Memory Translation Layer, watch
// delayed allocation serve zero lines, and tear everything down.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"vbi/internal/core"
	"vbi/internal/mtl"
	"vbi/internal/osmodel"
	"vbi/internal/prop"
)

func main() {
	// A VBI machine: the MTL (with delayed allocation and early
	// reservation, i.e. the VBI-Full configuration) over 1 GB of physical
	// memory, the architectural layer, one CPU core, and the OS.
	m := mtl.NewSimple(mtl.Config{DelayedAlloc: true, EarlyReservation: true}, 1<<30)
	sys := core.NewSystem(m)
	os := osmodel.NewVBIOS(sys)
	cpu := core.NewCore(sys)

	// Process creation assigns a memory-client ID (§4.1.2).
	proc := os.CreateProcess()
	cpu.SwitchClient(proc.Client)
	fmt.Printf("process created: client %d\n", proc.Client)

	// request_vb: ask the OS for a VB big enough for a 1 MB data
	// structure; the OS picks the smallest size class (4 MB), enables the
	// VB and attaches us. The returned CVT index is our pointer.
	idx, vb, err := os.RequestVB(proc, 1<<20, prop.LatencySensitive)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("request_vb(1MB) -> CVT index %d, %v (%s)\n", idx, vb, vb.Class())

	// Program addresses are {CVT index, offset} pairs (§4.2.2).
	addr := core.VAddr{Index: idx, Offset: 4096}
	if err := cpu.Store(addr, []byte("hello, virtual block interface")); err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 30)
	if err := cpu.Load(addr, buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded back: %q\n", buf)

	// Delayed allocation (§5.1): reading a never-written region returns
	// zeros without allocating physical memory.
	before := m.FreeBytes()
	far := core.VAddr{Index: idx, Offset: 2 << 20}
	if err := cpu.Load(far, buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold read at +2MB: %v... (free bytes unchanged: %v)\n",
		buf[:4], m.FreeBytes() == before)

	// Protection is the OS's job (§3.2): another process cannot touch our
	// VB without an attach.
	thief := os.CreateProcess()
	cpu2 := core.NewCore(sys)
	cpu2.SwitchClient(thief.Client)
	if err := cpu2.Load(addr, buf); err != nil {
		fmt.Printf("other process denied: %v\n", err)
	}

	// True sharing (§3.4): granting read access makes the data visible.
	sharedIdx, err := os.AttachShared(thief, vb, core.PermR)
	if err != nil {
		log.Fatal(err)
	}
	if err := cpu2.Load(core.VAddr{Index: sharedIdx, Offset: 4096}, buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after attach, shared read: %q\n", buf)
	if err := os.DestroyProcess(thief); err != nil {
		log.Fatal(err)
	}

	// Growing a data structure: promote_vb moves our data into a larger
	// VB while the CVT index (and so every pointer) stays valid (§4.4).
	large, err := os.PromoteVB(proc, idx, 32<<20)
	if err != nil {
		log.Fatal(err)
	}
	if err := cpu.Load(addr, buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after promotion to %v (%s): %q\n", large, large.Class(), buf)

	// Teardown frees every frame.
	if err := os.DestroyProcess(proc); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("all memory freed: %v\n", m.FreeBytes() == m.Zones()[0].Buddy.Capacity())
}
