module vbi

go 1.22
