package cpu

import "testing"

func constLat(n uint64) LatencyFn {
	return func(Op, uint64) uint64 { return n }
}

func TestNonMemoryThroughput(t *testing.T) {
	c := New(DefaultParams)
	// 1000 ops, 40 gap instructions each, free memory: limited by the
	// 4-wide issue of 41000 instructions ≈ 10250 cycles plus issue slots.
	for i := 0; i < 1000; i++ {
		c.Step(Op{Gap: 40}, constLat(0))
	}
	cycles := c.Finish()
	if cycles < 10000 || cycles > 12000 {
		t.Fatalf("cycles = %d, want ≈ 10250–11000", cycles)
	}
	if c.Instrs() != 41000 {
		t.Fatalf("instrs = %d", c.Instrs())
	}
}

func TestIndependentMissesOverlap(t *testing.T) {
	// 10 independent 200-cycle misses with no gaps should overlap almost
	// completely (10 MSHRs): total ≈ 200 + 10 issue slots, not 2000.
	c := New(DefaultParams)
	for i := 0; i < 10; i++ {
		c.Step(Op{}, constLat(200))
	}
	if cycles := c.Finish(); cycles > 250 {
		t.Fatalf("independent misses serialized: %d cycles", cycles)
	}
}

func TestDependentLoadsSerialize(t *testing.T) {
	// Pointer chasing: each load waits for the previous one.
	c := New(DefaultParams)
	for i := 0; i < 10; i++ {
		c.Step(Op{Dep: true}, constLat(200))
	}
	if cycles := c.Finish(); cycles < 10*200 {
		t.Fatalf("dependent loads overlapped: %d cycles", cycles)
	}
}

func TestMSHRLimitThrottles(t *testing.T) {
	few := New(Params{IssueWidth: 4, ROB: 1024, MSHRs: 2})
	many := New(Params{IssueWidth: 4, ROB: 1024, MSHRs: 16})
	for i := 0; i < 64; i++ {
		few.Step(Op{}, constLat(300))
		many.Step(Op{}, constLat(300))
	}
	if few.Finish() <= many.Finish() {
		t.Fatalf("2 MSHRs (%d cy) not slower than 16 (%d cy)",
			few.Finish(), many.Finish())
	}
}

func TestROBLimitThrottles(t *testing.T) {
	// With 50-instruction gaps, a 128-entry ROB holds ~2.5 ops; a
	// 1024-entry ROB holds ~20. Long misses expose the difference.
	small := New(Params{IssueWidth: 4, ROB: 128, MSHRs: 32})
	big := New(Params{IssueWidth: 4, ROB: 1024, MSHRs: 32})
	for i := 0; i < 200; i++ {
		small.Step(Op{Gap: 50}, constLat(500))
		big.Step(Op{Gap: 50}, constLat(500))
	}
	if small.Finish() <= big.Finish() {
		t.Fatalf("128-ROB (%d cy) not slower than 1024-ROB (%d cy)",
			small.Finish(), big.Finish())
	}
}

func TestStoresDoNotBlockDependents(t *testing.T) {
	c := New(DefaultParams)
	c.Step(Op{Write: true}, constLat(500))
	c.Step(Op{Dep: true}, constLat(10)) // depends on last *load*; none yet
	if cycles := c.Finish(); cycles >= 500+10 {
		t.Fatalf("store blocked a dependent load: %d cycles", cycles)
	}
}

func TestLatencyFnSeesIssueTime(t *testing.T) {
	c := New(DefaultParams)
	var issues []uint64
	fn := func(op Op, at uint64) uint64 {
		issues = append(issues, at)
		return 100
	}
	c.Step(Op{Gap: 400}, fn)
	c.Step(Op{Gap: 400, Dep: true}, fn)
	if len(issues) != 2 {
		t.Fatal("latency fn not called")
	}
	if issues[1] <= issues[0] {
		t.Fatalf("issue times not increasing: %v", issues)
	}
}

func TestIPC(t *testing.T) {
	c := New(DefaultParams)
	for i := 0; i < 100; i++ {
		c.Step(Op{Gap: 39}, constLat(4)) // L1 hits
	}
	ipc := c.IPC()
	if ipc < 2.0 || ipc > 4.0 {
		t.Fatalf("IPC = %.2f, want near 4 for cache-resident code", ipc)
	}
}
