// Package cpu implements the trace-driven core timing model of Table 1: a
// 4-wide out-of-order core with a 128-entry reorder buffer, modelled at the
// level relevant to this study — how much memory latency the window can
// hide. Non-memory instructions retire at the issue width; memory
// operations overlap subject to three constraints:
//
//   - MSHR limit: at most MSHRs outstanding misses;
//   - ROB limit: the core cannot run more than ROB instructions ahead of
//     the oldest incomplete memory operation;
//   - dependences: a dependent load (pointer chasing) cannot issue before
//     the producing load returns.
//
// This is the standard first-order model for translation studies: the
// paper's effects (TLB misses, page-walk memory accesses, zero-line
// short-circuits) all enter through per-access latency, which the model
// converts into cycles with realistic memory-level parallelism.
package cpu

// Params configures the core.
type Params struct {
	IssueWidth int // instructions retired per cycle when not stalled
	ROB        int // reorder-buffer entries
	MSHRs      int // maximum outstanding misses
}

// DefaultParams mirrors Table 1 (4-wide OOO, 128-entry ROB) with 10 MSHRs.
var DefaultParams = Params{IssueWidth: 4, ROB: 128, MSHRs: 10}

// Op is one memory operation from the trace.
type Op struct {
	// Gap is the number of non-memory instructions preceding this op.
	Gap uint32
	// Write marks stores.
	Write bool
	// Dep marks a load that consumes the previous load's result (pointer
	// chasing): it cannot issue until that load completes.
	Dep bool
	// Addr is the program address, in whatever space the system translates
	// (conventional virtual address, or VBI {CVT index, offset} packed by
	// the system layer).
	Addr uint64
}

// LatencyFn computes the memory latency of an op issued at the given cycle.
// The system layer implements it (TLB/CVT checks, cache hierarchy, MTL,
// DRAM); it may carry side effects (bank state, allocations).
type LatencyFn func(op Op, issueAt uint64) uint64

type inflight struct {
	instr uint64 // instruction position at issue
	done  uint64 // completion cycle
}

// Core tracks one hardware context's timing state.
type Core struct {
	P Params

	now       uint64 // next issue cycle
	instrs    uint64 // instructions retired (memory ops count as 1 each)
	lastLoad  uint64 // completion time of the most recent load
	inflights []inflight
	maxDone   uint64

	frac uint32 // accumulated sub-cycle issue debt (gap % width)
}

// New builds a core. The in-flight queue is pre-sized to the MSHR limit
// — Step never holds more than MSHRs entries — so the steady-state hot
// loop appends without growing the backing array.
func New(p Params) *Core {
	c := &Core{P: p}
	if p.MSHRs > 0 {
		c.inflights = make([]inflight, 0, p.MSHRs)
	}
	return c
}

// Now returns the core's current cycle (used for multi-core interleaving).
func (c *Core) Now() uint64 { return c.now }

// Instrs returns retired instructions.
func (c *Core) Instrs() uint64 { return c.instrs }

// Step processes one trace op, advancing the core's clock.
//
//vbi:hotpath
func (c *Core) Step(op Op, mem LatencyFn) {
	// Non-memory instructions before the op retire at IssueWidth/cycle.
	c.frac += op.Gap
	c.now += uint64(c.frac / uint32(c.P.IssueWidth))
	c.frac %= uint32(c.P.IssueWidth)
	c.instrs += uint64(op.Gap) + 1

	issue := c.now
	if op.Dep && c.lastLoad > issue {
		issue = c.lastLoad
	}

	// Retire completed ops; stall on MSHR and ROB limits.
	c.drain(issue)
	for len(c.inflights) >= c.P.MSHRs {
		issue = maxU64(issue, c.inflights[0].done)
		c.drain(issue)
	}
	for len(c.inflights) > 0 && c.instrs-c.inflights[0].instr > uint64(c.P.ROB) {
		issue = maxU64(issue, c.inflights[0].done)
		c.drain(issue)
	}

	lat := mem(op, issue)
	done := issue + lat
	// The MSHR drain loop above guarantees len < MSHRs here, and New
	// pre-sizes capacity to MSHRs (drain preserves it), so this append
	// never grows the backing array in steady state.
	//vbi:allow hotalloc append stays within the capacity pre-sized in New; drain copies down so it is never lost
	c.inflights = append(c.inflights, inflight{instr: c.instrs, done: done})
	if !op.Write {
		c.lastLoad = done
	}
	if done > c.maxDone {
		c.maxDone = done
	}
	c.now = issue + 1 // one issue slot consumed
}

// drain retires in-flight ops that completed by t. Survivors are copied
// down rather than resliced from the front: reslicing would strip
// capacity off the buffer New pre-sized, making Step's append reallocate
// every few thousand ops.
//
//vbi:hotpath
func (c *Core) drain(t uint64) {
	i := 0
	for i < len(c.inflights) && c.inflights[i].done <= t {
		i++
	}
	if i > 0 {
		n := copy(c.inflights, c.inflights[i:])
		c.inflights = c.inflights[:n]
	}
}

// Finish drains the pipeline and returns the total cycle count.
func (c *Core) Finish() uint64 {
	if c.maxDone > c.now {
		return c.maxDone
	}
	return c.now
}

// IPC returns instructions per cycle so far.
func (c *Core) IPC() float64 {
	cycles := c.Finish()
	if cycles == 0 {
		return 0
	}
	return float64(c.instrs) / float64(cycles)
}

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
