package cpu

import "testing"

func BenchmarkCoreStep(b *testing.B) {
	c := New(DefaultParams)
	fn := func(Op, uint64) uint64 { return 100 }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Step(Op{Gap: 3}, fn)
	}
}
