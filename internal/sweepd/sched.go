package sweepd

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"vbi/internal/dist"
	"vbi/internal/harness"
	"vbi/internal/obs"
)

// task is one dispatchable shard: a contiguous slice of job indices
// within one sweep. Tasks requeue whole on worker failure — the same
// shard granularity as dist.Coordinator — and carry their attempt count
// so a shard no worker can serve eventually fails its sweep instead of
// bouncing around the fleet forever.
type task struct {
	sweepID  string
	indices  []int
	attempts int
}

// fairQueue is the multi-sweep shard queue. Sweeps are held separately
// and pop rotates one shard per sweep per turn (round-robin), so a huge
// sweep cannot starve a small one: with k active sweeps, every sweep
// receives ~1/k of the fleet regardless of backlog sizes. Requeued
// shards go to the front of their sweep so retries are not penalized.
type fairQueue struct {
	mu      sync.Mutex
	order   []string // rotation order: sweeps in admission order
	cursor  int      // next sweep to serve
	pending map[string][]*task
	// tombstones marks dropped (cancelled/failed) sweeps so their
	// in-flight shards cannot be resurrected by a later requeue.
	tombstones map[string]bool
}

func newFairQueue() *fairQueue {
	return &fairQueue{pending: map[string][]*task{}}
}

// add admits a sweep's shards (appending when the sweep already has
// pending work).
func (q *fairQueue) add(sweepID string, tasks []*task) {
	if len(tasks) == 0 {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, ok := q.pending[sweepID]; !ok {
		q.order = append(q.order, sweepID)
	}
	q.pending[sweepID] = append(q.pending[sweepID], tasks...)
}

// pop removes and returns up to max shards, visiting active sweeps
// round-robin: one shard from each sweep with pending work, wrapping
// until max is reached or the queue is empty. The rotation cursor
// persists across calls, so consecutive pulls by different workers
// continue the rotation instead of restarting it (which would bias
// toward the first sweep).
func (q *fairQueue) pop(max int) []*task {
	q.mu.Lock()
	defer q.mu.Unlock()
	var out []*task
	for len(out) < max && len(q.order) > 0 {
		if q.cursor >= len(q.order) {
			q.cursor = 0
		}
		id := q.order[q.cursor]
		shards := q.pending[id]
		if len(shards) == 0 {
			// Sweep drained: drop it from the rotation without advancing
			// the cursor (the next sweep slides into this slot).
			delete(q.pending, id)
			q.order = append(q.order[:q.cursor], q.order[q.cursor+1:]...)
			continue
		}
		out = append(out, shards[0])
		q.pending[id] = shards[1:]
		q.cursor++
	}
	return out
}

// requeue returns failed shards to the front of their sweeps' queues.
// Sweeps dropped meanwhile (cancelled/failed) discard their shards.
func (q *fairQueue) requeue(tasks []*task) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, t := range tasks {
		shards, ok := q.pending[t.sweepID]
		if !ok {
			if !q.dropped(t.sweepID) {
				q.order = append(q.order, t.sweepID)
				q.pending[t.sweepID] = []*task{t}
			}
			continue
		}
		q.pending[t.sweepID] = append([]*task{t}, shards...)
	}
}

// drop removes a sweep from the queue entirely (cancel/failure) and
// remembers it so in-flight shards of the sweep are not resurrected by a
// later requeue.
func (q *fairQueue) drop(sweepID string) {
	q.mu.Lock()
	defer q.mu.Unlock()
	delete(q.pending, sweepID)
	for i, id := range q.order {
		if id == sweepID {
			q.order = append(q.order[:i], q.order[i+1:]...)
			if q.cursor > i {
				q.cursor--
			}
			break
		}
	}
	if q.tombstones == nil {
		q.tombstones = map[string]bool{}
	}
	q.tombstones[sweepID] = true
}

func (q *fairQueue) dropped(sweepID string) bool {
	return q.tombstones[sweepID]
}

// depth returns one sweep's pending shard count.
func (q *fairQueue) depth(sweepID string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending[sweepID])
}

// scheduler dispatches queued shards across the fleet for the daemon's
// lifetime. It is dist.Coordinator's scheduling loop re-shaped for a
// service: the queue outlives any one sweep, members come and go through
// the registry, and an empty queue or an empty fleet is a wait state,
// never an error.
type scheduler struct {
	srv *Server

	queue *fairQueue
	wake  chan struct{} // nudged on submit so idle loops pull immediately

	// trace is the scheduler-lifetime root trace ID; every dispatched
	// shard gets a numbered child ("<root>/<seq>") sent to the worker in
	// the obs.TraceHeader header, so one grep joins the daemon's and the
	// worker's records for a shard.
	trace string
	seq   atomic.Int64
}

func newScheduler(srv *Server) *scheduler {
	return &scheduler{srv: srv, queue: newFairQueue(), wake: make(chan struct{}, 1),
		trace: obs.NewTraceID()}
}

func (s *scheduler) nudge() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// run polls fleet membership and keeps one serve loop per live member,
// exactly like the coordinator's scheduler — but forever: it exits only
// when ctx (the daemon's lifetime) ends.
func (s *scheduler) run(ctx context.Context) {
	type loop struct {
		cancel context.CancelFunc
		done   chan struct{}
	}
	active := map[string]*loop{}
	ticker := time.NewTicker(s.srv.pollInterval())
	defer ticker.Stop()
	for {
		//vbi:allow maporder per-member reap; each entry is tested and deleted independently
		for id, l := range active {
			select {
			case <-l.done:
				delete(active, id)
			default:
			}
		}
		live := s.srv.Fleet.Live()
		alive := map[string]bool{}
		for _, m := range live {
			alive[m.ID] = true
		}
		//vbi:allow maporder per-member cancel; entries are independent and cancel is idempotent
		for id, l := range active {
			if !alive[id] {
				l.cancel()
			}
		}
		for _, m := range live {
			if _, ok := active[m.ID]; ok {
				continue
			}
			mctx, mcancel := context.WithCancel(ctx)
			l := &loop{cancel: mcancel, done: make(chan struct{})}
			active[m.ID] = l
			go func(m dist.Member) {
				defer close(l.done)
				defer mcancel()
				s.serve(mctx, m)
			}(m)
		}
		select {
		case <-ctx.Done():
			//vbi:allow maporder cancel is idempotent per loop; order immaterial
			for _, l := range active {
				l.cancel()
			}
			//vbi:allow maporder joins every loop; completion set, not order, is what matters
			for _, l := range active {
				<-l.done
			}
			return
		case <-ticker.C:
		}
	}
}

// serve is one member's dispatch loop: pull up to weight shards (fairly
// across sweeps), send them as one request, demux results back to their
// sweeps. Transport failures requeue the shards and — after Retries
// consecutive ones — drop the member; a version mismatch (412) drops the
// member immediately but never takes the daemon down.
func (s *scheduler) serve(ctx context.Context, m dist.Member) {
	consecutive := 0
	for {
		if ctx.Err() != nil {
			return
		}
		tasks := s.queue.pop(s.srv.Fleet.WeightOf(m.ID, m.Weight))
		if len(tasks) == 0 {
			select {
			case <-ctx.Done():
				return
			case <-s.wake:
			case <-time.After(25 * time.Millisecond):
			}
			continue
		}
		batch, live, refs := s.srv.collect(tasks)
		tasks = live
		if len(batch) == 0 {
			// Every referenced sweep went away between pop and collect.
			continue
		}
		s.srv.metrics.dispatched(m.ID, len(tasks))
		s.srv.markInFlight(refs, +1)
		trace := obs.ChildID(s.trace, s.seq.Add(1))
		log := s.srv.log().With("trace", trace, "worker", m.ID)
		log.Info("shard dispatch", "jobs", len(batch), "shards", len(tasks))
		start := time.Now()
		resp, fatal, err := dist.ExecuteShard(ctx, s.srv.client(), m, s.srv.AuthToken,
			s.srv.timeout(), batch, trace)
		s.srv.markInFlight(refs, -1)
		if fatal != nil {
			// A stale worker binary cannot serve this daemon, ever. Unlike
			// the one-shot coordinator (where it aborts the run) the daemon
			// drops the worker and keeps the sweeps queued.
			s.srv.metrics.failed(m.ID)
			s.queue.requeue(tasks)
			s.srv.logf("sweepd: dropping worker %s permanently: %v", m.ID, fatal)
			s.srv.Fleet.Remove(m.ID)
			return
		}
		if err != nil {
			s.queue.requeue(tasks)
			if ctx.Err() != nil {
				return
			}
			s.srv.metrics.failed(m.ID)
			s.srv.bumpAttempts(tasks, err)
			consecutive++
			if consecutive >= s.srv.retries() {
				s.srv.logf("sweepd: dropping worker %s after %d consecutive failures: %v", m.ID, consecutive, err)
				s.srv.Fleet.Remove(m.ID)
				return
			}
			s.srv.logf("sweepd: %s failed (attempt %d, %d shards requeued): %v", m.ID, consecutive, len(tasks), err)
			select {
			case <-ctx.Done():
				return
			case <-time.After(time.Duration(consecutive) * 100 * time.Millisecond):
			}
			continue
		}
		consecutive = 0
		elapsed := time.Since(start)
		s.srv.metrics.completedShards(m.ID, len(tasks))
		s.srv.metrics.observeShard(m.ID, elapsed.Seconds())
		log.Info("shard complete", "jobs", len(batch), "seconds", elapsed.Seconds())
		k := 0
		for _, t := range tasks {
			for _, idx := range t.indices {
				jr := resp.Results[k]
				k++
				s.srv.complete(t.sweepID, idx, jr.Results, false, jr.Timing)
			}
		}
	}
}

// bumpAttempts advances every task's attempt count and fails the owning
// sweep once a shard has been refused MaxShardAttempts times: at that
// point the shard has outlived worker churn and the cause is the work
// itself (e.g. a job whose simulation errors deterministically).
func (srv *Server) bumpAttempts(tasks []*task, cause error) {
	for _, t := range tasks {
		t.attempts++
		if t.attempts >= srv.maxShardAttempts() {
			srv.failSweep(t.sweepID, fmt.Errorf("shard failed %d times, last: %w", t.attempts, cause))
		}
	}
}

// collect resolves popped tasks to their job batch, skipping tasks whose
// sweep is gone (cancelled between pop and dispatch). It returns the
// batch, the surviving tasks in batch order, and the (sweepID → job
// count) map for in-flight accounting.
func (srv *Server) collect(tasks []*task) ([]harness.Job, []*task, map[string]int) {
	srv.mu.Lock()
	defer srv.mu.Unlock()
	var batch []harness.Job
	var live []*task
	refs := map[string]int{}
	for _, t := range tasks {
		sw, ok := srv.sweeps[t.sweepID]
		if !ok || terminal(sw.rec.State) {
			continue
		}
		for _, idx := range t.indices {
			batch = append(batch, sw.jobs[idx])
		}
		refs[t.sweepID] += len(t.indices)
		live = append(live, t)
	}
	return batch, live, refs
}
