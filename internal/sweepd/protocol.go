// Package sweepd is the long-running sweep service: a daemon
// (cmd/vbisweepd) that accepts many sweeps over a JSON HTTP API, journals
// them durably, schedules their shards fairly across one dynamic worker
// fleet (internal/dist), and exposes the whole plane's health as
// Prometheus-style metrics.
//
// Where dist.Coordinator lives for exactly one sweep and dies with its
// process, a sweepd Server owns a persistent queue: every submitted sweep
// is journaled to disk as its canonical self-describing harness.Job list
// before the submit returns, so a daemon killed mid-sweep reloads its
// queue on restart and — because completed shards stream into the shared
// on-disk result cache — resumes exactly where it stopped, with final
// matrices byte-identical to a serial local run.
//
// Scheduling is fair across sweeps: the shard queue round-robins one
// shard per active sweep per pull, so a small sweep submitted behind a
// huge one starts completing immediately instead of waiting out the
// backlog. A fleet running dry is backpressure, not failure — shards
// queue until a worker joins.
package sweepd

import (
	"encoding/json"
	"time"

	"vbi/internal/dist"
	"vbi/internal/harness"
	"vbi/internal/obs"
)

// URL paths of the sweep service API. The daemon additionally serves the
// fleet-membership routes (dist.PathRegister, dist.PathLeave) on the same
// listener, so one address is the whole control plane.
const (
	// PathSweeps accepts POST (submit) and GET (list); PathSweeps/{id}
	// accepts GET (status + result) and DELETE (cancel).
	PathSweeps = "/sweeps"
	// PathStatus serves the human JSON plane: fleet membership plus every
	// sweep's progress.
	PathStatus = "/status"
	// PathMetrics serves the Prometheus text exposition: queue depths,
	// per-worker dispatch/failure counters, cache hit/miss, fleet size.
	PathMetrics = "/metrics"
)

// Sweep states. A sweep is terminal in StateDone, StateFailed or
// StateCancelled; terminal records stay loadable (and GET-able) across
// daemon restarts until deleted.
const (
	// StateQueued: admitted, no shard dispatched or completed yet (a dry
	// fleet holds sweeps here — backpressure, not failure).
	StateQueued = "queued"
	// StateRunning: at least one job completed or in flight.
	StateRunning = "running"
	// StateDone: every job completed; Table holds the result matrix.
	StateDone = "done"
	// StateFailed: a shard exhausted its attempts (e.g. a job that every
	// worker rejects); Error holds the last failure.
	StateFailed = "failed"
	// StateCancelled: deleted by the client while active.
	StateCancelled = "cancelled"
)

// SubmitRequest is the body of POST /sweeps. The grid is expanded
// server-side into self-describing jobs (grids are self-contained: inline
// variant specs travel in the grid itself), journaled, and scheduled.
//
//vbi:wire
type SubmitRequest struct {
	// Version must equal the daemon's dist.ProtocolVersion: a submit from
	// a binary with a different timing model or wire format is refused
	// with 412, the same never-mix-models stance as the worker protocol.
	Version string `json:"version"`
	// Name is an optional human label echoed in listings.
	Name string `json:"name,omitempty"`
	// Grid is the sweep definition, exactly the shape vbisweep -config
	// takes.
	Grid harness.Grid `json:"grid"`
	// Metric selects the matrix metric (default harness.MetricIPC).
	Metric string `json:"metric,omitempty"`
}

// SubmitResponse answers a successful submit.
//
//vbi:wire
type SubmitResponse struct {
	// ID names the sweep for GET/DELETE and vbisweep -watch/-cancel.
	ID string `json:"id"`
	// Total is the expanded job count.
	Total int `json:"total"`
	// Version is the daemon's dist.ProtocolVersion.
	Version string `json:"version"`
}

// SweepStatus is one sweep's progress as the API reports it.
//
//vbi:wire
type SweepStatus struct {
	ID     string `json:"id"`
	Name   string `json:"name,omitempty"`
	State  string `json:"state"`
	Metric string `json:"metric"`
	// Total / Completed / Cached / InFlight / Queued account every job:
	// Cached counts the completions served from the shared result cache,
	// Queued the jobs still waiting for a worker.
	Total     int `json:"total"`
	Completed int `json:"completed"`
	Cached    int `json:"cached"`
	InFlight  int `json:"in_flight"`
	Queued    int `json:"queued"`

	SubmittedAt time.Time `json:"submitted_at"`
	// FinishedAt is zero while the sweep is active.
	FinishedAt time.Time `json:"finished_at"`
	// Error is the failure reason for StateFailed.
	Error string `json:"error,omitempty"`

	// Observability fields, derived from per-job timing records (wire3).
	// JobsPerSecond is the fleet's remote completion rate for this sweep
	// (cache pre-pass hits excluded) and ETASeconds the projected time to
	// drain the remaining jobs at that rate; both are zero until the first
	// remote completion and absent on terminal sweeps.
	JobsPerSecond float64 `json:"jobs_per_second,omitempty"`
	ETASeconds    float64 `json:"eta_seconds,omitempty"`
	// SimSeconds is the summed worker wall-clock across this sweep's
	// simulated (non-cached) jobs — the compute the sweep actually bought.
	SimSeconds float64 `json:"sim_seconds,omitempty"`
	// Phases is the summed per-phase event breakdown (TLB, PWC, walk,
	// cache, DRAM) across completed jobs, cached ones included.
	Phases *obs.PhaseCounts `json:"phases,omitempty"`
}

// WorkerLatency is one worker's shard-latency summary in StatusResponse:
// quantile estimates from the daemon's per-worker shard-seconds
// histogram.
//
//vbi:wire
type WorkerLatency struct {
	Worker string `json:"worker"`
	// Count is the number of completed shard requests observed.
	Count uint64 `json:"count"`
	// P50/P90/P99 are estimated shard round-trip seconds.
	P50Seconds float64 `json:"p50_seconds"`
	P90Seconds float64 `json:"p90_seconds"`
	P99Seconds float64 `json:"p99_seconds"`
}

// SweepResponse answers GET /sweeps/{id}: the status plus, for a done
// sweep, the rendered result matrix — the same stats.Table JSON document
// `vbisweep -json` writes, byte for byte, so clients can compare daemon
// results against local runs directly.
//
//vbi:wire
type SweepResponse struct {
	SweepStatus
	Table json.RawMessage `json:"table,omitempty"`
}

// ListResponse answers GET /sweeps, in submission order.
//
//vbi:wire
type ListResponse struct {
	Sweeps []SweepStatus `json:"sweeps"`
}

// StatusResponse answers GET /status: the human-readable JSON plane.
//
//vbi:wire
type StatusResponse struct {
	Service string `json:"service"` // always "vbisweepd"
	Version string `json:"version"` // the daemon's dist.ProtocolVersion
	// Fleet is the current membership table, quarantined members included.
	Fleet []dist.MemberInfo `json:"fleet"`
	// Sweeps lists every known sweep's progress, submission order.
	Sweeps []SweepStatus `json:"sweeps"`
	// Latency is each worker's shard round-trip summary, sorted by worker
	// ID; empty until a shard completes.
	Latency []WorkerLatency `json:"latency,omitempty"`
}

// errorBody is the JSON body of every non-200 response.
//
//vbi:wire
type errorBody struct {
	Error string `json:"error"`
}
