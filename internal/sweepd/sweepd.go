package sweepd

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"vbi/internal/dist"
	"vbi/internal/harness"
	"vbi/internal/obs"
	"vbi/internal/system"
)

// Server is the sweep service: a durable, multi-sweep front-end over one
// worker fleet. Configure the exported fields, then Start (which replays
// the journal) and mount Handler on a listener. All fields are read-only
// after Start.
type Server struct {
	// Dir is the journal directory: one JSON record per sweep, written
	// atomically on submit and on every terminal transition. A restarted
	// daemon replays it — non-terminal sweeps are re-admitted and resume
	// from Cache; terminal ones stay queryable.
	Dir string
	// Cache is the shared on-disk result cache. Optional but strongly
	// recommended: it is what makes restart resumption incremental, and
	// remote shard results stream into it exactly like the coordinator's.
	Cache *harness.Cache
	// Fleet is the worker membership registry. The daemon mounts its
	// /register and /leave routes on the same listener as the API.
	Fleet *dist.Registry
	// AuthToken, when non-empty, gates every route and is sent on every
	// worker request.
	AuthToken string
	// ShardSize is the number of jobs per shard (<=0 = 4), the dispatch
	// and requeue granularity.
	ShardSize int
	// Timeout bounds one worker request (<=0 = 10m).
	Timeout time.Duration
	// Retries is how many consecutive failures drop a worker (<=0 = 2).
	Retries int
	// MaxShardAttempts fails a sweep whose shard has been refused this
	// many times across the whole fleet (<=0 = 8) — the backstop against a
	// job that errors deterministically on every worker.
	MaxShardAttempts int
	// PollInterval is the membership poll cadence (<=0 = 250ms).
	PollInterval time.Duration
	// Logger, when non-nil, receives the daemon's structured activity
	// records. cmd/vbisweepd wires it to -log-format/-log-level; shard
	// dispatch records carry the scheduler's trace-ID chain.
	Logger *slog.Logger
	// Client, when non-nil, overrides the HTTP client used for worker
	// requests (TLS, tests).
	Client *http.Client

	mu      sync.Mutex
	sweeps  map[string]*sweep
	order   []string // submission order, for listings and resume
	sched   *scheduler
	metrics *metrics
}

// sweep is one sweep's in-memory state. results/completed are positional
// over rec.Jobs, so merge order can never reorder the matrix.
type sweep struct {
	rec       record
	jobs      []harness.Job
	results   [][]system.RunResult
	completed []bool
	remaining int
	cached    int
	inflight  int
	// Observability accounting, accumulated from per-job timing records:
	// summed worker wall nanos (cache hits excluded), summed phase events,
	// and the remote-completion rate basis for throughput/ETA.
	simNanos    int64
	phases      obs.PhaseCounts
	remoteDone  int
	firstRemote time.Time
}

// record is the journal document: everything needed to resume (the
// canonical self-describing job list — specs ride inside the jobs — plus
// the grid for matrix labels) and, once terminal, everything needed to
// answer GET /sweeps/{id} forever (state, error, result table).
//
//vbi:wire
type record struct {
	// Version pins the harness schema the jobs were expanded under; a
	// journal from a different binary is refused at load (the same
	// never-mix-models stance as the wire protocol).
	Version     string          `json:"version"`
	ID          string          `json:"id"`
	Name        string          `json:"name,omitempty"`
	State       string          `json:"state"`
	Metric      string          `json:"metric"`
	SubmittedAt time.Time       `json:"submitted_at"`
	FinishedAt  time.Time       `json:"finished_at"`
	Error       string          `json:"error,omitempty"`
	Grid        harness.Grid    `json:"grid"`
	Jobs        []harness.Job   `json:"jobs"`
	Table       json.RawMessage `json:"table,omitempty"`
}

// terminal reports whether a state accepts no further work.
func terminal(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCancelled
}

func (s *Server) shardSize() int {
	if s.ShardSize <= 0 {
		return 4
	}
	return s.ShardSize
}

func (s *Server) timeout() time.Duration {
	if s.Timeout <= 0 {
		return 10 * time.Minute
	}
	return s.Timeout
}

func (s *Server) retries() int {
	if s.Retries <= 0 {
		return 2
	}
	return s.Retries
}

func (s *Server) maxShardAttempts() int {
	if s.MaxShardAttempts <= 0 {
		return 8
	}
	return s.MaxShardAttempts
}

func (s *Server) pollInterval() time.Duration {
	if s.PollInterval <= 0 {
		return 250 * time.Millisecond
	}
	return s.PollInterval
}

func (s *Server) client() *http.Client {
	if s.Client != nil {
		return s.Client
	}
	return http.DefaultClient
}

func (s *Server) log() *slog.Logger {
	if s.Logger != nil {
		return s.Logger
	}
	return obs.Discard
}

func (s *Server) logf(format string, args ...any) {
	if s.Logger == nil {
		return
	}
	s.Logger.Info(fmt.Sprintf(format, args...))
}

// Start replays the journal and launches the scheduler. It returns after
// recovery; the scheduler runs until ctx (the daemon's lifetime) ends.
func (s *Server) Start(ctx context.Context) error {
	if s.Dir == "" {
		return fmt.Errorf("sweepd: Dir (journal directory) is required")
	}
	if s.Fleet == nil {
		return fmt.Errorf("sweepd: Fleet registry is required")
	}
	if err := os.MkdirAll(s.Dir, 0o755); err != nil {
		return fmt.Errorf("sweepd: journal dir: %w", err)
	}
	s.mu.Lock()
	s.sweeps = map[string]*sweep{}
	s.metrics = newMetrics()
	s.sched = newScheduler(s)
	s.mu.Unlock()
	if err := s.load(); err != nil {
		return err
	}
	go s.sched.run(ctx)
	return nil
}

// load replays every journal record: terminal sweeps become queryable
// history, non-terminal ones are re-admitted (their completed jobs come
// straight back from Cache, so resumption costs only the cache reads).
func (s *Server) load() error {
	ents, err := os.ReadDir(s.Dir)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	var recs []record
	for _, de := range ents {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".sweep.json") {
			continue
		}
		path := filepath.Join(s.Dir, de.Name())
		b, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		var rec record
		if err := json.Unmarshal(b, &rec); err != nil || rec.ID == "" {
			s.logf("sweepd: skipping unreadable journal record %s: %v", de.Name(), err)
			continue
		}
		if rec.Version != harness.Version {
			// Jobs expanded under a different schema cannot be resumed (or
			// even re-expanded) by this binary; keep the file for the
			// operator, skip the sweep.
			s.logf("sweepd: skipping journal record %s: version %s, daemon runs %s", rec.ID, rec.Version, harness.Version)
			continue
		}
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, j int) bool {
		if !recs[i].SubmittedAt.Equal(recs[j].SubmittedAt) {
			return recs[i].SubmittedAt.Before(recs[j].SubmittedAt)
		}
		return recs[i].ID < recs[j].ID
	})
	for _, rec := range recs {
		sw := &sweep{
			rec:       rec,
			jobs:      rec.Jobs,
			results:   make([][]system.RunResult, len(rec.Jobs)),
			completed: make([]bool, len(rec.Jobs)),
			remaining: len(rec.Jobs),
		}
		s.mu.Lock()
		s.sweeps[rec.ID] = sw
		s.order = append(s.order, rec.ID)
		s.mu.Unlock()
		if terminal(rec.State) {
			continue
		}
		s.logf("sweepd: resuming sweep %s (%d jobs)", rec.ID, len(rec.Jobs))
		s.admit(sw)
	}
	return nil
}

// newID mints a sweep id: time-prefixed so listings sort naturally, with
// random bits so restarts and concurrent submits cannot collide.
func (s *Server) newID() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("sweepd: generate id: %v", err))
	}
	return fmt.Sprintf("sw-%x-%s", time.Now().Unix(), hex.EncodeToString(b[:]))
}

// journalPath is the sweep's record file.
func (s *Server) journalPath(id string) string {
	return filepath.Join(s.Dir, id+".sweep.json")
}

// journal writes a sweep's record atomically (temp + rename, the cache's
// own durability idiom). Callers hold s.mu.
func (s *Server) journal(sw *sweep) error {
	b, err := json.MarshalIndent(sw.rec, "", " ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.Dir, ".journal-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), s.journalPath(sw.rec.ID))
}

// Submit expands, journals and schedules a sweep, returning its id and
// job count. It is the API core of POST /sweeps (exported for in-process
// use and tests).
func (s *Server) Submit(req SubmitRequest) (SubmitResponse, error) {
	metric := req.Metric
	if metric == "" {
		metric = harness.MetricIPC
	}
	if err := harness.ValidateMetric(metric); err != nil {
		return SubmitResponse{}, err
	}
	grid := req.Grid
	if grid.Refs == 0 && len(grid.RefsAxis) == 0 {
		grid.Refs = 100_000
	}
	jobs, err := grid.Jobs()
	if err != nil {
		return SubmitResponse{}, err
	}
	sw := &sweep{
		rec: record{
			Version:     harness.Version,
			ID:          s.newID(),
			Name:        req.Name,
			State:       StateQueued,
			Metric:      metric,
			SubmittedAt: time.Now().UTC(),
			Grid:        grid,
			Jobs:        jobs,
		},
		jobs:      jobs,
		results:   make([][]system.RunResult, len(jobs)),
		completed: make([]bool, len(jobs)),
		remaining: len(jobs),
	}
	s.mu.Lock()
	// Journal before admitting: once the submit returns, a kill -9 at any
	// instant must leave a record a restarted daemon resumes from.
	if err := s.journal(sw); err != nil {
		s.mu.Unlock()
		return SubmitResponse{}, fmt.Errorf("sweepd: journal: %w", err)
	}
	s.sweeps[sw.rec.ID] = sw
	s.order = append(s.order, sw.rec.ID)
	s.mu.Unlock()
	s.metrics.sweepEvent(StateQueued)
	s.logf("sweepd: accepted sweep %s (%q, %d jobs)", sw.rec.ID, req.Name, len(jobs))
	s.admit(sw)
	return SubmitResponse{ID: sw.rec.ID, Total: len(jobs), Version: dist.ProtocolVersion}, nil
}

// admit runs the cache pre-pass and enqueues the misses as shards. Cache
// hits complete immediately — a fully warmed sweep finishes inside its
// own submit, and a restarted daemon re-completes previously finished
// jobs without any worker traffic.
func (s *Server) admit(sw *sweep) {
	var miss []int
	for i, j := range sw.jobs {
		if s.Cache != nil {
			if res, ok := s.Cache.Get(j); ok {
				// Same timing shape the harness gives cache hits: no wall
				// time, phases recovered from the stored counters.
				s.complete(sw.rec.ID, i, res, true,
					&obs.JobTiming{Cached: true, Phases: system.SumPhases(res)})
				continue
			}
		}
		miss = append(miss, i)
	}
	size := s.shardSize()
	var tasks []*task
	for lo := 0; lo < len(miss); lo += size {
		hi := lo + size
		if hi > len(miss) {
			hi = len(miss)
		}
		tasks = append(tasks, &task{sweepID: sw.rec.ID, indices: miss[lo:hi]})
	}
	s.sched.queue.add(sw.rec.ID, tasks)
	s.sched.nudge()
}

// complete records one finished job. Duplicate completions (a shard
// requeued past a slow worker that eventually answered) are ignored; the
// first result wins, and determinism makes the duplicates identical
// anyway. The last completion finalizes the sweep. timing, when non-nil,
// feeds the sweep's throughput/ETA and phase accounting — observability
// only, never part of the journaled result table.
func (s *Server) complete(sweepID string, idx int, results []system.RunResult, fromCache bool, timing *obs.JobTiming) {
	s.mu.Lock()
	sw, ok := s.sweeps[sweepID]
	if !ok || terminal(sw.rec.State) || sw.completed[idx] {
		s.mu.Unlock()
		return
	}
	sw.results[idx] = results
	sw.completed[idx] = true
	sw.remaining--
	if timing != nil {
		sw.phases = sw.phases.Add(timing.Phases)
		if !timing.Cached {
			sw.simNanos += timing.WallNanos
		}
	}
	if fromCache {
		sw.cached++
	} else {
		if sw.remoteDone == 0 {
			sw.firstRemote = time.Now()
		}
		sw.remoteDone++
	}
	if !fromCache && s.Cache != nil {
		// Stream remote results into the shared cache exactly like the
		// one-shot coordinator: this is what restart resumption reads.
		if err := s.Cache.Put(sw.jobs[idx], results); err != nil {
			s.logf("sweepd: cache put: %v", err)
		}
	}
	last := sw.remaining == 0
	if last {
		s.finalizeLocked(sw)
	}
	s.mu.Unlock()
	s.metrics.jobDone(fromCache)
}

// finalizeLocked renders the done sweep's matrix and journals the
// terminal record. Called with s.mu held, on the completion of the last
// job.
func (s *Server) finalizeLocked(sw *sweep) {
	results := make([]harness.Result, len(sw.jobs))
	for i, j := range sw.jobs {
		results[i] = harness.Result{Job: j, Results: sw.results[i]}
	}
	table, err := sw.rec.Grid.Matrix(results, sw.rec.Metric)
	if err != nil {
		s.failLocked(sw, fmt.Errorf("render matrix: %w", err))
		return
	}
	var buf bytes.Buffer
	if err := table.WriteJSON(&buf); err != nil {
		s.failLocked(sw, fmt.Errorf("encode matrix: %w", err))
		return
	}
	sw.rec.State = StateDone
	sw.rec.FinishedAt = time.Now().UTC()
	sw.rec.Table = buf.Bytes()
	if err := s.journal(sw); err != nil {
		s.logf("sweepd: journal %s: %v", sw.rec.ID, err)
	}
	s.metrics.sweepEvent(StateDone)
	s.logf("sweepd: sweep %s done (%d jobs, %d from cache)", sw.rec.ID, len(sw.jobs), sw.cached)
}

// failSweep marks a sweep failed and drops its queued shards.
func (s *Server) failSweep(sweepID string, cause error) {
	s.mu.Lock()
	sw, ok := s.sweeps[sweepID]
	if !ok || terminal(sw.rec.State) {
		s.mu.Unlock()
		return
	}
	s.failLocked(sw, cause)
	s.mu.Unlock()
	s.sched.queue.drop(sweepID)
}

func (s *Server) failLocked(sw *sweep, cause error) {
	sw.rec.State = StateFailed
	sw.rec.Error = cause.Error()
	sw.rec.FinishedAt = time.Now().UTC()
	if err := s.journal(sw); err != nil {
		s.logf("sweepd: journal %s: %v", sw.rec.ID, err)
	}
	s.metrics.sweepEvent(StateFailed)
	s.logf("sweepd: sweep %s failed: %v", sw.rec.ID, cause)
}

// markInFlight adjusts per-sweep in-flight job counts around a dispatch.
func (s *Server) markInFlight(refs map[string]int, delta int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	//vbi:allow maporder each sweep id adjusts its own counter; += commutes and ids are distinct
	for id, n := range refs {
		if sw, ok := s.sweeps[id]; ok {
			sw.inflight += n * delta
		}
	}
}

// statusLocked derives a sweep's reported status. Active records persist
// as StateQueued; the running/queued distinction is display-only, derived
// from progress, so the journal never needs rewriting mid-sweep.
func (s *Server) statusLocked(sw *sweep) SweepStatus {
	st := SweepStatus{
		ID:          sw.rec.ID,
		Name:        sw.rec.Name,
		State:       sw.rec.State,
		Metric:      sw.rec.Metric,
		Total:       len(sw.jobs),
		Completed:   len(sw.jobs) - sw.remaining,
		Cached:      sw.cached,
		InFlight:    sw.inflight,
		SubmittedAt: sw.rec.SubmittedAt,
		FinishedAt:  sw.rec.FinishedAt,
		Error:       sw.rec.Error,
		SimSeconds:  float64(sw.simNanos) / 1e9,
	}
	if !sw.phases.IsZero() {
		p := sw.phases
		st.Phases = &p
	}
	if !terminal(st.State) {
		st.Queued = sw.remaining - sw.inflight
		if st.Completed > 0 || st.InFlight > 0 {
			st.State = StateRunning
		} else {
			st.State = StateQueued
		}
		// Throughput from remote completions only: cache pre-pass hits
		// complete instantly and would wildly overstate the fleet's rate.
		if sw.remoteDone > 0 {
			if elapsed := time.Since(sw.firstRemote).Seconds(); elapsed > 0 {
				st.JobsPerSecond = float64(sw.remoteDone) / elapsed
				st.ETASeconds = float64(sw.remaining) / st.JobsPerSecond
			}
		}
	}
	return st
}

// Handler returns the daemon's full HTTP plane: the sweep API, /status,
// /metrics, and the fleet membership routes, all behind the shared-token
// gate when AuthToken is set.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathSweeps, s.handleSweeps)
	mux.HandleFunc(PathSweeps+"/", s.handleSweep)
	mux.HandleFunc(PathStatus, s.handleStatus)
	mux.HandleFunc(PathMetrics, s.handleMetrics)
	s.Fleet.Mount(mux)
	return dist.RequireAuth(s.AuthToken, mux)
}

func writeJSON(rw http.ResponseWriter, status int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	json.NewEncoder(rw).Encode(v)
}

func (s *Server) handleSweeps(rw http.ResponseWriter, req *http.Request) {
	switch req.Method {
	case http.MethodPost:
		var sr SubmitRequest
		if err := json.NewDecoder(req.Body).Decode(&sr); err != nil {
			writeJSON(rw, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad request: %v", err)})
			return
		}
		if sr.Version != dist.ProtocolVersion {
			writeJSON(rw, http.StatusPreconditionFailed, errorBody{
				Error: fmt.Sprintf("version mismatch: client %s, daemon %s", sr.Version, dist.ProtocolVersion)})
			return
		}
		resp, err := s.Submit(sr)
		if err != nil {
			writeJSON(rw, http.StatusBadRequest, errorBody{Error: err.Error()})
			return
		}
		writeJSON(rw, http.StatusOK, resp)
	case http.MethodGet:
		s.mu.Lock()
		out := ListResponse{Sweeps: []SweepStatus{}}
		for _, id := range s.order {
			out.Sweeps = append(out.Sweeps, s.statusLocked(s.sweeps[id]))
		}
		s.mu.Unlock()
		writeJSON(rw, http.StatusOK, out)
	default:
		writeJSON(rw, http.StatusMethodNotAllowed, errorBody{Error: "POST or GET only"})
	}
}

func (s *Server) handleSweep(rw http.ResponseWriter, req *http.Request) {
	id := strings.TrimPrefix(req.URL.Path, PathSweeps+"/")
	if id == "" || strings.Contains(id, "/") {
		writeJSON(rw, http.StatusNotFound, errorBody{Error: "want /sweeps/{id}"})
		return
	}
	switch req.Method {
	case http.MethodGet:
		s.mu.Lock()
		sw, ok := s.sweeps[id]
		if !ok {
			s.mu.Unlock()
			writeJSON(rw, http.StatusNotFound, errorBody{Error: fmt.Sprintf("unknown sweep %q", id)})
			return
		}
		resp := SweepResponse{SweepStatus: s.statusLocked(sw), Table: sw.rec.Table}
		s.mu.Unlock()
		writeJSON(rw, http.StatusOK, resp)
	case http.MethodDelete:
		st, ok := s.cancel(id)
		if !ok {
			writeJSON(rw, http.StatusNotFound, errorBody{Error: fmt.Sprintf("unknown sweep %q", id)})
			return
		}
		writeJSON(rw, http.StatusOK, st)
	default:
		writeJSON(rw, http.StatusMethodNotAllowed, errorBody{Error: "GET or DELETE only"})
	}
}

// cancel implements DELETE /sweeps/{id}: an active sweep is cancelled
// (queued shards dropped, in-flight results discarded on arrival, the
// terminal record journaled); a terminal sweep is forgotten entirely —
// record file included — which is how operators clean up history.
func (s *Server) cancel(id string) (SweepStatus, bool) {
	s.mu.Lock()
	sw, ok := s.sweeps[id]
	if !ok {
		s.mu.Unlock()
		return SweepStatus{}, false
	}
	if terminal(sw.rec.State) {
		delete(s.sweeps, id)
		for i, oid := range s.order {
			if oid == id {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
		st := s.statusLocked(sw)
		if err := os.Remove(s.journalPath(id)); err != nil && !errors.Is(err, fs.ErrNotExist) {
			s.logf("sweepd: remove journal %s: %v", id, err)
		}
		s.mu.Unlock()
		s.logf("sweepd: forgot terminal sweep %s", id)
		return st, true
	}
	sw.rec.State = StateCancelled
	sw.rec.FinishedAt = time.Now().UTC()
	if err := s.journal(sw); err != nil {
		s.logf("sweepd: journal %s: %v", id, err)
	}
	st := s.statusLocked(sw)
	s.mu.Unlock()
	s.sched.queue.drop(id)
	s.metrics.sweepEvent(StateCancelled)
	s.logf("sweepd: cancelled sweep %s", id)
	return st, true
}

func (s *Server) handleStatus(rw http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		writeJSON(rw, http.StatusMethodNotAllowed, errorBody{Error: "GET only"})
		return
	}
	resp := StatusResponse{
		Service: "vbisweepd",
		Version: dist.ProtocolVersion,
		Fleet:   s.Fleet.Snapshot(),
		Sweeps:  []SweepStatus{},
		Latency: s.metrics.latency(),
	}
	s.mu.Lock()
	for _, id := range s.order {
		resp.Sweeps = append(resp.Sweeps, s.statusLocked(s.sweeps[id]))
	}
	s.mu.Unlock()
	writeJSON(rw, http.StatusOK, resp)
}

func (s *Server) handleMetrics(rw http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		writeJSON(rw, http.StatusMethodNotAllowed, errorBody{Error: "GET only"})
		return
	}
	g := gauges{
		sweepStates:   map[string]int{},
		queueDepths:   map[string]int{},
		jobsPerSecond: map[string]float64{},
		etaSeconds:    map[string]float64{},
	}
	for _, m := range s.Fleet.Snapshot() {
		if m.Quarantined {
			g.quarantined++
		} else {
			g.workers++
		}
	}
	s.mu.Lock()
	for _, id := range s.order {
		st := s.statusLocked(s.sweeps[id])
		g.sweepStates[st.State]++
		if !terminal(st.State) {
			g.queueDepths[id] = s.sched.queue.depth(id)
			g.jobsQueued += st.Queued
			g.jobsInFlight += st.InFlight
			if st.JobsPerSecond > 0 {
				g.jobsPerSecond[id] = st.JobsPerSecond
				g.etaSeconds[id] = st.ETASeconds
			}
		}
	}
	s.mu.Unlock()
	if s.Cache != nil {
		g.cacheHits, g.cacheMisses = s.Cache.Counters()
	}
	rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	rw.WriteHeader(http.StatusOK)
	s.metrics.WriteMetrics(rw, g)
}
