package sweepd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vbi/internal/dist"
	"vbi/internal/harness"
	"vbi/internal/stats"
)

// testGrid is the canonical small sweep: 2 systems × 2 workloads, cheap
// enough to run several times per test binary.
func testGrid() harness.Grid {
	return harness.Grid{
		Systems:   []string{"Native", "VBI-Full"},
		Workloads: []string{"namd", "sjeng"},
		Refs:      5_000,
	}
}

// localTable renders the grid's matrix from a serial local run — the
// byte-identity reference every daemon result must match.
func localTable(t *testing.T, grid harness.Grid, metric string) []byte {
	t.Helper()
	jobs, err := grid.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	results, err := (&harness.Runner{Workers: 1}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	table, err := grid.Matrix(results, metric)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := table.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// renderTable re-renders a SweepResponse.Table the way a client writing
// an artifact does (decode, WriteJSON). HTTP transport compacts embedded
// JSON whitespace; re-encoding restores the exact local byte shape
// because float64 values round-trip exactly.
func renderTable(t *testing.T, raw json.RawMessage) []byte {
	t.Helper()
	var tab stats.Table
	if err := json.Unmarshal(raw, &tab); err != nil {
		t.Fatalf("decode table: %v", err)
	}
	var buf bytes.Buffer
	if err := tab.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// newTestServer builds a started Server over the given journal/cache
// dirs, plus an httptest front-end serving its full Handler. The returned
// cancel is the daemon's kill switch (scheduler stops, nothing is
// journaled — the closest a test gets to kill -9).
func newTestServer(t *testing.T, dir, cacheDir string) (*Server, *httptest.Server, context.CancelFunc) {
	t.Helper()
	srv := &Server{
		Dir:       dir,
		Cache:     &harness.Cache{Dir: cacheDir},
		Fleet:     &dist.Registry{},
		ShardSize: 1,
	}
	ctx, cancel := context.WithCancel(context.Background())
	if err := srv.Start(ctx); err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(srv.Handler())
	t.Cleanup(front.Close)
	t.Cleanup(cancel)
	return srv, front, cancel
}

// addWorker registers a fresh in-process worker with the server's fleet.
func addWorker(t *testing.T, srv *Server, workers int) {
	t.Helper()
	w := httptest.NewServer((&dist.Worker{Runner: &harness.Runner{Workers: workers}}).Handler())
	t.Cleanup(w.Close)
	srv.Fleet.Add(w.URL, workers, true, "")
}

// submit POSTs a sweep and returns its id.
func submit(t *testing.T, base, name string, grid harness.Grid) string {
	t.Helper()
	body, _ := json.Marshal(SubmitRequest{
		Version: dist.ProtocolVersion,
		Name:    name,
		Grid:    grid,
	})
	resp, err := http.Post(base+PathSweeps, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: status %s", resp.Status)
	}
	var sr SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.ID == "" || sr.Total == 0 {
		t.Fatalf("submit response = %+v", sr)
	}
	return sr.ID
}

// get fetches one sweep's status + table.
func get(t *testing.T, base, id string) SweepResponse {
	t.Helper()
	resp, err := http.Get(base + PathSweeps + "/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get %s: status %s", id, resp.Status)
	}
	var sr SweepResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return sr
}

// waitState polls until the sweep reaches the wanted state (or the sweep
// fails the test at timeout).
func waitState(t *testing.T, base, id, want string) SweepResponse {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		sr := get(t, base, id)
		if sr.State == want {
			return sr
		}
		if terminal(sr.State) {
			t.Fatalf("sweep %s reached %s (error %q), want %s", id, sr.State, sr.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep %s stuck in %s (completed %d/%d), want %s",
				id, sr.State, sr.Completed, sr.Total, want)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestSubmitRunsToCompletion is the service's core contract: a sweep
// submitted over the API runs on the fleet to done, and its stored table
// is byte-identical to a serial local run's JSON export.
func TestSubmitRunsToCompletion(t *testing.T) {
	srv, front, _ := newTestServer(t, t.TempDir(), t.TempDir())
	addWorker(t, srv, 2)

	grid := testGrid()
	id := submit(t, front.URL, "fig6", grid)
	sr := waitState(t, front.URL, id, StateDone)
	if sr.Completed != sr.Total || sr.Total != 4 {
		t.Errorf("completed %d/%d, want 4/4", sr.Completed, sr.Total)
	}
	want := localTable(t, grid, harness.MetricIPC)
	if got := renderTable(t, sr.Table); !bytes.Equal(got, want) {
		t.Errorf("daemon table differs from serial local run:\n got: %s\nwant: %s", got, want)
	}
}

// TestSubmitVersionGate pins the 412 on a client from a different binary.
func TestSubmitVersionGate(t *testing.T) {
	_, front, _ := newTestServer(t, t.TempDir(), t.TempDir())
	body, _ := json.Marshal(SubmitRequest{Version: "vbi-harness-v0+wire1", Grid: testGrid()})
	resp, err := http.Post(front.URL+PathSweeps, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusPreconditionFailed {
		t.Errorf("status = %s, want 412", resp.Status)
	}
}

// TestDryFleetIsBackpressure asserts a submit with no workers queues
// instead of failing, and that a worker joining later drains it.
func TestDryFleetIsBackpressure(t *testing.T) {
	srv, front, _ := newTestServer(t, t.TempDir(), t.TempDir())
	id := submit(t, front.URL, "", testGrid())

	time.Sleep(100 * time.Millisecond)
	sr := get(t, front.URL, id)
	if sr.State != StateQueued {
		t.Fatalf("state with dry fleet = %s, want %s", sr.State, StateQueued)
	}
	if sr.Queued != sr.Total {
		t.Errorf("queued = %d, want %d", sr.Queued, sr.Total)
	}

	addWorker(t, srv, 2)
	waitState(t, front.URL, id, StateDone)
}

// TestRestartResumesFromJournal is the durability contract: two sweeps
// submitted to a daemon that dies mid-sweep (journaled, partially cached,
// never finalized) are resumed by a fresh daemon over the same journal
// and cache dirs, and both finish with matrices byte-identical to serial
// local runs.
func TestRestartResumesFromJournal(t *testing.T) {
	dir, cacheDir := t.TempDir(), t.TempDir()

	// First daemon: no workers ever join, so after the cache pre-pass the
	// sweeps sit queued. Pre-warm the shared cache with a strict subset of
	// sweep 1's jobs to make the resume genuinely incremental.
	cache := &harness.Cache{Dir: cacheDir}
	grid1, grid2 := testGrid(), harness.Grid{
		Systems:   []string{"Native", "VBI-Full"},
		Workloads: []string{"mcf"},
		Refs:      5_000,
	}
	jobs1, err := grid1.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	warmed, err := (&harness.Runner{Workers: 1}).Run(context.Background(), jobs1[:2])
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range warmed {
		if err := cache.Put(r.Job, r.Results); err != nil {
			t.Fatal(err)
		}
	}

	_, front1, kill := newTestServer(t, dir, cacheDir)
	id1 := submit(t, front1.URL, "big", grid1)
	id2 := submit(t, front1.URL, "small", grid2)

	sr := get(t, front1.URL, id1)
	if sr.Cached != 2 || sr.Completed != 2 {
		t.Fatalf("pre-warmed sweep shows completed=%d cached=%d, want 2/2", sr.Completed, sr.Cached)
	}

	// Kill the daemon mid-sweep: scheduler stops, nothing further is
	// journaled. The journal now holds two non-terminal records.
	kill()
	front1.Close()

	// Second daemon over the same dirs, this time with a worker.
	srv2, front2, _ := newTestServer(t, dir, cacheDir)
	addWorker(t, srv2, 2)

	done1 := waitState(t, front2.URL, id1, StateDone)
	done2 := waitState(t, front2.URL, id2, StateDone)
	if done1.Cached < 2 {
		t.Errorf("resumed sweep served %d jobs from cache, want >= 2", done1.Cached)
	}
	if want := localTable(t, grid1, harness.MetricIPC); !bytes.Equal(renderTable(t, done1.Table), want) {
		t.Errorf("resumed sweep 1 table differs from serial local run:\n got: %s\nwant: %s", done1.Table, want)
	}
	if want := localTable(t, grid2, harness.MetricIPC); !bytes.Equal(renderTable(t, done2.Table), want) {
		t.Errorf("resumed sweep 2 table differs from serial local run:\n got: %s\nwant: %s", done2.Table, want)
	}

	// The terminal records survive another restart as queryable history.
	_, front3, _ := newTestServer(t, dir, cacheDir)
	again := get(t, front3.URL, id1)
	if again.State != StateDone || !bytes.Equal(again.Table, done1.Table) {
		t.Error("terminal sweep not reloaded intact after a third restart")
	}
}

// TestCancelAndForget pins DELETE semantics: cancelling an active sweep
// is terminal and journaled; deleting a terminal sweep forgets it.
func TestCancelAndForget(t *testing.T) {
	dir := t.TempDir()
	_, front, _ := newTestServer(t, dir, t.TempDir())
	id := submit(t, front.URL, "", testGrid()) // dry fleet: stays queued

	req, _ := http.NewRequest(http.MethodDelete, front.URL+PathSweeps+"/"+id, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sr := get(t, front.URL, id); sr.State != StateCancelled {
		t.Fatalf("state after cancel = %s, want %s", sr.State, StateCancelled)
	}

	// A restart must reload the cancelled sweep as history, not resume it.
	_, front2, _ := newTestServer(t, dir, t.TempDir())
	if sr := get(t, front2.URL, id); sr.State != StateCancelled {
		t.Fatalf("cancelled sweep reloaded as %s", sr.State)
	}

	// Second DELETE forgets it entirely.
	req, _ = http.NewRequest(http.MethodDelete, front2.URL+PathSweeps+"/"+id, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	gone, err := http.Get(front2.URL + PathSweeps + "/" + id)
	if err != nil {
		t.Fatal(err)
	}
	gone.Body.Close()
	if gone.StatusCode != http.StatusNotFound {
		t.Errorf("forgotten sweep answered %s, want 404", gone.Status)
	}
}

// TestFairQueueRoundRobin is the starvation guarantee at the unit level:
// with a huge sweep and a small one pending, pops alternate between them,
// so the small sweep's last shard leaves the queue within 2×(its size)
// pops no matter how deep the huge backlog is.
func TestFairQueueRoundRobin(t *testing.T) {
	q := newFairQueue()
	mk := func(id string, n int) []*task {
		out := make([]*task, n)
		for i := range out {
			out[i] = &task{sweepID: id, indices: []int{i}}
		}
		return out
	}
	q.add("huge", mk("huge", 100))
	q.add("small", mk("small", 3))

	var seen []string
	smallLeft := 3
	pops := 0
	for smallLeft > 0 {
		ts := q.pop(1)
		if len(ts) != 1 {
			t.Fatalf("pop drained early after %d pops", pops)
		}
		pops++
		seen = append(seen, ts[0].sweepID)
		if ts[0].sweepID == "small" {
			smallLeft--
		}
	}
	if pops > 6 {
		t.Errorf("small sweep needed %d pops to drain behind a 100-shard backlog (%v), want <= 6", pops, seen)
	}

	// Multi-shard pops keep rotating too: a pop of 4 must serve both.
	q2 := newFairQueue()
	q2.add("huge", mk("huge", 100))
	q2.add("small", mk("small", 2))
	got := map[string]int{}
	for _, ts := range q2.pop(4) {
		got[ts.sweepID]++
	}
	if got["small"] != 2 || got["huge"] != 2 {
		t.Errorf("pop(4) = %v, want 2 shards from each sweep", got)
	}
}

// TestFairQueueRequeueAndDrop pins the retry and cancel edges: requeued
// shards land at the front of their sweep, and a dropped sweep's
// in-flight shards cannot be resurrected by a later requeue.
func TestFairQueueRequeueAndDrop(t *testing.T) {
	q := newFairQueue()
	a1 := &task{sweepID: "a", indices: []int{0}}
	a2 := &task{sweepID: "a", indices: []int{1}}
	q.add("a", []*task{a1, a2})

	got := q.pop(1)
	if len(got) != 1 || got[0] != a1 {
		t.Fatalf("pop = %v, want a1", got)
	}
	q.requeue(got)
	if next := q.pop(1); next[0] != a1 {
		t.Error("requeued shard did not return to the front of its sweep")
	}

	q.drop("a")
	if d := q.depth("a"); d != 0 {
		t.Errorf("depth after drop = %d, want 0", d)
	}
	q.requeue([]*task{a2})
	if d := q.depth("a"); d != 0 {
		t.Errorf("dropped sweep resurrected by requeue: depth = %d", d)
	}
	if got := q.pop(10); len(got) != 0 {
		t.Errorf("pop after drop returned %d shards", len(got))
	}
}

// TestFairSchedulingAcrossSweeps is the starvation guarantee end-to-end:
// a small sweep submitted behind a much larger one finishes while the big
// one is still running (single slow-ish worker, shard size 1).
func TestFairSchedulingAcrossSweeps(t *testing.T) {
	srv, front, _ := newTestServer(t, t.TempDir(), t.TempDir())

	big := harness.Grid{
		Systems:   []string{"Native", "VBI-1", "VBI-Full"},
		Workloads: []string{"namd", "sjeng", "mcf", "milc"},
		Refs:      20_000,
	}
	small := harness.Grid{
		Systems:   []string{"Native"},
		Workloads: []string{"namd"},
		Refs:      20_000,
	}
	bigID := submit(t, front.URL, "big", big)
	smallID := submit(t, front.URL, "small", small)
	addWorker(t, srv, 1)

	smallDone := waitState(t, front.URL, smallID, StateDone)
	bigAt := get(t, front.URL, bigID)
	if bigAt.Completed >= bigAt.Total {
		t.Skip("big sweep finished before the small one could be observed; host too fast to measure fairness")
	}
	if smallDone.State != StateDone {
		t.Errorf("small sweep = %s while big at %d/%d", smallDone.State, bigAt.Completed, bigAt.Total)
	}
	waitState(t, front.URL, bigID, StateDone)
}

// TestStatusAndMetrics scrapes both observability planes after a done
// sweep and sanity-checks their content.
func TestStatusAndMetrics(t *testing.T) {
	srv, front, _ := newTestServer(t, t.TempDir(), t.TempDir())
	addWorker(t, srv, 2)
	id := submit(t, front.URL, "obs", testGrid())
	waitState(t, front.URL, id, StateDone)

	resp, err := http.Get(front.URL + PathStatus)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Service != "vbisweepd" || st.Version != dist.ProtocolVersion {
		t.Errorf("status header = %s/%s", st.Service, st.Version)
	}
	if len(st.Fleet) != 1 {
		t.Errorf("status fleet = %d members, want 1", len(st.Fleet))
	}
	if len(st.Sweeps) != 1 || st.Sweeps[0].ID != id {
		t.Errorf("status sweeps = %+v", st.Sweeps)
	}

	mresp, err := http.Get(front.URL + PathMetrics)
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"sweepd_fleet_workers 1",
		fmt.Sprintf("sweepd_sweeps{state=%q} 1", StateDone),
		"sweepd_jobs_completed_total 4",
		"sweepd_sweeps_submitted_total 1",
		"sweepd_shards_completed_total{worker=",
		"sweepd_cache_hits_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

// TestAuthGate asserts the shared-token gate covers the sweep API.
func TestAuthGate(t *testing.T) {
	srv := &Server{
		Dir:       t.TempDir(),
		Fleet:     &dist.Registry{},
		AuthToken: "sekrit",
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := srv.Start(ctx); err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(srv.Handler())
	defer front.Close()

	resp, err := http.Get(front.URL + PathStatus)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("unauthenticated /status = %s, want 401", resp.Status)
	}
	req, _ := http.NewRequest(http.MethodGet, front.URL+PathStatus, nil)
	req.Header.Set("Authorization", "Bearer sekrit")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("authenticated /status = %s, want 200", resp.Status)
	}
}
