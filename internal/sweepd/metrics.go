package sweepd

import (
	"io"
	"sort"
	"sync"

	"vbi/internal/obs"
)

// metrics is the daemon's counter set, rendered on PathMetrics in the
// Prometheus text exposition format through the shared internal/obs
// writer. Counters are cumulative over the daemon process lifetime;
// queue depths, fleet size and sweep states are gauges computed at
// scrape time from live state. Rendering is deterministic — fixed family
// order, sorted label values — so two scrapes of the same state are
// byte-identical.
type metrics struct {
	mu sync.Mutex
	// per-worker counters, keyed by member ID
	shardsDispatched map[string]int64
	shardsCompleted  map[string]int64
	shardFailures    map[string]int64
	// per-worker shard round-trip latency (dispatch to merged response)
	shardSeconds map[string]*obs.Histogram
	// job + sweep counters
	jobsCompleted   int64
	jobsFromCache   int64 // completions served by the daemon's cache pre-pass
	sweepsSubmitted int64
	sweepsDone      int64
	sweepsFailed    int64
	sweepsCancelled int64
}

func newMetrics() *metrics {
	return &metrics{
		shardsDispatched: map[string]int64{},
		shardsCompleted:  map[string]int64{},
		shardFailures:    map[string]int64{},
		shardSeconds:     map[string]*obs.Histogram{},
	}
}

func (m *metrics) dispatched(worker string, shards int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.shardsDispatched[worker] += int64(shards)
}

func (m *metrics) completedShards(worker string, shards int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.shardsCompleted[worker] += int64(shards)
}

// observeShard records one completed shard request's round-trip seconds
// against its worker.
func (m *metrics) observeShard(worker string, seconds float64) {
	m.mu.Lock()
	h, ok := m.shardSeconds[worker]
	if !ok {
		h = obs.NewHistogram(obs.LatencyBuckets()...)
		m.shardSeconds[worker] = h
	}
	m.mu.Unlock()
	h.Observe(seconds)
}

func (m *metrics) failed(worker string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.shardFailures[worker]++
}

func (m *metrics) jobDone(fromCache bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobsCompleted++
	if fromCache {
		m.jobsFromCache++
	}
}

func (m *metrics) sweepEvent(state string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch state {
	case StateQueued:
		m.sweepsSubmitted++
	case StateDone:
		m.sweepsDone++
	case StateFailed:
		m.sweepsFailed++
	case StateCancelled:
		m.sweepsCancelled++
	}
}

// latency summarizes every worker's shard round-trip histogram for
// /status, sorted by worker ID.
func (m *metrics) latency() []WorkerLatency {
	m.mu.Lock()
	ids := make([]string, 0, len(m.shardSeconds))
	for id := range m.shardSeconds {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	snaps := make([]obs.HistogramSnapshot, len(ids))
	for i, id := range ids {
		snaps[i] = m.shardSeconds[id].Snapshot()
	}
	m.mu.Unlock()
	out := make([]WorkerLatency, len(ids))
	for i, id := range ids {
		s := snaps[i]
		out[i] = WorkerLatency{
			Worker:     id,
			Count:      s.Count,
			P50Seconds: s.Quantile(0.5),
			P90Seconds: s.Quantile(0.9),
			P99Seconds: s.Quantile(0.99),
		}
	}
	return out
}

// perWorker renders a per-worker counter map as sorted samples (sorted so
// scrapes are diffable).
func perWorker(counts map[string]int64) []obs.Sample {
	ids := make([]string, 0, len(counts))
	for id := range counts {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]obs.Sample, len(ids))
	for i, id := range ids {
		out[i] = obs.S(counts[id], obs.L("worker", id))
	}
	return out
}

// perSweep renders a per-sweep float gauge map as sorted samples.
func perSweep(values map[string]float64) []obs.Sample {
	ids := make([]string, 0, len(values))
	for id := range values {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]obs.Sample, len(ids))
	for i, id := range ids {
		out[i] = obs.S(values[id], obs.L("sweep", id))
	}
	return out
}

// WriteMetrics renders the full exposition for one scrape. The caller
// (Server.handleMetrics) passes the live gauges; the counter families
// come from the metrics struct itself.
func (m *metrics) WriteMetrics(w io.Writer, gauges gauges) {
	m.mu.Lock()
	defer m.mu.Unlock()

	obs.WriteFamily(w, "sweepd_fleet_workers", "Live fleet members.", "gauge",
		[]obs.Sample{obs.S(gauges.workers)})
	obs.WriteFamily(w, "sweepd_fleet_workers_quarantined", "Registered members currently quarantined after failures.", "gauge",
		[]obs.Sample{obs.S(gauges.quarantined)})

	var states []obs.Sample
	for _, st := range []string{StateQueued, StateRunning, StateDone, StateFailed, StateCancelled} {
		states = append(states, obs.S(gauges.sweepStates[st], obs.L("state", st)))
	}
	obs.WriteFamily(w, "sweepd_sweeps", "Known sweeps by state.", "gauge", states)

	var depths []obs.Sample
	ids := make([]string, 0, len(gauges.queueDepths))
	for id := range gauges.queueDepths {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		depths = append(depths, obs.S(gauges.queueDepths[id], obs.L("sweep", id)))
	}
	obs.WriteFamily(w, "sweepd_queue_depth_shards", "Pending shards per active sweep.", "gauge", depths)
	obs.WriteFamily(w, "sweepd_jobs_queued", "Jobs not yet completed across active sweeps.", "gauge",
		[]obs.Sample{obs.S(gauges.jobsQueued)})
	obs.WriteFamily(w, "sweepd_jobs_in_flight", "Jobs currently dispatched to workers.", "gauge",
		[]obs.Sample{obs.S(gauges.jobsInFlight)})
	obs.WriteFamily(w, "sweepd_sweep_jobs_per_second", "Remote job completion rate per active sweep.", "gauge",
		perSweep(gauges.jobsPerSecond))
	obs.WriteFamily(w, "sweepd_sweep_eta_seconds", "Projected seconds to drain each active sweep at its current rate.", "gauge",
		perSweep(gauges.etaSeconds))

	obs.WriteFamily(w, "sweepd_sweeps_submitted_total", "Sweeps accepted since daemon start.", "counter",
		[]obs.Sample{obs.S(m.sweepsSubmitted)})
	obs.WriteFamily(w, "sweepd_sweeps_completed_total", "Sweeps finished since daemon start.", "counter",
		[]obs.Sample{
			obs.S(m.sweepsDone, obs.L("state", StateDone)),
			obs.S(m.sweepsFailed, obs.L("state", StateFailed)),
			obs.S(m.sweepsCancelled, obs.L("state", StateCancelled)),
		})
	obs.WriteFamily(w, "sweepd_jobs_completed_total", "Jobs completed since daemon start.", "counter",
		[]obs.Sample{obs.S(m.jobsCompleted)})
	obs.WriteFamily(w, "sweepd_jobs_cache_served_total", "Job completions served from the shared result cache.", "counter",
		[]obs.Sample{obs.S(m.jobsFromCache)})

	obs.WriteFamily(w, "sweepd_shards_dispatched_total", "Shards sent to each worker.", "counter",
		perWorker(m.shardsDispatched))
	obs.WriteFamily(w, "sweepd_shards_completed_total", "Shards each worker completed (rate = shard throughput).", "counter",
		perWorker(m.shardsCompleted))
	obs.WriteFamily(w, "sweepd_shard_failures_total", "Failed shard requests per worker.", "counter",
		perWorker(m.shardFailures))

	var lat []obs.Sample
	wids := make([]string, 0, len(m.shardSeconds))
	for id := range m.shardSeconds {
		wids = append(wids, id)
	}
	sort.Strings(wids)
	for _, id := range wids {
		lat = append(lat, obs.QuantileSamples(m.shardSeconds[id].Snapshot(),
			[]float64{0.5, 0.9, 0.99}, obs.L("worker", id))...)
	}
	obs.WriteFamily(w, "sweepd_shard_seconds_quantile", "Estimated shard round-trip latency quantiles per worker.", "gauge", lat)

	obs.WriteFamily(w, "sweepd_cache_hits_total", "Result-cache hits in this daemon process.", "counter",
		[]obs.Sample{obs.S(gauges.cacheHits)})
	obs.WriteFamily(w, "sweepd_cache_misses_total", "Result-cache misses in this daemon process.", "counter",
		[]obs.Sample{obs.S(gauges.cacheMisses)})
}

// gauges is the scrape-time snapshot of live state: everything /metrics
// reports that is not a monotonic counter.
type gauges struct {
	workers       int
	quarantined   int
	sweepStates   map[string]int
	queueDepths   map[string]int
	jobsQueued    int
	jobsInFlight  int
	jobsPerSecond map[string]float64
	etaSeconds    map[string]float64
	cacheHits     int64
	cacheMisses   int64
}
