package sweepd

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// metrics is the daemon's counter set, rendered on PathMetrics in the
// Prometheus text exposition format (hand-rolled — the format is three
// lines per family and not worth a dependency). Counters are cumulative
// over the daemon process lifetime; queue depths, fleet size and sweep
// states are gauges computed at scrape time from live state.
type metrics struct {
	mu sync.Mutex
	// per-worker counters, keyed by member ID
	shardsDispatched map[string]int64
	shardsCompleted  map[string]int64
	shardFailures    map[string]int64
	// job + sweep counters
	jobsCompleted   int64
	jobsFromCache   int64 // completions served by the daemon's cache pre-pass
	sweepsSubmitted int64
	sweepsDone      int64
	sweepsFailed    int64
	sweepsCancelled int64
}

func newMetrics() *metrics {
	return &metrics{
		shardsDispatched: map[string]int64{},
		shardsCompleted:  map[string]int64{},
		shardFailures:    map[string]int64{},
	}
}

func (m *metrics) dispatched(worker string, shards int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.shardsDispatched[worker] += int64(shards)
}

func (m *metrics) completedShards(worker string, shards int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.shardsCompleted[worker] += int64(shards)
}

func (m *metrics) failed(worker string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.shardFailures[worker]++
}

func (m *metrics) jobDone(fromCache bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobsCompleted++
	if fromCache {
		m.jobsFromCache++
	}
}

func (m *metrics) sweepEvent(state string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch state {
	case StateQueued:
		m.sweepsSubmitted++
	case StateDone:
		m.sweepsDone++
	case StateFailed:
		m.sweepsFailed++
	case StateCancelled:
		m.sweepsCancelled++
	}
}

// write renders one metric family: HELP/TYPE header plus each sample.
func writeFamily(w io.Writer, name, help, typ string, samples []sample) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	for _, s := range samples {
		if s.label == "" {
			fmt.Fprintf(w, "%s %v\n", name, s.value)
		} else {
			fmt.Fprintf(w, "%s{%s=%q} %v\n", name, s.labelKey, s.label, s.value)
		}
	}
}

type sample struct {
	labelKey string
	label    string
	value    any
}

// perWorker renders a per-worker counter map as sorted samples (sorted so
// scrapes are diffable).
func perWorker(counts map[string]int64) []sample {
	ids := make([]string, 0, len(counts))
	for id := range counts {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]sample, len(ids))
	for i, id := range ids {
		out[i] = sample{labelKey: "worker", label: id, value: counts[id]}
	}
	return out
}

// WriteMetrics renders the full exposition for one scrape. The caller
// (Server.handleMetrics) passes the live gauges; the counter families
// come from the metrics struct itself.
func (m *metrics) WriteMetrics(w io.Writer, gauges gauges) {
	m.mu.Lock()
	defer m.mu.Unlock()

	writeFamily(w, "sweepd_fleet_workers", "Live fleet members.", "gauge",
		[]sample{{value: gauges.workers}})
	writeFamily(w, "sweepd_fleet_workers_quarantined", "Registered members currently quarantined after failures.", "gauge",
		[]sample{{value: gauges.quarantined}})

	var states []sample
	for _, st := range []string{StateQueued, StateRunning, StateDone, StateFailed, StateCancelled} {
		states = append(states, sample{labelKey: "state", label: st, value: gauges.sweepStates[st]})
	}
	writeFamily(w, "sweepd_sweeps", "Known sweeps by state.", "gauge", states)

	var depths []sample
	ids := make([]string, 0, len(gauges.queueDepths))
	for id := range gauges.queueDepths {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		depths = append(depths, sample{labelKey: "sweep", label: id, value: gauges.queueDepths[id]})
	}
	writeFamily(w, "sweepd_queue_depth_shards", "Pending shards per active sweep.", "gauge", depths)
	writeFamily(w, "sweepd_jobs_queued", "Jobs not yet completed across active sweeps.", "gauge",
		[]sample{{value: gauges.jobsQueued}})
	writeFamily(w, "sweepd_jobs_in_flight", "Jobs currently dispatched to workers.", "gauge",
		[]sample{{value: gauges.jobsInFlight}})

	writeFamily(w, "sweepd_sweeps_submitted_total", "Sweeps accepted since daemon start.", "counter",
		[]sample{{value: m.sweepsSubmitted}})
	writeFamily(w, "sweepd_sweeps_completed_total", "Sweeps finished since daemon start.", "counter",
		[]sample{
			{labelKey: "state", label: StateDone, value: m.sweepsDone},
			{labelKey: "state", label: StateFailed, value: m.sweepsFailed},
			{labelKey: "state", label: StateCancelled, value: m.sweepsCancelled},
		})
	writeFamily(w, "sweepd_jobs_completed_total", "Jobs completed since daemon start.", "counter",
		[]sample{{value: m.jobsCompleted}})
	writeFamily(w, "sweepd_jobs_cache_served_total", "Job completions served from the shared result cache.", "counter",
		[]sample{{value: m.jobsFromCache}})

	writeFamily(w, "sweepd_shards_dispatched_total", "Shards sent to each worker.", "counter",
		perWorker(m.shardsDispatched))
	writeFamily(w, "sweepd_shards_completed_total", "Shards each worker completed (rate = shard throughput).", "counter",
		perWorker(m.shardsCompleted))
	writeFamily(w, "sweepd_shard_failures_total", "Failed shard requests per worker.", "counter",
		perWorker(m.shardFailures))

	writeFamily(w, "sweepd_cache_hits_total", "Result-cache hits in this daemon process.", "counter",
		[]sample{{value: gauges.cacheHits}})
	writeFamily(w, "sweepd_cache_misses_total", "Result-cache misses in this daemon process.", "counter",
		[]sample{{value: gauges.cacheMisses}})
}

// gauges is the scrape-time snapshot of live state: everything /metrics
// reports that is not a monotonic counter.
type gauges struct {
	workers      int
	quarantined  int
	sweepStates  map[string]int
	queueDepths  map[string]int
	jobsQueued   int
	jobsInFlight int
	cacheHits    int64
	cacheMisses  int64
}
