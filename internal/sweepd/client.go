package sweepd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Client talks to a vbisweepd daemon: the vbisweep -submit/-watch/-cancel
// modes are thin wrappers over it.
type Client struct {
	// Base is the daemon address, with or without a scheme ("host:9600"
	// defaults to http).
	Base string
	// AuthToken, when non-empty, is sent as the bearer credential.
	AuthToken string
	// HTTP, when non-nil, overrides the transport (TLS).
	HTTP *http.Client
}

func (c *Client) http_() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	base := c.Base
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return strings.TrimSuffix(base, "/") + path
}

// do runs one API request: auth header, JSON body in, JSON body out, with
// every non-200 decoded into its error message.
func (c *Client) do(method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.url(path), rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.AuthToken != "" {
		req.Header.Set("Authorization", "Bearer "+c.AuthToken)
	}
	resp, err := c.http_().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		if json.NewDecoder(resp.Body).Decode(&eb) == nil && eb.Error != "" {
			return fmt.Errorf("%s: %s", resp.Status, eb.Error)
		}
		return fmt.Errorf("%s %s: %s", method, path, resp.Status)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit posts a sweep (stamping the protocol version) and returns its
// id and job count.
func (c *Client) Submit(req SubmitRequest) (SubmitResponse, error) {
	var out SubmitResponse
	err := c.do(http.MethodPost, PathSweeps, req, &out)
	return out, err
}

// Get fetches one sweep's status (and, when done, its result table).
func (c *Client) Get(id string) (SweepResponse, error) {
	var out SweepResponse
	err := c.do(http.MethodGet, PathSweeps+"/"+id, nil, &out)
	return out, err
}

// List fetches every known sweep's status, submission order.
func (c *Client) List() (ListResponse, error) {
	var out ListResponse
	err := c.do(http.MethodGet, PathSweeps, nil, &out)
	return out, err
}

// Cancel deletes a sweep: active sweeps are cancelled, terminal ones
// forgotten.
func (c *Client) Cancel(id string) (SweepStatus, error) {
	var out SweepStatus
	err := c.do(http.MethodDelete, PathSweeps+"/"+id, nil, &out)
	return out, err
}

// Status fetches the daemon's full /status plane.
func (c *Client) Status() (StatusResponse, error) {
	var out StatusResponse
	err := c.do(http.MethodGet, PathStatus, nil, &out)
	return out, err
}
