package osmodel

import (
	"bytes"
	"testing"

	"vbi/internal/addr"
	"vbi/internal/core"
	"vbi/internal/mtl"
	"vbi/internal/prop"
)

func newVBIOS(t *testing.T) (*VBIOS, *core.Core) {
	t.Helper()
	m := mtl.NewSimple(mtl.Config{DelayedAlloc: true}, 128<<20)
	sys := core.NewSystem(m)
	o := NewVBIOS(sys)
	return o, core.NewCore(sys)
}

func TestRequestVBPicksSmallestClass(t *testing.T) {
	o, _ := newVBIOS(t)
	p := o.CreateProcess()
	cases := []struct {
		size uint64
		want addr.SizeClass
	}{
		{100, addr.Size4KB},
		{4096, addr.Size4KB},
		{5000, addr.Size128KB},
		{1 << 20, addr.Size4MB},
		{100 << 20, addr.Size128MB},
	}
	for _, c := range cases {
		_, u, err := o.RequestVB(p, c.size, 0)
		if err != nil {
			t.Fatal(err)
		}
		if u.Class() != c.want {
			t.Errorf("RequestVB(%d) class = %v, want %v", c.size, u.Class(), c.want)
		}
	}
}

func TestRequestVBAttachesWithPerms(t *testing.T) {
	o, c := newVBIOS(t)
	p := o.CreateProcess()
	c.SwitchClient(p.Client)

	idx, _, err := o.RequestVB(p, 64<<10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Store(core.VAddr{Index: idx, Offset: 0}, []byte("rw")); err != nil {
		t.Fatalf("store to data VB: %v", err)
	}

	codeIdx, _, err := o.RequestVB(p, 64<<10, prop.Code)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Store(core.VAddr{Index: codeIdx, Offset: 0}, []byte("x")); err == nil {
		t.Fatal("store to code VB allowed")
	}
	if err := c.Fetch(core.VAddr{Index: codeIdx, Offset: 0}, make([]byte, 1)); err != nil {
		t.Fatalf("fetch from code VB denied: %v", err)
	}
}

func TestProcessIsolation(t *testing.T) {
	o, c := newVBIOS(t)
	p1 := o.CreateProcess()
	p2 := o.CreateProcess()
	c.SwitchClient(p1.Client)
	idx, _, _ := o.RequestVB(p1, 4096, 0)
	c.Store(core.VAddr{Index: idx, Offset: 0}, []byte("secret"))

	// §3.4 Data Protection: p2 has no CVT entry for p1's VB.
	c.SwitchClient(p2.Client)
	if err := c.Load(core.VAddr{Index: idx, Offset: 0}, make([]byte, 6)); err == nil {
		t.Fatal("cross-process access allowed")
	}
}

func TestForkCopyOnWrite(t *testing.T) {
	o, c := newVBIOS(t)
	parent := o.CreateProcess()
	c.SwitchClient(parent.Client)
	idx, _, _ := o.RequestVB(parent, 64<<10, 0)
	c.Store(core.VAddr{Index: idx, Offset: 10}, []byte("parent-data"))

	child, err := o.Fork(parent)
	if err != nil {
		t.Fatal(err)
	}

	// The child sees the parent's data at the same CVT index (pointer
	// validity, §4.4).
	cc := core.NewCore(o.Sys)
	cc.SwitchClient(child.Client)
	got := make([]byte, 11)
	if err := cc.Load(core.VAddr{Index: idx, Offset: 10}, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "parent-data" {
		t.Fatalf("child reads %q", got)
	}

	// Writes after the fork are private.
	cc.Store(core.VAddr{Index: idx, Offset: 10}, []byte("child-data!"))
	c.SwitchClient(parent.Client)
	c.Load(core.VAddr{Index: idx, Offset: 10}, got)
	if string(got) != "parent-data" {
		t.Fatalf("child write leaked into parent: %q", got)
	}
}

func TestForkSharesSharedVBs(t *testing.T) {
	o, _ := newVBIOS(t)
	p1 := o.CreateProcess()
	p2 := o.CreateProcess()
	// A VB attached by two processes is "shared": fork must not clone it.
	_, u, _ := o.RequestVB(p1, 4096, 0)
	o.AttachShared(p2, u, core.PermR)
	before := o.Sys.MTL.RefCount(u)

	child, err := o.Fork(p1)
	if err != nil {
		t.Fatal(err)
	}
	if o.Sys.MTL.RefCount(u) != before+1 {
		t.Fatalf("shared VB refcount = %d, want %d", o.Sys.MTL.RefCount(u), before+1)
	}
	cvt, _ := o.Sys.CVT(child.Client)
	found := false
	for _, e := range cvt {
		if e.Valid && e.VB == u {
			found = true
		}
	}
	if !found {
		t.Fatal("child not attached to the shared VB")
	}
}

func TestDestroyProcessFreesEverything(t *testing.T) {
	o, c := newVBIOS(t)
	free0 := o.Sys.MTL.FreeBytes()
	p := o.CreateProcess()
	c.SwitchClient(p.Client)
	for i := 0; i < 5; i++ {
		idx, _, err := o.RequestVB(p, 256<<10, 0)
		if err != nil {
			t.Fatal(err)
		}
		c.Store(core.VAddr{Index: idx, Offset: 0}, bytes.Repeat([]byte{1}, 8192))
	}
	if o.Sys.MTL.FreeBytes() >= free0 {
		t.Fatal("no memory consumed")
	}
	if err := o.DestroyProcess(p); err != nil {
		t.Fatal(err)
	}
	if o.Sys.MTL.FreeBytes() != free0 {
		t.Fatalf("leak: %d != %d", o.Sys.MTL.FreeBytes(), free0)
	}
}

func TestVBIDRecycling(t *testing.T) {
	o, _ := newVBIOS(t)
	p := o.CreateProcess()
	_, u1, _ := o.RequestVB(p, 4096, 0)
	o.DestroyProcess(p)
	p2 := o.CreateProcess()
	_, u2, _ := o.RequestVB(p2, 4096, 0)
	if u1 != u2 {
		t.Fatalf("VBID not recycled: %v then %v", u1, u2)
	}
}

func TestLoadLibraryLayout(t *testing.T) {
	o, c := newVBIOS(t)
	// The kernel stages the library code VB (shared across processes).
	libCode := addr.MakeVBUID(addr.Size128KB, 77)
	if err := o.Sys.EnableVB(libCode, prop.Code|prop.ReadOnly); err != nil {
		t.Fatal(err)
	}

	p := o.CreateProcess()
	c.SwitchClient(p.Client)
	codeIdx, err := o.LoadLibrary(p, libCode, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	// §4.4: static data lives at codeIdx+1, reachable via +1 CVT-relative
	// addressing from the library code.
	ref := core.VAddr{Index: codeIdx, Offset: 0}
	if err := c.Store(ref.Rel(1), []byte("lib-static")); err != nil {
		t.Fatalf("static data store: %v", err)
	}
	// A second process gets its own static data but the same code VB.
	p2 := o.CreateProcess()
	codeIdx2, err := o.LoadLibrary(p2, libCode, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	c2 := core.NewCore(o.Sys)
	c2.SwitchClient(p2.Client)
	got := make([]byte, 10)
	if err := c2.Load(core.VAddr{Index: codeIdx2 + 1, Offset: 0}, got); err != nil {
		t.Fatal(err)
	}
	if string(got) == "lib-static" {
		t.Fatal("static data shared between processes")
	}
	if o.Sys.MTL.RefCount(libCode) != 2 {
		t.Fatalf("library code refcount = %d", o.Sys.MTL.RefCount(libCode))
	}
}

func TestPromoteVBFlow(t *testing.T) {
	o, c := newVBIOS(t)
	p := o.CreateProcess()
	c.SwitchClient(p.Client)
	idx, small, _ := o.RequestVB(p, 128<<10, 0)
	c.Store(core.VAddr{Index: idx, Offset: 5}, []byte("growing"))

	large, err := o.PromoteVB(p, idx, 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	if large.Class() != addr.Size4MB {
		t.Fatalf("promoted class = %v", large.Class())
	}
	// The old pointer still works and the data survived.
	got := make([]byte, 7)
	if err := c.Load(core.VAddr{Index: idx, Offset: 5}, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "growing" {
		t.Fatalf("data = %q", got)
	}
	// The grown region is usable.
	if err := c.Store(core.VAddr{Index: idx, Offset: 1 << 20}, []byte("more")); err != nil {
		t.Fatal(err)
	}
	// The small VB was disabled and recycled.
	if o.Sys.MTL.Enabled(small) {
		t.Fatal("small VB still enabled after promotion")
	}
}

func TestPromoteVBValidation(t *testing.T) {
	o, _ := newVBIOS(t)
	p := o.CreateProcess()
	idx, _, _ := o.RequestVB(p, 4<<20, 0)
	if _, err := o.PromoteVB(p, idx, 4096); err == nil {
		t.Fatal("shrinking promotion accepted")
	}
	if _, err := o.PromoteVB(p, 99, 8<<20); err == nil {
		t.Fatal("bad index accepted")
	}
}
