package osmodel

import (
	"fmt"

	"vbi/internal/pagetable"
	"vbi/internal/phys"
)

// VMStats counts virtualization events.
type VMStats struct {
	GuestFaults uint64
	HostFaults  uint64
}

// VMHost models a hypervisor: it owns host physical memory and maintains
// one nested (EPT-style) table per guest mapping guest-physical to
// host-physical addresses. Combined with the guest's own page table this
// produces the two-dimensional walks whose cost motivates VBI (§1, §3.5).
type VMHost struct {
	Geo   pagetable.Geometry
	Stats VMStats
	alloc *Bump
}

// NewVMHost builds a hypervisor over capacity bytes of host memory.
func NewVMHost(geo pagetable.Geometry, capacity uint64) *VMHost {
	return &VMHost{Geo: geo, alloc: NewBump(0, capacity)}
}

// GuestVM is one virtual machine: an emulated guest-physical space, the
// guest OS's page table (whose nodes live in guest-physical memory), and
// the host table backing the guest-physical space.
type GuestVM struct {
	host   *VMHost
	Nested *pagetable.NestedTable
	// galloc allocates guest-physical frames.
	galloc *Bump
	brk    uint64
}

// NewGuest creates a VM with guestMem bytes of emulated physical memory.
func (h *VMHost) NewGuest(guestMem uint64) (*GuestVM, error) {
	g := &GuestVM{host: h, galloc: NewBump(0, guestMem), brk: 0x10000000}
	// The guest's page-table nodes are guest-physical frames; wrap the
	// allocator so every new node is immediately backed by host memory
	// (the hypervisor populates the EPT for guest PT pages on first use).
	host, err := pagetable.New(h.Geo, h.alloc)
	if err != nil {
		return nil, err
	}
	g.Nested = &pagetable.NestedTable{Host: host}
	guest, err := pagetable.New(h.Geo, backedAlloc{g})
	if err != nil {
		return nil, err
	}
	g.Nested.Guest = guest
	return g, nil
}

// backedAlloc allocates a guest-physical frame and backs it with host
// memory in one step (used for guest page-table nodes).
type backedAlloc struct{ g *GuestVM }

func (b backedAlloc) Alloc() (phys.Addr, bool) {
	gpa, ok := b.g.galloc.AllocSized(phys.FrameSize)
	if !ok {
		return phys.NoAddr, false
	}
	if err := b.g.backGPA(uint64(gpa), phys.FrameSize); err != nil {
		return phys.NoAddr, false
	}
	return gpa, true
}

// backGPA ensures [gpa, gpa+n) is mapped by the host table.
func (g *GuestVM) backGPA(gpa uint64, n uint64) error {
	pageSize := g.host.Geo.PageSize()
	for base := gpa &^ (pageSize - 1); base < gpa+n; base += pageSize {
		if _, ok := g.Nested.Host.Lookup(base); ok {
			continue
		}
		hpa, ok := g.host.alloc.AllocSized(pageSize)
		if !ok {
			return fmt.Errorf("osmodel: host memory exhausted")
		}
		if err := g.Nested.Host.Map(base, hpa); err != nil {
			return err
		}
		g.host.Stats.HostFaults++
	}
	return nil
}

// Mmap reserves guest-virtual address space.
func (g *GuestVM) Mmap(size uint64) uint64 {
	pageSize := g.host.Geo.PageSize()
	base := (g.brk + pageSize - 1) &^ (pageSize - 1)
	g.brk = base + size
	return base
}

// Touch performs two-level demand paging for the guest-virtual address:
// the guest OS faults in a guest-physical page, and the hypervisor backs
// it with host memory.
func (g *GuestVM) Touch(gva uint64) (fault bool, err error) {
	pageSize := g.host.Geo.PageSize()
	pageVA := gva &^ (pageSize - 1)
	if _, ok := g.Nested.Guest.Lookup(pageVA); ok {
		return false, nil
	}
	gpa, ok := g.galloc.AllocSized(pageSize)
	if !ok {
		return false, fmt.Errorf("osmodel: guest memory exhausted")
	}
	if err := g.Nested.Guest.Map(pageVA, gpa); err != nil {
		return false, err
	}
	g.host.Stats.GuestFaults++
	if err := g.backGPA(uint64(gpa), pageSize); err != nil {
		return false, err
	}
	return true, nil
}

// Translate fully translates a guest-virtual address to host-physical.
func (g *GuestVM) Translate(gva uint64) (phys.Addr, bool) {
	gpa, ok := g.Nested.Guest.Lookup(gva)
	if !ok {
		return phys.NoAddr, false
	}
	return g.Nested.Host.Lookup(uint64(gpa))
}
