package osmodel

import (
	"testing"

	"vbi/internal/pagetable"
	"vbi/internal/phys"
)

func TestBumpAllocator(t *testing.T) {
	b := NewBump(0, 1<<20)
	a1, ok := b.AllocSized(4096)
	if !ok || a1 != 0 {
		t.Fatalf("first alloc = %v,%v", a1, ok)
	}
	a2, ok := b.AllocSized(2 << 20)
	if ok {
		t.Fatalf("oversized alloc succeeded: %v", a2)
	}
	a3, ok := b.AllocSized(64 << 10)
	if !ok || uint64(a3)%(64<<10) != 0 {
		t.Fatalf("aligned alloc = %v,%v", a3, ok)
	}
	if _, ok := b.Alloc(); !ok {
		t.Fatal("FrameSource Alloc failed")
	}
}

func TestConvDemandPaging(t *testing.T) {
	os := NewConvOS(pagetable.Page4K, 64<<20)
	p, err := os.NewProcess()
	if err != nil {
		t.Fatal(err)
	}
	base := p.Mmap(1 << 20)
	fault, err := p.Touch(base + 123)
	if err != nil || !fault {
		t.Fatalf("first touch = %v,%v", fault, err)
	}
	fault, _ = p.Touch(base + 200) // same page
	if fault {
		t.Fatal("second touch of mapped page faulted")
	}
	fault, _ = p.Touch(base + 5000) // next page
	if !fault {
		t.Fatal("new page did not fault")
	}
	if os.Stats.MinorFaults != 2 {
		t.Fatalf("faults = %d", os.Stats.MinorFaults)
	}
	if pa, ok := p.Translate(base + 123); !ok || pa == phys.NoAddr {
		t.Fatalf("translate = %v,%v", pa, ok)
	}
}

func TestConv2MPages(t *testing.T) {
	os := NewConvOS(pagetable.Page2M, 64<<20)
	p, _ := os.NewProcess()
	base := p.Mmap(8 << 20)
	p.Touch(base)
	fault, _ := p.Touch(base + 1<<20) // within the same 2 MB page
	if fault {
		t.Fatal("access within a mapped 2 MB page faulted")
	}
	fault, _ = p.Touch(base + 3<<20)
	if !fault {
		t.Fatal("new 2 MB page did not fault")
	}
	// A 2 MB mapping must translate with a 3-level walk.
	res := p.Table.Walk(base, nil)
	if !res.OK || len(res.Accesses) != 3 {
		t.Fatalf("2M walk = ok=%v accesses=%d", res.OK, len(res.Accesses))
	}
}

func TestConvMmapRegionsDisjoint(t *testing.T) {
	os := NewConvOS(pagetable.Page4K, 64<<20)
	p, _ := os.NewProcess()
	a := p.Mmap(1 << 20)
	b := p.Mmap(1 << 20)
	if b < a+1<<20 {
		t.Fatalf("regions overlap: %#x and %#x", a, b)
	}
}

func TestConvOutOfMemory(t *testing.T) {
	os := NewConvOS(pagetable.Page4K, 8<<12) // 8 frames; 1 goes to the root
	p, _ := os.NewProcess()
	base := p.Mmap(1 << 20)
	oom := false
	for i := uint64(0); i < 16; i++ {
		if _, err := p.Touch(base + i*4096); err != nil {
			oom = true
			break
		}
	}
	if !oom {
		t.Fatal("allocator never exhausted")
	}
}

func TestVMTwoLevelPaging(t *testing.T) {
	h := NewVMHost(pagetable.Page4K, 256<<20)
	g, err := h.NewGuest(64 << 20)
	if err != nil {
		t.Fatal(err)
	}
	base := g.Mmap(1 << 20)
	fault, err := g.Touch(base)
	if err != nil || !fault {
		t.Fatalf("guest touch = %v,%v", fault, err)
	}
	if h.Stats.GuestFaults == 0 || h.Stats.HostFaults == 0 {
		t.Fatalf("stats = %+v (both dimensions must fault)", h.Stats)
	}
	hpa, ok := g.Translate(base)
	if !ok {
		t.Fatal("translate failed")
	}

	// The nested walk reproduces the same translation and costs up to 24
	// accesses.
	res := g.Nested.Walk(base, nil, nil)
	if !res.OK || res.Phys != hpa {
		t.Fatalf("nested walk = %+v, want %v", res, hpa)
	}
	if len(res.Accesses) != 24 {
		t.Fatalf("nested walk accesses = %d, want 24", len(res.Accesses))
	}
}

func TestVM2MNestedWalk15(t *testing.T) {
	h := NewVMHost(pagetable.Page2M, 512<<20)
	g, err := h.NewGuest(128 << 20)
	if err != nil {
		t.Fatal(err)
	}
	base := g.Mmap(4 << 20)
	if _, err := g.Touch(base); err != nil {
		t.Fatal(err)
	}
	res := g.Nested.Walk(base, nil, nil)
	if !res.OK || len(res.Accesses) != 15 {
		t.Fatalf("2M nested walk = ok=%v accesses=%d, want 15", res.OK, len(res.Accesses))
	}
}

func TestVMGuestPTNodesBacked(t *testing.T) {
	h := NewVMHost(pagetable.Page4K, 256<<20)
	g, _ := h.NewGuest(64 << 20)
	// Touch addresses spread across the guest VA space to force several
	// guest PT nodes; every nested walk must succeed (nodes are backed).
	for i := uint64(0); i < 8; i++ {
		va := g.Mmap(1 << 30)
		if _, err := g.Touch(va); err != nil {
			t.Fatal(err)
		}
		if res := g.Nested.Walk(va, nil, nil); !res.OK {
			t.Fatalf("nested walk faulted at %#x", va)
		}
	}
}
