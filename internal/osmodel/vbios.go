package osmodel

import (
	"fmt"

	"vbi/internal/addr"
	"vbi/internal/core"
	"vbi/internal/prop"
)

// VBIOS is the VBI-side operating system of §4.4: it owns client IDs,
// implements the request_vb system call (§4.2), process creation, forking
// via clone_vb, destruction, shared libraries with the +1 CVT-relative
// layout, and the VB promotion flow. The OS retains full control over
// access protection (who can attach to which VB) while the MTL owns
// allocation and translation.
type VBIOS struct {
	Sys *core.System

	// OnDisable, when set, is invoked before a VB's VBID is recycled so
	// the platform can perform the lazy cache cleanup of §4.2.4 (stale
	// lines of a disabled VB must be invalidated before its VBUID is
	// reused). The timing simulator wires this to the cache hierarchy.
	OnDisable func(u addr.VBUID)

	nextClient core.ClientID
	// nextVBID tracks the allocation cursor per size class; freed VBIDs
	// are recycled first (the OS reuses previously-disabled VBs to bound
	// VIT growth, §4.5.1).
	nextVBID [addr.NumSizeClasses]uint64
	freed    [addr.NumSizeClasses][]uint64
}

// NewVBIOS boots the OS over the architectural system. VBID 0 of every
// class is skipped so NilVBUID never names a live VB.
func NewVBIOS(sys *core.System) *VBIOS {
	o := &VBIOS{Sys: sys, nextClient: core.KernelClient + 1}
	for c := range o.nextVBID {
		o.nextVBID[c] = 1
	}
	sys.RegisterClient(core.KernelClient)
	return o
}

// VBIProcess is one running process: a client ID plus the OS-side notion
// of which CVT entries it owns.
type VBIProcess struct {
	Client core.ClientID
	os     *VBIOS
}

// CreateProcess assigns a fresh client ID (§4.4 "Process Creation").
func (o *VBIOS) CreateProcess() *VBIProcess {
	c := o.nextClient
	o.nextClient++
	o.Sys.RegisterClient(c)
	return &VBIProcess{Client: c, os: o}
}

// freeVB picks the smallest free VB that fits size bytes: recycled VBIDs
// first, then the cursor.
func (o *VBIOS) freeVB(size uint64) (addr.VBUID, error) {
	c, ok := addr.ClassFor(size)
	if !ok {
		return addr.NilVBUID, fmt.Errorf("vbios: no size class holds %d bytes", size)
	}
	if n := len(o.freed[c]); n > 0 {
		vbid := o.freed[c][n-1]
		o.freed[c] = o.freed[c][:n-1]
		return addr.MakeVBUID(c, vbid), nil
	}
	vbid := o.nextVBID[c]
	if vbid > c.MaxVBID() {
		return addr.NilVBUID, fmt.Errorf("vbios: class %v exhausted", c)
	}
	o.nextVBID[c]++
	return addr.MakeVBUID(c, vbid), nil
}

// RequestVB implements the request_vb system call (§4.2): the OS finds the
// smallest free VB that fits, enables it with the given properties,
// attaches the calling process, and returns the CVT index — the pointer
// the program uses from then on.
func (o *VBIOS) RequestVB(p *VBIProcess, size uint64, props prop.Props) (int, addr.VBUID, error) {
	u, err := o.freeVB(size)
	if err != nil {
		return 0, addr.NilVBUID, err
	}
	if err := o.Sys.EnableVB(u, props); err != nil {
		return 0, addr.NilVBUID, err
	}
	perm := core.PermRW
	if props.Has(prop.Code) {
		perm = core.PermRX
	}
	if props.Has(prop.ReadOnly) {
		perm &^= core.PermW
	}
	idx, err := o.Sys.Attach(p.Client, u, perm)
	if err != nil {
		return 0, addr.NilVBUID, err
	}
	return idx, u, nil
}

// AttachShared attaches an existing VB (true sharing, §3.4).
func (o *VBIOS) AttachShared(p *VBIProcess, u addr.VBUID, perm core.Perm) (int, error) {
	return o.Sys.Attach(p.Client, u, perm)
}

// LoadLibrary maps a shared library for the process (§4.4): the code VB is
// attached (shared across processes), and a private static-data VB of
// staticSize is enabled and attached at the next CVT index so +1
// CVT-relative references resolve.
func (o *VBIOS) LoadLibrary(p *VBIProcess, codeVB addr.VBUID, staticSize uint64) (codeIdx int, err error) {
	codeIdx, err = o.Sys.Attach(p.Client, codeVB, core.PermRX)
	if err != nil {
		return 0, err
	}
	static, err := o.freeVB(staticSize)
	if err != nil {
		return 0, err
	}
	if err := o.Sys.EnableVB(static, 0); err != nil {
		return 0, err
	}
	if err := o.Sys.AttachAt(p.Client, codeIdx+1, static, core.PermRW); err != nil {
		return 0, err
	}
	return codeIdx, nil
}

// Fork replicates the process (§4.4): the child gets the same CVT indices;
// shared VBs (reference count > 1) are attached directly, private VBs are
// cloned with clone_vb so the child's VBs keep the parent's CVT indices
// and pointer validity.
func (o *VBIOS) Fork(p *VBIProcess) (*VBIProcess, error) {
	child := o.CreateProcess()
	cvt, err := o.Sys.CVT(p.Client)
	if err != nil {
		return nil, err
	}
	for idx, e := range cvt {
		if !e.Valid {
			continue
		}
		if o.Sys.MTL.RefCount(e.VB) > 1 {
			// Shared VB: both processes reference the same VB.
			if err := o.Sys.AttachAt(child.Client, idx, e.VB, e.Perm); err != nil {
				return nil, err
			}
			continue
		}
		clone, err := o.freeVB(e.VB.Size())
		if err != nil {
			return nil, err
		}
		props, _ := o.Sys.MTL.Props(e.VB)
		if err := o.Sys.EnableVB(clone, props); err != nil {
			return nil, err
		}
		if err := o.Sys.CloneVB(e.VB, clone); err != nil {
			return nil, err
		}
		if err := o.Sys.AttachAt(child.Client, idx, clone, e.Perm); err != nil {
			return nil, err
		}
	}
	return child, nil
}

// PromoteVB grows the data structure at the process's CVT index into a VB
// of the next sufficient size class (§4.2.1, §4.4): enable a larger VB,
// transfer translation state with promote_vb, update the CVT entry in
// place (pointers stay valid), and retire the small VB.
func (o *VBIOS) PromoteVB(p *VBIProcess, idx int, newSize uint64) (addr.VBUID, error) {
	cvt, err := o.Sys.CVT(p.Client)
	if err != nil {
		return addr.NilVBUID, err
	}
	if idx < 0 || idx >= len(cvt) || !cvt[idx].Valid {
		return addr.NilVBUID, fmt.Errorf("vbios: bad CVT index %d", idx)
	}
	small := cvt[idx].VB
	if newSize <= small.Size() {
		return addr.NilVBUID, fmt.Errorf("vbios: promotion must grow the VB")
	}
	props, _ := o.Sys.MTL.Props(small)
	large, err := o.freeVB(newSize)
	if err != nil {
		return addr.NilVBUID, err
	}
	if err := o.Sys.EnableVB(large, props); err != nil {
		return addr.NilVBUID, err
	}
	if err := o.Sys.PromoteVB(small, large); err != nil {
		return addr.NilVBUID, err
	}
	if err := o.Sys.ReplaceVB(p.Client, idx, large); err != nil {
		return addr.NilVBUID, err
	}
	// The small VB's reference count dropped with ReplaceVB; disable it
	// when unreferenced.
	if o.Sys.MTL.RefCount(small) == 0 {
		if err := o.disableAndRecycle(small); err != nil {
			return addr.NilVBUID, err
		}
	}
	return large, nil
}

// DestroyProcess detaches every VB and disables those whose reference
// count drops to zero (§4.2.4), then frees the client ID for reuse.
func (o *VBIOS) DestroyProcess(p *VBIProcess) error {
	cvt, err := o.Sys.CVT(p.Client)
	if err != nil {
		return err
	}
	for idx, e := range cvt {
		if !e.Valid {
			continue
		}
		n, err := o.Sys.DetachIndex(p.Client, idx)
		if err != nil {
			return err
		}
		if n == 0 {
			if err := o.disableAndRecycle(e.VB); err != nil {
				return err
			}
		}
	}
	o.Sys.ReleaseClient(p.Client)
	return nil
}

func (o *VBIOS) disableAndRecycle(u addr.VBUID) error {
	if err := o.Sys.DisableVB(u); err != nil {
		return err
	}
	if o.OnDisable != nil {
		o.OnDisable(u)
	}
	c := u.Class()
	o.freed[c] = append(o.freed[c], u.VBID())
	return nil
}
