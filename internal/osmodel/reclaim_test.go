package osmodel

import (
	"bytes"
	"testing"

	"vbi/internal/addr"
	"vbi/internal/mtl"
)

func newPressuredMTL(t *testing.T) (*mtl.MTL, []addr.VBUID) {
	t.Helper()
	m := mtl.NewSimple(mtl.Config{DelayedAlloc: true}, 4<<20) // 4 MB
	var vbs []addr.VBUID
	for i := uint64(1); i <= 24; i++ { // 24 x 128 KB = 3 MB resident
		u := addr.MakeVBUID(addr.Size128KB, i)
		if err := m.Enable(u, 0); err != nil {
			t.Fatal(err)
		}
		if err := m.Prefill(u, 128<<10); err != nil {
			t.Fatal(err)
		}
		vbs = append(vbs, u)
	}
	return m, vbs
}

func TestReclaimerPressure(t *testing.T) {
	m, _ := newPressuredMTL(t)
	r := NewReclaimer(m, 50, 75) // low 2 MB, high 3 MB; free is 1 MB
	if !r.Pressure() {
		t.Fatalf("no pressure at %d free of %d low water", m.FreeBytes(), r.LowWater)
	}
	n, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("nothing reclaimed under pressure")
	}
	if m.FreeBytes() < r.HighWater {
		t.Fatalf("free %d below high water %d after reclaim", m.FreeBytes(), r.HighWater)
	}
	if r.Pressure() {
		t.Fatal("still under pressure")
	}
	// Idempotent when healthy.
	if n, _ := r.Run(); n != 0 {
		t.Fatalf("healthy reclaim pass moved %d regions", n)
	}
}

func TestReclaimerEvictsColdestFirst(t *testing.T) {
	m, vbs := newPressuredMTL(t)
	// Heat up every VB except the first two.
	for _, u := range vbs[2:] {
		for i := 0; i < 20; i++ {
			m.TranslateRead(addr.Make(u, 0))
		}
	}
	r := NewReclaimer(m, 40, 45)
	cold := r.ColdestVBs(2)
	seen := map[addr.VBUID]bool{cold[0]: true, cold[1]: true}
	if !seen[vbs[0]] || !seen[vbs[1]] {
		t.Fatalf("coldest = %v, want the two untouched VBs", cold)
	}
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	// The cold VBs must be fully swapped out before hot ones are touched.
	if m.AllocatedRegions(vbs[0]) != 0 || m.AllocatedRegions(vbs[1]) != 0 {
		t.Fatal("cold VBs survived while under pressure")
	}
}

func TestReclaimerDataSurvives(t *testing.T) {
	m, vbs := newPressuredMTL(t)
	payload := []byte("must survive the swap")
	if err := m.Store(addr.Make(vbs[0], 100), payload); err != nil {
		t.Fatal(err)
	}
	r := NewReclaimer(m, 90, 95) // force heavy reclamation
	if _, err := r.Run(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if err := m.Load(addr.Make(vbs[0], 100), got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("data after reclaim = %q", got)
	}
	// And the swapped VB faults back in on demand.
	ev, err := m.TranslateRead(addr.Make(vbs[0], 100))
	if err != nil {
		t.Fatal(err)
	}
	if !ev.OSFault {
		t.Fatal("no swap-in fault after reclaim")
	}
}

func TestReclaimForServicesAllocation(t *testing.T) {
	m, _ := newPressuredMTL(t)
	r := NewReclaimer(m, 10, 20)
	want := uint64(2 << 20)
	if m.FreeBytes() >= want {
		t.Fatal("test setup: memory not scarce")
	}
	if _, err := r.ReclaimFor(want); err != nil {
		t.Fatal(err)
	}
	if m.FreeBytes() < want {
		t.Fatalf("free %d after ReclaimFor(%d)", m.FreeBytes(), want)
	}
	// The freed memory is genuinely allocatable.
	u := addr.MakeVBUID(addr.Size4MB, 999)
	if err := m.Enable(u, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Prefill(u, 1<<20); err != nil {
		t.Fatalf("allocation after reclaim failed: %v", err)
	}
}
