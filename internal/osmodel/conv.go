// Package osmodel simulates the operating-system layer of every evaluated
// system: demand-paged virtual memory for the conventional baselines
// (Native, Native-2M, VIVT, Perfect TLB), two-level guest/host management
// for the virtualized baselines (Virtual, Virtual-2M), and the VBI-side OS
// of §4.4 — process creation and destruction, the request_vb system call,
// forking with clone_vb, shared libraries with CVT-relative layout, and VB
// promotion.
package osmodel

import (
	"fmt"

	"vbi/internal/pagetable"
	"vbi/internal/phys"
)

// Bump is a simple bump allocator over a physical range. The conventional
// OS model never frees during a run (the paper's workload regions run to
// completion), so bump allocation keeps the model minimal and
// deterministic. It hands out both 4 KB table nodes and page-sized frames.
type Bump struct {
	next  phys.Addr
	limit phys.Addr
}

// NewBump allocates from [base, base+size).
func NewBump(base phys.Addr, size uint64) *Bump {
	return &Bump{next: base, limit: base + phys.Addr(size)}
}

// Alloc returns a 4 KB frame (satisfies pagetable.FrameSource).
func (b *Bump) Alloc() (phys.Addr, bool) { return b.AllocSized(phys.FrameSize) }

// AllocSized returns a size-aligned block of size bytes.
func (b *Bump) AllocSized(size uint64) (phys.Addr, bool) {
	aligned := (b.next + phys.Addr(size-1)) &^ phys.Addr(size-1)
	if aligned+phys.Addr(size) > b.limit {
		return phys.NoAddr, false
	}
	b.next = aligned + phys.Addr(size)
	return aligned, true
}

// Used returns the bytes consumed so far.
func (b *Bump) Used(base phys.Addr) uint64 { return uint64(b.next - base) }

// ConvStats counts OS events of the conventional model.
type ConvStats struct {
	MinorFaults uint64 // demand-paging first-touch faults
	PagesMapped uint64
}

// ConvOS is the conventional-baseline OS: per-process radix page tables
// over a flat physical memory, demand paging at the configured page size.
type ConvOS struct {
	Geo   pagetable.Geometry
	Stats ConvStats
	alloc *Bump
}

// NewConvOS builds the OS over capacity bytes of physical memory.
func NewConvOS(geo pagetable.Geometry, capacity uint64) *ConvOS {
	return &ConvOS{Geo: geo, alloc: NewBump(0, capacity)}
}

// ConvProcess is one conventional process: a virtual address space managed
// with mmap-style bump allocation and a private page table.
type ConvProcess struct {
	os    *ConvOS
	Table *pagetable.Table
	// brk is the next free virtual address for Mmap.
	brk uint64
}

// NewProcess creates a process with an empty page table.
func (o *ConvOS) NewProcess() (*ConvProcess, error) {
	t, err := pagetable.New(o.Geo, o.alloc)
	if err != nil {
		return nil, err
	}
	return &ConvProcess{os: o, Table: t, brk: 0x10000000}, nil
}

// Mmap reserves a size-byte region of the virtual address space (no
// physical memory until first touch) and returns its base.
func (p *ConvProcess) Mmap(size uint64) uint64 {
	pageSize := p.os.Geo.PageSize()
	base := (p.brk + pageSize - 1) &^ (pageSize - 1)
	p.brk = base + size
	return base
}

// Touch performs demand paging for va: on the first access to a page the
// OS takes a minor fault, allocates a frame and maps it. It reports
// whether a fault occurred.
func (p *ConvProcess) Touch(va uint64) (fault bool, err error) {
	pageVA := va &^ (p.os.Geo.PageSize() - 1)
	if _, ok := p.Table.Lookup(pageVA); ok {
		return false, nil
	}
	frame, ok := p.os.alloc.AllocSized(p.os.Geo.PageSize())
	if !ok {
		return false, fmt.Errorf("osmodel: out of physical memory")
	}
	if err := p.Table.Map(pageVA, frame); err != nil {
		return false, err
	}
	p.os.Stats.MinorFaults++
	p.os.Stats.PagesMapped++
	return true, nil
}

// Translate returns the physical address of va, which must be mapped.
func (p *ConvProcess) Translate(va uint64) (phys.Addr, bool) {
	return p.Table.Lookup(va)
}
