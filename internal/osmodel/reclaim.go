package osmodel

import (
	"sort"

	"vbi/internal/addr"
	"vbi/internal/mtl"
)

// Reclaimer implements the physical-memory-capacity management of §3.4:
// when the MTL runs low on physical memory it uses the two system calls
// that move data between memory and the backing store, evicting the
// coldest virtual blocks (by the MTL's own access counters) until free
// memory recovers. It is the VBI analogue of a kswapd daemon, except the
// eviction-candidate ranking comes from the memory controller, which sees
// actual memory-level access counts rather than page-table access bits.
type Reclaimer struct {
	MTL *mtl.MTL
	// LowWater triggers reclamation when free bytes drop below it.
	LowWater uint64
	// HighWater is the free-byte target reclamation works toward.
	HighWater uint64

	// Reclaimed counts regions moved to the backing store.
	Reclaimed int
}

// NewReclaimer builds a reclaimer with watermarks at lowPct/highPct percent
// of total capacity.
func NewReclaimer(m *mtl.MTL, lowPct, highPct int) *Reclaimer {
	var capTotal uint64
	for _, z := range m.Zones() {
		capTotal += z.Buddy.Capacity()
	}
	return &Reclaimer{
		MTL:       m,
		LowWater:  capTotal * uint64(lowPct) / 100,
		HighWater: capTotal * uint64(highPct) / 100,
	}
}

// Pressure reports whether free memory is below the low watermark.
func (r *Reclaimer) Pressure() bool {
	return r.MTL.FreeBytes() < r.LowWater
}

// Run performs one reclamation pass if under pressure, returning the
// number of regions swapped out. Coldest VBs go first; reclamation stops
// at the high watermark (or when nothing evictable remains).
func (r *Reclaimer) Run() (int, error) {
	if !r.Pressure() {
		return 0, nil
	}
	counts := r.MTL.AccessCounts() // hottest first
	// Evict coldest first.
	sort.SliceStable(counts, func(i, j int) bool {
		return counts[i].Accesses < counts[j].Accesses
	})
	total := 0
	for _, c := range counts {
		if r.MTL.FreeBytes() >= r.HighWater {
			break
		}
		if c.Bytes == 0 {
			continue
		}
		n, err := r.MTL.SwapOutVB(c.VB)
		if err != nil {
			return total, err
		}
		total += n
	}
	r.Reclaimed += total
	return total, nil
}

// ReclaimFor frees memory until at least want bytes are available (or no
// more can be reclaimed), regardless of watermarks — the direct servicing
// path for an allocation that just failed.
func (r *Reclaimer) ReclaimFor(want uint64) (int, error) {
	counts := r.MTL.AccessCounts()
	sort.SliceStable(counts, func(i, j int) bool {
		return counts[i].Accesses < counts[j].Accesses
	})
	total := 0
	for _, c := range counts {
		if r.MTL.FreeBytes() >= want {
			break
		}
		if c.Bytes == 0 {
			continue
		}
		n, err := r.MTL.SwapOutVB(c.VB)
		if err != nil {
			return total, err
		}
		total += n
	}
	r.Reclaimed += total
	return total, nil
}

// ColdestVBs returns the n coldest VBs with resident memory (for tests and
// policy introspection).
func (r *Reclaimer) ColdestVBs(n int) []addr.VBUID {
	counts := r.MTL.AccessCounts()
	sort.SliceStable(counts, func(i, j int) bool {
		return counts[i].Accesses < counts[j].Accesses
	})
	var out []addr.VBUID
	for _, c := range counts {
		if len(out) == n {
			break
		}
		if c.Bytes > 0 {
			out = append(out, c.VB)
		}
	}
	return out
}
