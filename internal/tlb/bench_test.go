package tlb

import "testing"

func BenchmarkTLBLookupHit(b *testing.B) {
	t := New("L1", 1, 64)
	t.Insert(42, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t.Lookup(42)
	}
}

func BenchmarkRangeTLBPageHit(b *testing.B) {
	t := NewRange("MTL", 64)
	t.Insert(RangeEntry{Base: 0x1000, Size: 4096, Phys: 0x9000})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t.Lookup(0x1abc)
	}
}

func BenchmarkRangeTLBBigEntryHit(b *testing.B) {
	t := NewRange("MTL", 64)
	t.Insert(RangeEntry{Base: 1 << 30, Size: 4 << 30, Phys: 0})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t.Lookup(1<<30 + uint64(i)%(4<<30))
	}
}

func BenchmarkTLBInsertEvict(b *testing.B) {
	t := New("L1", 16, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := uint64(i % 128) // 2x capacity: constant eviction churn
		t.Insert(k, k+1)
	}
}

func BenchmarkRangeTLBInsertEvict(b *testing.B) {
	t := NewRange("MTL", 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		base := uint64(i%128) << pageShift // 2x capacity: constant eviction churn
		t.Insert(RangeEntry{Base: base, Size: 4096, Phys: base})
	}
}
