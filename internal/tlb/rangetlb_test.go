package tlb

import "testing"

// Repeated InvalidateAll/refill cycles must not allocate: the slot array,
// free list, page index and big-entry list are all reset in place.
func TestRangeTLBInvalidateRefillNoAllocs(t *testing.T) {
	tl := NewRange("mtl-l1", 64)
	refill := func() {
		for i := uint64(0); i < 60; i++ {
			tl.Insert(RangeEntry{Base: i << pageShift, Size: 4096, Phys: i << pageShift})
		}
		tl.Insert(RangeEntry{Base: 1 << 30, Size: 1 << 21, Phys: 1 << 30})
	}
	refill()
	allocs := testing.AllocsPerRun(100, func() {
		tl.InvalidateAll()
		refill()
	})
	if allocs != 0 {
		t.Fatalf("invalidate/refill cycle allocates %v times", allocs)
	}
}

// TestPageIndexMatchesMap drives the open-addressing page index through a
// deterministic churn of puts, overwrites, deletes and probes over a key
// space small enough to force probe clusters (and backward shifts across
// the table's wraparound), checking every observable against a plain map.
func TestPageIndexMatchesMap(t *testing.T) {
	p := newPageIndex(16) // 32 positions
	ref := map[uint64]int32{}
	rng := uint64(1)
	next := func() uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return rng >> 16
	}
	for step := 0; step < 50_000; step++ {
		pn := next() % 24
		switch next() % 3 {
		case 0:
			// Respect the half-full bound the RangeTLB guarantees: new
			// keys only while under capacity, overwrites always.
			_, exists := ref[pn]
			if exists || len(ref) < 16 {
				slot := int32(step % 97)
				p.put(pn, slot)
				ref[pn] = slot
			}
		case 1:
			p.del(pn)
			delete(ref, pn)
		case 2:
		}
		got, ok := p.get(pn)
		want, wok := ref[pn]
		if ok != wok || (ok && got != want) {
			t.Fatalf("step %d: get(%d) = %d,%v, want %d,%v", step, pn, got, ok, want, wok)
		}
		if p.n != len(ref) {
			t.Fatalf("step %d: n = %d, want %d", step, p.n, len(ref))
		}
	}
	for pn := uint64(0); pn < 24; pn++ {
		p.del(pn)
	}
	if p.n != 0 {
		t.Fatalf("drained index still holds %d entries", p.n)
	}
}

// TestRangeTLBMatchesRecencyModel runs the TLB in lockstep with a naive
// recency-list model (a slice ordered LRU→MRU) through a deterministic
// mix of lookups, inserts past capacity and range invalidations: hit and
// eviction behavior of the flattened index must be exactly the model's,
// which is what "byte-identical to the map it replaced" means — both
// implement this model.
func TestRangeTLBMatchesRecencyModel(t *testing.T) {
	const capacity = 16
	tl := NewRange("model", capacity)
	var model []RangeEntry // index 0 = LRU, last = MRU
	find := func(a uint64) int {
		for i, e := range model {
			if e.Contains(a) {
				return i
			}
		}
		return -1
	}
	touch := func(i int) {
		e := model[i]
		model = append(model[:i], model[i+1:]...)
		model = append(model, e)
	}
	rng := uint64(7)
	next := func() uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return rng >> 16
	}
	for step := 0; step < 30_000; step++ {
		switch next() % 8 {
		case 7:
			// Invalidate a span of one region or the other (disjoint, so
			// the model's single recency list mirrors the TLB's split
			// page/big bookkeeping unambiguously).
			base, size := (next()%40)<<pageShift, uint64(16)<<pageShift
			if next()%2 == 0 {
				base, size = 1<<30|(next()%4)<<21, 1<<21
			}
			tl.InvalidateRange(base, size)
			kept := model[:0]
			for _, e := range model {
				if !(e.Base+e.Size > base && e.Base < base+size) {
					kept = append(kept, e)
				}
			}
			model = kept
		case 6:
			// A big (2 MiB) entry in its own region above the page keys.
			e := RangeEntry{Base: 1<<30 | (next()%4)<<21, Size: 1 << 21}
			e.Phys = e.Base
			bi := -1
			for i, m := range model {
				if m.Base == e.Base && m.Size == e.Size {
					bi = i
					break
				}
			}
			if bi >= 0 {
				touch(bi)
			} else {
				if len(model) == capacity {
					model = model[1:]
				}
				model = append(model, e)
			}
			tl.Insert(e)
		default:
			a := (next() % 40) << pageShift
			_, hit := tl.Lookup(a)
			i := find(a)
			if hit != (i >= 0) {
				t.Fatalf("step %d: lookup(%#x) hit=%v, model says %v", step, a, hit, i >= 0)
			}
			if i >= 0 {
				touch(i)
			} else {
				e := RangeEntry{Base: a &^ (1<<pageShift - 1), Size: 4096, Phys: a}
				if len(model) == capacity {
					model = model[1:]
				}
				model = append(model, e)
				tl.Insert(e)
			}
		}
		if tl.Occupied() != len(model) {
			t.Fatalf("step %d: occupied %d, model %d", step, tl.Occupied(), len(model))
		}
	}
}

// Steady-state churn past capacity — hits, misses, insertions, evictions of
// both entry kinds — must not allocate either.
func TestRangeTLBChurnNoAllocs(t *testing.T) {
	tl := NewRange("mtl-l1", 32)
	allocs := testing.AllocsPerRun(100, func() {
		for i := uint64(0); i < 64; i++ {
			a := (i % 48) << pageShift
			if _, ok := tl.Lookup(a); !ok {
				tl.Insert(RangeEntry{Base: a, Size: 4096, Phys: a})
			}
			if i%8 == 0 {
				tl.Insert(RangeEntry{Base: 1 << 30, Size: 1 << 21, Phys: 1 << 30})
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state churn allocates %v times", allocs)
	}
}
