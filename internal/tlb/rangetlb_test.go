package tlb

import "testing"

// Repeated InvalidateAll/refill cycles must not allocate: the slot array,
// free list, page index and big-entry list are all reset in place.
func TestRangeTLBInvalidateRefillNoAllocs(t *testing.T) {
	tl := NewRange("mtl-l1", 64)
	refill := func() {
		for i := uint64(0); i < 60; i++ {
			tl.Insert(RangeEntry{Base: i << pageShift, Size: 4096, Phys: i << pageShift})
		}
		tl.Insert(RangeEntry{Base: 1 << 30, Size: 1 << 21, Phys: 1 << 30})
	}
	refill()
	allocs := testing.AllocsPerRun(100, func() {
		tl.InvalidateAll()
		refill()
	})
	if allocs != 0 {
		t.Fatalf("invalidate/refill cycle allocates %v times", allocs)
	}
}

// Steady-state churn past capacity — hits, misses, insertions, evictions of
// both entry kinds — must not allocate either.
func TestRangeTLBChurnNoAllocs(t *testing.T) {
	tl := NewRange("mtl-l1", 32)
	allocs := testing.AllocsPerRun(100, func() {
		for i := uint64(0); i < 64; i++ {
			a := (i % 48) << pageShift
			if _, ok := tl.Lookup(a); !ok {
				tl.Insert(RangeEntry{Base: a, Size: 4096, Phys: a})
			}
			if i%8 == 0 {
				tl.Insert(RangeEntry{Base: 1 << 30, Size: 1 << 21, Phys: 1 << 30})
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state churn allocates %v times", allocs)
	}
}
