// Package tlb models the translation-caching structures of Table 1: the
// per-core L1/L2 TLBs of conventional systems, the page-walk caches that
// accelerate radix walks (including the nested/2D page-walk cache of
// virtualized systems), and the range-granularity TLB used by the VBI
// Memory Translation Layer, whose entries may cover anything from one 4 KB
// page to an entire directly-mapped VB (§5.2).
package tlb

import "slices"

// Stats counts TLB events.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

type entry struct {
	key   uint64
	value uint64
	valid bool
	used  uint64
}

// TLB is a set-associative translation buffer over opaque uint64 keys
// (callers compose the key from ASID and virtual page number). A fully
// associative TLB is one with sets == 1.
type TLB struct {
	Name  string
	Stats Stats

	sets, ways int
	setMask    uint64
	entries    []entry
	index      map[uint64]int
	tick       uint64
}

// New builds a TLB with the given geometry; entries = sets*ways. The set
// count must be a power of two.
func New(name string, sets, ways int) *TLB {
	if sets <= 0 || ways <= 0 || sets&(sets-1) != 0 {
		panic("tlb: bad geometry")
	}
	return &TLB{
		Name:    name,
		sets:    sets,
		ways:    ways,
		setMask: uint64(sets - 1),
		entries: make([]entry, sets*ways),
		index:   make(map[uint64]int, sets*ways),
	}
}

// Entries returns the TLB capacity.
func (t *TLB) Entries() int { return t.sets * t.ways }

// Lookup probes for key, returning its cached value. Hit/miss statistics
// and LRU state are updated.
func (t *TLB) Lookup(key uint64) (uint64, bool) {
	if i, ok := t.index[key]; ok {
		t.tick++
		t.entries[i].used = t.tick
		t.Stats.Hits++
		return t.entries[i].value, true
	}
	t.Stats.Misses++
	return 0, false
}

// Insert caches key -> value, evicting the set's LRU entry if needed.
func (t *TLB) Insert(key, value uint64) {
	if i, ok := t.index[key]; ok {
		t.tick++
		t.entries[i].value = value
		t.entries[i].used = t.tick
		return
	}
	set := int(key & t.setMask)
	base := set * t.ways
	victim := base
	var oldest uint64 = ^uint64(0)
	for i := base; i < base+t.ways; i++ {
		if !t.entries[i].valid {
			victim = i
			oldest = 0
			break
		}
		if t.entries[i].used < oldest {
			oldest = t.entries[i].used
			victim = i
		}
	}
	if t.entries[victim].valid {
		delete(t.index, t.entries[victim].key)
		t.Stats.Evictions++
	}
	t.tick++
	t.entries[victim] = entry{key: key, value: value, valid: true, used: t.tick}
	t.index[key] = victim
}

// InvalidateAll empties the TLB (context switch without ASIDs, disable_vb).
func (t *TLB) InvalidateAll() {
	for i := range t.entries {
		t.entries[i] = entry{}
	}
	t.index = make(map[uint64]int, t.sets*t.ways)
}

// InvalidateIf drops entries whose key matches pred, returning the count.
// Keys are visited in sorted order so the drop sequence (and a stateful
// pred's view) never depends on map iteration order.
func (t *TLB) InvalidateIf(pred func(key uint64) bool) int {
	keys := make([]uint64, 0, len(t.index))
	for k := range t.index {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	doomed := 0
	for _, k := range keys {
		if pred(k) {
			i := t.index[k]
			t.entries[i] = entry{}
			delete(t.index, k)
			doomed++
		}
	}
	return doomed
}

// Occupied returns the number of valid entries (for tests).
func (t *TLB) Occupied() int { return len(t.index) }
