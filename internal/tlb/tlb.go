// Package tlb models the translation-caching structures of Table 1: the
// per-core L1/L2 TLBs of conventional systems, the page-walk caches that
// accelerate radix walks (including the nested/2D page-walk cache of
// virtualized systems), and the range-granularity TLB used by the VBI
// Memory Translation Layer, whose entries may cover anything from one 4 KB
// page to an entire directly-mapped VB (§5.2).
package tlb

import "slices"

// Stats counts TLB events.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

type entry struct {
	key   uint64
	value uint64
	valid bool
	used  uint64
}

// TLB is a set-associative translation buffer over opaque uint64 keys
// (callers compose the key from ASID and virtual page number). A fully
// associative TLB is one with sets == 1. The probe path is map-free: the
// set is a direct index into the flattened entries array and the key match
// is a linear scan over the set's ways. Probes never allocate.
type TLB struct {
	Name  string
	Stats Stats

	sets, ways int
	setMask    uint64
	entries    []entry
	tick       uint64
	occupied   int // valid entries, maintained by Insert/invalidation
}

// New builds a TLB with the given geometry; entries = sets*ways. The set
// count must be a power of two.
func New(name string, sets, ways int) *TLB {
	if sets <= 0 || ways <= 0 || sets&(sets-1) != 0 {
		panic("tlb: bad geometry")
	}
	return &TLB{
		Name:    name,
		sets:    sets,
		ways:    ways,
		setMask: uint64(sets - 1),
		entries: make([]entry, sets*ways),
	}
}

// Entries returns the TLB capacity.
func (t *TLB) Entries() int { return t.sets * t.ways }

// Lookup probes for key, returning its cached value. Hit/miss statistics
// and LRU state are updated. Lookup never allocates.
//
//vbi:hotpath
func (t *TLB) Lookup(key uint64) (uint64, bool) {
	base := int(key&t.setMask) * t.ways
	for i := base; i < base+t.ways; i++ {
		if t.entries[i].valid && t.entries[i].key == key {
			t.tick++
			t.entries[i].used = t.tick
			t.Stats.Hits++
			return t.entries[i].value, true
		}
	}
	t.Stats.Misses++
	return 0, false
}

// Insert caches key -> value, evicting the set's LRU entry if needed.
// Insert never allocates.
//
//vbi:hotpath
func (t *TLB) Insert(key, value uint64) {
	base := int(key&t.setMask) * t.ways
	victim := base
	var oldest uint64 = ^uint64(0)
	for i := base; i < base+t.ways; i++ {
		if t.entries[i].valid && t.entries[i].key == key {
			t.tick++
			t.entries[i].value = value
			t.entries[i].used = t.tick
			return
		}
		if !t.entries[i].valid {
			if oldest != 0 {
				victim = i
				oldest = 0
			}
			continue
		}
		if t.entries[i].used < oldest {
			oldest = t.entries[i].used
			victim = i
		}
	}
	if t.entries[victim].valid {
		t.occupied--
		t.Stats.Evictions++
	}
	t.tick++
	t.entries[victim] = entry{key: key, value: value, valid: true, used: t.tick}
	t.occupied++
}

// InvalidateAll empties the TLB (context switch without ASIDs, disable_vb)
// in place: the flat array is cleared without reallocating, so repeated
// invalidate/refill cycles are allocation-free. The LRU clock keeps
// running (monotonic ticks keep eviction order reproducible).
func (t *TLB) InvalidateAll() {
	for i := range t.entries {
		t.entries[i] = entry{}
	}
	t.occupied = 0
}

// InvalidateIf drops entries whose key matches pred, returning the count.
// This is the cold path: live keys are collected and sorted before pred
// runs, because an array-order walk would visit entries in (set, way)
// placement order — a function of eviction history — and the drop sequence
// (and a stateful pred's view) must depend only on TLB contents.
func (t *TLB) InvalidateIf(pred func(key uint64) bool) int {
	keys := make([]uint64, 0, t.occupied)
	for i := range t.entries {
		if t.entries[i].valid {
			keys = append(keys, t.entries[i].key)
		}
	}
	slices.Sort(keys)
	doomed := 0
	for _, k := range keys {
		if pred(k) {
			base := int(k&t.setMask) * t.ways
			for i := base; i < base+t.ways; i++ {
				if t.entries[i].valid && t.entries[i].key == k {
					t.entries[i] = entry{}
					t.occupied--
					break
				}
			}
			doomed++
		}
	}
	return doomed
}

// Occupied returns the number of valid entries (for tests).
func (t *TLB) Occupied() int { return t.occupied }
