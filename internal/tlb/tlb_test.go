package tlb

import (
	"math/rand"
	"testing"
)

func TestTLBHitMiss(t *testing.T) {
	tl := New("L1D", 1, 64)
	if _, ok := tl.Lookup(42); ok {
		t.Fatal("hit on empty TLB")
	}
	tl.Insert(42, 0xabc)
	v, ok := tl.Lookup(42)
	if !ok || v != 0xabc {
		t.Fatalf("Lookup = %#x,%v", v, ok)
	}
	if tl.Stats.Hits != 1 || tl.Stats.Misses != 1 {
		t.Fatalf("stats = %+v", tl.Stats)
	}
}

func TestTLBLRUEviction(t *testing.T) {
	tl := New("t", 1, 2)
	tl.Insert(1, 0)
	tl.Insert(2, 0)
	tl.Lookup(1) // 1 becomes MRU
	tl.Insert(3, 0)
	if _, ok := tl.Lookup(2); ok {
		t.Fatal("LRU entry 2 survived")
	}
	if _, ok := tl.Lookup(1); !ok {
		t.Fatal("MRU entry 1 evicted")
	}
	if tl.Stats.Evictions != 1 {
		t.Fatalf("evictions = %d", tl.Stats.Evictions)
	}
}

func TestTLBSetAssociative(t *testing.T) {
	tl := New("L2D", 128, 4) // 512 entries, Table 1 geometry
	if tl.Entries() != 512 {
		t.Fatalf("entries = %d", tl.Entries())
	}
	// Keys mapping to the same set: low 7 bits equal.
	for i := uint64(0); i < 5; i++ {
		tl.Insert(i<<7|3, i)
	}
	// One of the first five must have been evicted; occupancy stays <= 4 in
	// that set.
	hits := 0
	for i := uint64(0); i < 5; i++ {
		if _, ok := tl.Lookup(i<<7 | 3); ok {
			hits++
		}
	}
	if hits != 4 {
		t.Fatalf("set holds %d of 5 conflicting keys, want 4", hits)
	}
}

func TestTLBInsertRefreshes(t *testing.T) {
	tl := New("t", 1, 4)
	tl.Insert(1, 10)
	tl.Insert(1, 20)
	if tl.Occupied() != 1 {
		t.Fatalf("occupied = %d", tl.Occupied())
	}
	if v, _ := tl.Lookup(1); v != 20 {
		t.Fatalf("value = %d, want 20", v)
	}
}

func TestTLBInvalidate(t *testing.T) {
	tl := New("t", 1, 8)
	for i := uint64(0); i < 8; i++ {
		tl.Insert(i, i)
	}
	n := tl.InvalidateIf(func(k uint64) bool { return k%2 == 0 })
	if n != 4 || tl.Occupied() != 4 {
		t.Fatalf("n=%d occupied=%d", n, tl.Occupied())
	}
	tl.InvalidateAll()
	if tl.Occupied() != 0 {
		t.Fatal("InvalidateAll left entries")
	}
}

func TestRangeTLBPageEntries(t *testing.T) {
	rt := NewRange("MTL", 4)
	rt.Insert(RangeEntry{Base: 0x1000, Size: 4096, Phys: 0x9000})
	e, ok := rt.Lookup(0x1abc)
	if !ok || e.Translate(0x1abc) != 0x9abc {
		t.Fatalf("Lookup/Translate = %+v,%v", e, ok)
	}
	if _, ok := rt.Lookup(0x2000); ok {
		t.Fatal("hit outside range")
	}
}

func TestRangeTLBBigEntry(t *testing.T) {
	rt := NewRange("MTL", 4)
	// A directly-mapped 4 MB VB: one entry covers it all (§5.3).
	rt.Insert(RangeEntry{Base: 1 << 30, Size: 4 << 20, Phys: 0x4000_0000})
	for _, off := range []uint64{0, 4095, 1 << 20, 4<<20 - 1} {
		e, ok := rt.Lookup(1<<30 + off)
		if !ok {
			t.Fatalf("miss at offset %#x", off)
		}
		if got := e.Translate(1<<30 + off); got != 0x4000_0000+off {
			t.Fatalf("translate(%#x) = %#x", off, got)
		}
	}
	if _, ok := rt.Lookup(1<<30 + 4<<20); ok {
		t.Fatal("hit just past the range end")
	}
}

func TestRangeTLBEvictionLRU(t *testing.T) {
	rt := NewRange("MTL", 2)
	rt.Insert(RangeEntry{Base: 0x1000, Size: 4096, Phys: 1})
	rt.Insert(RangeEntry{Base: 0x2000, Size: 4096, Phys: 2})
	rt.Lookup(0x1000) // refresh first
	rt.Insert(RangeEntry{Base: 0x3000, Size: 4096, Phys: 3})
	if _, ok := rt.Lookup(0x2000); ok {
		t.Fatal("LRU range entry survived")
	}
	if _, ok := rt.Lookup(0x1000); !ok {
		t.Fatal("MRU range entry evicted")
	}
	if rt.Stats.Evictions != 1 {
		t.Fatalf("evictions = %d", rt.Stats.Evictions)
	}
}

func TestRangeTLBEvictionMixed(t *testing.T) {
	rt := NewRange("MTL", 2)
	rt.Insert(RangeEntry{Base: 0, Size: 1 << 20, Phys: 0})     // big
	rt.Insert(RangeEntry{Base: 1 << 30, Size: 4096, Phys: 42}) // page
	rt.Lookup(1 << 30)                                         // page entry is MRU
	rt.Insert(RangeEntry{Base: 2 << 30, Size: 2 << 20, Phys: 7})
	if _, ok := rt.Lookup(512); ok {
		t.Fatal("LRU big entry survived")
	}
	if rt.Occupied() != 2 {
		t.Fatalf("occupied = %d", rt.Occupied())
	}
}

func TestRangeTLBInvalidateRange(t *testing.T) {
	rt := NewRange("MTL", 8)
	rt.Insert(RangeEntry{Base: 0x0000, Size: 4096, Phys: 0})
	rt.Insert(RangeEntry{Base: 0x1000, Size: 4096, Phys: 1})
	rt.Insert(RangeEntry{Base: 0x10000, Size: 1 << 16, Phys: 2})
	n := rt.InvalidateRange(0x1000, 0x10000)
	if n != 2 {
		t.Fatalf("invalidated %d, want 2", n)
	}
	if _, ok := rt.Lookup(0x0800); !ok {
		t.Fatal("untouched entry lost")
	}
	if _, ok := rt.Lookup(0x1800); ok {
		t.Fatal("invalidated page entry survived")
	}
	if _, ok := rt.Lookup(0x10000); ok {
		t.Fatal("invalidated big entry survived")
	}
}

func TestRangeTLBCapacityBound(t *testing.T) {
	rt := NewRange("MTL", 16)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		if rng.Intn(4) == 0 {
			rt.Insert(RangeEntry{Base: uint64(rng.Intn(100)) << 22, Size: 1 << 22, Phys: 0})
		} else {
			rt.Insert(RangeEntry{Base: uint64(rng.Intn(4096)) << 12, Size: 4096, Phys: 0})
		}
		if rt.Occupied() > 16 {
			t.Fatalf("occupancy %d exceeds capacity", rt.Occupied())
		}
	}
}

func TestPWC(t *testing.T) {
	p := NewPWC("PWC", 32)
	if _, ok := p.Lookup(2, 0x40); ok {
		t.Fatal("hit on empty PWC")
	}
	p.Insert(2, 0x40, 0xdead000)
	v, ok := p.Lookup(2, 0x40)
	if !ok || v != 0xdead000 {
		t.Fatalf("Lookup = %#x,%v", v, ok)
	}
	// Same prefix at a different level is a distinct key.
	if _, ok := p.Lookup(3, 0x40); ok {
		t.Fatal("level collision")
	}
	p.InvalidateAll()
	if _, ok := p.Lookup(2, 0x40); ok {
		t.Fatal("entry survived InvalidateAll")
	}
	if p.Stats().Misses != 3 {
		t.Fatalf("misses = %d", p.Stats().Misses)
	}
}

// Repeated InvalidateAll/refill cycles must not allocate: InvalidateAll
// clears the flat way array in place and Insert recycles it.
func TestTLBInvalidateRefillNoAllocs(t *testing.T) {
	tl := New("dtlb", 16, 4)
	for i := uint64(0); i < 64; i++ {
		tl.Insert(i, i+1)
	}
	allocs := testing.AllocsPerRun(100, func() {
		tl.InvalidateAll()
		for i := uint64(0); i < 64; i++ {
			tl.Insert(i, i+1)
		}
	})
	if allocs != 0 {
		t.Fatalf("invalidate/refill cycle allocates %v times", allocs)
	}
}
