package tlb

// RangeEntry is a variable-granularity translation: VBI addresses in
// [Base, Base+Size) map to physical addresses starting at Phys. A
// directly-mapped VB needs a single entry covering the whole VB (§5.2,
// §5.3); page-granularity mappings use Size = 4096.
type RangeEntry struct {
	Base uint64
	Size uint64
	Phys uint64
}

// Contains reports whether the entry translates address a.
func (e RangeEntry) Contains(a uint64) bool {
	return a >= e.Base && a-e.Base < e.Size
}

// Translate maps a (which must be contained) to its physical address.
func (e RangeEntry) Translate(a uint64) uint64 {
	return e.Phys + (a - e.Base)
}

const pageShift = 12

type rangeSlot struct {
	e    RangeEntry
	used uint64
}

// RangeTLB is a fully-associative TLB whose entries cover arbitrary
// power-of-two-aligned ranges. Page-sized entries (the common case) are
// indexed in a hash map for O(1) lookup; larger entries are kept in a small
// linear list (their count is bounded by the number of live VBs, which is
// small — §4.3 observes most programs need a few tens of VBs). Eviction is
// global LRU across both kinds.
type RangeTLB struct {
	Name     string
	Stats    Stats
	capacity int

	pages map[uint64]*rangeSlot // page-number -> slot, for Size==4096 entries
	big   []*rangeSlot          // entries with Size > 4096
	tick  uint64
}

// NewRange builds a RangeTLB holding up to capacity entries.
func NewRange(name string, capacity int) *RangeTLB {
	if capacity <= 0 {
		panic("tlb: bad range capacity")
	}
	return &RangeTLB{
		Name:     name,
		capacity: capacity,
		pages:    make(map[uint64]*rangeSlot, capacity),
	}
}

// Entries returns the TLB capacity.
func (t *RangeTLB) Entries() int { return t.capacity }

// Occupied returns the number of live entries.
func (t *RangeTLB) Occupied() int { return len(t.pages) + len(t.big) }

// Lookup probes for a translation covering address a.
func (t *RangeTLB) Lookup(a uint64) (RangeEntry, bool) {
	if s, ok := t.pages[a>>pageShift]; ok {
		t.tick++
		s.used = t.tick
		t.Stats.Hits++
		return s.e, true
	}
	for _, s := range t.big {
		if s.e.Contains(a) {
			t.tick++
			s.used = t.tick
			t.Stats.Hits++
			return s.e, true
		}
	}
	t.Stats.Misses++
	return RangeEntry{}, false
}

// Insert caches the translation, evicting the global LRU entry when full.
// Inserting a range that duplicates an existing base refreshes it.
func (t *RangeTLB) Insert(e RangeEntry) {
	t.tick++
	if e.Size <= 1<<pageShift {
		pn := e.Base >> pageShift
		if s, ok := t.pages[pn]; ok {
			s.e = e
			s.used = t.tick
			return
		}
		t.evictIfFull()
		t.pages[pn] = &rangeSlot{e: e, used: t.tick}
		return
	}
	for _, s := range t.big {
		if s.e.Base == e.Base && s.e.Size == e.Size {
			s.e = e
			s.used = t.tick
			return
		}
	}
	t.evictIfFull()
	t.big = append(t.big, &rangeSlot{e: e, used: t.tick})
}

func (t *RangeTLB) evictIfFull() {
	if t.Occupied() < t.capacity {
		return
	}
	// Global LRU scan. Inserts only happen on misses, so this O(n) scan is
	// off the common path.
	var (
		oldest   uint64 = ^uint64(0)
		pageKey  uint64
		fromPage bool
		bigIdx   = -1
	)
	// Ties on the LRU stamp break toward the smaller key: picking the map
	// iteration's first match would make eviction (and so timing)
	// nondeterministic across runs.
	//vbi:allow maporder min-reduction with total order (LRU stamp, then smallest key); visit order cannot change the pick
	for k, s := range t.pages {
		if s.used < oldest || (fromPage && s.used == oldest && k < pageKey) {
			oldest = s.used
			pageKey = k
			fromPage = true
			bigIdx = -1
		}
	}
	for i, s := range t.big {
		if s.used < oldest {
			oldest = s.used
			fromPage = false
			bigIdx = i
		}
	}
	if fromPage {
		delete(t.pages, pageKey)
	} else if bigIdx >= 0 {
		t.big = append(t.big[:bigIdx], t.big[bigIdx+1:]...)
	}
	t.Stats.Evictions++
}

// InvalidateRange drops every entry overlapping [base, base+size) (used by
// disable_vb, promote_vb and migration).
func (t *RangeTLB) InvalidateRange(base, size uint64) int {
	n := 0
	for pn, s := range t.pages {
		if s.e.Base+s.e.Size > base && s.e.Base < base+size {
			delete(t.pages, pn)
			n++
		}
	}
	kept := t.big[:0]
	for _, s := range t.big {
		if s.e.Base+s.e.Size > base && s.e.Base < base+size {
			n++
			continue
		}
		kept = append(kept, s)
	}
	t.big = kept
	return n
}

// InvalidateAll empties the TLB.
func (t *RangeTLB) InvalidateAll() {
	t.pages = make(map[uint64]*rangeSlot, t.capacity)
	t.big = nil
}
