package tlb

import "slices"

// RangeEntry is a variable-granularity translation: VBI addresses in
// [Base, Base+Size) map to physical addresses starting at Phys. A
// directly-mapped VB needs a single entry covering the whole VB (§5.2,
// §5.3); page-granularity mappings use Size = 4096.
type RangeEntry struct {
	Base uint64
	Size uint64
	Phys uint64
}

// Contains reports whether the entry translates address a.
func (e RangeEntry) Contains(a uint64) bool {
	return a >= e.Base && a-e.Base < e.Size
}

// Translate maps a (which must be contained) to its physical address.
func (e RangeEntry) Translate(a uint64) uint64 {
	return e.Phys + (a - e.Base)
}

const pageShift = 12

// noSlot terminates the intrusive LRU list and marks empty pageIndex
// positions.
const noSlot int32 = -1

// pageIndex maps page numbers to slot indexes through open addressing:
// a power-of-two table at most half full (sized to 2× the TLB capacity),
// linear probing, and backward-shift deletion instead of tombstones. It
// replaces the map the RangeTLB previously kept — same contract, but the
// probe loop touches one cache line per step, never allocates, and never
// rehashes, which is what the per-reference hot loop wants.
type pageIndex struct {
	keys  []uint64
	slots []int32 // noSlot = empty position
	mask  uint64
	shift uint
	n     int
}

func newPageIndex(capacity int) pageIndex {
	size := 8
	for size < 2*capacity {
		size <<= 1
	}
	p := pageIndex{
		keys:  make([]uint64, size),
		slots: make([]int32, size),
		mask:  uint64(size - 1),
		shift: uint(64 - bitsLen(size-1)),
	}
	p.reset()
	return p
}

// bitsLen is bits.Len for the one constructor-time call (kept local so
// the hot path imports nothing).
func bitsLen(v int) int {
	n := 0
	for v > 0 {
		n++
		v >>= 1
	}
	return n
}

func (p *pageIndex) reset() {
	for i := range p.slots {
		p.slots[i] = noSlot
	}
	p.n = 0
}

// home is Fibonacci hashing: the multiply spreads strided page numbers,
// the high bits index the table. Sequential page numbers (the common
// trace pattern) stay collision-free.
//
//vbi:hotpath
func (p *pageIndex) home(pn uint64) uint64 {
	return (pn * 0x9E3779B97F4A7C15) >> p.shift
}

//vbi:hotpath
func (p *pageIndex) get(pn uint64) (int32, bool) {
	for i := p.home(pn); ; i = (i + 1) & p.mask {
		s := p.slots[i]
		if s == noSlot {
			return noSlot, false
		}
		if p.keys[i] == pn {
			return s, true
		}
	}
}

// put inserts or overwrites. The table is at most half full (occupancy is
// bounded by the TLB capacity), so the probe always finds a position.
//
//vbi:hotpath
func (p *pageIndex) put(pn uint64, slot int32) {
	for i := p.home(pn); ; i = (i + 1) & p.mask {
		if p.slots[i] == noSlot {
			p.keys[i], p.slots[i] = pn, slot
			p.n++
			return
		}
		if p.keys[i] == pn {
			p.slots[i] = slot
			return
		}
	}
}

// del removes pn, backward-shifting the rest of its probe cluster so no
// chain is ever broken: a follower moves into the hole unless its home
// position sits strictly after the hole (cyclically), in which case the
// hole cannot be on its probe path.
//
//vbi:hotpath
func (p *pageIndex) del(pn uint64) {
	i := p.home(pn)
	for ; ; i = (i + 1) & p.mask {
		if p.slots[i] == noSlot {
			return
		}
		if p.keys[i] == pn {
			break
		}
	}
	p.n--
	hole := i
	for j := (i + 1) & p.mask; p.slots[j] != noSlot; j = (j + 1) & p.mask {
		if ((j - p.home(p.keys[j])) & p.mask) >= ((j - hole) & p.mask) {
			p.keys[hole], p.slots[hole] = p.keys[j], p.slots[j]
			hole = j
		}
	}
	p.slots[hole] = noSlot
}

type rangeSlot struct {
	e     RangeEntry
	prev  int32 // toward LRU head (older)
	next  int32 // toward MRU tail (newer)
	valid bool
}

// RangeTLB is a fully-associative TLB whose entries cover arbitrary
// power-of-two-aligned ranges. All entries live in a flat, pre-allocated
// slot array recycled through a free list, so steady-state Insert (and
// eviction) never allocates. Page-sized entries (the common case) are
// indexed by page number for O(1) lookup; larger entries are tracked in a
// small insertion-ordered index list (their count is bounded by the number
// of live VBs, which is small — §4.3 observes most programs need a few
// tens of VBs).
//
// Recency is an intrusive doubly-linked list threaded through the slots:
// every hit, refresh or insert moves the slot to the MRU tail, so the LRU
// victim is always the head — O(1), no scan, no per-entry stamp. This is
// observably identical to the tick/used stamping it replaced: stamps were
// unique (the tick advanced before every assignment), so "minimum stamp"
// and "least recently moved to the tail" name the same entry, and the old
// page-over-big tie-break was unreachable.
type RangeTLB struct {
	Name     string
	Stats    Stats
	capacity int

	slots []rangeSlot // capacity slots, both entry kinds
	free  []int32     // invalid slot indexes (LIFO)
	pages pageIndex   // page-number -> slot index, for Size<=4096 entries
	big   []int32     // slot indexes of Size>4096 entries, insertion order
	head  int32       // LRU end of the recency list (eviction victim)
	tail  int32       // MRU end of the recency list
}

// NewRange builds a RangeTLB holding up to capacity entries.
func NewRange(name string, capacity int) *RangeTLB {
	if capacity <= 0 {
		panic("tlb: bad range capacity")
	}
	t := &RangeTLB{
		Name:     name,
		capacity: capacity,
		slots:    make([]rangeSlot, capacity),
		free:     make([]int32, capacity),
		pages:    newPageIndex(capacity),
		big:      make([]int32, 0, capacity),
		head:     noSlot,
		tail:     noSlot,
	}
	t.resetFree()
	return t
}

// resetFree rebuilds the free list over all slots. Highest index first, so
// slots are handed out in ascending order (pop from the tail).
func (t *RangeTLB) resetFree() {
	t.free = t.free[:cap(t.free)]
	for i := range t.free {
		t.free[i] = int32(t.capacity - 1 - i)
	}
}

// Entries returns the TLB capacity.
func (t *RangeTLB) Entries() int { return t.capacity }

// Occupied returns the number of live entries.
func (t *RangeTLB) Occupied() int { return t.pages.n + len(t.big) }

// touch moves slot i to the MRU tail of the recency list.
//
//vbi:hotpath
func (t *RangeTLB) touch(i int32) {
	if t.tail == i {
		return
	}
	t.unlink(i)
	t.pushTail(i)
}

// unlink removes slot i from the recency list.
//
//vbi:hotpath
func (t *RangeTLB) unlink(i int32) {
	s := &t.slots[i]
	if s.prev != noSlot {
		t.slots[s.prev].next = s.next
	} else {
		t.head = s.next
	}
	if s.next != noSlot {
		t.slots[s.next].prev = s.prev
	} else {
		t.tail = s.prev
	}
}

// pushTail appends slot i at the MRU tail of the recency list.
//
//vbi:hotpath
func (t *RangeTLB) pushTail(i int32) {
	s := &t.slots[i]
	s.prev = t.tail
	s.next = noSlot
	if t.tail != noSlot {
		t.slots[t.tail].next = i
	} else {
		t.head = i
	}
	t.tail = i
}

// Lookup probes for a translation covering address a. Lookup never
// allocates.
//
//vbi:hotpath
func (t *RangeTLB) Lookup(a uint64) (RangeEntry, bool) {
	if i, ok := t.pages.get(a >> pageShift); ok {
		t.touch(i)
		t.Stats.Hits++
		return t.slots[i].e, true
	}
	for _, i := range t.big {
		if t.slots[i].e.Contains(a) {
			t.touch(i)
			t.Stats.Hits++
			return t.slots[i].e, true
		}
	}
	t.Stats.Misses++
	return RangeEntry{}, false
}

// Insert caches the translation, evicting the global LRU entry when full.
// Inserting a range that duplicates an existing base refreshes it. Insert
// recycles slots through the free list and never allocates in steady
// state.
//
//vbi:hotpath
func (t *RangeTLB) Insert(e RangeEntry) {
	if e.Size <= 1<<pageShift {
		pn := e.Base >> pageShift
		if i, ok := t.pages.get(pn); ok {
			t.slots[i].e = e
			t.touch(i)
			return
		}
		t.evictIfFull()
		t.pages.put(pn, t.takeSlot(e))
		return
	}
	for _, i := range t.big {
		if t.slots[i].e.Base == e.Base && t.slots[i].e.Size == e.Size {
			t.slots[i].e = e
			t.touch(i)
			return
		}
	}
	t.evictIfFull()
	//vbi:allow hotalloc append stays within the capacity pre-sized in NewRange; evictions push indexes back to the free list, never shrink it
	t.big = append(t.big, t.takeSlot(e))
}

// takeSlot pops a free slot, fills it with e and makes it the MRU entry.
//
//vbi:hotpath
func (t *RangeTLB) takeSlot(e RangeEntry) int32 {
	i := t.free[len(t.free)-1]
	t.free = t.free[:len(t.free)-1]
	t.slots[i] = rangeSlot{e: e, valid: true}
	t.pushTail(i)
	return i
}

// dropSlot invalidates a slot and returns it to the free list.
func (t *RangeTLB) dropSlot(i int32) {
	t.unlink(i)
	t.slots[i] = rangeSlot{}
	//vbi:allow hotalloc append stays within the capacity allocated in NewRange: the free list never holds more than capacity indexes
	t.free = append(t.free, i)
}

// evictIfFull drops the LRU entry — the recency-list head — to make room.
//
//vbi:hotpath
func (t *RangeTLB) evictIfFull() {
	if t.Occupied() < t.capacity {
		return
	}
	victim := t.head
	s := &t.slots[victim]
	if s.e.Size <= 1<<pageShift {
		t.pages.del(s.e.Base >> pageShift)
	} else {
		for bi, i := range t.big {
			if i == victim {
				//vbi:allow hotalloc removal by shifting in place: the result is shorter than t.big, so append never grows it
				t.big = append(t.big[:bi], t.big[bi+1:]...)
				break
			}
		}
	}
	t.dropSlot(victim)
	t.Stats.Evictions++
}

// InvalidateRange drops every entry overlapping [base, base+size) (used by
// disable_vb, promote_vb and migration). Cold path: page keys are
// collected and sorted before removal so the free-list recycle order is a
// function of TLB contents, not of the index's probe layout.
func (t *RangeTLB) InvalidateRange(base, size uint64) int {
	n := 0
	var doomed []uint64
	for j, slot := range t.pages.slots {
		if slot == noSlot {
			continue
		}
		s := &t.slots[slot]
		if s.e.Base+s.e.Size > base && s.e.Base < base+size {
			doomed = append(doomed, t.pages.keys[j])
		}
	}
	slices.Sort(doomed)
	for _, pn := range doomed {
		i, _ := t.pages.get(pn)
		t.dropSlot(i)
		t.pages.del(pn)
		n++
	}
	kept := t.big[:0]
	for _, i := range t.big {
		s := &t.slots[i]
		if s.e.Base+s.e.Size > base && s.e.Base < base+size {
			t.dropSlot(i)
			n++
			continue
		}
		kept = append(kept, i)
	}
	t.big = kept
	return n
}

// InvalidateAll empties the TLB in place: the slot array, free list, page
// index and recency list are reset without reallocating, so repeated
// invalidate/refill cycles are allocation-free.
func (t *RangeTLB) InvalidateAll() {
	for i := range t.slots {
		t.slots[i] = rangeSlot{}
	}
	t.pages.reset()
	t.resetFree()
	t.big = t.big[:0]
	t.head, t.tail = noSlot, noSlot
}
