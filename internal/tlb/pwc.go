package tlb

// PWC is a page-walk cache (Table 1: 32-entry, fully associative). It
// caches intermediate page-table nodes so a radix walk can skip already-
// translated upper levels: key = (level, address-prefix at that level),
// value = physical address of the next-level table.
//
// The same structure serves as the nested (2D) page-walk cache that
// Virtual-2M is augmented with (§7.2, footnote 4), keyed by guest-physical
// prefixes.
type PWC struct {
	t *TLB
}

// NewPWC builds a fully associative page-walk cache with the given entry
// count.
func NewPWC(name string, entries int) *PWC {
	return &PWC{t: New(name, 1, entries)}
}

// key packs the walk level into the low bits of the prefix. Levels are
// small (< 8); prefixes are page-aligned, so the low 3 bits are free.
func pwcKey(level int, prefix uint64) uint64 {
	return prefix<<3 | uint64(level)&7
}

// Lookup returns the cached next-table physical address for the walk node
// (level, prefix).
func (p *PWC) Lookup(level int, prefix uint64) (uint64, bool) {
	return p.t.Lookup(pwcKey(level, prefix))
}

// Insert caches the walk node.
func (p *PWC) Insert(level int, prefix, nextTable uint64) {
	p.t.Insert(pwcKey(level, prefix), nextTable)
}

// InvalidateAll empties the cache.
func (p *PWC) InvalidateAll() { p.t.InvalidateAll() }

// Stats returns the hit/miss counters.
func (p *PWC) Stats() Stats { return p.t.Stats }
