package enigma

import (
	"testing"

	"vbi/internal/phys"
)

func TestTranslateAllocatesOnFirstTouch(t *testing.T) {
	e := New(64 << 20)
	base := e.AllocRegion(8 << 20)
	ev, err := e.Translate(base + 12345)
	if err != nil {
		t.Fatal(err)
	}
	if ev.CTCHit {
		t.Fatal("cold access hit the CTC")
	}
	if !ev.Allocated {
		t.Fatal("first touch did not allocate")
	}
	if ev.WalkAccess == phys.NoAddr {
		t.Fatal("miss did not walk the flat table")
	}
	if uint64(ev.PA)&(PageSize-1) != 12345 {
		t.Fatalf("PA offset = %d", uint64(ev.PA)&(PageSize-1))
	}
}

func TestCTCHitAfterMiss(t *testing.T) {
	e := New(64 << 20)
	base := e.AllocRegion(8 << 20)
	first, _ := e.Translate(base)
	second, err := e.Translate(base + 64)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CTCHit || second.Allocated {
		t.Fatalf("warm access = %+v", second)
	}
	if second.PA != first.PA+64 {
		t.Fatalf("PA mismatch: %v then %v", first.PA, second.PA)
	}
}

func Test2MGranularity(t *testing.T) {
	e := New(64 << 20)
	base := e.AllocRegion(8 << 20)
	e.Translate(base)
	// Anywhere in the same 2 MB page hits without a new allocation.
	ev, _ := e.Translate(base + PageSize - 64)
	if !ev.CTCHit {
		t.Fatal("same-page access missed")
	}
	// The next 2 MB page allocates separately.
	ev, _ = e.Translate(base + PageSize)
	if ev.CTCHit || !ev.Allocated {
		t.Fatalf("next-page access = %+v", ev)
	}
	if e.Stats.PageAllocs != 2 {
		t.Fatalf("page allocs = %d", e.Stats.PageAllocs)
	}
}

func TestRegionsDisjoint(t *testing.T) {
	e := New(64 << 20)
	a := e.AllocRegion(4 << 20)
	b := e.AllocRegion(4 << 20)
	if b < a+4<<20 {
		t.Fatalf("regions overlap: %#x, %#x", a, b)
	}
	pa1, _ := e.Translate(a)
	pa2, _ := e.Translate(b)
	if pa1.PA == pa2.PA {
		t.Fatal("distinct regions share physical memory")
	}
}

func TestOutOfMemory(t *testing.T) {
	e := New(4 << 20) // two 2 MB pages
	base := e.AllocRegion(16 << 20)
	var err error
	for i := uint64(0); i < 8; i++ {
		if _, err = e.Translate(base + i*PageSize); err != nil {
			break
		}
	}
	if err == nil {
		t.Fatal("allocator never exhausted")
	}
}

func TestCTCReach(t *testing.T) {
	// 16K entries of 2 MB = 32 GB of reach; a multi-GB footprint must not
	// thrash the CTC.
	e := New(1 << 30)
	base := e.AllocRegion(512 << 20)
	for i := uint64(0); i < 256; i++ { // 256 pages = 512 MB
		e.Translate(base + i*PageSize)
	}
	hits := e.Stats.CTCHits
	for i := uint64(0); i < 256; i++ {
		e.Translate(base + i*PageSize)
	}
	if e.Stats.CTCHits-hits != 256 {
		t.Fatalf("re-walk hits = %d/256", e.Stats.CTCHits-hits)
	}
}
