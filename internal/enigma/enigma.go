// Package enigma implements the Enigma baseline of Zhang et al. [137] as
// configured in §7.2.2 (Enigma-HW-2M): programs use a system-wide unique
// intermediate address space, on-chip caches are indexed by intermediate
// addresses (deferring translation to the memory controller, like VBI),
// and a large centralized translation cache (CTC, 16K entries) at the
// memory controller maps 2 MB intermediate pages to physical memory. The
// original design raised an OS system call on a CTC miss; following the
// paper's enhancement, misses here are served by a hardware walk of a flat
// table (one memory access), and pages are 2 MB.
//
// Unlike VBI, Enigma's OS still manages mapping policy, there is no
// delayed allocation (first touch allocates the whole 2 MB page), no
// per-structure translation flexibility, and its benefits do not extend to
// programs inside virtual machines (§7.2.2).
package enigma

import (
	"fmt"

	"vbi/internal/osmodel"
	"vbi/internal/phys"
	"vbi/internal/tlb"
)

// PageShift is Enigma-HW-2M's translation granularity (2 MB).
const PageShift = 21

// PageSize is the translation granularity in bytes.
const PageSize = 1 << PageShift

// CTCEntries is the centralized translation cache size (§7.2.2: 16K
// entries, giving 32 GB of reach with 2 MB pages).
const CTCEntries = 16 * 1024

// flatTableBase is the synthetic physical region holding the flat
// intermediate-to-physical table.
const flatTableBase = uint64(1) << 46

// Stats counts Enigma events.
type Stats struct {
	Translations uint64
	CTCHits      uint64
	CTCMisses    uint64
	PageAllocs   uint64
}

// Event reports one translation for the timing model.
type Event struct {
	PA phys.Addr
	// CTCHit is set when the centralized translation cache resolved it.
	CTCHit bool
	// WalkAccess is the flat-table entry read on a miss (phys.NoAddr on a
	// hit).
	WalkAccess phys.Addr
	// Allocated is set when this access allocated the 2 MB page.
	Allocated bool
}

// Enigma is one memory-controller-side translation unit.
type Enigma struct {
	Stats Stats

	ctc   *tlb.TLB
	table map[uint64]phys.Addr // intermediate page number -> physical base
	ibrk  uint64               // intermediate-address bump pointer
	alloc *osmodel.Bump
}

// New builds an Enigma unit over capacity bytes of physical memory.
func New(capacity uint64) *Enigma {
	return &Enigma{
		// 8-way set-associative CTC.
		ctc:   tlb.New("CTC", CTCEntries/8, 8),
		table: make(map[uint64]phys.Addr),
		ibrk:  1 << 30,
		alloc: osmodel.NewBump(0, capacity),
	}
}

// AllocRegion reserves a region of the intermediate address space (the
// OS-visible allocation; physical memory arrives on first touch).
func (e *Enigma) AllocRegion(size uint64) uint64 {
	base := (e.ibrk + PageSize - 1) &^ (PageSize - 1)
	e.ibrk = base + size
	return base
}

// entryAddr returns the flat-table entry address for an intermediate page.
func entryAddr(ipn uint64) phys.Addr {
	return phys.Addr(flatTableBase | ipn*8)
}

// Translate maps an intermediate address to physical at the memory
// controller, allocating the 2 MB page on first touch (hardware-managed,
// no system call).
func (e *Enigma) Translate(ia uint64) (Event, error) {
	e.Stats.Translations++
	ev := Event{WalkAccess: phys.NoAddr}
	ipn := ia >> PageShift
	if base, ok := e.ctc.Lookup(ipn); ok {
		e.Stats.CTCHits++
		ev.CTCHit = true
		ev.PA = phys.Addr(base) + phys.Addr(ia&(PageSize-1))
		return ev, nil
	}
	e.Stats.CTCMisses++
	ev.WalkAccess = entryAddr(ipn)
	base, ok := e.table[ipn]
	if !ok {
		p, allocOK := e.alloc.AllocSized(PageSize)
		if !allocOK {
			return ev, fmt.Errorf("enigma: out of physical memory")
		}
		e.table[ipn] = p
		base = p
		ev.Allocated = true
		e.Stats.PageAllocs++
	}
	e.ctc.Insert(ipn, uint64(base))
	ev.PA = base + phys.Addr(ia&(PageSize-1))
	return ev, nil
}
