package addr

import "fmt"

// This file implements the two VBID-partitioning schemes of §6:
// virtual-machine isolation (§6.1) and multi-node home-MTL routing (§6.2).
// Both carve the high-order bits of the VBID, leaving the VBI address format
// itself unchanged, so guests and remote nodes use ordinary VBI addresses.

// VMIDBits is the number of VBID bits reserved for the virtual-machine ID in
// systems that support virtualization (§6.1): 5 bits support 31 VMs plus the
// host (VM ID 0 is reserved for the host OS).
const VMIDBits = 5

// MaxVMID is the largest virtual-machine ID (host is 0).
const MaxVMID = 1<<VMIDBits - 1

// VMPartition assigns each virtual machine a disjoint slice of every size
// class's VBID space by pinning the top VMIDBits of the VBID.
type VMPartition struct{}

// VBIDRange returns the [lo, hi] inclusive VBID range owned by vm within
// size class c. It returns ok=false if the class has too few VBID bits to
// partition (never happens for the eight standard classes: the smallest VBID
// width is 14 bits).
func (VMPartition) VBIDRange(c SizeClass, vm uint32) (lo, hi uint64, ok bool) {
	bits := c.VBIDBits()
	if bits <= VMIDBits || vm > MaxVMID {
		return 0, 0, false
	}
	span := uint64(1) << (bits - VMIDBits)
	lo = uint64(vm) * span
	return lo, lo + span - 1, true
}

// VMOf returns the virtual-machine ID that owns the VB.
func (VMPartition) VMOf(u VBUID) uint32 {
	c := u.Class()
	return uint32(u.VBID() >> (c.VBIDBits() - VMIDBits))
}

// MakeVMVBUID builds the VBUID of the idx-th VB of class c owned by vm.
// It panics when idx overflows the VM's slice of the class.
func (p VMPartition) MakeVMVBUID(c SizeClass, vm uint32, idx uint64) VBUID {
	lo, hi, ok := p.VBIDRange(c, vm)
	if !ok || lo+idx > hi {
		panic(fmt.Sprintf("addr: VM %d index %d overflows class %v", vm, idx, c))
	}
	return MakeVBUID(c, lo+idx)
}

// NodePartition routes each VB to its home MTL in a multi-node system
// (§6.2): the high-order bits of the VBID name the home node.
type NodePartition struct {
	// Nodes is the node count; must be a power of two between 1 and 256.
	Nodes int
}

// nodeBits returns log2(Nodes).
func (p NodePartition) nodeBits() uint {
	b := uint(0)
	for 1<<b < p.Nodes {
		b++
	}
	return b
}

// Valid reports whether the partition is well formed.
func (p NodePartition) Valid() bool {
	return p.Nodes >= 1 && p.Nodes <= 256 && p.Nodes&(p.Nodes-1) == 0
}

// HomeOf returns the home MTL node of the VB.
func (p NodePartition) HomeOf(u VBUID) int {
	if p.Nodes <= 1 {
		return 0
	}
	c := u.Class()
	return int(u.VBID() >> (c.VBIDBits() - p.nodeBits()))
}

// VBIDRange returns the [lo, hi] inclusive VBID range homed at node within
// size class c.
func (p NodePartition) VBIDRange(c SizeClass, node int) (lo, hi uint64, ok bool) {
	if !p.Valid() || node < 0 || node >= p.Nodes {
		return 0, 0, false
	}
	if p.Nodes == 1 {
		return 0, c.MaxVBID(), true
	}
	bits := c.VBIDBits()
	nb := p.nodeBits()
	if bits <= nb {
		return 0, 0, false
	}
	span := uint64(1) << (bits - nb)
	lo = uint64(node) * span
	return lo, lo + span - 1, true
}
