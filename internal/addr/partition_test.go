package addr

import (
	"testing"
	"testing/quick"
)

func TestVMPartitionDisjointAndCovering(t *testing.T) {
	var p VMPartition
	for c := Size4KB; c < NumSizeClasses; c++ {
		var prevHi uint64
		for vm := uint32(0); vm <= MaxVMID; vm++ {
			lo, hi, ok := p.VBIDRange(c, vm)
			if !ok {
				t.Fatalf("class %v vm %d: no range", c, vm)
			}
			if vm == 0 && lo != 0 {
				t.Errorf("class %v: vm 0 range starts at %d, want 0", c, lo)
			}
			if vm > 0 && lo != prevHi+1 {
				t.Errorf("class %v vm %d: range [%d,%d] not contiguous after %d", c, vm, lo, hi, prevHi)
			}
			prevHi = hi
		}
		if prevHi != c.MaxVBID() {
			t.Errorf("class %v: partition ends at %d, want %d", c, prevHi, c.MaxVBID())
		}
	}
}

func TestVMPartitionOwnership(t *testing.T) {
	var p VMPartition
	f := func(classRaw uint8, vmRaw uint32, idx uint64) bool {
		c := SizeClass(classRaw % NumSizeClasses)
		vm := vmRaw % (MaxVMID + 1)
		lo, hi, _ := p.VBIDRange(c, vm)
		u := MakeVBUID(c, lo+idx%(hi-lo+1))
		return p.VMOf(u) == vm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVMPartitionFigure5Example(t *testing.T) {
	// Figure 5: for the 4 GB size class the VBID is 24 bits wide, 5 of which
	// name the VM, leaving 24 bits of VBID and a 32-bit offset.
	if got := Size4GB.VBIDBits(); got != 29 {
		// Note: the paper's Figure 5 drawing shows 24 VBID bits *after* the
		// VM ID, i.e. 29 total VBID bits for the class. Check that.
		t.Fatalf("4GB VBID bits = %d, want 29 (24 + 5-bit VM ID)", got)
	}
	var p VMPartition
	u := p.MakeVMVBUID(Size4GB, 3, 17)
	if p.VMOf(u) != 3 {
		t.Errorf("VMOf = %d, want 3", p.VMOf(u))
	}
	lo, hi, _ := p.VBIDRange(Size4GB, 3)
	if hi-lo+1 != 1<<24 {
		t.Errorf("per-VM span = %d, want 2^24", hi-lo+1)
	}
}

func TestMakeVMVBUIDPanicsOnOverflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	var p VMPartition
	lo, hi, _ := p.VBIDRange(Size4GB, 1)
	p.MakeVMVBUID(Size4GB, 1, hi-lo+1)
}

func TestNodePartition(t *testing.T) {
	p := NodePartition{Nodes: 4}
	if !p.Valid() {
		t.Fatal("4-node partition should be valid")
	}
	for c := Size4KB; c < NumSizeClasses; c++ {
		seen := map[int]bool{}
		for n := 0; n < p.Nodes; n++ {
			lo, hi, ok := p.VBIDRange(c, n)
			if !ok {
				t.Fatalf("class %v node %d: no range", c, n)
			}
			u := MakeVBUID(c, (lo+hi)/2)
			if got := p.HomeOf(u); got != n {
				t.Errorf("class %v: HomeOf(mid of node %d range) = %d", c, n, got)
			}
			seen[n] = true
		}
		if len(seen) != p.Nodes {
			t.Errorf("class %v: only %d nodes covered", c, len(seen))
		}
	}
}

func TestNodePartitionSingleNode(t *testing.T) {
	p := NodePartition{Nodes: 1}
	if !p.Valid() {
		t.Fatal("single-node partition should be valid")
	}
	if got := p.HomeOf(MakeVBUID(Size128TB, 12345)); got != 0 {
		t.Errorf("HomeOf = %d, want 0", got)
	}
	lo, hi, ok := p.VBIDRange(Size4KB, 0)
	if !ok || lo != 0 || hi != Size4KB.MaxVBID() {
		t.Errorf("single-node range = [%d,%d],%v", lo, hi, ok)
	}
}

func TestNodePartitionInvalid(t *testing.T) {
	for _, n := range []int{0, 3, 5, 512, -1} {
		if (NodePartition{Nodes: n}).Valid() {
			t.Errorf("Nodes=%d should be invalid", n)
		}
	}
	if _, _, ok := (NodePartition{Nodes: 3}).VBIDRange(Size4KB, 0); ok {
		t.Error("invalid partition returned a range")
	}
}
