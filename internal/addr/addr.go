// Package addr implements the VBI address space: a single, globally-visible
// 64-bit address space partitioned into virtual blocks (VBs) of eight
// pre-determined size classes (4 KB, 128 KB, 4 MB, 128 MB, 4 GB, 128 GB,
// 4 TB, 128 TB).
//
// A VBI address is laid out as
//
//	| SizeID (3 bits) | VBID (61 - offsetBits) | offset (offsetBits) |
//
// where offsetBits depends on the size class (12 bits for 4 KB up to 47 bits
// for 128 TB). Every VB is identified system-wide by its VBI unique ID
// (VBUID), the concatenation of SizeID and VBID.
package addr

import "fmt"

// SizeClass identifies one of the eight VB size classes.
type SizeClass uint8

// The eight size classes of the reference implementation (§4.1.1).
const (
	Size4KB SizeClass = iota
	Size128KB
	Size4MB
	Size128MB
	Size4GB
	Size128GB
	Size4TB
	Size128TB

	// NumSizeClasses is the number of VB size classes.
	NumSizeClasses = 8
)

// AddressBits is the width of the processor's address bus.
const AddressBits = 64

// sizeIDBits is the width of the SizeID field at the top of every VBI
// address (3 bits encode the 8 size classes).
const sizeIDBits = 3

// classShift is the number of non-SizeID bits in a VBI address.
const classShift = AddressBits - sizeIDBits // 61

func (c SizeClass) String() string {
	switch c {
	case Size4KB:
		return "4KB"
	case Size128KB:
		return "128KB"
	case Size4MB:
		return "4MB"
	case Size128MB:
		return "128MB"
	case Size4GB:
		return "4GB"
	case Size128GB:
		return "128GB"
	case Size4TB:
		return "4TB"
	case Size128TB:
		return "128TB"
	}
	return fmt.Sprintf("SizeClass(%d)", uint8(c))
}

// Valid reports whether c is one of the eight defined size classes.
func (c SizeClass) Valid() bool { return c < NumSizeClasses }

// OffsetBits returns the number of offset bits for the class: 12 for 4 KB,
// growing by 5 bits per class (each class is 32x the previous one).
func (c SizeClass) OffsetBits() uint { return 12 + 5*uint(c) }

// Bytes returns the size in bytes of a VB of this class.
func (c SizeClass) Bytes() uint64 { return 1 << c.OffsetBits() }

// VBIDBits returns the number of VBID bits available within the class:
// 49 bits for the 4 KB class down to 14 bits for the 128 TB class.
func (c SizeClass) VBIDBits() uint { return classShift - c.OffsetBits() }

// MaxVBID returns the largest valid VBID within the class.
func (c SizeClass) MaxVBID() uint64 { return (1 << c.VBIDBits()) - 1 }

// ClassFor returns the smallest size class whose VBs can hold size bytes.
// It returns ok=false when size exceeds the largest class (128 TB).
func ClassFor(size uint64) (SizeClass, bool) {
	for c := Size4KB; c < NumSizeClasses; c++ {
		if size <= c.Bytes() {
			return c, true
		}
	}
	return 0, false
}

// VBUID is the system-wide unique ID of a virtual block: the concatenation
// of the 3-bit SizeID (in the top bits) and the VBID (in the low bits).
type VBUID uint64

// NilVBUID is the zero VBUID. By convention VBID 0 of the 4 KB class is
// never handed out, so NilVBUID never names a live VB.
const NilVBUID VBUID = 0

// MakeVBUID builds a VBUID from a size class and a VBID within the class.
func MakeVBUID(c SizeClass, vbid uint64) VBUID {
	return VBUID(uint64(c)<<classShift | vbid)
}

// Class returns the size class encoded in the VBUID.
func (u VBUID) Class() SizeClass { return SizeClass(uint64(u) >> classShift) }

// VBID returns the within-class block ID encoded in the VBUID.
func (u VBUID) VBID() uint64 { return uint64(u) & (1<<classShift - 1) }

// Valid reports whether the VBUID encodes a legal (class, VBID) pair.
func (u VBUID) Valid() bool {
	c := u.Class()
	return c.Valid() && u.VBID() <= c.MaxVBID()
}

// Size returns the size in bytes of the VB named by the VBUID.
func (u VBUID) Size() uint64 { return u.Class().Bytes() }

// Base returns the first VBI address of the VB named by the VBUID.
func (u VBUID) Base() Addr {
	c := u.Class()
	return Addr(uint64(c)<<classShift | u.VBID()<<c.OffsetBits())
}

func (u VBUID) String() string {
	return fmt.Sprintf("VB{%s #%d}", u.Class(), u.VBID())
}

// Addr is a VBI address: a byte address in the single global VBI address
// space. Because the VBI address space is globally visible, an Addr points
// to a unique piece of data system-wide, so it can be used directly to index
// on-chip caches without translation (no homonyms or synonyms, §3.5).
type Addr uint64

// Make builds the VBI address of the byte at offset within the VB u.
// It panics if offset lies outside the VB; callers are expected to have
// bounds-checked the offset during the CVT permission check.
func Make(u VBUID, offset uint64) Addr {
	c := u.Class()
	if offset >= c.Bytes() {
		panic(fmt.Sprintf("addr.Make: offset %#x outside %v", offset, u))
	}
	return Addr(uint64(u.Base()) | offset)
}

// Split decomposes a VBI address into the VBUID of the containing VB and the
// offset within it.
func (a Addr) Split() (VBUID, uint64) {
	c := SizeClass(uint64(a) >> classShift)
	ob := c.OffsetBits()
	vbid := (uint64(a) & (1<<classShift - 1)) >> ob
	off := uint64(a) & (1<<ob - 1)
	return MakeVBUID(c, vbid), off
}

// VB returns the VBUID of the VB containing the address.
func (a Addr) VB() VBUID { v, _ := a.Split(); return v }

// Offset returns the offset of the address within its VB.
func (a Addr) Offset() uint64 { _, o := a.Split(); return o }

// Line returns the 64-byte cache-line address containing a.
func (a Addr) Line() Addr { return a &^ 63 }

// Page returns the 4 KB page-aligned address containing a.
func (a Addr) Page() Addr { return a &^ 4095 }

func (a Addr) String() string {
	v, o := a.Split()
	return fmt.Sprintf("%v+%#x", v, o)
}
