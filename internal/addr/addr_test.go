package addr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSizeClassBytes(t *testing.T) {
	want := map[SizeClass]uint64{
		Size4KB:   4 << 10,
		Size128KB: 128 << 10,
		Size4MB:   4 << 20,
		Size128MB: 128 << 20,
		Size4GB:   4 << 30,
		Size128GB: 128 << 30,
		Size4TB:   4 << 40,
		Size128TB: 128 << 40,
	}
	for c, w := range want {
		if got := c.Bytes(); got != w {
			t.Errorf("%v.Bytes() = %d, want %d", c, got, w)
		}
	}
}

func TestSizeClassGeometry(t *testing.T) {
	// §4.1.1: the 4 KB class uses 12 offset bits leaving 49 VBID bits; the
	// 128 TB class uses 47 offset bits leaving 14 VBID bits.
	if got := Size4KB.OffsetBits(); got != 12 {
		t.Errorf("4KB offset bits = %d, want 12", got)
	}
	if got := Size4KB.VBIDBits(); got != 49 {
		t.Errorf("4KB VBID bits = %d, want 49", got)
	}
	if got := Size128TB.OffsetBits(); got != 47 {
		t.Errorf("128TB offset bits = %d, want 47", got)
	}
	if got := Size128TB.VBIDBits(); got != 14 {
		t.Errorf("128TB VBID bits = %d, want 14", got)
	}
	for c := Size4KB; c < NumSizeClasses; c++ {
		if got := sizeIDBits + c.VBIDBits() + c.OffsetBits(); got != AddressBits {
			t.Errorf("%v: field widths sum to %d, want %d", c, got, AddressBits)
		}
	}
}

func TestClassFor(t *testing.T) {
	cases := []struct {
		size uint64
		want SizeClass
		ok   bool
	}{
		{1, Size4KB, true},
		{4096, Size4KB, true},
		{4097, Size128KB, true},
		{128 << 10, Size128KB, true},
		{1 << 30, Size4GB, true},
		{128 << 40, Size128TB, true},
		{128<<40 + 1, 0, false},
	}
	for _, c := range cases {
		got, ok := ClassFor(c.size)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("ClassFor(%d) = %v,%v want %v,%v", c.size, got, ok, c.want, c.ok)
		}
	}
}

func TestVBUIDRoundTrip(t *testing.T) {
	f := func(classRaw uint8, vbidRaw uint64) bool {
		c := SizeClass(classRaw % NumSizeClasses)
		vbid := vbidRaw & c.MaxVBID()
		u := MakeVBUID(c, vbid)
		return u.Class() == c && u.VBID() == vbid && u.Valid()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddrRoundTrip(t *testing.T) {
	f := func(classRaw uint8, vbidRaw, offRaw uint64) bool {
		c := SizeClass(classRaw % NumSizeClasses)
		vbid := vbidRaw & c.MaxVBID()
		off := offRaw % c.Bytes()
		u := MakeVBUID(c, vbid)
		a := Make(u, off)
		gu, goff := a.Split()
		return gu == u && goff == off
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestAddrNoOverlapAcrossVBs(t *testing.T) {
	// Distinct VBs must never share a VBI address (the no-synonym property
	// of §3.5). Sample random pairs.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		c1 := SizeClass(rng.Intn(NumSizeClasses))
		c2 := SizeClass(rng.Intn(NumSizeClasses))
		u1 := MakeVBUID(c1, rng.Uint64()&c1.MaxVBID())
		u2 := MakeVBUID(c2, rng.Uint64()&c2.MaxVBID())
		if u1 == u2 {
			continue
		}
		a1 := Make(u1, rng.Uint64()%c1.Bytes())
		a2 := Make(u2, rng.Uint64()%c2.Bytes())
		if a1 == a2 {
			t.Fatalf("address collision: %v and %v both map to %#x", u1, u2, uint64(a1))
		}
	}
}

func TestAddrBaseAndHelpers(t *testing.T) {
	u := MakeVBUID(Size4MB, 7)
	a := Make(u, 0x1234)
	if a.VB() != u {
		t.Errorf("VB() = %v, want %v", a.VB(), u)
	}
	if a.Offset() != 0x1234 {
		t.Errorf("Offset() = %#x, want 0x1234", a.Offset())
	}
	if got := a.Line().Offset(); got != 0x1200 {
		t.Errorf("Line() offset = %#x, want 0x1200", got)
	}
	if got := a.Page().Offset(); got != 0x1000 {
		t.Errorf("Page() offset = %#x, want 0x1000", got)
	}
	if u.Base() != Make(u, 0) {
		t.Errorf("Base() = %v, want %v", u.Base(), Make(u, 0))
	}
}

func TestMakePanicsOnOversizedOffset(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Make did not panic on out-of-range offset")
		}
	}()
	Make(MakeVBUID(Size4KB, 1), 4096)
}

func TestInvalidVBUID(t *testing.T) {
	u := MakeVBUID(Size128TB, 0) + VBUID(1)<<40 // VBID beyond 14 bits
	if u.Valid() {
		t.Errorf("expected %#x to be invalid", uint64(u))
	}
}

func TestStringers(t *testing.T) {
	u := MakeVBUID(Size128KB, 3)
	if got, want := u.String(), "VB{128KB #3}"; got != want {
		t.Errorf("VBUID.String() = %q, want %q", got, want)
	}
	if got := Make(u, 16).String(); got != "VB{128KB #3}+0x10" {
		t.Errorf("Addr.String() = %q", got)
	}
	if got := SizeClass(9).String(); got != "SizeClass(9)" {
		t.Errorf("bad class String() = %q", got)
	}
}
