package exp

import (
	"strings"
	"testing"

	"vbi/internal/system"
	"vbi/internal/trace"
	"vbi/internal/workloads"
)

// The tests in this file are the figure-shape regressions: they assert the
// qualitative results of the paper's evaluation (who wins, in what order)
// on scaled-down runs. EXPERIMENTS.md records full-scale numbers.

const shapeRefs = 150_000

func ipcOf(t *testing.T, kind system.Kind, app string) float64 {
	t.Helper()
	res, err := runOne(kind, app, Options{Refs: shapeRefs})
	if err != nil {
		t.Fatalf("%v/%s: %v", kind, app, err)
	}
	return res.IPC
}

// TestFig6ShapeMcf asserts Figure 6's ordering on its most translation-
// bound application.
func TestFig6ShapeMcf(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	t.Parallel()
	native := ipcOf(t, system.Native, "mcf")
	virtual := ipcOf(t, system.Virtual, "mcf")
	vivt := ipcOf(t, system.VIVT, "mcf")
	vbi1 := ipcOf(t, system.VBI1, "mcf")
	vbi2 := ipcOf(t, system.VBI2, "mcf")
	vbiFull := ipcOf(t, system.VBIFull, "mcf")
	perfect := ipcOf(t, system.PerfectTLB, "mcf")

	if !(virtual < native) {
		t.Errorf("Virtual (%f) should trail Native (%f)", virtual, native)
	}
	if !(vivt > native) {
		t.Errorf("VIVT (%f) should beat Native (%f)", vivt, native)
	}
	if !(vbi1 > vivt) {
		t.Errorf("VBI-1 (%f) should beat VIVT (%f)", vbi1, vivt)
	}
	if !(vbi2 >= vbi1) {
		t.Errorf("VBI-2 (%f) should not trail VBI-1 (%f)", vbi2, vbi1)
	}
	if !(vbiFull > vbi2) {
		t.Errorf("VBI-Full (%f) should beat VBI-2 (%f)", vbiFull, vbi2)
	}
	if !(vbiFull > perfect) {
		t.Errorf("VBI-Full (%f) should beat Perfect TLB (%f) on mcf (§7.2.2)", vbiFull, perfect)
	}
	// Magnitude sanity: mcf is the extreme case.
	if vbiFull/native < 1.5 {
		t.Errorf("VBI-Full speedup on mcf = %.2f, expected a large factor", vbiFull/native)
	}
}

// TestFig6ShapeInsensitive asserts that a cache-resident application is
// insensitive to the virtual-memory framework.
func TestFig6ShapeInsensitive(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	t.Parallel()
	native := ipcOf(t, system.Native, "namd")
	for _, k := range []system.Kind{system.VIVT, system.VBI1, system.VBI2} {
		r := ipcOf(t, k, "namd") / native
		if r < 0.9 || r > 1.6 {
			t.Errorf("%v/Native on namd = %.2f, want near 1", k, r)
		}
	}
}

// TestFig7Shape asserts Figure 7's ordering with large pages on mcf.
func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	t.Parallel()
	native2M := ipcOf(t, system.Native2M, "mcf")
	virtual2M := ipcOf(t, system.Virtual2M, "mcf")
	enigma := ipcOf(t, system.EnigmaHW2M, "mcf")
	vbiFull := ipcOf(t, system.VBIFull, "mcf")

	if !(virtual2M < native2M) {
		t.Errorf("Virtual-2M (%f) should trail Native-2M (%f)", virtual2M, native2M)
	}
	if !(enigma > native2M) {
		t.Errorf("Enigma-HW-2M (%f) should beat Native-2M (%f)", enigma, native2M)
	}
	if !(vbiFull > enigma) {
		t.Errorf("VBI-Full (%f) should beat Enigma-HW-2M (%f)", vbiFull, enigma)
	}
}

// TestFig8Shape asserts the multiprogrammed ordering on one bundle.
func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	t.Parallel()
	o := Options{Refs: 40_000}
	apps := workloads.Bundles["wl5"]
	alone := map[string]float64{}
	for _, a := range apps {
		res, err := runOne(system.Native, a, o)
		if err != nil {
			t.Fatal(err)
		}
		alone[a] = res.IPC
	}
	ws := func(kind system.Kind) float64 {
		var profs []traceProfile
		for _, a := range apps {
			profs = append(profs, workloads.MustGet(a))
		}
		mc, err := system.NewMulticore(system.Config{Kind: kind, Refs: o.Refs}, profs)
		if err != nil {
			t.Fatal(err)
		}
		results, err := mc.Run()
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		for i, r := range results {
			total += r.IPC / alone[apps[i]]
		}
		return total
	}
	native := ws(system.Native)
	native2M := ws(system.Native2M)
	virtual := ws(system.Virtual)
	vbiFull := ws(system.VBIFull)
	if !(virtual < native) {
		t.Errorf("Virtual WS (%f) should trail Native (%f)", virtual, native)
	}
	if !(native2M > native) {
		t.Errorf("Native-2M WS (%f) should beat Native (%f)", native2M, native)
	}
	if !(vbiFull > native2M) {
		t.Errorf("VBI-Full WS (%f) should beat Native-2M (%f)", vbiFull, native2M)
	}
}

// TestFig910Shape asserts the heterogeneous-memory claims: VBI mapping
// beats hotness-unaware mapping and lands near IDEAL (§7.3).
func TestFig910Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	t.Parallel()
	for _, mem := range []system.HeteroMem{system.HeteroPCMDRAM, system.HeteroTLDRAM} {
		base, err := runHetero(mem, system.PolicyUnaware, "sphinx3", Options{Refs: 100_000})
		if err != nil {
			t.Fatal(err)
		}
		vbi, err := runHetero(mem, system.PolicyVBI, "sphinx3", Options{Refs: 100_000})
		if err != nil {
			t.Fatal(err)
		}
		ideal, err := runHetero(mem, system.PolicyIdeal, "sphinx3", Options{Refs: 100_000})
		if err != nil {
			t.Fatal(err)
		}
		if !(vbi.IPC > base.IPC*1.05) {
			t.Errorf("%v: VBI (%f) should beat hotness-unaware (%f)", mem, vbi.IPC, base.IPC)
		}
		if vbi.IPC < ideal.IPC*0.85 {
			t.Errorf("%v: VBI (%f) should be near IDEAL (%f)", mem, vbi.IPC, ideal.IPC)
		}
	}
}

func TestTableRendering(t *testing.T) {
	t1 := Table1()
	for _, want := range []string{"DDR3-1600", "tRCD=22cy", "128-entry ROB", "32-entry"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table1 missing %q", want)
		}
	}
	t2 := Table2()
	for _, want := range []string{"wl1", "wl6", "deepsjeng-17", "GemsFDTD"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table2 missing %q", want)
		}
	}
}

// traceProfile aliases the profile type for the bundle helper.
type traceProfile = trace.Profile

// TestDRAMReductionShape asserts §7.2's traffic claim: delayed allocation
// cuts total DRAM accesses (demand + translation + writeback) relative to
// Perfect TLB on a cold-read-heavy application.
func TestDRAMReductionShape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	t.Parallel()
	perfect, err := runOne(system.PerfectTLB, "graph500", Options{Refs: shapeRefs})
	if err != nil {
		t.Fatal(err)
	}
	vbi2, err := runOne(system.VBI2, "graph500", Options{Refs: shapeRefs})
	if err != nil {
		t.Fatal(err)
	}
	vbiFull, err := runOne(system.VBIFull, "graph500", Options{Refs: shapeRefs})
	if err != nil {
		t.Fatal(err)
	}
	native, err := runOne(system.Native, "graph500", Options{Refs: shapeRefs})
	if err != nil {
		t.Fatal(err)
	}
	// Delayed allocation cuts traffic relative to Native, and adding early
	// reservation (no walk traffic) drops VBI-Full below even Perfect TLB.
	// (The paper's stronger claim — VBI-2 itself 46% below Perfect TLB —
	// needs larger never-written footprints than the conservative synthetic
	// profiles model; see EXPERIMENTS.md.)
	if !(vbi2.DRAMAccesses < native.DRAMAccesses) {
		t.Errorf("VBI-2 DRAM (%d) not below Native (%d)",
			vbi2.DRAMAccesses, native.DRAMAccesses)
	}
	if !(vbiFull.DRAMAccesses < vbi2.DRAMAccesses) {
		t.Errorf("VBI-Full DRAM (%d) not below VBI-2 (%d)",
			vbiFull.DRAMAccesses, vbi2.DRAMAccesses)
	}
	if !(float64(vbiFull.DRAMAccesses) < float64(perfect.DRAMAccesses)) {
		t.Errorf("VBI-Full DRAM (%d) not below Perfect TLB (%d)",
			vbiFull.DRAMAccesses, perfect.DRAMAccesses)
	}
}

// TestAblationFlexibleShape asserts §5.2's claim: flexible translation
// structures reduce the memory accesses needed to serve MTL TLB misses.
func TestAblationFlexibleShape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	t.Parallel()
	tab, err := AblationFlexible(Options{Refs: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	ratios := tab.Get("walk-ratio")
	avg := ratios[len(ratios)-1] // AVG row
	if avg >= 0.9 {
		t.Errorf("flexible structures cut walk accesses only to %.2f of fixed tables", avg)
	}
	speedups := tab.Get("speedup")
	if speedups[len(speedups)-1] < 0.99 {
		t.Errorf("flexible structures slowed execution: %.3f", speedups[len(speedups)-1])
	}
}

// TestCVTTableShape asserts §4.3: few VBs per program, near-100% CVT cache
// hit rates with the 64-entry direct-mapped cache.
func TestCVTTableShape(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	t.Parallel()
	tab, err := CVTTable(Options{Refs: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	for i, rate := range tab.Get("hit-rate") {
		if rate < 0.99 {
			t.Errorf("%s: CVT cache hit rate %.4f", tab.Rows[i], rate)
		}
	}
}

// TestFigureWorkerInvariance exercises the harness guarantee end-to-end
// through a figure function: serial and parallel execution must render the
// identical table, and a warm result cache must reproduce it again.
func TestFigureWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	t.Parallel()
	cacheDir := t.TempDir()
	serial, err := AblationFlexible(Options{Refs: 8_000, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := AblationFlexible(Options{Refs: 8_000, Workers: 8, CacheDir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Render() != parallel.Render() {
		t.Errorf("parallel table differs:\nserial:\n%s\nparallel:\n%s",
			serial.Render(), parallel.Render())
	}
	cached, err := AblationFlexible(Options{Refs: 8_000, Workers: 8, CacheDir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	if cached.Render() != serial.Render() {
		t.Errorf("cache-served table differs:\nserial:\n%s\ncached:\n%s",
			serial.Render(), cached.Render())
	}
}
