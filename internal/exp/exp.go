// Package exp drives the paper's experiments: one function per table and
// figure of the evaluation (§7), each returning a stats.Table with the same
// rows and series the paper plots. The cmd/vbibench binary and the
// top-level benchmarks call these.
package exp

import (
	"fmt"
	"io"

	"vbi/internal/stats"
	"vbi/internal/system"
	"vbi/internal/trace"
	"vbi/internal/workloads"
)

// Options configures a reproduction run.
type Options struct {
	// Refs is the measured reference count per workload (default 400k;
	// the paper uses 1B-instruction Pin regions — see DESIGN.md for the
	// scaling rationale).
	Refs int
	// Seed selects the trace streams.
	Seed uint64
	// Progress, when non-nil, receives one line per completed run.
	Progress io.Writer
}

func (o Options) withDefaults() Options {
	if o.Refs == 0 {
		o.Refs = 400_000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

func (o Options) logf(format string, args ...any) {
	if o.Progress != nil {
		fmt.Fprintf(o.Progress, format+"\n", args...)
	}
}

// runOne executes a single-core run.
func runOne(kind system.Kind, app string, o Options) (system.RunResult, error) {
	prof := workloads.MustGet(app)
	m, err := system.New(system.Config{Kind: kind, Refs: o.Refs, Seed: o.Seed}, prof)
	if err != nil {
		return system.RunResult{}, err
	}
	res, err := m.Run()
	if err != nil {
		return system.RunResult{}, err
	}
	o.logf("  %-14s %-14s IPC=%.4f DRAM=%d", kind, app, res.IPC, res.DRAMAccesses)
	return res, nil
}

// appendAverages adds AVG (and optionally AVG-no-mcf) rows to a speedup
// table whose per-app values are already present.
func appendAverages(t *stats.Table, apps []string, noMcf bool) {
	t.Rows = append(t.Rows, "AVG")
	if noMcf {
		t.Rows = append(t.Rows, "AVG-no-mcf")
	}
	for i := range t.Series {
		vals := t.Series[i].Values
		var all, rest []float64
		for j, app := range apps {
			all = append(all, vals[j])
			if app != "mcf" {
				rest = append(rest, vals[j])
			}
		}
		t.Series[i].Values = append(t.Series[i].Values, stats.Mean(all))
		if noMcf {
			t.Series[i].Values = append(t.Series[i].Values, stats.Mean(rest))
		}
	}
}

// Fig6 reproduces Figure 6: single-core performance of the 4 KB-page
// systems, normalized to Native.
func Fig6(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	apps := workloads.Fig6Apps
	t := &stats.Table{
		Title: "Figure 6: performance with 4 KB pages (normalized to Native)",
		Rows:  append([]string{}, apps...),
	}
	series := []system.Kind{system.Virtual, system.VIVT, system.VBI1,
		system.VBI2, system.VBIFull, system.PerfectTLB}
	for _, app := range apps {
		base, err := runOne(system.Native, app, o)
		if err != nil {
			return nil, err
		}
		for _, k := range series {
			res, err := runOne(k, app, o)
			if err != nil {
				return nil, err
			}
			t.Add(k.String(), res.IPC/base.IPC)
		}
	}
	appendAverages(t, apps, true)
	return t, nil
}

// Fig7 reproduces Figure 7: performance with large pages, normalized to
// Native-2M. The displayed rows are the paper's subset; the averages are
// computed over all Figure 6 applications (§7.2.2).
func Fig7(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	apps := workloads.Fig6Apps // averages span the full set
	shown := map[string]bool{}
	for _, a := range workloads.Fig7Apps {
		shown[a] = true
	}
	t := &stats.Table{
		Title: "Figure 7: performance with large pages (normalized to Native-2M)",
		Rows:  append([]string{}, workloads.Fig7Apps...),
	}
	series := []system.Kind{system.Virtual2M, system.EnigmaHW2M,
		system.VBIFull, system.PerfectTLB}
	type speedups map[string]float64
	perApp := map[string]speedups{}
	for _, app := range apps {
		base, err := runOne(system.Native2M, app, o)
		if err != nil {
			return nil, err
		}
		sp := speedups{}
		for _, k := range series {
			res, err := runOne(k, app, o)
			if err != nil {
				return nil, err
			}
			sp[k.String()] = res.IPC / base.IPC
		}
		perApp[app] = sp
	}
	for _, app := range workloads.Fig7Apps {
		for _, k := range series {
			t.Add(k.String(), perApp[app][k.String()])
		}
	}
	t.Rows = append(t.Rows, "AVG", "AVG-no-mcf")
	for _, k := range series {
		var all, rest []float64
		for _, app := range apps {
			v := perApp[app][k.String()]
			all = append(all, v)
			if app != "mcf" {
				rest = append(rest, v)
			}
		}
		t.Add(k.String(), stats.Mean(all))
		t.Add(k.String(), stats.Mean(rest))
	}
	return t, nil
}

// Fig8 reproduces Figure 8: quad-core weighted speedup over the Table 2
// bundles, normalized to Native.
func Fig8(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	t := &stats.Table{
		Title: "Figure 8: multiprogrammed performance (weighted speedup normalized to Native)",
		Rows:  append([]string{}, workloads.BundleNames...),
	}
	// Alone-run IPCs (single-core Native) for the weighted-speedup
	// denominators.
	aloneIPC := map[string]float64{}
	for _, bundle := range workloads.Bundles {
		for _, app := range bundle {
			if _, ok := aloneIPC[app]; ok {
				continue
			}
			res, err := runOne(system.Native, app, o)
			if err != nil {
				return nil, err
			}
			aloneIPC[app] = res.IPC
		}
	}
	series := []system.Kind{system.Native2M, system.Virtual, system.Virtual2M,
		system.VBIFull, system.PerfectTLB}
	for _, name := range workloads.BundleNames {
		apps := workloads.Bundles[name]
		var profs []trace.Profile
		for _, a := range apps {
			profs = append(profs, workloads.MustGet(a))
		}
		ws := func(kind system.Kind) (float64, error) {
			mc, err := system.NewMulticore(system.Config{
				Kind: kind, Refs: o.Refs, Seed: o.Seed}, profs)
			if err != nil {
				return 0, err
			}
			results, err := mc.Run()
			if err != nil {
				return 0, err
			}
			var shared, alone []float64
			for i, r := range results {
				shared = append(shared, r.IPC)
				alone = append(alone, aloneIPC[apps[i]])
			}
			w := stats.WeightedSpeedup(shared, alone)
			o.logf("  %-14s %-6s WS=%.3f", kind, name, w)
			return w, nil
		}
		base, err := ws(system.Native)
		if err != nil {
			return nil, err
		}
		for _, k := range series {
			w, err := ws(k)
			if err != nil {
				return nil, err
			}
			t.Add(k.String(), w/base)
		}
	}
	// AVG row.
	t.Rows = append(t.Rows, "AVG")
	for i := range t.Series {
		t.Series[i].Values = append(t.Series[i].Values, stats.Mean(t.Series[i].Values))
	}
	return t, nil
}

// runHetero executes one heterogeneous-memory policy run.
func runHetero(mem system.HeteroMem, pol system.Policy, app string, o Options) (system.RunResult, error) {
	m, err := system.NewHetero(system.HeteroConfig{
		Mem: mem, Policy: pol, Refs: o.Refs, Seed: o.Seed},
		workloads.MustGet(app))
	if err != nil {
		return system.RunResult{}, err
	}
	res, err := m.Run()
	if err != nil {
		return system.RunResult{}, err
	}
	o.logf("  %-22s %-14s IPC=%.4f", res.System, app, res.IPC)
	return res, nil
}

// figHetero implements Figures 9 and 10: speedup of the VBI placement (and
// the IDEAL oracle) over the hotness-unaware mapping.
func figHetero(mem system.HeteroMem, title, vbiLabel string, o Options) (*stats.Table, error) {
	o = o.withDefaults()
	apps := workloads.HeteroApps
	t := &stats.Table{Title: title, Rows: append([]string{}, apps...)}
	for _, app := range apps {
		base, err := runHetero(mem, system.PolicyUnaware, app, o)
		if err != nil {
			return nil, err
		}
		vbi, err := runHetero(mem, system.PolicyVBI, app, o)
		if err != nil {
			return nil, err
		}
		ideal, err := runHetero(mem, system.PolicyIdeal, app, o)
		if err != nil {
			return nil, err
		}
		t.Add(vbiLabel, vbi.IPC/base.IPC)
		t.Add("IDEAL", ideal.IPC/base.IPC)
	}
	appendAverages(t, apps, false)
	return t, nil
}

// Fig9 reproduces Figure 9 (PCM–DRAM hybrid memory).
func Fig9(o Options) (*stats.Table, error) {
	return figHetero(system.HeteroPCMDRAM,
		"Figure 9: VBI PCM-DRAM (normalized to hotness-unaware mapping)",
		"VBI PCM-DRAM", o)
}

// Fig10 reproduces Figure 10 (TL-DRAM).
func Fig10(o Options) (*stats.Table, error) {
	return figHetero(system.HeteroTLDRAM,
		"Figure 10: VBI TL-DRAM (normalized to hotness-unaware mapping)",
		"VBI TL-DRAM", o)
}

// Table1 renders the simulation configuration (Table 1 of the paper).
func Table1() string {
	return `Table 1: Simulation configuration
=================================
CPU              4-wide issue, OOO window (128-entry ROB), 10 MSHRs
L1 Cache         32 KB, 8-way associative, 4 cycles
L2 Cache         256 KB, 8-way associative, 8 cycles
L3 Cache         8 MB (2 MB per-core), 16-way associative, 31 cycles
L1 DTLB          4 KB pages: 64-entry, fully associative
                 2 MB pages: 32-entry, fully associative
L2 DTLB          4 KB and 2 MB pages: 512-entry, 4-way associative
Page Walk Cache  32-entry, fully associative
DRAM             DDR3-1600, 1 channel, 1 rank/channel, 8 banks/rank, open-page
DRAM Timing      tRCD=5cy, tRP=5cy (plus CL=5, burst 4)
PCM              PCM-800, 1 channel, 1 rank/channel, 8 banks/rank
PCM Timing       tRCD=22cy, tRP=60cy (plus write recovery 90cy)
`
}

// Table2 renders the multiprogrammed bundles (Table 2 of the paper).
func Table2() string {
	out := "Table 2: Multiprogrammed workload bundles\n"
	out += "=========================================\n"
	for _, name := range workloads.BundleNames {
		out += fmt.Sprintf("%-5s", name)
		for _, app := range workloads.Bundles[name] {
			out += fmt.Sprintf(" %-14s", app)
		}
		out += "\n"
	}
	return out
}
