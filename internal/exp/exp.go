// Package exp drives the paper's experiments: one function per table and
// figure of the evaluation (§7), each returning a stats.Table with the same
// rows and series the paper plots. The cmd/vbibench binary and the
// top-level benchmarks call these.
//
// Every figure function expands into independent harness jobs and executes
// them through internal/harness: runs proceed across a bounded worker pool
// (Options.Workers, default GOMAXPROCS) and, when Options.CacheDir is set,
// unchanged runs are served from the on-disk result cache. Aggregation is
// positional over the job list, so the rendered tables are identical for
// any worker count.
package exp

import (
	"context"
	"fmt"
	"io"

	"vbi/internal/harness"
	"vbi/internal/stats"
	"vbi/internal/system"
	"vbi/internal/workloads"
)

// Options configures a reproduction run.
type Options struct {
	// Refs is the measured reference count per workload (default 400k;
	// the paper uses 1B-instruction Pin regions — see DESIGN.md for the
	// scaling rationale).
	Refs int
	// Seed selects the trace streams.
	Seed uint64
	// Progress, when non-nil, receives one line per completed run.
	Progress io.Writer
	// Workers bounds concurrent simulations (0 = GOMAXPROCS).
	Workers int
	// CacheDir, when non-empty, enables the on-disk result cache there.
	CacheDir string
	// Params overlays tunable hardware/OS knobs on every run of the
	// experiment (vbibench -param), regenerating the figures under an
	// altered configuration; zero fields keep Table 1 defaults.
	Params system.Params
	// Executor, when non-nil, replaces the local worker pool for every
	// figure's job batch (vbibench -remote wires a dist.Coordinator here).
	// When nil, a local harness.Runner is built from Workers/CacheDir/
	// Progress. Positional aggregation makes the figures identical either
	// way.
	Executor harness.Executor
	// JobShards, when > 1, decomposes every job into that many intra-job
	// shards before execution (harness.JobShards over whichever backend is
	// in use): single-core runs become time slices, bundles run their
	// cores on concurrent goroutines. Figure bytes are identical either
	// way — the exact fold is byte-identical to whole-job execution.
	JobShards int
	// Context, when non-nil, cancels every figure's job batch (vbibench
	// wires its signal context here, so Ctrl-C stops a figure at job — or
	// shard — granularity with completed work cached). Nil means
	// context.Background().
	Context context.Context
}

// ctx returns the configured context, defaulted.
func (o Options) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

func (o Options) withDefaults() Options {
	if o.Refs == 0 {
		o.Refs = 400_000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

func (o Options) logf(format string, args ...any) {
	if o.Progress != nil {
		fmt.Fprintf(o.Progress, format+"\n", args...)
	}
}

// exec returns the executor the figure functions share: the configured
// Executor, or a local harness runner.
func (o Options) exec() harness.Executor {
	var cache *harness.Cache
	if o.CacheDir != "" {
		cache = &harness.Cache{Dir: o.CacheDir}
	}
	e := o.Executor
	if e == nil {
		e = &harness.Runner{Workers: o.Workers, Progress: o.Progress, Cache: cache}
	}
	if o.JobShards > 1 {
		e = &harness.JobShards{Inner: e, K: o.JobShards, Cache: cache}
	}
	return e
}

// runKey identifies one single-core run within a figure.
type runKey struct {
	kind    system.Kind
	app     string
	uniform bool
}

// runSingles executes one harness job per key (deduplicated, preserving
// first occurrence) and returns the results keyed back.
func runSingles(o Options, keys []runKey) (map[runKey]system.RunResult, error) {
	seen := map[runKey]bool{}
	var uniq []runKey
	for _, k := range keys {
		if !seen[k] {
			seen[k] = true
			uniq = append(uniq, k)
		}
	}
	jobs := make([]harness.Job, len(uniq))
	for i, k := range uniq {
		jobs[i] = harness.Job{
			Spec: system.MustSpec(k.kind.String()), Workloads: []string{k.app},
			Refs: o.Refs, Seed: o.Seed, UniformTables: k.uniform,
			Params: o.Params,
		}
	}
	results, err := o.exec().Run(o.ctx(), jobs)
	if err != nil {
		return nil, err
	}
	out := make(map[runKey]system.RunResult, len(uniq))
	for i, k := range uniq {
		out[k] = results[i].Results[0]
	}
	return out, nil
}

// crossKeys expands apps × ([base] + series) into run keys.
func crossKeys(base system.Kind, series []system.Kind, apps []string) []runKey {
	var keys []runKey
	for _, app := range apps {
		keys = append(keys, runKey{kind: base, app: app})
		for _, k := range series {
			keys = append(keys, runKey{kind: k, app: app})
		}
	}
	return keys
}

// runOne executes a single-core run serially (the figure-shape tests use
// it; the figure functions go through the harness).
func runOne(kind system.Kind, app string, o Options) (system.RunResult, error) {
	prof := workloads.MustGet(app)
	m, err := system.New(system.Config{Kind: kind, Refs: o.Refs, Seed: o.Seed}, prof)
	if err != nil {
		return system.RunResult{}, err
	}
	res, err := m.Run()
	if err != nil {
		return system.RunResult{}, err
	}
	o.logf("  %-14s %-14s IPC=%.4f DRAM=%d", kind, app, res.IPC, res.DRAMAccesses)
	return res, nil
}

// appendAverages adds AVG (and optionally AVG-no-mcf) rows to a speedup
// table whose per-app values are already present.
func appendAverages(t *stats.Table, apps []string, noMcf bool) {
	t.Rows = append(t.Rows, "AVG")
	if noMcf {
		t.Rows = append(t.Rows, "AVG-no-mcf")
	}
	for i := range t.Series {
		vals := t.Series[i].Values
		var all, rest []float64
		for j, app := range apps {
			all = append(all, vals[j])
			if app != "mcf" {
				rest = append(rest, vals[j])
			}
		}
		t.Series[i].Values = append(t.Series[i].Values, stats.Mean(all))
		if noMcf {
			t.Series[i].Values = append(t.Series[i].Values, stats.Mean(rest))
		}
	}
}

// Fig6 reproduces Figure 6: single-core performance of the 4 KB-page
// systems, normalized to Native.
func Fig6(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	apps := workloads.Fig6Apps
	t := &stats.Table{
		Title: "Figure 6: performance with 4 KB pages (normalized to Native)",
		Rows:  append([]string{}, apps...),
	}
	series := []system.Kind{system.Virtual, system.VIVT, system.VBI1,
		system.VBI2, system.VBIFull, system.PerfectTLB}
	runs, err := runSingles(o, crossKeys(system.Native, series, apps))
	if err != nil {
		return nil, err
	}
	for _, app := range apps {
		base := runs[runKey{kind: system.Native, app: app}]
		for _, k := range series {
			t.Add(k.String(), runs[runKey{kind: k, app: app}].IPC/base.IPC)
		}
	}
	appendAverages(t, apps, true)
	return t, nil
}

// Fig7 reproduces Figure 7: performance with large pages, normalized to
// Native-2M. The displayed rows are the paper's subset; the averages are
// computed over all Figure 6 applications (§7.2.2).
func Fig7(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	apps := workloads.Fig6Apps // averages span the full set
	t := &stats.Table{
		Title: "Figure 7: performance with large pages (normalized to Native-2M)",
		Rows:  append([]string{}, workloads.Fig7Apps...),
	}
	series := []system.Kind{system.Virtual2M, system.EnigmaHW2M,
		system.VBIFull, system.PerfectTLB}
	runs, err := runSingles(o, crossKeys(system.Native2M, series, apps))
	if err != nil {
		return nil, err
	}
	speedup := func(k system.Kind, app string) float64 {
		base := runs[runKey{kind: system.Native2M, app: app}]
		return runs[runKey{kind: k, app: app}].IPC / base.IPC
	}
	for _, app := range workloads.Fig7Apps {
		for _, k := range series {
			t.Add(k.String(), speedup(k, app))
		}
	}
	t.Rows = append(t.Rows, "AVG", "AVG-no-mcf")
	for _, k := range series {
		var all, rest []float64
		for _, app := range apps {
			v := speedup(k, app)
			all = append(all, v)
			if app != "mcf" {
				rest = append(rest, v)
			}
		}
		t.Add(k.String(), stats.Mean(all))
		t.Add(k.String(), stats.Mean(rest))
	}
	return t, nil
}

// fig8Series is Figure 8's displayed series order (Native, the
// normalization baseline, runs too but is not displayed).
var fig8Series = []system.Kind{system.Native2M, system.Virtual, system.Virtual2M,
	system.VBIFull, system.PerfectTLB}

// fig8Grid declares Figure 8's quad-core runs as an ordinary bundle-axis
// grid: rows are the Table 2 bundles, series the evaluated kinds. A
// vbisweep sweep over the same axes expands the exact same jobs (and so
// shares cache entries with the figure).
func fig8Grid(o Options) harness.Grid {
	kinds := append([]system.Kind{system.Native}, fig8Series...)
	names := make([]string, len(kinds))
	for i, k := range kinds {
		names[i] = k.String()
	}
	bundles := make([]harness.Bundle, len(workloads.BundleNames))
	for i, n := range workloads.BundleNames {
		bundles[i] = harness.Bundle{Name: n}
	}
	g := harness.Grid{
		Systems: names,
		Bundles: bundles,
		Seeds:   []uint64{o.Seed},
		Refs:    o.Refs,
	}
	if !o.Params.IsZero() {
		g.Overlay = &o.Params
	}
	return g
}

// Fig8 reproduces Figure 8: quad-core weighted speedup over the Table 2
// bundles, normalized to Native.
func Fig8(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	t := &stats.Table{
		Title: "Figure 8: multiprogrammed performance (weighted speedup normalized to Native)",
		Rows:  append([]string{}, workloads.BundleNames...),
	}
	// Alone-run IPCs (single-core Native) for the weighted-speedup
	// denominators, plus one quad-core job per (kind, bundle) from the
	// bundle grid — all submitted as a single harness batch per group.
	var aloneKeys []runKey
	for _, name := range workloads.BundleNames {
		for _, app := range workloads.Bundles[name] {
			aloneKeys = append(aloneKeys, runKey{kind: system.Native, app: app})
		}
	}
	alone, err := runSingles(o, aloneKeys)
	if err != nil {
		return nil, err
	}
	series := fig8Series
	kinds := append([]system.Kind{system.Native}, series...)
	jobs, err := fig8Grid(o).Jobs()
	if err != nil {
		return nil, err
	}
	results, err := o.exec().Run(o.ctx(), jobs)
	if err != nil {
		return nil, err
	}
	i := 0
	for _, name := range workloads.BundleNames {
		apps := workloads.Bundles[name]
		ws := make(map[system.Kind]float64, len(kinds))
		for _, k := range kinds {
			var shared, aloneIPC []float64
			for c, r := range results[i].Results {
				shared = append(shared, r.IPC)
				aloneIPC = append(aloneIPC, alone[runKey{kind: system.Native, app: apps[c]}].IPC)
			}
			ws[k] = stats.WeightedSpeedup(shared, aloneIPC)
			o.logf("  %-14s %-6s WS=%.3f", k, name, ws[k])
			i++
		}
		for _, k := range series {
			t.Add(k.String(), ws[k]/ws[system.Native])
		}
	}
	// AVG row.
	t.Rows = append(t.Rows, "AVG")
	for i := range t.Series {
		t.Series[i].Values = append(t.Series[i].Values, stats.Mean(t.Series[i].Values))
	}
	return t, nil
}

// runHetero executes one heterogeneous-memory policy run serially (used by
// the shape tests; figHetero batches through the harness).
func runHetero(mem system.HeteroMem, pol system.Policy, app string, o Options) (system.RunResult, error) {
	m, err := system.NewHetero(system.HeteroConfig{
		Mem: mem, Policy: pol, Refs: o.Refs, Seed: o.Seed},
		workloads.MustGet(app))
	if err != nil {
		return system.RunResult{}, err
	}
	res, err := m.Run()
	if err != nil {
		return system.RunResult{}, err
	}
	o.logf("  %-22s %-14s IPC=%.4f", res.System, app, res.IPC)
	return res, nil
}

// figHetero implements Figures 9 and 10: speedup of the VBI placement (and
// the IDEAL oracle) over the hotness-unaware mapping.
func figHetero(mem system.HeteroMem, title, vbiLabel string, o Options) (*stats.Table, error) {
	o = o.withDefaults()
	apps := workloads.HeteroApps
	t := &stats.Table{Title: title, Rows: append([]string{}, apps...)}
	policies := []system.Policy{system.PolicyUnaware, system.PolicyVBI, system.PolicyIdeal}
	var jobs []harness.Job
	for _, app := range apps {
		for _, pol := range policies {
			jobs = append(jobs, harness.Job{
				Workloads: []string{app}, Refs: o.Refs, Seed: o.Seed,
				HeteroMem: mem.String(), Policy: pol.String(), Params: o.Params,
			})
		}
	}
	results, err := o.exec().Run(o.ctx(), jobs)
	if err != nil {
		return nil, err
	}
	for i := range apps {
		base := results[i*len(policies)].Results[0]
		vbi := results[i*len(policies)+1].Results[0]
		ideal := results[i*len(policies)+2].Results[0]
		t.Add(vbiLabel, vbi.IPC/base.IPC)
		t.Add("IDEAL", ideal.IPC/base.IPC)
	}
	appendAverages(t, apps, false)
	return t, nil
}

// Fig9 reproduces Figure 9 (PCM–DRAM hybrid memory).
func Fig9(o Options) (*stats.Table, error) {
	return figHetero(system.HeteroPCMDRAM,
		"Figure 9: VBI PCM-DRAM (normalized to hotness-unaware mapping)",
		"VBI PCM-DRAM", o)
}

// Fig10 reproduces Figure 10 (TL-DRAM).
func Fig10(o Options) (*stats.Table, error) {
	return figHetero(system.HeteroTLDRAM,
		"Figure 10: VBI TL-DRAM (normalized to hotness-unaware mapping)",
		"VBI TL-DRAM", o)
}

// Table1 renders the simulation configuration (Table 1 of the paper).
func Table1() string {
	return `Table 1: Simulation configuration
=================================
CPU              4-wide issue, OOO window (128-entry ROB), 10 MSHRs
L1 Cache         32 KB, 8-way associative, 4 cycles
L2 Cache         256 KB, 8-way associative, 8 cycles
L3 Cache         8 MB (2 MB per-core), 16-way associative, 31 cycles
L1 DTLB          4 KB pages: 64-entry, fully associative
                 2 MB pages: 32-entry, fully associative
L2 DTLB          4 KB and 2 MB pages: 512-entry, 4-way associative
Page Walk Cache  32-entry, fully associative
DRAM             DDR3-1600, 1 channel, 1 rank/channel, 8 banks/rank, open-page
DRAM Timing      tRCD=5cy, tRP=5cy (plus CL=5, burst 4)
PCM              PCM-800, 1 channel, 1 rank/channel, 8 banks/rank
PCM Timing       tRCD=22cy, tRP=60cy (plus write recovery 90cy)
`
}

// Table2 renders the multiprogrammed bundles (Table 2 of the paper).
func Table2() string {
	out := "Table 2: Multiprogrammed workload bundles\n"
	out += "=========================================\n"
	for _, name := range workloads.BundleNames {
		out += fmt.Sprintf("%-5s", name)
		for _, app := range workloads.Bundles[name] {
			out += fmt.Sprintf(" %-14s", app)
		}
		out += "\n"
	}
	return out
}
