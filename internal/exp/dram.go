package exp

import (
	"vbi/internal/stats"
	"vbi/internal/system"
	"vbi/internal/workloads"
)

// DRAMTable reproduces the DRAM-traffic analysis behind §7.2's access-
// reduction claims: total DRAM accesses (demand + translation-structure +
// writeback traffic) per system, normalized to Perfect TLB, over the
// Figure 6 applications. The paper reports that VBI-2 reduces total DRAM
// accesses by 46% on average versus Perfect TLB (62% across the
// applications where it outperforms Perfect TLB), and VBI-Full by 56%
// (§7.2.1, §7.2.2) — delayed allocation's zero lines eliminate both the
// data fetch and its translation.
func DRAMTable(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	apps := workloads.Fig6Apps
	t := &stats.Table{
		Title: "DRAM accesses (normalized to Perfect TLB; lower is better)",
		Rows:  append([]string{}, apps...),
	}
	series := []system.Kind{system.Native, system.VBI1, system.VBI2, system.VBIFull}
	runs, err := runSingles(o, crossKeys(system.PerfectTLB, series, apps))
	if err != nil {
		return nil, err
	}
	for _, app := range apps {
		base := runs[runKey{kind: system.PerfectTLB, app: app}]
		for _, k := range series {
			res := runs[runKey{kind: k, app: app}]
			t.Add(k.String(), float64(res.DRAMAccesses)/float64(base.DRAMAccesses))
		}
	}
	appendAverages(t, apps, false)
	return t, nil
}
