package exp

import (
	"vbi/internal/stats"
	"vbi/internal/system"
	"vbi/internal/workloads"
)

// ablationApps are the translation-bound applications where structure
// choice matters most.
var ablationApps = []string{"mcf", "deepsjeng-17", "omnetpp-17", "graph500", "GemsFDTD", "moses"}

// AblationFlexible quantifies §5.2's flexible translation structures: it
// runs VBI-2 with the flexible per-VB policy (direct / single-level /
// depth-matched multi-level) against VBI-2 forced to x86-64-style fixed
// 4-level tables for every VB, reporting the speedup and the walk-traffic
// ratio. The paper argues the flexible structures "reduce the number of
// memory accesses necessary to serve a TLB miss" — this measures by how
// much.
func AblationFlexible(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	t := &stats.Table{
		Title: "Ablation: flexible translation structures (VBI-2 vs fixed 4-level tables)",
		Rows:  append([]string{}, ablationApps...),
	}
	var keys []runKey
	for _, app := range ablationApps {
		keys = append(keys,
			runKey{kind: system.VBI2, app: app},
			runKey{kind: system.VBI2, app: app, uniform: true})
	}
	runs, err := runSingles(o, keys)
	if err != nil {
		return nil, err
	}
	for _, app := range ablationApps {
		flex := runs[runKey{kind: system.VBI2, app: app}]
		uni := runs[runKey{kind: system.VBI2, app: app, uniform: true}]
		o.logf("  ablation %-14s flex=%.4f uniform=%.4f", app, flex.IPC, uni.IPC)
		t.Add("speedup", flex.IPC/uni.IPC)
		t.Add("walk-ratio", float64(flex.Extra["mtl.walk.accesses"])/
			float64(max64(uni.Extra["mtl.walk.accesses"], 1)))
	}
	t.Rows = append(t.Rows, "AVG")
	for i := range t.Series {
		t.Series[i].Values = append(t.Series[i].Values, stats.Mean(t.Series[i].Values))
	}
	return t, nil
}

// CVTTable validates §4.3: programs need only a few tens of VBs, so a
// 64-entry direct-mapped CVT cache achieves a near-100% hit rate.
func CVTTable(o Options) (*stats.Table, error) {
	o = o.withDefaults()
	apps := workloads.Fig6Apps
	t := &stats.Table{
		Title: "CVT cache behaviour (§4.3): VBs per program and 64-entry cache hit rate",
		Rows:  append([]string{}, apps...),
	}
	var keys []runKey
	for _, app := range apps {
		keys = append(keys, runKey{kind: system.VBIFull, app: app})
	}
	runs, err := runSingles(o, keys)
	if err != nil {
		return nil, err
	}
	for _, app := range apps {
		prof := workloads.MustGet(app)
		res := runs[runKey{kind: system.VBIFull, app: app}]
		t.Add("VBs", float64(len(prof.Structs)))
		t.Add("hit-rate", 1-float64(res.Extra["cvt.misses"])/float64(res.MemRefs))
	}
	return t, nil
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
