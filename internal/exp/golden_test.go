package exp

import (
	"encoding/json"
	"math"
	"testing"

	"vbi/internal/harness"
	"vbi/internal/stats"
	"vbi/internal/system"
	"vbi/internal/workloads"
)

// The golden-shape tests pin the structural contract of the figure
// matrices — exact row and series labels, the averaging-denominator
// invariants, and byte-identity between a cache-cold and a fully-cached
// run — table-driven over the figures whose shape downstream plotting
// scripts consume positionally. (The qualitative who-wins orderings live
// in exp_test.go; this file is about the matrix shape itself.)

// goldenCase describes one figure's expected matrix shape.
type goldenCase struct {
	name string
	fn   func(Options) (*stats.Table, error)
	refs int
	// rows is the exact expected row-label sequence.
	rows []string
	// series is the exact expected series-label sequence.
	series []string
	// avgOver maps an average row label to the row labels it must be the
	// arithmetic mean of — the denominator invariant: AVG rows are
	// recomputable from the per-app rows above them, so a label shift or a
	// denominator change (more or fewer apps averaged) cannot go unseen.
	avgOver map[string][]string
}

func goldenCases() []goldenCase {
	fig6Rows := append(append([]string{}, workloads.Fig6Apps...), "AVG", "AVG-no-mcf")
	noMcf := make([]string, 0, len(workloads.Fig6Apps)-1)
	for _, app := range workloads.Fig6Apps {
		if app != "mcf" {
			noMcf = append(noMcf, app)
		}
	}
	fig8Rows := append(append([]string{}, workloads.BundleNames...), "AVG")
	return []goldenCase{
		{
			name: "fig6", fn: Fig6, refs: 20_000,
			rows:   fig6Rows,
			series: []string{"Virtual", "VIVT", "VBI-1", "VBI-2", "VBI-Full", "Perfect TLB"},
			avgOver: map[string][]string{
				"AVG":        workloads.Fig6Apps,
				"AVG-no-mcf": noMcf,
			},
		},
		{
			name: "fig8", fn: Fig8, refs: 10_000,
			rows:   fig8Rows,
			series: []string{"Native-2M", "Virtual", "Virtual-2M", "VBI-Full", "Perfect TLB"},
			avgOver: map[string][]string{
				"AVG": workloads.BundleNames,
			},
		},
	}
}

// rowIndex maps a table's row labels to positions.
func rowIndex(t *stats.Table) map[string]int {
	idx := make(map[string]int, len(t.Rows))
	for i, r := range t.Rows {
		idx[r] = i
	}
	return idx
}

// checkGoldenShape asserts one rendered table against its golden case.
func checkGoldenShape(t *testing.T, c goldenCase, tab *stats.Table) {
	t.Helper()
	if len(tab.Rows) != len(c.rows) {
		t.Fatalf("%s: %d rows, want %d (%v)", c.name, len(tab.Rows), len(c.rows), tab.Rows)
	}
	for i, want := range c.rows {
		if tab.Rows[i] != want {
			t.Errorf("%s: row %d = %q, want %q", c.name, i, tab.Rows[i], want)
		}
	}
	if len(tab.Series) != len(c.series) {
		t.Fatalf("%s: %d series, want %d", c.name, len(tab.Series), len(c.series))
	}
	idx := rowIndex(tab)
	for i, want := range c.series {
		s := tab.Series[i]
		if s.Label != want {
			t.Errorf("%s: series %d = %q, want %q", c.name, i, s.Label, want)
		}
		if len(s.Values) != len(c.rows) {
			t.Fatalf("%s/%s: %d values for %d rows", c.name, s.Label, len(s.Values), len(c.rows))
		}
		for j, v := range s.Values {
			if v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s/%s row %q: normalized value %v, want finite positive", c.name, s.Label, tab.Rows[j], v)
			}
		}
		// The denominator invariant: every average row must equal the mean
		// of exactly its per-app rows.
		for avgRow, over := range c.avgOver {
			var vals []float64
			for _, r := range over {
				vals = append(vals, s.Values[idx[r]])
			}
			want := stats.Mean(vals)
			got := s.Values[idx[avgRow]]
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("%s/%s: %s = %v, want mean over %d rows = %v",
					c.name, s.Label, avgRow, got, len(over), want)
			}
		}
	}
}

// TestFigureGoldenShapes runs each figure cache-cold and then fully
// cached against the same directory: both runs must satisfy the golden
// shape and render byte-identical tables, so a cache hit can never change
// what a figure reports.
func TestFigureGoldenShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	t.Parallel()
	for _, c := range goldenCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			cacheDir := t.TempDir()
			cold, err := c.fn(Options{Refs: c.refs, CacheDir: cacheDir})
			if err != nil {
				t.Fatal(err)
			}
			checkGoldenShape(t, c, cold)

			cached, err := c.fn(Options{Refs: c.refs, CacheDir: cacheDir})
			if err != nil {
				t.Fatal(err)
			}
			checkGoldenShape(t, c, cached)
			if cold.Render() != cached.Render() {
				t.Errorf("%s: fully-cached run renders differently:\ncold:\n%s\ncached:\n%s",
					c.name, cold.Render(), cached.Render())
			}
		})
	}
}

// TestFig8BundleGridMatchesHardcodedJobs pins the bundle-grid rewiring of
// Figure 8: the grid expansion must reproduce, job for job and byte for
// byte in canonical JSON, the hard-coded (bundle × kind) job list the
// figure used before bundles became a sweep axis. Identical job specs
// mean identical cache keys and — by the determinism contract — identical
// multiprogrammed rows, so a vbisweep sweep over the same bundle axes
// shares cache entries with (and reproduces) the figure.
func TestFig8BundleGridMatchesHardcodedJobs(t *testing.T) {
	o := Options{Refs: 10_000}.withDefaults()
	jobs, err := fig8Grid(o).Jobs()
	if err != nil {
		t.Fatal(err)
	}

	// The pre-bundle-axis construction, verbatim: bundle-major over the
	// Table 2 bundles, Native first then the displayed series.
	kinds := append([]system.Kind{system.Native}, fig8Series...)
	var legacy []harness.Job
	for _, name := range workloads.BundleNames {
		for _, k := range kinds {
			legacy = append(legacy, harness.Job{
				Spec:      system.MustSpec(k.String()),
				Workloads: append([]string{}, workloads.Bundles[name]...),
				Refs:      o.Refs, Seed: o.Seed, Params: o.Params,
			})
		}
	}
	if len(jobs) != len(legacy) {
		t.Fatalf("grid expanded %d jobs, hard-coded path had %d", len(jobs), len(legacy))
	}
	for i := range legacy {
		gb, err := json.Marshal(jobs[i])
		if err != nil {
			t.Fatal(err)
		}
		lb, err := json.Marshal(legacy[i])
		if err != nil {
			t.Fatal(err)
		}
		if string(gb) != string(lb) {
			t.Errorf("job %d diverged from the hard-coded path:\ngrid:      %s\nhard-coded: %s", i, gb, lb)
		}
	}
}
