package mtl

import (
	"fmt"

	"vbi/internal/phys"
)

// CheckInvariants verifies the MTL's structural invariants and returns an
// error describing the first violation. The property tests drive random
// workloads (enable/store/clone/promote/swap/migrate/disable) through the
// MTL and call this after every few steps.
//
// Invariants:
//  1. Every mapped region frame lies inside exactly one zone.
//  2. No two (VB, region) mappings share a frame unless the frame's
//     reference count records the sharing.
//  3. Reference counts match the actual number of mappings per frame.
//  4. A direct-mapped VB's regions sit at their fixed offsets from the
//     base; a chunk-mapped VB's regions sit at fixed offsets within their
//     chunk.
//  5. Table-backed VBs resolve every mapped region through their table to
//     the same frame the region map records.
//  6. Swapped regions are never simultaneously mapped.
//  7. The region table's mapped/swapped counts match its entries.
//  8. Per-zone buddy invariants hold (delegated to phys.Buddy).
func (m *MTL) CheckInvariants() error {
	frameUsers := make(map[phys.Addr]int)
	//vbi:allow maporder check-only: every mapping must pass; which violation is reported first is diagnostic detail
	for u, vb := range m.vbs {
		mapped, swapped := 0, 0
		for region, end := uint64(0), vb.regions.limit(); region < end; region++ {
			if vb.regions.isSwapped(region) {
				swapped++
			}
			frame, ok := vb.regions.frame(region)
			if !ok {
				continue
			}
			mapped++
			if m.ZoneOf(frame) < 0 {
				return fmt.Errorf("%v region %d frame %v outside all zones", u, region, frame)
			}
			if uint64(frame)%RegionSize != 0 {
				return fmt.Errorf("%v region %d frame %v misaligned", u, region, frame)
			}
			frameUsers[frame]++
			if vb.regions.isSwapped(region) {
				return fmt.Errorf("%v region %d both mapped and swapped", u, region)
			}
			switch {
			case vb.kind == TransDirect:
				want := vb.directBase + phys.Addr(region<<RegionShift)
				if frame != want {
					return fmt.Errorf("%v direct region %d at %v, want %v", u, region, frame, want)
				}
			case vb.blockShift > RegionShift:
				blockIdx := vb.blockIndex(region)
				chunk, ok := vb.blocks[blockIdx]
				if !ok {
					return fmt.Errorf("%v region %d mapped without its chunk", u, region)
				}
				regionsPerBlock := uint64(1) << (vb.blockShift - RegionShift)
				want := chunk + phys.Addr((region-blockIdx*regionsPerBlock)<<RegionShift)
				if frame != want {
					return fmt.Errorf("%v chunked region %d at %v, want %v", u, region, frame, want)
				}
			case vb.table != nil:
				_, walked, ok := vb.table.walk(region, nil)
				if !ok || walked != frame {
					return fmt.Errorf("%v region %d table walk gives %v,%v; region map %v",
						u, region, walked, ok, frame)
				}
			default:
				return fmt.Errorf("%v region %d mapped but VB has no structure", u, region)
			}
		}
		if mapped != vb.regions.mappedN || swapped != vb.regions.swappedN {
			return fmt.Errorf("%v region table counts %d mapped / %d swapped, entries say %d / %d",
				u, vb.regions.mappedN, vb.regions.swappedN, mapped, swapped)
		}
	}
	// Sharing accounting: refs defaults to 1 when absent.
	//vbi:allow maporder check-only: every frame must pass; which violation is reported first is diagnostic detail
	for frame, users := range frameUsers {
		refs := m.frameRefs[frame]
		if refs == 0 {
			refs = 1
		}
		if users != refs {
			return fmt.Errorf("frame %v used by %d mappings, refcount %d", frame, users, refs)
		}
	}
	//vbi:allow maporder check-only: every refcount must pass; which violation is reported first is diagnostic detail
	for frame, refs := range m.frameRefs {
		if refs > 1 && frameUsers[frame] != refs {
			return fmt.Errorf("frame %v refcount %d but %d mappings", frame, refs, frameUsers[frame])
		}
	}
	for _, z := range m.zones {
		if err := z.Buddy.CheckInvariants(); err != nil {
			return fmt.Errorf("zone %s: %w", z.Name, err)
		}
	}
	return nil
}
