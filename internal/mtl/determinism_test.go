package mtl

import (
	"fmt"
	"strings"
	"testing"

	"vbi/internal/addr"
)

// These tests pin the fix for a map-iteration nondeterminism found by
// vbilint's maporder analyzer: Clone, Promote and SyncFile used to walk
// vb.regions in map order, so the page-table nodes allocated while
// mapping the destination landed at iteration-order-dependent physical
// addresses — and every later allocation shifted with them. Two identical
// processes then disagreed on physical placement, breaking the
// byte-identical-results contract. The loops now walk sortedRegions.

// cloneRegions are deliberately scattered across many leaf nodes of a
// 128 MB VB's two-level radix (512 regions per leaf), so mapping the
// destination lazily allocates one node per touched leaf — making the
// mapping order visible in buddy-allocator state.
var cloneRegions = []uint64{0, 515, 1030, 7*512 + 3, 12*512 + 9, 19*512 + 1, 33*512 + 7, 47*512 + 2, 63*512 + 5, 3, 9 * 512, 25*512 + 100}

// clonePlacement runs one fixed enable/store/clone/COW scenario in a
// fresh MTL and fingerprints every physical placement it produced.
func clonePlacement(t *testing.T) string {
	t.Helper()
	m := newTestMTL(t, Config{DelayedAlloc: true})
	src := mustEnable(t, m, addr.Size128MB, 1, 0)
	for _, region := range cloneRegions {
		if err := m.Store(addr.Make(src, region*RegionSize), []byte{byte(region), 1, 2}); err != nil {
			t.Fatal(err)
		}
	}
	dst := mustEnable(t, m, addr.Size128MB, 2, 0)
	if err := m.Clone(src, dst); err != nil {
		t.Fatal(err)
	}
	// Write each cloned region so COW resolution re-allocates frames with
	// the buddy allocator in whatever state Clone left it.
	for _, region := range cloneRegions {
		if err := m.Store(addr.Make(dst, region*RegionSize), []byte{9}); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Fingerprint the data-frame placement AND the translation-walk
	// addresses: the latter expose which table node serves which leaf,
	// which is exactly what the unsorted mapping order scrambled.
	var b strings.Builder
	for _, region := range cloneRegions {
		sf, _ := m.frameForTest(src, region)
		df, _ := m.frameForTest(dst, region)
		fmt.Fprintf(&b, "%d:%x:%x", region, uint64(sf), uint64(df))
		ev, err := m.TranslateRead(addr.Make(dst, region*RegionSize))
		if err != nil {
			t.Fatal(err)
		}
		for _, wa := range ev.WalkAccesses {
			fmt.Fprintf(&b, ":%x", uint64(wa))
		}
		b.WriteString(" ")
	}
	return b.String()
}

func TestClonePlacementDeterministic(t *testing.T) {
	want := clonePlacement(t)
	for i := 0; i < 20; i++ {
		if got := clonePlacement(t); got != want {
			t.Fatalf("clone placement diverged on repeat %d:\n got %s\nwant %s", i, got, want)
		}
	}
}

// promotePlacement exercises the same property through Promote: the 4 MB
// VB's regions span both leaves of the 128 MB target's two-level radix,
// so the transfer order decides where the leaf nodes land.
func promotePlacement(t *testing.T) string {
	t.Helper()
	m := newTestMTL(t, Config{DelayedAlloc: true})
	small := mustEnable(t, m, addr.Size4MB, 1, 0)
	regions := []uint64{0, 100, 300, 511, 512, 700, 1023}
	for _, region := range regions {
		if err := m.Store(addr.Make(small, region*RegionSize), []byte{byte(region)}); err != nil {
			t.Fatal(err)
		}
	}
	large := mustEnable(t, m, addr.Size128MB, 2, 0)
	if err := m.Promote(small, large); err != nil {
		t.Fatal(err)
	}
	// A fresh allocation after the promote exposes any buddy-state skew.
	probe := mustEnable(t, m, addr.Size128KB, 3, 0)
	if err := m.Store(addr.Make(probe, 0), []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, region := range regions {
		f, _ := m.frameForTest(large, region)
		fmt.Fprintf(&b, "%d:%x", region, uint64(f))
		ev, err := m.TranslateRead(addr.Make(large, region*RegionSize))
		if err != nil {
			t.Fatal(err)
		}
		for _, wa := range ev.WalkAccesses {
			fmt.Fprintf(&b, ":%x", uint64(wa))
		}
		b.WriteString(" ")
	}
	pf, _ := m.frameForTest(probe, 0)
	fmt.Fprintf(&b, "probe:%x", uint64(pf))
	return b.String()
}

func TestPromotePlacementDeterministic(t *testing.T) {
	want := promotePlacement(t)
	for i := 0; i < 20; i++ {
		if got := promotePlacement(t); got != want {
			t.Fatalf("promote placement diverged on repeat %d:\n got %s\nwant %s", i, got, want)
		}
	}
}
