package mtl

import (
	"testing"

	"vbi/internal/phys"
)

// TestRegionTabMatchesMaps drives the dense region table through a
// deterministic churn of frame maps/unmaps and swap-bit transitions,
// checking every observable against the pair of maps it replaced
// (regions map[uint64]phys.Addr + swapped map[uint64]bool) — including
// the transient mapped-and-swapped state allocateRegion passes through
// while a region comes back from the backing store.
func TestRegionTabMatchesMaps(t *testing.T) {
	var r regionTab
	frames := map[uint64]phys.Addr{}
	swapped := map[uint64]bool{}
	rng := uint64(3)
	next := func() uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return rng >> 16
	}
	for step := 0; step < 50_000; step++ {
		region := next() % 64
		switch next() % 5 {
		case 0:
			f := phys.Addr((next() % 1024) << RegionShift)
			r.setFrame(region, f)
			frames[region] = f
		case 1:
			r.delFrame(region)
			delete(frames, region)
		case 2:
			r.setSwapped(region)
			swapped[region] = true
		case 3:
			r.clearSwapped(region)
			delete(swapped, region)
		case 4:
		}
		got, ok := r.frame(region)
		want, wok := frames[region]
		if ok != wok || (ok && got != want) {
			t.Fatalf("step %d: frame(%d) = %v,%v, want %v,%v", step, region, got, ok, want, wok)
		}
		if r.isSwapped(region) != swapped[region] {
			t.Fatalf("step %d: isSwapped(%d) = %v, want %v", step, region, r.isSwapped(region), swapped[region])
		}
		if r.mappedN != len(frames) || r.swappedN != len(swapped) {
			t.Fatalf("step %d: counts %d/%d, want %d/%d", step, r.mappedN, r.swappedN, len(frames), len(swapped))
		}
	}
	r.clearFrames()
	for region := uint64(0); region < 64; region++ {
		if _, ok := r.frame(region); ok {
			t.Fatalf("clearFrames left region %d mapped", region)
		}
		if r.isSwapped(region) != swapped[region] {
			t.Fatalf("clearFrames disturbed swap state of region %d", region)
		}
	}
	if r.mappedN != 0 || r.swappedN != len(swapped) {
		t.Fatalf("after clearFrames: counts %d/%d, want 0/%d", r.mappedN, r.swappedN, len(swapped))
	}
}
