// Package mtl implements the Memory Translation Layer (§4.5): the hardware
// component in the memory controller that manages physical memory
// allocation and VBI-to-physical address translation, relieving the OS of
// both duties.
//
// The MTL centres on the VB Info Tables (VITs), one per size class, which
// hold each VB's enable bit, property bitvector, reference count and
// translation-structure descriptor. Address translation happens only when
// an access misses the on-chip caches, using a VIT cache, an MTL TLB with
// variable-granularity entries, and per-VB translation structures of three
// kinds (§5.2): direct mappings, single-level tables and multi-level tables
// whose depth matches the VB's size class.
//
// The MTL also implements the paper's two allocation optimizations:
// delayed physical memory allocation (§5.1: memory is allocated only when a
// dirty line leaves the LLC, and reads of never-written regions return zero
// lines without touching DRAM) and early reservation (§5.3: a VB's full
// extent is reserved contiguously up front so it can be direct-mapped with
// a single TLB entry, with the buddy allocator's three-level priority
// letting other VBs steal from reservations under memory pressure).
package mtl

import (
	"fmt"

	"vbi/internal/addr"
	"vbi/internal/memdata"
	"vbi/internal/phys"
	"vbi/internal/prop"
	"vbi/internal/tlb"
)

// RegionShift is log2 of the base allocation granularity (4 KB regions).
const RegionShift = 12

// RegionSize is the base allocation granularity (§4.5.2).
const RegionSize = 1 << RegionShift

// vitEntryBase is the synthetic physical region holding the VITs; entries
// are 64 bytes apart so distinct VBs never share a cache line.
const vitEntryBase = uint64(1) << 45

// VITEntryAddr returns the physical address of the VIT entry for u, used by
// the timing model to charge the memory access of a VIT-cache miss.
func VITEntryAddr(u addr.VBUID) phys.Addr {
	return phys.Addr(vitEntryBase | uint64(u.Class())<<40 | u.VBID()*64)
}

// Zone is one region of the physical address space with uniform timing
// (e.g. all-DRAM, the DRAM side of a PCM–DRAM hybrid, or the PCM side).
type Zone struct {
	Name string
	Base phys.Addr
	Size uint64
	// Buddy manages the zone with zone-local addresses [0, Size).
	Buddy *phys.Buddy
}

func (z *Zone) contains(p phys.Addr) bool {
	return p >= z.Base && uint64(p-z.Base) < z.Size
}

// Config selects the MTL variant being simulated.
type Config struct {
	// DelayedAlloc enables §5.1: allocation on dirty LLC eviction and
	// zero-line service for never-written regions (VBI-2 and VBI-Full).
	DelayedAlloc bool
	// EarlyReservation enables §5.3: whole-VB contiguous reservation and
	// direct mapping (VBI-Full).
	EarlyReservation bool
	// UniformTables disables the flexible translation structures of §5.2:
	// every VB gets a fixed 4-level table, like x86-64's page tables.
	// Used by the ablation that quantifies the flexible-structure benefit.
	UniformTables bool
	// VITCacheEntries sizes the on-chip VIT cache (default 32).
	VITCacheEntries int
	// TLBL1Entries and TLBL2Entries size the MTL TLB levels (defaults 64
	// and 512, mirroring the baseline TLB budget of Table 1).
	TLBL1Entries int
	TLBL2Entries int
	// Placement picks the home zone for a VB at its first allocation
	// (heterogeneous-memory systems override it); nil places in zone 0.
	Placement func(p prop.Props) int
}

func (c Config) withDefaults() Config {
	if c.VITCacheEntries == 0 {
		c.VITCacheEntries = 32
	}
	if c.TLBL1Entries == 0 {
		c.TLBL1Entries = 64
	}
	if c.TLBL2Entries == 0 {
		c.TLBL2Entries = 512
	}
	return c
}

// Stats counts MTL events for the timing model and the experiments.
type Stats struct {
	Translations   uint64 // translation requests (LLC misses + writebacks)
	TLBL1Hits      uint64
	TLBL2Hits      uint64
	VITCacheHits   uint64
	VITMemAccesses uint64 // DRAM reads of VIT entries
	WalkAccesses   uint64 // DRAM reads of translation-structure entries
	ZeroLines      uint64 // reads served as zero lines without DRAM (§5.1)
	RegionAllocs   uint64 // 4 KB regions allocated
	Reservations   uint64 // successful early reservations
	Downgrades     uint64 // direct-mapped VBs demoted to page granularity
	OSFaults       uint64 // swap-ins and file loads
	COWCopies      uint64
	MigratedBytes  uint64
	SwapOuts       uint64
}

// MTL is the Memory Translation Layer instance.
type MTL struct {
	cfg   Config
	zones []*Zone
	vbs   map[addr.VBUID]*vbState

	vitCache *tlb.TLB      // keyed by VBUID
	tlbL1    *tlb.RangeTLB // variable-granularity entries
	tlbL2    *tlb.RangeTLB

	// Data is the functional physical-memory image (nil disables data
	// carrying; the timing path never needs it).
	Data *memdata.Store
	// swap and files hold swapped-out and memory-mapped-file bytes, keyed
	// by VBI address (the VB-relative identity survives remapping).
	swap  *memdata.Store
	files *memdata.Store

	// frameRefs counts VBs referencing each region frame (copy-on-write
	// sharing after clone_vb, §3.4). Absent means 1 for allocated frames.
	frameRefs map[phys.Addr]int

	// walkBuf is the reusable walk-access scratch buffer handed to
	// radixTable.walk; Event.WalkAccesses aliases it until the next
	// translation request, so per-reference walks never allocate.
	walkBuf []phys.Addr

	Stats Stats
}

// vbState is the MTL-internal VIT entry (§4.5.1) plus translation state.
type vbState struct {
	id       addr.VBUID
	props    prop.Props
	refCount int
	kind     TransKind
	zone     int

	// regions records each region's physical frame and swap state in a
	// dense table keyed by region index, regardless of translation-
	// structure kind.
	regions regionTab
	// isFile marks memory-mapped-file VBs (demand-load instead of
	// zero-fill).
	isFile bool

	// directBase is the VB's physical base when kind == TransDirect.
	directBase phys.Addr
	// reservedOrder is the buddy order of the early reservation (-1 none).
	reservedOrder int
	// table backs TransSingle and TransMulti.
	table *radixTable
	// blockShift is the mapping granularity: RegionShift (12) for plain
	// page-granularity tables, larger under the chunked early-reservation
	// fallback of §5.3 (the VB is mapped in blocks of the largest size
	// class that could be reserved contiguously).
	blockShift uint
	// blocks maps block index -> reserved chunk base when blockShift >
	// RegionShift.
	blocks map[uint64]phys.Addr

	// accessCount and writeCount are the MTL's hotness counters (memory-
	// level accesses, i.e. LLC misses and writebacks) used by the
	// heterogeneous-memory policies (§7.3).
	accessCount uint64
	writeCount  uint64
}

// regionTab is the per-VB region table: a dense slice keyed by region
// index, replacing the regions and swapped maps the vbState previously
// carried (the radixTable pattern — flat arrays, sentinel entries). Each
// entry packs the region's 4 KB-aligned physical frame with two flag bits
// in the alignment-freed low bits, so the per-reference frame probe in
// translate() is one bounds check and one load — no hashing, and never a
// rehash while the working set grows.
//
// A zero entry means the region has never been touched, so growth is a
// plain zero-extending append. The present and swapped bits are
// independent: allocateRegion installs the frame before fillFreshRegion
// consults (and clears) the swap state, so a region coming back from the
// backing store is briefly both.
//
// Iteration in ascending region index replaces the old sortedRegions()
// snapshot: multi-region walks that allocate or free frames must visit
// regions in this order — map order would randomize allocator state,
// making otherwise-identical runs nondeterministic. The dense table makes
// the deterministic order free instead of a sort per walk.
type regionTab struct {
	tab      []uint64 // region index -> frame | flag bits; 0 = untouched
	mappedN  int      // entries with regionPresent set
	swappedN int      // entries with regionSwapped set
}

const (
	// regionPresent marks a mapped region: the entry's frame bits hold
	// its physical frame (which may legitimately be frame 0).
	regionPresent = 1 << 0
	// regionSwapped marks a region whose bytes live in the backing store.
	regionSwapped = 1 << 1
	// regionFlagMask covers the flag bits; frames are RegionSize-aligned,
	// so the low RegionShift bits of the address are free to carry them.
	regionFlagMask = RegionSize - 1
)

// grow extends the table to cover region (zero entries = untouched).
func (r *regionTab) grow(region uint64) {
	if region >= uint64(len(r.tab)) {
		r.tab = append(r.tab, make([]uint64, region+1-uint64(len(r.tab)))...)
	}
}

// limit returns the exclusive upper bound of touched region indices;
// ascending scans to limit() visit every live entry deterministically.
func (r *regionTab) limit() uint64 { return uint64(len(r.tab)) }

// frame returns the physical frame backing the region, if mapped.
//
//vbi:hotpath
func (r *regionTab) frame(region uint64) (phys.Addr, bool) {
	if region >= uint64(len(r.tab)) {
		return 0, false
	}
	e := r.tab[region]
	return phys.Addr(e &^ regionFlagMask), e&regionPresent != 0
}

// setFrame maps the region to frame, preserving its swap state.
func (r *regionTab) setFrame(region uint64, frame phys.Addr) {
	r.grow(region)
	e := &r.tab[region]
	if *e&regionPresent == 0 {
		r.mappedN++
	}
	*e = uint64(frame) | regionPresent | *e&regionSwapped
}

// delFrame unmaps the region, preserving its swap state.
func (r *regionTab) delFrame(region uint64) {
	if region < uint64(len(r.tab)) && r.tab[region]&regionPresent != 0 {
		r.mappedN--
		r.tab[region] &= regionSwapped
	}
}

// isSwapped reports whether the region's bytes live in the backing store.
func (r *regionTab) isSwapped(region uint64) bool {
	return region < uint64(len(r.tab)) && r.tab[region]&regionSwapped != 0
}

// setSwapped marks the region as living in the backing store.
func (r *regionTab) setSwapped(region uint64) {
	r.grow(region)
	if r.tab[region]&regionSwapped == 0 {
		r.swappedN++
		r.tab[region] |= regionSwapped
	}
}

// clearSwapped removes the region's backing-store mark.
func (r *regionTab) clearSwapped(region uint64) {
	if region < uint64(len(r.tab)) && r.tab[region]&regionSwapped != 0 {
		r.swappedN--
		r.tab[region] &^= regionSwapped
	}
}

// clearFrames unmaps every region in place, keeping swap state (Promote
// uses it after transferring frame ownership to the larger VB).
func (r *regionTab) clearFrames() {
	for i := range r.tab {
		r.tab[i] &= regionSwapped
	}
	r.mappedN = 0
}

// New builds an MTL over the given zones. Zones must be non-empty; zone
// bases must be 0, size0, size0+size1, ... (callers use NewZones).
func New(cfg Config, zones []*Zone) *MTL {
	if len(zones) == 0 {
		panic("mtl: no zones")
	}
	cfg = cfg.withDefaults()
	return &MTL{
		cfg:       cfg,
		zones:     zones,
		vbs:       make(map[addr.VBUID]*vbState),
		vitCache:  tlb.New("VITcache", 1, cfg.VITCacheEntries),
		tlbL1:     tlb.NewRange("MTL-TLB-L1", cfg.TLBL1Entries),
		tlbL2:     tlb.NewRange("MTL-TLB-L2", cfg.TLBL2Entries),
		swap:      memdata.New(),
		files:     memdata.New(),
		frameRefs: make(map[phys.Addr]int),
		walkBuf:   make([]phys.Addr, 0, 8),
	}
}

// NewZones lays out zones back to back starting at physical address 0.
func NewZones(sizes map[string]uint64, order []string) []*Zone {
	var zones []*Zone
	base := phys.Addr(0)
	for _, name := range order {
		size := sizes[name]
		zones = append(zones, &Zone{
			Name:  name,
			Base:  base,
			Size:  size,
			Buddy: phys.NewBuddy(size),
		})
		base += phys.Addr(size)
	}
	return zones
}

// NewSimple builds a single-zone MTL of the given capacity, with a
// functional data store attached.
func NewSimple(cfg Config, capacity uint64) *MTL {
	m := New(cfg, NewZones(map[string]uint64{"DRAM": capacity}, []string{"DRAM"}))
	m.Data = memdata.New()
	return m
}

// Zones exposes the zone layout (read-only use).
func (m *MTL) Zones() []*Zone { return m.zones }

// Config returns the MTL configuration.
func (m *MTL) Config() Config { return m.cfg }

// ZoneOf returns the index of the zone containing p, or -1.
func (m *MTL) ZoneOf(p phys.Addr) int {
	for i, z := range m.zones {
		if z.contains(p) {
			return i
		}
	}
	return -1
}

func (m *MTL) vb(u addr.VBUID) (*vbState, error) {
	vb, ok := m.vbs[u]
	if !ok {
		return nil, fmt.Errorf("mtl: %v not enabled", u)
	}
	return vb, nil
}

// Enable implements the enable_vb instruction (§4.2): it marks the VB
// enabled with the given properties, reference count zero, and no
// translation structure yet.
func (m *MTL) Enable(u addr.VBUID, p prop.Props) error {
	if !u.Valid() {
		return fmt.Errorf("mtl: invalid VBUID %#x", uint64(u))
	}
	if _, ok := m.vbs[u]; ok {
		return fmt.Errorf("mtl: %v already enabled", u)
	}
	zone := 0
	if m.cfg.Placement != nil {
		zone = m.cfg.Placement(p)
	}
	m.vbs[u] = &vbState{
		id:            u,
		props:         p,
		kind:          TransNone,
		zone:          zone,
		isFile:        p.Has(prop.MappedFile),
		reservedOrder: -1,
		blockShift:    RegionShift,
	}
	return nil
}

// Enabled reports whether the VB is currently enabled.
func (m *MTL) Enabled(u addr.VBUID) bool {
	_, ok := m.vbs[u]
	return ok
}

// Props returns the VB's property bitvector.
func (m *MTL) Props(u addr.VBUID) (prop.Props, error) {
	vb, err := m.vb(u)
	if err != nil {
		return 0, err
	}
	return vb.props, nil
}

// RefCount returns the VB's attach reference count.
func (m *MTL) RefCount(u addr.VBUID) int {
	if vb, ok := m.vbs[u]; ok {
		return vb.refCount
	}
	return 0
}

// IncRef and DecRef maintain the VIT reference count on attach/detach.
func (m *MTL) IncRef(u addr.VBUID) error {
	vb, err := m.vb(u)
	if err != nil {
		return err
	}
	vb.refCount++
	return nil
}

// DecRef decrements the reference count, returning the new value.
func (m *MTL) DecRef(u addr.VBUID) (int, error) {
	vb, err := m.vb(u)
	if err != nil {
		return 0, err
	}
	if vb.refCount == 0 {
		return 0, fmt.Errorf("mtl: %v refcount underflow", u)
	}
	vb.refCount--
	return vb.refCount, nil
}

// Disable implements disable_vb (§4.2.4): it destroys all state associated
// with the VB — translation structures, physical frames (modulo shared
// copy-on-write frames), reservations, swap and file data, and MTL TLB/VIT
// cache entries. On-chip cache invalidation is the caller's duty (the
// paper performs it lazily).
func (m *MTL) Disable(u addr.VBUID) error {
	vb, err := m.vb(u)
	if err != nil {
		return err
	}
	base, size := uint64(u.Base()), u.Size()
	m.tlbL1.InvalidateRange(base, size)
	m.tlbL2.InvalidateRange(base, size)
	m.vitCache.InvalidateIf(func(k uint64) bool { return k == uint64(u) })
	for region, end := uint64(0), vb.regions.limit(); region < end; region++ {
		if frame, ok := vb.regions.frame(region); ok {
			m.derefFrame(frame)
		}
	}
	if vb.table != nil {
		m.freeTable(vb)
	}
	m.unreserveAll(vb)
	m.swap.ZeroRange(base, size)
	m.files.ZeroRange(base, size)
	delete(m.vbs, u)
	return nil
}

// derefFrame decrements a region frame's reference count, freeing it when
// it drops to zero.
func (m *MTL) derefFrame(frame phys.Addr) {
	if n, ok := m.frameRefs[frame]; ok && n > 1 {
		m.frameRefs[frame] = n - 1
		return
	}
	delete(m.frameRefs, frame)
	m.freeFrame(frame, 0)
}

func (m *MTL) freeFrame(p phys.Addr, order int) {
	zi := m.ZoneOf(p)
	if zi < 0 {
		panic(fmt.Sprintf("mtl: freeing frame %v outside all zones", p))
	}
	z := m.zones[zi]
	z.Buddy.Free(p-z.Base, order)
}

// unreserveAll releases every reservation (whole-VB or chunked) the VB
// holds in any zone.
func (m *MTL) unreserveAll(vb *vbState) {
	for _, z := range m.zones {
		z.Buddy.Unreserve(vb.id)
	}
	vb.reservedOrder = -1
}

// InvalidateTLBRange drops MTL TLB entries overlapping the VBI range (used
// after migration and promotion).
func (m *MTL) InvalidateTLBRange(base addr.Addr, size uint64) {
	m.tlbL1.InvalidateRange(uint64(base), size)
	m.tlbL2.InvalidateRange(uint64(base), size)
}

// AllocatedRegions returns the number of allocated 4 KB regions of the VB.
func (m *MTL) AllocatedRegions(u addr.VBUID) int {
	if vb, ok := m.vbs[u]; ok {
		return vb.regions.mappedN
	}
	return 0
}

// Kind returns the VB's translation-structure kind.
func (m *MTL) Kind(u addr.VBUID) TransKind {
	if vb, ok := m.vbs[u]; ok {
		return vb.kind
	}
	return TransNone
}

// FreeBytes sums free bytes across zones.
func (m *MTL) FreeBytes() uint64 {
	var n uint64
	for _, z := range m.zones {
		n += z.Buddy.FreeBytes()
	}
	return n
}
