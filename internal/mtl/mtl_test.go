package mtl

import (
	"testing"

	"vbi/internal/addr"
	"vbi/internal/prop"
)

func newTestMTL(t *testing.T, cfg Config) *MTL {
	t.Helper()
	return NewSimple(cfg, 64<<20) // 64 MB
}

func mustEnable(t *testing.T, m *MTL, c addr.SizeClass, vbid uint64, p prop.Props) addr.VBUID {
	t.Helper()
	u := addr.MakeVBUID(c, vbid)
	if err := m.Enable(u, p); err != nil {
		t.Fatal(err)
	}
	return u
}

func TestEnableDisable(t *testing.T) {
	m := newTestMTL(t, Config{})
	u := mustEnable(t, m, addr.Size128KB, 1, prop.LatencySensitive)
	if !m.Enabled(u) {
		t.Fatal("VB not enabled")
	}
	p, err := m.Props(u)
	if err != nil || !p.Has(prop.LatencySensitive) {
		t.Fatalf("props = %v, %v", p, err)
	}
	if err := m.Enable(u, 0); err == nil {
		t.Fatal("double enable succeeded")
	}
	if err := m.Disable(u); err != nil {
		t.Fatal(err)
	}
	if m.Enabled(u) {
		t.Fatal("VB still enabled after disable")
	}
	if err := m.Disable(u); err == nil {
		t.Fatal("double disable succeeded")
	}
}

func TestEnableInvalidVBUID(t *testing.T) {
	m := newTestMTL(t, Config{})
	bad := addr.VBUID(uint64(addr.Size128TB)<<61 | 1<<40)
	if err := m.Enable(bad, 0); err == nil {
		t.Fatal("invalid VBUID accepted")
	}
}

func TestRefCounting(t *testing.T) {
	m := newTestMTL(t, Config{})
	u := mustEnable(t, m, addr.Size4KB, 1, 0)
	if m.RefCount(u) != 0 {
		t.Fatal("fresh VB refcount != 0")
	}
	m.IncRef(u)
	m.IncRef(u)
	if m.RefCount(u) != 2 {
		t.Fatalf("refcount = %d", m.RefCount(u))
	}
	if n, _ := m.DecRef(u); n != 1 {
		t.Fatalf("DecRef = %d", n)
	}
	m.DecRef(u)
	if _, err := m.DecRef(u); err == nil {
		t.Fatal("refcount underflow not caught")
	}
}

func TestStaticKindPolicy(t *testing.T) {
	// §5.2: 4 KB direct, 128 KB/4 MB single-level, larger multi-level.
	cases := []struct {
		c    addr.SizeClass
		kind TransKind
	}{
		{addr.Size4KB, TransDirect},
		{addr.Size128KB, TransSingle},
		{addr.Size4MB, TransSingle},
		{addr.Size128MB, TransMulti},
		{addr.Size4GB, TransMulti},
	}
	for i, c := range cases {
		m := newTestMTL(t, Config{})
		u := mustEnable(t, m, c.c, uint64(i+1), 0)
		if err := m.Store(addr.Make(u, 0), []byte{1}); err != nil {
			t.Fatalf("%v: %v", c.c, err)
		}
		if got := m.Kind(u); got != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.c, got, c.kind)
		}
	}
}

func TestTableDepths(t *testing.T) {
	// §4.5.2/§5.2: table depth grows with size class but never exceeds 4.
	want := map[addr.SizeClass]int{
		addr.Size128KB: 1, // 5 bits of region index
		addr.Size4MB:   1, // 10 bits
		addr.Size128MB: 2, // 15 bits
		addr.Size4GB:   3, // 20 bits
		addr.Size128GB: 3, // 25 bits
		addr.Size4TB:   4, // 30 bits
		addr.Size128TB: 4, // 35 bits
	}
	for c, d := range want {
		if got := tableDepth(c); got != d {
			t.Errorf("tableDepth(%v) = %d, want %d", c, got, d)
		}
	}
}

func TestDisableFreesMemory(t *testing.T) {
	m := newTestMTL(t, Config{})
	free0 := m.FreeBytes()
	u := mustEnable(t, m, addr.Size4MB, 1, 0)
	buf := make([]byte, 4096)
	for off := uint64(0); off < 1<<20; off += 4096 {
		if err := m.Store(addr.Make(u, off), buf); err != nil {
			t.Fatal(err)
		}
	}
	if m.FreeBytes() >= free0 {
		t.Fatal("no memory consumed")
	}
	if err := m.Disable(u); err != nil {
		t.Fatal(err)
	}
	if m.FreeBytes() != free0 {
		t.Fatalf("leak: free %d != %d after disable", m.FreeBytes(), free0)
	}
}

func TestVITEntryAddrDistinct(t *testing.T) {
	seen := map[uint64]bool{}
	for c := addr.Size4KB; c < addr.NumSizeClasses; c++ {
		for vbid := uint64(0); vbid < 100; vbid++ {
			a := uint64(VITEntryAddr(addr.MakeVBUID(c, vbid)))
			if seen[a] {
				t.Fatalf("VIT entry address collision at %#x", a)
			}
			seen[a] = true
		}
	}
}

func TestZoneOf(t *testing.T) {
	zones := NewZones(map[string]uint64{"DRAM": 1 << 20, "PCM": 4 << 20}, []string{"DRAM", "PCM"})
	m := New(Config{}, zones)
	if zi := m.ZoneOf(0); zi != 0 {
		t.Errorf("ZoneOf(0) = %d", zi)
	}
	if zi := m.ZoneOf(1 << 20); zi != 1 {
		t.Errorf("ZoneOf(1MB) = %d", zi)
	}
	if zi := m.ZoneOf(5 << 20); zi != -1 {
		t.Errorf("ZoneOf(out of range) = %d", zi)
	}
}

func TestPlacementPolicy(t *testing.T) {
	zones := NewZones(map[string]uint64{"DRAM": 8 << 20, "PCM": 8 << 20}, []string{"DRAM", "PCM"})
	m := New(Config{
		Placement: func(p prop.Props) int {
			if p.Has(prop.LatencySensitive) {
				return 0
			}
			return 1
		},
	}, zones)
	hot := addr.MakeVBUID(addr.Size128KB, 1)
	cold := addr.MakeVBUID(addr.Size128KB, 2)
	m.Enable(hot, prop.LatencySensitive)
	m.Enable(cold, 0)
	for _, u := range []addr.VBUID{hot, cold} {
		if _, err := m.TranslateWriteback(addr.Make(u, 0)); err != nil {
			t.Fatal(err)
		}
	}
	hb, _ := m.ZoneBytes(hot)
	cb, _ := m.ZoneBytes(cold)
	if hb[0] == 0 || hb[1] != 0 {
		t.Errorf("hot VB zone bytes = %v, want all in zone 0", hb)
	}
	if cb[1] == 0 || cb[0] != 0 {
		t.Errorf("cold VB zone bytes = %v, want all in zone 1", cb)
	}
}
