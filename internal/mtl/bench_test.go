package mtl

import (
	"testing"

	"vbi/internal/addr"
	"vbi/internal/phys"
)

func benchMTL(b *testing.B, cfg Config) (*MTL, addr.VBUID) {
	b.Helper()
	m := New(cfg, NewZones(map[string]uint64{"DRAM": 1 << 30}, []string{"DRAM"}))
	u := addr.MakeVBUID(addr.Size128MB, 1)
	if err := m.Enable(u, 0); err != nil {
		b.Fatal(err)
	}
	if err := m.Prefill(u, 64<<20); err != nil {
		b.Fatal(err)
	}
	return m, u
}

func BenchmarkTranslateReadTLBHit(b *testing.B) {
	m, u := benchMTL(b, Config{DelayedAlloc: true})
	a := addr.Make(u, 0)
	m.TranslateRead(a)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.TranslateRead(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTranslateReadWalk(b *testing.B) {
	m, u := benchMTL(b, Config{DelayedAlloc: true})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Stride far enough that the MTL TLB keeps missing.
		off := (uint64(i) * 5 << 12) % (64 << 20)
		if _, err := m.TranslateRead(addr.Make(u, off)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTranslateZeroLine(b *testing.B) {
	m, u := benchMTL(b, Config{DelayedAlloc: true})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		off := 64<<20 + (uint64(i)<<12)%(32<<20)
		ev, err := m.TranslateRead(addr.Make(u, off))
		if err != nil {
			b.Fatal(err)
		}
		if !ev.ZeroLine {
			b.Fatal("expected zero line")
		}
	}
}

func BenchmarkCloneAndCOW(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := NewSimple(Config{DelayedAlloc: true}, 64<<20)
		src := addr.MakeVBUID(addr.Size128KB, 1)
		dst := addr.MakeVBUID(addr.Size128KB, 2)
		m.Enable(src, 0)
		m.Enable(dst, 0)
		m.Store(addr.Make(src, 0), []byte{1})
		m.Clone(src, dst)
		m.Store(addr.Make(dst, 0), []byte{2})
	}
}

// BenchmarkRegionTabChurn drives the flattened per-VB region table through
// its steady-state mutation mix — frame probes, unmap/remap cycles and
// swap-bit flips over a working set it has already grown to cover. Like
// the cache and TLB microbenchmarks this is a zero-allocation floor (CI
// fails on allocs/op > 0): once grown, the dense table must never touch
// the heap again.
func BenchmarkRegionTabChurn(b *testing.B) {
	var r regionTab
	const span = 1 << 14 // 64 MB of 4 KB regions
	for region := uint64(0); region < span; region++ {
		r.setFrame(region, phys.Addr(region<<RegionShift))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		region := uint64(i) % span
		if _, ok := r.frame(region); !ok {
			b.Fatal("prefilled region missing")
		}
		r.delFrame(region)
		r.setSwapped(region)
		r.clearSwapped(region)
		r.setFrame(region, phys.Addr(region<<RegionShift))
	}
}

// BenchmarkSwapOutSwapIn cycles one region through the backing store and
// back, covering the region-table transitions the capacity system calls
// exercise (mapped -> swapped -> mapped) together with the buddy
// allocator and TLB shootdown they drag along.
func BenchmarkSwapOutSwapIn(b *testing.B) {
	m, u := benchMTL(b, Config{DelayedAlloc: true})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := (uint64(i) << RegionShift) % (64 << 20)
		if _, err := m.SwapOutRegion(u, off>>RegionShift); err != nil {
			b.Fatal(err)
		}
		if _, err := m.TranslateRead(addr.Make(u, off)); err != nil {
			b.Fatal(err)
		}
	}
}
