package mtl

import (
	"testing"

	"vbi/internal/addr"
)

func benchMTL(b *testing.B, cfg Config) (*MTL, addr.VBUID) {
	b.Helper()
	m := New(cfg, NewZones(map[string]uint64{"DRAM": 1 << 30}, []string{"DRAM"}))
	u := addr.MakeVBUID(addr.Size128MB, 1)
	if err := m.Enable(u, 0); err != nil {
		b.Fatal(err)
	}
	if err := m.Prefill(u, 64<<20); err != nil {
		b.Fatal(err)
	}
	return m, u
}

func BenchmarkTranslateReadTLBHit(b *testing.B) {
	m, u := benchMTL(b, Config{DelayedAlloc: true})
	a := addr.Make(u, 0)
	m.TranslateRead(a)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.TranslateRead(a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTranslateReadWalk(b *testing.B) {
	m, u := benchMTL(b, Config{DelayedAlloc: true})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Stride far enough that the MTL TLB keeps missing.
		off := (uint64(i) * 5 << 12) % (64 << 20)
		if _, err := m.TranslateRead(addr.Make(u, off)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTranslateZeroLine(b *testing.B) {
	m, u := benchMTL(b, Config{DelayedAlloc: true})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		off := 64<<20 + (uint64(i)<<12)%(32<<20)
		ev, err := m.TranslateRead(addr.Make(u, off))
		if err != nil {
			b.Fatal(err)
		}
		if !ev.ZeroLine {
			b.Fatal("expected zero line")
		}
	}
}

func BenchmarkCloneAndCOW(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := NewSimple(Config{DelayedAlloc: true}, 64<<20)
		src := addr.MakeVBUID(addr.Size128KB, 1)
		dst := addr.MakeVBUID(addr.Size128KB, 2)
		m.Enable(src, 0)
		m.Enable(dst, 0)
		m.Store(addr.Make(src, 0), []byte{1})
		m.Clone(src, dst)
		m.Store(addr.Make(dst, 0), []byte{2})
	}
}
