package mtl

import (
	"bytes"
	"testing"
	"testing/quick"

	"vbi/internal/addr"
	"vbi/internal/prop"
)

func TestLoadStoreRoundTrip(t *testing.T) {
	m := newTestMTL(t, Config{DelayedAlloc: true})
	u := mustEnable(t, m, addr.Size128KB, 1, 0)
	data := []byte("the virtual block interface")
	if err := m.Store(addr.Make(u, 5000), data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := m.Load(addr.Make(u, 5000), got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip = %q", got)
	}
}

func TestLoadUnallocatedIsZero(t *testing.T) {
	m := newTestMTL(t, Config{DelayedAlloc: true})
	u := mustEnable(t, m, addr.Size4MB, 1, 0)
	buf := []byte{1, 2, 3}
	if err := m.Load(addr.Make(u, 1<<20), buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte{0, 0, 0}) {
		t.Fatalf("unallocated read = %v", buf)
	}
	if m.AllocatedRegions(u) != 0 {
		t.Fatal("load allocated memory")
	}
}

func TestStoreCrossRegion(t *testing.T) {
	m := newTestMTL(t, Config{})
	u := mustEnable(t, m, addr.Size128KB, 1, 0)
	data := make([]byte, 3*RegionSize)
	for i := range data {
		data[i] = byte(i * 13)
	}
	if err := m.Store(addr.Make(u, RegionSize/2), data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	m.Load(addr.Make(u, RegionSize/2), got)
	if !bytes.Equal(got, data) {
		t.Fatal("cross-region store corrupted")
	}
	if m.AllocatedRegions(u) != 4 {
		t.Fatalf("allocated regions = %d, want 4", m.AllocatedRegions(u))
	}
}

func TestStoreOverrun(t *testing.T) {
	m := newTestMTL(t, Config{})
	u := mustEnable(t, m, addr.Size4KB, 1, 0)
	if err := m.Store(addr.Make(u, 4090), make([]byte, 10)); err == nil {
		t.Fatal("overrun store accepted")
	}
	if err := m.Load(addr.Make(u, 4090), make([]byte, 10)); err == nil {
		t.Fatal("overrun load accepted")
	}
}

func TestLoadStoreProperty(t *testing.T) {
	m := newTestMTL(t, Config{DelayedAlloc: true})
	u := mustEnable(t, m, addr.Size4MB, 1, 0)
	shadow := make(map[uint64]byte)
	f := func(offRaw uint64, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		if len(data) > 1024 {
			data = data[:1024]
		}
		off := offRaw % (4<<20 - uint64(len(data)))
		if err := m.Store(addr.Make(u, off), data); err != nil {
			return false
		}
		for i, b := range data {
			shadow[off+uint64(i)] = b
		}
		// Verify a sample of shadow entries.
		for k, v := range shadow {
			got := []byte{0}
			if err := m.Load(addr.Make(u, k), got); err != nil || got[0] != v {
				return false
			}
			break
		}
		got := make([]byte, len(data))
		m.Load(addr.Make(u, off), got)
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestCloneSharesThenCopies(t *testing.T) {
	m := newTestMTL(t, Config{DelayedAlloc: true})
	src := mustEnable(t, m, addr.Size128KB, 1, 0)
	dst := mustEnable(t, m, addr.Size128KB, 2, 0)

	orig := []byte("original contents")
	if err := m.Store(addr.Make(src, 64), orig); err != nil {
		t.Fatal(err)
	}
	if err := m.Clone(src, dst); err != nil {
		t.Fatal(err)
	}

	// Clone reads the shared data without extra allocation.
	got := make([]byte, len(orig))
	m.Load(addr.Make(dst, 64), got)
	if !bytes.Equal(got, orig) {
		t.Fatalf("clone read = %q", got)
	}
	sf, _ := m.frameForTest(src, 0)
	df, _ := m.frameForTest(dst, 0)
	if sf != df {
		t.Fatal("clone does not share frames before any write")
	}

	// Writing the clone triggers the lazy copy; the source is unaffected.
	if err := m.Store(addr.Make(dst, 64), []byte("CLONED!! contents")); err != nil {
		t.Fatal(err)
	}
	m.Load(addr.Make(src, 64), got)
	if !bytes.Equal(got, orig) {
		t.Fatalf("write to clone leaked into source: %q", got)
	}
	sf2, _ := m.frameForTest(src, 0)
	df2, _ := m.frameForTest(dst, 0)
	if sf2 == df2 {
		t.Fatal("frames still shared after write")
	}
	if sf2 != sf {
		t.Fatal("source frame moved; the writer should get the new copy")
	}
	if m.Stats.COWCopies == 0 {
		t.Fatal("COW copy not counted")
	}
}

func TestCloneWriteToSourceCopies(t *testing.T) {
	m := newTestMTL(t, Config{DelayedAlloc: true})
	src := mustEnable(t, m, addr.Size128KB, 1, 0)
	dst := mustEnable(t, m, addr.Size128KB, 2, 0)
	m.Store(addr.Make(src, 0), []byte("v1"))
	m.Clone(src, dst)
	// Writing the *source* must also preserve the clone's view.
	m.Store(addr.Make(src, 0), []byte("v2"))
	got := make([]byte, 2)
	m.Load(addr.Make(dst, 0), got)
	if string(got) != "v1" {
		t.Fatalf("clone sees %q, want v1", got)
	}
	m.Load(addr.Make(src, 0), got)
	if string(got) != "v2" {
		t.Fatalf("source reads %q, want v2", got)
	}
}

func TestCloneValidation(t *testing.T) {
	m := newTestMTL(t, Config{})
	src := mustEnable(t, m, addr.Size128KB, 1, 0)
	smaller := mustEnable(t, m, addr.Size4KB, 2, 0)
	if err := m.Clone(src, smaller); err == nil {
		t.Fatal("cross-class clone accepted")
	}
	used := mustEnable(t, m, addr.Size128KB, 3, 0)
	m.Store(addr.Make(used, 0), []byte{1})
	if err := m.Clone(src, used); err == nil {
		t.Fatal("clone onto non-pristine VB accepted")
	}
}

func TestCloneOfDirectMappedSource(t *testing.T) {
	m := newTestMTL(t, Config{DelayedAlloc: true, EarlyReservation: true})
	src := mustEnable(t, m, addr.Size128KB, 1, 0)
	dst := mustEnable(t, m, addr.Size128KB, 2, 0)
	m.Store(addr.Make(src, 0), []byte("direct"))
	if m.Kind(src) != TransDirect {
		t.Fatal("source not direct-mapped")
	}
	if err := m.Clone(src, dst); err != nil {
		t.Fatal(err)
	}
	// Source write triggers COW; direct source downgrades.
	m.Store(addr.Make(src, 0), []byte("DIRECT"))
	got := make([]byte, 6)
	m.Load(addr.Make(dst, 0), got)
	if string(got) != "direct" {
		t.Fatalf("clone sees %q", got)
	}
	if m.Kind(src) == TransDirect {
		t.Fatal("direct source not downgraded on COW write")
	}
}

func TestDisableSharedFramesSafely(t *testing.T) {
	m := newTestMTL(t, Config{DelayedAlloc: true})
	src := mustEnable(t, m, addr.Size128KB, 1, 0)
	dst := mustEnable(t, m, addr.Size128KB, 2, 0)
	m.Store(addr.Make(src, 0), []byte("shared"))
	m.Clone(src, dst)
	if err := m.Disable(src); err != nil {
		t.Fatal(err)
	}
	// The clone still reads the shared data: the frame survived because
	// its refcount was 2.
	got := make([]byte, 6)
	m.Load(addr.Make(dst, 0), got)
	if string(got) != "shared" {
		t.Fatalf("clone reads %q after source disable", got)
	}
	if err := m.Disable(dst); err != nil {
		t.Fatal(err)
	}
	if m.FreeBytes() != m.Zones()[0].Buddy.Capacity() {
		t.Fatal("frames leaked after both disables")
	}
}

func TestPromote(t *testing.T) {
	m := newTestMTL(t, Config{DelayedAlloc: true})
	small := mustEnable(t, m, addr.Size128KB, 1, 0)
	large := mustEnable(t, m, addr.Size4MB, 1, 0)

	payload := []byte("data that outgrew its VB")
	if err := m.Store(addr.Make(small, 100), payload); err != nil {
		t.Fatal(err)
	}
	frameBefore, _ := m.frameForTest(small, 0)
	if err := m.Promote(small, large); err != nil {
		t.Fatal(err)
	}

	// §4.4: the early portion of the larger VB maps to the same physical
	// memory as the smaller VB.
	frameAfter, ok := m.frameForTest(large, 0)
	if !ok || frameAfter != frameBefore {
		t.Fatalf("large region 0 frame = %v, want %v", frameAfter, frameBefore)
	}
	got := make([]byte, len(payload))
	m.Load(addr.Make(large, 100), got)
	if !bytes.Equal(got, payload) {
		t.Fatalf("promoted data = %q", got)
	}

	// The remaining portion of the large VB is unallocated and writable.
	if err := m.Store(addr.Make(large, 2<<20), []byte("growth")); err != nil {
		t.Fatal(err)
	}

	// The small VB is left empty; disabling it must not free the frames.
	if m.AllocatedRegions(small) != 0 {
		t.Fatal("small VB retained regions")
	}
	if err := m.Disable(small); err != nil {
		t.Fatal(err)
	}
	m.Load(addr.Make(large, 100), got)
	if !bytes.Equal(got, payload) {
		t.Fatal("data lost after disabling the promoted-away VB")
	}
}

func TestPromoteValidation(t *testing.T) {
	m := newTestMTL(t, Config{})
	a := mustEnable(t, m, addr.Size4MB, 1, 0)
	b := mustEnable(t, m, addr.Size128KB, 1, 0)
	if err := m.Promote(a, b); err == nil {
		t.Fatal("demotion accepted")
	}
	c := mustEnable(t, m, addr.Size4MB, 2, 0)
	m.Store(addr.Make(c, 0), []byte{1})
	if err := m.Promote(b, c); err == nil {
		t.Fatal("promote onto non-pristine VB accepted")
	}
}

func TestSwapOutAndBack(t *testing.T) {
	m := newTestMTL(t, Config{DelayedAlloc: true})
	u := mustEnable(t, m, addr.Size128KB, 1, 0)
	payload := []byte("swap me out")
	m.Store(addr.Make(u, 8192), payload)
	free0 := m.FreeBytes()

	ok, err := m.SwapOutRegion(u, 2)
	if err != nil || !ok {
		t.Fatalf("swap out = %v, %v", ok, err)
	}
	if m.FreeBytes() <= free0 {
		t.Fatal("swap out freed no memory")
	}

	// Reads of swapped data come from the backing store.
	got := make([]byte, len(payload))
	m.Load(addr.Make(u, 8192), got)
	if !bytes.Equal(got, payload) {
		t.Fatalf("swapped read = %q", got)
	}

	// A timing-path access faults it back in.
	ev, err := m.TranslateRead(addr.Make(u, 8192))
	if err != nil {
		t.Fatal(err)
	}
	if !ev.OSFault || !ev.AllocatedRegion {
		t.Fatalf("swap-in event = %+v", ev)
	}
	m.Load(addr.Make(u, 8192), got)
	if !bytes.Equal(got, payload) {
		t.Fatalf("post-swap-in read = %q", got)
	}
	if m.Stats.OSFaults == 0 || m.Stats.SwapOuts != 1 {
		t.Fatalf("stats = %+v", m.Stats)
	}
}

func TestSwapOutVB(t *testing.T) {
	m := newTestMTL(t, Config{})
	u := mustEnable(t, m, addr.Size128KB, 1, 0)
	data := make([]byte, 3*RegionSize)
	for i := range data {
		data[i] = byte(i)
	}
	m.Store(addr.Make(u, 0), data)
	n, err := m.SwapOutVB(u)
	if err != nil || n != 3 {
		t.Fatalf("SwapOutVB = %d, %v", n, err)
	}
	if m.AllocatedRegions(u) != 0 {
		t.Fatal("regions survived swap out")
	}
	got := make([]byte, len(data))
	m.Load(addr.Make(u, 0), got)
	if !bytes.Equal(got, data) {
		t.Fatal("swapped VB data corrupted")
	}
}

func TestMemoryMappedFile(t *testing.T) {
	m := newTestMTL(t, Config{DelayedAlloc: true})
	u := mustEnable(t, m, addr.Size128KB, 1, prop.MappedFile)
	file := []byte("file contents: lorem ipsum dolor sit amet")
	if err := m.AttachFile(u, file); err != nil {
		t.Fatal(err)
	}

	// §3.4: an offset within the VB maps to the same offset in the file.
	got := make([]byte, 13)
	m.Load(addr.Make(u, 15), got)
	if !bytes.Equal(got, file[15:28]) {
		t.Fatalf("file read = %q", got)
	}

	// A timing access demand-loads the region (OS fault), not a zero line.
	ev, err := m.TranslateRead(addr.Make(u, 0))
	if err != nil {
		t.Fatal(err)
	}
	if ev.ZeroLine || !ev.OSFault {
		t.Fatalf("file access event = %+v", ev)
	}

	// Writes modify memory, and SyncFile pushes them to the file image.
	m.Store(addr.Make(u, 0), []byte("FILE"))
	out, err := m.SyncFile(u, uint64(len(file)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out[:4], []byte("FILE")) || !bytes.Equal(out[4:], file[4:]) {
		t.Fatalf("synced file = %q", out)
	}
}

func TestSyncFileOnNonFileVB(t *testing.T) {
	m := newTestMTL(t, Config{})
	u := mustEnable(t, m, addr.Size4KB, 1, 0)
	if _, err := m.SyncFile(u, 10); err == nil {
		t.Fatal("SyncFile on plain VB accepted")
	}
}
