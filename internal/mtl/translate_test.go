package mtl

import (
	"testing"

	"vbi/internal/addr"
	"vbi/internal/phys"
)

func TestTranslateColdMissThenTLBHit(t *testing.T) {
	m := newTestMTL(t, Config{}) // VBI-1: no delayed alloc
	u := mustEnable(t, m, addr.Size128KB, 1, 0)
	a := addr.Make(u, 0x2040)

	ev, err := m.TranslateRead(a)
	if err != nil {
		t.Fatal(err)
	}
	if ev.TLBL1Hit || ev.TLBL2Hit {
		t.Fatal("cold access hit the TLB")
	}
	if ev.VITAccess == phys.NoAddr {
		t.Fatal("cold access should read the VIT from memory")
	}
	if !ev.AllocatedRegion {
		t.Fatal("VBI-1 must allocate on first access")
	}
	if ev.ZeroLine {
		t.Fatal("VBI-1 never returns zero lines")
	}
	if ev.Phys == phys.NoAddr {
		t.Fatal("no physical address")
	}

	ev2, err := m.TranslateRead(a)
	if err != nil {
		t.Fatal(err)
	}
	if !ev2.TLBL1Hit {
		t.Fatal("second access missed the MTL TLB")
	}
	if ev2.Phys != ev.Phys {
		t.Fatalf("TLB hit translated to %v, walk gave %v", ev2.Phys, ev.Phys)
	}
}

func TestTranslateWalkLengthByClass(t *testing.T) {
	// §5.2/§4.5.2: smaller VBs take fewer memory accesses per TLB miss.
	cases := []struct {
		c        addr.SizeClass
		maxDepth int
	}{
		{addr.Size4KB, 0},   // direct: VIT entry suffices
		{addr.Size128KB, 1}, // single-level
		{addr.Size4MB, 1},
		{addr.Size128MB, 2},
		{addr.Size4GB, 3},
	}
	for i, c := range cases {
		m := newTestMTL(t, Config{})
		u := mustEnable(t, m, c.c, uint64(i+1), 0)
		a := addr.Make(u, 0)
		ev, err := m.TranslateRead(a)
		if err != nil {
			t.Fatal(err)
		}
		if len(ev.WalkAccesses) != c.maxDepth {
			t.Errorf("%v: %d walk accesses, want %d", c.c, len(ev.WalkAccesses), c.maxDepth)
		}
	}
}

func TestDelayedAllocZeroLine(t *testing.T) {
	m := newTestMTL(t, Config{DelayedAlloc: true}) // VBI-2
	u := mustEnable(t, m, addr.Size4MB, 1, 0)
	a := addr.Make(u, 0x10000)

	// §5.1: a read of a never-written region returns a zero line without
	// allocating physical memory or walking any structure.
	ev, err := m.TranslateRead(a)
	if err != nil {
		t.Fatal(err)
	}
	if !ev.ZeroLine {
		t.Fatal("expected zero line")
	}
	if ev.AllocatedRegion || len(ev.WalkAccesses) != 0 {
		t.Fatalf("zero line performed work: %+v", ev)
	}
	if m.AllocatedRegions(u) != 0 {
		t.Fatal("zero line allocated memory")
	}

	// The dirty eviction is the allocation trigger.
	ev, err = m.TranslateWriteback(a)
	if err != nil {
		t.Fatal(err)
	}
	if !ev.AllocatedRegion || ev.ZeroLine {
		t.Fatalf("writeback event = %+v", ev)
	}
	if m.AllocatedRegions(u) != 1 {
		t.Fatalf("allocated regions = %d, want 1", m.AllocatedRegions(u))
	}

	// Reads of the now-allocated region go to memory normally.
	ev, err = m.TranslateRead(addr.Make(u, 0x10040))
	if err != nil {
		t.Fatal(err)
	}
	if ev.ZeroLine {
		t.Fatal("allocated region still served as zero line")
	}
}

func TestDelayedAllocOnlyEvictedRegion(t *testing.T) {
	m := newTestMTL(t, Config{DelayedAlloc: true})
	u := mustEnable(t, m, addr.Size4MB, 1, 0)
	// §5.1: VBI allocates only the 4 KB region containing the evicted
	// line.
	if _, err := m.TranslateWriteback(addr.Make(u, 3*RegionSize+64)); err != nil {
		t.Fatal(err)
	}
	if m.AllocatedRegions(u) != 1 {
		t.Fatalf("allocated regions = %d, want exactly 1", m.AllocatedRegions(u))
	}
	// Other regions still read as zero lines.
	ev, _ := m.TranslateRead(addr.Make(u, 2*RegionSize))
	if !ev.ZeroLine {
		t.Fatal("neighbouring region lost zero-line service")
	}
}

func TestEarlyReservationDirectMaps(t *testing.T) {
	m := newTestMTL(t, Config{DelayedAlloc: true, EarlyReservation: true}) // VBI-Full
	u := mustEnable(t, m, addr.Size4MB, 1, 0)

	ev, err := m.TranslateWriteback(addr.Make(u, 0))
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind(u) != TransDirect {
		t.Fatalf("kind = %v, want direct", m.Kind(u))
	}
	if len(ev.WalkAccesses) != 0 {
		t.Fatal("direct-mapped VB performed walk accesses")
	}
	base := ev.Phys

	// A distant region translates contiguously off the same base via the
	// single whole-VB TLB entry.
	ev2, err := m.TranslateWriteback(addr.Make(u, 2<<20))
	if err != nil {
		t.Fatal(err)
	}
	if !ev2.TLBL1Hit {
		t.Fatal("whole-VB TLB entry did not cover the far region")
	}
	if ev2.Phys != base+2<<20 {
		t.Fatalf("phys = %v, want %v", ev2.Phys, base+2<<20)
	}
	if m.Stats.Reservations != 1 {
		t.Fatalf("reservations = %d", m.Stats.Reservations)
	}
}

func TestEarlyReservationKeepsZeroLines(t *testing.T) {
	// §7.2.2: VBI-Full retains the benefits of VBI-2 — zero lines must
	// work even after the whole-VB TLB entry is resident.
	m := newTestMTL(t, Config{DelayedAlloc: true, EarlyReservation: true})
	u := mustEnable(t, m, addr.Size4MB, 1, 0)
	m.TranslateWriteback(addr.Make(u, 0)) // establish direct mapping + TLB entry

	ev, err := m.TranslateRead(addr.Make(u, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	if !ev.ZeroLine {
		t.Fatal("unallocated region of direct VB not served as zero line")
	}
}

func TestEarlyReservationFallbackWhenNoContiguity(t *testing.T) {
	// A 4 MB pool cannot hold a 4 MB reservation once fragmented; enable a
	// small VB first to consume space, then the big VB must fall back.
	m := NewSimple(Config{DelayedAlloc: true, EarlyReservation: true}, 4<<20)
	small := mustEnable(t, m, addr.Size128KB, 1, 0)
	if _, err := m.TranslateWriteback(addr.Make(small, 0)); err != nil {
		t.Fatal(err)
	}
	big := mustEnable(t, m, addr.Size4MB, 1, 0)
	if _, err := m.TranslateWriteback(addr.Make(big, 0)); err != nil {
		t.Fatal(err)
	}
	if m.Kind(big) == TransDirect {
		t.Fatal("4 MB VB direct-mapped despite insufficient contiguity")
	}
	if m.Kind(big) != TransSingle {
		t.Fatalf("fallback kind = %v, want single-level", m.Kind(big))
	}
}

func TestDirectDowngradeOnStolenRegion(t *testing.T) {
	// VB X reserves the whole pool; VB Y's allocations steal from the
	// reservation (buddy priority 3); X's next region allocation finds its
	// slot stolen and X downgrades to page granularity (§5.3).
	m := NewSimple(Config{DelayedAlloc: true, EarlyReservation: true}, 4<<20)
	x := mustEnable(t, m, addr.Size4MB, 1, 0)
	if _, err := m.TranslateWriteback(addr.Make(x, 0)); err != nil {
		t.Fatal(err)
	}
	if m.Kind(x) != TransDirect {
		t.Fatal("X not direct-mapped")
	}
	// Y-VBs fill half the pool; every one of their allocations steals from
	// X's reservation (buddy priority 3), scattering stolen regions
	// through X's address range.
	for i := uint64(2); i < 2+16; i++ { // 16 × 128 KB = 2 MB
		y := mustEnable(t, m, addr.Size128KB, i, 0)
		for off := uint64(0); off < 128<<10; off += RegionSize {
			if _, err := m.TranslateWriteback(addr.Make(y, off)); err != nil {
				t.Fatalf("unexpected exhaustion filling Y: %v", err)
			}
		}
	}
	// Now X marches through its regions; the first touch of a stolen slot
	// triggers the downgrade.
	stolen := false
	for off := uint64(RegionSize); off < 4<<20; off += RegionSize {
		if _, err := m.TranslateWriteback(addr.Make(x, off)); err != nil {
			break // pool genuinely exhausted
		}
		if m.Kind(x) != TransDirect {
			stolen = true
			break
		}
	}
	if !stolen {
		t.Fatal("X never lost its direct mapping despite full-pool pressure")
	}
	if m.Stats.Downgrades == 0 {
		t.Fatal("downgrade not counted")
	}
}

func TestVITCacheHitAvoidsMemoryAccess(t *testing.T) {
	m := newTestMTL(t, Config{DelayedAlloc: true})
	u := mustEnable(t, m, addr.Size4MB, 1, 0)
	// Zero-line reads never insert TLB entries, so every access consults
	// the VIT; the first misses the VIT cache, later ones hit.
	ev1, _ := m.TranslateRead(addr.Make(u, 0))
	if ev1.VITCacheHit || ev1.VITAccess == phys.NoAddr {
		t.Fatalf("first access should miss VIT cache: %+v", ev1)
	}
	ev2, _ := m.TranslateRead(addr.Make(u, RegionSize))
	if !ev2.VITCacheHit || ev2.VITAccess != phys.NoAddr {
		t.Fatalf("second access should hit VIT cache: %+v", ev2)
	}
}

func TestTranslateUnknownVB(t *testing.T) {
	m := newTestMTL(t, Config{})
	if _, err := m.TranslateRead(addr.Make(addr.MakeVBUID(addr.Size4KB, 99), 0)); err == nil {
		t.Fatal("translate of disabled VB succeeded")
	}
}

func TestTLBL2PromotionPath(t *testing.T) {
	m := newTestMTL(t, Config{})
	u := mustEnable(t, m, addr.Size4MB, 1, 0)
	// Touch enough distinct pages to overflow the 64-entry L1 but not the
	// 512-entry L2.
	for i := uint64(0); i < 128; i++ {
		if _, err := m.TranslateRead(addr.Make(u, i*RegionSize)); err != nil {
			t.Fatal(err)
		}
	}
	// Page 0 fell out of L1 but should still be in L2.
	ev, err := m.TranslateRead(addr.Make(u, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !ev.TLBL2Hit {
		t.Fatalf("expected L2 TLB hit, got %+v", ev)
	}
}

func TestStatsAccumulate(t *testing.T) {
	m := newTestMTL(t, Config{DelayedAlloc: true})
	u := mustEnable(t, m, addr.Size4MB, 1, 0)
	m.TranslateRead(addr.Make(u, 0))
	m.TranslateWriteback(addr.Make(u, 0))
	m.TranslateRead(addr.Make(u, 0))
	s := m.Stats
	if s.Translations != 3 || s.ZeroLines != 1 || s.RegionAllocs != 1 {
		t.Fatalf("stats = %+v", s)
	}
}
