package mtl

import (
	"bytes"
	"testing"

	"vbi/internal/addr"
)

func newHeteroMTL(t *testing.T) *MTL {
	t.Helper()
	zones := NewZones(map[string]uint64{"DRAM": 16 << 20, "PCM": 48 << 20}, []string{"DRAM", "PCM"})
	m := New(Config{DelayedAlloc: true}, zones)
	m.Data = nil
	return m
}

func TestAccessCountsOrdering(t *testing.T) {
	m := newHeteroMTL(t)
	hot := mustEnable(t, m, addr.Size128KB, 1, 0)
	cold := mustEnable(t, m, addr.Size128KB, 2, 0)
	for i := 0; i < 50; i++ {
		m.TranslateWriteback(addr.Make(hot, uint64(i%4)*RegionSize))
	}
	m.TranslateWriteback(addr.Make(cold, 0))

	counts := m.AccessCounts()
	if len(counts) != 2 {
		t.Fatalf("count entries = %d", len(counts))
	}
	if counts[0].VB != hot {
		t.Fatalf("hottest VB = %v, want %v", counts[0].VB, hot)
	}
	if counts[0].Accesses != 50 || counts[1].Accesses != 1 {
		t.Fatalf("accesses = %d/%d", counts[0].Accesses, counts[1].Accesses)
	}
}

func TestResetAccessCountsDecays(t *testing.T) {
	m := newHeteroMTL(t)
	u := mustEnable(t, m, addr.Size128KB, 1, 0)
	for i := 0; i < 10; i++ {
		m.TranslateWriteback(addr.Make(u, 0))
	}
	m.ResetAccessCounts()
	counts := m.AccessCounts()
	if counts[0].Accesses != 5 {
		t.Fatalf("decayed count = %d, want 5", counts[0].Accesses)
	}
}

func TestMigrateVB(t *testing.T) {
	m := newHeteroMTL(t)
	m.Data = newDataStore()
	u := mustEnable(t, m, addr.Size128KB, 1, 0)
	if err := m.SetHomeZone(u, 1); err != nil { // start in PCM
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xAB}, RegionSize)
	for r := uint64(0); r < 4; r++ {
		if err := m.Store(addr.Make(u, r*RegionSize), payload); err != nil {
			t.Fatal(err)
		}
	}
	zb, _ := m.ZoneBytes(u)
	if zb[1] != 4*RegionSize || zb[0] != 0 {
		t.Fatalf("initial placement = %v", zb)
	}

	moved, err := m.MigrateVB(u, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Four data regions plus the translation-structure node follow the VB.
	if moved != 5*RegionSize {
		t.Fatalf("moved = %d, want 5 frames (4 regions + 1 table node)", moved)
	}
	zb, _ = m.ZoneBytes(u)
	if zb[0] != 4*RegionSize || zb[1] != 0 {
		t.Fatalf("post-migration placement = %v", zb)
	}
	// Data survives the move.
	got := make([]byte, RegionSize)
	m.Load(addr.Make(u, 2*RegionSize), got)
	if !bytes.Equal(got, payload) {
		t.Fatal("migration corrupted data")
	}
	// Future allocations land in the new home zone.
	m.Store(addr.Make(u, 5*RegionSize), []byte{1})
	zb, _ = m.ZoneBytes(u)
	if zb[1] != 0 {
		t.Fatalf("new allocation went to old zone: %v", zb)
	}
	if m.Stats.MigratedBytes != 5*RegionSize {
		t.Fatalf("MigratedBytes = %d", m.Stats.MigratedBytes)
	}
}

func TestMigrateSkipsSharedRegions(t *testing.T) {
	m := newHeteroMTL(t)
	m.Data = newDataStore()
	src := mustEnable(t, m, addr.Size128KB, 1, 0)
	dst := mustEnable(t, m, addr.Size128KB, 2, 0)
	m.SetHomeZone(src, 1)
	m.Store(addr.Make(src, 0), []byte("shared"))
	m.Clone(src, dst)
	moved, err := m.MigrateVB(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 0 {
		t.Fatalf("moved %d bytes of COW-shared data", moved)
	}
}

func TestMigrateStopsWhenZoneFull(t *testing.T) {
	zones := NewZones(map[string]uint64{"DRAM": 8 << 12, "PCM": 16 << 20}, []string{"DRAM", "PCM"})
	m := New(Config{}, zones)
	u := mustEnable(t, m, addr.Size4MB, 1, 0)
	m.SetHomeZone(u, 1)
	// Allocate 16 regions in PCM; DRAM only fits 8 frames.
	for r := uint64(0); r < 16; r++ {
		if _, err := m.TranslateWriteback(addr.Make(u, r*RegionSize)); err != nil {
			t.Fatal(err)
		}
	}
	moved, err := m.MigrateVB(u, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The single-level table node also lives somewhere; at most 8 frames
	// of DRAM exist, so strictly fewer than 16 regions moved.
	if moved == 0 || moved >= 16*RegionSize {
		t.Fatalf("moved = %d", moved)
	}
}

func TestMigrateDirectReservedDowngrades(t *testing.T) {
	zones := NewZones(map[string]uint64{"DRAM": 16 << 20, "PCM": 16 << 20}, []string{"DRAM", "PCM"})
	m := New(Config{DelayedAlloc: true, EarlyReservation: true}, zones)
	u := mustEnable(t, m, addr.Size128KB, 1, 0)
	m.TranslateWriteback(addr.Make(u, 0))
	if m.Kind(u) != TransDirect {
		t.Fatal("not direct")
	}
	if _, err := m.MigrateVB(u, 1); err != nil {
		t.Fatal(err)
	}
	if m.Kind(u) == TransDirect {
		t.Fatal("reserved direct VB migrated without downgrade")
	}
	zb, _ := m.ZoneBytes(u)
	if zb[1] == 0 {
		t.Fatalf("nothing moved: %v", zb)
	}
}

func TestSetHomeZoneValidation(t *testing.T) {
	m := newHeteroMTL(t)
	u := mustEnable(t, m, addr.Size4KB, 1, 0)
	if err := m.SetHomeZone(u, 5); err == nil {
		t.Fatal("bad zone accepted")
	}
	if err := m.SetHomeZone(addr.MakeVBUID(addr.Size4KB, 77), 0); err == nil {
		t.Fatal("unknown VB accepted")
	}
}
