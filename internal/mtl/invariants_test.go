package mtl

import (
	"math/rand"
	"testing"

	"vbi/internal/addr"
	"vbi/internal/prop"
)

// TestRandomizedInvariants drives a random lifecycle workload through a
// two-zone MTL (with delayed allocation and early reservation enabled) and
// checks CheckInvariants throughout — the broadest property test of the
// reference implementation.
func TestRandomizedInvariants(t *testing.T) {
	for _, cfg := range []Config{
		{},
		{DelayedAlloc: true},
		{DelayedAlloc: true, EarlyReservation: true},
	} {
		cfg := cfg
		t.Run(cfgName(cfg), func(t *testing.T) {
			rng := rand.New(rand.NewSource(99))
			zones := NewZones(map[string]uint64{"fast": 8 << 20, "slow": 24 << 20},
				[]string{"fast", "slow"})
			m := New(cfg, zones)
			m.Data = newDataStore()

			classes := []addr.SizeClass{addr.Size4KB, addr.Size128KB, addr.Size4MB}
			var live []addr.VBUID
			nextID := uint64(1)

			for step := 0; step < 1200; step++ {
				switch op := rng.Intn(12); {
				case op < 3: // enable
					u := addr.MakeVBUID(classes[rng.Intn(len(classes))], nextID)
					nextID++
					if err := m.Enable(u, prop.Props(rng.Intn(8))); err == nil {
						live = append(live, u)
					}
				case op < 6: // store somewhere
					if len(live) == 0 {
						continue
					}
					u := live[rng.Intn(len(live))]
					off := rng.Uint64() % u.Size()
					if off+4 > u.Size() {
						off = 0
					}
					_ = m.Store(addr.Make(u, off), []byte{1, 2, 3, 4}) // OOM tolerated
				case op < 8: // timing-path traffic
					if len(live) == 0 {
						continue
					}
					u := live[rng.Intn(len(live))]
					a := addr.Make(u, rng.Uint64()%u.Size())
					if rng.Intn(2) == 0 {
						_, _ = m.TranslateRead(a)
					} else {
						_, _ = m.TranslateWriteback(a)
					}
				case op < 9: // clone
					if len(live) == 0 {
						continue
					}
					src := live[rng.Intn(len(live))]
					dst := addr.MakeVBUID(src.Class(), nextID)
					nextID++
					if err := m.Enable(dst, 0); err == nil {
						if err := m.Clone(src, dst); err != nil {
							m.Disable(dst)
						} else {
							live = append(live, dst)
						}
					}
				case op < 10: // swap out a VB
					if len(live) == 0 {
						continue
					}
					_, _ = m.SwapOutVB(live[rng.Intn(len(live))])
				case op < 11: // promote or migrate
					if len(live) == 0 {
						continue
					}
					if rng.Intn(2) == 0 {
						_, _ = m.MigrateVB(live[rng.Intn(len(live))], rng.Intn(2))
						continue
					}
					i := rng.Intn(len(live))
					small := live[i]
					if small.Class() >= addr.Size4MB {
						continue
					}
					large := addr.MakeVBUID(small.Class()+1, nextID)
					nextID++
					if err := m.Enable(large, 0); err != nil {
						continue
					}
					if err := m.Promote(small, large); err != nil {
						m.Disable(large)
						continue
					}
					m.Disable(small)
					live[i] = large
				default: // disable
					if len(live) == 0 {
						continue
					}
					i := rng.Intn(len(live))
					if err := m.Disable(live[i]); err != nil {
						t.Fatalf("step %d disable: %v", step, err)
					}
					live[i] = live[len(live)-1]
					live = live[:len(live)-1]
				}
				if step%50 == 0 {
					if err := m.CheckInvariants(); err != nil {
						t.Fatalf("step %d: %v", step, err)
					}
				}
			}
			// Teardown: everything must come back.
			for _, u := range live {
				if err := m.Disable(u); err != nil {
					t.Fatal(err)
				}
			}
			if err := m.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			var free, capTotal uint64
			for _, z := range m.Zones() {
				free += z.Buddy.FreeBytes()
				capTotal += z.Buddy.Capacity()
			}
			if free != capTotal {
				t.Fatalf("leak: free %d != capacity %d", free, capTotal)
			}
		})
	}
}

func cfgName(c Config) string {
	switch {
	case c.EarlyReservation:
		return "full"
	case c.DelayedAlloc:
		return "delayed"
	}
	return "base"
}

func TestCheckInvariantsOnHealthyMTL(t *testing.T) {
	m := newTestMTL(t, Config{DelayedAlloc: true, EarlyReservation: true})
	u := mustEnable(t, m, addr.Size4MB, 1, 0)
	m.Store(addr.Make(u, 0), []byte("x"))
	m.TranslateWriteback(addr.Make(u, 1<<20))
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
