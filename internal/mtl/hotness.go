package mtl

import (
	"fmt"
	"sort"

	"vbi/internal/addr"
	"vbi/internal/phys"
)

// This file implements the MTL support for heterogeneous main memories
// (§7.3): per-VB access counters (the fine-grained runtime information the
// hardware is privy to, §2) and VB migration between physical zones, which
// the placement policies of the PCM–DRAM and TL-DRAM systems drive.

// VBCount reports one VB's memory-level access activity since the last
// reset.
type VBCount struct {
	VB       addr.VBUID
	Accesses uint64 // LLC misses + writebacks observed by the MTL
	Writes   uint64
	Bytes    uint64 // allocated bytes
	Zone     int    // current home zone
}

// AccessCounts returns every enabled VB's counters, hottest first (by
// accesses per allocated byte, then raw accesses, then VBUID for
// determinism).
func (m *MTL) AccessCounts() []VBCount {
	out := make([]VBCount, 0, len(m.vbs))
	for u, vb := range m.vbs {
		out = append(out, VBCount{
			VB:       u,
			Accesses: vb.accessCount,
			Writes:   vb.writeCount,
			Bytes:    uint64(vb.regions.mappedN) * RegionSize,
			Zone:     vb.zone,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		di, dj := out[i].density(), out[j].density()
		if di != dj {
			return di > dj
		}
		if out[i].Accesses != out[j].Accesses {
			return out[i].Accesses > out[j].Accesses
		}
		return out[i].VB < out[j].VB
	})
	return out
}

// density is accesses per allocated page (zero-byte VBs sort last).
func (c VBCount) density() float64 {
	if c.Bytes == 0 {
		return -1
	}
	return float64(c.Accesses) / float64(c.Bytes/RegionSize)
}

// ResetAccessCounts halves every counter (exponential decay keeps
// epoch-to-epoch history without letting stale phases dominate).
func (m *MTL) ResetAccessCounts() {
	for _, vb := range m.vbs {
		vb.accessCount /= 2
		vb.writeCount /= 2
	}
}

// HomeZone returns the VB's current home zone index.
func (m *MTL) HomeZone(u addr.VBUID) (int, error) {
	vb, err := m.vb(u)
	if err != nil {
		return 0, err
	}
	return vb.zone, nil
}

// SetHomeZone changes where future allocations of the VB land without
// moving existing data (initial-placement policies use it before first
// touch).
func (m *MTL) SetHomeZone(u addr.VBUID, zone int) error {
	vb, err := m.vb(u)
	if err != nil {
		return err
	}
	if zone < 0 || zone >= len(m.zones) {
		return fmt.Errorf("mtl: zone %d out of range", zone)
	}
	vb.zone = zone
	return nil
}

// MigrateVB moves the VB's allocated regions into the target zone,
// returning the number of bytes actually moved. Regions already in the
// target, and regions shared copy-on-write, stay put. Migration requires a
// page-granularity VB (the heterogeneous-memory configurations run the MTL
// without early reservation); a reserved direct-mapped VB is first
// downgraded. If the target zone fills up mid-way the move stops early.
func (m *MTL) MigrateVB(u addr.VBUID, zone int) (uint64, error) {
	vb, err := m.vb(u)
	if err != nil {
		return 0, err
	}
	if zone < 0 || zone >= len(m.zones) {
		return 0, fmt.Errorf("mtl: zone %d out of range", zone)
	}
	if (vb.kind == TransDirect && vb.reservedOrder >= 0) || vb.blockShift > RegionShift {
		if err := m.downgradeToPages(vb); err != nil {
			return 0, err
		}
	}
	vb.zone = zone
	z := m.zones[zone]
	var moved uint64
	for region, end := uint64(0), vb.regions.limit(); region < end; region++ {
		frame, ok := vb.regions.frame(region)
		if !ok || m.ZoneOf(frame) == zone || m.frameRefs[frame] > 1 {
			continue
		}
		local, ok := z.Buddy.Alloc(u, 0)
		if !ok {
			break // target zone full
		}
		newFrame := z.Base + local
		if m.Data != nil {
			m.Data.CopyRange(uint64(newFrame), uint64(frame), RegionSize)
			m.Data.ZeroRange(uint64(frame), RegionSize)
		}
		vb.regions.setFrame(region, newFrame)
		switch vb.kind {
		case TransDirect:
			// An unreserved direct VB (4 KB class): move its base.
			vb.directBase = newFrame
		default:
			m.mapRegionOrPanic(vb, region, newFrame)
		}
		m.freeFrame(frame, 0)
		m.InvalidateTLBRange(addr.Make(u, region<<RegionShift), RegionSize)
		moved += RegionSize
	}
	// The translation structure follows its VB: otherwise every walk of a
	// migrated VB would still pay the old zone's latency.
	if moved > 0 && vb.table != nil {
		if n, err := m.rebuildTable(vb); err == nil {
			moved += n
		}
	}
	m.Stats.MigratedBytes += moved
	return moved, nil
}

// rebuildTable reallocates the VB's translation structure in its (new)
// home zone, remapping the existing regions. Returns the bytes moved.
func (m *MTL) rebuildTable(vb *vbState) (uint64, error) {
	if vb.blockShift != RegionShift {
		return 0, fmt.Errorf("mtl: rebuildTable on chunk-mapped VB")
	}
	old := vb.table
	t, err := m.newRadixTable(vb, vb.id.Class())
	if err != nil {
		return 0, err
	}
	vb.table = t
	for region, end := uint64(0), vb.regions.limit(); region < end; region++ {
		frame, ok := vb.regions.frame(region)
		if !ok {
			continue
		}
		if err := m.mapRegion(vb, region, frame); err != nil {
			vb.table = old
			return 0, err
		}
	}
	var moved uint64
	for _, n := range old.nodes {
		m.freeFrame(n.base, n.order)
		moved += phys.OrderBytes(n.order)
	}
	return moved, nil
}

// ZoneBytes returns the allocated bytes each zone currently holds for the
// VB (experiments verify placement with it).
func (m *MTL) ZoneBytes(u addr.VBUID) ([]uint64, error) {
	vb, err := m.vb(u)
	if err != nil {
		return nil, err
	}
	out := make([]uint64, len(m.zones))
	for region, end := uint64(0), vb.regions.limit(); region < end; region++ {
		if frame, ok := vb.regions.frame(region); ok {
			if zi := m.ZoneOf(frame); zi >= 0 {
				out[zi] += RegionSize
			}
		}
	}
	return out, nil
}

// frameForTest exposes a region's frame for white-box tests.
func (m *MTL) frameForTest(u addr.VBUID, region uint64) (phys.Addr, bool) {
	vb, ok := m.vbs[u]
	if !ok {
		return phys.NoAddr, false
	}
	return vb.regions.frame(region)
}
