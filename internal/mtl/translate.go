package mtl

import (
	"fmt"

	"vbi/internal/addr"
	"vbi/internal/phys"
	"vbi/internal/tlb"
)

// Event reports everything the timing model needs to charge one MTL
// translation request (issued at the LLC-miss boundary, §4.2.3, in parallel
// with the LLC lookup).
type Event struct {
	// Phys is the translated physical address (valid unless ZeroLine).
	Phys phys.Addr
	// ZeroLine is set when the access hit a never-allocated region under
	// delayed allocation: the MTL returns a zero line with no DRAM access
	// and no translation-structure walk (§5.1).
	ZeroLine bool
	// TLBL1Hit / TLBL2Hit report where the MTL TLB resolved the request.
	TLBL1Hit bool
	TLBL2Hit bool
	// VITCacheHit is set when the VB's VIT entry was cached on chip.
	VITCacheHit bool
	// VITAccess is the physical address of the VIT entry read from memory
	// on a VIT-cache miss (phys.NoAddr when none).
	VITAccess phys.Addr
	// WalkAccesses lists translation-structure reads (DRAM accesses at the
	// memory controller). The slice aliases an MTL-owned scratch buffer
	// and is valid until the next translation request; callers charge the
	// accesses immediately and never retain the slice.
	WalkAccesses []phys.Addr
	// AllocatedRegion is set when this request allocated a 4 KB region.
	AllocatedRegion bool
	// OSFault is set when the OS was interrupted to load data from the
	// backing store (swap-in or memory-mapped file read, §5.1).
	OSFault bool
}

// lookupTLBs probes the two MTL TLB levels, promoting L2 hits into L1.
func (m *MTL) lookupTLBs(a uint64) (tlb.RangeEntry, int) {
	if e, ok := m.tlbL1.Lookup(a); ok {
		return e, 1
	}
	if e, ok := m.tlbL2.Lookup(a); ok {
		m.tlbL1.Insert(e)
		return e, 2
	}
	return tlb.RangeEntry{}, 0
}

// insertTLB caches a translation at the granularity of the VB's structure:
// direct-mapped VBs get one entry covering the whole VB (§5.3); table-
// mapped VBs get a 4 KB entry.
func (m *MTL) insertTLB(vb *vbState, region uint64, frame phys.Addr) {
	var e tlb.RangeEntry
	switch {
	case vb.kind == TransDirect:
		e = tlb.RangeEntry{
			Base: uint64(vb.id.Base()),
			Size: vb.id.Size(),
			Phys: uint64(vb.directBase),
		}
	case vb.blockShift > RegionShift:
		// Chunk-mapped VB (§5.3 fallback): one entry per reserved chunk.
		blockIdx := vb.blockIndex(region)
		e = tlb.RangeEntry{
			Base: uint64(vb.id.Base()) + blockIdx<<vb.blockShift,
			Size: 1 << vb.blockShift,
			Phys: uint64(vb.blocks[blockIdx]),
		}
	default:
		e = tlb.RangeEntry{
			Base: uint64(vb.id.Base()) + region<<RegionShift,
			Size: RegionSize,
			Phys: uint64(frame),
		}
	}
	m.tlbL1.Insert(e)
	m.tlbL2.Insert(e)
}

// readVIT models the VIT lookup: a VIT-cache hit costs nothing; a miss
// reads the entry from memory (one DRAM access at the controller).
func (m *MTL) readVIT(u addr.VBUID, ev *Event) {
	if _, ok := m.vitCache.Lookup(uint64(u)); ok {
		ev.VITCacheHit = true
		m.Stats.VITCacheHits++
		return
	}
	m.vitCache.Insert(uint64(u), 1)
	ev.VITAccess = VITEntryAddr(u)
	m.Stats.VITMemAccesses++
}

// TranslateRead handles an LLC read miss for VBI address a (§4.2.3 steps
// 7–9). With delayed allocation, reads of never-allocated regions return a
// zero line without allocating or walking (§5.1); without it (VBI-1) the
// region is allocated on first access.
func (m *MTL) TranslateRead(a addr.Addr) (Event, error) {
	return m.translate(a, false)
}

// TranslateWriteback handles a dirty-line eviction from the LLC: under
// delayed allocation this is the moment physical memory is allocated
// (§5.1). It also resolves copy-on-write sharing: a writeback to a frame
// shared with a clone triggers the lazy copy (§4.4).
func (m *MTL) TranslateWriteback(a addr.Addr) (Event, error) {
	return m.translate(a, true)
}

func (m *MTL) translate(a addr.Addr, forWrite bool) (Event, error) {
	m.Stats.Translations++
	ev := Event{VITAccess: phys.NoAddr}
	u, off := a.Split()
	vb, err := m.vb(u)
	if err != nil {
		return ev, err
	}
	vb.accessCount++
	if forWrite {
		vb.writeCount++
	}
	region := off >> RegionShift

	_, lvl := m.lookupTLBs(uint64(a))
	switch lvl {
	case 1:
		ev.TLBL1Hit = true
		m.Stats.TLBL1Hits++
	case 2:
		ev.TLBL2Hit = true
		m.Stats.TLBL2Hits++
	default:
		m.readVIT(u, &ev)
	}

	frame, allocated := vb.regionFrame(region)
	switch {
	case allocated:
		// Nothing to do: mapping exists. Charge the walk only on a TLB
		// miss.
		if lvl == 0 {
			ev.WalkAccesses = m.walkAccesses(vb, region)
			m.Stats.WalkAccesses += uint64(len(ev.WalkAccesses))
		}
	case vb.regions.isSwapped(region) || vb.isFile:
		// Swapped-out or file-backed region: the MTL allocates memory and
		// interrupts the OS to load the data (§5.1 case 1).
		if frame, err = m.allocateRegion(vb, region); err != nil {
			return ev, err
		}
		ev.AllocatedRegion = true
		ev.OSFault = true
		ev.WalkAccesses = m.walkAccesses(vb, region) // table update traffic
		m.Stats.WalkAccesses += uint64(len(ev.WalkAccesses))
	case !forWrite && m.cfg.DelayedAlloc:
		// Never-touched region under delayed allocation: zero line, no
		// allocation, no DRAM access (§5.1 case 2). The region-allocation
		// metadata lives with the MTL, so this works even when a
		// whole-VB direct-map TLB entry hit.
		ev.ZeroLine = true
		m.Stats.ZeroLines++
		return ev, nil
	default:
		// First touch without delayed allocation (VBI-1 allocates on
		// access), or the first dirty eviction into an unallocated region
		// (the delayed-allocation trigger).
		if frame, err = m.allocateRegion(vb, region); err != nil {
			return ev, err
		}
		ev.AllocatedRegion = true
		ev.WalkAccesses = m.walkAccesses(vb, region) // table update traffic
		m.Stats.WalkAccesses += uint64(len(ev.WalkAccesses))
	}

	if forWrite {
		if newFrame, copied, err := m.resolveCOW(vb, region); err != nil {
			return ev, err
		} else if copied {
			frame = newFrame
			ev.AllocatedRegion = true
		}
	}
	if lvl == 0 || ev.AllocatedRegion {
		m.insertTLB(vb, region, frame)
	}
	ev.Phys = frame + phys.Addr(off&(RegionSize-1))
	return ev, nil
}

// walkAccesses returns the structure-entry addresses hardware reads to
// translate the region (empty for direct-mapped VBs: the VIT entry itself
// holds the base). The result aliases m.walkBuf — see Event.WalkAccesses.
//
//vbi:hotpath
func (m *MTL) walkAccesses(vb *vbState, region uint64) []phys.Addr {
	if vb.kind == TransDirect || vb.table == nil {
		return nil
	}
	accesses, _, _ := vb.table.walk(vb.blockIndex(region), m.walkBuf[:0])
	m.walkBuf = accesses
	return accesses
}

// resolveCOW performs the lazy copy of a shared region on its first write:
// the writing VB gets a fresh frame with the shared contents, and the other
// sharers keep the original (§4.4, clone_vb).
func (m *MTL) resolveCOW(vb *vbState, region uint64) (phys.Addr, bool, error) {
	frame, ok := vb.regions.frame(region)
	if !ok {
		return phys.NoAddr, false, nil
	}
	if m.frameRefs[frame] <= 1 {
		return frame, false, nil
	}
	newFrame, err := m.allocRegionFrame(vb)
	if err != nil {
		return phys.NoAddr, false, err
	}
	if m.Data != nil {
		m.Data.CopyRange(uint64(newFrame), uint64(frame), RegionSize)
	}
	m.frameRefs[frame]--
	if m.frameRefs[frame] == 1 {
		delete(m.frameRefs, frame)
	}
	vb.regions.setFrame(region, newFrame)
	if vb.kind == TransDirect || vb.blockShift > RegionShift {
		// Direct- and chunk-mapped VBs cannot point individual region
		// frames elsewhere; downgrade to page granularity first
		// (downgradeToPages re-maps vb.regions, which already holds the
		// new frame).
		if err := m.downgradeToPages(vb); err != nil {
			return phys.NoAddr, false, err
		}
	} else {
		m.mapRegionOrPanic(vb, region, newFrame)
	}
	m.InvalidateTLBRange(addr.Make(vb.id, region<<RegionShift), RegionSize)
	m.Stats.COWCopies++
	return newFrame, true, nil
}

func (m *MTL) mapRegionOrPanic(vb *vbState, region uint64, frame phys.Addr) {
	if err := m.mapRegion(vb, region, frame); err != nil {
		panic(fmt.Sprintf("mtl: remap of existing region failed: %v", err))
	}
}
