package mtl

import (
	"fmt"

	"vbi/internal/addr"
	"vbi/internal/memdata"
	"vbi/internal/phys"
)

// TransKind identifies the VB's translation-structure type (§5.2).
type TransKind uint8

const (
	// TransNone means no physical memory has been allocated yet.
	TransNone TransKind = iota
	// TransDirect maps the whole VB to one contiguous physical region; a
	// single TLB entry covers the entire VB.
	TransDirect
	// TransSingle uses a one-level table of 4 KB mappings (128 KB and 4 MB
	// VBs); any region resolves with a single memory access.
	TransSingle
	// TransMulti uses a multi-level table whose depth grows with the size
	// class (2 levels for 128 MB up to 4 for 128 TB) — always at most the
	// 4 levels x86-64 pays for every page.
	TransMulti
)

func (k TransKind) String() string {
	switch k {
	case TransNone:
		return "none"
	case TransDirect:
		return "direct"
	case TransSingle:
		return "single-level"
	case TransMulti:
		return "multi-level"
	}
	return fmt.Sprintf("TransKind(%d)", uint8(k))
}

// tableIndexBits is the radix width of multi-level table nodes (512
// eight-byte entries fill a 4 KB node, as in x86-64).
const tableIndexBits = 9

// staticKind returns the translation kind the static policy of §5.2 picks
// for a size class: 4 KB VBs are direct-mapped (they are one region),
// 128 KB and 4 MB VBs use a single-level table, and larger VBs use a
// multi-level table.
func staticKind(c addr.SizeClass) TransKind {
	switch c {
	case addr.Size4KB:
		return TransDirect
	case addr.Size128KB, addr.Size4MB:
		return TransSingle
	default:
		return TransMulti
	}
}

// tableDepth returns the table depth for a size class: classes up to 4 MB
// use a single level (their whole region index fits one contiguous table,
// §5.2), larger classes use ceil((offsetBits-12)/9) radix levels.
func tableDepth(c addr.SizeClass) int {
	bits := int(c.OffsetBits()) - RegionShift
	if bits <= 0 {
		return 0
	}
	if staticKind(c) != TransMulti {
		return 1
	}
	return (bits + tableIndexBits - 1) / tableIndexBits
}

// nodeRef records an allocated table node for teardown.
type nodeRef struct {
	base  phys.Addr // global physical address
	order int
}

// radixTable is the in-memory translation structure backing TransSingle
// (depth 1, root possibly spanning several contiguous frames) and
// TransMulti (depth > 1, 4 KB nodes). Like the page tables of the
// conventional baselines it is functional: Map installs real mappings and
// Walk retraces the exact entry addresses hardware would read.
//
// Node contents are flat per-node arrays (entries[ni], parallel to
// nodes[ni]) rather than a map keyed by entry address: a walk descends by
// node index with plain array reads, and mapping a region during Prefill
// never rehashes. Interior entries hold the child's node index; leaf-level
// entries hold the mapped frame.
type radixTable struct {
	depth   int
	topBits uint // index bits consumed at the root level
	root    phys.Addr
	nodes   []nodeRef
	entries [][]uint64
}

// absentEntry marks a non-present table entry. It can never collide with a
// payload: child node indexes are small, and mapped frames are real
// physical addresses below the pool capacity.
const absentEntry = ^uint64(0)

// newNodeEntries returns an all-absent entry array of n slots.
func newNodeEntries(n int) []uint64 {
	e := make([]uint64, n)
	for i := range e {
		e[i] = absentEntry
	}
	return e
}

// newRadixTable builds the table skeleton for a size class, allocating the
// root from the VB's zone.
func (m *MTL) newRadixTable(vb *vbState, c addr.SizeClass) (*radixTable, error) {
	return m.newRadixTableBits(vb, uint(int(c.OffsetBits())-RegionShift), tableDepth(c))
}

// newRadixTableBits builds a table over totalBits of index with the given
// depth (depth 1 = single contiguous table, deeper = radix-9 nodes).
func (m *MTL) newRadixTableBits(vb *vbState, totalBits uint, depth int) (*radixTable, error) {
	t := &radixTable{depth: depth}
	var rootOrder int
	if depth <= 1 {
		t.depth = 1
		t.topBits = totalBits
		// Entries*8 bytes, contiguous: 4 MB VBs need 1024 entries = 2
		// frames (order 1); 128 KB VBs need 32 entries (order 0).
		bytes := (uint64(1) << totalBits) * 8
		if bytes < phys.FrameSize {
			bytes = phys.FrameSize
		}
		o, ok := phys.OrderFor(bytes)
		if !ok {
			return nil, fmt.Errorf("mtl: single-level table too large (%d index bits)", totalBits)
		}
		rootOrder = o
	} else {
		t.topBits = totalBits - uint(tableIndexBits*(depth-1))
		rootOrder = 0
	}
	root, err := m.allocNode(vb, rootOrder)
	if err != nil {
		return nil, err
	}
	t.root = root
	t.nodes = append(t.nodes, nodeRef{root, rootOrder})
	t.entries = append(t.entries, newNodeEntries(1<<t.topBits))
	return t, nil
}

// allocNode allocates a table node from the VB's home zone.
func (m *MTL) allocNode(vb *vbState, order int) (phys.Addr, error) {
	z := m.zones[vb.zone]
	local, ok := z.Buddy.Alloc(vb.id, order)
	if !ok {
		// Fall back to any zone with space.
		for _, alt := range m.zones {
			if local, ok = alt.Buddy.Alloc(vb.id, order); ok {
				return alt.Base + local, nil
			}
		}
		return phys.NoAddr, fmt.Errorf("mtl: out of memory for table node")
	}
	return z.Base + local, nil
}

// indexAt returns the radix index consumed at level k (0 = root).
func (t *radixTable) indexAt(region uint64, k int) uint64 {
	if k == 0 {
		if t.topBits == 0 {
			return 0
		}
		shift := uint(tableIndexBits * (t.depth - 1))
		return (region >> shift) & (1<<t.topBits - 1)
	}
	shift := uint(tableIndexBits * (t.depth - 1 - k))
	return (region >> shift) & (1<<tableIndexBits - 1)
}

func tableEntryAddr(node phys.Addr, idx uint64) phys.Addr {
	return node + phys.Addr(idx*8)
}

// walk appends the entry addresses a hardware walk of region touches to
// accesses (a caller-owned scratch buffer) and returns it along with the
// mapped frame and whether the region is mapped. A walk that finds a hole
// stops early (fewer accesses), mirroring a radix walker hitting a
// non-present entry.
//
//vbi:hotpath
func (t *radixTable) walk(region uint64, accesses []phys.Addr) ([]phys.Addr, phys.Addr, bool) {
	ni := 0
	for k := 0; k < t.depth; k++ {
		idx := t.indexAt(region, k)
		//vbi:allow hotalloc append into the caller's scratch buffer, bounded by the table depth (at most 4); the MTL retains the capacity across walks
		accesses = append(accesses, tableEntryAddr(t.nodes[ni].base, idx))
		val := t.entries[ni][idx]
		if val == absentEntry {
			return accesses, phys.NoAddr, false
		}
		if k == t.depth-1 {
			return accesses, phys.Addr(val), true
		}
		ni = int(val)
	}
	return accesses, phys.NoAddr, false
}

// mapRegion installs region -> frame, allocating intermediate nodes.
func (m *MTL) mapRegion(vb *vbState, region uint64, frame phys.Addr) error {
	t := vb.table
	ni := 0
	for k := 0; k < t.depth-1; k++ {
		idx := t.indexAt(region, k)
		val := t.entries[ni][idx]
		if val == absentEntry {
			n, err := m.allocNode(vb, 0)
			if err != nil {
				return err
			}
			val = uint64(len(t.nodes))
			t.nodes = append(t.nodes, nodeRef{n, 0})
			t.entries = append(t.entries, newNodeEntries(1<<tableIndexBits))
			t.entries[ni][idx] = val
		}
		ni = int(val)
	}
	t.entries[ni][t.indexAt(region, t.depth-1)] = uint64(frame)
	return nil
}

// unmapRegion clears the leaf entry for region (nodes are retained until
// the VB is disabled).
func (t *radixTable) unmapRegion(region uint64) {
	ni := 0
	for k := 0; k < t.depth-1; k++ {
		val := t.entries[ni][t.indexAt(region, k)]
		if val == absentEntry {
			return
		}
		ni = int(val)
	}
	t.entries[ni][t.indexAt(region, t.depth-1)] = absentEntry
}

// freeTable releases every node of the VB's table.
func (m *MTL) freeTable(vb *vbState) {
	for _, n := range vb.table.nodes {
		m.freeFrame(n.base, n.order)
	}
	vb.table = nil
}

// ensureStructure lazily builds the VB's translation structure at its
// first allocation, applying early reservation when configured (§5.3).
func (m *MTL) ensureStructure(vb *vbState) error {
	if vb.kind != TransNone {
		return nil
	}
	c := vb.id.Class()
	if m.cfg.EarlyReservation {
		// Try to reserve the whole VB contiguously in its home zone; on
		// success the VB is direct-mapped with a single TLB entry.
		if order, ok := phys.OrderFor(c.Bytes()); ok {
			z := m.zones[vb.zone]
			if local, ok := z.Buddy.Reserve(vb.id, order); ok {
				vb.kind = TransDirect
				vb.directBase = z.Base + local
				vb.reservedOrder = order
				m.Stats.Reservations++
				return nil
			}
		}
		// §5.3 fallback: not enough contiguity for the whole VB, so map
		// it sparsely in blocks of the largest size class that can still
		// be reserved contiguously — a single-level table whose entries
		// each cover one reserved chunk.
		if shift, ok := m.chunkedShift(vb); ok {
			t, err := m.newRadixTableBits(vb, c.OffsetBits()-shift, 1)
			if err == nil {
				vb.kind = TransSingle
				vb.table = t
				vb.blockShift = shift
				vb.blocks = make(map[uint64]phys.Addr)
				return nil
			}
		}
		// Otherwise fall through to the static page-granularity policy.
	}
	return m.staticStructure(vb)
}

// staticStructure builds the page-granularity structure of the static
// policy (§5.2), or a fixed 4-level table when the flexible-structure
// ablation is active.
func (m *MTL) staticStructure(vb *vbState) error {
	c := vb.id.Class()
	if m.cfg.UniformTables {
		t, err := m.newUniformTable(vb, c)
		if err != nil {
			return err
		}
		vb.kind = TransMulti
		vb.table = t
		return nil
	}
	switch staticKind(c) {
	case TransDirect: // 4 KB VB: one region, direct-mapped
		frame, err := m.allocRegionFrame(vb)
		if err != nil {
			return err
		}
		vb.kind = TransDirect
		vb.directBase = frame
		return nil
	case TransSingle:
		t, err := m.newRadixTable(vb, c)
		if err != nil {
			return err
		}
		vb.kind = TransSingle
		vb.table = t
		return nil
	default:
		t, err := m.newRadixTable(vb, c)
		if err != nil {
			return err
		}
		vb.kind = TransMulti
		vb.table = t
		return nil
	}
}

// newUniformTable builds a fixed 4-level table regardless of size class
// (upper levels of small VBs consume zero index bits, as x86-64 walks four
// levels no matter how little of the address space a process uses).
func (m *MTL) newUniformTable(vb *vbState, c addr.SizeClass) (*radixTable, error) {
	totalBits := uint(0)
	if int(c.OffsetBits()) > RegionShift {
		totalBits = c.OffsetBits() - RegionShift
	}
	t := &radixTable{depth: 4}
	if totalBits > 27 {
		t.topBits = totalBits - 27
	}
	root, err := m.allocNode(vb, 0)
	if err != nil {
		return nil, err
	}
	t.root = root
	t.nodes = append(t.nodes, nodeRef{root, 0})
	t.entries = append(t.entries, newNodeEntries(1<<t.topBits))
	return t, nil
}

// chunkedShift picks the block size (log2) for the chunked-reservation
// fallback: the largest contiguous chunk still reservable in the home
// zone, clamped so the single-level table keeps between 8 and 4096
// entries. ok is false when no useful chunking exists (block would be a
// single page, or the VB is too small to chunk).
func (m *MTL) chunkedShift(vb *vbState) (uint, bool) {
	c := vb.id.Class()
	offsetBits := c.OffsetBits()
	z := m.zones[vb.zone]
	maxOrder := z.Buddy.LargestUnreservedOrder()
	if maxOrder < 1 {
		return 0, false
	}
	shift := uint(RegionShift + maxOrder)
	if shift > offsetBits-3 {
		shift = offsetBits - 3 // at least 8 blocks, else direct would fit
	}
	if shift < offsetBits-12 {
		shift = offsetBits - 12 // at most 4096 table entries
	}
	if shift <= RegionShift || shift > uint(RegionShift+maxOrder) {
		return 0, false
	}
	return shift, true
}

// blockIndex returns the table index of the region under the VB's mapping
// granularity.
func (vb *vbState) blockIndex(region uint64) uint64 {
	if vb.blockShift > RegionShift {
		return region >> (vb.blockShift - RegionShift)
	}
	return region
}

// allocRegionFrame grabs one 4 KB frame for the VB from its home zone,
// falling back to other zones (the buddy's own three-level priority
// handles reservations within a zone).
func (m *MTL) allocRegionFrame(vb *vbState) (phys.Addr, error) {
	z := m.zones[vb.zone]
	if local, ok := z.Buddy.Alloc(vb.id, 0); ok {
		return z.Base + local, nil
	}
	for _, alt := range m.zones {
		if local, ok := alt.Buddy.Alloc(vb.id, 0); ok {
			return alt.Base + local, nil
		}
	}
	return phys.NoAddr, fmt.Errorf("mtl: out of physical memory")
}

// allocateRegion materializes the 4 KB region of the VB, zero-filling (or
// demand-loading) its data. For direct-mapped VBs the frame is the fixed
// slot inside the reservation; if that slot was stolen under memory
// pressure the VB loses its direct mapping and is downgraded to the static
// page-granularity structure (§5.3: a VB is direct-mapped only while all
// its memory maps to a single contiguous region).
func (m *MTL) allocateRegion(vb *vbState, region uint64) (phys.Addr, error) {
	if frame, ok := vb.regions.frame(region); ok {
		return frame, nil
	}
	if err := m.ensureStructure(vb); err != nil {
		return phys.NoAddr, err
	}
	var frame phys.Addr
	switch vb.kind {
	case TransDirect:
		want := vb.directBase + phys.Addr(region<<RegionShift)
		if vb.reservedOrder >= 0 {
			z := m.zones[m.ZoneOf(vb.directBase)]
			if z.Buddy.AllocAt(vb.id, want-z.Base, 0) {
				frame = want
				break
			}
			// Reservation slot stolen: downgrade to page granularity.
			if err := m.downgradeDirect(vb); err != nil {
				return phys.NoAddr, err
			}
			f, err := m.allocRegionFrame(vb)
			if err != nil {
				return phys.NoAddr, err
			}
			if err := m.mapRegion(vb, region, f); err != nil {
				return phys.NoAddr, err
			}
			frame = f
			break
		}
		// 4 KB VB: region 0 is the direct base itself (allocated by
		// ensureStructure); any other region is out of range.
		if region != 0 {
			return phys.NoAddr, fmt.Errorf("mtl: region %d out of range for 4 KB VB", region)
		}
		frame = vb.directBase
	case TransSingle, TransMulti:
		if vb.blockShift > RegionShift {
			f, finalized, err := m.allocChunkedRegion(vb, region)
			if err != nil {
				return phys.NoAddr, err
			}
			if finalized {
				// A downgrade re-entered allocateRegion, which completed
				// the bookkeeping already.
				return f, nil
			}
			frame = f
			break
		}
		f, err := m.allocRegionFrame(vb)
		if err != nil {
			return phys.NoAddr, err
		}
		if err := m.mapRegion(vb, region, f); err != nil {
			return phys.NoAddr, err
		}
		frame = f
	default:
		return phys.NoAddr, fmt.Errorf("mtl: %v has no structure", vb.id)
	}
	vb.regions.setFrame(region, frame)
	m.Stats.RegionAllocs++
	m.fillFreshRegion(vb, region, frame)
	return frame, nil
}

// allocChunkedRegion materializes a region of a chunk-mapped VB (§5.3
// fallback): the containing block is reserved contiguously on first touch,
// and the region is carved at its fixed slot inside the chunk. Losing
// either (chunk reservation impossible, or the slot stolen) downgrades the
// VB to page granularity.
func (m *MTL) allocChunkedRegion(vb *vbState, region uint64) (frame phys.Addr, finalized bool, err error) {
	blockIdx := vb.blockIndex(region)
	chunkBase, ok := vb.blocks[blockIdx]
	if !ok {
		z := m.zones[vb.zone]
		order := int(vb.blockShift) - RegionShift
		local, reserved := z.Buddy.Reserve(vb.id, order)
		if !reserved {
			if err := m.downgradeToPages(vb); err != nil {
				return phys.NoAddr, false, err
			}
			f, err := m.allocateRegion(vb, region)
			return f, true, err
		}
		chunkBase = z.Base + local
		vb.blocks[blockIdx] = chunkBase
		if err := m.mapRegion(vb, blockIdx, chunkBase); err != nil {
			return phys.NoAddr, false, err
		}
		m.Stats.Reservations++
	}
	regionsPerBlock := uint64(1) << (vb.blockShift - RegionShift)
	want := chunkBase + phys.Addr((region-blockIdx*regionsPerBlock)<<RegionShift)
	z := m.zones[m.ZoneOf(chunkBase)]
	if z.Buddy.AllocAt(vb.id, want-z.Base, 0) {
		return want, false, nil
	}
	// Slot stolen under pressure: lose the chunked mapping.
	if err := m.downgradeToPages(vb); err != nil {
		return phys.NoAddr, false, err
	}
	f, err := m.allocateRegion(vb, region)
	return f, true, err
}

// downgradeDirect demotes a direct-mapped VB to page granularity.
func (m *MTL) downgradeDirect(vb *vbState) error { return m.downgradeToPages(vb) }

// downgradeToPages demotes a direct-mapped or chunk-mapped VB to the static
// page-granularity structure, re-mapping its already-allocated regions in
// place (they remain where they were, so no copying is needed) and
// releasing outstanding reservations.
func (m *MTL) downgradeToPages(vb *vbState) error {
	c := vb.id.Class()
	if vb.table != nil {
		m.freeTable(vb)
	}
	vb.blockShift = RegionShift
	vb.blocks = nil
	if m.cfg.UniformTables {
		t, err := m.newUniformTable(vb, c)
		if err != nil {
			return err
		}
		vb.table = t
		vb.kind = TransMulti
	} else {
		t, err := m.newRadixTable(vb, c)
		if err != nil {
			return err
		}
		vb.table = t
		vb.kind = staticKind(c)
		if vb.kind == TransDirect { // 4 KB class: re-point via a table
			vb.kind = TransSingle
		}
	}
	for region, end := uint64(0), vb.regions.limit(); region < end; region++ {
		frame, ok := vb.regions.frame(region)
		if !ok {
			continue
		}
		if err := m.mapRegion(vb, region, frame); err != nil {
			return err
		}
	}
	m.zones[vb.zone].Buddy.Unreserve(vb.id)
	vb.reservedOrder = -1
	vb.directBase = phys.NoAddr
	m.Stats.Downgrades++
	// Whole-VB / whole-chunk TLB entries are stale now.
	m.InvalidateTLBRange(vb.id.Base(), vb.id.Size())
	return nil
}

// fillFreshRegion initializes the data of a newly-allocated region: file
// contents for memory-mapped files, swapped-out bytes for regions coming
// back from the backing store, zeros otherwise.
func (m *MTL) fillFreshRegion(vb *vbState, region uint64, frame phys.Addr) {
	if m.Data == nil {
		if vb.regions.isSwapped(region) {
			vb.regions.clearSwapped(region)
			m.Stats.OSFaults++
		}
		return
	}
	vbiBase := uint64(vb.id.Base()) + region<<RegionShift
	switch {
	case vb.regions.isSwapped(region):
		copyFromStore(m.Data, m.swap, uint64(frame), vbiBase)
		vb.regions.clearSwapped(region)
		m.swap.ZeroRange(vbiBase, RegionSize)
		m.Stats.OSFaults++
	case vb.isFile:
		copyFromStore(m.Data, m.files, uint64(frame), vbiBase)
		m.Stats.OSFaults++
	default:
		m.Data.ZeroRange(uint64(frame), RegionSize)
	}
}

// copyFromStore copies one region from src (at srcAddr) into dst (dstAddr).
func copyFromStore(dst, src *memdata.Store, dstAddr, srcAddr uint64) {
	buf := make([]byte, RegionSize)
	src.Read(srcAddr, buf)
	dst.Write(dstAddr, buf)
}

// regionFrame returns the frame backing the region, consulting the direct
// mapping or the table, without allocating.
//
//vbi:hotpath
func (vb *vbState) regionFrame(region uint64) (phys.Addr, bool) {
	return vb.regions.frame(region)
}
