package mtl

import (
	"fmt"

	"vbi/internal/addr"
	"vbi/internal/phys"
)

// This file implements the MTL's functional data path. The timing
// simulator never carries data, but examples and the test suite exercise
// real loads and stores through the same mapping machinery to verify
// end-to-end semantics: zero-fill, copy-on-write cloning (§4.4), VB
// promotion (§4.4), swapping and memory-mapped files (§3.4).

// Load copies len(buf) bytes starting at VBI address a into buf,
// translating through the VB's structure. Never-written regions read as
// zeros; swapped-out regions read from the backing store without being
// swapped in; file-backed unallocated regions read through to the file.
func (m *MTL) Load(a addr.Addr, buf []byte) error {
	if m.Data == nil {
		return fmt.Errorf("mtl: no data store attached")
	}
	u, off := a.Split()
	vb, err := m.vb(u)
	if err != nil {
		return err
	}
	if off+uint64(len(buf)) > u.Size() {
		return fmt.Errorf("mtl: load of %d bytes at %v overruns VB", len(buf), a)
	}
	for done := 0; done < len(buf); {
		cur := off + uint64(done)
		region := cur >> RegionShift
		inRegion := cur & (RegionSize - 1)
		n := int(RegionSize - inRegion)
		if rem := len(buf) - done; n > rem {
			n = rem
		}
		chunk := buf[done : done+n]
		switch {
		case vb.regions.isSwapped(region):
			m.swap.Read(uint64(u.Base())+cur, chunk)
		default:
			if frame, ok := vb.regionFrame(region); ok {
				m.Data.Read(uint64(frame)+inRegion, chunk)
			} else if vb.isFile {
				m.files.Read(uint64(u.Base())+cur, chunk)
			} else {
				for i := range chunk {
					chunk[i] = 0
				}
			}
		}
		done += n
	}
	return nil
}

// Store writes data at VBI address a, allocating regions (and resolving
// copy-on-write sharing) as needed. Functionally this is the end state the
// timing path reaches after the dirty lines are eventually evicted.
func (m *MTL) Store(a addr.Addr, data []byte) error {
	if m.Data == nil {
		return fmt.Errorf("mtl: no data store attached")
	}
	u, off := a.Split()
	vb, err := m.vb(u)
	if err != nil {
		return err
	}
	if off+uint64(len(data)) > u.Size() {
		return fmt.Errorf("mtl: store of %d bytes at %v overruns VB", len(data), a)
	}
	for done := 0; done < len(data); {
		cur := off + uint64(done)
		region := cur >> RegionShift
		inRegion := cur & (RegionSize - 1)
		n := int(RegionSize - inRegion)
		if rem := len(data) - done; n > rem {
			n = rem
		}
		frame, err := m.allocateRegion(vb, region)
		if err != nil {
			return err
		}
		if newFrame, copied, err := m.resolveCOW(vb, region); err != nil {
			return err
		} else if copied {
			frame = newFrame
		}
		m.Data.Write(uint64(frame)+inRegion, data[done:done+n])
		done += n
	}
	return nil
}

// Clone implements clone_vb (§4.4): dst becomes a copy-on-write clone of
// src. Translation state is shared lazily: dst maps the same frames with
// elevated reference counts, and the first write to either side of a
// shared region triggers the copy. dst must be an enabled, empty VB of the
// same size class.
func (m *MTL) Clone(src, dst addr.VBUID) error {
	s, err := m.vb(src)
	if err != nil {
		return err
	}
	d, err := m.vb(dst)
	if err != nil {
		return err
	}
	if src.Class() != dst.Class() {
		return fmt.Errorf("mtl: clone across size classes (%v -> %v)", src, dst)
	}
	if d.regions.mappedN != 0 || d.kind != TransNone {
		return fmt.Errorf("mtl: clone destination %v not pristine", dst)
	}
	if s.regions.mappedN > 0 {
		// Build dst's page-granularity structure (even when src is
		// direct-mapped: the clone's frames start out scattered through
		// src's reservation, so dst cannot be direct).
		if err := m.ensurePageStructure(d); err != nil {
			return err
		}
		for region, end := uint64(0), s.regions.limit(); region < end; region++ {
			frame, ok := s.regions.frame(region)
			if !ok {
				continue
			}
			if err := m.mapRegion(d, region, frame); err != nil {
				return err
			}
			d.regions.setFrame(region, frame)
			if n, ok := m.frameRefs[frame]; ok {
				m.frameRefs[frame] = n + 1
			} else {
				m.frameRefs[frame] = 2
			}
		}
	}
	for region, end := uint64(0), s.regions.limit(); region < end; region++ {
		if s.regions.isSwapped(region) {
			d.regions.setSwapped(region)
		}
	}
	if s.regions.swappedN > 0 {
		m.swap.CopyRange(uint64(dst.Base()), uint64(src.Base()), src.Size())
	}
	if s.isFile {
		d.isFile = true
		m.files.CopyRange(uint64(dst.Base()), uint64(src.Base()), src.Size())
	}
	return nil
}

// ensurePageStructure builds a page-granularity translation structure for
// the VB, bypassing early reservation (used by Clone and Promote, whose
// frames are inherited rather than freshly placed).
func (m *MTL) ensurePageStructure(vb *vbState) error {
	if vb.kind == TransSingle || vb.kind == TransMulti {
		return nil
	}
	if vb.kind != TransNone {
		return fmt.Errorf("mtl: %v already structured as %v", vb.id, vb.kind)
	}
	c := vb.id.Class()
	if staticKind(c) == TransDirect {
		// 4 KB VB: a single region; represent as a depth-1 table so the
		// region can point anywhere.
		t, err := m.newRadixTable(vb, addr.Size128KB)
		if err != nil {
			return err
		}
		vb.kind = TransSingle
		vb.table = t
		return nil
	}
	t, err := m.newRadixTable(vb, c)
	if err != nil {
		return err
	}
	if staticKind(c) == TransSingle {
		vb.kind = TransSingle
	} else {
		vb.kind = TransMulti
	}
	vb.table = t
	return nil
}

// Promote implements promote_vb (§4.4): the translation information of the
// small VB is transferred to the (larger) VB so that the early portion of
// the large VB maps to the same physical memory. The caller is responsible
// for flushing the small VB's dirty cache lines first and for updating the
// CVT entry; the small VB is left empty, ready for disable_vb.
func (m *MTL) Promote(small, large addr.VBUID) error {
	s, err := m.vb(small)
	if err != nil {
		return err
	}
	l, err := m.vb(large)
	if err != nil {
		return err
	}
	if large.Class() <= small.Class() {
		return fmt.Errorf("mtl: promote target %v not larger than %v", large, small)
	}
	if l.regions.mappedN != 0 || l.kind != TransNone {
		return fmt.Errorf("mtl: promote destination %v not pristine", large)
	}
	if s.regions.mappedN > 0 || s.regions.swappedN > 0 {
		if err := m.ensurePageStructure(l); err != nil {
			return err
		}
	}
	for region, end := uint64(0), s.regions.limit(); region < end; region++ {
		frame, ok := s.regions.frame(region)
		if !ok {
			continue
		}
		if err := m.mapRegion(l, region, frame); err != nil {
			return err
		}
		l.regions.setFrame(region, frame)
	}
	// Ownership transferred: clear the source so its disable does not free
	// the frames.
	s.regions.clearFrames()
	if s.table != nil {
		m.freeTable(s)
		s.kind = TransNone
	}
	if s.kind == TransDirect {
		m.unreserveAll(s)
		s.kind = TransNone
	}
	for region, end := uint64(0), s.regions.limit(); region < end; region++ {
		if s.regions.isSwapped(region) {
			l.regions.setSwapped(region)
			s.regions.clearSwapped(region)
		}
	}
	m.swap.CopyRange(uint64(large.Base()), uint64(small.Base()), small.Size())
	m.swap.ZeroRange(uint64(small.Base()), small.Size())
	if s.isFile {
		l.isFile = true
		m.files.CopyRange(uint64(large.Base()), uint64(small.Base()), small.Size())
	}
	m.InvalidateTLBRange(small.Base(), small.Size())
	return nil
}

// Prefill materializes the first n bytes of the VB, modelling a process
// initializing a data structure before the measured region of execution
// (the paper's Pin traces start after warm-up, when startup writes have
// already allocated the live data).
func (m *MTL) Prefill(u addr.VBUID, n uint64) error {
	vb, err := m.vb(u)
	if err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	if n > u.Size() {
		n = u.Size()
	}
	for region := uint64(0); region <= (n-1)>>RegionShift; region++ {
		if _, err := m.allocateRegion(vb, region); err != nil {
			return err
		}
	}
	return nil
}

// SwapOutRegion moves one allocated region to the backing store (the
// physical-memory-capacity system calls of §3.4), freeing its frame.
// Shared (copy-on-write) regions are skipped, reported by the return.
func (m *MTL) SwapOutRegion(u addr.VBUID, region uint64) (bool, error) {
	vb, err := m.vb(u)
	if err != nil {
		return false, err
	}
	frame, ok := vb.regions.frame(region)
	if !ok {
		return false, nil
	}
	if m.frameRefs[frame] > 1 {
		return false, nil
	}
	vbiBase := uint64(u.Base()) + region<<RegionShift
	if m.Data != nil {
		copyFromStore(m.swap, m.Data, vbiBase, uint64(frame))
		m.Data.ZeroRange(uint64(frame), RegionSize)
	}
	vb.regions.delFrame(region)
	if vb.table != nil && vb.blockShift == RegionShift {
		// Chunk-mapped VBs keep the block entry: sibling regions still
		// live in the chunk, and translate() consults the region map for
		// swap state regardless of the mapping entry.
		vb.table.unmapRegion(region)
	}
	if vb.kind == TransDirect && vb.reservedOrder < 0 {
		// An unreserved direct VB (4 KB class) just lost its only frame;
		// its base is stale, so the swap-in must allocate afresh. Reserved
		// direct VBs keep their base: the freed slot returns to the
		// reservation and AllocAt rematerializes it in place.
		vb.kind = TransNone
		vb.directBase = phys.NoAddr
	}
	vb.regions.setSwapped(region)
	m.freeFrame(frame, 0)
	m.InvalidateTLBRange(addr.Addr(vbiBase), RegionSize)
	m.Stats.SwapOuts++
	return true, nil
}

// SwapOutVB swaps out every eligible region of the VB, returning the
// number of regions moved.
func (m *MTL) SwapOutVB(u addr.VBUID) (int, error) {
	vb, err := m.vb(u)
	if err != nil {
		return 0, err
	}
	n := 0
	for r, end := uint64(0), vb.regions.limit(); r < end; r++ {
		if _, mapped := vb.regions.frame(r); !mapped {
			continue
		}
		ok, err := m.SwapOutRegion(u, r)
		if err != nil {
			return n, err
		}
		if ok {
			n++
		}
	}
	return n, nil
}

// AttachFile associates file contents with a memory-mapped-file VB (§3.4):
// an offset within the VB maps to the same offset within the file.
func (m *MTL) AttachFile(u addr.VBUID, contents []byte) error {
	vb, err := m.vb(u)
	if err != nil {
		return err
	}
	if uint64(len(contents)) > u.Size() {
		return fmt.Errorf("mtl: file larger than VB %v", u)
	}
	vb.isFile = true
	m.files.Write(uint64(u.Base()), contents)
	return nil
}

// SyncFile writes the VB's resident modifications back to the file image
// (msync analogue) and returns the file contents.
func (m *MTL) SyncFile(u addr.VBUID, size uint64) ([]byte, error) {
	vb, err := m.vb(u)
	if err != nil {
		return nil, err
	}
	if !vb.isFile {
		return nil, fmt.Errorf("mtl: %v is not file-backed", u)
	}
	if m.Data != nil {
		for region, end := uint64(0), vb.regions.limit(); region < end; region++ {
			if frame, ok := vb.regions.frame(region); ok {
				copyFromStore(m.files, m.Data, uint64(u.Base())+region<<RegionShift, uint64(frame))
			}
		}
	}
	out := make([]byte, size)
	m.files.Read(uint64(u.Base()), out)
	return out, nil
}
