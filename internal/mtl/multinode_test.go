package mtl

import (
	"bytes"
	"testing"

	"vbi/internal/addr"
)

// TestMultiNodeMTLRouting exercises the §6.2 multi-node arrangement: each
// node runs its own MTL, VBs are partitioned among the MTLs by the
// high-order VBID bits, and a VB's home MTL is the only one that manages
// its memory.
func TestMultiNodeMTLRouting(t *testing.T) {
	part := addr.NodePartition{Nodes: 4}
	mtls := make([]*MTL, part.Nodes)
	for i := range mtls {
		mtls[i] = NewSimple(Config{DelayedAlloc: true}, 32<<20)
	}
	route := func(u addr.VBUID) *MTL { return mtls[part.HomeOf(u)] }

	// Enable one VB homed at each node and store node-specific data.
	var vbs []addr.VBUID
	for n := 0; n < part.Nodes; n++ {
		lo, _, ok := part.VBIDRange(addr.Size128KB, n)
		if !ok {
			t.Fatalf("no range for node %d", n)
		}
		u := addr.MakeVBUID(addr.Size128KB, lo+1)
		if got := part.HomeOf(u); got != n {
			t.Fatalf("VB homed at %d, want %d", got, n)
		}
		if err := route(u).Enable(u, 0); err != nil {
			t.Fatal(err)
		}
		if err := route(u).Store(addr.Make(u, 0), []byte{byte('A' + n)}); err != nil {
			t.Fatal(err)
		}
		vbs = append(vbs, u)
	}

	// Each home MTL serves its own VBs; the others know nothing of them.
	for n, u := range vbs {
		got := make([]byte, 1)
		if err := route(u).Load(addr.Make(u, 0), got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, []byte{byte('A' + n)}) {
			t.Errorf("node %d data = %q", n, got)
		}
		other := mtls[(part.HomeOf(u)+1)%part.Nodes]
		if other.Enabled(u) {
			t.Errorf("VB %v visible on a foreign MTL", u)
		}
		if _, err := other.TranslateRead(addr.Make(u, 0)); err == nil {
			t.Errorf("foreign MTL translated %v", u)
		}
	}

	// Migration between nodes (§6.2: the OS migrates data from a VB hosted
	// by one MTL to a VB hosted by another): enable a destination VB at
	// another node, copy, disable the source.
	src := vbs[0]
	lo, _, _ := part.VBIDRange(addr.Size128KB, 2)
	dst := addr.MakeVBUID(addr.Size128KB, lo+7)
	if err := route(dst).Enable(dst, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	route(src).Load(addr.Make(src, 0), buf)
	route(dst).Store(addr.Make(dst, 0), buf)
	if err := route(src).Disable(src); err != nil {
		t.Fatal(err)
	}
	route(dst).Load(addr.Make(dst, 0), buf)
	if buf[0] != 'A' {
		t.Errorf("migrated data = %q", buf)
	}
}
