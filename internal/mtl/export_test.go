package mtl

import "vbi/internal/memdata"

// newDataStore lets tests attach a functional data store to MTLs built via
// New (NewSimple attaches one automatically).
func newDataStore() *memdata.Store { return memdata.New() }
