package dram

// Memory routes physical addresses to channels. The evaluation uses three
// layouts (§7):
//
//   - uniform DRAM: one DDR3 channel;
//   - hybrid PCM–DRAM [107]: a DRAM channel for the fast zone and a PCM
//     channel for the large zone, selected by address range;
//   - TL-DRAM [74]: one DRAM channel whose low address range (the near
//     segment rows) has near timing and the rest far timing.
type Memory struct {
	routes []route
}

type route struct {
	base, size uint64
	ch         *Channel
}

// NewUniform builds an all-DRAM memory of the given capacity.
func NewUniform(capacity uint64) *Memory {
	m := &Memory{}
	m.Map(0, ^uint64(0), NewChannel("DRAM", DDR3Timing))
	_ = capacity
	return m
}

// NewHybrid builds a PCM–DRAM hybrid: [0, dramSize) on a DRAM channel,
// [dramSize, dramSize+pcmSize) on a PCM channel. Addresses outside both
// (e.g. the synthetic VIT/CVT regions) fall through to the DRAM channel.
func NewHybrid(dramSize, pcmSize uint64) *Memory {
	m := &Memory{}
	dramCh := NewChannel("DRAM", DDR3Timing)
	pcmCh := NewChannel("PCM", PCMTiming)
	m.Map(0, ^uint64(0), dramCh) // default route
	m.Map(dramSize, pcmSize, pcmCh)
	return m
}

// NewTLDRAM builds a TL-DRAM memory: the first nearSize bytes map to near-
// segment rows, the rest to far-segment rows, on one shared channel (bank
// state is shared, as in the real device).
func NewTLDRAM(nearSize, totalSize uint64) *Memory {
	m := &Memory{}
	ch := NewChannel("TL-DRAM", TLDRAMFar)
	ch.AddRegion(Region{Base: 0, Size: nearSize, Timing: TLDRAMNear})
	m.Map(0, ^uint64(0), ch)
	_ = totalSize
	return m
}

// Map routes [base, base+size) to ch. Later routes take precedence.
func (m *Memory) Map(base, size uint64, ch *Channel) {
	m.routes = append(m.routes, route{base, size, ch})
}

// channel finds the routing entry for pa.
func (m *Memory) channel(pa uint64) *Channel {
	for i := len(m.routes) - 1; i >= 0; i-- {
		r := m.routes[i]
		if pa >= r.base && pa-r.base < r.size {
			return r.ch
		}
	}
	return m.routes[0].ch
}

// Access issues the access on the owning channel.
func (m *Memory) Access(pa uint64, now uint64, write bool) uint64 {
	return m.channel(pa).Access(pa, now, write)
}

// Channels returns the distinct channels (for stats).
func (m *Memory) Channels() []*Channel {
	var out []*Channel
	seen := map[*Channel]bool{}
	for _, r := range m.routes {
		if !seen[r.ch] {
			seen[r.ch] = true
			out = append(out, r.ch)
		}
	}
	return out
}

// TotalStats sums stats across channels.
func (m *Memory) TotalStats() Stats {
	var s Stats
	for _, ch := range m.Channels() {
		s.Reads += ch.Stats.Reads
		s.Writes += ch.Stats.Writes
		s.RowHits += ch.Stats.RowHits
		s.RowMisses += ch.Stats.RowMisses
		s.RowConflicts += ch.Stats.RowConflicts
	}
	return s
}
