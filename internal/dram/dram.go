// Package dram models main-memory timing: a bank-state DDR3-1600 channel
// with an open-page policy (Table 1), a PCM-800 channel with the asymmetric
// timings of Lee et al. [72], the TL-DRAM near/far-segment organization of
// Lee et al. [74], and the hybrid PCM–DRAM layout of Ramos et al. [107] —
// the two heterogeneous main-memory architectures of the §7.3 evaluation.
//
// Latency accounting follows the usual trace-driven simplification: each
// access picks its bank, pays row-buffer hit/miss/conflict timing against
// the bank's ready time, and returns its completion time. Bank contention
// between demand reads, writebacks and page-table traffic emerges from the
// shared ready times.
package dram

// Timing holds per-command latencies in memory-controller cycles.
type Timing struct {
	TRCD uint64 // activate -> column command
	TRP  uint64 // precharge
	CL   uint64 // column access (CAS) latency
	TBL  uint64 // burst length on the data bus
	TWR  uint64 // write recovery after a write burst
}

// DDR3Timing mirrors Table 1 (DDR3-1600: tRCD=5cy, tRP=5cy) with a CAS
// latency and burst consistent with the part.
var DDR3Timing = Timing{TRCD: 5, TRP: 5, CL: 5, TBL: 4, TWR: 6}

// PCMTiming mirrors Table 1 (PCM-800: tRCD=22cy, tRP=60cy [72]); PCM array
// writes are much slower than reads, captured by the large tRP (precharge
// performs the array write-back) and write recovery.
var PCMTiming = Timing{TRCD: 22, TRP: 60, CL: 5, TBL: 8, TWR: 90}

// TLDRAMNear is the near-segment timing of TL-DRAM [74]: the short bitline
// segment close to the sense amplifiers activates and precharges in roughly
// half the cycles.
var TLDRAMNear = Timing{TRCD: 3, TRP: 3, CL: 4, TBL: 4, TWR: 4}

// TLDRAMFar is the far-segment timing: slightly worse than commodity DRAM
// because the isolation transistor adds resistance.
var TLDRAMFar = Timing{TRCD: 6, TRP: 6, CL: 5, TBL: 4, TWR: 7}

// CPUCyclesPerMemCycle converts memory-controller cycles to CPU cycles
// (3.2 GHz core, 800 MHz DDR3-1600 command clock).
const CPUCyclesPerMemCycle = 4

// ControllerOverhead is the fixed CPU-cycle cost of traversing the memory
// controller front end (queueing, scheduling, physical layer).
const ControllerOverhead = 20

// Stats counts channel events.
type Stats struct {
	Reads        uint64
	Writes       uint64
	RowHits      uint64
	RowMisses    uint64 // closed row
	RowConflicts uint64 // different row open
}

const (
	bankShift = 6 // cache-line interleaving across banks
	bankBits  = 3 // 8 banks/rank (Table 1)
	// rowShift: each 64 KB block is striped line-wise across the 8 banks,
	// so one 8 KB row buffer per bank holds that bank's slice of the
	// block. Sequential streams still enjoy long row-hit runs while
	// concurrent streams spread over all banks instead of phase-locking
	// onto one.
	rowShift = 16
)

// bankOf combines line-granularity interleaving with XOR folding of the
// row number (permutation-based interleaving, standard in memory
// controllers) so streams separated by any power of two spread over banks.
func bankOf(pa uint64) uint64 {
	b := pa >> bankShift
	for row := pa >> rowShift; row != 0; row >>= bankBits {
		b ^= row
	}
	return b & (1<<bankBits - 1)
}

type bank struct {
	openRow int64 // -1 = precharged
	readyAt uint64
}

// Region gives one address range its own timing (TL-DRAM segments, or the
// PCM half of a hybrid memory).
type Region struct {
	Base   uint64
	Size   uint64
	Timing Timing
}

// Channel is one memory channel: 8 banks, open-page policy.
type Channel struct {
	Name  string
	Stats Stats

	base    Timing
	regions []Region
	banks   [1 << bankBits]bank
}

// NewChannel builds a channel with uniform timing.
func NewChannel(name string, t Timing) *Channel {
	c := &Channel{Name: name, base: t}
	for i := range c.banks {
		c.banks[i].openRow = -1
	}
	return c
}

// AddRegion overrides timing for an address range (later regions win).
func (c *Channel) AddRegion(r Region) { c.regions = append(c.regions, r) }

func (c *Channel) timingFor(pa uint64) Timing {
	for i := len(c.regions) - 1; i >= 0; i-- {
		r := c.regions[i]
		if pa >= r.Base && pa-r.Base < r.Size {
			return r.Timing
		}
	}
	return c.base
}

// Access issues a read or write of the line containing pa at CPU-cycle time
// `now` and returns the CPU-cycle completion time. Bank state (open row,
// ready time) persists, so row locality and bank conflicts shape latency.
func (c *Channel) Access(pa uint64, now uint64, write bool) uint64 {
	t := c.timingFor(pa)
	bankIdx := bankOf(pa)
	row := int64(pa >> rowShift)
	b := &c.banks[bankIdx]

	// Convert to memory cycles for bank bookkeeping.
	memNow := now / CPUCyclesPerMemCycle
	start := memNow
	if b.readyAt > start {
		start = b.readyAt
	}

	var lat uint64
	switch {
	case b.openRow == row:
		c.Stats.RowHits++
		lat = t.CL + t.TBL
	case b.openRow == -1:
		c.Stats.RowMisses++
		lat = t.TRCD + t.CL + t.TBL
	default:
		c.Stats.RowConflicts++
		lat = t.TRP + t.TRCD + t.CL + t.TBL
	}
	b.openRow = row
	done := start + lat
	if write {
		c.Stats.Writes++
		b.readyAt = done + t.TWR
	} else {
		c.Stats.Reads++
		b.readyAt = done
	}
	return done*CPUCyclesPerMemCycle + ControllerOverhead
}

// MinReadLatency returns the unloaded row-hit read latency in CPU cycles
// (used by sanity checks and the CPU model's fast path estimates).
func (c *Channel) MinReadLatency() uint64 {
	return (c.base.CL+c.base.TBL)*CPUCyclesPerMemCycle + ControllerOverhead
}
