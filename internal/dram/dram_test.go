package dram

import "testing"

// sameBankOtherRow finds an address in the same bank as base but a
// different row.
func sameBankOtherRow(base uint64) uint64 {
	want := bankOf(base)
	baseRow := base >> rowShift
	for row := uint64(1); ; row++ {
		pa := (baseRow + row) << rowShift
		if bankOf(pa) == want {
			return pa
		}
	}
}

// otherBank finds an address in a different bank from base.
func otherBank(base uint64) uint64 {
	want := bankOf(base)
	for pa := base + 64; ; pa += 64 {
		if bankOf(pa) != want {
			return pa
		}
	}
}

func TestRowHitFasterThanMiss(t *testing.T) {
	c := NewChannel("t", DDR3Timing)
	t0 := c.Access(0, 0, false) // row miss (closed)
	c2 := NewChannel("t", DDR3Timing)
	c2.Access(0, 0, false)
	// Same bank, same row, long after the first access: a row hit.
	t1 := c2.Access(0, 100000, false) - 100000
	if t1 >= t0 {
		t.Fatalf("row hit latency %d not faster than activate %d", t1, t0)
	}
	if c2.Stats.RowHits != 1 || c2.Stats.RowMisses != 1 {
		t.Fatalf("stats = %+v", c2.Stats)
	}
}

func TestRowConflictSlowest(t *testing.T) {
	c := NewChannel("t", DDR3Timing)
	c.Access(0, 0, false)
	base := uint64(1 << 20)
	conflictAddr := sameBankOtherRow(0)
	conflictDone := c.Access(conflictAddr, base, false) - base
	c2 := NewChannel("t", DDR3Timing)
	missDone := c2.Access(0, base, false) - base
	if conflictDone <= missDone {
		t.Fatalf("conflict %d not slower than cold miss %d", conflictDone, missDone)
	}
	if c.Stats.RowConflicts != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestBankParallelism(t *testing.T) {
	c := NewChannel("t", DDR3Timing)
	// Two accesses to different banks at the same time both finish near
	// the unloaded latency; two to the same bank serialize.
	d1 := c.Access(0, 0, false)
	d2 := c.Access(otherBank(0), 0, false)
	if d2 > d1+4 {
		t.Fatalf("different-bank access serialized: %d then %d", d1, d2)
	}
	c2 := NewChannel("t", DDR3Timing)
	e1 := c2.Access(0, 0, false)
	e2 := c2.Access(sameBankOtherRow(0), 0, false)
	if e2 <= e1 {
		t.Fatalf("same-bank conflict did not serialize: %d then %d", e1, e2)
	}
}

func TestSequentialStreamMostlyRowHits(t *testing.T) {
	// A sequential stream should see long row-hit runs despite the
	// line-granularity bank interleaving.
	c := NewChannel("t", DDR3Timing)
	now := uint64(0)
	for i := uint64(0); i < 1024; i++ {
		now = c.Access(i*64, now, false)
	}
	total := c.Stats.RowHits + c.Stats.RowMisses + c.Stats.RowConflicts
	if total != 1024 {
		t.Fatalf("accesses = %d", total)
	}
	hitRate := float64(c.Stats.RowHits) / float64(total)
	if hitRate < 0.9 {
		t.Fatalf("sequential row-hit rate = %.2f", hitRate)
	}
}

func TestInterleavedStreamsSpreadOverBanks(t *testing.T) {
	// Two interleaved streams separated by a large power of two must not
	// serialize on a single bank: accesses spread across all banks, so
	// row conflicts (which strict 1:1 alternation still causes without
	// FR-FCFS reordering) at least proceed bank-parallel.
	banks := map[uint64]bool{}
	for i := uint64(0); i < 2048; i++ {
		a := i / 2 * 64
		if i%2 == 1 {
			a += 1 << 32
		}
		banks[bankOf(a)] = true
	}
	if len(banks) != 8 {
		t.Fatalf("interleaved streams use only %d banks", len(banks))
	}
	// And a single stream must not lose its row locality to the folding.
	c := NewChannel("t", DDR3Timing)
	now := uint64(0)
	for i := uint64(0); i < 1024; i++ {
		now = c.Access(1<<32+i*64, now, false)
	}
	total := c.Stats.RowHits + c.Stats.RowMisses + c.Stats.RowConflicts
	if rate := float64(c.Stats.RowHits) / float64(total); rate < 0.9 {
		t.Fatalf("offset stream row-hit rate = %.2f", rate)
	}
}

func TestPCMSlowerThanDRAM(t *testing.T) {
	d := NewChannel("d", DDR3Timing)
	p := NewChannel("p", PCMTiming)
	dd := d.Access(0, 0, false)
	pd := p.Access(0, 0, false)
	if pd <= dd {
		t.Fatalf("PCM activate %d not slower than DRAM %d", pd, dd)
	}
	// PCM writes tie up the bank much longer.
	conflict := sameBankOtherRow(0)
	p.Access(0, pd, true)
	nextRead := p.Access(conflict, pd+1, false)
	d.Access(0, dd, true)
	nextReadD := d.Access(conflict, dd+1, false)
	if nextRead-pd <= nextReadD-dd {
		t.Fatal("PCM write recovery not slower than DRAM")
	}
}

func TestTLDRAMNearFasterThanFar(t *testing.T) {
	m := NewTLDRAM(1<<20, 8<<20)
	near := m.Access(0, 0, false)
	far := m.Access(4<<20, 0, false)
	if near >= far {
		t.Fatalf("near %d not faster than far %d", near, far)
	}
}

func TestHybridRouting(t *testing.T) {
	m := NewHybrid(1<<20, 8<<20)
	chs := m.Channels()
	if len(chs) != 2 {
		t.Fatalf("channels = %d", len(chs))
	}
	m.Access(0, 0, false)     // DRAM
	m.Access(2<<20, 0, false) // PCM
	m.Access(1<<50, 0, false) // out of range -> default DRAM route
	total := m.TotalStats()
	if total.Reads != 3 {
		t.Fatalf("reads = %d", total.Reads)
	}
	var dramReads, pcmReads uint64
	for _, ch := range chs {
		if ch.Name == "DRAM" {
			dramReads = ch.Stats.Reads
		} else {
			pcmReads = ch.Stats.Reads
		}
	}
	if dramReads != 2 || pcmReads != 1 {
		t.Fatalf("dram=%d pcm=%d", dramReads, pcmReads)
	}
}

func TestAccessMonotoneUnderLoad(t *testing.T) {
	c := NewChannel("t", DDR3Timing)
	var last uint64
	addr := uint64(0)
	for i := 0; i < 100; i++ {
		addr = sameBankOtherRow(addr) // all same bank: serialize
		done := c.Access(addr, 0, false)
		if done < last {
			t.Fatalf("completion went backwards: %d after %d", done, last)
		}
		last = done
	}
	// 100 serialized conflicts must take at least 100 * conflict cycles.
	min := uint64(100) * (DDR3Timing.TRP + DDR3Timing.TRCD + DDR3Timing.CL) * CPUCyclesPerMemCycle
	if last < min {
		t.Fatalf("suspiciously fast serialized sequence: %d < %d", last, min)
	}
}

func TestMinReadLatency(t *testing.T) {
	c := NewChannel("t", DDR3Timing)
	if got := c.MinReadLatency(); got != (5+4)*4+ControllerOverhead {
		t.Fatalf("MinReadLatency = %d", got)
	}
}
