package dram

import "testing"

func BenchmarkChannelRowHit(b *testing.B) {
	c := NewChannel("t", DDR3Timing)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Access(0, uint64(i)*100, false)
	}
}

func BenchmarkChannelStream(b *testing.B) {
	c := NewChannel("t", DDR3Timing)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i)*64, uint64(i)*10, false)
	}
}

func BenchmarkHybridRouting(b *testing.B) {
	m := NewHybrid(1<<30, 6<<30)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Access(uint64(i%2)*2<<30, uint64(i)*10, false)
	}
}
