// Package lockstep provides the synchronization seam that lets one
// multi-core simulation execute its cores on concurrent goroutines while
// producing results byte-identical to the serial smallest-now() interleave
// (system.Multicore.Run).
//
// The idea: a core's step is private (its own L1/L2, TLBs, page tables,
// trace generator) until it touches shared state — the LLC, DRAM bank
// timing, the OS allocator, the MTL. Private work from different cores
// commutes, so cores may free-run through it concurrently. Shared state
// does not commute: the serial scheduler executes whole steps in ascending
// (now, coreIdx) order, so the parallel run must apply all shared-state
// mutations in exactly that order.
//
// Each core publishes the key of the step it is currently executing
// (key = now<<4 | coreIdx, matching the serial tie-break: the scan in
// Multicore.Run uses a strict <, so equal clocks resolve to the lowest
// index). A core reaching a shared-state chokepoint spins until every
// other live core has published a key strictly greater than its own; at
// that instant it is the global minimum, every earlier shared section has
// completed, and no later one can start (two cores cannot both see all
// others above them). Keys are strictly increasing per core (cpu.Core.now
// advances by at least one cycle per step), so the grant order equals the
// serial step order and the shared structures observe the identical
// operation sequence — same LLC tick stamps, same DRAM bank state, same
// allocator order, byte for byte.
//
// The one way private state couples across cores is LLC back-invalidation:
// the turn holder evicting an LLC victim invalidates the line in every
// other core's L1/L2 and reads its dirty bit. A free-running core may
// have raced past the invalidation point. Each core therefore keeps a
// ring log of its private-cache activity (hits and structural
// insert/evict events, keyed by step), guarded by a per-core spinlock the
// invalidator also takes. If the victim core has touched the invalidated
// line — or, when the line is present, restructured its set — at a key
// after the invalidation's, the interleaving diverged from serial: the
// group aborts and the caller re-runs the job serially on a fresh
// machine, so the final results are byte-identical on either path. In
// the simulated workloads cores touch disjoint physical/VBI lines, so
// aborts are a safety net, not a steady-state cost.
package lockstep

import (
	"math"
	"runtime"
	"sync/atomic"
)

// IdxBits is the core-index width folded into the low bits of a key;
// groups are capped at 1<<IdxBits cores (the simulated bundles are 4).
const IdxBits = 4

// MaxCores is the largest group size.
const MaxCores = 1 << IdxBits

// ringBits sizes the per-core activity log. A core logs a handful of
// entries per step, and the lead bound keeps cores within a few thousand
// steps of the global minimum, so 1<<16 entries cannot wrap within a
// conflict scan's window in practice; a wrapped scan aborts conservatively.
const ringBits = 16

const ringMask = (1 << ringBits) - 1

// leadCycles bounds how far (in simulated cycles) a core may run ahead of
// the slowest other core. It only bounds ring growth and memory-order
// skew; correctness never depends on it.
const leadCycles = 1 << 13

// Entry is one logged private-cache event. Line addresses are 64-byte
// aligned, so bit 0 carries the structural flag: structural entries
// (insert/evict) can change which lines a set holds; plain touches only
// refresh recency and dirty state of a present line.
type Entry struct {
	Key  uint64
	Line uint64
}

// Structural marks an Entry.Line as an insert/evict rather than a touch.
const Structural = 1

// Group coordinates one machine's cores for a parallel run.
type Group struct {
	handles []*Handle
	aborted atomic.Bool
}

// NewGroup builds a group of n cores. n must be at most MaxCores.
func NewGroup(n int) *Group {
	if n < 1 || n > MaxCores {
		panic("lockstep: bad group size")
	}
	g := &Group{}
	for i := 0; i < n; i++ {
		g.handles = append(g.handles, &Handle{
			g:    g,
			idx:  i,
			ring: make([]Entry, 1<<ringBits),
		})
	}
	return g
}

// Handle returns core i's handle.
func (g *Group) Handle(i int) *Handle { return g.handles[i] }

// Abort marks the run diverged; goroutines unwind at their next step
// boundary and the caller re-runs serially.
func (g *Group) Abort() { g.aborted.Store(true) }

// Aborted reports whether the run diverged.
func (g *Group) Aborted() bool { return g.aborted.Load() }

// Handle is one core's view of the group. BeginStep/Enter/EndStep/Finish
// are called only from the owning goroutine; Lock/Unlock/Ring/Total are
// the peer-access surface back-invalidation uses. All methods are safe on
// a nil receiver (serial machines carry no handle).
type Handle struct {
	g   *Group
	idx int

	// key is the published key of the step being executed (atomic:
	// peers spin on it).
	key atomic.Uint64

	// cur/holding are owner-goroutine state: the current step key and
	// whether this core already holds the shared turn for this step.
	cur     uint64
	holding bool

	// lock guards ring/total against the back-invalidation scan.
	lock spinLock
	// ring is the private-cache activity log; total counts entries ever
	// appended (ring[i%len] holds append i).
	ring  []Entry
	total int
}

// Idx returns the core index.
func (h *Handle) Idx() int { return h.idx }

// Key builds the interleave key for a step starting at cycle now.
func Key(now uint64, idx int) uint64 { return now<<IdxBits | uint64(idx) }

// Publish announces the key of the core's next step. The driver calls it
// the moment the previous step completes (not when the next begins): a
// worker goroutine interleaving several cores must keep every idle core's
// key current, or a stale small key would block the group. Publishing key
// k is a promise that no shared operation with a smaller key will ever
// come from this core — true once the step at the previous key is done.
// Returns false when the group has aborted and the goroutine should
// unwind.
//
//vbi:hotpath
func (h *Handle) Publish(now uint64) bool {
	h.cur = Key(now, h.idx)
	h.key.Store(h.cur)
	return !h.g.Aborted()
}

// WaitLead applies the lead bound before a step executes: the core waits
// until it is within leadCycles of the slowest other core. The driver
// calls it only for the core it is about to step, which is the minimum
// over the cores that goroutine owns — any core behind this one belongs
// to another goroutine and makes progress, so the wait cannot self-
// deadlock. The bound only limits ring growth and skew; correctness never
// depends on it. Returns false when the group has aborted.
//
//vbi:hotpath
func (h *Handle) WaitLead() bool {
	lead := uint64(leadCycles) << IdxBits
	for h.cur > lead {
		if h.minOthers() >= h.cur-lead {
			break
		}
		if h.g.Aborted() {
			return false
		}
		runtime.Gosched()
	}
	return !h.g.Aborted()
}

// minOthers returns the smallest key published by any other core.
//
//vbi:hotpath
func (h *Handle) minOthers() uint64 {
	min := uint64(math.MaxUint64)
	for _, o := range h.g.handles {
		if o == h {
			continue
		}
		if k := o.key.Load(); k < min {
			min = k
		}
	}
	return min
}

// Enter acquires the shared turn for the current step: it blocks until
// every other live core has published a key strictly greater than this
// step's, i.e. until this step is the global minimum of the serial
// interleave. It is idempotent within a step and a no-op on nil handles
// (serial runs). After an abort, exiting cores publish MaxUint64, so a
// blocked Enter always drains — and proceeds alone, keeping the shared
// structures race-free even on the discard path.
//
//vbi:hotpath
func (h *Handle) Enter() {
	if h == nil || h.holding {
		return
	}
	for h.minOthers() <= h.cur {
		runtime.Gosched()
	}
	h.holding = true
}

// Holding reports whether the core holds the shared turn (owner
// goroutine only). Nil-safe.
//
//vbi:hotpath
func (h *Handle) Holding() bool { return h != nil && h.holding }

// EndStep releases the shared turn. The published key keeps blocking
// peers until the next BeginStep raises it, which is exactly the serial
// contract: the next step's shared work may still be this core's.
//
//vbi:hotpath
func (h *Handle) EndStep() { h.holding = false }

// Finish retires the core from the interleave: its published key becomes
// MaxUint64 so no peer ever waits on it again.
func (h *Handle) Finish() { h.key.Store(math.MaxUint64) }

// Cur returns the key of the step being executed (owner goroutine only).
//
//vbi:hotpath
func (h *Handle) Cur() uint64 { return h.cur }

// Abort marks the group diverged. Nil-safe.
func (h *Handle) Abort() {
	if h != nil {
		h.g.Abort()
	}
}

// Aborted reports group divergence. Nil-safe.
//
//vbi:hotpath
func (h *Handle) Aborted() bool { return h != nil && h.g.Aborted() }

// Lock takes the core's private-cache lock. The owner holds it across
// each private L1/L2 operation plus its log append; the turn holder
// takes it to back-invalidate. Neither side ever blocks on the turn
// while holding it, so the two locks cannot deadlock.
//
//vbi:hotpath
func (h *Handle) Lock() { h.lock.lock() }

// Unlock releases the private-cache lock.
//
//vbi:hotpath
func (h *Handle) Unlock() { h.lock.unlock() }

// Log appends a private-cache event for the current step. Callers hold
// the lock.
//
//vbi:hotpath
func (h *Handle) Log(line uint64, structural bool) {
	e := Entry{Key: h.cur, Line: line}
	if structural {
		e.Line |= Structural
	}
	h.ring[h.total&ringMask] = e
	h.total++
}

// Ring exposes the log buffer and Total the number of entries ever
// appended; entry i (for total-len(ring) <= i < total) lives at
// ring[i&RingMask()]. Callers hold the lock.
func (h *Handle) Ring() []Entry { return h.ring }

// Total returns the number of entries ever appended. Callers hold the
// lock.
func (h *Handle) Total() int { return h.total }

// RingMask returns the index mask for Ring.
func RingMask() int { return ringMask }

// spinLock is a tiny test-and-set lock. Critical sections are a few
// loads/stores, contention is rare (one invalidator vs one owner), and
// Gosched keeps single-CPU hosts live.
type spinLock struct{ v atomic.Uint32 }

//vbi:hotpath
func (s *spinLock) lock() {
	for !s.v.CompareAndSwap(0, 1) {
		runtime.Gosched()
	}
}

//vbi:hotpath
func (s *spinLock) unlock() { s.v.Store(0) }
