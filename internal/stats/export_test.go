package stats

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func exportTable() *Table {
	return &Table{
		Title: "t",
		Rows:  []string{"mcf", "namd", "AVG"},
		Series: []Series{
			{Label: "Native", Values: []float64{1, 1.25, 1.125}},
			{Label: "VBI-Full", Values: []float64{2.5, 1.5}}, // ragged
		},
	}
}

func TestWriteCSV(t *testing.T) {
	var b bytes.Buffer
	if err := exportTable().WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "workload,Native,VBI-Full\n" +
		"mcf,1,2.5\n" +
		"namd,1.25,1.5\n" +
		"AVG,1.125,\n"
	if b.String() != want {
		t.Errorf("CSV:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	var b bytes.Buffer
	tab := exportTable()
	if err := tab.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var got Table
	if err := json.Unmarshal(b.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Title != tab.Title || len(got.Series) != 2 || got.Series[1].Values[0] != 2.5 {
		t.Errorf("round trip lost data: %+v", got)
	}
	if !strings.Contains(b.String(), `"Rows"`) {
		t.Errorf("JSON missing Rows: %s", b.String())
	}
}

// TestCSVDeterministic guards the cache/export contract: identical tables
// must serialize identically.
func TestCSVDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := exportTable().WriteCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := exportTable().WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("CSV output is not deterministic")
	}
}
