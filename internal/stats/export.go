package stats

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"
)

// WriteCSV writes the table as CSV: a header of "workload" plus the series
// labels, then one record per row. Values are formatted with the shortest
// representation that round-trips, so the file is canonical for a given
// table. Rows beyond a series' length (possible for ragged tables) emit
// empty cells.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"workload"}, labels(t)...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, r := range t.Rows {
		rec := []string{r}
		for _, s := range t.Series {
			if i < len(s.Values) {
				rec = append(rec, strconv.FormatFloat(s.Values[i], 'g', -1, 64))
			} else {
				rec = append(rec, "")
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON writes the table as indented JSON (title, rows, series).
func (t *Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(t)
}

func labels(t *Table) []string {
	out := make([]string, len(t.Series))
	for i, s := range t.Series {
		out[i] = s.Label
	}
	return out
}
