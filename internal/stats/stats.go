// Package stats provides the result-aggregation and rendering helpers the
// experiment harness uses to print the paper's tables and figure series:
// speedups, weighted speedups, means, and fixed-width ASCII tables.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean (0 for empty or non-positive input).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// WeightedSpeedup computes Σ IPCshared_i / IPCalone_i (the multiprogrammed
// metric of §7.2.3).
func WeightedSpeedup(shared, alone []float64) float64 {
	var ws float64
	for i := range shared {
		if alone[i] > 0 {
			ws += shared[i] / alone[i]
		}
	}
	return ws
}

// Series is one plotted line/bar group: a label and one value per row.
// The json tags pin the export format to the historical field names: the
// table document is compared byte-for-byte across runs (and served by
// vbisweepd), so a field rename must never change it.
//
//vbi:wire
type Series struct {
	Label  string    `json:"Label"`
	Values []float64 `json:"Values"`
}

// Table is a rendered experiment result: row labels (the x-axis) plus one
// or more series. Its JSON form is the `vbisweep -json` export format and
// the payload of vbisweepd's stored result tables, byte-compared against
// local runs — hence the pinned tags.
//
//vbi:wire
type Table struct {
	Title  string   `json:"Title"`
	Rows   []string `json:"Rows"`
	Series []Series `json:"Series"`
}

// Add appends a value to the named series, creating it on first use.
func (t *Table) Add(series string, value float64) {
	for i := range t.Series {
		if t.Series[i].Label == series {
			t.Series[i].Values = append(t.Series[i].Values, value)
			return
		}
	}
	t.Series = append(t.Series, Series{Label: series, Values: []float64{value}})
}

// Get returns a series' values (nil if absent).
func (t *Table) Get(series string) []float64 {
	for i := range t.Series {
		if t.Series[i].Label == series {
			return t.Series[i].Values
		}
	}
	return nil
}

// Render prints the table with fixed-width columns.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
		b.WriteString(strings.Repeat("=", len(t.Title)) + "\n")
	}
	rowW := len("workload")
	for _, r := range t.Rows {
		if len(r) > rowW {
			rowW = len(r)
		}
	}
	colW := 12
	fmt.Fprintf(&b, "%-*s", rowW+2, "workload")
	for _, s := range t.Series {
		fmt.Fprintf(&b, "%*s", colW, truncate(s.Label, colW-1))
	}
	b.WriteString("\n")
	for i, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", rowW+2, r)
		for _, s := range t.Series {
			if i < len(s.Values) {
				fmt.Fprintf(&b, "%*.3f", colW, s.Values[i])
			} else {
				fmt.Fprintf(&b, "%*s", colW, "-")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}

// Counters is a sorted name->value counter set for run summaries.
type Counters map[string]uint64

// Render prints counters sorted by name.
func (c Counters) Render() string {
	names := make([]string, 0, len(c))
	for n := range c {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		fmt.Fprintf(&b, "  %-28s %12d\n", n, c[n])
	}
	return b.String()
}
