package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil)")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %f", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Fatalf("GeoMean = %f", got)
	}
	if GeoMean([]float64{1, 0}) != 0 {
		t.Fatal("GeoMean with zero should be 0")
	}
	if GeoMean(nil) != 0 {
		t.Fatal("GeoMean(nil)")
	}
}

func TestGeoMeanLeqMean(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			x = math.Abs(x)
			if x > 0 && !math.IsInf(x, 0) && !math.IsNaN(x) && x < 1e12 {
				xs = append(xs, x+0.001)
			}
		}
		if len(xs) == 0 {
			return true
		}
		return GeoMean(xs) <= Mean(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWeightedSpeedup(t *testing.T) {
	shared := []float64{0.5, 1.0}
	alone := []float64{1.0, 2.0}
	if got := WeightedSpeedup(shared, alone); got != 1.0 {
		t.Fatalf("WS = %f", got)
	}
}

func TestTableAddGetRender(t *testing.T) {
	tb := &Table{Title: "Figure X", Rows: []string{"mcf", "milc"}}
	tb.Add("Native", 1.0)
	tb.Add("VBI", 2.5)
	tb.Add("Native", 1.0)
	tb.Add("VBI", 1.2)
	if got := tb.Get("VBI"); len(got) != 2 || got[1] != 1.2 {
		t.Fatalf("Get = %v", got)
	}
	if tb.Get("missing") != nil {
		t.Fatal("missing series returned values")
	}
	out := tb.Render()
	for _, want := range []string{"Figure X", "mcf", "milc", "Native", "VBI", "2.500"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableRenderRagged(t *testing.T) {
	tb := &Table{Rows: []string{"a", "b"}}
	tb.Add("s", 1)
	out := tb.Render()
	if !strings.Contains(out, "-") {
		t.Fatal("missing filler for ragged series")
	}
}

func TestCountersRender(t *testing.T) {
	c := Counters{"b.count": 2, "a.count": 1}
	out := c.Render()
	if !strings.Contains(out, "a.count") || strings.Index(out, "a.count") > strings.Index(out, "b.count") {
		t.Fatalf("counters not sorted:\n%s", out)
	}
}
