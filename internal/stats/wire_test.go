package stats

import (
	"encoding/json"
	"testing"
)

// TestTableJSONPinned byte-pins the Table/Series export format: it is the
// `vbisweep -json` document and the stored result table vbisweepd serves,
// byte-compared against local runs. A break here means a field rename
// changed the export format — revert the rename rather than updating the
// expectation.
func TestTableJSONPinned(t *testing.T) {
	tab := Table{
		Title: "Figure 6",
		Rows:  []string{"mcf", "xz"},
		Series: []Series{
			{Label: "Native", Values: []float64{1, 1}},
			{Label: "VBI-Full", Values: []float64{1.25, 1.1}},
		},
	}
	b, err := json.Marshal(tab)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"Title":"Figure 6","Rows":["mcf","xz"],` +
		`"Series":[{"Label":"Native","Values":[1,1]},{"Label":"VBI-Full","Values":[1.25,1.1]}]}`
	if string(b) != want {
		t.Errorf("Table wire form changed:\n got %s\nwant %s", b, want)
	}
}
