package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"

	"vbi/internal/lint/analysis"
)

// wallClockFuncs are the package time functions that read the host
// clock. Inside the simulation core, all time is simulated cycles: a
// host-clock read either leaks wall time into results or (Sleep, timers)
// couples model behavior to host scheduling.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

// seededRandFuncs are the math/rand constructors that produce an
// explicitly seeded source; everything else at package level draws from
// the global source, whose stream depends on what else ran.
var seededRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true,
}

// WallClock forbids host time and globally seeded randomness inside the
// simulation core: all time must be simulated cycles, and all randomness
// must flow from a job seed so identical jobs replay identical streams.
var WallClock = &analysis.Analyzer{
	Name: "wallclock",
	Doc:  "forbids time.Now/Since and unseeded math/rand in the simulation core",
	Run:  runWallClock,
}

func runWallClock(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := pkgOf(pass, sel.X)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			switch {
			case pkg == "time" && wallClockFuncs[name]:
				pass.Reportf(sel.Pos(),
					"time.%s in the simulation core: simulated time must come from cycles, not the host clock", name)
			case (pkg == "math/rand" || pkg == "math/rand/v2") && !seededRandFuncs[name] && isFuncUse(pass, sel):
				pass.Reportf(sel.Pos(),
					"rand.%s uses the global rand source: randomness in the simulation core must flow from the job seed via rand.New(rand.NewSource(seed))", name)
			}
			return true
		})
	}
	return nil
}

// isFuncUse reports whether the selector names a function (as opposed to
// a type such as rand.Rand or rand.Source, which are fine to mention).
func isFuncUse(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	_, ok := objOf(pass, sel.Sel).(*types.Func)
	return ok
}

func exprString(fset *token.FileSet, e ast.Expr) string {
	var b bytes.Buffer
	if err := printer.Fprint(&b, fset, e); err != nil {
		return "?"
	}
	return b.String()
}
