// Package analysis is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis vocabulary, built only on the standard
// library's go/ast and go/types. It exists because the repo vendors no
// third-party modules: vbilint's analyzers are written against this
// package exactly as they would be against x/tools, so they can be ported
// wholesale if the dependency ever lands.
//
// The package also owns the suppression syntax shared by every analyzer:
//
//	//vbi:allow <analyzer> <reason>
//
// placed on the flagged line or the line immediately above it silences
// that analyzer's diagnostics there. The reason is mandatory — an allow
// without one is itself a diagnostic — so every suppression in the tree
// documents why the invariant does not apply.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer is one invariant checker: a name (used in diagnostics and
// //vbi:allow directives), a doc sentence, and a Run function applied to
// one package at a time.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Diagnostic is one finding, positioned in the Pass's FileSet.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report records one diagnostic.
	Report func(Diagnostic)
}

// Reportf formats and records one diagnostic.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Directive prefixes. Directives are ordinary line comments with no space
// after the slashes, mirroring go:build / go:generate convention.
const (
	directivePrefix = "//vbi:"
	allowDirective  = "//vbi:allow"
)

// Directive reports whether the comment group carries the named //vbi:
// directive (e.g. name "hotpath" matches a "//vbi:hotpath" line) and
// returns the text after the directive word.
func Directive(cg *ast.CommentGroup, name string) (rest string, ok bool) {
	if cg == nil {
		return "", false
	}
	for _, c := range cg.List {
		if r, found := matchDirective(c.Text, name); found {
			return r, true
		}
	}
	return "", false
}

func matchDirective(text, name string) (rest string, ok bool) {
	want := directivePrefix + name
	if !strings.HasPrefix(text, want) {
		return "", false
	}
	rest = text[len(want):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", false // a longer directive word, e.g. hotpathx
	}
	return strings.TrimSpace(rest), true
}

// An allow is one parsed //vbi:allow directive.
type allow struct {
	analyzer string
	reason   string
	line     int
	pos      token.Pos
}

// allowsIn parses every //vbi:allow directive in the files. Malformed
// directives (missing analyzer or reason) are returned as diagnostics so
// a suppression can never be silently inert.
func allowsIn(fset *token.FileSet, files []*ast.File) (map[string][]allow, []Diagnostic) {
	byFile := make(map[string][]allow)
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := matchDirective(c.Text, "allow")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:     c.Pos(),
						Message: "malformed //vbi:allow: want \"//vbi:allow <analyzer> <reason>\"",
					})
					continue
				}
				p := fset.Position(c.Pos())
				byFile[p.Filename] = append(byFile[p.Filename], allow{
					analyzer: fields[0],
					reason:   strings.Join(fields[1:], " "),
					line:     p.Line,
					pos:      c.Pos(),
				})
			}
		}
	}
	return byFile, bad
}

// Filter drops diagnostics suppressed by an in-scope //vbi:allow (same
// line, or the line immediately above). The result is sorted by position.
func Filter(fset *token.FileSet, files []*ast.File, name string, diags []Diagnostic) []Diagnostic {
	allows, _ := allowsIn(fset, files)
	var out []Diagnostic
	for _, d := range diags {
		p := fset.Position(d.Pos)
		suppressed := false
		for _, a := range allows[p.Filename] {
			if a.analyzer == name && (a.line == p.Line || a.line == p.Line-1) {
				suppressed = true
				break
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// MalformedAllows returns one diagnostic per malformed //vbi:allow in the
// files. The suite runs it once per package (it is analyzer-independent).
func MalformedAllows(fset *token.FileSet, files []*ast.File) []Diagnostic {
	_, bad := allowsIn(fset, files)
	return bad
}

// HasMethod reports whether the type (or a pointer to it) has a method
// with the given name, e.g. a custom MarshalJSON.
func HasMethod(t types.Type, name string) bool {
	for _, typ := range []types.Type{t, types.NewPointer(t)} {
		ms := types.NewMethodSet(typ)
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == name {
				return true
			}
		}
	}
	return false
}
