// Package lint holds vbilint's analyzers and the suite that scopes them
// to the packages whose invariants they guard (see Suite and Scopes).
//
// The contract they machine-check is the one every layer of this repo is
// built on: identical jobs produce byte-identical results everywhere —
// serial, parallel, distributed, daemon-resumed — and the simulated
// machine is deterministic in its inputs alone.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"vbi/internal/lint/analysis"
)

// MapOrder flags `range` over a map unless the loop is provably
// order-insensitive. Go randomizes map iteration order per iteration, so
// any order-sensitive use leaks nondeterminism straight into results —
// the exact class behind the three reproducibility bugs PR 1 had to
// hand-hunt (buddy free-block pick, MTL remap order, TLB tie-break).
//
// Two shapes are recognized as order-insensitive:
//
//   - collect-then-sort: the body is exactly `s = append(s, ...)` and the
//     statement immediately after the loop sorts s;
//   - commutative accumulation: every statement is a commutative update
//     (x++, x--, numeric/bitwise compound assignment, m[k] = ... keyed by
//     the loop key, delete(m, k)), optionally guarded by an `if` whose
//     condition reads nothing the body writes.
//
// Anything else needs sorted keys — or an explicit
// `//vbi:allow maporder <reason>`.
var MapOrder = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flags range over a map unless the loop is provably order-insensitive",
	Run:  runMapOrder,
}

func runMapOrder(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			body, ok := blockOf(n)
			if !ok {
				return true
			}
			for i, stmt := range body {
				rs, ok := stmt.(*ast.RangeStmt)
				if !ok {
					continue
				}
				t := pass.TypesInfo.TypeOf(rs.X)
				if t == nil {
					continue
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					continue
				}
				var next ast.Stmt
				if i+1 < len(body) {
					next = body[i+1]
				}
				if mapRangeOrderInsensitive(pass, rs, next) {
					continue
				}
				pass.Reportf(rs.For,
					"range over map %s: iteration order is nondeterministic; sort the keys first, or justify with //vbi:allow maporder <reason>",
					exprString(pass.Fset, rs.X))
			}
			return true
		})
	}
	return nil
}

// blockOf returns the statement list of any node that holds one, so
// range statements are always seen together with their following
// statement (needed for the collect-then-sort idiom).
func blockOf(n ast.Node) ([]ast.Stmt, bool) {
	switch n := n.(type) {
	case *ast.BlockStmt:
		return n.List, true
	case *ast.CaseClause:
		return n.Body, true
	case *ast.CommClause:
		return n.Body, true
	}
	return nil, false
}

func mapRangeOrderInsensitive(pass *analysis.Pass, rs *ast.RangeStmt, next ast.Stmt) bool {
	if isCollectThenSort(pass, rs, next) {
		return true
	}
	writes := writtenIdents(pass, rs.Body)
	// classes records which operation class each accumulator has seen:
	// updates within one class commute with each other (sums with sums,
	// masks with masks), but not across classes (x += a; x *= b applied
	// per entry depends on entry order).
	classes := make(map[string]opClass)
	for _, stmt := range rs.Body.List {
		if !commutativeStmt(pass, rs, stmt, writes, classes) {
			return false
		}
	}
	return true
}

// opClass groups accumulator updates that commute with each other.
type opClass int

const (
	classAdditive opClass = iota + 1 // += -= ++ --
	classMul                         // *= <<=
	classDiv                         // /= >>= (constant operand only)
	classOr                          // |=
	classAnd                         // &= &^=
	classXor                         // ^=
)

// classOf maps an assignment operator to its commuting class; ok is
// false for operators with no order-insensitive reading (%=, string +).
func classOf(tok token.Token) (opClass, bool) {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		return classAdditive, true
	case token.MUL_ASSIGN, token.SHL_ASSIGN:
		return classMul, true
	case token.QUO_ASSIGN, token.SHR_ASSIGN:
		return classDiv, true
	case token.OR_ASSIGN:
		return classOr, true
	case token.AND_ASSIGN, token.AND_NOT_ASSIGN:
		return classAnd, true
	case token.XOR_ASSIGN:
		return classXor, true
	}
	return 0, false
}

// recordClass registers an accumulator update, failing on a cross-class
// mix for the same target expression.
func recordClass(pass *analysis.Pass, classes map[string]opClass, target ast.Expr, c opClass) bool {
	key := exprString(pass.Fset, target)
	if prev, ok := classes[key]; ok && prev != c {
		return false
	}
	classes[key] = c
	return true
}

// isCollectThenSort matches
//
//	for k := range m { s = append(s, ...) }
//	sort.Xxx(s...)            // or slices.Sort(s), sort.Slice(s, ...)
//
// where the sort is the statement immediately following the loop.
func isCollectThenSort(pass *analysis.Pass, rs *ast.RangeStmt, next ast.Stmt) bool {
	if len(rs.Body.List) != 1 || next == nil {
		return false
	}
	asg, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || asg.Tok != token.ASSIGN || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	dest, ok := asg.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || !isBuiltin(pass, call.Fun, "append") || len(call.Args) < 2 {
		return false
	}
	if arg, ok := call.Args[0].(*ast.Ident); !ok || objOf(pass, arg) != objOf(pass, dest) {
		return false
	}
	// The next statement must be a sort.*/slices.Sort* call taking dest.
	es, ok := next.(*ast.ExprStmt)
	if !ok {
		return false
	}
	sortCall, ok := es.X.(*ast.CallExpr)
	if !ok || len(sortCall.Args) == 0 {
		return false
	}
	sel, ok := sortCall.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := pkgOf(pass, sel.X)
	if !ok || (pkg != "sort" && pkg != "slices") {
		return false
	}
	first, ok := sortCall.Args[0].(*ast.Ident)
	return ok && objOf(pass, first) == objOf(pass, dest)
}

// commutativeStmt reports whether one statement's effect is independent
// of the order map entries are visited in.
func commutativeStmt(pass *analysis.Pass, rs *ast.RangeStmt, stmt ast.Stmt, writes map[types.Object]bool, classes map[string]opClass) bool {
	switch s := stmt.(type) {
	case *ast.IncDecStmt:
		return callFree(pass, s.X) && isInteger(pass.TypesInfo.TypeOf(s.X)) &&
			recordClass(pass, classes, s.X, classAdditive)
	case *ast.AssignStmt:
		return commutativeAssign(pass, rs, s, classes)
	case *ast.ExprStmt:
		// delete(m, k) with the loop key removes a distinct entry per
		// visit, whatever the order.
		call, ok := s.X.(*ast.CallExpr)
		if !ok || !isBuiltin(pass, call.Fun, "delete") || len(call.Args) != 2 {
			return false
		}
		return isLoopVar(pass, rs.Key, call.Args[1])
	case *ast.IfStmt:
		// A guard is safe when its condition cannot observe anything the
		// body accumulates: no calls, and no reads of written variables.
		if s.Init != nil || s.Else != nil {
			return false
		}
		if !callFree(pass, s.Cond) || readsAny(pass, s.Cond, writes) {
			return false
		}
		for _, inner := range s.Body.List {
			if !commutativeStmt(pass, rs, inner, writes, classes) {
				return false
			}
		}
		return true
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE
	}
	return false
}

func commutativeAssign(pass *analysis.Pass, rs *ast.RangeStmt, s *ast.AssignStmt, classes map[string]opClass) bool {
	if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
		return false
	}
	if !callFree(pass, s.Rhs[0]) {
		return false
	}
	if s.Tok == token.ASSIGN {
		// m[k] = v keyed by the loop key writes a distinct cell per visit.
		idx, ok := s.Lhs[0].(*ast.IndexExpr)
		if !ok {
			return false
		}
		t := pass.TypesInfo.TypeOf(idx.X)
		if t == nil {
			return false
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return false
		}
		return isLoopVar(pass, rs.Key, idx.Index) && callFree(pass, idx.X)
	}
	class, ok := classOf(s.Tok)
	if !ok {
		return false
	}
	// Only integer accumulation commutes: float += is the classic
	// nondeterministic sum (rounding depends on addition order), and
	// string += depends on order outright.
	t := pass.TypesInfo.TypeOf(s.Lhs[0])
	if t == nil || !isInteger(t) || !callFree(pass, s.Lhs[0]) {
		return false
	}
	// Division and shifts commute only when every visit applies the same
	// constant operand.
	if class == classDiv && pass.TypesInfo.Types[s.Rhs[0]].Value == nil {
		return false
	}
	return recordClass(pass, classes, s.Lhs[0], class)
}

// writtenIdents collects every object assigned or inc/dec'd anywhere in
// the loop body (used to keep `if` guards from observing accumulation).
func writtenIdents(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]bool {
	writes := make(map[types.Object]bool)
	record := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok {
			if obj := objOf(pass, id); obj != nil {
				writes[obj] = true
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				record(l)
			}
		case *ast.IncDecStmt:
			record(n.X)
		}
		return true
	})
	return writes
}

func readsAny(pass *analysis.Pass, e ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && objs[objOf(pass, id)] {
			found = true
		}
		return !found
	})
	return found
}

// callFree reports whether the expression contains no function calls
// other than the pure builtins len, cap, min and max.
func callFree(pass *analysis.Pass, e ast.Expr) bool {
	if e == nil {
		return true
	}
	pure := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		for _, name := range []string{"len", "cap", "min", "max"} {
			if isBuiltin(pass, call.Fun, name) {
				return true
			}
		}
		pure = true // found an impure call
		return false
	})
	return !pure
}

func isLoopVar(pass *analysis.Pass, loopVar, e ast.Expr) bool {
	lid, ok := loopVar.(*ast.Ident)
	if !ok || lid.Name == "_" {
		return false
	}
	id, ok := e.(*ast.Ident)
	return ok && objOf(pass, id) != nil && objOf(pass, id) == objOf(pass, lid)
}

func isBuiltin(pass *analysis.Pass, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isBuiltin := objOf(pass, id).(*types.Builtin)
	return isBuiltin
}

func objOf(pass *analysis.Pass, id *ast.Ident) types.Object {
	if o := pass.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return pass.TypesInfo.Defs[id]
}

// pkgOf resolves an expression to the package it names, if any.
func pkgOf(pass *analysis.Pass, e ast.Expr) (string, bool) {
	id, ok := e.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := objOf(pass, id).(*types.PkgName)
	if !ok {
		return "", false
	}
	return pn.Imported().Path(), true
}

func isInteger(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
