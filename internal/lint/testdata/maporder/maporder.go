// Package maporder is the fixture for the maporder analyzer: every map
// range here is either provably order-insensitive, sorted first, allowed,
// or flagged.
package maporder

import "sort"

// flagged: the body observes iteration order (println is a call).
func flagged(m map[string]int) {
	for k, v := range m { // want `range over map m`
		println(k, v)
	}
}

// collectThenSort: the blessed idiom — append keys, sort immediately.
func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// intSum: commutative integer accumulation is order-insensitive.
func intSum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// floatSum: float addition is NOT associative; order changes the result.
func floatSum(m map[string]float64) float64 {
	var s float64
	for _, v := range m { // want `range over map m`
		s += v
	}
	return s
}

// mixedClasses: += and *= on one accumulator do not commute with each
// other even though each is commutative alone.
func mixedClasses(m map[string]int) int {
	acc := 1
	for _, v := range m { // want `range over map m`
		acc += v
		acc *= v
	}
	return acc
}

// keyedWrite: writing m2[k] for the loop key touches disjoint cells.
func keyedWrite(m map[string]int, m2 map[string]int) {
	for k, v := range m {
		m2[k] = v * 2
	}
}

// clearByKey: delete of the loop key is order-insensitive.
func clearByKey(m map[string]int) {
	for k := range m {
		delete(m, k)
	}
}

// sortMissing: collecting without the adjacent sort is not the idiom.
func sortMissing(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // want `range over map m`
		keys = append(keys, k)
	}
	return keys
}

// allowed: suppressed with a justification.
func allowed(m map[string]int) {
	//vbi:allow maporder fixture: order of these prints is not asserted
	for k, v := range m {
		println(k, v)
	}
}
