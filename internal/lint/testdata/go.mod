// Fixture module for internal/lint/analysistest: nesting a module here
// keeps the deliberately-violating fixture code out of the main module's
// ./... patterns (go list skips nested modules), so vbilint over the repo
// stays clean while the analyzer tests load these packages directly.
module fixture

go 1.22
