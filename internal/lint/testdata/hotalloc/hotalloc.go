// Package hotalloc is the fixture for the hotalloc analyzer: allocation
// and dynamic dispatch are flagged only inside //vbi:hotpath functions.
package hotalloc

import (
	"fmt"
	"time"
)

type counter interface{ Bump() }

//vbi:hotpath
func hot(n int, c counter) []int {
	s := make([]int, 0, n) // want `hot path hot: make allocates`
	for i := 0; i < n; i++ {
		s = append(s, i) // want `hot path hot: append may grow and reallocate`
		c.Bump()         // want `hot path hot: interface method call Bump`
	}
	return s
}

//vbi:hotpath
func hotFmt(x int) string {
	return fmt.Sprintf("%d", x) // want `hot path hotFmt: fmt.Sprintf allocates and reflects`
}

//vbi:hotpath
func hotEscape(x int) *int {
	p := new(int) // want `hot path hotEscape: new allocates`
	*p = x
	return p
}

type point struct{ x, y int }

//vbi:hotpath
func hotComposite(x int) *point {
	return &point{x: x} // want `hot path hotComposite: &composite-literal escapes to the heap`
}

//vbi:hotpath
func hotClosure(xs []int) func() int {
	return func() int { // want `hot path hotClosure: function literal allocates a closure per call`
		return len(xs)
	}
}

//vbi:hotpath
func hotConv(s string) []byte {
	return []byte(s) // want `hot path hotConv: string/byte-slice conversion copies and allocates`
}

// cold is unmarked: the same body produces no diagnostics.
func cold(n int, c counter) []int {
	s := make([]int, 0, n)
	c.Bump()
	return append(s, n)
}

// hotIndexed shows the cheap patterns that stay silent on a hot path:
// indexing, arithmetic, concrete method calls, len/cap.
//
//vbi:hotpath
func hotIndexed(xs []int, p *point) int {
	t := 0
	for i := 0; i < len(xs); i++ {
		t += xs[i]
	}
	t += p.x
	return t
}

//vbi:hotpath
func hotAllowed(n int) []int {
	//vbi:allow hotalloc fixture: setup allocation, amortized over the run
	return make([]int, n)
}

// timer mirrors obs.Timer: a value type with concrete methods, the shape
// the runner threads through its per-job dispatch path. The fixture
// module cannot import vbi packages, so the contract is pinned here in
// miniature: value construction and concrete method calls stay silent on
// a hot path, while the tempting pointer-and-closure variants are
// exactly what the analyzer exists to reject.
type timer struct {
	queuedAt  time.Time
	startedAt time.Time
}

func startTimer(queuedAt time.Time) timer {
	return timer{queuedAt: queuedAt, startedAt: time.Now()}
}

func (t timer) stop() time.Duration { return time.Since(t.startedAt) }

// hotTimed wraps work in a timer the way harness.Runner wraps each job:
// no diagnostics — the whole point of the value-type design.
//
//vbi:hotpath
func hotTimed(xs []int) (int, time.Duration) {
	tm := startTimer(time.Time{})
	total := 0
	for _, x := range xs {
		total += x
	}
	return total, tm.stop()
}

// hotTimerEscape is the rejected variant: a per-job *timer escapes and
// costs an allocation per measurement.
//
//vbi:hotpath
func hotTimerEscape() *timer {
	return &timer{startedAt: time.Now()} // want `hot path hotTimerEscape: &composite-literal escapes to the heap`
}

// hotTimerClosure is the other rejected variant: deferring the stop via
// a closure allocates on every call.
//
//vbi:hotpath
func hotTimerClosure(xs []int) int {
	tm := startTimer(time.Time{})
	defer func() { // want `hot path hotTimerClosure: function literal allocates a closure per call`
		_ = tm.stop()
	}()
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// The shapes below mirror the per-reference probe paths in internal/cache
// and internal/tlb after the map-free rewrite. The fixture module cannot
// import vbi packages, so the contract is pinned here in miniature.

type way struct {
	tag   uint64
	used  uint64
	valid bool
}

type probeCache struct {
	lines []way
	ways  int
	tick  uint64
}

// hotProbe is the direct set-indexed way scan every cache/TLB probe now
// compiles down to: index arithmetic, a bounded flat-array walk, in-place
// field updates. Nothing to flag.
//
//vbi:hotpath
func (c *probeCache) hotProbe(line uint64, set int) int {
	base := set * c.ways
	for i := base; i < base+c.ways; i++ {
		if c.lines[i].valid && c.lines[i].tag == line {
			c.tick++
			c.lines[i].used = c.tick
			return i
		}
	}
	return -1
}

// hotScratchAppend is the scratch-buffer contract (Hierarchy.wb,
// MTL.walkBuf): appending into a caller-owned buffer that retains its
// capacity across calls is fine, but the analyzer cannot prove that, so
// the site carries an explicit justification.
//
//vbi:hotpath
func hotScratchAppend(scratch []uint64, victims ...uint64) []uint64 {
	for _, v := range victims {
		//vbi:allow hotalloc fixture: caller-owned scratch buffer, capacity retained across calls
		scratch = append(scratch, v)
	}
	return scratch
}

// hotFreshSlice is the rejected variant of the same probe: building a
// fresh result slice on every reference.
//
//vbi:hotpath
func hotFreshSlice(c *probeCache, set int) []uint64 {
	out := make([]uint64, 0, c.ways) // want `hot path hotFreshSlice: make allocates`
	base := set * c.ways
	for i := base; i < base+c.ways; i++ {
		if c.lines[i].valid {
			out = append(out, c.lines[i].tag) // want `hot path hotFreshSlice: append may grow and reallocate`
		}
	}
	return out
}

// hotMapProbe is the other rejected shape this PR removed: a per-probe
// map side-index. Map reads are not allocations, so the analyzer stays
// silent on the lookup itself — but the miss-path insert pattern the old
// code used needed a map literal per rebuild, which is flagged.
//
//vbi:hotpath
func hotMapProbe(idx map[uint64]int, line uint64) map[uint64]int {
	if _, ok := idx[line]; ok {
		return idx
	}
	if idx == nil {
		idx = make(map[uint64]int) // want `hot path hotMapProbe: make allocates`
	}
	idx[line] = 0
	return idx
}
