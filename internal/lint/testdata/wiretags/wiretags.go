// Package wiretags is the fixture for the wiretags analyzer: every
// exported field reachable from a //vbi:wire root must carry a json tag.
package wiretags

import "time"

// Bad reaches its own untagged field and, through Inner, a nested one.
//
//vbi:wire
type Bad struct { // want `wire struct Bad reaches field Bad.Version` `wire struct Bad reaches field Inner.Bare`
	Version string
	Inner   Inner `json:"inner"`
}

// Inner is not marked itself; it is checked because Bad reaches it.
type Inner struct {
	Tagged string `json:"tagged"`
	Bare   string
}

// Good is fully tagged, including through slices, maps and embedding.
//
//vbi:wire
type Good struct {
	Embedded
	Name  string          `json:"name"`
	Items []Inner2        `json:"items"`
	Index map[string]Leaf `json:"index"`
	Ptr   *Leaf           `json:"ptr,omitempty"`
	When  time.Time       `json:"when"`
	skip  map[string]int  // unexported: not part of the wire format
}

type Embedded struct {
	ID string `json:"id"`
}

type Inner2 struct {
	V int `json:"v"`
}

type Leaf struct {
	W int `json:"w"`
}

// Sealed has a custom MarshalJSON, so its fields are not the wire format.
//
//vbi:wire
type Sealed struct {
	Hidden string
}

func (s Sealed) MarshalJSON() ([]byte, error) { return []byte(`{}`), nil }

// Allowed is suppressed with a justification.
//
//vbi:wire
//vbi:allow wiretags fixture: legacy struct, tags arrive with the v2 wire
type Allowed struct {
	Legacy string
}
