// Package wallclock is the fixture for the wallclock analyzer: host time
// and globally-seeded randomness are flagged; seeded sources and plain
// type mentions are not.
package wallclock

import (
	"math/rand"
	"time"
)

func hostNow() time.Time {
	return time.Now() // want `time.Now in the simulation core`
}

func hostSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time.Since in the simulation core`
}

func hostSleep() {
	time.Sleep(time.Millisecond) // want `time.Sleep in the simulation core`
}

func globalRand() int {
	return rand.Intn(10) // want `rand.Intn uses the global rand source`
}

// seeded: the blessed construction — randomness flows from an explicit
// seed, so every process draws the same stream.
func seeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// typeMention: naming rand.Rand or time.Duration is not a clock read.
func typeMention(r *rand.Rand, d time.Duration) time.Duration {
	return d * time.Duration(r.Intn(3))
}

// calendar: constructing a fixed date reads no clock.
func calendar() time.Time {
	return time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC)
}

// allowed: suppressed with a justification.
func allowed() time.Time {
	//vbi:allow wallclock fixture: progress logging, not simulated time
	return time.Now()
}
