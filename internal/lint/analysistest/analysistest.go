// Package analysistest runs a vbilint analyzer over a fixture package and
// checks its diagnostics against the fixture's expectations, in the spirit
// of golang.org/x/tools/go/analysis/analysistest (stdlib-only, driven by
// internal/lint/load).
//
// Expectations are `// want` comments: a diagnostic on a line must be
// matched by a backquoted regexp in a want comment on the same line, and
// every want must be hit by at least one diagnostic.
//
//	for k := range m { // want `range over map`
//
// Several patterns may share one comment (`// want `a` `b“) when a line
// produces several diagnostics. Suppression is part of the contract under
// test: diagnostics silenced by a well-formed //vbi:allow directive are
// filtered before matching, so an allow-annotated line simply carries no
// want comment.
package analysistest

import (
	"fmt"
	"regexp"
	"sync"
	"testing"

	"vbi/internal/lint/analysis"
	"vbi/internal/lint/load"
)

var (
	mu      sync.Mutex
	loaders = map[string]*load.Loader{}
	loaded  = map[string][]*load.Package{}
)

// loadPkgs loads a fixture pattern, caching per (dir, pattern) so the four
// analyzer tests share one `go list` + typecheck per fixture package.
func loadPkgs(t *testing.T, dir, pattern string) []*load.Package {
	t.Helper()
	mu.Lock()
	defer mu.Unlock()
	key := dir + "\x00" + pattern
	if pkgs, ok := loaded[key]; ok {
		return pkgs
	}
	l, ok := loaders[dir]
	if !ok {
		l = load.New(dir)
		loaders[dir] = l
	}
	pkgs, err := l.Load(pattern)
	if err != nil {
		t.Fatalf("analysistest: load %s in %s: %v", pattern, dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("analysistest: pattern %s matched no packages in %s", pattern, dir)
	}
	loaded[key] = pkgs
	return pkgs
}

// want is one expected-diagnostic pattern at a file line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRE = regexp.MustCompile("(?:^|\\s)want((?:\\s+`[^`]*`)+)")
var patRE = regexp.MustCompile("`([^`]*)`")

// Run loads the fixture pattern relative to dir, applies the analyzer to
// each matched package, filters //vbi:allow-suppressed diagnostics, and
// compares the survivors against the fixtures' want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pattern string) {
	t.Helper()
	for _, pkg := range loadPkgs(t, dir, pattern) {
		runPkg(t, a, pkg)
	}
}

func runPkg(t *testing.T, a *analysis.Analyzer, pkg *load.Package) {
	t.Helper()
	fset := pkg.Fset()

	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, pm := range patRE.FindAllStringSubmatch(m[1], -1) {
					re, err := regexp.Compile(pm[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pm[1], err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}

	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:  a,
		Fset:      fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
	}
	if err := a.Run(pass); err != nil {
		t.Fatalf("%s on %s: %v", a.Name, pkg.Path, err)
	}

	for _, d := range analysis.Filter(fset, pkg.Files, a.Name, diags) {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic at %s:%d: %s",
				a.Name, pos.Filename, pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s: no diagnostic at %s:%d matching %q",
				a.Name, w.file, w.line, w.re)
		}
	}
}

// Findings runs the analyzer and returns the filtered diagnostics rendered
// as "line: message" strings, for tests that assert on exact output rather
// than want comments.
func Findings(t *testing.T, dir string, a *analysis.Analyzer, pattern string) []string {
	t.Helper()
	var out []string
	for _, pkg := range loadPkgs(t, dir, pattern) {
		fset := pkg.Fset()
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			t.Fatalf("%s on %s: %v", a.Name, pkg.Path, err)
		}
		for _, d := range analysis.Filter(fset, pkg.Files, a.Name, diags) {
			pos := fset.Position(d.Pos)
			out = append(out, fmt.Sprintf("%d: %s", pos.Line, d.Message))
		}
	}
	return out
}
