package lint

import (
	"fmt"
	"sort"
	"strings"

	"vbi/internal/lint/analysis"
	"vbi/internal/lint/load"
)

// simCorePackages are the packages where all time must be simulated
// cycles and all randomness must flow from a job seed (wallclock's
// scope). Subpackages inherit the scope.
var simCorePackages = []string{
	"vbi/internal/addr", "vbi/internal/cache", "vbi/internal/core",
	"vbi/internal/cpu", "vbi/internal/dram", "vbi/internal/enigma",
	"vbi/internal/memdata", "vbi/internal/mtl", "vbi/internal/osmodel",
	"vbi/internal/pagetable", "vbi/internal/phys", "vbi/internal/system",
	"vbi/internal/tlb", "vbi/internal/trace", "vbi/internal/workloads",
}

// Suite returns the vbilint analyzers in their fixed reporting order.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{MapOrder, WallClock, WireTags, HotAlloc}
}

// Lookup returns the named analyzer, or nil.
func Lookup(name string) *analysis.Analyzer {
	for _, a := range Suite() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// AppliesTo reports whether an analyzer is in scope for a package.
// maporder, wiretags and hotalloc run module-wide (determinism, wire
// pinning and hotpath marks matter everywhere, and the two marker-driven
// analyzers are inert without their markers); wallclock is scoped to the
// simulation core, where host time is a modeling error rather than a
// convenience.
func AppliesTo(a *analysis.Analyzer, pkgPath string) bool {
	if a != WallClock {
		return true
	}
	for _, p := range simCorePackages {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

// A Finding is one unsuppressed diagnostic, rendered for humans.
type Finding struct {
	Analyzer string
	File     string
	Line     int
	Col      int
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", f.File, f.Line, f.Col, f.Message, f.Analyzer)
}

// RunSuite applies every in-scope analyzer to every package, filters
// suppressed diagnostics, checks the //vbi:allow directives themselves,
// and returns the surviving findings sorted by position.
func RunSuite(pkgs []*load.Package) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range Suite() {
			if !AppliesTo(a, pkg.Path) {
				continue
			}
			var diags []analysis.Diagnostic
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset(),
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.Path, err)
			}
			for _, d := range analysis.Filter(pkg.Fset(), pkg.Files, a.Name, diags) {
				findings = append(findings, finding(pkg, a.Name, d))
			}
		}
		for _, d := range analysis.MalformedAllows(pkg.Fset(), pkg.Files) {
			findings = append(findings, finding(pkg, "vbilint", d))
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

func finding(pkg *load.Package, analyzer string, d analysis.Diagnostic) Finding {
	pos := pkg.Fset().Position(d.Pos)
	return Finding{
		Analyzer: analyzer,
		File:     pos.Filename,
		Line:     pos.Line,
		Col:      pos.Column,
		Message:  d.Message,
	}
}
