// Package load type-checks Go packages for vbilint using only the
// standard library: package metadata comes from `go list -deps -json`
// (the go toolchain is the one dependency the repo already requires) and
// type checking from go/parser + go/types.
//
// It is a deliberately small stand-in for golang.org/x/tools/go/packages,
// with one structural economy: packages named by the load patterns are
// checked in full (bodies, ASTs with comments, types.Info), while
// packages reached only as dependencies — including the standard library
// — are checked with IgnoreFuncBodies, which is all an analyzer needs
// from an import.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one fully type-checked target package.
type Package struct {
	Path  string
	Name  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	fset *token.FileSet
}

// Fset returns the FileSet all of the package's positions resolve in
// (shared across every package the same Loader checked).
func (p *Package) Fset() *token.FileSet { return p.fset }

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// A Loader owns one shared FileSet and a cache of checked packages, so
// repeated loads (e.g. every analyzer test in a process) amortize the
// cost of type-checking the standard library.
type Loader struct {
	Fset *token.FileSet

	dir     string
	metas   map[string]*listedPackage
	full    map[string]*Package       // targets: bodies + Info
	shallow map[string]*types.Package // dependencies: exported shape only
}

// New returns a Loader that resolves patterns and import paths relative
// to dir (the module root).
func New(dir string) *Loader {
	return &Loader{
		Fset:    token.NewFileSet(),
		dir:     dir,
		metas:   make(map[string]*listedPackage),
		full:    make(map[string]*Package),
		shallow: make(map[string]*types.Package),
	}
}

// goList runs `go list -e -deps -json` on the patterns and merges the
// results into the metadata table, returning the import paths the
// patterns named directly (DepOnly false), in go list order.
func (l *Loader) goList(patterns []string) ([]string, error) {
	args := append([]string{"list", "-e", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var targets []string
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var p listedPackage
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.ImportPath == "" {
			continue
		}
		if _, ok := l.metas[p.ImportPath]; !ok {
			meta := p
			l.metas[p.ImportPath] = &meta
		}
		if !p.DepOnly {
			targets = append(targets, p.ImportPath)
		}
	}
	return targets, nil
}

// Ensure makes the named import paths (and their dependencies)
// resolvable through Importer without loading them as targets. The
// fixture runner uses it for a test package's imports.
func (l *Loader) Ensure(paths ...string) error {
	var missing []string
	for _, p := range paths {
		if p == "unsafe" || p == "C" {
			continue
		}
		if _, ok := l.metas[p]; !ok {
			missing = append(missing, p)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	_, err := l.goList(missing)
	return err
}

// Load resolves the patterns and returns the named packages fully
// type-checked, in `go list` order. A package that fails to type-check
// is an error: vbilint runs on trees that build.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	targets, err := l.goList(patterns)
	if err != nil {
		return nil, err
	}
	pkgs := make([]*Package, 0, len(targets))
	for _, path := range targets {
		p, err := l.checkFull(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Importer returns a types importer backed by the loader's metadata and
// caches, for type-checking sources outside the module (test fixtures).
func (l *Loader) Importer() types.ImporterFrom {
	return importerFor{l: l}
}

// checkFull type-checks a target package with bodies, comments and Info.
func (l *Loader) checkFull(path string) (*Package, error) {
	if p, ok := l.full[path]; ok {
		return p, nil
	}
	meta, ok := l.metas[path]
	if !ok {
		return nil, fmt.Errorf("load: no metadata for package %q", path)
	}
	if meta.Error != nil {
		return nil, fmt.Errorf("load: %s: %s", path, meta.Error.Err)
	}
	files, err := l.parse(meta, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	cfg := types.Config{
		Importer:    importerFor{l: l, importMap: meta.ImportMap},
		FakeImportC: true,
		Error:       func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := cfg.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("load: type-checking %s: %v", path, typeErrs[0])
	}
	p := &Package{
		Path:  path,
		Name:  meta.Name,
		Dir:   meta.Dir,
		Files: files,
		Types: tpkg,
		Info:  info,
		fset:  l.Fset,
	}
	l.full[path] = p
	return p, nil
}

// checkShallow type-checks a dependency package without function bodies.
// Soft type errors are tolerated (e.g. platform-conditional corners of
// the standard library); the exported shape is what matters.
func (l *Loader) checkShallow(path string) (*types.Package, error) {
	if p, ok := l.full[path]; ok {
		return p.Types, nil
	}
	if t, ok := l.shallow[path]; ok {
		return t, nil
	}
	meta, ok := l.metas[path]
	if !ok {
		return nil, fmt.Errorf("load: no metadata for import %q", path)
	}
	if meta.Error != nil {
		return nil, fmt.Errorf("load: %s: %s", path, meta.Error.Err)
	}
	files, err := l.parse(meta, 0)
	if err != nil {
		return nil, err
	}
	cfg := types.Config{
		Importer:         importerFor{l: l, importMap: meta.ImportMap},
		FakeImportC:      true,
		IgnoreFuncBodies: true,
		Error:            func(error) {},
	}
	tpkg, _ := cfg.Check(path, l.Fset, files, nil)
	if tpkg == nil {
		return nil, fmt.Errorf("load: type-checking import %q failed", path)
	}
	tpkg.MarkComplete()
	l.shallow[path] = tpkg
	return tpkg, nil
}

func (l *Loader) parse(meta *listedPackage, mode parser.Mode) ([]*ast.File, error) {
	names := append([]string(nil), meta.GoFiles...)
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(meta.Dir, name), nil, mode)
		if err != nil {
			return nil, fmt.Errorf("load: %s: %v", meta.ImportPath, err)
		}
		files = append(files, f)
	}
	return files, nil
}

// importerFor resolves one package's imports, applying its ImportMap
// (vendored standard-library paths) first.
type importerFor struct {
	l         *Loader
	importMap map[string]string
}

func (im importerFor) Import(path string) (*types.Package, error) {
	return im.ImportFrom(path, "", 0)
}

func (im importerFor) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if mapped, ok := im.importMap[path]; ok {
		path = mapped
	}
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return im.l.checkShallow(path)
}
