package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"reflect"
	"sort"
	"strings"

	"vbi/internal/lint/analysis"
)

// WireTags checks structs marked `//vbi:wire` — the dist/sweepd wire
// protocols, the canonical job JSON and the pinned export formats. Every
// exported, non-embedded field of a wire struct, and of every module
// struct reachable through its fields, must carry an explicit `json` tag:
// an untagged field marshals under its Go name, so a routine rename would
// silently change cache keys, wire shape or on-disk journals.
//
// Types with a custom MarshalJSON are exempt (their wire form does not
// come from field tags), as are types outside this module.
var WireTags = &analysis.Analyzer{
	Name: "wiretags",
	Doc:  "requires explicit json tags on //vbi:wire structs and every module struct reachable from them",
	Run:  runWireTags,
}

func runWireTags(pass *analysis.Pass) error {
	reported := make(map[string]bool) // qualified Type.Field, deduped across roots
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				_, marked := analysis.Directive(ts.Doc, "wire")
				if !marked {
					// A single-type declaration hangs the doc comment on
					// the GenDecl, not the TypeSpec.
					_, marked = analysis.Directive(gd.Doc, "wire")
				}
				if !marked {
					continue
				}
				obj := pass.TypesInfo.Defs[ts.Name]
				if obj == nil {
					continue
				}
				named, ok := obj.Type().(*types.Named)
				if !ok {
					pass.Reportf(ts.Pos(), "//vbi:wire on %s, which is not a named type", ts.Name.Name)
					continue
				}
				if _, ok := named.Underlying().(*types.Struct); !ok {
					pass.Reportf(ts.Pos(), "//vbi:wire on %s, which is not a struct type", ts.Name.Name)
					continue
				}
				checkWire(pass, ts, named, reported)
			}
		}
	}
	return nil
}

// checkWire walks the type graph reachable from the root wire struct and
// reports every module struct field missing an explicit json tag. All
// diagnostics anchor at the marked root declaration (the reachable type
// may live in another package), naming the offending field.
func checkWire(pass *analysis.Pass, root *ast.TypeSpec, rootType *types.Named, reported map[string]bool) {
	var missing []string
	seen := make(map[*types.Named]bool)

	var visitType func(t types.Type)
	visitStruct := func(owner *types.Named, st *types.Struct) {
		for i := 0; i < st.NumFields(); i++ {
			field := st.Field(i)
			if field.Embedded() {
				// Untagged embedded structs promote their fields; tagged
				// ones nest. Either way the inner fields are on the wire.
				visitType(field.Type())
				continue
			}
			if !field.Exported() {
				continue // unexported fields never marshal
			}
			if reflect.StructTag(st.Tag(i)).Get("json") == "" {
				missing = append(missing, qualifiedField(pass, owner, field))
			}
			visitType(field.Type())
		}
	}
	visitType = func(t types.Type) {
		switch t := t.(type) {
		case *types.Named:
			if seen[t] {
				return
			}
			seen[t] = true
			if !inModule(pass, t) {
				return
			}
			if analysis.HasMethod(t, "MarshalJSON") {
				return
			}
			if st, ok := t.Underlying().(*types.Struct); ok {
				visitStruct(t, st)
			} else {
				visitType(t.Underlying())
			}
		case *types.Pointer:
			visitType(t.Elem())
		case *types.Slice:
			visitType(t.Elem())
		case *types.Array:
			visitType(t.Elem())
		case *types.Map:
			visitType(t.Elem())
		case *types.Struct:
			visitStruct(nil, t)
		}
	}
	visitType(rootType)

	sort.Strings(missing)
	for _, field := range missing {
		if reported[field] {
			continue
		}
		reported[field] = true
		pass.Reportf(root.Pos(),
			"wire struct %s reaches field %s, which has no json tag: a field rename would silently change the wire format",
			rootType.Obj().Name(), field)
	}
}

// inModule reports whether the named type belongs to this module (first
// import-path element matches the pass package's). Standard-library and
// external types cannot be tagged here and are skipped.
func inModule(pass *analysis.Pass, t *types.Named) bool {
	pkg := t.Obj().Pkg()
	if pkg == nil {
		return false
	}
	return firstPathElem(pkg.Path()) == firstPathElem(pass.Pkg.Path())
}

func firstPathElem(path string) string {
	if i := strings.Index(path, "/"); i >= 0 {
		return path[:i]
	}
	return path
}

func qualifiedField(pass *analysis.Pass, owner *types.Named, field *types.Var) string {
	if owner == nil {
		return field.Name()
	}
	pkg := owner.Obj().Pkg()
	if pkg != nil && pkg != pass.Pkg {
		return fmt.Sprintf("%s.%s.%s", pkg.Name(), owner.Obj().Name(), field.Name())
	}
	return fmt.Sprintf("%s.%s", owner.Obj().Name(), field.Name())
}
