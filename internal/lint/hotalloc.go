package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"vbi/internal/lint/analysis"
)

// HotAlloc flags allocation and dynamic-dispatch sources inside functions
// marked `//vbi:hotpath` — the per-reference simulation spine, executed
// hundreds of millions of times per sweep. It seeds the ROADMAP's hot-loop
// rewrite by making every alloc/dispatch site in that spine visible and
// un-mergeable unless justified:
//
//   - make/new and &composite-literals (heap allocation),
//   - append (may grow and reallocate),
//   - function literals (closure allocation per call),
//   - any fmt call (Sprintf and friends allocate and reflect),
//   - string<->[]byte/[]rune conversions (copy + allocation),
//   - interface method calls (dynamic dispatch, inhibits inlining).
//
// Callees are not analyzed transitively: mark each function on the spine.
var HotAlloc = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "flags allocations, fmt calls and interface dispatch in //vbi:hotpath functions",
	Run:  runHotAlloc,
}

func runHotAlloc(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if _, marked := analysis.Directive(fd.Doc, "hotpath"); !marked {
				continue
			}
			checkHotBody(pass, fd)
		}
	}
	return nil
}

func checkHotBody(pass *analysis.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotCall(pass, name, n)
		case *ast.UnaryExpr:
			if _, lit := n.X.(*ast.CompositeLit); lit && n.Op == token.AND {
				pass.Reportf(n.Pos(), "hot path %s: &composite-literal escapes to the heap", name)
			}
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "hot path %s: function literal allocates a closure per call", name)
			return false // the closure body is cold until marked itself
		}
		return true
	})
}

func checkHotCall(pass *analysis.Pass, name string, call *ast.CallExpr) {
	// Builtin allocators.
	for _, b := range []string{"make", "new", "append"} {
		if isBuiltin(pass, call.Fun, b) {
			what := "allocates"
			if b == "append" {
				what = "may grow and reallocate"
			}
			pass.Reportf(call.Pos(), "hot path %s: %s %s", name, b, what)
			return
		}
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		// A conversion like []byte(s) parses as a CallExpr with a type
		// operand.
		if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
			if convAllocates(tv.Type, pass.TypesInfo.TypeOf(call.Args[0])) {
				pass.Reportf(call.Pos(), "hot path %s: string/byte-slice conversion copies and allocates", name)
			}
		}
		return
	}
	if pkg, ok := pkgOf(pass, sel.X); ok {
		if pkg == "fmt" {
			pass.Reportf(call.Pos(), "hot path %s: fmt.%s allocates and reflects", name, sel.Sel.Name)
		}
		return
	}
	if s := pass.TypesInfo.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
		if types.IsInterface(s.Recv()) {
			pass.Reportf(call.Pos(), "hot path %s: interface method call %s (dynamic dispatch)", name, sel.Sel.Name)
		}
	}
}

// convAllocates reports whether a conversion between string and
// []byte/[]rune copies.
func convAllocates(to, from types.Type) bool {
	if from == nil {
		return false
	}
	return (isString(to) && isByteOrRuneSlice(from)) || (isByteOrRuneSlice(to) && isString(from))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
