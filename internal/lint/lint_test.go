package lint_test

import (
	"testing"

	"vbi/internal/lint"
	"vbi/internal/lint/analysistest"
	"vbi/internal/lint/load"
)

// The fixture module under testdata/ is nested (its own go.mod), so the
// deliberately-violating code never appears in the main module's ./...
// patterns; the analyzer tests load it directly.

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, "testdata", lint.MapOrder, "./maporder")
}

func TestWallClock(t *testing.T) {
	analysistest.Run(t, "testdata", lint.WallClock, "./wallclock")
}

func TestWireTags(t *testing.T) {
	analysistest.Run(t, "testdata", lint.WireTags, "./wiretags")
}

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", lint.HotAlloc, "./hotalloc")
}

// TestAppliesTo pins the analyzer scope map: wallclock only inside the
// simulation core, everything else module-wide.
func TestAppliesTo(t *testing.T) {
	cases := []struct {
		pkg  string
		name string
		want bool
	}{
		{"vbi/internal/tlb", "wallclock", true},
		{"vbi/internal/mtl", "wallclock", true},
		{"vbi/internal/dist", "wallclock", false},
		{"vbi/internal/harness", "wallclock", false},
		{"vbi/cmd/vbisweep", "wallclock", false},
		{"vbi/internal/dist", "maporder", true},
		{"vbi/internal/dist", "wiretags", true},
		{"vbi/internal/dist", "hotalloc", true},
	}
	for _, c := range cases {
		a := lint.Lookup(c.name)
		if a == nil {
			t.Fatalf("Lookup(%q) = nil", c.name)
		}
		if got := lint.AppliesTo(a, c.pkg); got != c.want {
			t.Errorf("AppliesTo(%s, %s) = %v, want %v", c.name, c.pkg, got, c.want)
		}
	}
}

// TestVbilintClean is the repo-wide gate: the full suite over the whole
// module must report nothing. A new violation either gets fixed or gets
// an explicit //vbi:allow with a reason — never merged silently.
func TestVbilintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide lint skipped in -short")
	}
	pkgs, err := load.New("../..").Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; pattern ./... resolved incorrectly", len(pkgs))
	}
	findings, err := lint.RunSuite(pkgs)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
