package memdata

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestReadUnwrittenIsZero(t *testing.T) {
	s := New()
	buf := []byte{1, 2, 3, 4}
	s.Read(0x1234, buf)
	if !bytes.Equal(buf, []byte{0, 0, 0, 0}) {
		t.Fatalf("unwritten read = %v", buf)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	s := New()
	data := []byte("hello, virtual block interface")
	s.Write(100, data)
	got := make([]byte, len(data))
	s.Read(100, got)
	if !bytes.Equal(got, data) {
		t.Fatalf("round trip = %q", got)
	}
}

func TestCrossLineWrite(t *testing.T) {
	s := New()
	data := make([]byte, 200) // spans 4 lines
	for i := range data {
		data[i] = byte(i)
	}
	s.Write(60, data) // straddles a line boundary at 64
	got := make([]byte, 200)
	s.Read(60, got)
	if !bytes.Equal(got, data) {
		t.Fatal("cross-line round trip failed")
	}
	// Bytes before the write remain zero.
	head := make([]byte, 60)
	s.Read(0, head)
	for _, b := range head {
		if b != 0 {
			t.Fatal("write leaked backwards")
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	s := New()
	f := func(a uint64, data []byte) bool {
		a %= 1 << 40
		if len(data) > 4096 {
			data = data[:4096]
		}
		s.Write(a, data)
		got := make([]byte, len(data))
		s.Read(a, got)
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCopyRange(t *testing.T) {
	s := New()
	data := make([]byte, 300)
	for i := range data {
		data[i] = byte(i * 7)
	}
	s.Write(1000, data)
	s.CopyRange(50000, 1000, 300)
	got := make([]byte, 300)
	s.Read(50000, got)
	if !bytes.Equal(got, data) {
		t.Fatal("CopyRange mismatch")
	}
}

func TestZeroRange(t *testing.T) {
	s := New()
	data := bytes.Repeat([]byte{0xff}, 256)
	s.Write(64, data)
	s.ZeroRange(128, 64) // a whole aligned line
	s.ZeroRange(70, 10)  // partial
	got := make([]byte, 256)
	s.Read(64, got)
	for i := 0; i < 256; i++ {
		a := 64 + i
		zeroed := (a >= 128 && a < 192) || (a >= 70 && a < 80)
		if zeroed && got[i] != 0 {
			t.Fatalf("byte %d not zeroed", a)
		}
		if !zeroed && got[i] != 0xff {
			t.Fatalf("byte %d clobbered", a)
		}
	}
	if s.PopulatedLines() != 3 {
		t.Fatalf("populated lines = %d, want 3 (aligned line dropped)", s.PopulatedLines())
	}
}
