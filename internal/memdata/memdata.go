// Package memdata provides a sparse, line-granularity functional backing
// store. The simulator's timing path does not need data contents, but the
// functional path (and the test suite) uses a Store to verify end-to-end
// memory semantics: zero-fill of never-written regions, copy-on-write
// cloning, VB promotion, swapping and memory-mapped files.
//
// Absent lines read as zeros, which models both fresh physical frames and
// the VBI zero-line optimization (§5.1).
package memdata

const lineShift = 6
const lineSize = 1 << lineShift

// Store is a sparse byte-addressable memory keyed by 64-bit addresses
// (physical or VBI, at the caller's choice).
type Store struct {
	lines map[uint64]*[lineSize]byte
}

// New returns an empty store.
func New() *Store {
	return &Store{lines: make(map[uint64]*[lineSize]byte)}
}

// Read copies len(buf) bytes starting at a into buf. Unwritten bytes read
// as zero.
func (s *Store) Read(a uint64, buf []byte) {
	for i := 0; i < len(buf); {
		ln := (a + uint64(i)) >> lineShift
		off := int((a + uint64(i)) & (lineSize - 1))
		n := lineSize - off
		if rem := len(buf) - i; n > rem {
			n = rem
		}
		if l, ok := s.lines[ln]; ok {
			copy(buf[i:i+n], l[off:off+n])
		} else {
			for j := i; j < i+n; j++ {
				buf[j] = 0
			}
		}
		i += n
	}
}

// Write copies data into the store starting at address a.
func (s *Store) Write(a uint64, data []byte) {
	for i := 0; i < len(data); {
		ln := (a + uint64(i)) >> lineShift
		off := int((a + uint64(i)) & (lineSize - 1))
		n := lineSize - off
		if rem := len(data) - i; n > rem {
			n = rem
		}
		l, ok := s.lines[ln]
		if !ok {
			l = new([lineSize]byte)
			s.lines[ln] = l
		}
		copy(l[off:off+n], data[i:i+n])
		i += n
	}
}

// CopyRange copies n bytes from src to dst (ranges must not overlap).
func (s *Store) CopyRange(dst, src uint64, n uint64) {
	buf := make([]byte, lineSize)
	for done := uint64(0); done < n; done += lineSize {
		chunk := uint64(lineSize)
		if n-done < chunk {
			chunk = n - done
		}
		s.Read(src+done, buf[:chunk])
		s.Write(dst+done, buf[:chunk])
	}
}

// ZeroRange clears n bytes starting at a (dropping whole lines so they stop
// consuming memory).
func (s *Store) ZeroRange(a uint64, n uint64) {
	for done := uint64(0); done < n; {
		cur := a + done
		off := cur & (lineSize - 1)
		if off == 0 && n-done >= lineSize {
			delete(s.lines, cur>>lineShift)
			done += lineSize
			continue
		}
		chunk := lineSize - off
		if n-done < chunk {
			chunk = n - done
		}
		if l, ok := s.lines[cur>>lineShift]; ok {
			for i := uint64(0); i < chunk; i++ {
				l[off+i] = 0
			}
		}
		done += chunk
	}
}

// PopulatedLines returns the number of lines holding data (for tests).
func (s *Store) PopulatedLines() int { return len(s.lines) }
