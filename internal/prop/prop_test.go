package prop

import (
	"testing"
	"testing/quick"
)

func TestHasWithWithout(t *testing.T) {
	p := Code.With(Kernel)
	if !p.Has(Code) || !p.Has(Kernel) || !p.Has(Code|Kernel) {
		t.Errorf("Has failed on %v", p)
	}
	if p.Has(ReadOnly) {
		t.Error("Has(ReadOnly) true on code|kernel")
	}
	if q := p.Without(Kernel); q != Code {
		t.Errorf("Without = %v, want %v", q, Code)
	}
}

func TestWithWithoutInverse(t *testing.T) {
	f := func(a, b uint64) bool {
		p, q := Props(a), Props(b)
		return p.With(q).Without(q) == p.Without(q) && p.With(q).Has(q)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		p    Props
		want string
	}{
		{0, "none"},
		{Code, "code"},
		{Code | Kernel, "code|kernel"},
		{LatencySensitive, "lat-sen"},
		{BandwidthSensitive | AccessRandom, "band-sen|random"},
		{1 << 60, "unknown"},
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Errorf("(%#x).String() = %q, want %q", uint64(c.p), got, c.want)
		}
	}
}
