// Package prop defines the VB property bitvector (§4.1.1): a set of flags
// that characterize the contents of a virtual block plus software-provided
// hints that describe the memory behaviour of the data the VB contains.
// The bitvector is part of the ISA specification; software passes it to
// request_vb and enable_vb, and the Memory Translation Layer consults it
// when making allocation, mapping and migration decisions.
package prop

import "strings"

// Props is the property bitvector attached to every VB.
type Props uint64

// Content flags (what the VB holds).
const (
	// Code marks a VB containing executable code.
	Code Props = 1 << iota
	// ReadOnly marks a VB whose contents never change after load.
	ReadOnly
	// Kernel marks a VB accessible only to the kernel client.
	Kernel
	// Compressible hints that the contents compress well.
	Compressible
	// Persistent marks a VB whose contents must survive power loss.
	Persistent
	// MappedFile marks a VB backing a memory-mapped file (§3.4): unallocated
	// regions are demand-loaded from storage rather than zero-filled.
	MappedFile

	// LatencySensitive hints that accesses are on the critical path and the
	// data should live in the lowest-latency memory available.
	LatencySensitive
	// BandwidthSensitive hints that the data is streamed at high rate.
	BandwidthSensitive
	// ErrorTolerant hints that the data tolerates bit errors (e.g. media).
	ErrorTolerant

	// AccessSequential, AccessStrided and AccessRandom are access-pattern
	// hints (at most one should be set).
	AccessSequential
	AccessStrided
	AccessRandom
)

var names = []struct {
	bit  Props
	name string
}{
	{Code, "code"},
	{ReadOnly, "read-only"},
	{Kernel, "kernel"},
	{Compressible, "compressible"},
	{Persistent, "persistent"},
	{MappedFile, "mapped-file"},
	{LatencySensitive, "lat-sen"},
	{BandwidthSensitive, "band-sen"},
	{ErrorTolerant, "err-tol"},
	{AccessSequential, "seq"},
	{AccessStrided, "strided"},
	{AccessRandom, "random"},
}

// Has reports whether all bits in q are set in p.
func (p Props) Has(q Props) bool { return p&q == q }

// With returns p with the bits of q added.
func (p Props) With(q Props) Props { return p | q }

// Without returns p with the bits of q cleared.
func (p Props) Without(q Props) Props { return p &^ q }

func (p Props) String() string {
	if p == 0 {
		return "none"
	}
	var parts []string
	for _, n := range names {
		if p.Has(n.bit) {
			parts = append(parts, n.name)
		}
	}
	if len(parts) == 0 {
		return "unknown"
	}
	return strings.Join(parts, "|")
}
