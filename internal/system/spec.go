package system

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
)

// Spec is a named system configuration: a built-in base Kind plus a typed
// parameter overlay. The ten evaluated kinds are pre-registered with empty
// overlays; variants ("Native-128TLB") are registered declaratively with
// Register and become resolvable everywhere a system name is accepted
// (harness jobs, vbisweep/vbisim flags, grid configs).
//
// A Spec is plain data with a canonical JSON form (see MarshalJSON):
// marshal → unmarshal → marshal is byte-identical, which is what lets a
// fully resolved spec travel inside a harness job — over the dist wire
// and into the result-cache key — instead of a name each process would
// re-resolve against its own registry.
type Spec struct {
	// Name labels the spec (and resolves it in the registry,
	// case-insensitively, when it is registered).
	Name string `json:"name"`
	// Base is the built-in Kind name the spec starts from.
	Base string `json:"base"`
	// Params overlays the tunable knobs; zero fields keep Table 1
	// defaults.
	Params Params `json:"params,omitempty"`
}

// specWire is the canonical JSON shape of a Spec. Params is a pointer so
// an empty overlay is omitted entirely (encoding/json does not honour
// omitempty on struct values), keeping the wire form and the cache key
// minimal and byte-stable.
type specWire struct {
	Name   string  `json:"name"`
	Base   string  `json:"base"`
	Params *Params `json:"params,omitempty"`
}

// MarshalJSON renders the canonical form: a zero overlay has no "params"
// key at all.
func (s Spec) MarshalJSON() ([]byte, error) {
	w := specWire{Name: s.Name, Base: s.Base}
	if !s.Params.IsZero() {
		w.Params = &s.Params
	}
	return json.Marshal(w)
}

// UnmarshalJSON accepts the canonical form (and, harmlessly, an explicit
// empty overlay, which normalizes away on the next marshal).
func (s *Spec) UnmarshalJSON(b []byte) error {
	var w specWire
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	s.Name, s.Base = w.Name, w.Base
	if w.Params != nil {
		s.Params = *w.Params
	} else {
		s.Params = Params{}
	}
	return nil
}

// SameDefinition reports whether two specs are the same definition under
// the registry's identity rules: names compare case-insensitively (the
// registry resolves them that way), base and overlay exactly. Register's
// idempotent upsert and harness.Grid's inline-spec conflict screen both
// use it, so the two can never disagree.
func (s Spec) SameDefinition(o Spec) bool {
	return strings.EqualFold(s.Name, o.Name) && s.Base == o.Base && s.Params == o.Params
}

// Validate checks the spec is materializable without touching any
// registry: named, based on a built-in kind, with a buildable overlay.
// It is what consumers of resolved specs (harness jobs, the dist wire)
// check instead of a registry lookup.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("system: spec has no name")
	}
	if _, err := ParseKind(s.Base); err != nil {
		return fmt.Errorf("system: spec %q: %w", s.Name, err)
	}
	if err := s.Params.Validate(); err != nil {
		return fmt.Errorf("system: spec %q: %w", s.Name, err)
	}
	return nil
}

// Config resolves the spec into a runnable Config (base kind + params);
// the caller fills the run-shape fields (refs, seed, ...).
func (s Spec) Config() (Config, error) {
	kind, err := ParseKind(s.Base)
	if err != nil {
		return Config{}, fmt.Errorf("system: spec %q: %w", s.Name, err)
	}
	return Config{Kind: kind, Params: s.Params}, nil
}

var specRegistry = struct {
	sync.RWMutex
	byName map[string]Spec // lowercased name -> spec
	order  []string        // registration order, original spelling
}{byName: map[string]Spec{}}

func init() {
	for _, k := range Kinds() {
		if err := Register(Spec{Name: k.String(), Base: k.String()}); err != nil {
			panic(err)
		}
	}
}

// Register adds a spec to the registry. The base must resolve to a
// built-in kind and the overlay must validate. Registration is an
// idempotent upsert for identical definitions — re-registering the exact
// same spec is a no-op, so declarative sources (grid config files) can
// register on every expansion — but a name already bound to a *different*
// definition is an error: one name can never mean two configurations.
func Register(s Spec) error {
	if err := s.Validate(); err != nil {
		return err
	}
	specRegistry.Lock()
	defer specRegistry.Unlock()
	key := strings.ToLower(s.Name)
	if prev, dup := specRegistry.byName[key]; dup {
		// A re-registration differing only in name spelling is the same
		// definition (the first spelling is kept).
		if prev.SameDefinition(s) {
			return nil
		}
		return fmt.Errorf("system: spec %q already registered with a different definition", s.Name)
	}
	specRegistry.byName[key] = s
	specRegistry.order = append(specRegistry.order, s.Name)
	return nil
}

// LookupSpec resolves a registered spec by name (case-insensitive).
func LookupSpec(name string) (Spec, bool) {
	specRegistry.RLock()
	defer specRegistry.RUnlock()
	s, ok := specRegistry.byName[strings.ToLower(name)]
	return s, ok
}

// ResolveSpec resolves a system name to its spec, with a suggestion list
// on failure. Every name-accepting entry point (harness jobs, the CLIs)
// funnels through it.
func ResolveSpec(name string) (Spec, error) {
	if s, ok := LookupSpec(name); ok {
		return s, nil
	}
	return Spec{}, fmt.Errorf("system: unknown system %q (known: %s)",
		name, strings.Join(SpecNames(), ", "))
}

// MustSpec returns a pointer to a copy of the named registered spec,
// panicking on unknown names. It is for compile-time-known names (the
// figure functions, tests); run-time names go through ResolveSpec.
func MustSpec(name string) *Spec {
	s, err := ResolveSpec(name)
	if err != nil {
		panic(err)
	}
	return &s
}

// Specs returns every registered spec in registration order (the ten
// built-in kinds first).
func Specs() []Spec {
	specRegistry.RLock()
	defer specRegistry.RUnlock()
	out := make([]Spec, 0, len(specRegistry.order))
	for _, name := range specRegistry.order {
		out = append(out, specRegistry.byName[strings.ToLower(name)])
	}
	return out
}

// SpecNames returns every registered spec name in registration order.
func SpecNames() []string {
	specRegistry.RLock()
	defer specRegistry.RUnlock()
	return append([]string(nil), specRegistry.order...)
}

// ParseKind resolves a built-in kind name (case-insensitive).
func ParseKind(name string) (Kind, error) {
	for _, k := range Kinds() {
		if strings.EqualFold(k.String(), name) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("system: unknown kind %q", name)
}

// HeteroMems returns the heterogeneous-memory architectures of §7.3.
func HeteroMems() []HeteroMem { return []HeteroMem{HeteroPCMDRAM, HeteroTLDRAM} }

// ParseHeteroMem resolves a heterogeneous-memory architecture name.
func ParseHeteroMem(name string) (HeteroMem, error) {
	for _, m := range HeteroMems() {
		if strings.EqualFold(m.String(), name) {
			return m, nil
		}
	}
	return 0, fmt.Errorf("system: unknown heterogeneous memory %q", name)
}

// Policies returns the data-placement policies of §7.3.
func Policies() []Policy { return []Policy{PolicyUnaware, PolicyVBI, PolicyIdeal} }

// ParsePolicy resolves a placement-policy name.
func ParsePolicy(name string) (Policy, error) {
	switch strings.ToLower(name) {
	case "unaware", "hotness-unaware":
		return PolicyUnaware, nil
	case "vbi":
		return PolicyVBI, nil
	case "ideal":
		return PolicyIdeal, nil
	}
	return 0, fmt.Errorf("system: unknown policy %q", name)
}
