package system

import (
	"fmt"
	"strings"
	"sync"
)

// Spec is a named system configuration: a built-in base Kind plus a typed
// parameter overlay. The ten evaluated kinds are pre-registered with empty
// overlays; variants ("Native-128TLB") are registered declaratively with
// Register and become resolvable everywhere a system name is accepted
// (harness jobs, vbisweep/vbisim flags, grid configs). Spec is plain data
// and round-trips through JSON.
type Spec struct {
	// Name resolves the spec in the registry (case-insensitive).
	Name string `json:"name"`
	// Base is the built-in Kind name the spec starts from.
	Base string `json:"base"`
	// Params overlays the tunable knobs; zero fields keep Table 1
	// defaults.
	Params Params `json:"params,omitempty"`
}

// Config resolves the spec into a runnable Config (base kind + params);
// the caller fills the run-shape fields (refs, seed, ...).
func (s Spec) Config() (Config, error) {
	kind, err := ParseKind(s.Base)
	if err != nil {
		return Config{}, fmt.Errorf("system: spec %q: %w", s.Name, err)
	}
	return Config{Kind: kind, Params: s.Params}, nil
}

var specRegistry = struct {
	sync.RWMutex
	byName map[string]Spec // lowercased name -> spec
	order  []string        // registration order, original spelling
}{byName: map[string]Spec{}}

func init() {
	for _, k := range Kinds() {
		if err := Register(Spec{Name: k.String(), Base: k.String()}); err != nil {
			panic(err)
		}
	}
}

// Register adds a spec to the registry. The name must be new and the base
// must resolve to a built-in kind; the overlay must validate.
func Register(s Spec) error {
	if s.Name == "" {
		return fmt.Errorf("system: spec has no name")
	}
	if _, err := ParseKind(s.Base); err != nil {
		return fmt.Errorf("system: spec %q: %w", s.Name, err)
	}
	if err := s.Params.Validate(); err != nil {
		return fmt.Errorf("system: spec %q: %w", s.Name, err)
	}
	specRegistry.Lock()
	defer specRegistry.Unlock()
	key := strings.ToLower(s.Name)
	if _, dup := specRegistry.byName[key]; dup {
		return fmt.Errorf("system: spec %q already registered", s.Name)
	}
	specRegistry.byName[key] = s
	specRegistry.order = append(specRegistry.order, s.Name)
	return nil
}

// LookupSpec resolves a registered spec by name (case-insensitive).
func LookupSpec(name string) (Spec, bool) {
	specRegistry.RLock()
	defer specRegistry.RUnlock()
	s, ok := specRegistry.byName[strings.ToLower(name)]
	return s, ok
}

// ResolveSpec resolves a system name to its spec, with a suggestion list
// on failure. Every name-accepting entry point (harness jobs, the CLIs)
// funnels through it.
func ResolveSpec(name string) (Spec, error) {
	if s, ok := LookupSpec(name); ok {
		return s, nil
	}
	return Spec{}, fmt.Errorf("system: unknown system %q (known: %s)",
		name, strings.Join(SpecNames(), ", "))
}

// Specs returns every registered spec in registration order (the ten
// built-in kinds first).
func Specs() []Spec {
	specRegistry.RLock()
	defer specRegistry.RUnlock()
	out := make([]Spec, 0, len(specRegistry.order))
	for _, name := range specRegistry.order {
		out = append(out, specRegistry.byName[strings.ToLower(name)])
	}
	return out
}

// SpecNames returns every registered spec name in registration order.
func SpecNames() []string {
	specRegistry.RLock()
	defer specRegistry.RUnlock()
	return append([]string(nil), specRegistry.order...)
}

// ParseKind resolves a built-in kind name (case-insensitive).
func ParseKind(name string) (Kind, error) {
	for _, k := range Kinds() {
		if strings.EqualFold(k.String(), name) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("system: unknown kind %q", name)
}

// HeteroMems returns the heterogeneous-memory architectures of §7.3.
func HeteroMems() []HeteroMem { return []HeteroMem{HeteroPCMDRAM, HeteroTLDRAM} }

// ParseHeteroMem resolves a heterogeneous-memory architecture name.
func ParseHeteroMem(name string) (HeteroMem, error) {
	for _, m := range HeteroMems() {
		if strings.EqualFold(m.String(), name) {
			return m, nil
		}
	}
	return 0, fmt.Errorf("system: unknown heterogeneous memory %q", name)
}

// Policies returns the data-placement policies of §7.3.
func Policies() []Policy { return []Policy{PolicyUnaware, PolicyVBI, PolicyIdeal} }

// ParsePolicy resolves a placement-policy name.
func ParsePolicy(name string) (Policy, error) {
	switch strings.ToLower(name) {
	case "unaware", "hotness-unaware":
		return PolicyUnaware, nil
	case "vbi":
		return PolicyVBI, nil
	case "ideal":
		return PolicyIdeal, nil
	}
	return 0, fmt.Errorf("system: unknown policy %q", name)
}
