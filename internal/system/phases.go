package system

import "vbi/internal/obs"

// Phases maps this run's system-specific event counters onto the
// cross-system phase breakdown that obs.JobTiming carries on the wire.
// Every system family exports its own Extra keys (conventional systems
// count TLB misses and walks, VBI systems MTL/CVT activity, Enigma CTC
// misses); this is the one place those vocabularies meet, so the
// harness, the worker /metrics and the sweep daemon all attribute time
// the same way:
//
//	tlb   first-level translation-cache misses
//	      (tlb.misses, mtl.tlb.misses, ctc.misses)
//	pwc   translation-structure lookups past the TLB
//	      (walks, cvt.misses)
//	walk  memory accesses issued by table walks
//	      (walk.accesses, mtl.walk.accesses)
//	cache references entering the cache hierarchy (MemRefs)
//	dram  main-memory accesses (DRAMAccesses)
//
// Counters a system does not keep contribute zero, so the breakdown is
// comparable across systems without every system growing every counter.
func (r RunResult) Phases() obs.PhaseCounts {
	e := r.Extra
	return obs.PhaseCounts{
		TLB:   e["tlb.misses"] + e["mtl.tlb.misses"] + e["ctc.misses"],
		PWC:   e["walks"] + e["cvt.misses"],
		Walk:  e["walk.accesses"] + e["mtl.walk.accesses"],
		Cache: r.MemRefs,
		DRAM:  r.DRAMAccesses,
	}
}

// SumPhases folds per-core results into one job-level breakdown (the
// form JobTiming carries for multiprogrammed bundles).
func SumPhases(results []RunResult) obs.PhaseCounts {
	var p obs.PhaseCounts
	for _, r := range results {
		p = p.Add(r.Phases())
	}
	return p
}
