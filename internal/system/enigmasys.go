package system

import (
	"vbi/internal/cache"
	"vbi/internal/cpu"
	"vbi/internal/dram"
	"vbi/internal/enigma"
	"vbi/internal/trace"
)

// enigmaRunner simulates Enigma-HW-2M (§7.2.2): intermediate-address
// caches (translation deferred to the memory controller, like VBI), a
// 16K-entry centralized translation cache, hardware flat-table walks, and
// 2 MB pages allocated on first touch.
type enigmaRunner struct {
	*coreKit
	eng   *enigma.Enigma
	bases []uint64

	// latFn is the access callback handed to cpu.Step, bound once at
	// construction so the per-reference loop never allocates a closure;
	// stepErr carries the current step's access error out of it.
	latFn   cpu.LatencyFn
	stepErr error

	c enigmaCounters
	s enigmaCounters
}

type enigmaCounters struct {
	ctcMisses  uint64
	pageAllocs uint64
}

func newEnigmaRunner(prof trace.Profile, cfg Config, mem *dram.Memory, llc *cache.Cache, sharedHier *cache.Hierarchy, shared *enigma.Enigma) (*enigmaRunner, error) {
	r := &enigmaRunner{coreKit: newCoreKit(prof, cfg.Seed, cfg.Params, mem, llc, sharedHier)}
	r.latFn = r.stepLatency
	if shared != nil {
		r.eng = shared
	} else {
		r.eng = enigma.New(cfg.Capacity)
	}
	for _, s := range prof.Structs {
		base := r.eng.AllocRegion(s.Size)
		r.bases = append(r.bases, base)
		// Initialization pass: first touches allocate the 2 MB pages of
		// the live data before the simulated region.
		for ia := base; ia < base+s.WarmBytes(); ia += enigma.PageSize {
			if _, err := r.eng.Translate(ia); err != nil {
				return nil, err
			}
		}
	}
	return r, nil
}

func (r *enigmaRunner) now() uint64 { return r.cpu.Now() }

//vbi:hotpath
func (r *enigmaRunner) step() error {
	ref := r.gen.Next()
	op := ref.Op
	op.Addr = r.bases[ref.StructIdx] + ref.Offset
	r.stepErr = nil
	r.cpu.Step(op, r.latFn)
	r.memRefs++
	return r.stepErr
}

// stepLatency adapts access to cpu.LatencyFn, parking any access error in
// stepErr for step to return. It is bound to latFn once at construction:
// passing a method value per step would allocate a closure per reference.
//
//vbi:hotpath
func (r *enigmaRunner) stepLatency(o cpu.Op, at uint64) uint64 {
	lat, err := r.access(o, at)
	if err != nil {
		r.stepErr = err
	}
	return lat
}

func (r *enigmaRunner) access(op cpu.Op, at uint64) (uint64, error) {
	ia := op.Addr
	line := cache.LineOf(ia)
	res := r.hier.Access(line, op.Write)
	t := res.Latency
	r.drainEnigmaWritebacks(res.Writebacks, at+t)
	if !res.MissedLLC {
		return t, nil
	}

	ev, err := r.eng.Translate(ia)
	if err != nil {
		return t, err
	}
	lat := uint64(r.p.CTCLookupLat)
	cur := at + t + lat
	if !ev.CTCHit {
		r.c.ctcMisses++
		cur = r.mem.Access(uint64(ev.WalkAccess), cur, false)
	}
	if ev.Allocated {
		r.c.pageAllocs++
		cur += uint64(r.p.MCAllocCost)
	}
	mcLat := cur - (at + t)
	if mcLat > cache.DefaultLatencies.LLC {
		t += mcLat - cache.DefaultLatencies.LLC
	}
	done := r.mem.Access(uint64(ev.PA), at+t, false)
	t = done - at
	wbs := r.hier.Fill(line, op.Write)
	r.drainEnigmaWritebacks(wbs, done)
	return t, nil
}

func (r *enigmaRunner) drainEnigmaWritebacks(wbs []uint64, at uint64) {
	for _, wb := range wbs {
		ev, err := r.eng.Translate(wb)
		if err != nil {
			continue
		}
		cur := at
		if !ev.CTCHit {
			cur = r.mem.Access(uint64(ev.WalkAccess), cur, false)
		}
		r.mem.Access(uint64(ev.PA), cur, true)
	}
}

func (r *enigmaRunner) beginMeasurement() {
	r.coreKit.beginMeasurement()
	r.s = r.c
}

func (r *enigmaRunner) result() RunResult {
	res := r.baseResult(EnigmaHW2M.String())
	res.Extra["ctc.misses"] = r.c.ctcMisses - r.s.ctcMisses
	res.Extra["page.allocs"] = r.c.pageAllocs - r.s.pageAllocs
	return res
}
