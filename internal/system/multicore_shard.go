package system

import (
	"fmt"
	"sync"

	"vbi/internal/lockstep"
)

// RunSharded executes the bundle's cores on up to `shards` concurrent
// goroutines with results byte-identical to Run(). Cores free-run through
// their private state (L1/L2, TLBs, trace generation) and serialize every
// shared-structure touch (LLC, DRAM timing, OS/MTL) through a lockstep
// turnstile that grants the turn in exactly the serial smallest-now()
// step order, so the shared state observes the identical operation
// sequence. If the one cross-core private coupling — LLC
// back-invalidation racing a core that ran ahead — is detected to have
// diverged, the run aborts and falls back to a fresh serial run; either
// path returns the same bytes.
func (m *Multicore) RunSharded(shards int) ([]RunResult, error) {
	n := len(m.runners)
	if shards > n {
		shards = n
	}
	if shards <= 1 || n < 2 {
		return m.Run()
	}

	g := lockstep.NewGroup(n)
	handles := make([]*lockstep.Handle, n)
	for i, r := range m.runners {
		handles[i] = g.Handle(i)
		r.kit().attachLockstep(handles[i])
		handles[i].Publish(r.now())
	}

	target := m.cfg.Warmup + m.cfg.Refs
	steps := make([]int, n) // steps[i] is touched only by core i's worker
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for w := 0; w < shards; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Whatever the exit path, retire the owned cores so no peer
			// waits on a stale key (Enter and WaitLead then drain).
			defer func() {
				for i := w; i < n; i += shards {
					handles[i].Finish()
				}
			}()
			for {
				// Step the owned core with the smallest published key: an
				// owned core left behind would otherwise block the group
				// while this goroutine is busy elsewhere.
				best := -1
				var bestKey uint64
				for i := w; i < n; i += shards {
					if steps[i] >= target {
						continue
					}
					if k := handles[i].Cur(); best == -1 || k < bestKey {
						best, bestKey = i, k
					}
				}
				if best == -1 {
					return
				}
				h := handles[best]
				if !h.WaitLead() {
					return
				}
				if err := m.runners[best].step(); err != nil {
					errs[w] = fmt.Errorf("core %d (%s): %w", best, m.names[best], err)
					h.Abort()
					return
				}
				steps[best]++
				if steps[best] == m.cfg.Warmup {
					// The snapshot reads shared DRAM totals: take the turn
					// so it sees exactly the serial prefix (all smaller
					// keys done, no larger key started).
					h.Enter()
					m.runners[best].beginMeasurement()
				}
				h.EndStep()
				if steps[best] >= target {
					h.Finish()
				} else if !h.Publish(m.runners[best].now()) {
					return
				}
			}
		}(w)
	}
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if g.Aborted() {
		// A back-invalidation raced a core that had run ahead: the
		// parallel state can't be trusted, so rebuild and run serially.
		// Determinism makes the fresh machine reproduce the serial result
		// exactly — the parallel attempt cost time, not correctness.
		fresh, err := NewMulticore(m.cfg, m.profs)
		if err != nil {
			return nil, err
		}
		return fresh.Run()
	}

	out := make([]RunResult, n)
	for i, r := range m.runners {
		out[i] = r.result()
	}
	return out, nil
}
