package system

import (
	"fmt"

	"vbi/internal/cache"
	"vbi/internal/cpu"
	"vbi/internal/dram"
	"vbi/internal/lockstep"
	"vbi/internal/stats"
	"vbi/internal/trace"
)

// RunResult reports one core's measured phase. It is the payload of the
// harness result cache and the dist wire (JobResult), so the json tags
// pin today's field names: a rename must never silently change cache
// entries or wire shape.
//
//vbi:wire
type RunResult struct {
	System   string `json:"System"`
	Workload string `json:"Workload"`

	Cycles  uint64  `json:"Cycles"`
	Instrs  uint64  `json:"Instrs"`
	MemRefs uint64  `json:"MemRefs"`
	IPC     float64 `json:"IPC"`

	// DRAMAccesses counts reads+writes during the measured phase
	// (including translation-structure traffic), the metric behind the
	// paper's "reduces the total number of DRAM accesses" claims.
	DRAMAccesses uint64 `json:"DRAMAccesses"`

	// Extra carries system-specific counters (TLB misses, walks, zero
	// lines, faults, ...).
	Extra stats.Counters `json:"Extra"`
}

// coreRunner is one simulated hardware context; multicore runs interleave
// several over shared structures.
type coreRunner interface {
	// step simulates one memory reference.
	step() error
	// now returns the core's current cycle (for time-ordered
	// interleaving).
	now() uint64
	// beginMeasurement snapshots counters at the warmup boundary.
	beginMeasurement()
	// result finalizes the measured phase. It is a pure snapshot (no
	// mutation), so time-sliced shards may call it at interior boundaries
	// to form telescoping windows.
	result() RunResult
	// skip advances the reference generator past n references without
	// simulating them (approximate time-slice warm-up positioning).
	skip(n int)
	// kit exposes the embedded hardware bundle (lockstep attachment).
	kit() *coreKit
}

// Machine is a runnable single-core system.
type Machine struct {
	name   string
	cfg    Config
	runner coreRunner
}

// Name returns the configuration name.
func (m *Machine) Name() string { return m.name }

// Run executes warmup + measured references and returns the result.
//
//vbi:hotpath
func (m *Machine) Run() (RunResult, error) {
	for i := 0; i < m.cfg.Warmup; i++ {
		//vbi:allow hotalloc coreRunner dispatch is the one deliberate dynamic call per step; the runners themselves are devirtualized internally
		if err := m.runner.step(); err != nil {
			//vbi:allow hotalloc error path only; a failed step aborts the run
			return RunResult{}, fmt.Errorf("%s warmup: %w", m.name, err)
		}
	}
	//vbi:allow hotalloc once per run, outside the step loops
	m.runner.beginMeasurement()
	for i := 0; i < m.cfg.Refs; i++ {
		//vbi:allow hotalloc coreRunner dispatch is the one deliberate dynamic call per step; the runners themselves are devirtualized internally
		if err := m.runner.step(); err != nil {
			//vbi:allow hotalloc error path only; a failed step aborts the run
			return RunResult{}, fmt.Errorf("%s: %w", m.name, err)
		}
	}
	//vbi:allow hotalloc once per run, outside the step loops
	return m.runner.result(), nil
}

// coreKit bundles the per-core hardware every system shares: the timing
// core, private caches and the reference generator.
type coreKit struct {
	cpu  *cpu.Core
	hier *cache.Hierarchy
	gen  *trace.Generator
	prof trace.Profile
	mem  *dram.Memory
	// p holds the fully resolved parameters (no zero fields) the runner's
	// timing paths read.
	p Params

	// gate is the core's lockstep handle during a sharded bundle run (nil
	// serially). Runner code Enters it before mutating shared state the
	// cache hierarchy doesn't already guard (OS allocator, DRAM timing on
	// the walker path).
	gate *lockstep.Handle

	// measurement snapshots
	startCycles uint64
	startInstrs uint64
	memRefs     uint64
	startRefs   uint64
	dramStart   dram.Stats
}

func newCoreKit(prof trace.Profile, seed uint64, p Params, mem *dram.Memory, llc *cache.Cache, shared *cache.Hierarchy) *coreKit {
	p = p.withDefaults()
	l1 := cache.New("L1", p.L1Size, p.L1Ways)
	l2 := cache.New("L2", p.L2Size, p.L2Ways)
	var hier *cache.Hierarchy
	if shared != nil {
		hier = shared.ShareLLC(l1, l2)
	} else {
		hier = cache.NewHierarchy(l1, l2, llc, cache.DefaultLatencies)
	}
	return &coreKit{
		cpu:  cpu.New(cpu.DefaultParams),
		hier: hier,
		gen:  trace.NewGenerator(prof, seed),
		prof: prof,
		mem:  mem,
		p:    p,
	}
}

// kit satisfies coreRunner for every embedding runner.
func (k *coreKit) kit() *coreKit { return k }

// skip advances the generator without simulating (see coreRunner.skip).
func (k *coreKit) skip(n int) { k.gen.Skip(n) }

// attachLockstep binds a lockstep handle to the core for a sharded run:
// the hierarchy gates its shared-LLC paths and registers the handle for
// back-invalidation conflict checks, and the runner's own shared-state
// chokepoints gate through k.gate.
func (k *coreKit) attachLockstep(h *lockstep.Handle) {
	k.gate = h
	k.hier.SetLockstep(h)
}

func (k *coreKit) beginMeasurement() {
	k.startCycles = k.cpu.Finish()
	k.startInstrs = k.cpu.Instrs()
	k.startRefs = k.memRefs
	k.dramStart = k.mem.TotalStats()
}

func (k *coreKit) baseResult(system string) RunResult {
	cycles := k.cpu.Finish() - k.startCycles
	instrs := k.cpu.Instrs() - k.startInstrs
	d := k.mem.TotalStats()
	res := RunResult{
		System:       system,
		Workload:     k.prof.Name,
		Cycles:       cycles,
		Instrs:       instrs,
		MemRefs:      k.memRefs - k.startRefs,
		DRAMAccesses: d.Reads + d.Writes - k.dramStart.Reads - k.dramStart.Writes,
		Extra:        stats.Counters{},
	}
	if cycles > 0 {
		res.IPC = float64(instrs) / float64(cycles)
	}
	return res
}

// fillAndDrain installs a line fetched from memory and schedules the dirty
// writebacks the fills displaced (off the critical path, but occupying
// banks). Physical-cache systems pass the physical line; virtual-cache
// systems pass the virtual line plus a translator for writeback targets.
func (k *coreKit) fillAndDrain(line uint64, write bool, at uint64, wbTarget func(uint64) (uint64, bool)) {
	wbs := k.hier.Fill(line, write)
	k.drainWritebacks(wbs, at, wbTarget)
}

func (k *coreKit) drainWritebacks(wbs []uint64, at uint64, wbTarget func(uint64) (uint64, bool)) {
	for _, wb := range wbs {
		pa := wb
		if wbTarget != nil {
			t, ok := wbTarget(wb)
			if !ok {
				continue
			}
			pa = t
		}
		k.mem.Access(pa, at, true)
	}
}
