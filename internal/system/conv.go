package system

import (
	"fmt"

	"vbi/internal/cache"
	"vbi/internal/cpu"
	"vbi/internal/dram"
	"vbi/internal/osmodel"
	"vbi/internal/pagetable"
	"vbi/internal/phys"
	"vbi/internal/tlb"
	"vbi/internal/trace"
)

// convRunner simulates the conventional baselines — Native, Native-2M,
// Perfect TLB, VIVT — and the virtualized ones — Virtual, Virtual-2M.
//
// Native/Native-2M translate on every access (VIPT L1: a TLB hit is free,
// a miss stalls for the L2 TLB and possibly a PWC-accelerated radix walk
// whose PTE reads go through L2/LLC/DRAM). Virtual runs the same flow over
// a guest, with 2D nested walks. VIVT indexes all caches virtually and
// translates only at the LLC boundary, overlapped with the LLC lookup.
// Perfect TLB never misses the TLB (an unrealizable upper bound).
type convRunner struct {
	*coreKit
	kind Kind

	// Native-side state.
	os   *osmodel.ConvOS
	proc *osmodel.ConvProcess
	// Virtual-side state.
	vmHost *osmodel.VMHost
	vm     *osmodel.GuestVM

	bases     []uint64 // per-struct VA bases
	pageShift uint

	l1tlb    *tlb.TLB
	l2tlb    *tlb.TLB
	pwc      *tlb.PWC // native walks / host dimension of nested walks
	guestPWC *tlb.PWC // Virtual-2M's 2D page-walk cache

	// latFn is the access callback handed to cpu.Step, bound once at
	// construction so the per-reference loop never allocates a closure;
	// stepErr carries the current step's access error out of it.
	latFn   cpu.LatencyFn
	stepErr error

	c convCounters
	s convCounters // snapshot at warmup boundary
}

type convCounters struct {
	tlbMisses    uint64
	walks        uint64
	walkAccesses uint64
	faults       uint64
}

func newConvRunner(kind Kind, prof trace.Profile, cfg Config, mem *dram.Memory, llc *cache.Cache, shared *cache.Hierarchy, share *convShared) (*convRunner, error) {
	r := &convRunner{
		coreKit: newCoreKit(prof, cfg.Seed, cfg.Params, mem, llc, shared),
		kind:    kind,
	}
	r.latFn = r.stepLatency
	p := r.p
	geo := pagetable.Page4K
	l1Entries := p.L1TLB4KEntries
	if kind == Native2M || kind == Virtual2M {
		geo = pagetable.Page2M
		l1Entries = p.L1TLB2MEntries
	}
	r.pageShift = geo.PageShift
	r.l1tlb = tlb.New("L1TLB", 1, l1Entries)
	r.l2tlb = tlb.New("L2TLB", p.L2TLBEntries/p.L2TLBWays, p.L2TLBWays)
	r.pwc = tlb.NewPWC("PWC", p.PWCEntries)

	switch kind {
	case Virtual, Virtual2M:
		if share != nil && share.vmHost != nil {
			r.vmHost = share.vmHost
		} else {
			r.vmHost = osmodel.NewVMHost(geo, cfg.Capacity)
			if share != nil {
				share.vmHost = r.vmHost
			}
		}
		guestMem := prof.Footprint() + prof.Footprint()/4 + 256<<20
		vm, err := r.vmHost.NewGuest(guestMem)
		if err != nil {
			return nil, err
		}
		r.vm = vm
		// Hardware paging-structure caches cover the guest dimension in
		// virtualized mode too; Virtual-2M's additional 2D PWC (footnote
		// 4) is modelled by its host-dimension cache below.
		r.guestPWC = tlb.NewPWC("gPWC", p.PWCEntries)
		for si, s := range prof.Structs {
			base := vm.Mmap(s.Size)
			r.bases = append(r.bases, base)
			// Initialization pass: the guest writes its live data before
			// the simulated region begins.
			pageSize := geo.PageSize()
			for va := base; va < base+prof.Structs[si].WarmBytes(); va += pageSize {
				if _, err := vm.Touch(va); err != nil {
					return nil, err
				}
			}
		}
	default:
		if share != nil && share.os != nil {
			r.os = share.os
		} else {
			r.os = osmodel.NewConvOS(geo, cfg.Capacity)
			if share != nil {
				share.os = r.os
			}
		}
		proc, err := r.os.NewProcess()
		if err != nil {
			return nil, err
		}
		r.proc = proc
		for _, s := range prof.Structs {
			base := proc.Mmap(s.Size)
			r.bases = append(r.bases, base)
			// Initialization pass (demand paging happens at startup, not
			// during the simulated region).
			pageSize := geo.PageSize()
			for va := base; va < base+s.WarmBytes(); va += pageSize {
				if _, err := proc.Touch(va); err != nil {
					return nil, err
				}
			}
		}
	}
	return r, nil
}

// convShared lets quad-core runs share one OS/hypervisor instance.
type convShared struct {
	os     *osmodel.ConvOS
	vmHost *osmodel.VMHost
}

func (r *convRunner) now() uint64 { return r.cpu.Now() }

//vbi:hotpath
func (r *convRunner) step() error {
	ref := r.gen.Next()
	op := ref.Op
	op.Addr = r.bases[ref.StructIdx] + ref.Offset
	r.stepErr = nil
	r.cpu.Step(op, r.latFn)
	r.memRefs++
	return r.stepErr
}

// stepLatency adapts access to cpu.LatencyFn, parking any access error in
// stepErr for step to return. It is bound to latFn once at construction:
// passing a method value per step would allocate a closure per reference.
//
//vbi:hotpath
func (r *convRunner) stepLatency(o cpu.Op, at uint64) uint64 {
	lat, err := r.access(o, at)
	if err != nil {
		r.stepErr = err
	}
	return lat
}

// access computes the latency of one memory operation issued at `at`.
func (r *convRunner) access(op cpu.Op, at uint64) (uint64, error) {
	va := op.Addr
	var t uint64
	var pa phys.Addr

	if r.kind == VIVT {
		// Virtual caches: permission/protection still carried by the page
		// table but no translation before the LLC boundary.
		line := cache.LineOf(va)
		res := r.hier.Access(line, op.Write)
		t += res.Latency
		r.drainWritebacks(res.Writebacks, at+t, r.wbTranslate)
		if !res.MissedLLC {
			return t, nil
		}
		// Translate in parallel with the LLC lookup.
		trans, paOut, err := r.translate(va, at+t)
		if err != nil {
			return t, err
		}
		if trans > cache.DefaultLatencies.LLC {
			t += trans - cache.DefaultLatencies.LLC
		}
		pa = paOut
		done := r.mem.Access(uint64(pa), at+t, false)
		t = done - at
		r.fillAndDrain(line, op.Write, done, r.wbTranslate)
		return t, nil
	}

	// Physically-addressed systems: translate first (VIPT: TLB hit free).
	trans, paOut, err := r.translate(va, at)
	if err != nil {
		return t, err
	}
	t += trans
	pa = paOut
	line := cache.LineOf(uint64(pa))
	res := r.hier.Access(line, op.Write)
	t += res.Latency
	r.drainWritebacks(res.Writebacks, at+t, nil)
	if res.MissedLLC {
		done := r.mem.Access(uint64(pa), at+t, false)
		t = done - at
		r.fillAndDrain(line, op.Write, done, nil)
	}
	return t, nil
}

// translate returns the translation latency and physical address,
// faulting/walking as needed.
func (r *convRunner) translate(va uint64, at uint64) (uint64, phys.Addr, error) {
	key := va >> r.pageShift
	offset := phys.Addr(va & (1<<r.pageShift - 1))

	if r.kind == PerfectTLB {
		// Idealized bound: no translation overhead and no demand-paging
		// cost (the pages appear mapped for free).
		if _, err := r.touch(va); err != nil {
			return 0, phys.NoAddr, err
		}
		pa, ok := r.lookup(va)
		if !ok {
			return 0, phys.NoAddr, fmt.Errorf("system: unmapped after touch")
		}
		return 0, pa, nil
	}

	if base, ok := r.l1tlb.Lookup(key); ok {
		return 0, phys.Addr(base) + offset, nil
	}
	t := uint64(r.p.L2TLBLatency)
	if base, ok := r.l2tlb.Lookup(key); ok {
		r.l1tlb.Insert(key, base)
		return t, phys.Addr(base) + offset, nil
	}
	r.c.tlbMisses++

	// Demand paging happens on the walk path.
	faultCost, err := r.touch(va)
	if err != nil {
		return t, phys.NoAddr, err
	}
	t += faultCost

	// Hardware page walk: PTE reads traverse L2/LLC and memory.
	r.c.walks++
	var accesses []phys.Addr
	var leaf phys.Addr
	if r.vm != nil {
		res := r.vm.Nested.Walk(va, r.pwc, r.guestPWC)
		if !res.OK {
			return t, phys.NoAddr, fmt.Errorf("system: nested walk faulted at %#x", va)
		}
		accesses, leaf = res.Accesses, res.Phys
	} else {
		res := r.proc.Table.Walk(va, r.pwc)
		if !res.OK {
			return t, phys.NoAddr, fmt.Errorf("system: walk faulted at %#x", va)
		}
		accesses, leaf = res.Accesses, res.Phys
	}
	// Walker PTE reads are memory requests (serialized: each level's
	// address depends on the previous read). The PWC already skipped the
	// cached upper levels. DRAM bank timing is shared: gate (touch above
	// already holds the turn; Enter is idempotent).
	r.gate.Enter()
	r.c.walkAccesses += uint64(len(accesses))
	for _, a := range accesses {
		done := r.mem.Access(uint64(a), at+t, false)
		t = done - at
	}
	base := uint64(leaf) &^ (1<<r.pageShift - 1)
	r.l2tlb.Insert(key, base)
	r.l1tlb.Insert(key, base)
	return t, leaf, nil
}

// touch performs demand paging, returning the cycle cost of any faults.
// The OS / hypervisor allocator is shared across a bundle's cores, so a
// sharded run takes the serial-order turn first (no-op serially; the turn
// is held to the end of the step, covering the walk that follows).
func (r *convRunner) touch(va uint64) (uint64, error) {
	r.gate.Enter()
	if r.vm != nil {
		hostBefore := r.vmHost.Stats.HostFaults
		fault, err := r.vm.Touch(va)
		if err != nil {
			return 0, err
		}
		var t uint64
		if fault {
			r.c.faults++
			t += uint64(r.p.GuestFaultCost)
		}
		t += (r.vmHost.Stats.HostFaults - hostBefore) * uint64(r.p.HostFaultCost)
		return t, nil
	}
	fault, err := r.proc.Touch(va)
	if err != nil {
		return 0, err
	}
	if fault {
		r.c.faults++
		return uint64(r.p.MinorFaultCost), nil
	}
	return 0, nil
}

func (r *convRunner) lookup(va uint64) (phys.Addr, bool) {
	if r.vm != nil {
		return r.vm.Translate(va)
	}
	return r.proc.Translate(va)
}

// wbTranslate resolves a virtual writeback line to its physical target
// (VIVT caches tag lines virtually).
func (r *convRunner) wbTranslate(line uint64) (uint64, bool) {
	pa, ok := r.lookup(line)
	return uint64(pa), ok
}

func (r *convRunner) beginMeasurement() {
	r.coreKit.beginMeasurement()
	r.s = r.c
}

func (r *convRunner) result() RunResult {
	res := r.baseResult(r.kind.String())
	res.Extra["tlb.misses"] = r.c.tlbMisses - r.s.tlbMisses
	res.Extra["walks"] = r.c.walks - r.s.walks
	res.Extra["walk.accesses"] = r.c.walkAccesses - r.s.walkAccesses
	res.Extra["os.faults"] = r.c.faults - r.s.faults
	return res
}
