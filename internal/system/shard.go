package system

import (
	"fmt"
	"math"
)

// Slice describes one time shard of a single-core run: the half-open
// window [Start, End) of measured references it is responsible for. A
// sliced job travels over the dist wire and through the result cache, so
// the json tags pin the field names.
//
// Exact mode (default): the shard replays warm-up plus the full measured
// prefix [0, Start) deterministically — the trace generator is a pure
// function of (profile, seed), so every shard reconstructs the identical
// machine state the serial run had at its window boundary — snapshots the
// counters, simulates its window, and reports the difference. The windows
// telescope: summed over all shards they reproduce the serial measured
// counters exactly, byte for byte.
//
// Approx mode: instead of simulating the prefix, the shard skips the
// generator to WarmupRefs references before its window and simulates only
// that warm-up from cold caches before measuring. This trades exactness
// for wall-clock (the prefix replay is what makes exact slicing linear in
// Start) and reports a cross-shard error bound at merge time.
//
//vbi:wire
type Slice struct {
	// Index / Of identify the shard (0-based) and the total shard count.
	Index int `json:"index"`
	Of    int `json:"of"`
	// Start/End bound the measured-reference window [Start, End).
	Start int `json:"start"`
	End   int `json:"end"`
	// Approx selects sampled warm-up instead of exact prefix replay.
	Approx bool `json:"approx,omitempty"`
	// WarmupRefs is the simulated warm-up length in approx mode.
	WarmupRefs int `json:"warmup_refs,omitempty"`
}

// Validate checks the slice against the run's measured-reference count.
func (s Slice) Validate(refs int) error {
	if s.Of < 1 || s.Index < 0 || s.Index >= s.Of {
		return fmt.Errorf("system: slice %d/%d out of range", s.Index, s.Of)
	}
	if s.Start < 0 || s.End > refs || s.Start >= s.End {
		return fmt.Errorf("system: slice window [%d,%d) invalid for %d refs", s.Start, s.End, refs)
	}
	if s.Approx && s.WarmupRefs <= 0 {
		return fmt.Errorf("system: approx slice needs warmup refs")
	}
	return nil
}

// PlanSlices splits refs measured references into k contiguous windows
// (boundaries at i*refs/k, so sizes differ by at most one). k is clamped
// to [1, refs].
func PlanSlices(refs, k int) []Slice {
	if k < 1 {
		k = 1
	}
	if k > refs {
		k = refs
	}
	out := make([]Slice, k)
	for i := 0; i < k; i++ {
		out[i] = Slice{
			Index: i,
			Of:    k,
			Start: i * refs / k,
			End:   (i + 1) * refs / k,
		}
	}
	return out
}

// RunSlice executes one time shard of the machine's run and returns the
// window's counters (see Slice). The machine must be freshly built; a
// slice consumes it.
func (m *Machine) RunSlice(s Slice) (RunResult, error) {
	if err := s.Validate(m.cfg.Refs); err != nil {
		return RunResult{}, err
	}
	if s.Approx {
		return m.runApproxSlice(s)
	}
	// Exact: replay warm-up + the measured prefix, snapshot, run the
	// window, subtract. result() is a pure snapshot, so the base costs
	// nothing but the prefix simulation itself.
	if err := runSteps(m.runner, m.cfg.Warmup, m.name); err != nil {
		return RunResult{}, err
	}
	m.runner.beginMeasurement()
	if err := runSteps(m.runner, s.Start, m.name); err != nil {
		return RunResult{}, err
	}
	base := m.runner.result()
	if err := runSteps(m.runner, s.End-s.Start, m.name); err != nil {
		return RunResult{}, err
	}
	return subtractWindow(m.runner.result(), base), nil
}

// runApproxSlice skips the generator to WarmupRefs references before the
// window, simulates that warm-up from cold caches (construction already
// performed the init/prefill passes), and measures the window directly.
func (m *Machine) runApproxSlice(s Slice) (RunResult, error) {
	warm := s.WarmupRefs
	if prefix := m.cfg.Warmup + s.Start; warm > prefix {
		warm = prefix
	}
	m.runner.skip(m.cfg.Warmup + s.Start - warm)
	if err := runSteps(m.runner, warm, m.name); err != nil {
		return RunResult{}, err
	}
	m.runner.beginMeasurement()
	if err := runSteps(m.runner, s.End-s.Start, m.name); err != nil {
		return RunResult{}, err
	}
	return m.runner.result(), nil
}

// RunSlice executes one exact time shard of a heterogeneous-memory run.
// Approx mode is not supported: the migration epochs are feedback-driven,
// so a sampled warm-up would not reconstruct placement state.
func (h *HeteroMachine) RunSlice(s Slice) (RunResult, error) {
	if err := s.Validate(h.cfg.Refs); err != nil {
		return RunResult{}, err
	}
	if s.Approx {
		return RunResult{}, fmt.Errorf("system: approx slicing unsupported for hetero runs")
	}
	// The epoch trigger is step-count based (steps % EpochRefs), so the
	// prefix replay reproduces every migration decision deterministically.
	steps := 0
	runTo := func(limit int) error {
		for steps < limit {
			if err := h.runner.step(); err != nil {
				return err
			}
			steps++
			if steps == h.cfg.Warmup {
				h.runner.beginMeasurement()
			}
			if h.cfg.Policy == PolicyVBI && steps%h.cfg.EpochRefs == 0 {
				h.migrationEpoch()
			}
		}
		return nil
	}
	if err := runTo(h.cfg.Warmup + s.Start); err != nil {
		return RunResult{}, err
	}
	base := h.runner.result()
	if err := runTo(h.cfg.Warmup + s.End); err != nil {
		return RunResult{}, err
	}
	res := subtractWindow(h.runner.result(), base)
	res.System = fmt.Sprintf("%s %s", h.cfg.Policy, h.cfg.Mem)
	// migrated.bytes is a cumulative gauge (not a windowed delta): the
	// last shard replays the full prefix, so its absolute value equals the
	// serial run's and the zero from every other shard sums to it.
	if s.End == h.cfg.Refs {
		res.Extra["migrated.bytes"] = h.m.Stats.MigratedBytes
	}
	return res, nil
}

// runSteps advances a runner n references.
func runSteps(r coreRunner, n int, name string) error {
	for i := 0; i < n; i++ {
		if err := r.step(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
	}
	return nil
}

// subtractWindow forms the window counters between two telescoping
// snapshots of the same run.
func subtractWindow(final, base RunResult) RunResult {
	w := final
	w.Cycles -= base.Cycles
	w.Instrs -= base.Instrs
	w.MemRefs -= base.MemRefs
	w.DRAMAccesses -= base.DRAMAccesses
	w.IPC = 0
	if w.Cycles > 0 {
		w.IPC = float64(w.Instrs) / float64(w.Cycles)
	}
	w.Extra = make(map[string]uint64, len(final.Extra))
	for k, v := range final.Extra {
		w.Extra[k] = v - base.Extra[k]
	}
	return w
}

// ShardIPCErrKey is the Extra key MergeSlices adds in approx mode: the
// half-width of the 95% confidence interval of the per-shard IPC, as a
// fraction of the mean in parts per million. Exact merges add nothing.
const ShardIPCErrKey = "shard.ipc.ci.ppm"

// MergeSlices folds the windows of one sliced run back into the serial
// result. For exact slices the sum telescopes to the serial counters
// exactly (IPC is recomputed from the summed integers, so it too is
// bit-identical). Approx merges additionally report ShardIPCErrKey.
func MergeSlices(windows []RunResult, approx bool) (RunResult, error) {
	if len(windows) == 0 {
		return RunResult{}, fmt.Errorf("system: no slice windows to merge")
	}
	out := RunResult{
		System:   windows[0].System,
		Workload: windows[0].Workload,
		Extra:    map[string]uint64{},
	}
	var ipcs []float64
	for _, w := range windows {
		out.Cycles += w.Cycles
		out.Instrs += w.Instrs
		out.MemRefs += w.MemRefs
		out.DRAMAccesses += w.DRAMAccesses
		for k, v := range w.Extra {
			out.Extra[k] += v
		}
		ipcs = append(ipcs, w.IPC)
	}
	if out.Cycles > 0 {
		out.IPC = float64(out.Instrs) / float64(out.Cycles)
	}
	if approx && len(ipcs) > 1 {
		mean := 0.0
		for _, x := range ipcs {
			mean += x
		}
		mean /= float64(len(ipcs))
		varsum := 0.0
		for _, x := range ipcs {
			varsum += (x - mean) * (x - mean)
		}
		sd := math.Sqrt(varsum / float64(len(ipcs)-1))
		if mean > 0 {
			half := 1.96 * sd / math.Sqrt(float64(len(ipcs)))
			out.Extra[ShardIPCErrKey] = uint64(math.Round(half / mean * 1e6))
		}
	}
	return out, nil
}
