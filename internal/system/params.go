package system

import (
	"fmt"
	"sort"
	"strings"
)

// Params is the typed overlay of the tunable hardware/OS knobs that Table 1
// fixes for the paper's evaluation. The zero value of every field means
// "Table 1 default", so a zero Params reproduces the paper's configuration
// exactly; any non-zero field overrides just that knob. Params is plain
// data: it marshals to canonical JSON (zero fields omitted), which is what
// the harness result cache hashes.
type Params struct {
	// Caches (bytes / ways).
	L1Size  int `json:"l1_size,omitempty"`
	L1Ways  int `json:"l1_ways,omitempty"`
	L2Size  int `json:"l2_size,omitempty"`
	L2Ways  int `json:"l2_ways,omitempty"`
	LLCSize int `json:"llc_size,omitempty"`
	LLCWays int `json:"llc_ways,omitempty"`

	// TLBs and walk caches.
	L1TLB4KEntries int `json:"l1_tlb_4k_entries,omitempty"`
	L1TLB2MEntries int `json:"l1_tlb_2m_entries,omitempty"`
	L2TLBEntries   int `json:"l2_tlb_entries,omitempty"`
	L2TLBWays      int `json:"l2_tlb_ways,omitempty"`
	L2TLBLatency   int `json:"l2_tlb_latency,omitempty"`
	PWCEntries     int `json:"pwc_entries,omitempty"`

	// OS fault costs (cycles).
	MinorFaultCost int `json:"minor_fault_cost,omitempty"`
	GuestFaultCost int `json:"guest_fault_cost,omitempty"`
	HostFaultCost  int `json:"host_fault_cost,omitempty"`
	SwapFaultCost  int `json:"swap_fault_cost,omitempty"`

	// Memory-controller work (cycles).
	MCAllocCost  int `json:"mc_alloc_cost,omitempty"`
	MTLLookupMin int `json:"mtl_lookup_min,omitempty"`
	CTCLookupLat int `json:"ctc_lookup_lat,omitempty"`
	MTLCacheLat  int `json:"mtl_cache_lat,omitempty"`

	// Heterogeneous-memory policy (§7.3).
	HeteroEpochRefs int `json:"hetero_epoch_refs,omitempty"`
	MigAmortize     int `json:"mig_amortize,omitempty"`
}

// paramField maps a sweepable parameter name to its Params field. The
// table is the single source of truth for name resolution (CLI -param
// flags, grid axes, -list output).
type paramField struct {
	name string
	doc  string
	get  func(*Params) *int
}

var paramFields = []paramField{
	{"l1_size", "L1 cache size in bytes", func(p *Params) *int { return &p.L1Size }},
	{"l1_ways", "L1 cache associativity", func(p *Params) *int { return &p.L1Ways }},
	{"l2_size", "L2 cache size in bytes", func(p *Params) *int { return &p.L2Size }},
	{"l2_ways", "L2 cache associativity", func(p *Params) *int { return &p.L2Ways }},
	{"llc_size", "LLC size in bytes", func(p *Params) *int { return &p.LLCSize }},
	{"llc_ways", "LLC associativity", func(p *Params) *int { return &p.LLCWays }},
	{"l1_tlb_4k_entries", "L1 TLB entries (4 KB pages, fully associative)", func(p *Params) *int { return &p.L1TLB4KEntries }},
	{"l1_tlb_2m_entries", "L1 TLB entries (2 MB pages, fully associative)", func(p *Params) *int { return &p.L1TLB2MEntries }},
	{"l2_tlb_entries", "L2 TLB entries", func(p *Params) *int { return &p.L2TLBEntries }},
	{"l2_tlb_ways", "L2 TLB associativity", func(p *Params) *int { return &p.L2TLBWays }},
	{"l2_tlb_latency", "L2 TLB probe latency (cycles)", func(p *Params) *int { return &p.L2TLBLatency }},
	{"pwc_entries", "page-walk-cache / MTL walk-cache entries", func(p *Params) *int { return &p.PWCEntries }},
	{"minor_fault_cost", "demand-paging fault cost (cycles)", func(p *Params) *int { return &p.MinorFaultCost }},
	{"guest_fault_cost", "guest-side VM fault cost (cycles)", func(p *Params) *int { return &p.GuestFaultCost }},
	{"host_fault_cost", "hypervisor (EPT fill) fault cost (cycles)", func(p *Params) *int { return &p.HostFaultCost }},
	{"swap_fault_cost", "MTL-to-OS swap/file fault cost (cycles)", func(p *Params) *int { return &p.SwapFaultCost }},
	{"mc_alloc_cost", "MTL/Enigma hardware region-allocation cost (cycles)", func(p *Params) *int { return &p.MCAllocCost }},
	{"mtl_lookup_min", "MTL pipeline minimum latency (cycles)", func(p *Params) *int { return &p.MTLLookupMin }},
	{"ctc_lookup_lat", "Enigma CTC probe latency (cycles)", func(p *Params) *int { return &p.CTCLookupLat }},
	{"mtl_cache_lat", "MTL walk-cache hit latency (cycles)", func(p *Params) *int { return &p.MTLCacheLat }},
	{"hetero_epoch_refs", "migration-policy epoch length (references, §7.3)", func(p *Params) *int { return &p.HeteroEpochRefs }},
	{"mig_amortize", "migration-bandwidth amortization divisor (§7.3)", func(p *Params) *int { return &p.MigAmortize }},
}

// DefaultParams returns the Table 1 configuration with every field filled
// in explicitly. It is what a zero Params resolves to.
func DefaultParams() Params {
	return Params{
		L1Size: L1Size, L1Ways: L1Ways,
		L2Size: L2Size, L2Ways: L2Ways,
		LLCSize: LLCSize, LLCWays: LLCWays,
		L1TLB4KEntries: L1TLB4KEntries, L1TLB2MEntries: L1TLB2MEntries,
		L2TLBEntries: L2TLBEntries, L2TLBWays: L2TLBWays,
		L2TLBLatency: L2TLBLatency, PWCEntries: PWCEntries,
		MinorFaultCost: MinorFaultCost, GuestFaultCost: GuestFaultCost,
		HostFaultCost: HostFaultCost, SwapFaultCost: SwapFaultCost,
		MCAllocCost: MCAllocCost, MTLLookupMin: MTLLookupMin,
		CTCLookupLat: CTCLookupLat, MTLCacheLat: MTLCacheLat,
		HeteroEpochRefs: 25_000, MigAmortize: migAmortize,
	}
}

// withDefaults fills every zero field from Table 1.
func (p Params) withDefaults() Params {
	return Overlay(DefaultParams(), p)
}

// Overlay returns base with every non-zero field of over applied on top.
// It is how a job-level parameter overlay composes with a registered
// spec's parameters (the job wins).
func Overlay(base, over Params) Params {
	out := base
	for _, f := range paramFields {
		if v := *f.get(&over); v != 0 {
			*f.get(&out) = v
		}
	}
	return out
}

// IsZero reports whether no field is overridden.
func (p Params) IsZero() bool { return p == Params{} }

// ParamNames lists every sweepable parameter name, in declaration order.
func ParamNames() []string {
	out := make([]string, len(paramFields))
	for i, f := range paramFields {
		out[i] = f.name
	}
	return out
}

// ParamDoc returns the one-line description of a parameter, or "".
func ParamDoc(name string) string {
	for _, f := range paramFields {
		if f.name == name {
			return f.doc
		}
	}
	return ""
}

// Set assigns a parameter by name (as spelled in ParamNames).
func (p *Params) Set(name string, value int) error {
	for _, f := range paramFields {
		if strings.EqualFold(f.name, name) {
			*f.get(p) = value
			return nil
		}
	}
	return fmt.Errorf("system: unknown parameter %q (see ParamNames)", name)
}

// Get reads a parameter by name; zero means "default".
func (p Params) Get(name string) (int, error) {
	for _, f := range paramFields {
		if strings.EqualFold(f.name, name) {
			return *f.get(&p), nil
		}
	}
	return 0, fmt.Errorf("system: unknown parameter %q (see ParamNames)", name)
}

// Validate rejects overlays the simulators cannot honour (the cache and
// TLB constructors treat bad geometry as a panic-worthy configuration
// error; this surfaces it as a job-validation error instead).
func (p Params) Validate() error {
	for _, f := range paramFields {
		if v := *f.get(&p); v < 0 {
			return fmt.Errorf("system: parameter %s = %d is negative", f.name, v)
		}
	}
	r := p.withDefaults()
	if r.L2TLBEntries%r.L2TLBWays != 0 {
		return fmt.Errorf("system: l2_tlb_entries (%d) not divisible by l2_tlb_ways (%d)",
			r.L2TLBEntries, r.L2TLBWays)
	}
	if sets := r.L2TLBEntries / r.L2TLBWays; sets&(sets-1) != 0 {
		return fmt.Errorf("system: L2 TLB set count %d (l2_tlb_entries/l2_tlb_ways) not a power of two", sets)
	}
	for _, c := range []struct {
		name       string
		size, ways int
	}{
		{"l1", r.L1Size, r.L1Ways},
		{"l2", r.L2Size, r.L2Ways},
		{"llc", r.LLCSize, r.LLCWays},
	} {
		if c.size%(c.ways*64) != 0 {
			return fmt.Errorf("system: %s_size (%d) not a multiple of %s_ways x 64 B lines",
				c.name, c.size, c.name)
		}
		if sets := c.size / (c.ways * 64); sets&(sets-1) != 0 {
			return fmt.Errorf("system: %s set count %d not a power of two", c.name, sets)
		}
	}
	return nil
}

// String renders the non-zero overrides as "name=value,...", sorted by
// name, or "" for a zero overlay. Job labels and spec listings use it.
func (p Params) String() string {
	var parts []string
	for _, f := range paramFields {
		if v := *f.get(&p); v != 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", f.name, v))
		}
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}
