package system

import (
	"encoding/json"
	"testing"

	"vbi/internal/trace"
	"vbi/internal/workloads"
)

// shardRefs keeps the sharded-vs-serial matrices fast while still driving
// evictions, writebacks, walker traffic and (hetero) a migration epoch.
const shardRefs = 8_000

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestSliceMergeByteIdentical proves the time-slicing seam exact: for
// every registered kind, a 3-way sliced run merged with MergeSlices is
// byte-identical (through JSON, including the recomputed IPC) to the
// serial run.
func TestSliceMergeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 4 machines per kind; skipped in -short")
	}
	prof := workloads.MustGet("mcf")
	for _, kind := range Kinds() {
		cfg := Config{Kind: kind, Refs: shardRefs}
		m, err := New(cfg, prof)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		serial, err := m.Run()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		var windows []RunResult
		for _, sl := range PlanSlices(shardRefs, 3) {
			sm, err := New(cfg, prof)
			if err != nil {
				t.Fatalf("%s slice %d: %v", kind, sl.Index, err)
			}
			w, err := sm.RunSlice(sl)
			if err != nil {
				t.Fatalf("%s slice %d: %v", kind, sl.Index, err)
			}
			windows = append(windows, w)
		}
		merged, err := MergeSlices(windows, false)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if got, want := mustJSON(t, merged), mustJSON(t, serial); got != want {
			t.Errorf("%s: sliced merge diverged from serial\n got %s\nwant %s", kind, got, want)
		}
	}
}

// TestSliceMergeHetero extends the exactness proof to the feedback-driven
// hetero machine: the epoch trigger is step-count based, so prefix replay
// reproduces every migration decision and the merge matches serial.
func TestSliceMergeHetero(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 4 hetero machines; skipped in -short")
	}
	hc := HeteroConfig{Mem: HeteroPCMDRAM, Policy: PolicyVBI, Refs: shardRefs}
	prof := workloads.MustGet("mcf")
	h, err := NewHetero(hc, prof)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := h.Run()
	if err != nil {
		t.Fatal(err)
	}
	var windows []RunResult
	for _, sl := range PlanSlices(shardRefs, 3) {
		sh, err := NewHetero(hc, prof)
		if err != nil {
			t.Fatal(err)
		}
		w, err := sh.RunSlice(sl)
		if err != nil {
			t.Fatal(err)
		}
		windows = append(windows, w)
	}
	merged, err := MergeSlices(windows, false)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := mustJSON(t, merged), mustJSON(t, serial); got != want {
		t.Errorf("hetero sliced merge diverged from serial\n got %s\nwant %s", got, want)
	}
}

// TestApproxSliceBounded checks the sampled variant's contract: it runs,
// reports a confidence interval under ShardIPCErrKey, and lands within a
// loose factor of the exact IPC (it is an estimate, not a replay).
func TestApproxSliceBounded(t *testing.T) {
	prof := workloads.MustGet("mcf")
	cfg := Config{Kind: VBI2, Refs: shardRefs}
	m, err := New(cfg, prof)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	var windows []RunResult
	for _, sl := range PlanSlices(shardRefs, 4) {
		sl.Approx = true
		sl.WarmupRefs = 2_000
		sm, err := New(cfg, prof)
		if err != nil {
			t.Fatal(err)
		}
		w, err := sm.RunSlice(sl)
		if err != nil {
			t.Fatal(err)
		}
		windows = append(windows, w)
	}
	merged, err := MergeSlices(windows, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := merged.Extra[ShardIPCErrKey]; !ok {
		t.Fatalf("approx merge missing %s", ShardIPCErrKey)
	}
	if merged.IPC < serial.IPC/2 || merged.IPC > serial.IPC*2 {
		t.Errorf("approx IPC %.4f wildly off serial %.4f", merged.IPC, serial.IPC)
	}
}

// TestRunShardedByteIdentical proves the per-core decomposition exact: a
// Table 2 bundle run with RunSharded(4) produces per-core results
// byte-identical to the serial smallest-now() interleave, across the
// three runner families (conventional, VBI, Enigma) plus the
// virtual-cache kind whose duplicate-base lines actually collide in the
// shared LLC (exercising the back-invalidation conflict machinery and,
// when it fires, the serial-fallback path — which must also match).
func TestRunShardedByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 2 quad-core machines per kind; skipped in -short")
	}
	profs := bundleProfiles(t, "wl3")
	for _, kind := range []Kind{Native, Virtual2M, VIVT, EnigmaHW2M, VBIFull} {
		cfg := Config{Kind: kind, Refs: shardRefs}
		serialM, err := NewMulticore(cfg, profs)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		serial, err := serialM.Run()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		shardM, err := NewMulticore(cfg, profs)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		sharded, err := shardM.RunSharded(4)
		if err != nil {
			t.Fatalf("%s sharded: %v", kind, err)
		}
		if got, want := mustJSON(t, sharded), mustJSON(t, serial); got != want {
			t.Errorf("%s: sharded bundle diverged from serial\n got %s\nwant %s", kind, got, want)
		}
	}
}

// TestRunShardedCollidingLines runs four copies of the same workload
// under VIVT: every core tags the same virtual lines, so LLC
// back-invalidations constantly hit peer caches where the line IS present
// — the hostile case for the free-running decomposition. Whether the
// conflict detector aborts into the serial fallback or the interleaving
// survives, the result must equal serial byte-for-byte.
func TestRunShardedCollidingLines(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 2 quad-core machines; skipped in -short")
	}
	prof := workloads.MustGet("mcf")
	profs := []trace.Profile{prof, prof, prof, prof}
	cfg := Config{Kind: VIVT, Refs: shardRefs}
	serialM, err := NewMulticore(cfg, profs)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := serialM.Run()
	if err != nil {
		t.Fatal(err)
	}
	shardM, err := NewMulticore(cfg, profs)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := shardM.RunSharded(4)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := mustJSON(t, sharded), mustJSON(t, serial); got != want {
		t.Errorf("colliding-line sharded bundle diverged from serial\n got %s\nwant %s", got, want)
	}
}

// TestRunShardedFewerWorkers pins the worker-count independence of the
// decomposition: 2 goroutines over 4 cores (each goroutine interleaving
// its owned cores by key) must equal the serial run too.
func TestRunShardedFewerWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 2 quad-core machines; skipped in -short")
	}
	profs := bundleProfiles(t, "wl5")
	cfg := Config{Kind: VBI2, Refs: shardRefs}
	serialM, err := NewMulticore(cfg, profs)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := serialM.Run()
	if err != nil {
		t.Fatal(err)
	}
	shardM, err := NewMulticore(cfg, profs)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := shardM.RunSharded(2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := mustJSON(t, sharded), mustJSON(t, serial); got != want {
		t.Errorf("2-worker sharded bundle diverged from serial\n got %s\nwant %s", got, want)
	}
}

func bundleProfiles(t *testing.T, name string) []trace.Profile {
	t.Helper()
	var profs []trace.Profile
	for _, app := range workloads.Bundles[name] {
		profs = append(profs, workloads.MustGet(app))
	}
	return profs
}
