package system

import (
	"fmt"
	"sort"

	"vbi/internal/addr"
	"vbi/internal/cache"
	"vbi/internal/core"
	"vbi/internal/dram"
	"vbi/internal/mtl"
	"vbi/internal/osmodel"
	"vbi/internal/prop"
	"vbi/internal/tlb"
	"vbi/internal/trace"
	"vbi/internal/workloads"
)

// HeteroMem selects the heterogeneous main-memory architecture of §7.3.
type HeteroMem int

const (
	// HeteroPCMDRAM is the hybrid PCM–DRAM memory of Ramos et al. [107]:
	// a small fast DRAM zone in front of a large slow PCM zone.
	HeteroPCMDRAM HeteroMem = iota
	// HeteroTLDRAM is Tiered-Latency DRAM [74]: every bank has a fast
	// near segment and a slower far segment.
	HeteroTLDRAM
)

func (h HeteroMem) String() string {
	if h == HeteroPCMDRAM {
		return "PCM-DRAM"
	}
	return "TL-DRAM"
}

// Policy selects the data-placement policy being compared (§7.3).
type Policy int

const (
	// PolicyUnaware maps data without regard to hotness (capacity-
	// proportional striping by allocation order).
	PolicyUnaware Policy = iota
	// PolicyVBI uses VB properties for initial placement and the MTL's
	// access counters for epoch-based migration of hot VBs into the fast
	// zone — the mechanism VBI enables (§7.3).
	PolicyVBI
	// PolicyIdeal uses oracle knowledge of the full run's access counts
	// to place hot data in the fast zone from the start, with no
	// migration cost (the IDEAL bars of Figures 9 and 10).
	PolicyIdeal
)

func (p Policy) String() string {
	switch p {
	case PolicyUnaware:
		return "Hotness-Unaware"
	case PolicyVBI:
		return "VBI"
	}
	return "IDEAL"
}

// HeteroConfig parameterizes a heterogeneous-memory run.
type HeteroConfig struct {
	Mem    HeteroMem
	Policy Policy
	Refs   int
	Warmup int
	Seed   uint64
	// ChunkSize segments large structures into VBs of at most this size
	// (default 64 MB), giving placement its granularity.
	ChunkSize uint64
	// EpochRefs is the migration-policy period (default
	// Params.HeteroEpochRefs, i.e. 25k references; scaled to simulation
	// length, see DESIGN.md).
	EpochRefs int
	// Params overlays the tunable hardware/OS knobs, including the
	// hetero-specific epoch length and migration amortization.
	Params Params
}

func (c HeteroConfig) withDefaults() HeteroConfig {
	c.Params = c.Params.withDefaults()
	if c.Refs == 0 {
		c.Refs = 1_000_000
	}
	if c.Warmup == 0 {
		c.Warmup = c.Refs / 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.ChunkSize == 0 {
		c.ChunkSize = 16 << 20
	}
	if c.EpochRefs == 0 {
		c.EpochRefs = c.Params.HeteroEpochRefs
	}
	return c
}

// Zone geometry of the two architectures. The fast zones are scarce
// relative to the workload footprints (as in the underlying proposals: the
// TL-DRAM near segment is a small slice of every subarray, and the hybrid
// memory's DRAM is a fraction of the PCM capacity), so placement quality
// matters.
const (
	pcmDRAMFast = 256 << 20  // DRAM zone of the hybrid memory
	pcmDRAMSlow = 6 << 30    // PCM zone
	tlDRAMFast  = 128 << 20  // near segment
	tlDRAMSlow  = 3968 << 20 // far segment
	// migCap is the migration budget per epoch, scaled to the simulated
	// reference counts so the policy converges within a run; the per-line
	// cost below still charges the bandwidth.
	migCap     = 256 << 20
	migPenalty = 2 // cycles of interference per migrated line
	// migAmortize scales the charged migration interference to the
	// simulated run length: the paper's 1B-instruction windows amortize
	// one-time migrations over ~100x more references than our runs, so
	// charging full bandwidth into the short window would double-count.
	migAmortize = 16
	fastFill    = 0.90 // usable fraction of the fast zone
	// stickiness favours resident chunks during re-ranking so uniform
	// densities do not cause migration churn.
	stickiness = 1.3
)

// HeteroMachine is a single-core VBI-2 system over a two-zone memory with
// a pluggable placement policy.
type HeteroMachine struct {
	cfg    HeteroConfig
	runner *vbiRunner
	m      *mtl.MTL

	fastBytes uint64
	// declaredBytes per VB (chunk size), for placement budgeting.
	declared map[addr.VBUID]uint64
}

// NewHetero builds the machine.
func NewHetero(hc HeteroConfig, prof trace.Profile) (*HeteroMachine, error) {
	hc = hc.withDefaults()
	if err := hc.Params.Validate(); err != nil {
		return nil, err
	}
	var mem *dram.Memory
	var fast, slow uint64
	var names = []string{"fast", "slow"}
	switch hc.Mem {
	case HeteroPCMDRAM:
		fast, slow = pcmDRAMFast, pcmDRAMSlow
		mem = dram.NewHybrid(fast, slow)
	default:
		fast, slow = tlDRAMFast, tlDRAMSlow
		mem = dram.NewTLDRAM(fast, fast+slow)
	}
	m := mtl.New(mtl.Config{DelayedAlloc: true}, mtl.NewZones(
		map[string]uint64{"fast": fast, "slow": slow}, names))
	sys := core.NewSystem(m)
	vbios := osmodel.NewVBIOS(sys)

	llc := cache.New("LLC", hc.Params.LLCSize, hc.Params.LLCWays)
	r := &vbiRunner{
		coreKit: newCoreKit(prof, hc.Seed, hc.Params, mem, llc, nil),
		kind:    VBI2,
		sys:     sys,
		vbios:   vbios,
		chunk:   hc.ChunkSize,
	}
	r.latFn = r.stepLatency
	r.nodeCache = tlb.New("MTLwalk", 1, r.p.PWCEntries)
	r.vcore = core.NewCore(sys)
	r.proc = vbios.CreateProcess()
	r.vcore.SwitchClient(r.proc.Client)

	h := &HeteroMachine{
		cfg:       hc,
		runner:    r,
		m:         m,
		fastBytes: uint64(float64(fast) * fastFill),
		declared:  make(map[addr.VBUID]uint64),
	}

	// Allocate every structure as chunk-sized VBs and record them.
	type chunkRef struct {
		vb     addr.VBUID
		s      trace.Struct
		sIdx   int
		cIdx   int
		size   uint64
		weight float64 // oracle/unaware placement key
	}
	var chunks []chunkRef
	var vbsByStruct [][]addr.VBUID
	for si, s := range prof.Structs {
		var idxs []int
		var vbs []addr.VBUID
		n := (s.Size + hc.ChunkSize - 1) / hc.ChunkSize
		for ci := uint64(0); ci < n; ci++ {
			size := hc.ChunkSize
			if (ci+1)*hc.ChunkSize > s.Size {
				size = s.Size - ci*hc.ChunkSize
			}
			idx, u, err := vbios.RequestVB(r.proc, size, workloads.PropsFor(s))
			if err != nil {
				return nil, err
			}
			idxs = append(idxs, idx)
			vbs = append(vbs, u)
			h.declared[u] = size
			chunks = append(chunks, chunkRef{vb: u, s: s, sIdx: si, cIdx: int(ci), size: size})
		}
		r.chunkIdx = append(r.chunkIdx, idxs)
		vbsByStruct = append(vbsByStruct, vbs)
	}

	// Initial placement.
	switch hc.Policy {
	case PolicyUnaware:
		// Capacity-proportional striping in allocation order: the
		// allocator treats the hybrid memory as one flat pool, so data
		// lands in each zone in proportion to its size and only a small
		// fraction of the hot data happens to reach the fast zone.
		placed := []float64{0, 0}
		caps := []float64{float64(fast), float64(slow)}
		for _, c := range chunks {
			z := 0
			if (placed[0]+float64(c.size))/caps[0] > (placed[1]+float64(c.size))/caps[1] {
				z = 1
			}
			placed[z] += float64(c.size)
			if err := m.SetHomeZone(c.vb, z); err != nil {
				return nil, err
			}
		}
	case PolicyIdeal:
		counts := oracleChunkCounts(prof, hc)
		for i := range chunks {
			chunks[i].weight = counts[[2]int{chunks[i].sIdx, chunks[i].cIdx}] / float64(chunks[i].size)
		}
		sort.SliceStable(chunks, func(i, j int) bool { return chunks[i].weight > chunks[j].weight })
		budget := h.fastBytes
		for _, c := range chunks {
			z := 1
			if c.weight > 0 && c.size <= budget {
				z = 0
				budget -= c.size
			}
			if err := m.SetHomeZone(c.vb, z); err != nil {
				return nil, err
			}
		}
	case PolicyVBI:
		// Initial placement from the property bitvector (§2, §7.3):
		// latency-sensitive VBs take the fast zone first, then the
		// remaining budget fills in allocation order (so VBI starts no
		// worse than the hotness-unaware fill). The epoch migration loop
		// then refines placement from the MTL's counters.
		budget := h.fastBytes
		placed := make(map[addr.VBUID]bool)
		for _, c := range chunks {
			if !workloads.PropsFor(c.s).Has(prop.LatencySensitive) {
				continue
			}
			if c.size <= budget {
				budget -= c.size
				placed[c.vb] = true
				if err := m.SetHomeZone(c.vb, 0); err != nil {
					return nil, err
				}
			}
		}
		for _, c := range chunks {
			if placed[c.vb] {
				continue
			}
			z := 1
			if c.size <= budget {
				z = 0
				budget -= c.size
			}
			if err := m.SetHomeZone(c.vb, z); err != nil {
				return nil, err
			}
		}
	}

	// Initialization pass, after placement so prefilled regions land in
	// their policy-chosen zones.
	for si, s := range prof.Structs {
		warm := s.WarmBytes()
		for ci, u := range vbsByStruct[si] {
			chunkStart := uint64(ci) * hc.ChunkSize
			if warm <= chunkStart {
				break
			}
			n := warm - chunkStart
			if n > hc.ChunkSize {
				n = hc.ChunkSize
			}
			if err := m.Prefill(u, n); err != nil {
				return nil, err
			}
		}
	}
	return h, nil
}

// oracleChunkCounts replays the reference stream (generation only — no
// timing) and counts accesses per (struct, chunk).
func oracleChunkCounts(prof trace.Profile, hc HeteroConfig) map[[2]int]float64 {
	g := trace.NewGenerator(prof, hc.Seed)
	counts := make(map[[2]int]float64)
	total := hc.Warmup + hc.Refs
	for i := 0; i < total; i++ {
		ref := g.Next()
		counts[[2]int{ref.StructIdx, int(ref.Offset / hc.ChunkSize)}]++
	}
	return counts
}

// Run executes the workload under the configured policy.
func (h *HeteroMachine) Run() (RunResult, error) {
	steps := 0
	total := h.cfg.Warmup + h.cfg.Refs
	for steps < total {
		if err := h.runner.step(); err != nil {
			return RunResult{}, err
		}
		steps++
		if steps == h.cfg.Warmup {
			h.runner.beginMeasurement()
		}
		if h.cfg.Policy == PolicyVBI && steps%h.cfg.EpochRefs == 0 {
			h.migrationEpoch()
		}
	}
	res := h.runner.result()
	res.System = fmt.Sprintf("%s %s", h.cfg.Policy, h.cfg.Mem)
	res.Extra["migrated.bytes"] = h.m.Stats.MigratedBytes
	return res, nil
}

// migrationEpoch re-plans the fast zone from the MTL's access counters
// (§7.3): the hottest VBs (by access density) fill the fast-zone budget;
// VBs that lost their slot are demoted first to make room. Residents get a
// stickiness bonus so uniform densities do not churn, and migration
// bandwidth is charged to the core.
func (h *HeteroMachine) migrationEpoch() {
	counts := h.m.AccessCounts() // hottest first
	// Re-rank with a stickiness bonus for current residents so uniform
	// densities do not cause churn.
	type cand struct {
		c    mtl.VBCount
		rank float64
	}
	var cands []cand
	for _, c := range counts {
		if c.Bytes == 0 {
			continue
		}
		rank := float64(c.Accesses) / float64(c.Bytes)
		if c.Zone == 0 {
			rank *= stickiness
		}
		cands = append(cands, cand{c, rank})
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].rank > cands[j].rank })

	// Plan the fast zone: hottest VBs (with non-zero activity) first.
	budget := h.fastBytes
	wantFast := make(map[addr.VBUID]bool)
	for _, cd := range cands {
		if cd.c.Accesses == 0 {
			continue
		}
		size := h.declared[cd.c.VB]
		if size <= budget {
			wantFast[cd.c.VB] = true
			budget -= size
		}
	}

	var moved uint64
	// Demotions first — coldest residents out, including idle ones — so
	// the promotions below find room.
	for i := len(cands) - 1; i >= 0 && moved < migCap; i-- {
		c := cands[i].c
		if c.Zone == 0 && !wantFast[c.VB] {
			if n, err := h.m.MigrateVB(c.VB, 1); err == nil {
				moved += n
			}
		}
	}
	for _, cd := range cands {
		if moved >= migCap {
			break
		}
		if cd.c.Zone == 1 && wantFast[cd.c.VB] {
			if n, err := h.m.MigrateVB(cd.c.VB, 0); err == nil {
				moved += n
			}
		}
	}
	h.runner.pendingPenalty += (moved / 64) * migPenalty / uint64(h.cfg.Params.MigAmortize)
	h.m.ResetAccessCounts()
}
