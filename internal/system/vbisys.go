package system

import (
	"vbi/internal/addr"
	"vbi/internal/cache"
	"vbi/internal/core"
	"vbi/internal/cpu"
	"vbi/internal/dram"
	"vbi/internal/mtl"
	"vbi/internal/osmodel"
	"vbi/internal/phys"
	"vbi/internal/tlb"
	"vbi/internal/trace"
	"vbi/internal/workloads"
)

// vbiRunner simulates the three VBI variants (§7.2):
//
//	VBI-1:    inherently virtual caches + flexible translation structures
//	          mapping VBs at 4 KB granularity;
//	VBI-2:    VBI-1 + delayed physical allocation (zero lines, §5.1);
//	VBI-Full: VBI-2 + early reservation (direct-mapped VBs, §5.3).
//
// Every memory operation passes the CVT permission check (per-core CVT
// cache, §4.3), indexes the on-chip caches with the VBI address, and only
// consults the MTL at the memory controller on an LLC miss — in parallel
// with the LLC lookup (§4.2.3). Dirty LLC evictions are translated (and,
// under delayed allocation, trigger the physical allocation) on their way
// to DRAM.
type vbiRunner struct {
	*coreKit
	kind Kind

	sys   *core.System
	vbios *osmodel.VBIOS
	vcore *core.Core
	proc  *osmodel.VBIProcess

	// indices maps struct -> CVT index; perms the access right to demand.
	indices []int

	// Heterogeneous-memory runs segment large structures into chunk-sized
	// VBs (the allocator-level segmentation of §7.3 workloads); chunk == 0
	// means one VB per structure. chunkIdx maps struct -> chunk -> CVT
	// index.
	chunk    uint64
	chunkIdx [][]int

	// pendingPenalty charges background work (epoch migration bandwidth)
	// to the next access.
	pendingPenalty uint64

	// nodeCache is the MTL's walk cache: a 32-entry cache of translation-
	// structure node pointers, the analogue of the conventional walker's
	// page-walk cache (Table 1 keeps translation-caching budgets equal
	// across systems). Upper-level node reads hit it; the final (leaf)
	// entry read always goes to memory, as in a PWC-accelerated walk.
	nodeCache *tlb.TLB

	// latFn is the access callback handed to cpu.Step, bound once at
	// construction so the per-reference loop never allocates a closure;
	// stepErr carries the current step's access error out of it.
	latFn   cpu.LatencyFn
	stepErr error

	c vbiCounters
	s vbiCounters
}

type vbiCounters struct {
	cvtMisses     uint64
	translations  uint64
	mtlTLBMisses  uint64
	walkAccesses  uint64
	zeroLines     uint64
	regionAllocs  uint64
	osFaults      uint64
	wbTranslation uint64
}

// vbiShared carries the structures quad-core runs share: the MTL, the
// architectural system and the OS.
type vbiShared struct {
	sys   *core.System
	vbios *osmodel.VBIOS
}

func mtlConfigFor(kind Kind) mtl.Config {
	switch kind {
	case VBI2:
		return mtl.Config{DelayedAlloc: true}
	case VBIFull:
		return mtl.Config{DelayedAlloc: true, EarlyReservation: true}
	default: // VBI1
		return mtl.Config{}
	}
}

func newVBIRunner(kind Kind, prof trace.Profile, cfg Config, mem *dram.Memory, llc *cache.Cache, sharedHier *cache.Hierarchy, share *vbiShared) (*vbiRunner, error) {
	r := &vbiRunner{
		coreKit: newCoreKit(prof, cfg.Seed, cfg.Params, mem, llc, sharedHier),
		kind:    kind,
	}
	r.latFn = r.stepLatency
	r.nodeCache = tlb.New("MTLwalk", 1, r.p.PWCEntries)
	if share != nil && share.sys != nil {
		r.sys, r.vbios = share.sys, share.vbios
	} else {
		mc := mtlConfigFor(kind)
		mc.UniformTables = cfg.UniformTables
		m := mtl.New(mc, mtl.NewZones(
			map[string]uint64{"DRAM": cfg.Capacity}, []string{"DRAM"}))
		r.sys = core.NewSystem(m)
		r.vbios = osmodel.NewVBIOS(r.sys)
		if share != nil {
			share.sys, share.vbios = r.sys, r.vbios
		}
	}
	// Lazy cache cleanup (§4.2.4): stale lines of a disabled VB are
	// invalidated before its VBUID is recycled.
	r.vbios.OnDisable = func(u addr.VBUID) {
		base, size := uint64(u.Base()), u.Size()
		r.hier.InvalidateIf(func(line uint64) bool {
			return line >= base && line-base < size
		})
	}
	r.vcore = core.NewCore(r.sys)
	r.proc = r.vbios.CreateProcess()
	r.vcore.SwitchClient(r.proc.Client)
	for _, s := range prof.Structs {
		idx, u, err := r.vbios.RequestVB(r.proc, s.Size, workloads.PropsFor(s))
		if err != nil {
			return nil, err
		}
		r.indices = append(r.indices, idx)
		// Initialization pass: startup writes allocate the live data, so
		// the simulated region's zero lines come only from the genuinely
		// never-written cold tails (§5.1).
		if err := r.sys.MTL.Prefill(u, s.WarmBytes()); err != nil {
			return nil, err
		}
	}
	return r, nil
}

func (r *vbiRunner) now() uint64 { return r.cpu.Now() }

// packVAddr fits {CVT index, offset} into cpu.Op.Addr: offsets never exceed
// 2^47 (the largest size class), leaving the top bits for the index.
func packVAddr(index int, offset uint64) uint64 {
	return uint64(index)<<48 | offset
}

func unpackVAddr(a uint64) core.VAddr {
	return core.VAddr{Index: int(a >> 48), Offset: a & (1<<48 - 1)}
}

//vbi:hotpath
func (r *vbiRunner) step() error {
	ref := r.gen.Next()
	op := ref.Op
	if r.chunk > 0 {
		ci := ref.Offset / r.chunk
		op.Addr = packVAddr(r.chunkIdx[ref.StructIdx][ci], ref.Offset%r.chunk)
	} else {
		op.Addr = packVAddr(r.indices[ref.StructIdx], ref.Offset)
	}
	r.stepErr = nil
	r.cpu.Step(op, r.latFn)
	r.memRefs++
	return r.stepErr
}

// stepLatency adapts access to cpu.LatencyFn, parking any access error in
// stepErr for step to return. It is bound to latFn once at construction:
// passing a method value per step would allocate a closure per reference.
//
//vbi:hotpath
func (r *vbiRunner) stepLatency(o cpu.Op, at uint64) uint64 {
	lat, err := r.access(o, at)
	if err != nil {
		r.stepErr = err
	}
	return lat
}

func (r *vbiRunner) access(op cpu.Op, at uint64) (uint64, error) {
	want := core.PermR
	if op.Write {
		want = core.PermW
	}
	ev, err := r.vcore.Access(unpackVAddr(op.Addr), want)
	if err != nil {
		return 0, err
	}
	var t uint64
	if r.pendingPenalty > 0 {
		// Migration runs as background DMA: the core sees bounded
		// bandwidth interference per access, not a lump stall.
		drain := r.pendingPenalty
		if drain > migDrainPerAccess {
			drain = migDrainPerAccess
		}
		t += drain
		r.pendingPenalty -= drain
	}
	if !ev.CVTCacheHit {
		// Fetch the CVT entry through the memory hierarchy (§4.1.2).
		r.c.cvtMisses++
		lat, missed, wbs := r.hier.WalkerAccess(uint64(ev.CVTMemAccess))
		t += lat
		if missed {
			done := r.mem.Access(uint64(ev.CVTMemAccess), at+t, false)
			t = done - at
		}
		r.drainVBIWritebacks(wbs, at+t)
	}

	line := cache.LineOf(uint64(ev.VBI))
	res := r.hier.Access(line, op.Write)
	t += res.Latency
	r.drainVBIWritebacks(res.Writebacks, at+t)
	if !res.MissedLLC {
		return t, nil
	}

	// LLC miss: the MTL translates in parallel with the LLC lookup
	// (§4.2.3), so only latency beyond the LLC stage is exposed.
	mtlEv, err := r.sys.MTL.TranslateRead(ev.VBI)
	if err != nil {
		return t, err
	}
	mtlLat, err := r.chargeMTL(mtlEv, at+t)
	if err != nil {
		return t, err
	}
	if mtlLat > cache.DefaultLatencies.LLC {
		t += mtlLat - cache.DefaultLatencies.LLC
	}

	if mtlEv.ZeroLine {
		// Zero line straight from the memory controller: no DRAM access
		// (§5.1). The line is installed in the caches like any fill.
		t += dram.ControllerOverhead
		r.fillVBI(line, op.Write, at+t)
		return t, nil
	}
	done := r.mem.Access(uint64(mtlEv.Phys), at+t, false)
	t = done - at
	r.fillVBI(line, op.Write, done)
	return t, nil
}

// chargeMTL converts an MTL event into memory-controller latency, issuing
// its VIT and translation-structure reads to DRAM serially (the MTL sits
// at the controller; its table reads do not traverse the on-chip caches,
// but upper-level nodes hit the MC-side walk cache).
func (r *vbiRunner) chargeMTL(ev mtl.Event, start uint64) (uint64, error) {
	r.c.translations++
	cur := start + uint64(r.p.MTLLookupMin)
	if !ev.TLBL1Hit {
		cur += uint64(r.p.L2TLBLatency)
	}
	if !ev.TLBL1Hit && !ev.TLBL2Hit {
		r.c.mtlTLBMisses++
	}
	if ev.VITAccess != phys.NoAddr {
		cur = r.mem.Access(uint64(ev.VITAccess), cur, false)
	}
	cur = r.chargeWalk(ev.WalkAccesses, cur)
	if ev.AllocatedRegion {
		r.c.regionAllocs++
		cur += uint64(r.p.MCAllocCost)
	}
	if ev.OSFault {
		r.c.osFaults++
		cur += uint64(r.p.SwapFaultCost)
	}
	if ev.ZeroLine {
		r.c.zeroLines++
	}
	return cur - start, nil
}

// chargeWalk issues a translation-structure walk: upper-level node reads
// consult the MTL walk cache (node-pointer granularity, like the baseline
// PWC); the final entry read always goes to memory. Returns the completion
// time.
func (r *vbiRunner) chargeWalk(accesses []phys.Addr, at uint64) uint64 {
	cur := at
	for i, a := range accesses {
		r.c.walkAccesses++
		if i < len(accesses)-1 {
			node := uint64(a) >> 12
			if _, ok := r.nodeCache.Lookup(node); ok {
				cur += uint64(r.p.MTLCacheLat)
				continue
			}
			r.nodeCache.Insert(node, 1)
		}
		cur = r.mem.Access(uint64(a), cur, false)
	}
	return cur
}

// fillVBI installs a fetched line and drains any dirty VBI-addressed
// writebacks through the MTL.
func (r *vbiRunner) fillVBI(line uint64, write bool, at uint64) {
	wbs := r.hier.Fill(line, write)
	r.drainVBIWritebacks(wbs, at)
}

// drainVBIWritebacks translates dirty VBI lines at the controller and
// writes them to DRAM. Under delayed allocation this is the allocation
// trigger (§5.1). Off the critical path, but the bank traffic is real.
func (r *vbiRunner) drainVBIWritebacks(wbs []uint64, at uint64) {
	for _, wb := range wbs {
		ev, err := r.sys.MTL.TranslateWriteback(addr.Addr(wb))
		if err != nil {
			continue // VB disabled mid-flight; drop the line
		}
		r.c.wbTranslation++
		cur := at
		if ev.VITAccess != phys.NoAddr {
			cur = r.mem.Access(uint64(ev.VITAccess), cur, false)
		}
		cur = r.chargeWalk(ev.WalkAccesses, cur)
		if ev.AllocatedRegion {
			r.c.regionAllocs++
		}
		r.mem.Access(uint64(ev.Phys), cur, true)
	}
}

func (r *vbiRunner) beginMeasurement() {
	r.coreKit.beginMeasurement()
	r.s = r.c
}

func (r *vbiRunner) result() RunResult {
	res := r.baseResult(r.kind.String())
	res.Extra["cvt.misses"] = r.c.cvtMisses - r.s.cvtMisses
	res.Extra["mtl.translations"] = r.c.translations - r.s.translations
	res.Extra["mtl.tlb.misses"] = r.c.mtlTLBMisses - r.s.mtlTLBMisses
	res.Extra["mtl.walk.accesses"] = r.c.walkAccesses - r.s.walkAccesses
	res.Extra["mtl.zero.lines"] = r.c.zeroLines - r.s.zeroLines
	res.Extra["mtl.region.allocs"] = r.c.regionAllocs - r.s.regionAllocs
	res.Extra["os.faults"] = r.c.osFaults - r.s.osFaults
	return res
}
