// Package system wires the substrates into the complete simulated machines
// of the evaluation (§7): the conventional baselines (Native, Native-2M,
// Perfect TLB, VIVT), the virtualized baselines (Virtual, Virtual-2M), the
// Enigma-HW-2M comparator, the three VBI variants (VBI-1, VBI-2, VBI-Full),
// quad-core multiprogrammed versions of all of them (§7.2.3), and the
// heterogeneous-memory systems of §7.3.
package system

import "fmt"

// Kind names one evaluated system configuration.
type Kind int

// The evaluated systems (§7.2).
const (
	// Native: x86-64-style 4-level page tables, 4 KB pages, PIPT caches.
	Native Kind = iota
	// Native2M: Native with 2 MB pages (3-level tables).
	Native2M
	// Virtual: Native running inside a virtual machine (2D page walks).
	Virtual
	// Virtual2M: Virtual with 2 MB pages and a 2D page-walk cache.
	Virtual2M
	// PerfectTLB: Native with no L1 TLB misses (no translation overhead);
	// an unrealizable upper bound for translation optimizations.
	PerfectTLB
	// VIVT: Native with virtually-indexed virtually-tagged caches;
	// translation only at the LLC boundary, but still x86-64 page tables.
	VIVT
	// EnigmaHW2M: Enigma [137] with a 16K-entry CTC, hardware-managed
	// walks and 2 MB pages.
	EnigmaHW2M
	// VBI1: inherently virtual caches + flexible per-VB translation
	// structures at 4 KB granularity.
	VBI1
	// VBI2: VBI1 + delayed physical memory allocation (§5.1).
	VBI2
	// VBIFull: VBI2 + early reservation (§5.3): direct-mapped VBs.
	VBIFull

	numKinds
)

var kindNames = [...]string{
	"Native", "Native-2M", "Virtual", "Virtual-2M", "Perfect TLB",
	"VIVT", "Enigma-HW-2M", "VBI-1", "VBI-2", "VBI-Full",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Table 1 default parameters shared by every system. These are the values
// a zero Params field resolves to; runs override individual knobs through
// Config.Params (see params.go).
const (
	// Caches.
	L1Size, L1Ways   = 32 << 10, 8
	L2Size, L2Ways   = 256 << 10, 8
	LLCSize, LLCWays = 8 << 20, 16
	LLCSizePerCore   = 2 << 20

	// TLBs.
	L1TLB4KEntries = 64  // fully associative
	L1TLB2MEntries = 32  // fully associative
	L2TLBEntries   = 512 // 4-way
	L2TLBWays      = 4
	PWCEntries     = 32 // fully associative

	// Added latencies (cycles).
	L2TLBLatency = 7 // L2 TLB probe after an L1 TLB miss

	// OS costs (cycles).
	MinorFaultCost = 700  // demand-paging fault: trap, allocate, map
	GuestFaultCost = 900  // guest-side fault in a VM
	HostFaultCost  = 1100 // hypervisor fault (EPT fill)
	SwapFaultCost  = 1500 // MTL interrupts the OS for swap/file data

	// Memory-controller work (cycles).
	MCAllocCost  = 30 // MTL/Enigma hardware allocation of a region
	MTLLookupMin = 4  // MTL pipeline minimum (VIT cache / TLB probe)
	CTCLookupLat = 4  // Enigma CTC probe

	// MTLCacheLat is the MTL walk-cache (node-pointer cache) hit latency;
	// the cache itself has PWCEntries entries, keeping translation-caching
	// budgets equal across systems.
	MTLCacheLat = 2

	// migDrainPerAccess bounds how much background-migration bandwidth
	// interference one access can observe (cycles).
	migDrainPerAccess = 16
)

// Config parameterizes one run.
type Config struct {
	Kind Kind
	// Refs is the number of measured memory references.
	Refs int
	// Warmup references run before measurement starts (default Refs/2).
	Warmup int
	// Seed selects the trace stream (default 1).
	Seed uint64
	// Capacity is the physical memory size (default 16 GB; quad-core runs
	// use 32 GB). Sized so whole-VB early reservations (§5.3) of the
	// 4 GB size class have headroom, as on the paper's testbed.
	Capacity uint64
	// UniformTables (VBI kinds only) disables the flexible translation
	// structures of §5.2, giving every VB a fixed 4-level table — the
	// ablation isolating the flexible-structure benefit.
	UniformTables bool
	// Params overlays the tunable hardware/OS knobs; zero fields take the
	// Table 1 defaults above.
	Params Params
}

func (c Config) withDefaults() Config {
	c.Params = c.Params.withDefaults()
	if c.Refs == 0 {
		c.Refs = 1_000_000
	}
	if c.Warmup == 0 {
		c.Warmup = c.Refs / 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Capacity == 0 {
		c.Capacity = 16 << 30
	}
	return c
}

// Kinds returns every evaluated system configuration, in declaration
// order. CLI tools use it to enumerate and resolve system names instead of
// probing String() for out-of-range sentinels.
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// Kinds4K lists the systems of Figure 6 (4 KB pages), in plot order.
var Kinds4K = []Kind{Native, Virtual, VIVT, VBI1, VBI2, VBIFull, PerfectTLB}

// KindsLarge lists the systems of Figure 7 (large pages), in plot order.
var KindsLarge = []Kind{Native2M, Virtual2M, EnigmaHW2M, VBIFull, PerfectTLB}

// KindsMulticore lists the systems of Figure 8.
var KindsMulticore = []Kind{Native, Native2M, Virtual, Virtual2M, VBIFull, PerfectTLB}
