package system

import (
	"testing"

	"vbi/internal/trace"
)

// skewedProfile has one small, very hot structure and one large cold one,
// so placement policy strongly separates the three systems.
func skewedProfile() trace.Profile {
	return trace.Profile{
		Name: "skewed", MemRefsPer1000: 300,
		Structs: []trace.Struct{
			{Name: "hot", Size: 48 << 20, Pattern: trace.Rand, Weight: 8,
				WriteFrac: 0.3, HotFrac: 0.5, HotBias: 0.9},
			{Name: "cold", Size: 700 << 20, Pattern: trace.Rand, Weight: 1,
				WriteFrac: 0.05},
		},
	}
}

func runHeteroPolicy(t *testing.T, mem HeteroMem, pol Policy, refs int) RunResult {
	t.Helper()
	m, err := NewHetero(HeteroConfig{Mem: mem, Policy: pol, Refs: refs}, skewedProfile())
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC <= 0 {
		t.Fatalf("%v/%v: IPC = %f", mem, pol, res.IPC)
	}
	return res
}

func TestHeteroPolicyOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	const refs = 60_000
	for _, mem := range []HeteroMem{HeteroPCMDRAM, HeteroTLDRAM} {
		unaware := runHeteroPolicy(t, mem, PolicyUnaware, refs)
		vbi := runHeteroPolicy(t, mem, PolicyVBI, refs)
		ideal := runHeteroPolicy(t, mem, PolicyIdeal, refs)
		if !(vbi.IPC > unaware.IPC) {
			t.Errorf("%v: VBI (%f) should beat unaware (%f)", mem, vbi.IPC, unaware.IPC)
		}
		if !(ideal.IPC >= vbi.IPC*0.95) {
			t.Errorf("%v: IDEAL (%f) should not trail VBI (%f)", mem, ideal.IPC, vbi.IPC)
		}
	}
}

func TestHeteroVBIMigrates(t *testing.T) {
	res := runHeteroPolicy(t, HeteroPCMDRAM, PolicyVBI, 60_000)
	if res.Extra["migrated.bytes"] == 0 {
		t.Error("VBI policy never migrated despite a skewed workload")
	}
}

func TestHeteroUnawareAndIdealDoNotMigrate(t *testing.T) {
	for _, pol := range []Policy{PolicyUnaware, PolicyIdeal} {
		res := runHeteroPolicy(t, HeteroPCMDRAM, pol, 20_000)
		if res.Extra["migrated.bytes"] != 0 {
			t.Errorf("%v migrated %d bytes", pol, res.Extra["migrated.bytes"])
		}
	}
}

func TestHeteroChunking(t *testing.T) {
	m, err := NewHetero(HeteroConfig{Mem: HeteroTLDRAM, Policy: PolicyUnaware,
		Refs: 5_000, ChunkSize: 8 << 20}, skewedProfile())
	if err != nil {
		t.Fatal(err)
	}
	// 48 MB + 700 MB at 8 MB chunks = 6 + 88 VBs.
	if got := len(m.declared); got != 94 {
		t.Fatalf("chunk VBs = %d, want 94", got)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestHeteroStringers(t *testing.T) {
	if HeteroPCMDRAM.String() != "PCM-DRAM" || HeteroTLDRAM.String() != "TL-DRAM" {
		t.Error("HeteroMem.String broken")
	}
	if PolicyUnaware.String() != "Hotness-Unaware" || PolicyVBI.String() != "VBI" ||
		PolicyIdeal.String() != "IDEAL" {
		t.Error("Policy.String broken")
	}
}
