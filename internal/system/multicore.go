package system

import (
	"fmt"

	"vbi/internal/cache"
	"vbi/internal/dram"
	"vbi/internal/trace"
)

// Multicore is a quad-core machine running one workload per core over a
// shared LLC, shared main memory, and a shared OS/hypervisor/MTL (§7.2.3).
type Multicore struct {
	cfg     Config
	runners []coreRunner
	names   []string
	// profs is kept so RunSharded can rebuild a fresh machine for the
	// serial fallback when a parallel run aborts.
	profs []trace.Profile
}

// NewMulticore builds a machine with one core per profile.
func NewMulticore(cfg Config, profs []trace.Profile) (*Multicore, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if cfg.Capacity == 16<<30 {
		cfg.Capacity = 32 << 30 // four residents need more physical memory
	}
	mem := dram.NewUniform(cfg.Capacity)
	llc := cache.New("LLC", cfg.Params.LLCSize, cfg.Params.LLCWays)
	ss := &sharedState{}

	m := &Multicore{cfg: cfg, profs: profs}
	var rootHier *cache.Hierarchy
	for i, prof := range profs {
		var hier *cache.Hierarchy
		if i > 0 {
			hier = rootHier
		}
		// Distinct seeds decorrelate the streams of duplicate benchmarks
		// within a bundle.
		coreCfg := cfg
		coreCfg.Seed = cfg.Seed + uint64(i)*7919
		r, err := newRunner(cfg.Kind, prof, coreCfg, mem, llc, hier, ss)
		if err != nil {
			return nil, fmt.Errorf("core %d (%s): %w", i, prof.Name, err)
		}
		if i == 0 {
			rootHier = hierOf(r)
		}
		m.runners = append(m.runners, r)
		m.names = append(m.names, prof.Name)
	}
	return m, nil
}

// hierOf extracts the hierarchy from a runner (all runners embed coreKit).
func hierOf(r coreRunner) *cache.Hierarchy {
	switch v := r.(type) {
	case *convRunner:
		return v.hier
	case *vbiRunner:
		return v.hier
	case *enigmaRunner:
		return v.hier
	}
	return nil
}

// Run interleaves the cores in time order (the core with the smallest
// local clock steps next, so shared-bank and shared-LLC contention is
// simulated causally) until every core has retired warmup+measured
// references.
func (m *Multicore) Run() ([]RunResult, error) {
	n := len(m.runners)
	steps := make([]int, n)
	target := m.cfg.Warmup + m.cfg.Refs
	done := 0
	for done < n {
		// Pick the unfinished core with the smallest clock.
		best := -1
		var bestNow uint64
		for i, r := range m.runners {
			if steps[i] >= target {
				continue
			}
			if best == -1 || r.now() < bestNow {
				best, bestNow = i, r.now()
			}
		}
		r := m.runners[best]
		if err := r.step(); err != nil {
			return nil, fmt.Errorf("core %d (%s): %w", best, m.names[best], err)
		}
		steps[best]++
		if steps[best] == m.cfg.Warmup {
			r.beginMeasurement()
		}
		if steps[best] == target {
			done++
		}
	}
	out := make([]RunResult, n)
	for i, r := range m.runners {
		out[i] = r.result()
	}
	return out, nil
}
