package system

import (
	"encoding/json"
	"testing"

	"vbi/internal/stats"
)

// TestRunResultJSONPinned byte-pins RunResult's JSON form. The struct is
// the payload of the harness result cache and the dist wire, and its json
// tags deliberately repeat the historical (untagged) field names: if this
// test breaks, cached results and mixed-version fleets break with it, so
// the fix is to revert the field rename — not to update the expectation
// (that requires a harness.Version bump).
func TestRunResultJSONPinned(t *testing.T) {
	r := RunResult{
		System:       "VBI-Full",
		Workload:     "mcf",
		Cycles:       12345,
		Instrs:       6789,
		MemRefs:      1000,
		IPC:          0.55,
		DRAMAccesses: 42,
		Extra:        stats.Counters{"tlb_misses": 7},
	}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"System":"VBI-Full","Workload":"mcf","Cycles":12345,"Instrs":6789,` +
		`"MemRefs":1000,"IPC":0.55,"DRAMAccesses":42,"Extra":{"tlb_misses":7}}`
	if string(b) != want {
		t.Errorf("RunResult wire form changed:\n got %s\nwant %s", b, want)
	}
}
