package system

import (
	"testing"

	"vbi/internal/trace"
)

// tlbHostile is a small profile with the mcf-like shape: cache-resident
// hot set spread one line per page, so TLB misses dominate conventional
// systems while caches hit.
func tlbHostile() trace.Profile {
	return trace.Profile{
		Name: "tlb-hostile", MemRefsPer1000: 350,
		Structs: []trace.Struct{
			{Name: "nodes", Size: 192 << 20, Pattern: trace.Chase, Weight: 4,
				WriteFrac: 0.1, HotFrac: 0.2, HotBias: 0.9, SparseHot: true, ColdFrac: 0.3},
			{Name: "aux", Size: 32 << 20, Pattern: trace.Rand, Weight: 2,
				WriteFrac: 0.3, HotFrac: 0.1, HotBias: 0.9},
		},
	}
}

// cacheFriendly fits in the L2 cache: every system should perform alike.
func cacheFriendly() trace.Profile {
	return trace.Profile{
		Name: "cache-friendly", MemRefsPer1000: 250,
		Structs: []trace.Struct{
			{Name: "ws", Size: 128 << 10, Pattern: trace.Rand, Weight: 1, WriteFrac: 0.3},
		},
	}
}

func run(t *testing.T, kind Kind, prof trace.Profile, refs int) RunResult {
	t.Helper()
	m, err := New(Config{Kind: kind, Refs: refs, Warmup: refs / 2}, prof)
	if err != nil {
		t.Fatalf("%v: %v", kind, err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatalf("%v: %v", kind, err)
	}
	if res.Cycles == 0 || res.Instrs == 0 || res.IPC <= 0 {
		t.Fatalf("%v: degenerate result %+v", kind, res)
	}
	return res
}

func TestAllKindsRun(t *testing.T) {
	prof := tlbHostile()
	for k := Kind(0); k < numKinds; k++ {
		res := run(t, k, prof, 10_000)
		if res.MemRefs != 10_000 {
			t.Errorf("%v: measured %d refs", k, res.MemRefs)
		}
	}
}

func TestFig6OrderingOnTLBHostileWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("ordering test needs a longer run")
	}
	prof := tlbHostile()
	const refs = 60_000
	ipc := map[Kind]float64{}
	for _, k := range []Kind{Native, Virtual, VIVT, VBI1, VBI2, VBIFull, PerfectTLB} {
		ipc[k] = run(t, k, prof, refs).IPC
	}
	// The headline orderings of Figure 6.
	if !(ipc[Virtual] < ipc[Native]) {
		t.Errorf("Virtual (%.4f) should trail Native (%.4f)", ipc[Virtual], ipc[Native])
	}
	if !(ipc[VIVT] > ipc[Native]) {
		t.Errorf("VIVT (%.4f) should beat Native (%.4f)", ipc[VIVT], ipc[Native])
	}
	if !(ipc[VBI1] > ipc[Native]) {
		t.Errorf("VBI-1 (%.4f) should beat Native (%.4f)", ipc[VBI1], ipc[Native])
	}
	if !(ipc[VBI2] >= ipc[VBI1]) {
		t.Errorf("VBI-2 (%.4f) should not trail VBI-1 (%.4f)", ipc[VBI2], ipc[VBI1])
	}
	if !(ipc[VBIFull] >= ipc[VBI2]) {
		t.Errorf("VBI-Full (%.4f) should not trail VBI-2 (%.4f)", ipc[VBIFull], ipc[VBI2])
	}
	if !(ipc[PerfectTLB] > ipc[Native]) {
		t.Errorf("Perfect TLB (%.4f) should beat Native (%.4f)", ipc[PerfectTLB], ipc[Native])
	}
}

func TestCacheFriendlyWorkloadIsInsensitive(t *testing.T) {
	if testing.Short() {
		t.Skip("needs a longer run")
	}
	prof := cacheFriendly()
	const refs = 40_000
	native := run(t, Native, prof, refs).IPC
	for _, k := range []Kind{Virtual, VIVT, VBI2, VBIFull, PerfectTLB} {
		r := run(t, k, prof, refs).IPC
		ratio := r / native
		if ratio < 0.85 || ratio > 1.20 {
			t.Errorf("%v/%v IPC ratio = %.3f on cache-resident workload", k, Native, ratio)
		}
	}
}

func TestVBI2ReducesDRAMAccessesViaZeroLines(t *testing.T) {
	prof := trace.Profile{
		Name: "cold-reader", MemRefsPer1000: 300,
		Structs: []trace.Struct{
			// Reads over a large, almost never-written array.
			{Name: "sparse", Size: 256 << 20, Pattern: trace.Rand, Weight: 1,
				WriteFrac: 0.01, ColdFrac: 0.9},
		},
	}
	const refs = 30_000
	rdNative := run(t, Native, prof, refs)
	rdVBI2 := run(t, VBI2, prof, refs)
	if rdVBI2.Extra["mtl.zero.lines"] == 0 {
		t.Fatal("no zero lines on a cold-read workload")
	}
	if rdVBI2.DRAMAccesses >= rdNative.DRAMAccesses {
		t.Errorf("VBI-2 DRAM accesses (%d) not below Native (%d)",
			rdVBI2.DRAMAccesses, rdNative.DRAMAccesses)
	}
	if rdVBI2.IPC <= rdNative.IPC {
		t.Errorf("VBI-2 IPC (%.4f) not above Native (%.4f)", rdVBI2.IPC, rdNative.IPC)
	}
}

func TestVBIFullDirectMapsAndSkipsWalks(t *testing.T) {
	prof := tlbHostile()
	res := run(t, VBIFull, prof, 30_000)
	walks := res.Extra["mtl.walk.accesses"]
	trans := res.Extra["mtl.translations"]
	if trans == 0 {
		t.Fatal("no translations recorded")
	}
	// Direct-mapped VBs translate without structure walks; allow a
	// residual for the downgrade paths.
	if walks > trans/10 {
		t.Errorf("VBI-Full walk accesses = %d for %d translations", walks, trans)
	}
}

func TestVirtualWalksLongerThanNative(t *testing.T) {
	prof := tlbHostile()
	const refs = 30_000
	n := run(t, Native, prof, refs)
	v := run(t, Virtual, prof, refs)
	nWalks, vWalks := n.Extra["walks"], v.Extra["walks"]
	if nWalks == 0 || vWalks == 0 {
		t.Fatal("no walks on a TLB-hostile workload")
	}
	nPer := float64(n.Extra["walk.accesses"]) / float64(nWalks)
	vPer := float64(v.Extra["walk.accesses"]) / float64(vWalks)
	if vPer <= nPer {
		t.Errorf("2D walk length (%.2f) not above native (%.2f)", vPer, nPer)
	}
}

func TestMulticoreRuns(t *testing.T) {
	profs := []trace.Profile{tlbHostile(), cacheFriendly(), tlbHostile(), cacheFriendly()}
	for _, k := range []Kind{Native, VBIFull} {
		mc, err := NewMulticore(Config{Kind: k, Refs: 5_000, Warmup: 2_000}, profs)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		results, err := mc.Run()
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if len(results) != 4 {
			t.Fatalf("%v: %d results", k, len(results))
		}
		for i, r := range results {
			if r.IPC <= 0 {
				t.Errorf("%v core %d: IPC = %f", k, i, r.IPC)
			}
		}
	}
}

func TestMulticoreContentionSlowsCores(t *testing.T) {
	if testing.Short() {
		t.Skip("needs longer runs")
	}
	prof := tlbHostile()
	alone := run(t, Native, prof, 20_000).IPC
	mc, err := NewMulticore(Config{Kind: Native, Refs: 20_000, Warmup: 10_000},
		[]trace.Profile{prof, prof, prof, prof})
	if err != nil {
		t.Fatal(err)
	}
	results, err := mc.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.IPC > alone*1.05 {
			t.Errorf("core %d shared IPC %.4f exceeds alone IPC %.4f", i, r.IPC, alone)
		}
	}
}

func TestKindString(t *testing.T) {
	if Native.String() != "Native" || VBIFull.String() != "VBI-Full" {
		t.Fatal("Kind.String broken")
	}
	if Kind(99).String() == "" {
		t.Fatal("out-of-range Kind.String")
	}
}

func TestLazyCacheCleanupOnDisable(t *testing.T) {
	// §4.2.4: when a VB is disabled and its VBID recycled, its stale cache
	// lines must be invalidated so the new owner never reads them.
	prof := cacheFriendly()
	m, err := New(Config{Kind: VBI2, Refs: 2_000, Warmup: 1_000}, prof)
	if err != nil {
		t.Fatal(err)
	}
	r := m.runner.(*vbiRunner)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// Fabricate a victim process whose VB fills some cache lines, then
	// destroy it; the hook must purge its lines.
	proc := r.vbios.CreateProcess()
	idx, u, err := r.vbios.RequestVB(proc, 64<<10, 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = idx
	base := uint64(u.Base())
	for off := uint64(0); off < 4096; off += 64 {
		r.hier.Fill(base+off, true)
	}
	if !r.hier.LLC.Contains(base) {
		t.Fatal("setup: line not cached")
	}
	if err := r.vbios.DestroyProcess(proc); err != nil {
		t.Fatal(err)
	}
	if r.hier.LLC.Contains(base) || r.hier.L1.Contains(base) {
		t.Fatal("stale lines survived disable_vb")
	}
}
