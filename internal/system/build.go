package system

import (
	"fmt"

	"vbi/internal/cache"
	"vbi/internal/dram"
	"vbi/internal/trace"
)

// New builds a single-core machine for the configuration.
func New(cfg Config, prof trace.Profile) (*Machine, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	mem := dram.NewUniform(cfg.Capacity)
	llc := cache.New("LLC", cfg.Params.LLCSize, cfg.Params.LLCWays)
	runner, err := newRunner(cfg.Kind, prof, cfg, mem, llc, nil, nil)
	if err != nil {
		return nil, err
	}
	return &Machine{
		name:   fmt.Sprintf("%s/%s", cfg.Kind, prof.Name),
		cfg:    cfg,
		runner: runner,
	}, nil
}

// sharedState bundles the per-machine singletons quad-core runs share
// (one OS / hypervisor / MTL across all cores).
type sharedState struct {
	conv *convShared
	vbi  *vbiShared
}

func newRunner(kind Kind, prof trace.Profile, cfg Config, mem *dram.Memory, llc *cache.Cache, sharedHier *cache.Hierarchy, ss *sharedState) (coreRunner, error) {
	switch kind {
	case Native, Native2M, Virtual, Virtual2M, PerfectTLB, VIVT:
		var cs *convShared
		if ss != nil {
			if ss.conv == nil {
				ss.conv = &convShared{}
			}
			cs = ss.conv
		}
		return newConvRunner(kind, prof, cfg, mem, llc, sharedHier, cs)
	case EnigmaHW2M:
		return newEnigmaRunner(prof, cfg, mem, llc, sharedHier, nil)
	case VBI1, VBI2, VBIFull:
		var vs *vbiShared
		if ss != nil {
			if ss.vbi == nil {
				ss.vbi = &vbiShared{}
			}
			vs = ss.vbi
		}
		return newVBIRunner(kind, prof, cfg, mem, llc, sharedHier, vs)
	}
	return nil, fmt.Errorf("system: unknown kind %v", kind)
}
