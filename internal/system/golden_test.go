package system

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"vbi/internal/workloads"
)

// goldenRefs keeps the byte-identity matrix fast while still driving every
// probe path through evictions, writebacks and (for the hetero run) one
// migration epoch.
const goldenRefs = 20_000

// goldenResults runs every registered kind plus one hetero machine and
// returns the RunResult list in deterministic order.
func goldenResults(t *testing.T) []RunResult {
	t.Helper()
	prof := workloads.MustGet("mcf")
	var out []RunResult
	for _, kind := range Kinds() {
		m, err := New(Config{Kind: kind, Refs: goldenRefs}, prof)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		out = append(out, res)
	}
	h, err := NewHetero(HeteroConfig{
		Mem: HeteroPCMDRAM, Policy: PolicyVBI, Refs: goldenRefs,
	}, prof)
	if err != nil {
		t.Fatalf("hetero: %v", err)
	}
	res, err := h.Run()
	if err != nil {
		t.Fatalf("hetero: %v", err)
	}
	out = append(out, res)
	return out
}

// TestGoldenRunResults pins the simulated results of all ten registered
// kinds plus a hetero migration run byte-for-byte against the committed
// goldens. The goldens were generated on the pre-map-free probe paths, so
// this test IS the old-vs-new byte-identity proof for the hot-loop
// rewrite: any change to LRU tick order, eviction choice, writeback
// sequencing or latency accounting shows up as a diff here.
//
// Regenerate (only when the timing model intentionally changes, alongside
// a harness.Version review) with:
//
//	VBI_GOLDEN_REGEN=1 go test -run TestGoldenRunResults ./internal/system
func TestGoldenRunResults(t *testing.T) {
	if testing.Short() {
		t.Skip("byte-identity matrix runs all eleven machines; skipped in -short")
	}
	path := filepath.Join("testdata", "golden_runresults.json")
	got, err := json.MarshalIndent(goldenResults(t), "", " ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	if os.Getenv("VBI_GOLDEN_REGEN") != "" {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden regenerated: %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (regenerate with VBI_GOLDEN_REGEN=1): %v", err)
	}
	if string(got) != string(want) {
		gotPath := filepath.Join(t.TempDir(), "got.json")
		_ = os.WriteFile(gotPath, got, 0o644)
		t.Fatalf("simulated results diverged from committed goldens (%s);\n"+
			"got written to %s\n"+
			"the probe-path rewrite must be byte-identical — do NOT regenerate unless the timing model itself changed",
			path, gotPath)
	}
}
