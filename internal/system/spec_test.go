package system

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"vbi/internal/workloads"
)

// TestBuiltinSpecsRegistered asserts the registry pre-registers every
// evaluated kind, resolvable case-insensitively.
func TestBuiltinSpecsRegistered(t *testing.T) {
	specs := Specs()
	if len(specs) < len(Kinds()) {
		t.Fatalf("registry holds %d specs, want at least the %d kinds", len(specs), len(Kinds()))
	}
	for i, k := range Kinds() {
		s := specs[i]
		if s.Name != k.String() || s.Base != k.String() || !s.Params.IsZero() {
			t.Errorf("built-in spec %d = %+v, want bare %q", i, s, k)
		}
		got, err := ResolveSpec(strings.ToUpper(k.String()))
		if err != nil || got.Name != k.String() {
			t.Errorf("ResolveSpec(%q) = %+v, %v", strings.ToUpper(k.String()), got, err)
		}
	}
	if _, err := ResolveSpec("no-such-system"); err == nil ||
		!strings.Contains(err.Error(), "Native") {
		t.Errorf("ResolveSpec miss should list known specs, got %v", err)
	}
}

// TestBuiltinSpecsRoundTripAndBuild: every registered built-in spec
// marshals to JSON, unmarshals back identically, and builds a runnable
// machine from its Config.
func TestBuiltinSpecsRoundTripAndBuild(t *testing.T) {
	prof := cacheFriendly()
	for _, s := range Specs()[:len(Kinds())] {
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatalf("%s: marshal: %v", s.Name, err)
		}
		var back Spec
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("%s: unmarshal %s: %v", s.Name, b, err)
		}
		if !reflect.DeepEqual(back, s) {
			t.Errorf("%s: round trip changed the spec: %+v -> %+v", s.Name, s, back)
		}
		cfg, err := s.Config()
		if err != nil {
			t.Fatalf("%s: Config: %v", s.Name, err)
		}
		cfg.Refs, cfg.Warmup = 500, 200
		m, err := New(cfg, prof)
		if err != nil {
			t.Fatalf("%s: New: %v", s.Name, err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatalf("%s: Run: %v", s.Name, err)
		}
		if res.IPC <= 0 {
			t.Errorf("%s: degenerate IPC %f", s.Name, res.IPC)
		}
	}
}

// TestRegisterVariant registers a declarative variant and exercises the
// registry's error paths.
func TestRegisterVariant(t *testing.T) {
	v := Spec{Name: "Native-SpecTest-128TLB", Base: "Native",
		Params: Params{L2TLBEntries: 128}}
	if err := Register(v); err != nil {
		t.Fatal(err)
	}
	got, err := ResolveSpec("native-spectest-128tlb")
	if err != nil || !reflect.DeepEqual(got, v) {
		t.Errorf("ResolveSpec = %+v, %v", got, err)
	}
	// Registration is an idempotent upsert: the identical definition is a
	// no-op (grid configs re-register on every expansion), but binding
	// the name to a different definition is an error.
	if err := Register(v); err != nil {
		t.Errorf("identical re-registration rejected: %v", err)
	}
	conflicting := v
	conflicting.Params = Params{L2TLBEntries: 256}
	if err := Register(conflicting); err == nil {
		t.Error("conflicting re-registration accepted")
	}
	if err := Register(Spec{Name: "x", Base: "NotAKind"}); err == nil {
		t.Error("unknown base accepted")
	}
	if err := Register(Spec{Base: "Native"}); err == nil {
		t.Error("nameless spec accepted")
	}
	if err := Register(Spec{Name: "bad-geom", Base: "Native",
		Params: Params{L2TLBEntries: 100}}); err == nil {
		t.Error("invalid geometry accepted")
	}
	names := SpecNames()
	found := false
	for _, n := range names {
		if n == v.Name {
			found = true
		}
	}
	if !found {
		t.Errorf("SpecNames() missing %q: %v", v.Name, names)
	}
}

// TestParamsNameTable pins the name <-> field mapping.
func TestParamsNameTable(t *testing.T) {
	names := ParamNames()
	if len(names) == 0 {
		t.Fatal("no parameter names")
	}
	defaults := DefaultParams()
	for _, n := range names {
		v, err := defaults.Get(n)
		if err != nil {
			t.Errorf("Get(%q): %v", n, err)
		}
		if v == 0 {
			t.Errorf("default for %q is zero; zero must mean 'default'", n)
		}
		if ParamDoc(n) == "" {
			t.Errorf("parameter %q has no doc line", n)
		}
		var p Params
		if err := p.Set(n, v+1); err != nil {
			t.Errorf("Set(%q): %v", n, err)
		}
		if got, _ := p.Get(n); got != v+1 {
			t.Errorf("Set/Get(%q) = %d, want %d", n, got, v+1)
		}
	}
	var p Params
	if err := p.Set("no_such_param", 1); err == nil {
		t.Error("Set accepted an unknown name")
	}
	// DefaultParams must cover every field: overlaying it leaves nothing
	// at zero, so withDefaults can never half-resolve.
	if reflect.ValueOf(defaults).NumField() != len(paramFields) {
		t.Errorf("Params has %d fields but the name table has %d entries",
			reflect.ValueOf(defaults).NumField(), len(paramFields))
	}
}

// TestOverlayPrecedence asserts field-by-field overlay semantics.
func TestOverlayPrecedence(t *testing.T) {
	base := Params{L2TLBEntries: 256, PWCEntries: 16}
	over := Params{L2TLBEntries: 1024}
	got := Overlay(base, over)
	if got.L2TLBEntries != 1024 || got.PWCEntries != 16 {
		t.Errorf("Overlay = %+v", got)
	}
	if !((Params{}).IsZero()) || base.IsZero() {
		t.Error("IsZero broken")
	}
	if s := over.String(); s != "l2_tlb_entries=1024" {
		t.Errorf("String() = %q", s)
	}
}

// TestParamsOverlayChangesBehavior is the satellite regression: halving
// the L2 TLB on mcf must increase L2 TLB misses, and the default overlay
// must reproduce the zero-overlay results byte-for-byte.
func TestParamsOverlayChangesBehavior(t *testing.T) {
	prof := workloads.MustGet("mcf")
	run := func(p Params) RunResult {
		t.Helper()
		m, err := New(Config{Kind: Native, Refs: 12_000, Params: p}, prof)
		if err != nil {
			t.Fatal(err)
		}
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	def := run(Params{})
	half := run(Params{L2TLBEntries: L2TLBEntries / 2})
	if half.Extra["tlb.misses"] <= def.Extra["tlb.misses"] {
		t.Errorf("halving the L2 TLB did not increase L2 TLB misses: %d -> %d",
			def.Extra["tlb.misses"], half.Extra["tlb.misses"])
	}
	explicit := run(DefaultParams())
	if !reflect.DeepEqual(def, explicit) {
		t.Errorf("explicit Table 1 params differ from zero params:\n%+v\n%+v", def, explicit)
	}
}

// TestSpecCanonicalJSON pins the canonical wire form of Spec — the shape
// that travels inside self-describing harness jobs and keys the result
// cache: a zero overlay is omitted entirely, a non-zero overlay survives
// marshal → unmarshal → marshal byte-identically, and Validate needs no
// registry (an unregistered inline spec validates and builds).
func TestSpecCanonicalJSON(t *testing.T) {
	bare := Spec{Name: "Native", Base: "Native"}
	b, err := json.Marshal(bare)
	if err != nil {
		t.Fatal(err)
	}
	if want := `{"name":"Native","base":"Native"}`; string(b) != want {
		t.Errorf("bare spec JSON = %s, want %s (zero overlay must be omitted)", b, want)
	}
	// An explicit empty overlay normalizes away on the next marshal.
	var norm Spec
	if err := json.Unmarshal([]byte(`{"name":"Native","base":"Native","params":{}}`), &norm); err != nil {
		t.Fatal(err)
	}
	if nb, _ := json.Marshal(norm); string(nb) != string(b) {
		t.Errorf("empty-overlay spec did not normalize: %s", nb)
	}

	variant := Spec{Name: "Canon-Variant", Base: "VBI-Full",
		Params: Params{L2TLBEntries: 256, PWCEntries: 64, L2TLBLatency: 9}}
	vb, err := json.Marshal(variant)
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := json.Unmarshal(vb, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, variant) {
		t.Errorf("round trip changed the spec: %+v -> %+v", variant, back)
	}
	vb2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(vb) != string(vb2) {
		t.Errorf("re-marshal not byte-identical:\nfirst:  %s\nsecond: %s", vb, vb2)
	}

	// Never registered anywhere, yet fully usable: Validate and Config
	// work from the spec's own contents.
	if err := back.Validate(); err != nil {
		t.Errorf("unregistered inline spec failed validation: %v", err)
	}
	cfg, err := back.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Kind != VBIFull || cfg.Params.L2TLBEntries != 256 {
		t.Errorf("Config() dropped the materialized overlay: %+v", cfg)
	}
	if err := (Spec{Base: "Native"}).Validate(); err == nil {
		t.Error("nameless spec validated")
	}
	if err := (Spec{Name: "x", Base: "NotAKind"}).Validate(); err == nil {
		t.Error("unknown base validated")
	}
}
