// Package workloads defines the synthetic per-benchmark profiles standing
// in for the paper's Pin traces (SPEC CPU 2006 [125], SPEC CPU 2017 [126],
// TailBench [48] and Graph 500 [44]; §7.1 and DESIGN.md).
//
// Each profile encodes the published memory character of its benchmark at
// the level that determines address-translation and data-placement
// behaviour: footprint, number of distinct data structures (VB count under
// VBI, §4.3), access-pattern class per structure, pointer-chase dependence,
// hot-set shape (dense and cache-resident vs. sparse one-line-per-page,
// the TLB-hostile shape of mcf-like codes), write fraction, and the
// never-written cold tail that delayed allocation (§5.1) turns into zero
// lines. Absolute sizes are scaled to the simulated 4 GB main memory while
// preserving each benchmark's relationship to the TLB reach (2 MB) and LLC
// capacity (8 MB).
package workloads

import (
	"fmt"
	"sort"

	"vbi/internal/prop"
	"vbi/internal/trace"
)

const (
	kb = 1 << 10
	mb = 1 << 20
	gb = 1 << 30
)

// profiles maps benchmark name to its profile.
var profiles = map[string]trace.Profile{
	// ------------------------- SPEC CPU 2006 -------------------------
	"mcf": {
		// Single-depot vehicle scheduling: multi-GB pointer chasing over
		// network arcs/nodes; the highest TLB MPKI in SPEC. Hot nodes are
		// cache-resident but scattered one-per-page, so even the 2 MB-page
		// TLB reach cannot cover them.
		Name: "mcf", MemRefsPer1000: 380,
		Structs: []trace.Struct{
			{Name: "nodes", Size: 1472 * mb, Pattern: trace.Chase, Weight: 5,
				WriteFrac: 0.12, HotFrac: 0.15, HotBias: 0.88, SparseHot: true, ColdFrac: 0.30},
			{Name: "arcs", Size: 640 * mb, Pattern: trace.Rand, Weight: 3,
				WriteFrac: 0.08, HotFrac: 0.15, HotBias: 0.80, SparseHot: true, ColdFrac: 0.25},
			{Name: "basket", Size: 2 * mb, Pattern: trace.Rand, Weight: 2,
				WriteFrac: 0.40, HotFrac: 0.25, HotBias: 0.95},
		},
	},
	"astar": {
		// Path-finding over a graph: pointer-heavy, medium footprint.
		Name: "astar", MemRefsPer1000: 330,
		Structs: []trace.Struct{
			{Name: "graph", Size: 288 * mb, Pattern: trace.Chase, Weight: 4,
				WriteFrac: 0.10, HotFrac: 0.15, HotBias: 0.75, SparseHot: true, ColdFrac: 0.15},
			{Name: "open-list", Size: 24 * mb, Pattern: trace.Rand, Weight: 2,
				WriteFrac: 0.35, HotFrac: 0.10, HotBias: 0.90},
			{Name: "wayfields", Size: 96 * mb, Pattern: trace.Seq, Weight: 1,
				WriteFrac: 0.30, ColdFrac: 0.20},
		},
	},
	"bzip2": {
		// Block compression: working set near the block size, mixed
		// sequential/random, cache-friendly.
		Name: "bzip2", MemRefsPer1000: 280,
		Structs: []trace.Struct{
			{Name: "block", Size: 8 * mb, Pattern: trace.Rand, Weight: 4,
				WriteFrac: 0.30, HotFrac: 0.30, HotBias: 0.85},
			{Name: "input", Size: 64 * mb, Pattern: trace.Seq, Weight: 2, WriteFrac: 0.05},
			{Name: "output", Size: 64 * mb, Pattern: trace.Seq, Weight: 1,
				WriteFrac: 0.90, ColdFrac: 0.30},
		},
	},
	"GemsFDTD": {
		// 3D finite-difference time domain: many large grids allocated
		// per timestep (195 VBs, §4.3), strided sweeps, large
		// zero-initialized tails.
		Name: "GemsFDTD", MemRefsPer1000: 360,
		Structs: gemsGrids(),
	},
	"milc": {
		// Lattice QCD: streaming sweeps over large field arrays.
		Name: "milc", MemRefsPer1000: 370,
		Structs: []trace.Struct{
			{Name: "lattice-u", Size: 224 * mb, Pattern: trace.Seq, Weight: 3,
				WriteFrac: 0.25, ColdFrac: 0.10},
			{Name: "lattice-v", Size: 224 * mb, Pattern: trace.Seq, Weight: 3,
				WriteFrac: 0.25, ColdFrac: 0.10},
			{Name: "gather-idx", Size: 96 * mb, Pattern: trace.Rand, Weight: 2,
				WriteFrac: 0.05, HotFrac: 0.20, HotBias: 0.50},
		},
	},
	"namd": {
		// Molecular dynamics: small, cache-resident working set whose hot
		// pages fit the TLB reach — translation-insensitive.
		Name: "namd", MemRefsPer1000: 230,
		Structs: []trace.Struct{
			{Name: "atoms", Size: 8 * mb, Pattern: trace.Rand, Weight: 4,
				WriteFrac: 0.25, HotFrac: 0.12, HotBias: 0.97},
			{Name: "pairlists", Size: 16 * mb, Pattern: trace.Seq, Weight: 2, WriteFrac: 0.10},
			{Name: "forces", Size: 4 * mb, Pattern: trace.Rand, Weight: 2,
				WriteFrac: 0.50, HotFrac: 0.25, HotBias: 0.95},
		},
	},
	"sjeng": {
		// Chess search: hash-table probing, moderate footprint.
		Name: "sjeng", MemRefsPer1000: 250,
		Structs: []trace.Struct{
			{Name: "ttable", Size: 160 * mb, Pattern: trace.Rand, Weight: 3,
				WriteFrac: 0.25, HotFrac: 0.06, HotBias: 0.65, SparseHot: true},
			{Name: "board-stack", Size: 2 * mb, Pattern: trace.Rand, Weight: 4,
				WriteFrac: 0.45, HotFrac: 0.50, HotBias: 0.95},
		},
	},
	"hmmer": {
		// Profile HMM search: small hot matrices, very cache-friendly.
		Name: "hmmer", MemRefsPer1000: 300,
		Structs: []trace.Struct{
			{Name: "dp-matrix", Size: 24 * mb, Pattern: trace.Seq, Weight: 5, WriteFrac: 0.45},
			{Name: "hmm", Size: 4 * mb, Pattern: trace.Rand, Weight: 3,
				WriteFrac: 0.02, HotFrac: 0.40, HotBias: 0.90},
		},
	},
	"soplex": {
		// Simplex LP solver: sparse-matrix column sweeps plus random
		// row access.
		Name: "soplex", MemRefsPer1000: 320,
		Structs: []trace.Struct{
			{Name: "matrix", Size: 224 * mb, Pattern: trace.Strided, Stride: 8 * kb, Weight: 3,
				WriteFrac: 0.15, ColdFrac: 0.20},
			{Name: "rows", Size: 64 * mb, Pattern: trace.Rand, Weight: 3,
				WriteFrac: 0.20, HotFrac: 0.10, HotBias: 0.70, SparseHot: true},
			{Name: "workvecs", Size: 8 * mb, Pattern: trace.Rand, Weight: 2,
				WriteFrac: 0.40, HotFrac: 0.30, HotBias: 0.90},
		},
	},
	"sphinx3": {
		// Speech recognition: acoustic model scans with a hot language-
		// model core.
		Name: "sphinx3", MemRefsPer1000: 310,
		Structs: []trace.Struct{
			{Name: "senones", Size: 128 * mb, Pattern: trace.Rand, Weight: 3,
				WriteFrac: 0.05, HotFrac: 0.15, HotBias: 0.70},
			{Name: "frames", Size: 48 * mb, Pattern: trace.Seq, Weight: 3, WriteFrac: 0.30},
			{Name: "lm-cache", Size: 8 * mb, Pattern: trace.Rand, Weight: 2,
				WriteFrac: 0.30, HotFrac: 0.30, HotBias: 0.92},
		},
	},

	// ------------------------- SPEC CPU 2017 -------------------------
	"bwaves-17": {
		// Blast-wave CFD: large strided grid sweeps, big BSS tails.
		Name: "bwaves-17", MemRefsPer1000: 390,
		Structs: []trace.Struct{
			{Name: "grid-a", Size: 320 * mb, Pattern: trace.Strided, Stride: 16 * kb, Weight: 3,
				WriteFrac: 0.25, ColdFrac: 0.25},
			{Name: "grid-b", Size: 320 * mb, Pattern: trace.Strided, Stride: 16 * kb, Weight: 3,
				WriteFrac: 0.25, ColdFrac: 0.25},
			{Name: "rhs", Size: 128 * mb, Pattern: trace.Seq, Weight: 2,
				WriteFrac: 0.50, ColdFrac: 0.15},
		},
	},
	"deepsjeng-17": {
		// Chess with a large transposition table: random probes over a
		// multi-hundred-MB table.
		Name: "deepsjeng-17", MemRefsPer1000: 270,
		Structs: []trace.Struct{
			{Name: "ttable", Size: 448 * mb, Pattern: trace.Rand, Weight: 4,
				WriteFrac: 0.30, HotFrac: 0.08, HotBias: 0.70, SparseHot: true, ColdFrac: 0.20},
			{Name: "search-stack", Size: 3 * mb, Pattern: trace.Rand, Weight: 4,
				WriteFrac: 0.45, HotFrac: 0.50, HotBias: 0.95},
		},
	},
	"lbm-17": {
		// Lattice Boltzmann: two large grids streamed with heavy writes.
		Name: "lbm-17", MemRefsPer1000: 420,
		Structs: []trace.Struct{
			{Name: "src-grid", Size: 208 * mb, Pattern: trace.Seq, Weight: 3, WriteFrac: 0.10},
			{Name: "dst-grid", Size: 208 * mb, Pattern: trace.Seq, Weight: 3,
				WriteFrac: 0.85, ColdFrac: 0.10},
		},
	},
	"omnetpp-17": {
		// Discrete-event network simulation: event heap + module objects,
		// pointer chasing over many pages; known TLB stressor.
		Name: "omnetpp-17", MemRefsPer1000: 300,
		Structs: []trace.Struct{
			{Name: "event-objects", Size: 192 * mb, Pattern: trace.Chase, Weight: 5,
				WriteFrac: 0.20, HotFrac: 0.20, HotBias: 0.85, SparseHot: true, ColdFrac: 0.10},
			{Name: "event-heap", Size: 8 * mb, Pattern: trace.Rand, Weight: 3,
				WriteFrac: 0.45, HotFrac: 0.30, HotBias: 0.90},
		},
	},
	"xalancbmk-17": {
		// XSLT processing: DOM pointer chasing plus string tables.
		Name: "xalancbmk-17", MemRefsPer1000: 290,
		Structs: []trace.Struct{
			{Name: "dom", Size: 256 * mb, Pattern: trace.Chase, Weight: 4,
				WriteFrac: 0.15, HotFrac: 0.12, HotBias: 0.75, SparseHot: true, ColdFrac: 0.15},
			{Name: "strings", Size: 64 * mb, Pattern: trace.Rand, Weight: 2,
				WriteFrac: 0.10, HotFrac: 0.20, HotBias: 0.80},
		},
	},

	// --------------------------- TailBench ---------------------------
	"img-dnn": {
		// Handwriting-recognition DNN inference: streaming weight reads
		// with small hot activations.
		Name: "img-dnn", MemRefsPer1000: 350,
		Structs: []trace.Struct{
			{Name: "weights", Size: 256 * mb, Pattern: trace.Seq, Weight: 5, WriteFrac: 0.0},
			{Name: "activations", Size: 12 * mb, Pattern: trace.Rand, Weight: 3,
				WriteFrac: 0.50, HotFrac: 0.40, HotBias: 0.90},
			{Name: "scratch", Size: 64 * mb, Pattern: trace.Seq, Weight: 1,
				WriteFrac: 0.60, ColdFrac: 0.40},
		},
	},
	"moses": {
		// Statistical machine translation: huge read-mostly phrase table
		// probed randomly.
		Name: "moses", MemRefsPer1000: 310,
		Structs: []trace.Struct{
			{Name: "phrase-table", Size: 512 * mb, Pattern: trace.Rand, Weight: 4,
				WriteFrac: 0.02, HotFrac: 0.06, HotBias: 0.70, SparseHot: true, ColdFrac: 0.30},
			{Name: "hypotheses", Size: 32 * mb, Pattern: trace.Chase, Weight: 3,
				WriteFrac: 0.40, HotFrac: 0.25, HotBias: 0.85},
		},
	},

	// --------------------------- Graph 500 ---------------------------
	"graph500": {
		// BFS on a Kronecker graph: uniform random edge access, bitmap
		// updates, large never-touched tail in the over-allocated edge
		// arrays.
		Name: "graph500", MemRefsPer1000: 340,
		Structs: []trace.Struct{
			{Name: "edges", Size: 768 * mb, Pattern: trace.Rand, Weight: 4,
				WriteFrac: 0.05, ColdFrac: 0.25},
			{Name: "frontier", Size: 48 * mb, Pattern: trace.Seq, Weight: 2, WriteFrac: 0.50},
			{Name: "visited", Size: 24 * mb, Pattern: trace.Rand, Weight: 3,
				WriteFrac: 0.40, HotFrac: 0.30, HotBias: 0.60},
		},
	},
}

// gemsGrids builds GemsFDTD's structure list: six large field grids per
// timestep group plus many auxiliary arrays, mirroring its unusually high
// allocation count (195 VBs, §4.3).
func gemsGrids() []trace.Struct {
	var out []trace.Struct
	for i := 0; i < 6; i++ {
		out = append(out, trace.Struct{
			Name: fmt.Sprintf("field-%d", i), Size: 96 * mb,
			Pattern: trace.Strided, Stride: 4 * kb, Weight: 3,
			WriteFrac: 0.35, ColdFrac: 0.35,
		})
	}
	for i := 0; i < 24; i++ {
		out = append(out, trace.Struct{
			Name: fmt.Sprintf("aux-%d", i), Size: 4 * mb,
			Pattern: trace.Seq, Weight: 0.25,
			WriteFrac: 0.40, ColdFrac: 0.30,
		})
	}
	return out
}

// Get returns the profile for a benchmark name.
func Get(name string) (trace.Profile, error) {
	p, ok := profiles[name]
	if !ok {
		return trace.Profile{}, fmt.Errorf("workloads: unknown benchmark %q", name)
	}
	return p, nil
}

// MustGet is Get for known-good names (panics otherwise).
func MustGet(name string) trace.Profile {
	p, err := Get(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Names returns all benchmark names, sorted.
func Names() []string {
	out := make([]string, 0, len(profiles))
	for n := range profiles {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Fig6Apps lists the Figure 6 x-axis (single-core, 4 KB pages).
var Fig6Apps = []string{
	"astar", "bzip2", "GemsFDTD", "mcf", "milc", "namd", "sjeng",
	"bwaves-17", "deepsjeng-17", "lbm-17", "omnetpp-17",
	"img-dnn", "moses", "graph500",
}

// Fig7Apps lists the applications shown in Figure 7 (the average there is
// computed over all Fig6Apps, §7.2.2).
var Fig7Apps = []string{
	"bzip2", "GemsFDTD", "mcf", "milc",
	"deepsjeng-17", "lbm-17", "img-dnn", "graph500",
}

// HeteroApps lists the Figure 9/10 x-axis.
var HeteroApps = []string{
	"astar", "bzip2", "GemsFDTD", "hmmer", "mcf", "milc", "soplex",
	"sphinx3", "bwaves-17", "lbm-17", "omnetpp-17", "xalancbmk-17",
	"img-dnn", "moses", "graph500",
}

// Bundles reproduces Table 2's multiprogrammed workload bundles.
var Bundles = map[string][]string{
	"wl1": {"deepsjeng-17", "omnetpp-17", "bwaves-17", "lbm-17"},
	"wl2": {"graph500", "astar", "img-dnn", "moses"},
	"wl3": {"mcf", "GemsFDTD", "astar", "milc"},
	"wl4": {"milc", "namd", "GemsFDTD", "bzip2"},
	"wl5": {"bzip2", "GemsFDTD", "sjeng", "mcf"},
	"wl6": {"namd", "bzip2", "astar", "sjeng"},
}

// BundleNames returns bundle names in order.
var BundleNames = []string{"wl1", "wl2", "wl3", "wl4", "wl5", "wl6"}

// PropsFor derives the VB property bitvector (§4.1.1) software passes for
// a structure: the semantic hints the MTL's placement policies consume.
func PropsFor(s trace.Struct) prop.Props {
	var p prop.Props
	if s.Code {
		p = p.With(prop.Code | prop.ReadOnly)
	}
	switch s.Pattern {
	case trace.Seq, trace.Strided:
		p = p.With(prop.BandwidthSensitive | prop.AccessSequential)
	case trace.Rand:
		p = p.With(prop.AccessRandom)
	case trace.Chase:
		p = p.With(prop.LatencySensitive | prop.AccessRandom)
	}
	// Small structures with dense hot subsets are latency-critical.
	if s.HotFrac > 0 && !s.SparseHot && s.Size <= 16*mb {
		p = p.With(prop.LatencySensitive)
	}
	if s.WriteFrac == 0 {
		p = p.With(prop.ReadOnly)
	}
	return p
}
