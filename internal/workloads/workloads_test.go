package workloads

import (
	"testing"

	"vbi/internal/prop"
	"vbi/internal/trace"
)

func TestAllFigureAppsExist(t *testing.T) {
	lists := map[string][]string{
		"Fig6":   Fig6Apps,
		"Fig7":   Fig7Apps,
		"Hetero": HeteroApps,
	}
	for fig, apps := range lists {
		for _, a := range apps {
			if _, err := Get(a); err != nil {
				t.Errorf("%s references missing workload %q", fig, a)
			}
		}
	}
}

func TestBundlesMatchTable2(t *testing.T) {
	// Table 2 of the paper, verbatim.
	want := map[string][]string{
		"wl1": {"deepsjeng-17", "omnetpp-17", "bwaves-17", "lbm-17"},
		"wl2": {"graph500", "astar", "img-dnn", "moses"},
		"wl3": {"mcf", "GemsFDTD", "astar", "milc"},
		"wl4": {"milc", "namd", "GemsFDTD", "bzip2"},
		"wl5": {"bzip2", "GemsFDTD", "sjeng", "mcf"},
		"wl6": {"namd", "bzip2", "astar", "sjeng"},
	}
	for name, apps := range want {
		got, ok := Bundles[name]
		if !ok {
			t.Fatalf("missing bundle %s", name)
		}
		if len(got) != 4 {
			t.Fatalf("%s has %d apps", name, len(got))
		}
		for i := range apps {
			if got[i] != apps[i] {
				t.Errorf("%s[%d] = %q, want %q", name, i, got[i], apps[i])
			}
			if _, err := Get(apps[i]); err != nil {
				t.Errorf("bundle app %q missing", apps[i])
			}
		}
	}
	if len(BundleNames) != 6 {
		t.Fatal("BundleNames incomplete")
	}
}

func TestProfilesWellFormed(t *testing.T) {
	for _, name := range Names() {
		p := MustGet(name)
		if p.Name != name {
			t.Errorf("%s: profile.Name = %q", name, p.Name)
		}
		if p.MemRefsPer1000 <= 0 || p.MemRefsPer1000 > 1000 {
			t.Errorf("%s: MemRefsPer1000 = %d", name, p.MemRefsPer1000)
		}
		if len(p.Structs) == 0 {
			t.Errorf("%s: no structures", name)
		}
		for _, s := range p.Structs {
			if s.Size == 0 || s.Size%4096 != 0 {
				t.Errorf("%s/%s: size %d not page-aligned", name, s.Name, s.Size)
			}
			if s.Weight <= 0 {
				t.Errorf("%s/%s: weight %f", name, s.Name, s.Weight)
			}
			if s.WriteFrac < 0 || s.WriteFrac > 1 || s.ColdFrac < 0 || s.ColdFrac >= 1 {
				t.Errorf("%s/%s: bad fractions", name, s.Name)
			}
			if s.HotBias > 0 && s.HotFrac == 0 {
				t.Errorf("%s/%s: hot bias without hot fraction", name, s.Name)
			}
		}
		if p.Footprint() > 3<<30 {
			t.Errorf("%s: footprint %d exceeds simulated-memory budget", name, p.Footprint())
		}
	}
}

func TestFootprintsSpanRegimes(t *testing.T) {
	// The suite must contain both cache-resident and TLB-hostile apps for
	// the figures to show their spreads.
	small, big := false, false
	for _, name := range Names() {
		fp := MustGet(name).Footprint()
		if fp < 64<<20 {
			small = true
		}
		if fp > 512<<20 {
			big = true
		}
	}
	if !small || !big {
		t.Fatalf("workload footprints lack spread (small=%v big=%v)", small, big)
	}
}

func TestGemsFDTDManyStructs(t *testing.T) {
	// §4.3 singles out GemsFDTD for its high VB count.
	p := MustGet("GemsFDTD")
	if len(p.Structs) < 20 {
		t.Fatalf("GemsFDTD has %d structs; expected the allocation-heavy shape", len(p.Structs))
	}
}

func TestGeneratable(t *testing.T) {
	for _, name := range Names() {
		g := trace.NewGenerator(MustGet(name), 1)
		for i := 0; i < 1000; i++ {
			r := g.Next()
			if r.Offset >= MustGet(name).Structs[r.StructIdx].Size {
				t.Fatalf("%s: out-of-bounds ref", name)
			}
		}
	}
}

func TestPropsFor(t *testing.T) {
	chase := trace.Struct{Pattern: trace.Chase}
	if p := PropsFor(chase); !p.Has(prop.LatencySensitive) {
		t.Error("chase struct not latency-sensitive")
	}
	stream := trace.Struct{Pattern: trace.Seq, WriteFrac: 0.5}
	if p := PropsFor(stream); !p.Has(prop.BandwidthSensitive) {
		t.Error("stream struct not bandwidth-sensitive")
	}
	ro := trace.Struct{Pattern: trace.Rand, WriteFrac: 0}
	if p := PropsFor(ro); !p.Has(prop.ReadOnly) {
		t.Error("read-only struct not marked")
	}
	code := trace.Struct{Code: true}
	if p := PropsFor(code); !p.Has(prop.Code) {
		t.Error("code struct not marked")
	}
}

func TestUnknownWorkload(t *testing.T) {
	if _, err := Get("nonexistent"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}
