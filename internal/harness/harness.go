// Package harness orchestrates experiment runs. It turns declarative Job
// specs — resolved system spec, parameter overlay, workload(s) or
// multiprogrammed bundle, reference count, seed, heterogeneous memory and
// placement policy — into simulations executed across a bounded worker
// pool, with results guaranteed identical to a serial run: every job owns
// its own system.Machine, and aggregation is positional, so the worker
// count only changes wall-clock time, never output.
//
// Jobs are self-describing: the fully resolved system.Spec travels inside
// the job (its canonical JSON, the dist wire, the cache key), so name
// resolution against the process-wide spec registry happens exactly once,
// where the job is constructed — a worker machine never consults its own
// registry and can therefore run variants registered only in the
// coordinator.
//
// The harness also provides an on-disk result cache (see Cache) keyed by a
// hash of the job spec, so re-running a sweep only simulates what changed,
// and grid-sweep expansion (see Grid) for design-space exploration over
// (system × workload × bundle × seed × parameter axes × refs × hetero
// policy). Execution sits behind the Executor seam: *Runner is the local
// worker pool, internal/dist's Coordinator shards batches across machines.
// internal/exp, cmd/vbibench and cmd/vbisweep all run on top of it;
// DESIGN.md describes the architecture.
package harness

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"time"

	"vbi/internal/obs"
	"vbi/internal/system"
	"vbi/internal/trace"
	"vbi/internal/workloads"
)

// Job declares one simulation. The zero values of the optional fields take
// the system package's defaults, exactly as a direct system.New call
// would. Jobs are plain data: they marshal to canonical JSON, which is
// what the result cache hashes.
//
//vbi:wire
type Job struct {
	// Spec is the fully resolved system configuration: a built-in base
	// kind plus a materialized parameter overlay. Resolve a registered
	// name once with system.ResolveSpec (or system.MustSpec) when
	// constructing the job; from then on the spec travels with the job —
	// canonical JSON, the dist wire, the cache key — and no process ever
	// re-resolves it against a local registry. Must be nil for
	// heterogeneous-memory jobs, which are always VBI-2 over two zones.
	Spec *system.Spec `json:"spec,omitempty"`
	// Workloads lists benchmark names: one element is a single-core run,
	// several are a multiprogrammed run with one core per workload.
	Workloads []string `json:"workloads"`
	// Refs is the measured reference count per core (0 = default).
	Refs int `json:"refs,omitempty"`
	// Warmup references before measurement (0 = Refs/2).
	Warmup int `json:"warmup,omitempty"`
	// Seed selects the trace streams (0 = 1).
	Seed uint64 `json:"seed,omitempty"`
	// Capacity is the physical memory size (0 = default).
	Capacity uint64 `json:"capacity,omitempty"`
	// UniformTables forces fixed 4-level tables on VBI kinds (the §5.2
	// ablation).
	UniformTables bool `json:"uniform_tables,omitempty"`
	// Params overlays tunable hardware/OS knobs on top of the resolved
	// spec's parameters (the job wins field-by-field); zero fields keep
	// the spec's values, and the spec's zero fields keep Table 1 defaults.
	Params system.Params `json:"params,omitempty"`

	// HeteroMem, when non-empty ("PCM-DRAM" or "TL-DRAM"), selects a
	// heterogeneous-memory run under Policy ("Unaware", "VBI" or "IDEAL").
	HeteroMem string `json:"hetero_mem,omitempty"`
	Policy    string `json:"policy,omitempty"`

	// Slice, when set, makes this a time-shard job: it simulates only the
	// slice's measured-reference window (single-core jobs only; see
	// system.Slice). Slice jobs are ordinary jobs to every executor — they
	// ride the dist wire, retry machinery and result cache unchanged, each
	// slice under its own cache key.
	Slice *system.Slice `json:"slice,omitempty"`
	// Shards, when > 1, asks the executing pool to run a multiprogrammed
	// bundle's cores on up to Shards concurrent goroutines
	// (system.Multicore.RunSharded). The results are byte-identical to the
	// serial interleave, so Shards is erased from the canonical cache-key
	// JSON: sharded and serial runs share cache entries.
	Shards int `json:"shards,omitempty"`
}

// canonical returns the job as hashed and stored by the result cache.
// Shards is erased: it changes only how a bundle is executed, never its
// bytes. Slice stays — each window is its own deterministic result.
func (j Job) canonical() Job {
	j.Shards = 0
	return j
}

// Result pairs a job with the per-core results of its run.
type Result struct {
	Job     Job                `json:"job"`
	Results []system.RunResult `json:"results"`
	// Cached reports whether the run was served from the result cache.
	Cached bool `json:"-"`
	// Elapsed is the wall-clock simulation time of this job when it was
	// actually executed by the local pool (zero for cache hits and for
	// results that crossed the dist wire). Excluded from JSON like Cached:
	// it is measurement metadata, not part of the deterministic payload.
	Elapsed time.Duration `json:"-"`
	// Timing is the job's full measurement record: wall time, queue wait,
	// cache-hit flag and the per-phase event breakdown. Unlike Elapsed it
	// survives the dist wire (JobResult carries it beside the results), so
	// a coordinator sees where remote time went. Excluded from JSON for
	// the same reason as Cached and Elapsed: the deterministic result
	// payload — and therefore every cache entry and rendered matrix — must
	// be byte-identical whether or not anyone timed the run.
	Timing *obs.JobTiming `json:"-"`
}

// Validate checks the job without running it.
func (j Job) Validate() error {
	if len(j.Workloads) == 0 {
		return fmt.Errorf("harness: job has no workloads")
	}
	for _, w := range j.Workloads {
		if _, err := workloads.Get(w); err != nil {
			return err
		}
	}
	if err := j.Params.Validate(); err != nil {
		return err
	}
	if j.Slice != nil {
		if len(j.Workloads) != 1 {
			return fmt.Errorf("harness: slice jobs are single-core (bundle cores shard via Shards)")
		}
		refs := j.Refs
		if refs == 0 {
			refs = 1_000_000
		}
		if err := j.Slice.Validate(refs); err != nil {
			return err
		}
		if j.HeteroMem != "" && j.Slice.Approx {
			return fmt.Errorf("harness: approx slicing unsupported for hetero jobs (migration is feedback-driven)")
		}
	}
	if j.HeteroMem != "" {
		if j.Spec != nil {
			return fmt.Errorf("harness: heterogeneous jobs are always VBI-2; Spec %q conflicts with HeteroMem %q",
				j.Spec.Name, j.HeteroMem)
		}
		if len(j.Workloads) != 1 {
			return fmt.Errorf("harness: heterogeneous jobs are single-core")
		}
		if _, err := system.ParseHeteroMem(j.HeteroMem); err != nil {
			return err
		}
		if _, err := system.ParsePolicy(j.Policy); err != nil {
			return err
		}
		return nil
	}
	if j.Spec == nil {
		return fmt.Errorf("harness: job has no system spec (resolve a name with system.ResolveSpec)")
	}
	if err := j.Spec.Validate(); err != nil {
		return err
	}
	return system.Overlay(j.Spec.Params, j.Params).Validate()
}

// Describe returns a short label for progress lines and listings.
// Single-core jobs read "spec/app"; multiprogrammed bundles read
// "app1+app2@spec", so a bundle row is distinguishable at a glance.
func (j Job) Describe() string {
	apps := strings.Join(j.Workloads, "+")
	name := ""
	if j.Spec != nil {
		name = j.Spec.Name
	}
	if j.HeteroMem != "" {
		name = fmt.Sprintf("%s/%s", j.HeteroMem, j.Policy)
	} else if j.UniformTables {
		name += "(uniform)"
	}
	if !j.Params.IsZero() {
		name = fmt.Sprintf("%s[%s]", name, j.Params)
	}
	out := fmt.Sprintf("%s/%s", name, apps)
	if len(j.Workloads) > 1 {
		out = fmt.Sprintf("%s@%s", apps, name)
	}
	if j.Slice != nil {
		out = fmt.Sprintf("%s #%d/%d", out, j.Slice.Index+1, j.Slice.Of)
	}
	return out
}

// run executes the job on a freshly built machine.
func (j Job) run() ([]system.RunResult, error) {
	if j.HeteroMem != "" {
		mem, err := system.ParseHeteroMem(j.HeteroMem)
		if err != nil {
			return nil, err
		}
		pol, err := system.ParsePolicy(j.Policy)
		if err != nil {
			return nil, err
		}
		m, err := system.NewHetero(system.HeteroConfig{
			Mem: mem, Policy: pol, Refs: j.Refs, Warmup: j.Warmup,
			Seed: j.Seed, Params: j.Params}, workloads.MustGet(j.Workloads[0]))
		if err != nil {
			return nil, err
		}
		var res system.RunResult
		if j.Slice != nil {
			res, err = m.RunSlice(*j.Slice)
		} else {
			res, err = m.Run()
		}
		if err != nil {
			return nil, err
		}
		return []system.RunResult{res}, nil
	}

	cfg, err := j.Spec.Config()
	if err != nil {
		return nil, err
	}
	cfg.Refs, cfg.Warmup, cfg.Seed = j.Refs, j.Warmup, j.Seed
	cfg.Capacity, cfg.UniformTables = j.Capacity, j.UniformTables
	cfg.Params = system.Overlay(cfg.Params, j.Params)
	if len(j.Workloads) > 1 {
		var profs []trace.Profile
		for _, w := range j.Workloads {
			profs = append(profs, workloads.MustGet(w))
		}
		mc, err := system.NewMulticore(cfg, profs)
		if err != nil {
			return nil, err
		}
		if j.Shards > 1 {
			return mc.RunSharded(j.Shards)
		}
		return mc.Run()
	}
	m, err := system.New(cfg, workloads.MustGet(j.Workloads[0]))
	if err != nil {
		return nil, err
	}
	var res system.RunResult
	if j.Slice != nil {
		res, err = m.RunSlice(*j.Slice)
	} else {
		res, err = m.Run()
	}
	if err != nil {
		return nil, err
	}
	return []system.RunResult{res}, nil
}

// Executor runs batches of jobs. It is the seam between sweep front-ends
// and execution backends: *Runner executes on the local worker pool,
// dist.Coordinator shards the batch across remote vbiworker daemons.
// Every implementation returns one Result per job, in job order, with
// output independent of how the batch was scheduled.
type Executor interface {
	Run(ctx context.Context, jobs []Job) ([]Result, error)
}

// Runner executes batches of jobs over a worker pool.
type Runner struct {
	// Workers bounds concurrent simulations (<=0 = GOMAXPROCS).
	Workers int
	// Cache, when non-nil, serves unchanged jobs from disk and stores new
	// results.
	Cache *Cache
	// Progress, when non-nil, receives one line per completed job.
	Progress io.Writer

	mu sync.Mutex // guards Progress
}

func (r *Runner) logf(format string, args ...any) {
	if r.Progress == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fmt.Fprintf(r.Progress, format+"\n", args...)
}

var _ Executor = (*Runner)(nil)

// Run executes the jobs and returns one Result per job, in job order.
// Execution order is unspecified (bounded by Workers), but because every
// job builds its own machine and results are stored positionally, the
// output is identical for any worker count. The first job error aborts the
// batch. Cancelling ctx stops the batch at job granularity: in-flight
// simulations run to completion (and still land in the cache), queued jobs
// are never started, and Run returns ctx.Err().
func (r *Runner) Run(ctx context.Context, jobs []Job) ([]Result, error) {
	for i, j := range jobs {
		if err := j.Validate(); err != nil {
			return nil, fmt.Errorf("job %d (%s): %w", i, j.Describe(), err)
		}
	}
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if len(jobs) == 0 {
		return nil, nil
	}

	results := make([]Result, len(jobs))
	idx := make(chan int)
	stop := make(chan struct{})
	errs := make(chan error, 1)
	var stopOnce sync.Once
	fail := func(err error) {
		select {
		case errs <- err:
		default:
		}
		stopOnce.Do(func() { close(stop) })
	}
	// Every job's queue wait is measured against the batch start: how
	// long it sat behind the pool before its own simulation began.
	batchStart := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				res, err := r.runOne(jobs[i], batchStart)
				if err != nil {
					fail(fmt.Errorf("job %d (%s): %w", i, jobs[i].Describe(), err))
					return
				}
				results[i] = res
			}
		}()
	}
feed:
	for i := range jobs {
		// Checked before the select too: when both a worker and Done are
		// ready the select picks randomly, and a cancelled batch must not
		// keep feeding.
		if err := ctx.Err(); err != nil {
			fail(err)
			break feed
		}
		select {
		case idx <- i:
		case <-stop:
			break feed
		case <-ctx.Done():
			fail(ctx.Err())
			break feed
		}
	}
	close(idx)
	wg.Wait()
	select {
	case err := <-errs:
		return nil, err
	default:
	}
	return results, nil
}

// runOne serves one job from cache or simulation, wrapping the run in
// an obs.Timer so every result carries its measurement record.
func (r *Runner) runOne(j Job, queuedAt time.Time) (Result, error) {
	if r.Cache != nil {
		if res, ok := r.Cache.Get(j); ok {
			r.logf("  [cache] %s", j.Describe())
			// A hit costs no simulation time, but its phase counters are
			// part of the cached result and still attribute the work.
			return Result{Job: j, Results: res, Cached: true,
				Timing: &obs.JobTiming{Cached: true, Phases: system.SumPhases(res)}}, nil
		}
	}
	t := obs.StartTimer(queuedAt)
	res, err := j.run()
	if err != nil {
		return Result{}, err
	}
	elapsed, queued := t.Stop()
	if r.Cache != nil {
		if err := r.Cache.Put(j, res); err != nil {
			return Result{}, fmt.Errorf("cache put: %w", err)
		}
	}
	r.logf("  %-34s IPC=%.4f DRAM=%d", j.Describe(), res[0].IPC, res[0].DRAMAccesses)
	timing := &obs.JobTiming{
		WallNanos:  elapsed.Nanoseconds(),
		QueueNanos: queued.Nanoseconds(),
		Phases:     system.SumPhases(res),
	}
	if j.Shards > 1 && len(j.Workloads) > 1 {
		// Record the decomposition the bundle actually ran with
		// (RunSharded clamps the goroutine count to the core count).
		timing.Shards = j.Shards
		if timing.Shards > len(j.Workloads) {
			timing.Shards = len(j.Workloads)
		}
	}
	return Result{Job: j, Results: res, Elapsed: elapsed, Timing: timing}, nil
}
