// Package harness orchestrates experiment runs. It turns declarative Job
// specs — system kind, workload(s), reference count, seed, heterogeneous
// memory and placement policy — into simulations executed across a bounded
// worker pool, with results guaranteed identical to a serial run: every
// job owns its own system.Machine, and aggregation is positional, so the
// worker count only changes wall-clock time, never output.
//
// The harness also provides an on-disk result cache (see Cache) keyed by a
// hash of the job spec, so re-running a sweep only simulates what changed,
// and grid-sweep expansion (see Grid) for design-space exploration over
// (system × workload × seed). internal/exp, cmd/vbibench and cmd/vbisweep
// all run on top of it; DESIGN.md describes the architecture.
package harness

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"

	"vbi/internal/system"
	"vbi/internal/trace"
	"vbi/internal/workloads"
)

// Job declares one simulation. The zero values of the optional fields take
// the system package's defaults, exactly as a direct system.New call
// would. Jobs are plain data: they marshal to canonical JSON, which is
// what the result cache hashes.
type Job struct {
	// System is the system.Kind name (e.g. "VBI-Full"). Ignored for
	// heterogeneous-memory jobs, which are always VBI-2 over two zones.
	System string `json:"system,omitempty"`
	// Workloads lists benchmark names: one element is a single-core run,
	// several are a multiprogrammed run with one core per workload.
	Workloads []string `json:"workloads"`
	// Refs is the measured reference count per core (0 = default).
	Refs int `json:"refs,omitempty"`
	// Warmup references before measurement (0 = Refs/2).
	Warmup int `json:"warmup,omitempty"`
	// Seed selects the trace streams (0 = 1).
	Seed uint64 `json:"seed,omitempty"`
	// Capacity is the physical memory size (0 = default).
	Capacity uint64 `json:"capacity,omitempty"`
	// UniformTables forces fixed 4-level tables on VBI kinds (the §5.2
	// ablation).
	UniformTables bool `json:"uniform_tables,omitempty"`

	// HeteroMem, when non-empty ("PCM-DRAM" or "TL-DRAM"), selects a
	// heterogeneous-memory run under Policy ("Unaware", "VBI" or "IDEAL").
	HeteroMem string `json:"hetero_mem,omitempty"`
	Policy    string `json:"policy,omitempty"`
}

// Result pairs a job with the per-core results of its run.
type Result struct {
	Job     Job                `json:"job"`
	Results []system.RunResult `json:"results"`
	// Cached reports whether the run was served from the result cache.
	Cached bool `json:"-"`
}

// ParseKind resolves a system name (case-insensitive) to its Kind.
func ParseKind(name string) (system.Kind, error) {
	for _, k := range system.Kinds() {
		if strings.EqualFold(k.String(), name) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("harness: unknown system %q", name)
}

// ParseHeteroMem resolves a heterogeneous-memory architecture name.
func ParseHeteroMem(name string) (system.HeteroMem, error) {
	for _, m := range []system.HeteroMem{system.HeteroPCMDRAM, system.HeteroTLDRAM} {
		if strings.EqualFold(m.String(), name) {
			return m, nil
		}
	}
	return 0, fmt.Errorf("harness: unknown heterogeneous memory %q", name)
}

// ParsePolicy resolves a placement-policy name.
func ParsePolicy(name string) (system.Policy, error) {
	switch strings.ToLower(name) {
	case "unaware", "hotness-unaware":
		return system.PolicyUnaware, nil
	case "vbi":
		return system.PolicyVBI, nil
	case "ideal":
		return system.PolicyIdeal, nil
	}
	return 0, fmt.Errorf("harness: unknown policy %q", name)
}

// Validate checks the job without running it.
func (j Job) Validate() error {
	if len(j.Workloads) == 0 {
		return fmt.Errorf("harness: job has no workloads")
	}
	for _, w := range j.Workloads {
		if _, err := workloads.Get(w); err != nil {
			return err
		}
	}
	if j.HeteroMem != "" {
		if len(j.Workloads) != 1 {
			return fmt.Errorf("harness: heterogeneous jobs are single-core")
		}
		if _, err := ParseHeteroMem(j.HeteroMem); err != nil {
			return err
		}
		if _, err := ParsePolicy(j.Policy); err != nil {
			return err
		}
		return nil
	}
	_, err := ParseKind(j.System)
	return err
}

// Describe returns a short label for progress lines.
func (j Job) Describe() string {
	apps := strings.Join(j.Workloads, "+")
	if j.HeteroMem != "" {
		return fmt.Sprintf("%s/%s/%s", j.HeteroMem, j.Policy, apps)
	}
	if j.UniformTables {
		return fmt.Sprintf("%s(uniform)/%s", j.System, apps)
	}
	return fmt.Sprintf("%s/%s", j.System, apps)
}

// run executes the job on a freshly built machine.
func (j Job) run() ([]system.RunResult, error) {
	if j.HeteroMem != "" {
		mem, err := ParseHeteroMem(j.HeteroMem)
		if err != nil {
			return nil, err
		}
		pol, err := ParsePolicy(j.Policy)
		if err != nil {
			return nil, err
		}
		m, err := system.NewHetero(system.HeteroConfig{
			Mem: mem, Policy: pol, Refs: j.Refs, Warmup: j.Warmup,
			Seed: j.Seed}, workloads.MustGet(j.Workloads[0]))
		if err != nil {
			return nil, err
		}
		res, err := m.Run()
		if err != nil {
			return nil, err
		}
		return []system.RunResult{res}, nil
	}

	kind, err := ParseKind(j.System)
	if err != nil {
		return nil, err
	}
	cfg := system.Config{
		Kind: kind, Refs: j.Refs, Warmup: j.Warmup, Seed: j.Seed,
		Capacity: j.Capacity, UniformTables: j.UniformTables,
	}
	if len(j.Workloads) > 1 {
		var profs []trace.Profile
		for _, w := range j.Workloads {
			profs = append(profs, workloads.MustGet(w))
		}
		mc, err := system.NewMulticore(cfg, profs)
		if err != nil {
			return nil, err
		}
		return mc.Run()
	}
	m, err := system.New(cfg, workloads.MustGet(j.Workloads[0]))
	if err != nil {
		return nil, err
	}
	res, err := m.Run()
	if err != nil {
		return nil, err
	}
	return []system.RunResult{res}, nil
}

// Runner executes batches of jobs over a worker pool.
type Runner struct {
	// Workers bounds concurrent simulations (<=0 = GOMAXPROCS).
	Workers int
	// Cache, when non-nil, serves unchanged jobs from disk and stores new
	// results.
	Cache *Cache
	// Progress, when non-nil, receives one line per completed job.
	Progress io.Writer

	mu sync.Mutex // guards Progress
}

func (r *Runner) logf(format string, args ...any) {
	if r.Progress == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fmt.Fprintf(r.Progress, format+"\n", args...)
}

// Run executes the jobs and returns one Result per job, in job order.
// Execution order is unspecified (bounded by Workers), but because every
// job builds its own machine and results are stored positionally, the
// output is identical for any worker count. The first job error aborts the
// batch.
func (r *Runner) Run(jobs []Job) ([]Result, error) {
	for i, j := range jobs {
		if err := j.Validate(); err != nil {
			return nil, fmt.Errorf("job %d (%s): %w", i, j.Describe(), err)
		}
	}
	workers := r.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if len(jobs) == 0 {
		return nil, nil
	}

	results := make([]Result, len(jobs))
	idx := make(chan int)
	stop := make(chan struct{})
	errs := make(chan error, 1)
	var stopOnce sync.Once
	fail := func(err error) {
		select {
		case errs <- err:
		default:
		}
		stopOnce.Do(func() { close(stop) })
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				res, err := r.runOne(jobs[i])
				if err != nil {
					fail(fmt.Errorf("job %d (%s): %w", i, jobs[i].Describe(), err))
					return
				}
				results[i] = res
			}
		}()
	}
feed:
	for i := range jobs {
		select {
		case idx <- i:
		case <-stop:
			break feed
		}
	}
	close(idx)
	wg.Wait()
	select {
	case err := <-errs:
		return nil, err
	default:
	}
	return results, nil
}

// runOne serves one job from cache or simulation.
func (r *Runner) runOne(j Job) (Result, error) {
	if r.Cache != nil {
		if res, ok := r.Cache.Get(j); ok {
			r.logf("  [cache] %s", j.Describe())
			return Result{Job: j, Results: res, Cached: true}, nil
		}
	}
	res, err := j.run()
	if err != nil {
		return Result{}, err
	}
	if r.Cache != nil {
		if err := r.Cache.Put(j, res); err != nil {
			return Result{}, fmt.Errorf("cache put: %w", err)
		}
	}
	r.logf("  %-34s IPC=%.4f DRAM=%d", j.Describe(), res[0].IPC, res[0].DRAMAccesses)
	return Result{Job: j, Results: res}, nil
}
