package harness

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"vbi/internal/system"
)

// ParamAxes collects repeatable "-param name=v1,v2,..." CLI flags into
// grid parameter axes. It implements flag.Value; the three CLIs share it
// so parameter spelling and validation live in one place.
type ParamAxes map[string][]int

// String renders the axes deterministically (sorted by name).
func (a ParamAxes) String() string {
	names := make([]string, 0, len(a))
	for n := range a {
		names = append(names, n)
	}
	sort.Strings(names)
	var parts []string
	for _, n := range names {
		vals := make([]string, len(a[n]))
		for i, v := range a[n] {
			vals[i] = strconv.Itoa(v)
		}
		parts = append(parts, fmt.Sprintf("%s=%s", n, strings.Join(vals, ",")))
	}
	return strings.Join(parts, " ")
}

// Set parses one "name=v1,v2,..." occurrence. Size- and entry-count
// parameters (*_size, *_entries) accept K/M/G suffixes (powers of 1024);
// cycle counts and the other knobs take plain integers, so a typo like
// l2_tlb_latency=8k errors instead of silently meaning 8192 cycles.
func (a ParamAxes) Set(s string) error {
	name, list, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want name=v1,v2,... (see -list for names), got %q", s)
	}
	name = strings.ToLower(strings.TrimSpace(name))
	if _, err := (system.Params{}).Get(name); err != nil {
		return err
	}
	if _, dup := a[name]; dup {
		return fmt.Errorf("parameter %q given twice", name)
	}
	suffixOK := strings.HasSuffix(name, "_size") || strings.HasSuffix(name, "_entries")
	var vals []int
	for _, p := range strings.Split(list, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		var v int
		var err error
		if suffixOK {
			v, err = parseSize(p)
		} else {
			v, err = strconv.Atoi(p)
		}
		if err != nil {
			return fmt.Errorf("parameter %s: bad value %q: %w", name, p, err)
		}
		vals = append(vals, v)
	}
	if len(vals) == 0 {
		return fmt.Errorf("parameter %q has no values", name)
	}
	a[name] = vals
	return nil
}

// Overlay folds the axes into a single Params overlay; every axis must
// hold exactly one value (the single-run CLIs use it). Axes are applied
// in sorted-name order so the reported error (and any future
// last-write-wins semantics) never depends on map iteration order.
func (a ParamAxes) Overlay() (system.Params, error) {
	names := make([]string, 0, len(a))
	for n := range a {
		names = append(names, n)
	}
	sort.Strings(names)
	var p system.Params
	for _, name := range names {
		vals := a[name]
		if len(vals) != 1 {
			return system.Params{}, fmt.Errorf(
				"parameter %s has %d values; a single run takes one", name, len(vals))
		}
		if err := p.Set(name, vals[0]); err != nil {
			return system.Params{}, err
		}
	}
	return p, nil
}

// parseSize parses an integer with an optional K/M/G binary suffix.
func parseSize(s string) (int, error) {
	mult := 1
	switch {
	case strings.HasSuffix(s, "K"), strings.HasSuffix(s, "k"):
		mult, s = 1<<10, s[:len(s)-1]
	case strings.HasSuffix(s, "M"), strings.HasSuffix(s, "m"):
		mult, s = 1<<20, s[:len(s)-1]
	case strings.HasSuffix(s, "G"), strings.HasSuffix(s, "g"):
		mult, s = 1<<30, s[:len(s)-1]
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return 0, err
	}
	return v * mult, nil
}
