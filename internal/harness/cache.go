package harness

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync/atomic"

	"vbi/internal/system"
)

// Version invalidates every cached result when the simulators change in a
// way that alters outputs for an identical job spec. Bump it whenever a
// timing model, workload profile or default constant moves, and whenever
// the Job schema changes shape (v2: the Params overlay joined the
// canonical job JSON; v3: jobs became self-describing — the resolved
// system.Spec replaced the spec name, so v2 entries keyed on names can
// never be confused with v3 entries keyed on materialized specs).
const Version = "vbi-harness-v3"

// Cache is an on-disk result store keyed by a SHA-256 of the canonical
// job JSON plus Version. Entries are written atomically (temp file +
// rename), so concurrent workers and concurrent sweeps sharing a directory
// are safe: the worst race is two workers simulating the same job and one
// rename winning, which is harmless because both computed identical
// results.
type Cache struct {
	// Dir holds one JSON file per cached job. Created on first Put.
	Dir string

	hits, misses atomic.Int64
}

// entry is the stored envelope. The job spec is kept alongside the
// results so Get can reject hash collisions and hand-edited files.
//
//vbi:wire
type entry struct {
	Version string             `json:"version"`
	Job     Job                `json:"job"`
	Results []system.RunResult `json:"results"`
}

// Key returns the cache key for a job: SHA-256 over Version plus the
// canonical job JSON. Jobs are self-describing — the resolved spec (base
// kind + materialized overlay) is part of that JSON — so the key needs no
// registry lookup, and two processes that bind the same variant name to
// different overlays produce different keys by construction. Execution
// hints that cannot change the result bytes (Job.Shards) are erased, so
// sharded and serial bundle runs share entries.
func (c *Cache) Key(j Job) string {
	b, err := json.Marshal(j.canonical())
	if err != nil {
		// Job is plain data; Marshal cannot fail.
		panic(fmt.Sprintf("harness: marshal job: %v", err))
	}
	h := sha256.New()
	h.Write([]byte(Version))
	h.Write([]byte{'\n'})
	h.Write(b)
	return hex.EncodeToString(h.Sum(nil))
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.Dir, key+".json")
}

// Get returns the cached results for a job, if present and valid.
func (c *Cache) Get(j Job) ([]system.RunResult, bool) {
	b, err := os.ReadFile(c.path(c.Key(j)))
	if err != nil {
		c.misses.Add(1)
		return nil, false
	}
	var e entry
	if err := json.Unmarshal(b, &e); err != nil || e.Version != Version {
		c.misses.Add(1)
		return nil, false
	}
	// Reject collisions/corruption: the stored spec must round-trip to the
	// same canonical JSON as the requested one.
	want, _ := json.Marshal(j.canonical())
	got, _ := json.Marshal(e.Job.canonical())
	if !bytes.Equal(want, got) {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return e.Results, true
}

// Put stores a job's results.
func (c *Cache) Put(j Job, results []system.RunResult) error {
	if err := os.MkdirAll(c.Dir, 0o755); err != nil {
		return err
	}
	b, err := json.MarshalIndent(entry{Version: Version, Job: j.canonical(), Results: results}, "", " ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.Dir, ".put-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), c.path(c.Key(j)))
}

// Counters reports in-process hits and misses since the Cache was
// created. (Disk-wide occupancy is Stats.)
func (c *Cache) Counters() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// CacheStats summarizes the on-disk contents of a cache directory.
type CacheStats struct {
	// Entries counts the entry files, readable or not.
	Entries int `json:"entries"`
	// Bytes is their total size.
	Bytes int64 `json:"bytes"`
	// Versions breaks Entries down by stored schema version; files that
	// fail to parse count under "corrupt". Any key other than the current
	// Version is dead weight — those entries can never hit again.
	Versions map[string]int `json:"versions"`
	// VersionBytes is the per-version byte breakdown, same keys as
	// Versions. It is what lets cache tooling report how much a prune of
	// stale entries would reclaim before deleting anything.
	VersionBytes map[string]int64 `json:"version_bytes"`
}

// Stale sums the entries and bytes that a Prune(keep) would remove:
// everything stored under a different schema version, corrupt files
// included.
func (st CacheStats) Stale(keep string) (entries int, bytes int64) {
	for v, n := range st.Versions {
		if v != keep {
			entries += n
			bytes += st.VersionBytes[v]
		}
	}
	return entries, bytes
}

// Stats scans the cache directory. A missing directory is an empty cache.
func (c *Cache) Stats() (CacheStats, error) {
	st := CacheStats{Versions: map[string]int{}, VersionBytes: map[string]int64{}}
	err := c.scan(func(path string, size int64, version string) error {
		st.Entries++
		st.Bytes += size
		st.Versions[version]++
		st.VersionBytes[version] += size
		return nil
	})
	return st, err
}

// Prune deletes every entry whose stored schema version differs from
// keep (normally the current Version), including unreadable files —
// neither can ever hit again. It returns the number of files removed.
func (c *Cache) Prune(keep string) (int, error) {
	removed := 0
	err := c.scan(func(path string, size int64, version string) error {
		if version == keep {
			return nil
		}
		if err := os.Remove(path); err != nil {
			return err
		}
		removed++
		return nil
	})
	return removed, err
}

// scan visits every entry file with its size and stored version
// ("corrupt" when the envelope does not parse).
func (c *Cache) scan(visit func(path string, size int64, version string) error) error {
	ents, err := os.ReadDir(c.Dir)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	for _, de := range ents {
		if de.IsDir() || filepath.Ext(de.Name()) != ".json" {
			continue
		}
		path := filepath.Join(c.Dir, de.Name())
		info, err := de.Info()
		if err != nil {
			return err
		}
		version := "corrupt"
		if b, err := os.ReadFile(path); err == nil {
			var e struct {
				Version string `json:"version"`
			}
			if json.Unmarshal(b, &e) == nil && e.Version != "" {
				version = e.Version
			}
		}
		if err := visit(path, info.Size(), version); err != nil {
			return err
		}
	}
	return nil
}

// Len counts the entries currently on disk.
func (c *Cache) Len() (int, error) {
	ents, err := os.ReadDir(c.Dir)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range ents {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".json" {
			n++
		}
	}
	return n, nil
}
