package harness

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync/atomic"

	"vbi/internal/system"
)

// Version invalidates every cached result when the simulators change in a
// way that alters outputs for an identical job spec. Bump it whenever a
// timing model, workload profile or default constant moves, and whenever
// the Job schema changes shape (v2: the Params overlay joined the
// canonical job JSON).
const Version = "vbi-harness-v2"

// Cache is an on-disk result store keyed by a SHA-256 of the canonical
// job JSON plus Version. Entries are written atomically (temp file +
// rename), so concurrent workers and concurrent sweeps sharing a directory
// are safe: the worst race is two workers simulating the same job and one
// rename winning, which is harmless because both computed identical
// results.
type Cache struct {
	// Dir holds one JSON file per cached job. Created on first Put.
	Dir string

	hits, misses atomic.Int64
}

// entry is the stored envelope. The job spec is kept alongside the
// results so Get can reject hash collisions and hand-edited files.
type entry struct {
	Version string             `json:"version"`
	Job     Job                `json:"job"`
	Results []system.RunResult `json:"results"`
}

// Key returns the cache key for a job. Jobs name their system by
// registered spec name, so the key also folds in the *resolved* spec: a
// cache directory shared across processes that register the same variant
// name with a different overlay must miss, not serve stale results.
func (c *Cache) Key(j Job) string {
	b, err := json.Marshal(j)
	if err != nil {
		// Job is plain data; Marshal cannot fail.
		panic(fmt.Sprintf("harness: marshal job: %v", err))
	}
	h := sha256.New()
	h.Write([]byte(Version))
	h.Write([]byte{'\n'})
	h.Write(b)
	if j.HeteroMem == "" && j.System != "" {
		if spec, err := system.ResolveSpec(j.System); err == nil {
			sb, _ := json.Marshal(spec)
			h.Write([]byte{'\n'})
			h.Write(sb)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.Dir, key+".json")
}

// Get returns the cached results for a job, if present and valid.
func (c *Cache) Get(j Job) ([]system.RunResult, bool) {
	b, err := os.ReadFile(c.path(c.Key(j)))
	if err != nil {
		c.misses.Add(1)
		return nil, false
	}
	var e entry
	if err := json.Unmarshal(b, &e); err != nil || e.Version != Version {
		c.misses.Add(1)
		return nil, false
	}
	// Reject collisions/corruption: the stored spec must round-trip to the
	// same canonical JSON as the requested one.
	want, _ := json.Marshal(j)
	got, _ := json.Marshal(e.Job)
	if !bytes.Equal(want, got) {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return e.Results, true
}

// Put stores a job's results.
func (c *Cache) Put(j Job, results []system.RunResult) error {
	if err := os.MkdirAll(c.Dir, 0o755); err != nil {
		return err
	}
	b, err := json.MarshalIndent(entry{Version: Version, Job: j, Results: results}, "", " ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.Dir, ".put-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), c.path(c.Key(j)))
}

// Counters reports in-process hits and misses since the Cache was
// created. (Disk-wide occupancy is Stats.)
func (c *Cache) Counters() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// CacheStats summarizes the on-disk contents of a cache directory.
type CacheStats struct {
	// Entries counts the entry files, readable or not.
	Entries int `json:"entries"`
	// Bytes is their total size.
	Bytes int64 `json:"bytes"`
	// Versions breaks Entries down by stored schema version; files that
	// fail to parse count under "corrupt". Any key other than the current
	// Version is dead weight — those entries can never hit again.
	Versions map[string]int `json:"versions"`
}

// Stats scans the cache directory. A missing directory is an empty cache.
func (c *Cache) Stats() (CacheStats, error) {
	st := CacheStats{Versions: map[string]int{}}
	err := c.scan(func(path string, size int64, version string) error {
		st.Entries++
		st.Bytes += size
		st.Versions[version]++
		return nil
	})
	return st, err
}

// Prune deletes every entry whose stored schema version differs from
// keep (normally the current Version), including unreadable files —
// neither can ever hit again. It returns the number of files removed.
func (c *Cache) Prune(keep string) (int, error) {
	removed := 0
	err := c.scan(func(path string, size int64, version string) error {
		if version == keep {
			return nil
		}
		if err := os.Remove(path); err != nil {
			return err
		}
		removed++
		return nil
	})
	return removed, err
}

// scan visits every entry file with its size and stored version
// ("corrupt" when the envelope does not parse).
func (c *Cache) scan(visit func(path string, size int64, version string) error) error {
	ents, err := os.ReadDir(c.Dir)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	for _, de := range ents {
		if de.IsDir() || filepath.Ext(de.Name()) != ".json" {
			continue
		}
		path := filepath.Join(c.Dir, de.Name())
		info, err := de.Info()
		if err != nil {
			return err
		}
		version := "corrupt"
		if b, err := os.ReadFile(path); err == nil {
			var e struct {
				Version string `json:"version"`
			}
			if json.Unmarshal(b, &e) == nil && e.Version != "" {
				version = e.Version
			}
		}
		if err := visit(path, info.Size(), version); err != nil {
			return err
		}
	}
	return nil
}

// Len counts the entries currently on disk.
func (c *Cache) Len() (int, error) {
	ents, err := os.ReadDir(c.Dir)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range ents {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".json" {
			n++
		}
	}
	return n, nil
}
