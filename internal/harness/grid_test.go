package harness

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"vbi/internal/system"
	"vbi/internal/workloads"
)

// TestParamAxisExpansion pins the deterministic expansion order of
// parameter axes: sorted axis-name-major, value order as given, series
// labels carrying the combination.
func TestParamAxisExpansion(t *testing.T) {
	g := Grid{
		Systems:   []string{"Native"},
		Workloads: []string{"namd"},
		Refs:      1000,
		Params: map[string][]int{
			"l2_tlb_entries": {256, 512},
			"l2_tlb_latency": {7, 9},
		},
	}
	jobs, err := g.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 4 {
		t.Fatalf("expanded %d jobs, want 4 (2x2 cross product)", len(jobs))
	}
	want := []system.Params{
		{L2TLBEntries: 256, L2TLBLatency: 7},
		{L2TLBEntries: 256, L2TLBLatency: 9},
		{L2TLBEntries: 512, L2TLBLatency: 7},
		{L2TLBEntries: 512, L2TLBLatency: 9},
	}
	for i, j := range jobs {
		if j.Params != want[i] {
			t.Errorf("job %d params = %+v, want %+v", i, j.Params, want[i])
		}
		if j.Spec == nil || j.Spec.Name != "Native" || j.Refs != 1000 {
			t.Errorf("job %d lost its non-param fields: %+v", i, j)
		}
	}

	cells, err := g.cells()
	if err != nil {
		t.Fatal(err)
	}
	if got := cells[0].series; got != "Native[l2_tlb_entries=256,l2_tlb_latency=7]" {
		t.Errorf("series label = %q", got)
	}
}

// TestParamSweepChangesResults runs a real one-axis sweep end to end and
// asserts the overlay reaches the simulator: shrinking the L2 TLB must
// not improve IPC, and the matrix carries one labelled series per value.
func TestParamSweepChangesResults(t *testing.T) {
	g := Grid{
		Systems:   []string{"Native"},
		Workloads: []string{"mcf"},
		Refs:      12_000,
		Params:    map[string][]int{"l2_tlb_entries": {64, 2048}},
	}
	jobs, err := g.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	results, err := (&Runner{Workers: 2}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	small, big := results[0].Results[0], results[1].Results[0]
	if small.IPC >= big.IPC {
		t.Errorf("IPC with a 64-entry L2 TLB (%.4f) not below 2048-entry (%.4f)",
			small.IPC, big.IPC)
	}
	m, err := g.Matrix(results, MetricIPC)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Series) != 2 || m.Series[0].Label != "Native[l2_tlb_entries=64]" {
		t.Errorf("matrix series = %+v", m.Series)
	}
}

// TestRefsAxis sweeps the reference count as a row axis.
func TestRefsAxis(t *testing.T) {
	g := Grid{
		Systems:   []string{"Native"},
		Workloads: []string{"namd"},
		RefsAxis:  []int{2000, 4000},
	}
	jobs, err := g.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 || jobs[0].Refs != 2000 || jobs[1].Refs != 4000 {
		t.Fatalf("refs axis expanded wrong: %+v", jobs)
	}
	results, err := (&Runner{Workers: 2}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	m, err := g.Matrix(results, MetricIPC)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Rows) != 2 || m.Rows[0] != "namd/r2000" || m.Rows[1] != "namd/r4000" {
		t.Errorf("refs-axis rows = %v", m.Rows)
	}
	if results[1].Results[0].MemRefs != 4000 {
		t.Errorf("second cell measured %d refs", results[1].Results[0].MemRefs)
	}
}

// TestHeteroGrid expands a heterogeneous policy grid: series are
// (memory × policy), policies defaulting to all three.
func TestHeteroGrid(t *testing.T) {
	g := Grid{
		HeteroMems: []string{"PCM-DRAM"},
		Workloads:  []string{"namd"},
		Refs:       1000,
	}
	cells, err := g.cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 {
		t.Fatalf("expanded %d cells, want 3 (one per default policy)", len(cells))
	}
	for i, pol := range []string{"Hotness-Unaware", "VBI", "IDEAL"} {
		if cells[i].job.Policy != pol || cells[i].job.HeteroMem != "PCM-DRAM" {
			t.Errorf("cell %d = %+v, want policy %s", i, cells[i].job, pol)
		}
		if cells[i].job.Spec != nil {
			t.Errorf("cell %d carries a system spec on a hetero job", i)
		}
		if want := "PCM-DRAM/" + pol; cells[i].series != want {
			t.Errorf("cell %d series = %q, want %q", i, cells[i].series, want)
		}
	}
}

// TestGridConfigRoundTrip exercises LoadGrid with the new axes, including
// rejection of unknown fields.
func TestGridConfigRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "grid.json")
	g := Grid{
		Systems:   []string{"Native", "VBI-Full"},
		Workloads: []string{"namd"},
		Seeds:     []uint64{1, 2},
		Refs:      5000,
		Params:    map[string][]int{"pwc_entries": {16, 32}},
	}
	b, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadGrid(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, g) {
		t.Errorf("LoadGrid round trip: got %+v, want %+v", got, g)
	}
	if _, err := got.Jobs(); err != nil {
		t.Errorf("round-tripped grid does not expand: %v", err)
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"systems": ["Native"], "wrkloads": ["namd"]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadGrid(bad); err == nil || !strings.Contains(err.Error(), "wrkloads") {
		t.Errorf("LoadGrid accepted a typo'd axis name (err=%v)", err)
	}
}

// TestCacheKeySensitivityToParams asserts the canonical job JSON (and so
// the cache key) distinguishes parameter overlays and spec names.
func TestCacheKeySensitivityToParams(t *testing.T) {
	c := &Cache{Dir: t.TempDir()}
	base := Job{Spec: system.MustSpec("Native"), Workloads: []string{"namd"}, Refs: 1000, Seed: 1}
	variants := []Job{
		{Spec: system.MustSpec("Native"), Workloads: []string{"namd"}, Refs: 1000, Seed: 1,
			Params: system.Params{L2TLBEntries: 256}},
		{Spec: system.MustSpec("Native"), Workloads: []string{"namd"}, Refs: 1000, Seed: 1,
			Params: system.Params{L2TLBEntries: 512}},
		{Spec: system.MustSpec("Native"), Workloads: []string{"namd"}, Refs: 1000, Seed: 1,
			Params: system.Params{PWCEntries: 16}},
	}
	keys := map[string]bool{c.Key(base): true}
	for _, v := range variants {
		k := c.Key(v)
		if keys[k] {
			t.Errorf("job %s collides with an earlier key", v.Describe())
		}
		keys[k] = true
	}
}

// TestSpecNameJob runs a job naming a registered variant spec and asserts
// it matches the equivalent base-kind job with an explicit overlay.
func TestSpecNameJob(t *testing.T) {
	if err := system.Register(system.Spec{
		Name:   "Native-HarnessTest-128TLB",
		Base:   "Native",
		Params: system.Params{L2TLBEntries: 128},
	}); err != nil {
		t.Fatal(err)
	}
	jobs := []Job{
		{Spec: system.MustSpec("Native-HarnessTest-128TLB"), Workloads: []string{"mcf"}, Refs: 8000},
		{Spec: system.MustSpec("Native"), Workloads: []string{"mcf"}, Refs: 8000,
			Params: system.Params{L2TLBEntries: 128}},
		{Spec: system.MustSpec("Native"), Workloads: []string{"mcf"}, Refs: 8000},
	}
	results, err := (&Runner{Workers: 2}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(results[0].Results, results[1].Results) {
		t.Error("spec-name job differs from the equivalent base+overlay job")
	}
	if reflect.DeepEqual(results[0].Results, results[2].Results) {
		t.Error("variant spec ran identically to the default Native (overlay not applied)")
	}
	// A job-level overlay on a variant spec wins field-by-field.
	over := Job{Spec: system.MustSpec("Native-HarnessTest-128TLB"), Workloads: []string{"mcf"}, Refs: 8000,
		Params: system.Params{L2TLBEntries: 2048}}
	r2, err := (&Runner{Workers: 1}).Run(context.Background(), []Job{over,
		{Spec: system.MustSpec("Native"), Workloads: []string{"mcf"}, Refs: 8000,
			Params: system.Params{L2TLBEntries: 2048}}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r2[0].Results, r2[1].Results) {
		t.Error("job overlay did not override the spec's params")
	}
}

// TestDefaultParamsAreByteIdentical asserts a zero overlay and an explicit
// Table 1 overlay produce identical results — the compatibility guarantee
// for the pre-registry job schema.
func TestDefaultParamsAreByteIdentical(t *testing.T) {
	jobs := []Job{
		{Spec: system.MustSpec("VBI-Full"), Workloads: []string{"namd"}, Refs: 6000},
		{Spec: system.MustSpec("VBI-Full"), Workloads: []string{"namd"}, Refs: 6000,
			Params: system.DefaultParams()},
	}
	results, err := (&Runner{Workers: 2}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(results[0].Results)
	b, _ := json.Marshal(results[1].Results)
	if string(a) != string(b) {
		t.Errorf("explicit Table 1 params changed results:\nzero:    %s\nexplicit: %s", a, b)
	}
}

// TestParamAxesFlag pins the CLI flag parsing: K/M/G suffixes only on
// size/entry parameters, unknown names and repeats rejected.
func TestParamAxesFlag(t *testing.T) {
	a := ParamAxes{}
	if err := a.Set("l2_tlb_entries=2K,512"); err != nil {
		t.Fatal(err)
	}
	if got := a["l2_tlb_entries"]; len(got) != 2 || got[0] != 2048 || got[1] != 512 {
		t.Errorf("l2_tlb_entries = %v", got)
	}
	if err := a.Set("llc_size=16M"); err != nil {
		t.Fatal(err)
	}
	if got := a["llc_size"]; got[0] != 16<<20 {
		t.Errorf("llc_size = %v", got)
	}
	if err := a.Set("l2_tlb_latency=8k"); err == nil {
		t.Error("K suffix accepted on a cycle-count parameter")
	}
	if err := a.Set("no_such=1"); err == nil {
		t.Error("unknown parameter accepted")
	}
	if err := a.Set("llc_size=32M"); err == nil {
		t.Error("repeated parameter accepted")
	}
	if err := a.Set("l2_tlb_ways"); err == nil {
		t.Error("missing '=' accepted")
	}
	over, err := ParamAxes{"pwc_entries": {16}}.Overlay()
	if err != nil || over.PWCEntries != 16 {
		t.Errorf("Overlay = %+v, %v", over, err)
	}
	if _, err := (ParamAxes{"pwc_entries": {16, 32}}).Overlay(); err == nil {
		t.Error("multi-valued axis accepted as a single-run overlay")
	}
}

// TestOverlayErrorDeterministic pins a maporder fix: with several
// offending axes, Overlay used to report whichever one map iteration
// visited first, so identical invocations printed different errors.
// Axes are now applied in sorted-name order, making the first offender
// (alphabetically) the reported one, every time.
func TestOverlayErrorDeterministic(t *testing.T) {
	axes := ParamAxes{
		"tlb_entries":    {16, 32},
		"pwc_entries":    {1, 2},
		"llc_size":       {1 << 20, 2 << 20},
		"l2_tlb_entries": {512, 1024},
	}
	_, err := axes.Overlay()
	if err == nil {
		t.Fatal("multi-valued axes accepted")
	}
	want := err.Error()
	if !strings.Contains(want, "l2_tlb_entries") {
		t.Errorf("error %q does not name the alphabetically first offender", want)
	}
	for i := 0; i < 100; i++ {
		if _, err := axes.Overlay(); err == nil || err.Error() != want {
			t.Fatalf("iteration %d: error %v, want %q", i, err, want)
		}
	}
}

// TestBundleGridExpansion pins the bundle axis: predefined Table 2 names
// resolve to their workload lists, bundle rows follow the workload rows
// in declaration order, every series covers every row, and the Describe
// label distinguishes bundles ("a+b@spec") from single-core runs
// ("spec/a").
func TestBundleGridExpansion(t *testing.T) {
	g := Grid{
		Systems:   []string{"Native", "VBI-Full"},
		Workloads: []string{"namd"},
		Bundles: []Bundle{
			{Name: "pair", Workloads: []string{"namd", "sjeng"}},
			{Name: "wl6"},
		},
		Refs: 1000,
	}
	cells, err := g.cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 6 { // 3 rows x 2 systems
		t.Fatalf("expanded %d cells, want 6", len(cells))
	}
	wantRows := []string{"namd", "namd", "pair", "pair", "wl6", "wl6"}
	for i, c := range cells {
		if c.row != wantRows[i] {
			t.Errorf("cell %d row = %q, want %q", i, c.row, wantRows[i])
		}
	}
	if wl6 := cells[4].job.Workloads; !reflect.DeepEqual(wl6, workloads.Bundles["wl6"]) {
		t.Errorf("predefined bundle wl6 resolved to %v, want %v", wl6, workloads.Bundles["wl6"])
	}
	if got := cells[2].job.Describe(); got != "namd+sjeng@Native" {
		t.Errorf("bundle job Describe() = %q, want namd+sjeng@Native", got)
	}
	if got := cells[0].job.Describe(); got != "Native/namd" {
		t.Errorf("single-core job Describe() = %q, want Native/namd", got)
	}

	// Error paths: hetero conflict, unknown name, single-workload bundle,
	// row-label collision with a workload.
	if _, err := (Grid{HeteroMems: []string{"PCM-DRAM"}, Workloads: []string{"namd"},
		Bundles: []Bundle{{Name: "wl1"}}}).Jobs(); err == nil ||
		!strings.Contains(err.Error(), "single-core") {
		t.Errorf("bundles+hetero grid expanded (err=%v)", err)
	}
	if _, err := (Grid{Systems: []string{"Native"},
		Bundles: []Bundle{{Name: "no-such-bundle"}}}).Jobs(); err == nil ||
		!strings.Contains(err.Error(), "wl1") {
		t.Errorf("unknown bundle name accepted (err=%v)", err)
	}
	if _, err := (Grid{Systems: []string{"Native"},
		Bundles: []Bundle{{Name: "solo", Workloads: []string{"namd"}}}}).Jobs(); err == nil {
		t.Error("single-workload bundle accepted")
	}
	if _, err := (Grid{Systems: []string{"Native"}, Workloads: []string{"namd"},
		Bundles: []Bundle{{Name: "namd", Workloads: []string{"namd", "sjeng"}}}}).Jobs(); err == nil {
		t.Error("bundle name colliding with a workload row accepted")
	}
}

// TestParseBundles pins the -bundle flag syntax: predefined names pass
// through, inline definitions split on +, malformed entries error.
func TestParseBundles(t *testing.T) {
	got, err := ParseBundles("wl1, pair=mcf+graph500 ,wl3")
	if err != nil {
		t.Fatal(err)
	}
	want := []Bundle{
		{Name: "wl1"},
		{Name: "pair", Workloads: []string{"mcf", "graph500"}},
		{Name: "wl3"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ParseBundles = %+v, want %+v", got, want)
	}
	if b, err := ParseBundles(""); err != nil || len(b) != 0 {
		t.Errorf("empty flag = %+v, %v", b, err)
	}
	if _, err := ParseBundles("=mcf+graph500"); err == nil {
		t.Error("nameless inline bundle accepted")
	}
	if _, err := ParseBundles("pair="); err == nil {
		t.Error("workload-less inline bundle accepted")
	}
}

// TestBundleGridGoldenShape is the bundle-sweep golden test: a mixed
// (workload + bundle) grid run cache-cold and then fully cached against
// the same directory must simulate nothing the second time and render
// byte-identical matrices for every metric, with bundle cells aggregating
// across cores.
func TestBundleGridGoldenShape(t *testing.T) {
	g := Grid{
		Systems:   []string{"Native", "VBI-Full"},
		Workloads: []string{"namd"},
		Bundles:   []Bundle{{Name: "pair", Workloads: []string{"namd", "sjeng"}}},
		Refs:      3000,
	}
	jobs, err := g.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	cache := &Cache{Dir: t.TempDir()}
	cold, err := (&Runner{Workers: 2, Cache: cache}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := (&Runner{Workers: 2, Cache: cache}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range warm {
		if !r.Cached {
			t.Errorf("job %d (%s) re-simulated despite a warm cache", i, jobs[i].Describe())
		}
	}
	for _, metric := range Metrics() {
		ct, err := g.Matrix(cold, metric)
		if err != nil {
			t.Fatal(err)
		}
		wt, err := g.Matrix(warm, metric)
		if err != nil {
			t.Fatal(err)
		}
		if ct.Render() != wt.Render() {
			t.Errorf("%s: fully-cached bundle matrix differs:\ncold:\n%s\nwarm:\n%s",
				metric, ct.Render(), wt.Render())
		}
		if rows := ct.Rows; len(rows) != 2 || rows[0] != "namd" || rows[1] != "pair" {
			t.Errorf("%s: rows = %v, want [namd pair]", metric, rows)
		}
	}
	// The bundle cell aggregates across cores: its per-core results are
	// two, and the matrix value is their sum.
	it, err := g.Matrix(cold, MetricIPC)
	if err != nil {
		t.Fatal(err)
	}
	bundleRes := cold[2] // row "pair", series "Native"
	if len(bundleRes.Results) != 2 {
		t.Fatalf("bundle job returned %d per-core results, want 2", len(bundleRes.Results))
	}
	wantSum := bundleRes.Results[0].IPC + bundleRes.Results[1].IPC
	if got := it.Series[0].Values[1]; got != wantSum {
		t.Errorf("bundle ipc cell = %v, want per-core sum %v", got, wantSum)
	}
}

// TestGridInlineSpecs asserts a grid defining variant specs inline is
// self-contained: expansion registers them (idempotently — Jobs and
// Matrix both expand), the Systems axis resolves them, and the expanded
// jobs carry the materialized overlay.
func TestGridInlineSpecs(t *testing.T) {
	g := Grid{
		Specs: []system.Spec{{Name: "GridTest-256TLB", Base: "Native",
			Params: system.Params{L2TLBEntries: 256}}},
		Systems:   []string{"Native", "GridTest-256TLB"},
		Workloads: []string{"namd"},
		Refs:      1000,
	}
	jobs, err := g.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	// Expanding twice (Jobs + Matrix both call cells) must not trip a
	// duplicate-registration error.
	if _, err := g.Jobs(); err != nil {
		t.Fatalf("second expansion failed: %v", err)
	}
	if len(jobs) != 2 {
		t.Fatalf("expanded %d jobs, want 2", len(jobs))
	}
	variant := jobs[1]
	if variant.Spec == nil || variant.Spec.Params.L2TLBEntries != 256 {
		t.Errorf("variant job does not carry its materialized overlay: %+v", variant.Spec)
	}
	// A grid redefining the name differently must fail loudly.
	bad := g
	bad.Specs = []system.Spec{{Name: "GridTest-256TLB", Base: "Native",
		Params: system.Params{L2TLBEntries: 512}}}
	if _, err := bad.Jobs(); err == nil {
		t.Error("conflicting inline spec redefinition accepted")
	}
}
