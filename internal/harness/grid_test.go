package harness

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"vbi/internal/system"
)

// TestParamAxisExpansion pins the deterministic expansion order of
// parameter axes: sorted axis-name-major, value order as given, series
// labels carrying the combination.
func TestParamAxisExpansion(t *testing.T) {
	g := Grid{
		Systems:   []string{"Native"},
		Workloads: []string{"namd"},
		Refs:      1000,
		Params: map[string][]int{
			"l2_tlb_entries": {256, 512},
			"l2_tlb_latency": {7, 9},
		},
	}
	jobs, err := g.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 4 {
		t.Fatalf("expanded %d jobs, want 4 (2x2 cross product)", len(jobs))
	}
	want := []system.Params{
		{L2TLBEntries: 256, L2TLBLatency: 7},
		{L2TLBEntries: 256, L2TLBLatency: 9},
		{L2TLBEntries: 512, L2TLBLatency: 7},
		{L2TLBEntries: 512, L2TLBLatency: 9},
	}
	for i, j := range jobs {
		if j.Params != want[i] {
			t.Errorf("job %d params = %+v, want %+v", i, j.Params, want[i])
		}
		if j.System != "Native" || j.Refs != 1000 {
			t.Errorf("job %d lost its non-param fields: %+v", i, j)
		}
	}

	cells, err := g.cells()
	if err != nil {
		t.Fatal(err)
	}
	if got := cells[0].series; got != "Native[l2_tlb_entries=256,l2_tlb_latency=7]" {
		t.Errorf("series label = %q", got)
	}
}

// TestParamSweepChangesResults runs a real one-axis sweep end to end and
// asserts the overlay reaches the simulator: shrinking the L2 TLB must
// not improve IPC, and the matrix carries one labelled series per value.
func TestParamSweepChangesResults(t *testing.T) {
	g := Grid{
		Systems:   []string{"Native"},
		Workloads: []string{"mcf"},
		Refs:      12_000,
		Params:    map[string][]int{"l2_tlb_entries": {64, 2048}},
	}
	jobs, err := g.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	results, err := (&Runner{Workers: 2}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	small, big := results[0].Results[0], results[1].Results[0]
	if small.IPC >= big.IPC {
		t.Errorf("IPC with a 64-entry L2 TLB (%.4f) not below 2048-entry (%.4f)",
			small.IPC, big.IPC)
	}
	m, err := g.Matrix(results, MetricIPC)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Series) != 2 || m.Series[0].Label != "Native[l2_tlb_entries=64]" {
		t.Errorf("matrix series = %+v", m.Series)
	}
}

// TestRefsAxis sweeps the reference count as a row axis.
func TestRefsAxis(t *testing.T) {
	g := Grid{
		Systems:   []string{"Native"},
		Workloads: []string{"namd"},
		RefsAxis:  []int{2000, 4000},
	}
	jobs, err := g.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 || jobs[0].Refs != 2000 || jobs[1].Refs != 4000 {
		t.Fatalf("refs axis expanded wrong: %+v", jobs)
	}
	results, err := (&Runner{Workers: 2}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	m, err := g.Matrix(results, MetricIPC)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Rows) != 2 || m.Rows[0] != "namd/r2000" || m.Rows[1] != "namd/r4000" {
		t.Errorf("refs-axis rows = %v", m.Rows)
	}
	if results[1].Results[0].MemRefs != 4000 {
		t.Errorf("second cell measured %d refs", results[1].Results[0].MemRefs)
	}
}

// TestHeteroGrid expands a heterogeneous policy grid: series are
// (memory × policy), policies defaulting to all three.
func TestHeteroGrid(t *testing.T) {
	g := Grid{
		HeteroMems: []string{"PCM-DRAM"},
		Workloads:  []string{"namd"},
		Refs:       1000,
	}
	cells, err := g.cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 {
		t.Fatalf("expanded %d cells, want 3 (one per default policy)", len(cells))
	}
	for i, pol := range []string{"Hotness-Unaware", "VBI", "IDEAL"} {
		if cells[i].job.Policy != pol || cells[i].job.HeteroMem != "PCM-DRAM" {
			t.Errorf("cell %d = %+v, want policy %s", i, cells[i].job, pol)
		}
		if cells[i].job.System != "" {
			t.Errorf("cell %d carries a System on a hetero job", i)
		}
		if want := "PCM-DRAM/" + pol; cells[i].series != want {
			t.Errorf("cell %d series = %q, want %q", i, cells[i].series, want)
		}
	}
}

// TestGridConfigRoundTrip exercises LoadGrid with the new axes, including
// rejection of unknown fields.
func TestGridConfigRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "grid.json")
	g := Grid{
		Systems:   []string{"Native", "VBI-Full"},
		Workloads: []string{"namd"},
		Seeds:     []uint64{1, 2},
		Refs:      5000,
		Params:    map[string][]int{"pwc_entries": {16, 32}},
	}
	b, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadGrid(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, g) {
		t.Errorf("LoadGrid round trip: got %+v, want %+v", got, g)
	}
	if _, err := got.Jobs(); err != nil {
		t.Errorf("round-tripped grid does not expand: %v", err)
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"systems": ["Native"], "wrkloads": ["namd"]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadGrid(bad); err == nil || !strings.Contains(err.Error(), "wrkloads") {
		t.Errorf("LoadGrid accepted a typo'd axis name (err=%v)", err)
	}
}

// TestCacheKeySensitivityToParams asserts the canonical job JSON (and so
// the cache key) distinguishes parameter overlays and spec names.
func TestCacheKeySensitivityToParams(t *testing.T) {
	c := &Cache{Dir: t.TempDir()}
	base := Job{System: "Native", Workloads: []string{"namd"}, Refs: 1000, Seed: 1}
	variants := []Job{
		{System: "Native", Workloads: []string{"namd"}, Refs: 1000, Seed: 1,
			Params: system.Params{L2TLBEntries: 256}},
		{System: "Native", Workloads: []string{"namd"}, Refs: 1000, Seed: 1,
			Params: system.Params{L2TLBEntries: 512}},
		{System: "Native", Workloads: []string{"namd"}, Refs: 1000, Seed: 1,
			Params: system.Params{PWCEntries: 16}},
	}
	keys := map[string]bool{c.Key(base): true}
	for _, v := range variants {
		k := c.Key(v)
		if keys[k] {
			t.Errorf("job %s collides with an earlier key", v.Describe())
		}
		keys[k] = true
	}
}

// TestSpecNameJob runs a job naming a registered variant spec and asserts
// it matches the equivalent base-kind job with an explicit overlay.
func TestSpecNameJob(t *testing.T) {
	if err := system.Register(system.Spec{
		Name:   "Native-HarnessTest-128TLB",
		Base:   "Native",
		Params: system.Params{L2TLBEntries: 128},
	}); err != nil {
		t.Fatal(err)
	}
	jobs := []Job{
		{System: "Native-HarnessTest-128TLB", Workloads: []string{"mcf"}, Refs: 8000},
		{System: "Native", Workloads: []string{"mcf"}, Refs: 8000,
			Params: system.Params{L2TLBEntries: 128}},
		{System: "Native", Workloads: []string{"mcf"}, Refs: 8000},
	}
	results, err := (&Runner{Workers: 2}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(results[0].Results, results[1].Results) {
		t.Error("spec-name job differs from the equivalent base+overlay job")
	}
	if reflect.DeepEqual(results[0].Results, results[2].Results) {
		t.Error("variant spec ran identically to the default Native (overlay not applied)")
	}
	// A job-level overlay on a variant spec wins field-by-field.
	over := Job{System: "Native-HarnessTest-128TLB", Workloads: []string{"mcf"}, Refs: 8000,
		Params: system.Params{L2TLBEntries: 2048}}
	r2, err := (&Runner{Workers: 1}).Run(context.Background(), []Job{over,
		{System: "Native", Workloads: []string{"mcf"}, Refs: 8000,
			Params: system.Params{L2TLBEntries: 2048}}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r2[0].Results, r2[1].Results) {
		t.Error("job overlay did not override the spec's params")
	}
}

// TestDefaultParamsAreByteIdentical asserts a zero overlay and an explicit
// Table 1 overlay produce identical results — the compatibility guarantee
// for the pre-registry job schema.
func TestDefaultParamsAreByteIdentical(t *testing.T) {
	jobs := []Job{
		{System: "VBI-Full", Workloads: []string{"namd"}, Refs: 6000},
		{System: "VBI-Full", Workloads: []string{"namd"}, Refs: 6000,
			Params: system.DefaultParams()},
	}
	results, err := (&Runner{Workers: 2}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(results[0].Results)
	b, _ := json.Marshal(results[1].Results)
	if string(a) != string(b) {
		t.Errorf("explicit Table 1 params changed results:\nzero:    %s\nexplicit: %s", a, b)
	}
}

// TestParamAxesFlag pins the CLI flag parsing: K/M/G suffixes only on
// size/entry parameters, unknown names and repeats rejected.
func TestParamAxesFlag(t *testing.T) {
	a := ParamAxes{}
	if err := a.Set("l2_tlb_entries=2K,512"); err != nil {
		t.Fatal(err)
	}
	if got := a["l2_tlb_entries"]; len(got) != 2 || got[0] != 2048 || got[1] != 512 {
		t.Errorf("l2_tlb_entries = %v", got)
	}
	if err := a.Set("llc_size=16M"); err != nil {
		t.Fatal(err)
	}
	if got := a["llc_size"]; got[0] != 16<<20 {
		t.Errorf("llc_size = %v", got)
	}
	if err := a.Set("l2_tlb_latency=8k"); err == nil {
		t.Error("K suffix accepted on a cycle-count parameter")
	}
	if err := a.Set("no_such=1"); err == nil {
		t.Error("unknown parameter accepted")
	}
	if err := a.Set("llc_size=32M"); err == nil {
		t.Error("repeated parameter accepted")
	}
	if err := a.Set("l2_tlb_ways"); err == nil {
		t.Error("missing '=' accepted")
	}
	over, err := ParamAxes{"pwc_entries": {16}}.Overlay()
	if err != nil || over.PWCEntries != 16 {
		t.Errorf("Overlay = %+v, %v", over, err)
	}
	if _, err := (ParamAxes{"pwc_entries": {16, 32}}).Overlay(); err == nil {
		t.Error("multi-valued axis accepted as a single-run overlay")
	}
}
