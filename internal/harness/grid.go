package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"vbi/internal/stats"
	"vbi/internal/system"
	"vbi/internal/workloads"
)

// Grid is a declarative sweep, the design-space-exploration shape of
// cmd/vbisweep. Beyond the original (system × workload × seed) axes it
// expands arbitrary parameter axes (named Params values, cross-producted),
// a refs scaling axis, multiprogrammed workload bundles, and
// heterogeneous-memory policy grids. It expands to one Job per cell —
// single-core for workload rows, one core per workload for bundle rows —
// in a fixed order (seed-major, then refs, then workload rows, then
// bundle rows, then series), so Matrix can consume the results
// positionally.
//
// The series dimension is (system × parameter combination) — or, for
// hetero grids, (memory × policy × parameter combination); Systems and
// HeteroMems are mutually exclusive, and bundles are system-only (hetero
// jobs are single-core).
//
// A grid is self-contained: inline Specs define the variant systems its
// axes name, and because expanded jobs carry their resolved specs, the
// same grid shards to remote workers without any out-of-band
// registration.
type Grid struct {
	Systems   []string `json:"systems,omitempty"`
	Workloads []string `json:"workloads,omitempty"`
	Seeds     []uint64 `json:"seeds,omitempty"`
	Refs      int      `json:"refs,omitempty"`
	Warmup    int      `json:"warmup,omitempty"`

	// Bundles adds multiprogrammed rows alongside Workloads: each entry
	// either names a predefined Table 2 bundle or defines an inline one
	// (one core per workload). Bundle rows expand after the workload rows
	// within each (seed, refs) block.
	Bundles []Bundle `json:"bundles,omitempty"`

	// Specs declares variant system specs inline. They are registered
	// into the process-wide registry when the grid expands (idempotently
	// — identical re-registration is a no-op), so the Systems axis can
	// name them without code changes.
	Specs []system.Spec `json:"specs,omitempty"`

	// Overlay, when non-nil, applies a base parameter overlay to every
	// cell; the Params axes compose on top field-by-field (an axis wins
	// for its field). A pointer so an absent overlay is genuinely omitted
	// from the grid's JSON (encoding/json ignores omitempty on struct
	// values).
	Overlay *system.Params `json:"overlay,omitempty"`

	// RefsAxis sweeps the measured reference count as a row axis (refs
	// scaling curves). When empty, every cell uses Refs.
	RefsAxis []int `json:"refs_axis,omitempty"`

	// Params maps parameter names (system.ParamNames) to axis values; the
	// grid expands their cross product, in sorted name order, as extra
	// series.
	Params map[string][]int `json:"params,omitempty"`

	// HeteroMems, when non-empty, makes this a heterogeneous-memory grid:
	// the series are (memory × policy) combinations instead of systems.
	// Policies defaults to all three placement policies.
	HeteroMems []string `json:"hetero_mems,omitempty"`
	Policies   []string `json:"policies,omitempty"`
}

// LoadGrid reads a Grid from a JSON config file.
func LoadGrid(path string) (Grid, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Grid{}, err
	}
	var g Grid
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields() // catch typo'd axis names instead of silently dropping them
	if err := dec.Decode(&g); err != nil {
		return Grid{}, fmt.Errorf("harness: parse grid %s: %w", path, err)
	}
	return g, nil
}

// Bundle is one multiprogrammed workload bundle: a named list of
// workloads, one core per entry.
type Bundle struct {
	// Name labels the bundle's matrix row. A bundle with no Workloads is
	// resolved as the predefined Table 2 bundle of this name.
	Name      string   `json:"name"`
	Workloads []string `json:"workloads,omitempty"`
}

// ParseBundles parses a comma-separated -bundle flag value: each entry is
// either a predefined Table 2 bundle name ("wl1") or an inline definition
// "name=app1+app2+...". Resolution and validation happen at grid
// expansion, so flag parsing stays purely syntactic.
func ParseBundles(s string) ([]Bundle, error) {
	var out []Bundle
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p == "" {
			continue
		}
		name, list, inline := strings.Cut(p, "=")
		b := Bundle{Name: strings.TrimSpace(name)}
		if b.Name == "" {
			return nil, fmt.Errorf("harness: bundle entry %q has no name", p)
		}
		if inline {
			for _, w := range strings.Split(list, "+") {
				if w = strings.TrimSpace(w); w != "" {
					b.Workloads = append(b.Workloads, w)
				}
			}
			if len(b.Workloads) == 0 {
				return nil, fmt.Errorf("harness: bundle %q defines no workloads (want name=app1+app2+...)", b.Name)
			}
		}
		out = append(out, b)
	}
	return out, nil
}

// resolveBundles materializes the bundle axis: predefined names pull
// their Table 2 workload lists, and every bundle is checked to be
// genuinely multiprogrammed (per-workload existence is per-cell
// validation, Job.Validate).
func (g Grid) resolveBundles() ([]Bundle, error) {
	out := make([]Bundle, 0, len(g.Bundles))
	for _, b := range g.Bundles {
		if b.Name == "" {
			return nil, fmt.Errorf("harness: bundle with no name")
		}
		if len(b.Workloads) == 0 {
			wl, ok := workloads.Bundles[b.Name]
			if !ok {
				return nil, fmt.Errorf("harness: unknown bundle %q (predefined: %s; or define inline as name=app1+app2+...)",
					b.Name, strings.Join(workloads.BundleNames, ", "))
			}
			b.Workloads = append([]string{}, wl...)
		}
		if len(b.Workloads) < 2 {
			return nil, fmt.Errorf("harness: bundle %q has %d workload(s); multiprogrammed bundles need at least two (single-core runs belong on the workloads axis)",
				b.Name, len(b.Workloads))
		}
		out = append(out, b)
	}
	return out, nil
}

// withDefaults fills the optional axes.
func (g Grid) withDefaults() Grid {
	if len(g.Seeds) == 0 {
		g.Seeds = []uint64{1}
	}
	if len(g.RefsAxis) == 0 {
		g.RefsAxis = []int{g.Refs}
	}
	if len(g.HeteroMems) > 0 && len(g.Policies) == 0 {
		g.Policies = make([]string, 0, len(system.Policies()))
		for _, p := range system.Policies() {
			g.Policies = append(g.Policies, p.String())
		}
	}
	return g
}

// paramCombo is one point of the parameter-axis cross product.
type paramCombo struct {
	label  string // "l2_tlb_entries=512" (axis names sorted), "" when no axes
	params system.Params
}

// paramCombos expands the parameter axes into their cross product, sorted
// axis-name-major so the expansion order is deterministic regardless of
// map iteration order. With no axes it returns the single empty combo.
func (g Grid) paramCombos() ([]paramCombo, error) {
	if len(g.Params) == 0 {
		return []paramCombo{{}}, nil
	}
	names := make([]string, 0, len(g.Params))
	for name := range g.Params {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		vals := g.Params[name]
		if len(vals) == 0 {
			return nil, fmt.Errorf("harness: parameter axis %q has no values", name)
		}
		if _, err := (system.Params{}).Get(name); err != nil {
			return nil, err
		}
		if err := noDups("param "+name, vals); err != nil {
			return nil, err
		}
	}
	combos := []paramCombo{{}}
	for _, name := range names {
		var next []paramCombo
		for _, c := range combos {
			for _, v := range g.Params[name] {
				p := c.params
				if err := p.Set(name, v); err != nil {
					return nil, err
				}
				label := fmt.Sprintf("%s=%d", name, v)
				if c.label != "" {
					label = c.label + "," + label
				}
				next = append(next, paramCombo{label: label, params: p})
			}
		}
		combos = next
	}
	return combos, nil
}

// cell is one grid point: its job plus the row/series labels Matrix uses.
type cell struct {
	job    Job
	row    string
	series string
}

// noDups rejects repeated axis values: a duplicate entry would produce
// two cells with identical labels, silently misaligning Matrix rows
// against series values.
func noDups[T comparable](axis string, vals []T) error {
	seen := make(map[T]bool, len(vals))
	for _, v := range vals {
		if seen[v] {
			return fmt.Errorf("harness: duplicate %s entry %v", axis, v)
		}
		seen[v] = true
	}
	return nil
}

// cells expands the grid in its fixed order: rows are seed-major, then
// refs, then workload rows, then bundle rows; within a row, series
// iterate (system or mem/policy) × parameter combination. Every entry
// point (Jobs, Matrix) derives from this one expansion, so labels and
// positions cannot drift apart. Inline Specs are registered first
// (idempotently), and every Systems entry is resolved exactly once — the
// expanded jobs carry their materialized specs.
func (g Grid) cells() ([]cell, error) {
	if g.Refs != 0 && len(g.RefsAxis) > 0 {
		return nil, fmt.Errorf("harness: refs and refs_axis are mutually exclusive")
	}
	g = g.withDefaults()
	if len(g.Workloads) == 0 && len(g.Bundles) == 0 {
		return nil, fmt.Errorf("harness: grid needs at least one workload or bundle")
	}
	if len(g.Systems) > 0 && len(g.HeteroMems) > 0 {
		return nil, fmt.Errorf("harness: systems and hetero_mems are mutually exclusive axes")
	}
	if len(g.Systems) == 0 && len(g.HeteroMems) == 0 {
		return nil, fmt.Errorf("harness: grid needs at least one system (or hetero_mems entry)")
	}
	if len(g.Bundles) > 0 && len(g.HeteroMems) > 0 {
		return nil, fmt.Errorf("harness: bundles and hetero_mems are mutually exclusive (heterogeneous jobs are single-core)")
	}
	bundles, err := g.resolveBundles()
	if err != nil {
		return nil, err
	}
	// Workload and bundle names share the row-label space, so they must
	// be collision-checked together.
	rowNames := append([]string{}, g.Workloads...)
	for _, b := range bundles {
		rowNames = append(rowNames, b.Name)
	}
	for _, err := range []error{
		noDups("systems", g.Systems),
		noDups("workload/bundle row", rowNames),
		noDups("seeds", g.Seeds),
		noDups("refs_axis", g.RefsAxis),
		noDups("hetero_mems", g.HeteroMems),
		noDups("policies", g.Policies),
	} {
		if err != nil {
			return nil, err
		}
	}
	combos, err := g.paramCombos()
	if err != nil {
		return nil, err
	}
	// The inline specs: validated and conflict-screened against the
	// process-wide registry up front, but resolved from the grid's own
	// list during expansion and only *registered* once the whole grid has
	// validated — a grid that fails a later check must not permanently
	// bind names on its way out.
	inline := make(map[string]system.Spec, len(g.Specs))
	for _, s := range g.Specs {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("harness: grid spec: %w", err)
		}
		key := strings.ToLower(s.Name)
		if prev, dup := inline[key]; dup && !prev.SameDefinition(s) {
			return nil, fmt.Errorf("harness: grid defines spec %q twice with different definitions", s.Name)
		}
		if prev, ok := system.LookupSpec(s.Name); ok && !prev.SameDefinition(s) {
			return nil, fmt.Errorf("harness: grid spec %q conflicts with an already registered definition", s.Name)
		}
		inline[key] = s
	}

	// The series templates: jobs missing only workloads/refs/seed.
	type seriesTmpl struct {
		label string
		job   Job
	}
	var series []seriesTmpl
	base := system.Params{}
	if g.Overlay != nil {
		base = *g.Overlay
	}
	addSeries := func(label string, job Job, combo paramCombo) {
		if combo.label != "" {
			label = fmt.Sprintf("%s[%s]", label, combo.label)
		}
		job.Params = system.Overlay(base, combo.params)
		series = append(series, seriesTmpl{label: label, job: job})
	}
	if len(g.HeteroMems) > 0 {
		for _, mem := range g.HeteroMems {
			for _, pol := range g.Policies {
				for _, c := range combos {
					addSeries(fmt.Sprintf("%s/%s", mem, pol),
						Job{HeteroMem: mem, Policy: pol}, c)
				}
			}
		}
	} else {
		for _, s := range g.Systems {
			// Resolve once — inline grid specs first, then the registry;
			// the spec then rides inside every job of the series,
			// registry-free from here on.
			spec, ok := inline[strings.ToLower(s)]
			if !ok {
				var err error
				if spec, err = system.ResolveSpec(s); err != nil {
					return nil, err
				}
			}
			for _, c := range combos {
				addSeries(s, Job{Spec: &spec}, c)
			}
		}
	}

	var cells []cell
	rowLabel := func(name string, refs int, seed uint64) string {
		if len(g.RefsAxis) > 1 {
			name = fmt.Sprintf("%s/r%d", name, refs)
		}
		if len(g.Seeds) > 1 {
			name = fmt.Sprintf("%s/s%d", name, seed)
		}
		return name
	}
	addRow := func(name string, wls []string, refs int, seed uint64) error {
		row := rowLabel(name, refs, seed)
		for _, st := range series {
			j := st.job
			j.Workloads = append([]string{}, wls...)
			j.Refs = refs
			j.Warmup = g.Warmup
			j.Seed = seed
			if err := j.Validate(); err != nil {
				return err
			}
			cells = append(cells, cell{job: j, row: row, series: st.label})
		}
		return nil
	}
	for _, seed := range g.Seeds {
		for _, refs := range g.RefsAxis {
			for _, w := range g.Workloads {
				if err := addRow(w, []string{w}, refs, seed); err != nil {
					return nil, err
				}
			}
			for _, b := range bundles {
				if err := addRow(b.Name, b.Workloads, refs, seed); err != nil {
					return nil, err
				}
			}
		}
	}
	// The grid is fully valid; now publish its inline specs to the
	// process-wide registry so the rest of the process (listings, later
	// grids, flag-based references) can resolve them too. Registration is
	// an idempotent upsert and conflicts were screened above, so this
	// cannot fail short of a concurrent conflicting Register.
	for _, s := range g.Specs {
		if err := system.Register(s); err != nil {
			return nil, fmt.Errorf("harness: grid spec: %w", err)
		}
	}
	return cells, nil
}

// Jobs expands the grid. It fails fast on unknown system, workload or
// parameter names.
func (g Grid) Jobs() ([]Job, error) {
	cells, err := g.cells()
	if err != nil {
		return nil, err
	}
	jobs := make([]Job, len(cells))
	for i, c := range cells {
		jobs[i] = c.job
	}
	return jobs, nil
}

// Metrics selectable in a sweep matrix.
const (
	MetricIPC  = "ipc"
	MetricDRAM = "dram"
)

// Metrics lists the selectable matrix metrics.
func Metrics() []string { return []string{MetricIPC, MetricDRAM} }

// ValidateMetric rejects unknown metric names. Grid.Matrix calls it; CLI
// front-ends call it too for fail-fast flag validation, so the metric list
// lives in exactly one place.
func ValidateMetric(metric string) error {
	for _, m := range Metrics() {
		if metric == m {
			return nil
		}
	}
	return fmt.Errorf("harness: unknown metric %q (want %s)",
		metric, strings.Join(Metrics(), " or "))
}

// Matrix folds the results of a Jobs() run into a table: one row per
// (workload or bundle, refs, seed) cell, one series per (system or
// mem/policy, parameter combination), values taken from the named metric.
// Single-core cells report the core's value directly; bundle cells
// aggregate across cores (ipc: total throughput, dram: total accesses).
func (g Grid) Matrix(results []Result, metric string) (*stats.Table, error) {
	if err := ValidateMetric(metric); err != nil {
		return nil, err
	}
	cells, err := g.cells()
	if err != nil {
		return nil, err
	}
	if len(results) != len(cells) {
		return nil, fmt.Errorf("harness: grid expects %d results, got %d", len(cells), len(results))
	}
	value := func(r Result) float64 {
		var v float64
		for _, rr := range r.Results {
			switch metric {
			case MetricDRAM:
				v += float64(rr.DRAMAccesses)
			default:
				v += rr.IPC
			}
		}
		return v
	}
	t := &stats.Table{Title: fmt.Sprintf("Sweep: %s over %d cells", metric, len(cells))}
	for i, c := range cells {
		if len(t.Rows) == 0 || t.Rows[len(t.Rows)-1] != c.row {
			t.Rows = append(t.Rows, c.row)
		}
		t.Add(c.series, value(results[i]))
	}
	return t, nil
}
