package harness

import (
	"encoding/json"
	"fmt"
	"os"

	"vbi/internal/stats"
)

// Grid is a declarative sweep over (system × workload × seed), the
// design-space-exploration shape of cmd/vbisweep. It expands to one
// single-core Job per cell in a fixed order (seed-major, then workload,
// then system), so Matrix can consume the results positionally.
type Grid struct {
	Systems   []string `json:"systems"`
	Workloads []string `json:"workloads"`
	Seeds     []uint64 `json:"seeds,omitempty"`
	Refs      int      `json:"refs,omitempty"`
	Warmup    int      `json:"warmup,omitempty"`
}

// LoadGrid reads a Grid from a JSON config file.
func LoadGrid(path string) (Grid, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Grid{}, err
	}
	var g Grid
	if err := json.Unmarshal(b, &g); err != nil {
		return Grid{}, fmt.Errorf("harness: parse grid %s: %w", path, err)
	}
	return g, nil
}

// withDefaults fills the optional axes.
func (g Grid) withDefaults() Grid {
	if len(g.Seeds) == 0 {
		g.Seeds = []uint64{1}
	}
	return g
}

// Jobs expands the grid. It fails fast on unknown system or workload
// names.
func (g Grid) Jobs() ([]Job, error) {
	g = g.withDefaults()
	if len(g.Systems) == 0 || len(g.Workloads) == 0 {
		return nil, fmt.Errorf("harness: grid needs at least one system and one workload")
	}
	var jobs []Job
	for _, seed := range g.Seeds {
		for _, w := range g.Workloads {
			for _, s := range g.Systems {
				j := Job{System: s, Workloads: []string{w}, Refs: g.Refs,
					Warmup: g.Warmup, Seed: seed}
				if err := j.Validate(); err != nil {
					return nil, err
				}
				jobs = append(jobs, j)
			}
		}
	}
	return jobs, nil
}

// Metrics selectable in a sweep matrix.
const (
	MetricIPC  = "ipc"
	MetricDRAM = "dram"
)

// Matrix folds the results of a Jobs() run into a table: one row per
// (workload, seed) cell, one series per system, values taken from the
// named metric.
func (g Grid) Matrix(results []Result, metric string) (*stats.Table, error) {
	g = g.withDefaults()
	if want := len(g.Seeds) * len(g.Workloads) * len(g.Systems); len(results) != want {
		return nil, fmt.Errorf("harness: grid expects %d results, got %d", want, len(results))
	}
	value := func(r Result) (float64, error) {
		switch metric {
		case MetricIPC:
			return r.Results[0].IPC, nil
		case MetricDRAM:
			return float64(r.Results[0].DRAMAccesses), nil
		}
		return 0, fmt.Errorf("harness: unknown metric %q (want %s or %s)",
			metric, MetricIPC, MetricDRAM)
	}
	t := &stats.Table{
		Title: fmt.Sprintf("Sweep: %s over %d systems x %d workloads x %d seeds",
			metric, len(g.Systems), len(g.Workloads), len(g.Seeds)),
	}
	i := 0
	for _, seed := range g.Seeds {
		for _, w := range g.Workloads {
			row := w
			if len(g.Seeds) > 1 {
				row = fmt.Sprintf("%s/s%d", w, seed)
			}
			t.Rows = append(t.Rows, row)
			for _, s := range g.Systems {
				v, err := value(results[i])
				if err != nil {
					return nil, err
				}
				t.Add(s, v)
				i++
			}
		}
	}
	return t, nil
}
