package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"vbi/internal/stats"
	"vbi/internal/system"
)

// Grid is a declarative sweep, the design-space-exploration shape of
// cmd/vbisweep. Beyond the original (system × workload × seed) axes it
// expands arbitrary parameter axes (named Params values, cross-producted),
// a refs scaling axis, and heterogeneous-memory policy grids. It expands
// to one single-core Job per cell in a fixed order (seed-major, then refs,
// then workload, then series), so Matrix can consume the results
// positionally.
//
// The series dimension is (system × parameter combination) — or, for
// hetero grids, (memory × policy × parameter combination); Systems and
// HeteroMems are mutually exclusive.
type Grid struct {
	Systems   []string `json:"systems,omitempty"`
	Workloads []string `json:"workloads"`
	Seeds     []uint64 `json:"seeds,omitempty"`
	Refs      int      `json:"refs,omitempty"`
	Warmup    int      `json:"warmup,omitempty"`

	// RefsAxis sweeps the measured reference count as a row axis (refs
	// scaling curves). When empty, every cell uses Refs.
	RefsAxis []int `json:"refs_axis,omitempty"`

	// Params maps parameter names (system.ParamNames) to axis values; the
	// grid expands their cross product, in sorted name order, as extra
	// series.
	Params map[string][]int `json:"params,omitempty"`

	// HeteroMems, when non-empty, makes this a heterogeneous-memory grid:
	// the series are (memory × policy) combinations instead of systems.
	// Policies defaults to all three placement policies.
	HeteroMems []string `json:"hetero_mems,omitempty"`
	Policies   []string `json:"policies,omitempty"`
}

// LoadGrid reads a Grid from a JSON config file.
func LoadGrid(path string) (Grid, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Grid{}, err
	}
	var g Grid
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields() // catch typo'd axis names instead of silently dropping them
	if err := dec.Decode(&g); err != nil {
		return Grid{}, fmt.Errorf("harness: parse grid %s: %w", path, err)
	}
	return g, nil
}

// withDefaults fills the optional axes.
func (g Grid) withDefaults() Grid {
	if len(g.Seeds) == 0 {
		g.Seeds = []uint64{1}
	}
	if len(g.RefsAxis) == 0 {
		g.RefsAxis = []int{g.Refs}
	}
	if len(g.HeteroMems) > 0 && len(g.Policies) == 0 {
		g.Policies = make([]string, 0, len(system.Policies()))
		for _, p := range system.Policies() {
			g.Policies = append(g.Policies, p.String())
		}
	}
	return g
}

// paramCombo is one point of the parameter-axis cross product.
type paramCombo struct {
	label  string // "l2_tlb_entries=512" (axis names sorted), "" when no axes
	params system.Params
}

// paramCombos expands the parameter axes into their cross product, sorted
// axis-name-major so the expansion order is deterministic regardless of
// map iteration order. With no axes it returns the single empty combo.
func (g Grid) paramCombos() ([]paramCombo, error) {
	if len(g.Params) == 0 {
		return []paramCombo{{}}, nil
	}
	names := make([]string, 0, len(g.Params))
	for name := range g.Params {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		vals := g.Params[name]
		if len(vals) == 0 {
			return nil, fmt.Errorf("harness: parameter axis %q has no values", name)
		}
		if _, err := (system.Params{}).Get(name); err != nil {
			return nil, err
		}
		if err := noDups("param "+name, vals); err != nil {
			return nil, err
		}
	}
	combos := []paramCombo{{}}
	for _, name := range names {
		var next []paramCombo
		for _, c := range combos {
			for _, v := range g.Params[name] {
				p := c.params
				if err := p.Set(name, v); err != nil {
					return nil, err
				}
				label := fmt.Sprintf("%s=%d", name, v)
				if c.label != "" {
					label = c.label + "," + label
				}
				next = append(next, paramCombo{label: label, params: p})
			}
		}
		combos = next
	}
	return combos, nil
}

// cell is one grid point: its job plus the row/series labels Matrix uses.
type cell struct {
	job    Job
	row    string
	series string
}

// noDups rejects repeated axis values: a duplicate entry would produce
// two cells with identical labels, silently misaligning Matrix rows
// against series values.
func noDups[T comparable](axis string, vals []T) error {
	seen := make(map[T]bool, len(vals))
	for _, v := range vals {
		if seen[v] {
			return fmt.Errorf("harness: duplicate %s entry %v", axis, v)
		}
		seen[v] = true
	}
	return nil
}

// cells expands the grid in its fixed order: rows are seed-major, then
// refs, then workload; within a row, series iterate (system or mem/policy)
// × parameter combination. Every entry point (Jobs, Matrix) derives from
// this one expansion, so labels and positions cannot drift apart.
func (g Grid) cells() ([]cell, error) {
	if g.Refs != 0 && len(g.RefsAxis) > 0 {
		return nil, fmt.Errorf("harness: refs and refs_axis are mutually exclusive")
	}
	g = g.withDefaults()
	if len(g.Workloads) == 0 {
		return nil, fmt.Errorf("harness: grid needs at least one workload")
	}
	if len(g.Systems) > 0 && len(g.HeteroMems) > 0 {
		return nil, fmt.Errorf("harness: systems and hetero_mems are mutually exclusive axes")
	}
	if len(g.Systems) == 0 && len(g.HeteroMems) == 0 {
		return nil, fmt.Errorf("harness: grid needs at least one system (or hetero_mems entry)")
	}
	for _, err := range []error{
		noDups("systems", g.Systems),
		noDups("workloads", g.Workloads),
		noDups("seeds", g.Seeds),
		noDups("refs_axis", g.RefsAxis),
		noDups("hetero_mems", g.HeteroMems),
		noDups("policies", g.Policies),
	} {
		if err != nil {
			return nil, err
		}
	}
	combos, err := g.paramCombos()
	if err != nil {
		return nil, err
	}

	// The series templates: jobs missing only workload/refs/seed.
	type seriesTmpl struct {
		label string
		job   Job
	}
	var series []seriesTmpl
	addSeries := func(label string, job Job, combo paramCombo) {
		if combo.label != "" {
			label = fmt.Sprintf("%s[%s]", label, combo.label)
		}
		job.Params = combo.params
		series = append(series, seriesTmpl{label: label, job: job})
	}
	if len(g.HeteroMems) > 0 {
		for _, mem := range g.HeteroMems {
			for _, pol := range g.Policies {
				for _, c := range combos {
					addSeries(fmt.Sprintf("%s/%s", mem, pol),
						Job{HeteroMem: mem, Policy: pol}, c)
				}
			}
		}
	} else {
		for _, s := range g.Systems {
			for _, c := range combos {
				addSeries(s, Job{System: s}, c)
			}
		}
	}

	var cells []cell
	for _, seed := range g.Seeds {
		for _, refs := range g.RefsAxis {
			for _, w := range g.Workloads {
				row := w
				if len(g.RefsAxis) > 1 {
					row = fmt.Sprintf("%s/r%d", row, refs)
				}
				if len(g.Seeds) > 1 {
					row = fmt.Sprintf("%s/s%d", row, seed)
				}
				for _, st := range series {
					j := st.job
					j.Workloads = []string{w}
					j.Refs = refs
					j.Warmup = g.Warmup
					j.Seed = seed
					if err := j.Validate(); err != nil {
						return nil, err
					}
					cells = append(cells, cell{job: j, row: row, series: st.label})
				}
			}
		}
	}
	return cells, nil
}

// Jobs expands the grid. It fails fast on unknown system, workload or
// parameter names.
func (g Grid) Jobs() ([]Job, error) {
	cells, err := g.cells()
	if err != nil {
		return nil, err
	}
	jobs := make([]Job, len(cells))
	for i, c := range cells {
		jobs[i] = c.job
	}
	return jobs, nil
}

// Metrics selectable in a sweep matrix.
const (
	MetricIPC  = "ipc"
	MetricDRAM = "dram"
)

// Metrics lists the selectable matrix metrics.
func Metrics() []string { return []string{MetricIPC, MetricDRAM} }

// ValidateMetric rejects unknown metric names. Grid.Matrix calls it; CLI
// front-ends call it too for fail-fast flag validation, so the metric list
// lives in exactly one place.
func ValidateMetric(metric string) error {
	for _, m := range Metrics() {
		if metric == m {
			return nil
		}
	}
	return fmt.Errorf("harness: unknown metric %q (want %s)",
		metric, strings.Join(Metrics(), " or "))
}

// Matrix folds the results of a Jobs() run into a table: one row per
// (workload, refs, seed) cell, one series per (system or mem/policy,
// parameter combination), values taken from the named metric.
func (g Grid) Matrix(results []Result, metric string) (*stats.Table, error) {
	if err := ValidateMetric(metric); err != nil {
		return nil, err
	}
	cells, err := g.cells()
	if err != nil {
		return nil, err
	}
	if len(results) != len(cells) {
		return nil, fmt.Errorf("harness: grid expects %d results, got %d", len(cells), len(results))
	}
	value := func(r Result) float64 {
		switch metric {
		case MetricDRAM:
			return float64(r.Results[0].DRAMAccesses)
		default:
			return r.Results[0].IPC
		}
	}
	t := &stats.Table{Title: fmt.Sprintf("Sweep: %s over %d cells", metric, len(cells))}
	for i, c := range cells {
		if len(t.Rows) == 0 || t.Rows[len(t.Rows)-1] != c.row {
			t.Rows = append(t.Rows, c.row)
		}
		t.Add(c.series, value(results[i]))
	}
	return t, nil
}
