package harness

import (
	"context"
	"fmt"

	"vbi/internal/obs"
	"vbi/internal/system"
)

// JobShards is an Executor wrapper that decomposes each job into K
// intra-job shards before handing the batch to Inner, then folds the
// shard results back into one Result per original job. Two decomposition
// axes, picked per job:
//
//   - single-workload jobs become K time-slice jobs (system.PlanSlices):
//     each slice regenerates its warm-up deterministically and simulates
//     only its measured window, and the exact-mode merge is byte-identical
//     to the undecomposed run;
//   - multiprogrammed bundles keep one job but carry Shards=K, asking the
//     executing pool to run the bundle's cores on K goroutines
//     (system.Multicore.RunSharded), byte-identical by construction.
//
// Inner sees one flat batch of ordinary jobs, so the decomposition
// composes with any backend — the local Runner spreads slices over its
// worker pool, dist.Coordinator scatters them across the fleet — and
// slice jobs ride the retry machinery and result cache unchanged.
type JobShards struct {
	// Inner executes the expanded batch.
	Inner Executor
	// K is the shard count per job (<=1 disables decomposition).
	K int
	// Approx selects sampled warm-up for time slices: instead of exactly
	// replaying the prefix, each slice simulates WarmupRefs references of
	// warm-up from cold state and the merged result carries a confidence
	// interval (system.ShardIPCErrKey). Results are estimates, never
	// cached as the parent job.
	Approx bool
	// WarmupRefs is the per-slice approx warm-up length (0 = half the
	// slice's window).
	WarmupRefs int
	// MinRefs is the smallest measured-reference count worth slicing
	// (smaller single-core jobs pass through whole; 0 = always slice).
	MinRefs int
	// Cache, when non-nil, serves whole parent jobs before any expansion
	// and stores exact merged results under the parent key, so a sliced
	// run warms the same cache a serial run would hit.
	Cache *Cache
}

var _ Executor = (*JobShards)(nil)

// plan records how one original job was expanded into the inner batch.
type shardPlan struct {
	// first/count locate the job's inner jobs in the expanded batch.
	first, count int
	// merge marks a time-sliced job whose windows need MergeSlices.
	merge bool
	// cached carries a parent-cache hit taken before expansion.
	cached []system.RunResult
}

// Run expands, executes and folds. Results come back one per original
// job, in job order, with exact-mode bytes identical to an undecomposed
// run of the same batch.
func (s *JobShards) Run(ctx context.Context, jobs []Job) ([]Result, error) {
	if s.K <= 1 {
		return s.Inner.Run(ctx, jobs)
	}
	for i, j := range jobs {
		if err := j.Validate(); err != nil {
			return nil, fmt.Errorf("job %d (%s): %w", i, j.Describe(), err)
		}
	}

	plans := make([]shardPlan, len(jobs))
	var inner []Job
	for i, j := range jobs {
		if res, ok := s.parentHit(j); ok {
			plans[i] = shardPlan{cached: res}
			continue
		}
		exp := s.expand(j)
		plans[i] = shardPlan{first: len(inner), count: len(exp), merge: len(exp) > 1}
		inner = append(inner, exp...)
	}

	var results []Result
	if len(inner) > 0 {
		var err error
		results, err = s.Inner.Run(ctx, inner)
		if err != nil {
			return nil, err
		}
	}

	out := make([]Result, len(jobs))
	for i, j := range jobs {
		p := plans[i]
		if p.cached != nil {
			out[i] = Result{Job: j, Results: p.cached, Cached: true,
				Timing: &obs.JobTiming{Cached: true, Phases: system.SumPhases(p.cached)}}
			continue
		}
		sub := results[p.first : p.first+p.count]
		if !p.merge {
			r := sub[0]
			r.Job = j // restore the caller's job (expansion may have set Shards)
			out[i] = r
			continue
		}
		folded, err := s.fold(j, sub)
		if err != nil {
			return nil, fmt.Errorf("job %d (%s): %w", i, j.Describe(), err)
		}
		out[i] = folded
	}
	return out, nil
}

// parentHit consults the parent-level cache. Approx runs never match: an
// estimate must not impersonate the exact result, and vice versa the
// exact cache can safely serve a job that would have been approximated —
// except callers asked for approx semantics explicitly, so we only probe
// in exact mode.
func (s *JobShards) parentHit(j Job) ([]system.RunResult, bool) {
	if s.Cache == nil || s.Approx {
		return nil, false
	}
	return s.Cache.Get(j)
}

// expand turns one job into its inner jobs.
func (s *JobShards) expand(j Job) []Job {
	if len(j.Workloads) > 1 {
		// Bundle: one job, cores sharded inside the executing pool.
		if j.Shards == 0 {
			j.Shards = s.K
		}
		return []Job{j}
	}
	if j.Slice != nil {
		// Already a slice — never slice a slice.
		return []Job{j}
	}
	refs := j.Refs
	if refs == 0 {
		refs = 1_000_000
	}
	if refs < s.MinRefs {
		return []Job{j}
	}
	if j.HeteroMem != "" && s.Approx {
		// Migration is feedback-driven; only exact prefix replay is sound.
		return []Job{j}
	}
	slices := system.PlanSlices(refs, s.K)
	out := make([]Job, len(slices))
	for i, sl := range slices {
		if s.Approx {
			sl.Approx = true
			sl.WarmupRefs = s.WarmupRefs
			if sl.WarmupRefs <= 0 {
				sl.WarmupRefs = (sl.End - sl.Start) / 2
			}
			if sl.WarmupRefs <= 0 {
				sl.WarmupRefs = 1
			}
		}
		jc := j
		jc.Slice = &sl
		out[i] = jc
	}
	return out
}

// fold merges a time-sliced job's windows into the parent Result and
// aggregates the timing record: ShardWallNanos sums the per-slice wall
// clocks (total work), WallNanos takes the slowest slice's queue+wall
// span (the decomposition's critical path), and their ratio is the
// intra-job speedup obs exposes.
func (s *JobShards) fold(j Job, sub []Result) (Result, error) {
	windows := make([]system.RunResult, len(sub))
	for i, r := range sub {
		if len(r.Results) != 1 {
			return Result{}, fmt.Errorf("slice %d returned %d results", i, len(r.Results))
		}
		windows[i] = r.Results[0]
	}
	merged, err := system.MergeSlices(windows, s.Approx)
	if err != nil {
		return Result{}, err
	}
	res := []system.RunResult{merged}
	timing := &obs.JobTiming{Shards: len(sub), Cached: true}
	for _, r := range sub {
		if r.Timing == nil {
			timing.Cached = false
			continue
		}
		timing.ShardWallNanos += r.Timing.WallNanos
		if span := r.Timing.QueueNanos + r.Timing.WallNanos; span > timing.WallNanos {
			timing.WallNanos = span
		}
		timing.Phases = timing.Phases.Add(r.Timing.Phases)
		timing.Cached = timing.Cached && r.Timing.Cached
	}
	if s.Cache != nil && !s.Approx {
		if err := s.Cache.Put(j, res); err != nil {
			return Result{}, fmt.Errorf("cache put: %w", err)
		}
	}
	return Result{Job: j, Results: res, Cached: timing.Cached, Timing: timing}, nil
}
