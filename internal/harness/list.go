package harness

import (
	"fmt"
	"io"
	"strings"

	"vbi/internal/system"
	"vbi/internal/workloads"
)

// The Write*List helpers render the registry-backed sections of the CLIs'
// -list output, so vbisim and vbisweep cannot drift apart on spelling or
// formatting.

// WriteSpecList lists the registered system specs with their overlays.
func WriteSpecList(w io.Writer) {
	fmt.Fprintln(w, "systems (registered specs; base + parameter overlay):")
	for _, s := range system.Specs() {
		if s.Params.IsZero() {
			fmt.Fprintf(w, "  %s\n", s.Name)
		} else {
			fmt.Fprintf(w, "  %-14s = %s[%s]\n", s.Name, s.Base, s.Params)
		}
	}
}

// WriteBundleList lists the predefined Table 2 multiprogrammed bundles
// with their per-core workloads (the -bundle axis; inline bundles are
// defined as name=app1+app2+...).
func WriteBundleList(w io.Writer) {
	fmt.Fprintln(w, "bundles (-bundle name or name=app1+app2+...):")
	for _, n := range workloads.BundleNames {
		fmt.Fprintf(w, "  %-5s %s\n", n, strings.Join(workloads.Bundles[n], "+"))
	}
}

// WriteHeteroList lists the heterogeneous memories and placement policies.
func WriteHeteroList(w io.Writer) {
	fmt.Fprintln(w, "hetero memories (-hetero):")
	for _, m := range system.HeteroMems() {
		fmt.Fprintf(w, "  %s\n", m)
	}
	fmt.Fprintln(w, "policies:")
	for _, p := range system.Policies() {
		fmt.Fprintf(w, "  %s\n", p)
	}
}

// WriteParamList lists every sweepable parameter with its Table 1 default.
func WriteParamList(w io.Writer) {
	fmt.Fprintln(w, "parameters (-param name=value[,value...]; default in parentheses):")
	defaults := system.DefaultParams()
	for _, name := range system.ParamNames() {
		v, _ := defaults.Get(name)
		fmt.Fprintf(w, "  %-20s (%d) %s\n", name, v, system.ParamDoc(name))
	}
}
