package harness

import (
	"context"
	"encoding/json"
	"testing"

	"vbi/internal/system"
)

func mustResultsJSON(t *testing.T, res []Result) string {
	t.Helper()
	out := make([][]system.RunResult, len(res))
	for i, r := range res {
		out[i] = r.Results
	}
	b, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestJobShardsExactByteIdentical proves the wrapper's contract over the
// local Runner: a mixed batch (single-core jobs across runner families, a
// multiprogrammed bundle, a hetero job) decomposed 3-way folds back to
// exactly the bytes a plain Runner produces.
func TestJobShardsExactByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the batch twice plus slices; skipped in -short")
	}
	jobs := []Job{
		{Spec: system.MustSpec("Native"), Workloads: []string{"namd"}, Refs: 6_000},
		{Spec: system.MustSpec("VBI-Full"), Workloads: []string{"mcf"}, Refs: 6_000},
		{Spec: system.MustSpec("VBI-2"), Workloads: []string{"namd", "sjeng"}, Refs: 4_000},
		{Workloads: []string{"mcf"}, Refs: 6_000, HeteroMem: "PCM-DRAM", Policy: "VBI"},
	}
	plain := &Runner{Workers: 2}
	want, err := plain.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	sharded := &JobShards{Inner: &Runner{Workers: 2}, K: 3}
	got, err := sharded.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if g, w := mustResultsJSON(t, got), mustResultsJSON(t, want); g != w {
		t.Errorf("sharded batch diverged from plain runner\n got %s\nwant %s", g, w)
	}
	for i, r := range got {
		if r.Timing == nil {
			t.Fatalf("job %d missing timing", i)
		}
		if len(jobs[i].Workloads) == 1 && r.Timing.Shards != 3 {
			t.Errorf("job %d: Shards = %d, want 3", i, r.Timing.Shards)
		}
	}
}

// TestJobShardsWarmsParentCache checks that an exact sharded run stores
// the merged result under the parent job's key, so a later serial run is
// a cache hit — and that a pre-existing parent entry short-circuits the
// expansion entirely.
func TestJobShardsWarmsParentCache(t *testing.T) {
	cache := &Cache{Dir: t.TempDir()}
	jobs := []Job{{Spec: system.MustSpec("Native"), Workloads: []string{"namd"}, Refs: 4_000}}
	sharded := &JobShards{Inner: &Runner{Workers: 2}, K: 2, Cache: cache}
	first, err := sharded.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	plain := &Runner{Workers: 1, Cache: cache}
	second, err := plain.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !second[0].Cached {
		t.Error("serial run after sharded run missed the parent cache")
	}
	if g, w := mustResultsJSON(t, second), mustResultsJSON(t, first); g != w {
		t.Errorf("cached result differs from sharded merge\n got %s\nwant %s", g, w)
	}
	again, err := sharded.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if mustResultsJSON(t, again) != mustResultsJSON(t, first) {
		t.Error("parent-cache hit on re-shard differs from first run")
	}
	if !again[0].Cached || again[0].Timing == nil || !again[0].Timing.Cached {
		t.Error("re-sharded run should be a parent-cache hit")
	}
}

// TestJobShardsApprox checks the sampled mode: the merged result carries
// the confidence-interval counter, lands near the exact IPC, and never
// pollutes the parent cache with an estimate.
func TestJobShardsApprox(t *testing.T) {
	cache := &Cache{Dir: t.TempDir()}
	jobs := []Job{{Spec: system.MustSpec("VBI-2"), Workloads: []string{"mcf"}, Refs: 8_000}}
	plain := &Runner{Workers: 1}
	exact, err := plain.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	approx := &JobShards{Inner: &Runner{Workers: 2}, K: 4, Approx: true, Cache: cache}
	got, err := approx.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	merged := got[0].Results[0]
	if _, ok := merged.Extra[system.ShardIPCErrKey]; !ok {
		t.Fatalf("approx merge missing %s", system.ShardIPCErrKey)
	}
	serial := exact[0].Results[0]
	if merged.IPC < serial.IPC/2 || merged.IPC > serial.IPC*2 {
		t.Errorf("approx IPC %.4f wildly off exact %.4f", merged.IPC, serial.IPC)
	}
	if _, ok := cache.Get(jobs[0]); ok {
		t.Error("approx run cached under the parent (exact) key")
	}
}

// TestJobShardsMinRefs pins the pass-through path: jobs below MinRefs run
// whole, and the wrapper's output still matches the plain runner.
func TestJobShardsMinRefs(t *testing.T) {
	jobs := []Job{{Spec: system.MustSpec("Native"), Workloads: []string{"namd"}, Refs: 2_000}}
	sharded := &JobShards{Inner: &Runner{Workers: 1}, K: 4, MinRefs: 100_000}
	got, err := sharded.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Timing != nil && got[0].Timing.Shards > 1 {
		t.Errorf("job below MinRefs was decomposed into %d shards", got[0].Timing.Shards)
	}
	plain := &Runner{Workers: 1}
	want, err := plain.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if g, w := mustResultsJSON(t, got), mustResultsJSON(t, want); g != w {
		t.Errorf("pass-through job diverged\n got %s\nwant %s", g, w)
	}
}
