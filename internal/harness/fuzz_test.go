package harness

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"vbi/internal/system"
)

// fuzzJob builds a Job from raw fuzz inputs. It deliberately does not
// validate: the cache key must be well-defined (stable and injective) for
// any job the marshaller accepts, not only runnable ones, because Key is
// computed before Validate in some paths (cache tooling, wire decoding).
// A non-empty spec name or base materializes an inline (possibly
// unregistered) spec, exercising the v3 self-describing schema: the spec
// — base kind and materialized overlay included — is part of the
// canonical JSON the key hashes.
func fuzzJob(specName, base, wls string, refs, warmup int, seed uint64, het, pol string,
	uniform bool, paramIdx, paramVal, specParamIdx, specParamVal int) Job {
	var workloads []string
	for _, w := range strings.Split(wls, ",") {
		if w != "" {
			workloads = append(workloads, w)
		}
	}
	j := Job{
		Workloads: workloads, Refs: refs, Warmup: warmup,
		Seed: seed, HeteroMem: het, Policy: pol, UniformTables: uniform,
	}
	names := system.ParamNames()
	if specName != "" || base != "" || specParamVal > 0 {
		spec := &system.Spec{Name: specName, Base: base}
		if specParamIdx >= 0 && specParamVal > 0 {
			spec.Params.Set(names[specParamIdx%len(names)], specParamVal)
		}
		j.Spec = spec
	}
	if paramIdx >= 0 && paramVal > 0 {
		j.Params.Set(names[paramIdx%len(names)], paramVal)
	}
	return j
}

// FuzzJobKey fuzzes the result-cache key over pairs of jobs: the key must
// be a pure, stable function of the canonical job JSON — equal JSON means
// equal key, distinct JSON means distinct key — because that equivalence
// is what makes the on-disk cache sound (a hit can never serve a
// different experiment) and what keeps the dist wire format and the cache
// from drifting apart (both hash the same canonical bytes).
func FuzzJobKey(f *testing.F) {
	f.Add("Native", "Native", "mcf", 1000, 0, uint64(1), "", "", false, -1, 0, -1, 0,
		"Native", "Native", "mcf", 1000, 0, uint64(1), "", "", false, -1, 0, -1, 0)
	// Bundle order is significant: one core per workload, so a permuted
	// bundle is a different experiment and must key differently.
	f.Add("VBI-Full", "VBI-Full", "mcf,graph500", 1000, 0, uint64(1), "", "", false, -1, 0, -1, 0,
		"VBI-Full", "VBI-Full", "graph500,mcf", 1000, 0, uint64(1), "", "", false, -1, 0, -1, 0)
	// Hetero jobs and param overlays.
	f.Add("", "", "sphinx3", 1000, 500, uint64(2), "PCM-DRAM", "VBI", false, -1, 0, -1, 0,
		"", "", "sphinx3", 1000, 500, uint64(2), "TL-DRAM", "VBI", false, -1, 0, -1, 0)
	f.Add("Native", "Native", "namd", 5000, 0, uint64(1), "", "", false, 0, 512, -1, 0,
		"Native", "Native", "namd", 5000, 0, uint64(1), "", "", false, 1, 512, -1, 0)
	// Zero-value neighbors: Refs 0 (default) vs explicit 0-adjacent values.
	f.Add("Native", "Native", "namd", 0, 0, uint64(0), "", "", false, -1, 0, -1, 0,
		"Native", "Native", "namd", 1, 0, uint64(0), "", "", false, -1, 0, -1, 0)
	// v3 self-describing specs: same name over a different materialized
	// overlay (the shape of two processes binding one variant name to
	// different definitions) and spec-level vs job-level overlays of the
	// same parameter must all key apart.
	f.Add("Native-128TLB", "Native", "namd", 5000, 0, uint64(1), "", "", false, -1, 0, 2, 128,
		"Native-128TLB", "Native", "namd", 5000, 0, uint64(1), "", "", false, -1, 0, 2, 256)
	f.Add("Native-128TLB", "Native", "namd", 5000, 0, uint64(1), "", "", false, 2, 128, -1, 0,
		"Native-128TLB", "Native", "namd", 5000, 0, uint64(1), "", "", false, -1, 0, 2, 128)

	f.Fuzz(func(t *testing.T,
		name1, base1, wls1 string, refs1, warmup1 int, seed1 uint64, het1, pol1 string, uni1 bool, pIdx1, pVal1, sIdx1, sVal1 int,
		name2, base2, wls2 string, refs2, warmup2 int, seed2 uint64, het2, pol2 string, uni2 bool, pIdx2, pVal2, sIdx2, sVal2 int) {
		j1 := fuzzJob(name1, base1, wls1, refs1, warmup1, seed1, het1, pol1, uni1, pIdx1, pVal1, sIdx1, sVal1)
		j2 := fuzzJob(name2, base2, wls2, refs2, warmup2, seed2, het2, pol2, uni2, pIdx2, pVal2, sIdx2, sVal2)
		c := &Cache{}

		// Stability: the key is a pure function — recomputing it cannot
		// drift (this is what lets concurrent sweeps share a directory).
		k1, k2 := c.Key(j1), c.Key(j2)
		if again := c.Key(j1); again != k1 {
			t.Fatalf("Key not stable: %s then %s for %+v", k1, again, j1)
		}

		// Injectivity/identity: keys agree exactly when the canonical JSON
		// does. Marshal cannot fail for plain-data jobs.
		b1, err := json.Marshal(j1)
		if err != nil {
			t.Fatal(err)
		}
		b2, err := json.Marshal(j2)
		if err != nil {
			t.Fatal(err)
		}
		if same := bytes.Equal(b1, b2); same != (k1 == k2) {
			t.Fatalf("key equality diverged from canonical JSON equality:\njson1=%s\njson2=%s\nkey1=%s key2=%s",
				b1, b2, k1, k2)
		}
	})
}

// TestJobKeyParamOrderInsensitive pins the overlay-order half of the key
// contract directly: setting the same parameter overlays in different
// orders yields the same Job, the same canonical JSON, and the same key.
func TestJobKeyParamOrderInsensitive(t *testing.T) {
	names := system.ParamNames()
	if len(names) < 2 {
		t.Skip("need two parameters")
	}
	a, b := names[0], names[1]
	mk := func(first, second string) Job {
		j := Job{Spec: system.MustSpec("Native"), Workloads: []string{"mcf"}, Refs: 1000}
		if err := j.Params.Set(first, 128); err != nil {
			t.Fatal(err)
		}
		if err := j.Params.Set(second, 256); err != nil {
			t.Fatal(err)
		}
		return j
	}
	// Same (name, value) pairs, set in both orders.
	j1 := mk(a, b)
	j2 := Job{Spec: system.MustSpec("Native"), Workloads: []string{"mcf"}, Refs: 1000}
	if err := j2.Params.Set(b, 256); err != nil {
		t.Fatal(err)
	}
	if err := j2.Params.Set(a, 128); err != nil {
		t.Fatal(err)
	}
	c := &Cache{}
	if c.Key(j1) != c.Key(j2) {
		t.Errorf("overlay set order changed the cache key")
	}
}

// TestJobKeyBundleOrderSensitive pins the bundle-order half: a permuted
// multiprogrammed bundle assigns workloads to different cores, which is a
// different experiment and must miss, not hit.
func TestJobKeyBundleOrderSensitive(t *testing.T) {
	c := &Cache{}
	j1 := Job{Spec: system.MustSpec("Native"), Workloads: []string{"mcf", "graph500"}, Refs: 1000}
	j2 := Job{Spec: system.MustSpec("Native"), Workloads: []string{"graph500", "mcf"}, Refs: 1000}
	if c.Key(j1) == c.Key(j2) {
		t.Errorf("permuted bundle produced the same cache key")
	}
}

// TestJobKeySurvivesJSONRoundTrip pins the v3 self-describing contract:
// marshalling a job and unmarshalling it back — the exact trip a job
// takes over the dist wire and into a cache entry — reproduces the
// canonical JSON and the cache key byte for byte, including jobs whose
// resolved spec carries a non-zero parameter overlay on top of which a
// job-level overlay sits.
func TestJobKeySurvivesJSONRoundTrip(t *testing.T) {
	jobs := []Job{
		{Spec: system.MustSpec("Native"), Workloads: []string{"namd"}, Refs: 1000, Seed: 1},
		{Spec: &system.Spec{Name: "RoundTrip-Variant", Base: "VBI-Full",
			Params: system.Params{L2TLBEntries: 256, PWCEntries: 64}},
			Workloads: []string{"mcf", "graph500"}, Refs: 2000, Seed: 3,
			Params: system.Params{L2TLBLatency: 9}},
		{Workloads: []string{"sphinx3"}, HeteroMem: "PCM-DRAM", Policy: "VBI", Refs: 1500},
	}
	c := &Cache{}
	for _, j := range jobs {
		b, err := json.Marshal(j)
		if err != nil {
			t.Fatalf("%s: marshal: %v", j.Describe(), err)
		}
		var back Job
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("%s: unmarshal %s: %v", j.Describe(), b, err)
		}
		b2, err := json.Marshal(back)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b, b2) {
			t.Errorf("%s: canonical JSON changed across a round trip:\nbefore: %s\nafter:  %s",
				j.Describe(), b, b2)
		}
		if c.Key(j) != c.Key(back) {
			t.Errorf("%s: cache key changed across a JSON round trip", j.Describe())
		}
	}
}
