package harness

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"vbi/internal/system"
)

// fuzzJob builds a Job from raw fuzz inputs. It deliberately does not
// validate: the cache key must be well-defined (stable and injective) for
// any job the marshaller accepts, not only runnable ones, because Key is
// computed before Validate in some paths (cache tooling, wire decoding).
func fuzzJob(sys, wls string, refs, warmup int, seed uint64, het, pol string,
	uniform bool, paramIdx, paramVal int) Job {
	var workloads []string
	for _, w := range strings.Split(wls, ",") {
		if w != "" {
			workloads = append(workloads, w)
		}
	}
	j := Job{
		System: sys, Workloads: workloads, Refs: refs, Warmup: warmup,
		Seed: seed, HeteroMem: het, Policy: pol, UniformTables: uniform,
	}
	names := system.ParamNames()
	if paramIdx >= 0 && paramVal > 0 {
		j.Params.Set(names[paramIdx%len(names)], paramVal)
	}
	return j
}

// FuzzJobKey fuzzes the result-cache key over pairs of jobs: the key must
// be a pure, stable function of the canonical job JSON — equal JSON means
// equal key, distinct JSON means distinct key — because that equivalence
// is what makes the on-disk cache sound (a hit can never serve a
// different experiment) and what keeps the dist wire format and the cache
// from drifting apart (both hash the same canonical bytes).
func FuzzJobKey(f *testing.F) {
	f.Add("Native", "mcf", 1000, 0, uint64(1), "", "", false, -1, 0,
		"Native", "mcf", 1000, 0, uint64(1), "", "", false, -1, 0)
	// Bundle order is significant: one core per workload, so a permuted
	// bundle is a different experiment and must key differently.
	f.Add("VBI-Full", "mcf,graph500", 1000, 0, uint64(1), "", "", false, -1, 0,
		"VBI-Full", "graph500,mcf", 1000, 0, uint64(1), "", "", false, -1, 0)
	// Hetero jobs and param overlays.
	f.Add("", "sphinx3", 1000, 500, uint64(2), "PCM-DRAM", "VBI", false, -1, 0,
		"", "sphinx3", 1000, 500, uint64(2), "TL-DRAM", "VBI", false, -1, 0)
	f.Add("Native", "namd", 5000, 0, uint64(1), "", "", false, 0, 512,
		"Native", "namd", 5000, 0, uint64(1), "", "", false, 1, 512)
	// Zero-value neighbors: Refs 0 (default) vs explicit 0-adjacent values.
	f.Add("Native", "namd", 0, 0, uint64(0), "", "", false, -1, 0,
		"Native", "namd", 1, 0, uint64(0), "", "", false, -1, 0)

	f.Fuzz(func(t *testing.T,
		sys1, wls1 string, refs1, warmup1 int, seed1 uint64, het1, pol1 string, uni1 bool, pIdx1, pVal1 int,
		sys2, wls2 string, refs2, warmup2 int, seed2 uint64, het2, pol2 string, uni2 bool, pIdx2, pVal2 int) {
		j1 := fuzzJob(sys1, wls1, refs1, warmup1, seed1, het1, pol1, uni1, pIdx1, pVal1)
		j2 := fuzzJob(sys2, wls2, refs2, warmup2, seed2, het2, pol2, uni2, pIdx2, pVal2)
		c := &Cache{}

		// Stability: the key is a pure function — recomputing it cannot
		// drift (this is what lets concurrent sweeps share a directory).
		k1, k2 := c.Key(j1), c.Key(j2)
		if again := c.Key(j1); again != k1 {
			t.Fatalf("Key not stable: %s then %s for %+v", k1, again, j1)
		}

		// Injectivity/identity: keys agree exactly when the canonical JSON
		// does. Marshal cannot fail for plain-data jobs.
		b1, err := json.Marshal(j1)
		if err != nil {
			t.Fatal(err)
		}
		b2, err := json.Marshal(j2)
		if err != nil {
			t.Fatal(err)
		}
		if same := bytes.Equal(b1, b2); same != (k1 == k2) {
			t.Fatalf("key equality diverged from canonical JSON equality:\njson1=%s\njson2=%s\nkey1=%s key2=%s",
				b1, b2, k1, k2)
		}
	})
}

// TestJobKeyParamOrderInsensitive pins the overlay-order half of the key
// contract directly: setting the same parameter overlays in different
// orders yields the same Job, the same canonical JSON, and the same key.
func TestJobKeyParamOrderInsensitive(t *testing.T) {
	names := system.ParamNames()
	if len(names) < 2 {
		t.Skip("need two parameters")
	}
	a, b := names[0], names[1]
	mk := func(first, second string) Job {
		j := Job{System: "Native", Workloads: []string{"mcf"}, Refs: 1000}
		if err := j.Params.Set(first, 128); err != nil {
			t.Fatal(err)
		}
		if err := j.Params.Set(second, 256); err != nil {
			t.Fatal(err)
		}
		return j
	}
	// Same (name, value) pairs, set in both orders.
	j1 := mk(a, b)
	j2 := Job{System: "Native", Workloads: []string{"mcf"}, Refs: 1000}
	if err := j2.Params.Set(b, 256); err != nil {
		t.Fatal(err)
	}
	if err := j2.Params.Set(a, 128); err != nil {
		t.Fatal(err)
	}
	c := &Cache{}
	if c.Key(j1) != c.Key(j2) {
		t.Errorf("overlay set order changed the cache key")
	}
}

// TestJobKeyBundleOrderSensitive pins the bundle-order half: a permuted
// multiprogrammed bundle assigns workloads to different cores, which is a
// different experiment and must miss, not hit.
func TestJobKeyBundleOrderSensitive(t *testing.T) {
	c := &Cache{}
	j1 := Job{System: "Native", Workloads: []string{"mcf", "graph500"}, Refs: 1000}
	j2 := Job{System: "Native", Workloads: []string{"graph500", "mcf"}, Refs: 1000}
	if c.Key(j1) == c.Key(j2) {
		t.Errorf("permuted bundle produced the same cache key")
	}
}
