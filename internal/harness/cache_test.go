package harness

import (
	"context"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"vbi/internal/system"
)

// cacheWithEntry returns a cache holding one real entry for job, plus the
// entry's file path.
func cacheWithEntry(t *testing.T, job Job) (*Cache, string) {
	t.Helper()
	c := &Cache{Dir: t.TempDir()}
	if err := c.Put(job, []system.RunResult{{System: job.Spec.Name, IPC: 1.5}}); err != nil {
		t.Fatal(err)
	}
	path := c.path(c.Key(job))
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("entry file missing: %v", err)
	}
	return c, path
}

var cacheJob = Job{Spec: system.MustSpec("Native"), Workloads: []string{"namd"}, Refs: 1000, Seed: 1}

// TestCacheTruncatedEntryMisses asserts a partially written / truncated
// entry file reads as a miss, not a crash or a bogus hit.
func TestCacheTruncatedEntryMisses(t *testing.T) {
	c, path := cacheWithEntry(t, cacheJob)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(cacheJob); ok {
		t.Error("truncated entry served as a hit")
	}
}

// TestCacheCorruptEntryMisses asserts a non-JSON entry file reads as a
// miss.
func TestCacheCorruptEntryMisses(t *testing.T) {
	c, path := cacheWithEntry(t, cacheJob)
	if err := os.WriteFile(path, []byte("not json at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(cacheJob); ok {
		t.Error("corrupt entry served as a hit")
	}
}

// TestCacheSpecMismatchMisses asserts an entry whose embedded job spec
// does not round-trip to the requested one (hash collision, hand-edited
// file, entry copied to the wrong key) reads as a miss.
func TestCacheSpecMismatchMisses(t *testing.T) {
	c, path := cacheWithEntry(t, cacheJob)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Swap the stored spec for a different job, keeping version and
	// results intact — exactly what a collision would look like.
	var e struct {
		Version string             `json:"version"`
		Job     Job                `json:"job"`
		Results []system.RunResult `json:"results"`
	}
	if err := json.Unmarshal(b, &e); err != nil {
		t.Fatal(err)
	}
	e.Job.Refs = 2000
	nb, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, nb, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(cacheJob); ok {
		t.Error("entry with a mismatched spec served as a hit")
	}
}

// TestCacheVersionInvalidation asserts a schema-version bump turns every
// prior entry into a miss, that Stats reports the stale entries, and that
// Prune reclaims them (and only them).
func TestCacheVersionInvalidation(t *testing.T) {
	c, path := cacheWithEntry(t, cacheJob)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	stale := strings.Replace(string(b), Version, "vbi-harness-v1", 1)
	if stale == string(b) {
		t.Fatal("entry does not embed the version string")
	}
	if err := os.WriteFile(path, []byte(stale), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(cacheJob); ok {
		t.Error("stale-version entry served as a hit")
	}

	// Add a current entry and a corrupt file; Stats must bucket all three.
	current := Job{Spec: system.MustSpec("VBI-Full"), Workloads: []string{"namd"}, Refs: 1000}
	if err := c.Put(current, []system.RunResult{{System: "VBI-Full", IPC: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(c.path(strings.Repeat("ff", 32)), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 3 || st.Bytes == 0 {
		t.Errorf("stats = %+v, want 3 entries with non-zero bytes", st)
	}
	want := map[string]int{Version: 1, "vbi-harness-v1": 1, "corrupt": 1}
	for v, n := range want {
		if st.Versions[v] != n {
			t.Errorf("stats.Versions[%q] = %d, want %d (all: %v)", v, st.Versions[v], n, st.Versions)
		}
	}

	removed, err := c.Prune(Version)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Errorf("Prune removed %d files, want 2 (stale + corrupt)", removed)
	}
	st, err = c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Entries != 1 || st.Versions[Version] != 1 {
		t.Errorf("post-prune stats = %+v, want only the current entry", st)
	}
	if _, ok := c.Get(current); !ok {
		t.Error("Prune removed the current-version entry")
	}
}

// TestRunnerContextCancel asserts the pool honors cancellation: a
// cancelled batch returns ctx.Err(), and cancellation mid-run skips the
// queued jobs while letting in-flight ones finish (their results still
// land in the cache for the next invocation).
func TestRunnerContextCancel(t *testing.T) {
	jobs := make([]Job, 6)
	for i := range jobs {
		jobs[i] = Job{Spec: system.MustSpec("Native"), Workloads: []string{"namd"},
			Refs: 2_000, Seed: uint64(i + 1)}
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := (&Runner{Workers: 2}).Run(ctx, jobs); err != context.Canceled {
		t.Fatalf("pre-cancelled run: err = %v, want context.Canceled", err)
	}

	// Cancel after the first completed job: the batch must fail with
	// ctx.Err(), but whatever finished before the cancel is cached.
	cache := &Cache{Dir: t.TempDir()}
	ctx, cancel = context.WithCancel(context.Background())
	defer cancel()
	r := &Runner{Workers: 1, Cache: cache, Progress: writerFunc(func(p []byte) (int, error) {
		cancel() // fires on the first progress line
		return len(p), nil
	})}
	if _, err := r.Run(ctx, jobs); err != context.Canceled {
		t.Fatalf("mid-run cancel: err = %v, want context.Canceled", err)
	}
	n, err := cache.Len()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("no in-flight job completed into the cache before cancel")
	}
	if n == len(jobs) {
		t.Error("every job ran despite the cancel")
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }
