package harness

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"

	"vbi/internal/system"
)

// testGrid is a small (2 systems × 2 workloads × 2 seeds) sweep, cheap
// enough to run twice at several worker counts.
var testGrid = Grid{
	Systems:   []string{"Native", "VBI-Full"},
	Workloads: []string{"namd", "sjeng"},
	Seeds:     []uint64{1, 2},
	Refs:      8_000,
}

// TestParallelMatchesSerial asserts the harness's core guarantee: a
// parallel run renders the exact same stats.Table output as workers=1.
func TestParallelMatchesSerial(t *testing.T) {
	jobs, err := testGrid.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	serial, err := (&Runner{Workers: 1}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := (&Runner{Workers: 8}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	// Elapsed and Timing are wall-clock bookkeeping (json:"-", excluded
	// from the cache and the deterministic result bytes), so they are
	// outside the determinism contract.
	stripElapsed := func(rs []Result) []Result {
		out := make([]Result, len(rs))
		for i, r := range rs {
			r.Elapsed = 0
			r.Timing = nil
			out[i] = r
		}
		return out
	}
	if !reflect.DeepEqual(stripElapsed(serial), stripElapsed(parallel)) {
		t.Error("workers=8 results differ from workers=1")
	}
	for _, metric := range []string{MetricIPC, MetricDRAM} {
		st, err := testGrid.Matrix(serial, metric)
		if err != nil {
			t.Fatal(err)
		}
		pt, err := testGrid.Matrix(parallel, metric)
		if err != nil {
			t.Fatal(err)
		}
		if st.Render() != pt.Render() {
			t.Errorf("%s matrix differs:\nserial:\n%s\nparallel:\n%s",
				metric, st.Render(), pt.Render())
		}
	}
}

// TestCacheServesSecondRun asserts that a re-run of an identical grid is
// served entirely from the result cache, with identical output.
func TestCacheServesSecondRun(t *testing.T) {
	jobs, err := testGrid.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	cache := &Cache{Dir: t.TempDir()}
	first, err := (&Runner{Workers: 4, Cache: cache}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range first {
		if r.Cached {
			t.Errorf("job %d served from cache on a cold run", i)
		}
	}
	if n, err := cache.Len(); err != nil || n != len(jobs) {
		t.Errorf("cache holds %d entries (err=%v), want %d", n, err, len(jobs))
	}

	second, err := (&Runner{Workers: 4, Cache: cache}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range second {
		if !r.Cached {
			t.Errorf("job %d re-simulated despite a warm cache", i)
		}
		if !reflect.DeepEqual(first[i].Results, r.Results) {
			t.Errorf("job %d: cached results differ from simulated", i)
		}
	}
	ft, err := testGrid.Matrix(first, MetricIPC)
	if err != nil {
		t.Fatal(err)
	}
	st, err := testGrid.Matrix(second, MetricIPC)
	if err != nil {
		t.Fatal(err)
	}
	if ft.Render() != st.Render() {
		t.Error("cached matrix render differs from simulated")
	}
}

// TestCacheKeySensitivity asserts distinct jobs get distinct keys and a
// changed spec misses.
func TestCacheKeySensitivity(t *testing.T) {
	c := &Cache{Dir: t.TempDir()}
	base := Job{Spec: system.MustSpec("Native"), Workloads: []string{"namd"}, Refs: 1000, Seed: 1}
	variants := []Job{
		{Spec: system.MustSpec("VBI-Full"), Workloads: []string{"namd"}, Refs: 1000, Seed: 1},
		{Spec: system.MustSpec("Native"), Workloads: []string{"sjeng"}, Refs: 1000, Seed: 1},
		{Spec: system.MustSpec("Native"), Workloads: []string{"namd"}, Refs: 2000, Seed: 1},
		{Spec: system.MustSpec("Native"), Workloads: []string{"namd"}, Refs: 1000, Seed: 2},
		{Spec: system.MustSpec("Native"), Workloads: []string{"namd"}, Refs: 1000, Seed: 1, UniformTables: true},
		{Workloads: []string{"namd"}, Refs: 1000, Seed: 1, HeteroMem: "PCM-DRAM", Policy: "VBI"},
	}
	keys := map[string]bool{c.Key(base): true}
	for _, v := range variants {
		k := c.Key(v)
		if keys[k] {
			t.Errorf("job %+v collides with an earlier key", v)
		}
		keys[k] = true
	}
	if err := c.Put(base, []system.RunResult{{System: "Native", IPC: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(base); !ok {
		t.Error("stored job missed")
	}
	for _, v := range variants {
		if _, ok := c.Get(v); ok {
			t.Errorf("job %+v hit the cache entry of a different spec", v)
		}
	}
}

// TestJobKinds smoke-tests the three job shapes through one runner batch.
func TestJobKinds(t *testing.T) {
	jobs := []Job{
		{Spec: system.MustSpec("VBI-2"), Workloads: []string{"namd"}, Refs: 5_000},
		{Spec: system.MustSpec("Native"), Workloads: []string{"namd", "sjeng"}, Refs: 2_000},
		{Workloads: []string{"namd"}, Refs: 5_000, HeteroMem: "TL-DRAM", Policy: "IDEAL"},
	}
	results, err := (&Runner{Workers: 2}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results[0].Results) != 1 || results[0].Results[0].System != "VBI-2" {
		t.Errorf("single-core job: got %+v", results[0].Results)
	}
	if len(results[1].Results) != 2 {
		t.Errorf("multicore job returned %d per-core results, want 2", len(results[1].Results))
	}
	if len(results[2].Results) != 1 || !strings.Contains(results[2].Results[0].System, "TL-DRAM") {
		t.Errorf("hetero job: got %+v", results[2].Results)
	}
	for i, r := range results {
		for _, rr := range r.Results {
			if rr.IPC <= 0 {
				t.Errorf("job %d: non-positive IPC %f", i, rr.IPC)
			}
		}
	}
}

// TestValidation asserts bad specs fail before any simulation.
func TestValidation(t *testing.T) {
	bad := []Job{
		{Spec: system.MustSpec("Native")}, // no workloads
		{Workloads: []string{"namd"}},     // neither Spec nor HeteroMem
		{Spec: &system.Spec{Name: "NotASystem", Base: "NotASystem"},
			Workloads: []string{"namd"}}, // unknown base kind
		{Spec: &system.Spec{Base: "Native"}, Workloads: []string{"namd"}}, // nameless spec
		{Spec: system.MustSpec("Native"), Workloads: []string{"nope"}},    // unknown workload
		{Workloads: []string{"namd"}, HeteroMem: "XX-RAM"},                // unknown memory
		{Workloads: []string{"namd"}, HeteroMem: "PCM-DRAM"},              // missing policy
		{Workloads: []string{"a", "b"}, HeteroMem: "PCM-DRAM"},            // hetero multicore
		// A hetero job carrying a system spec used to be silently ignored
		// (the run is always VBI-2); it must now be a validation error.
		{Spec: system.MustSpec("Native"), Workloads: []string{"namd"}, HeteroMem: "PCM-DRAM", Policy: "VBI"},
		// Geometry the cache/TLB constructors would panic on.
		{Spec: system.MustSpec("Native"), Workloads: []string{"namd"},
			Params: system.Params{L2TLBEntries: 100}},
		{Spec: system.MustSpec("Native"), Workloads: []string{"namd"},
			Params: system.Params{L1Size: 1000}},
	}
	for _, j := range bad {
		if err := j.Validate(); err == nil {
			t.Errorf("job %+v validated", j)
		}
		if _, err := (&Runner{}).Run(context.Background(), []Job{j}); err == nil {
			t.Errorf("runner accepted job %+v", j)
		}
	}
	if _, err := (Grid{Systems: []string{"Native"}}).Jobs(); err == nil {
		t.Error("grid with no workloads expanded")
	}
	if _, err := (Grid{Systems: []string{"Nope"}, Workloads: []string{"namd"}}).Jobs(); err == nil {
		t.Error("grid with unknown system expanded")
	}
	if _, err := (Grid{Systems: []string{"Native"}, HeteroMems: []string{"PCM-DRAM"},
		Workloads: []string{"namd"}}).Jobs(); err == nil {
		t.Error("grid with both systems and hetero_mems expanded")
	}
	if _, err := (Grid{Systems: []string{"Native"}, Workloads: []string{"namd"},
		Params: map[string][]int{"no_such_param": {1}}}).Jobs(); err == nil {
		t.Error("grid with unknown parameter axis expanded")
	}
	// Duplicate axis entries would misalign Matrix rows against series.
	if _, err := (Grid{Systems: []string{"Native"}, Workloads: []string{"namd", "namd"}}).Jobs(); err == nil {
		t.Error("grid with a duplicate workload expanded")
	}
	if _, err := (Grid{Systems: []string{"Native", "Native"}, Workloads: []string{"namd"}}).Jobs(); err == nil {
		t.Error("grid with a duplicate system expanded")
	}
	if _, err := (Grid{Systems: []string{"Native"}, Workloads: []string{"namd"},
		Params: map[string][]int{"pwc_entries": {16, 16}}}).Jobs(); err == nil {
		t.Error("grid with duplicate parameter-axis values expanded")
	}
	if _, err := (Grid{Systems: []string{"Native"}, Workloads: []string{"namd"},
		Refs: 1000, RefsAxis: []int{2000}}).Jobs(); err == nil {
		t.Error("grid with both refs and refs_axis expanded")
	}
	if err := ValidateMetric("watts"); err == nil {
		t.Error("ValidateMetric accepted an unknown metric")
	}
	for _, m := range Metrics() {
		if err := ValidateMetric(m); err != nil {
			t.Errorf("ValidateMetric(%q): %v", m, err)
		}
	}
}

// TestParseKindRoundTrips pins the name resolution the CLIs depend on
// (now provided by the system spec registry).
func TestParseKindRoundTrips(t *testing.T) {
	kinds := system.Kinds()
	if len(kinds) != 10 {
		t.Fatalf("system.Kinds() returned %d kinds, want 10", len(kinds))
	}
	for _, k := range kinds {
		got, err := system.ParseKind(k.String())
		if err != nil {
			t.Errorf("ParseKind(%q): %v", k, err)
		}
		if got != k {
			t.Errorf("ParseKind(%q) = %v", k, got)
		}
		if got, err := system.ParseKind(strings.ToLower(k.String())); err != nil || got != k {
			t.Errorf("ParseKind is not case-insensitive for %q", k)
		}
	}
	if _, err := system.ParseKind("Kind(99)"); err == nil {
		t.Error("ParseKind accepted a sentinel name")
	}
}

// TestRunnerProgress asserts progress lines mark cached runs.
func TestRunnerProgress(t *testing.T) {
	job := Job{Spec: system.MustSpec("Native"), Workloads: []string{"namd"}, Refs: 2_000}
	cache := &Cache{Dir: t.TempDir()}
	var cold, warm bytes.Buffer
	if _, err := (&Runner{Workers: 1, Cache: cache, Progress: &cold}).Run(context.Background(), []Job{job}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(cold.String(), "[cache]") {
		t.Errorf("cold run logged a cache hit: %q", cold.String())
	}
	if _, err := (&Runner{Workers: 1, Cache: cache, Progress: &warm}).Run(context.Background(), []Job{job}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(warm.String(), "[cache]") {
		t.Errorf("warm run did not log a cache hit: %q", warm.String())
	}
	hits, misses := cache.Counters()
	if hits != 1 || misses != 1 {
		t.Errorf("cache stats hits=%d misses=%d, want 1/1", hits, misses)
	}
}
