package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vbi/internal/harness"
)

func postRegister(t *testing.T, url string, body RegisterRequest, token string) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+PathRegister, bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	setAuth(req, token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestRegistryRegisterHTTP pins the /register contract: a valid join is
// accepted (with the heartbeat interval announced), an unspecified host in
// the advertised address is filled from the connection's source, and a
// version mismatch is refused with 412.
func TestRegistryRegisterHTTP(t *testing.T) {
	reg := &Registry{TTL: time.Minute}
	srv := httptest.NewServer(reg.Handler())
	t.Cleanup(srv.Close)

	resp := postRegister(t, srv.URL, RegisterRequest{
		Version: ProtocolVersion, Workers: 3, Addr: ":9876", Instance: "i1"}, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("register status = %s, want 200", resp.Status)
	}
	var rr RegisterResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		t.Fatal(err)
	}
	if rr.Version != ProtocolVersion {
		t.Errorf("response version = %q, want %q", rr.Version, ProtocolVersion)
	}
	if want := time.Minute.Milliseconds() / 3; rr.HeartbeatMillis != want {
		t.Errorf("heartbeat = %dms, want %dms", rr.HeartbeatMillis, want)
	}
	live := reg.Live()
	if len(live) != 1 {
		t.Fatalf("Live() = %d members, want 1", len(live))
	}
	m := live[0]
	if m.Weight != 3 || m.Static || m.Instance != "i1" {
		t.Errorf("member = %+v, want weight 3, dynamic, instance i1", m)
	}
	// ":9876" has no host: it must have been derived from the loopback
	// connection, not registered verbatim.
	if !strings.HasPrefix(m.Base, "http://127.0.0.1:9876") {
		t.Errorf("member base = %q, want host derived from the registering connection", m.Base)
	}

	stale := postRegister(t, srv.URL, RegisterRequest{
		Version: "vbi-harness-v0", Workers: 1, Addr: ":1"}, "")
	if stale.StatusCode != http.StatusPreconditionFailed {
		t.Errorf("stale-version register status = %s, want 412", stale.Status)
	}
	if len(reg.Live()) != 1 {
		t.Errorf("stale worker joined the registry")
	}
}

// TestRegistryEviction asserts dead-worker detection: a dynamic member
// whose heartbeats stop is evicted after TTL, while a static member and a
// still-heartbeating member stay.
func TestRegistryEviction(t *testing.T) {
	reg := &Registry{TTL: 50 * time.Millisecond}
	reg.Add("10.0.0.1:1", 1, true, "")   // static: never expires
	reg.Add("10.0.0.2:1", 1, false, "a") // dynamic: will go silent
	reg.Add("10.0.0.3:1", 1, false, "b") // dynamic: keeps heartbeating

	deadline := time.Now().Add(2 * time.Second)
	for len(reg.Live()) == 3 && time.Now().Before(deadline) {
		reg.Add("10.0.0.3:1", 1, false, "b") // heartbeat
		time.Sleep(5 * time.Millisecond)
	}
	ids := map[string]bool{}
	for _, m := range reg.Live() {
		ids[m.ID] = true
	}
	if !ids["http://10.0.0.1:1"] || ids["http://10.0.0.2:1"] || !ids["http://10.0.0.3:1"] {
		t.Errorf("after silence: live = %v, want static + heartbeating only", ids)
	}
}

// TestRegistryQuarantine asserts the failure-drop semantics: after Remove,
// heartbeats from the same instance do not readmit the member, but a new
// instance (a restarted process) does immediately.
func TestRegistryQuarantine(t *testing.T) {
	reg := &Registry{TTL: time.Minute}
	reg.Add("10.0.0.9:1", 1, false, "inst1")
	reg.Remove("http://10.0.0.9:1")
	if n := len(reg.Live()); n != 0 {
		t.Fatalf("removed member still live (%d)", n)
	}
	reg.Add("10.0.0.9:1", 1, false, "inst1") // heartbeat from the wedged incarnation
	if n := len(reg.Live()); n != 0 {
		t.Errorf("quarantined member readmitted by its own heartbeat")
	}
	reg.Add("10.0.0.9:1", 1, false, "inst2") // restart
	if n := len(reg.Live()); n != 1 {
		t.Errorf("restarted member not readmitted (live = %d)", n)
	}
}

// TestRegistryStaticPreRegistrationKeepsQuarantine covers a worker that
// is both in the -remote list and joining dynamically: a static
// pre-registration (as each figure's Run performs) must neither erase
// the dynamic incarnation's instance nor lift an active quarantine, or
// the next routine heartbeat would be misread as a restart.
func TestRegistryStaticPreRegistrationKeepsQuarantine(t *testing.T) {
	reg := &Registry{TTL: time.Minute}
	reg.Add("10.0.0.9:1", 1, false, "inst1")
	reg.Remove("http://10.0.0.9:1") // dropped for failures: quarantined
	reg.Add("10.0.0.9:1", 1, true, "")
	if n := len(reg.Live()); n != 0 {
		t.Fatalf("static pre-registration lifted the quarantine (live = %d)", n)
	}
	reg.Add("10.0.0.9:1", 1, false, "inst1") // heartbeat, same incarnation
	if n := len(reg.Live()); n != 0 {
		t.Errorf("heartbeat after static pre-registration was misread as a restart")
	}
	reg.Add("10.0.0.9:1", 1, false, "inst2") // genuine restart
	live := reg.Live()
	if len(live) != 1 {
		t.Fatalf("restarted member not readmitted (live = %d)", len(live))
	}
	if !live[0].Static {
		t.Errorf("static flag not sticky across dynamic re-registration")
	}
}

// TestWorkerAuth asserts the shared-token gate on the worker's endpoints:
// missing and wrong tokens get 401 on every route, the right token is
// served, and a tokenless worker stays open.
func TestWorkerAuth(t *testing.T) {
	srv := httptest.NewServer((&Worker{
		Runner:    &harness.Runner{Workers: 1},
		AuthToken: "sesame",
	}).Handler())
	t.Cleanup(srv.Close)

	get := func(token string) int {
		req, err := http.NewRequest(http.MethodGet, srv.URL+PathHealthz, nil)
		if err != nil {
			t.Fatal(err)
		}
		setAuth(req, token)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := get(""); got != http.StatusUnauthorized {
		t.Errorf("healthz without token = %d, want 401", got)
	}
	if got := get("wrong"); got != http.StatusUnauthorized {
		t.Errorf("healthz with wrong token = %d, want 401", got)
	}
	if got := get("sesame"); got != http.StatusOK {
		t.Errorf("healthz with right token = %d, want 200", got)
	}
	// The right token under the wrong (or missing) scheme is malformed
	// credentials, not a second accepted header form.
	req, err := http.NewRequest(http.MethodGet, srv.URL+PathHealthz, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "sesame")
	resp0, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp0.Body.Close()
	if resp0.StatusCode != http.StatusUnauthorized {
		t.Errorf("healthz with schemeless token = %s, want 401", resp0.Status)
	}

	// /run is gated too: a tokenless POST must be rejected before any job
	// runs.
	resp, err := http.Post(srv.URL+PathRun, "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("run without token = %s, want 401", resp.Status)
	}
}

// TestRegistryAuth asserts the /register gate: an unauthenticated host
// cannot join a token-protected fleet.
func TestRegistryAuth(t *testing.T) {
	reg := &Registry{TTL: time.Minute, AuthToken: "sesame"}
	srv := httptest.NewServer(reg.Handler())
	t.Cleanup(srv.Close)

	req := RegisterRequest{Version: ProtocolVersion, Workers: 1, Addr: ":9876"}
	if resp := postRegister(t, srv.URL, req, ""); resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("register without token = %s, want 401", resp.Status)
	}
	if resp := postRegister(t, srv.URL, req, "wrong"); resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("register with wrong token = %s, want 401", resp.Status)
	}
	if len(reg.Live()) != 0 {
		t.Fatalf("unauthenticated host joined the registry")
	}
	if resp := postRegister(t, srv.URL, req, "sesame"); resp.StatusCode != http.StatusOK {
		t.Errorf("register with right token = %s, want 200", resp.Status)
	}
	if len(reg.Live()) != 1 {
		t.Errorf("authenticated join not registered")
	}
}

// TestAuthedSweep runs a full distributed sweep with the token configured
// on both sides: the coordinator must authenticate its /healthz and /run
// traffic against the token-gated worker.
func TestAuthedSweep(t *testing.T) {
	jobs := testJobs(t)
	want := localResults(t, jobs)
	srv := httptest.NewServer((&Worker{
		Runner:    &harness.Runner{Workers: 2},
		AuthToken: "sesame",
	}).Handler())
	t.Cleanup(srv.Close)

	// Without the token the handshake fails and the run aborts.
	if _, err := (&Coordinator{Endpoints: []string{srv.URL}}).Run(context.Background(), jobs); err == nil {
		t.Fatal("tokenless coordinator ran against a token-gated worker")
	}

	got, err := (&Coordinator{Endpoints: []string{srv.URL}, AuthToken: "sesame"}).
		Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	matchLocal(t, got, want)
}

// TestJoinerRejection asserts a Joiner gives up (instead of retrying
// forever) when the coordinator rejects it outright: wrong token, or a
// mismatched harness version.
func TestJoinerRejection(t *testing.T) {
	reg := &Registry{TTL: time.Minute, AuthToken: "sesame"}
	srv := httptest.NewServer(reg.Handler())
	t.Cleanup(srv.Close)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := (&Joiner{Coordinator: srv.URL, Advertise: ":9876", Workers: 1, AuthToken: "wrong"}).Run(ctx)
	if err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Errorf("wrong-token join: err = %v, want rejection", err)
	}
	if ctx.Err() != nil {
		t.Errorf("joiner kept retrying a 401 until the deadline")
	}
}

// TestJoinerRetriesUntilCoordinatorAppears asserts a worker outlives the
// coordinator: a Joiner started before any fleet listener exists keeps
// retrying and registers as soon as one appears.
func TestJoinerRetriesUntilCoordinatorAppears(t *testing.T) {
	reg := &Registry{TTL: time.Minute}
	// Reserve an address, but don't serve /register yet.
	srv := httptest.NewUnstartedServer(reg.Handler())
	addr := srv.Listener.Addr().String()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	joinDone := make(chan error, 1)
	go func() {
		joinDone <- (&Joiner{Coordinator: addr, Advertise: ":9876", Workers: 2}).Run(ctx)
	}()

	time.Sleep(50 * time.Millisecond) // let at least one attempt fail
	srv.Start()
	t.Cleanup(srv.Close)

	deadline := time.Now().Add(5 * time.Second)
	for len(reg.Live()) == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if len(reg.Live()) != 1 {
		t.Fatal("joiner never registered after the coordinator appeared")
	}
	cancel()
	if err := <-joinDone; err != nil {
		t.Errorf("cancelled joiner returned %v, want nil", err)
	}
}

// TestNonLoopbackBind pins the warning heuristic the CLIs use.
func TestNonLoopbackBind(t *testing.T) {
	for addr, want := range map[string]bool{
		":9471":          true,
		"0.0.0.0:9471":   true,
		"10.0.0.7:9471":  true,
		"worker-3:9471":  true,
		"127.0.0.1:9471": false,
		"localhost:9471": false,
		"[::1]:9471":     false,
	} {
		if got := NonLoopbackBind(addr); got != want {
			t.Errorf("NonLoopbackBind(%q) = %v, want %v", addr, got, want)
		}
	}
}
