package dist

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// Joiner maintains a worker's membership in a coordinator's fleet: it
// registers against the coordinator's /register endpoint and then keeps
// re-registering at the coordinator-announced heartbeat interval. A
// coordinator that is down or between sweeps is retried with capped
// backoff — workers outlive coordinators, so a daemon started before the
// sweep (or restarted mid-sweep) joins as soon as a fleet listener
// appears. An auth (401) or version (412) rejection is fatal: both mean
// operator error that must surface, not be retried into silence.
type Joiner struct {
	// Coordinator is the fleet listener's address ("host:port" or URL).
	Coordinator string
	// Advertise is the address this worker serves /run on, sent in the
	// registration. A missing host (":9471") is filled in by the
	// coordinator from the connection's source address.
	Advertise string
	// Workers is the advertised pool width.
	Workers int
	// AuthToken, when non-empty, is sent (bearer) on every registration.
	AuthToken string
	// Instance identifies this process lifetime; empty means a random id
	// is generated on first use. A restart therefore presents a new
	// instance, which lifts any failure quarantine the coordinator holds
	// against the previous incarnation.
	Instance string
	// Log, when non-nil, receives join/retry lines.
	Log io.Writer
	// Client, when non-nil, overrides the HTTP client (tests).
	Client *http.Client

	once sync.Once

	mu sync.Mutex // guards Log
}

func (j *Joiner) logf(format string, args ...any) {
	if j.Log == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	fmt.Fprintf(j.Log, format+"\n", args...)
}

func (j *Joiner) client() *http.Client {
	if j.Client != nil {
		return j.Client
	}
	return http.DefaultClient
}

// instance returns the per-process id, generating it once.
func (j *Joiner) instance() string {
	j.once.Do(func() {
		if j.Instance == "" {
			var b [8]byte
			if _, err := rand.Read(b[:]); err != nil {
				panic(fmt.Sprintf("dist: generate instance id: %v", err))
			}
			j.Instance = hex.EncodeToString(b[:])
		}
	})
	return j.Instance
}

// Run registers and heartbeats until ctx is cancelled (returning nil) or
// the coordinator rejects the worker outright (returning the rejection).
func (j *Joiner) Run(ctx context.Context) error {
	backoff := 500 * time.Millisecond
	joined := false
	for {
		interval, err := j.registerOnce(ctx)
		switch {
		case err == nil:
			if !joined {
				joined = true
				j.logf("dist: joined fleet at %s (heartbeat %s)", j.Coordinator, interval)
			}
			backoff = 500 * time.Millisecond
			if sleepCtx(ctx, interval) != nil {
				return nil
			}
		case isFatalJoin(err):
			return fmt.Errorf("dist: fleet %s rejected this worker: %w", j.Coordinator, err)
		default:
			if ctx.Err() != nil {
				return nil
			}
			if joined {
				joined = false
				j.logf("dist: lost fleet at %s (%v); retrying", j.Coordinator, err)
			}
			if sleepCtx(ctx, backoff) != nil {
				return nil
			}
			if backoff *= 2; backoff > 5*time.Second {
				backoff = 5 * time.Second
			}
		}
	}
}

// Leave deregisters the worker from the fleet (PathLeave), the graceful
// half of drain: the coordinator stops dispatching to this worker at once
// instead of discovering the death by failed requests or TTL eviction.
// Best-effort — an unreachable or pre-leave coordinator (404) is not an
// error, because the worker is exiting either way and TTL eviction is the
// backstop.
func (j *Joiner) Leave(ctx context.Context) {
	body, err := json.Marshal(RegisterRequest{
		Version:  ProtocolVersion,
		Addr:     j.Advertise,
		Instance: j.instance(),
	})
	if err != nil {
		return
	}
	ctx, cancel := context.WithTimeout(ctx, 3*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		baseURL(j.Coordinator)+PathLeave, bytes.NewReader(body))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/json")
	setAuth(req, j.AuthToken)
	resp, err := j.client().Do(req)
	if err != nil {
		j.logf("dist: leave %s failed (%v); the fleet will TTL-evict instead", j.Coordinator, err)
		return
	}
	resp.Body.Close()
	j.logf("dist: left fleet at %s", j.Coordinator)
}

// joinRejection marks a 401/412 registration response: retrying cannot
// help, the operator must fix the token or the binary.
type joinRejection struct{ msg string }

func (e *joinRejection) Error() string { return e.msg }

func isFatalJoin(err error) bool {
	_, ok := err.(*joinRejection)
	return ok
}

// registerOnce performs one registration round-trip and returns the
// heartbeat interval the coordinator asked for.
func (j *Joiner) registerOnce(ctx context.Context) (time.Duration, error) {
	body, err := json.Marshal(RegisterRequest{
		Version:  ProtocolVersion,
		Workers:  j.Workers,
		Addr:     j.Advertise,
		Instance: j.instance(),
	})
	if err != nil {
		return 0, err
	}
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		baseURL(j.Coordinator)+PathRegister, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	setAuth(req, j.AuthToken)
	resp, err := j.client().Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		json.NewDecoder(resp.Body).Decode(&eb)
		if eb.Error == "" {
			eb.Error = resp.Status
		}
		if resp.StatusCode == http.StatusUnauthorized || resp.StatusCode == http.StatusPreconditionFailed {
			return 0, &joinRejection{msg: eb.Error}
		}
		return 0, fmt.Errorf("register: %s: %s", resp.Status, eb.Error)
	}
	var rr RegisterResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		return 0, fmt.Errorf("register: decode: %w", err)
	}
	interval := time.Duration(rr.HeartbeatMillis) * time.Millisecond
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	return interval, nil
}
