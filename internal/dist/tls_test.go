package dist

import (
	"context"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"math/big"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"vbi/internal/harness"
)

// testCA is a throwaway PKI for TLS tests: a self-signed CA plus signed
// leaf certificates for 127.0.0.1, written as PEM files the way the
// -tls-* flags expect them.
type testCA struct {
	t      *testing.T
	dir    string
	caCert *x509.Certificate
	caKey  *ecdsa.PrivateKey
	// CAFile is the PEM bundle peers verify against.
	CAFile string
}

func newTestCA(t *testing.T) *testCA {
	t.Helper()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "vbi-test-ca"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(time.Hour),
		IsCA:                  true,
		KeyUsage:              x509.KeyUsageCertSign,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		t.Fatal(err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		t.Fatal(err)
	}
	ca := &testCA{t: t, dir: t.TempDir(), caCert: cert, caKey: key}
	ca.CAFile = ca.writePEM("ca.pem", "CERTIFICATE", der)
	return ca
}

func (ca *testCA) writePEM(name, blockType string, der []byte) string {
	ca.t.Helper()
	path := filepath.Join(ca.dir, name)
	b := pem.EncodeToMemory(&pem.Block{Type: blockType, Bytes: der})
	if err := os.WriteFile(path, b, 0o600); err != nil {
		ca.t.Fatal(err)
	}
	return path
}

// leaf issues a CA-signed certificate for 127.0.0.1/localhost and returns
// the cert and key file paths.
func (ca *testCA) leaf(name string) (certFile, keyFile string) {
	ca.t.Helper()
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		ca.t.Fatal(err)
	}
	tmpl := &x509.Certificate{
		SerialNumber: big.NewInt(time.Now().UnixNano()),
		Subject:      pkix.Name{CommonName: name},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(time.Hour),
		KeyUsage:     x509.KeyUsageDigitalSignature,
		ExtKeyUsage:  []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth, x509.ExtKeyUsageClientAuth},
		DNSNames:     []string{"localhost"},
		IPAddresses:  []net.IP{net.ParseIP("127.0.0.1")},
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, ca.caCert, &key.PublicKey, ca.caKey)
	if err != nil {
		ca.t.Fatal(err)
	}
	keyDER, err := x509.MarshalECPrivateKey(key)
	if err != nil {
		ca.t.Fatal(err)
	}
	return ca.writePEM(name+".pem", "CERTIFICATE", der),
		ca.writePEM(name+".key", "EC PRIVATE KEY", keyDER)
}

// startTLSWorker serves a Worker over HTTPS (mTLS when mutual) on a
// loopback port and returns its base URL.
func startTLSWorker(t *testing.T, ca *testCA, w *Worker, mutual bool) string {
	t.Helper()
	cert, key := ca.leaf("worker")
	opts := &TLSOptions{CertFile: cert, KeyFile: key}
	if mutual {
		opts.CAFile = ca.CAFile
	}
	cfg, err := opts.ServerConfig()
	if err != nil {
		t.Fatal(err)
	}
	srv, addr, err := Serve("127.0.0.1:0", w.Handler(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return "https://" + addr
}

// TestTLSWorkerHandshake runs the full client/server TLS matrix against a
// real worker: a CA-trusting client succeeds, the default client (system
// roots) fails, and plain HTTP against the TLS port fails.
func TestTLSWorkerHandshake(t *testing.T) {
	ca := newTestCA(t)
	base := startTLSWorker(t, ca, &Worker{Runner: &harness.Runner{Workers: 1}}, false)

	client, err := (&TLSOptions{CAFile: ca.CAFile}).Client()
	if err != nil {
		t.Fatal(err)
	}
	h, err := Probe(context.Background(), client, base, "")
	if err != nil {
		t.Fatalf("probe over TLS: %v", err)
	}
	if h.Version != ProtocolVersion {
		t.Errorf("version = %s, want %s", h.Version, ProtocolVersion)
	}

	if _, err := Probe(context.Background(), http.DefaultClient, base, ""); err == nil {
		t.Error("default client trusted the self-signed fleet CA")
	}
	plain := "http://" + strings.TrimPrefix(base, "https://")
	if _, err := Probe(context.Background(), http.DefaultClient, plain, ""); err == nil {
		t.Error("plain HTTP against a TLS listener succeeded")
	}
}

// TestMTLSRequiresClientCert asserts the -tls-ca server side: a client
// without a certificate is refused at the handshake, one presenting a
// CA-signed certificate is served.
func TestMTLSRequiresClientCert(t *testing.T) {
	ca := newTestCA(t)
	base := startTLSWorker(t, ca, &Worker{Runner: &harness.Runner{Workers: 1}}, true)

	bare, err := (&TLSOptions{CAFile: ca.CAFile}).Client()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Probe(context.Background(), bare, base, ""); err == nil {
		t.Error("mTLS server accepted a client with no certificate")
	}

	cert, key := ca.leaf("client")
	authed, err := (&TLSOptions{CAFile: ca.CAFile, CertFile: cert, KeyFile: key}).Client()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Probe(context.Background(), authed, base, ""); err != nil {
		t.Errorf("mTLS probe with a CA-signed client cert failed: %v", err)
	}
}

// TestTLSCoordinatorRunsJobs runs a small batch end-to-end over mTLS: the
// coordinator presents a client certificate, the worker requires it, and
// the results match a serial local run.
func TestTLSCoordinatorRunsJobs(t *testing.T) {
	ca := newTestCA(t)
	base := startTLSWorker(t, ca, &Worker{Runner: &harness.Runner{Workers: 2}}, true)

	cert, key := ca.leaf("coordinator")
	client, err := (&TLSOptions{CAFile: ca.CAFile, CertFile: cert, KeyFile: key}).Client()
	if err != nil {
		t.Fatal(err)
	}
	jobs := testJobs(t)
	got, err := (&Coordinator{Endpoints: []string{base}, Client: client}).
		Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	matchLocal(t, got, localResults(t, jobs))
}

// TestTLSOptionsValidation pins the flag-combination errors: a cert
// without a key, and serving with only a CA bundle.
func TestTLSOptionsValidation(t *testing.T) {
	if _, err := (&TLSOptions{CertFile: "x.pem"}).Client(); err == nil {
		t.Error("cert without key accepted")
	}
	if _, err := (&TLSOptions{CAFile: "nope.pem", CertFile: "", KeyFile: ""}).ServerConfig(); err == nil {
		t.Error("server with only -tls-ca accepted (no certificate to serve)")
	}
	eps := ApplyScheme([]string{"host:1", "http://host:2"}, "https")
	if eps[0] != "https://host:1" || eps[1] != "http://host:2" {
		t.Errorf("ApplyScheme = %v", eps)
	}
}

// TestWorkerDrain asserts the graceful-drain contract: a draining worker
// advertises it on /healthz, refuses new shards with 503, and its /leave
// removes it from the registry immediately (no TTL wait).
func TestWorkerDrain(t *testing.T) {
	w := &Worker{Runner: &harness.Runner{Workers: 1}}
	srv, addr, err := Serve("127.0.0.1:0", w.Handler(), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	base := "http://" + addr

	w.SetDraining(true)
	h, err := Probe(context.Background(), http.DefaultClient, base, "")
	if err != nil {
		t.Fatal(err)
	}
	if !h.Draining {
		t.Error("draining worker's handshake does not advertise Draining")
	}
	_, fatal, retry := ExecuteShard(context.Background(), http.DefaultClient,
		Member{ID: base, Base: base}, "", time.Minute, testJobs(t)[:1], "")
	if fatal != nil {
		t.Fatalf("draining refusal was fatal: %v", fatal)
	}
	if retry == nil || !strings.Contains(retry.Error(), "draining") {
		t.Errorf("draining /run = %v, want retryable draining error", retry)
	}

	// A static handshake must skip the draining worker instead of
	// scheduling onto it.
	coord := &Coordinator{Endpoints: []string{base}}
	hellos, err := coord.handshake(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(hellos) != 0 {
		t.Errorf("handshake selected %d workers, want 0 (draining)", len(hellos))
	}

	// Voluntary leave: joined, then left, with no quarantine on rejoin.
	reg := &Registry{}
	regSrv, regAddr, err := Serve("127.0.0.1:0", reg.Handler(), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { regSrv.Close() })
	j := &Joiner{Coordinator: regAddr, Advertise: addr, Workers: 1}
	if _, err := j.registerOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(reg.Live()) != 1 {
		t.Fatalf("registry has %d members after join, want 1", len(reg.Live()))
	}
	j.Leave(context.Background())
	if n := len(reg.Live()); n != 0 {
		t.Errorf("registry has %d members after leave, want 0", n)
	}
	if _, err := j.registerOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if len(reg.Live()) != 1 {
		t.Error("worker could not rejoin after a voluntary leave")
	}
}
