package dist

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"

	"vbi/internal/harness"
)

// Worker serves harness job batches over the dist protocol. It wraps a
// local harness.Runner: /run executes a shard through the runner's pool
// (and cache, when configured) and returns positional results; /healthz
// serves the version handshake. cmd/vbiworker is the daemon around it,
// but any http server can mount Handler (the tests use httptest).
type Worker struct {
	// Runner executes the shards. A nil Runner means a default local pool
	// (GOMAXPROCS workers, no cache).
	Runner *harness.Runner
	// AuthToken, when non-empty, gates every route (constant-time bearer
	// compare, 401 on mismatch), so an unauthenticated coordinator cannot
	// hand this worker shards. It must match the coordinator's token.
	AuthToken string
	// Log, when non-nil, receives one line per request.
	Log io.Writer

	mu       sync.Mutex // guards Log
	draining atomic.Bool
}

// SetDraining flips the worker into (or out of) drain mode: /run refuses
// new shards with 503 (the coordinator requeues them elsewhere) while
// requests already executing run to completion, and /healthz advertises
// Draining so a handshaking coordinator skips the worker entirely.
// cmd/vbiworker sets it on the first SIGTERM, then deregisters and waits
// for in-flight shards before exiting.
func (w *Worker) SetDraining(v bool) { w.draining.Store(v) }

// Draining reports whether the worker is refusing new shards.
func (w *Worker) Draining() bool { return w.draining.Load() }

// PoolWidth is the worker count advertised in the handshake (and in
// -join registrations): the runner's, defaulted the same way the runner
// itself defaults it.
func (w *Worker) PoolWidth() int {
	n := 0
	if w.Runner != nil {
		n = w.Runner.Workers
	}
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return n
}

func (w *Worker) logf(format string, args ...any) {
	if w.Log == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	fmt.Fprintf(w.Log, format+"\n", args...)
}

// Handler returns the worker's HTTP handler, serving PathHealthz and
// PathRun, auth-gated when AuthToken is set.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathHealthz, w.handleHealthz)
	mux.HandleFunc(PathRun, w.handleRun)
	return requireAuth(w.AuthToken, mux)
}

func writeJSON(rw http.ResponseWriter, status int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	json.NewEncoder(rw).Encode(v)
}

func (w *Worker) handleHealthz(rw http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		writeJSON(rw, http.StatusMethodNotAllowed, errorBody{Error: "GET only"})
		return
	}
	writeJSON(rw, http.StatusOK, Hello{
		Service:  "vbiworker",
		Version:  ProtocolVersion,
		Workers:  w.PoolWidth(),
		Draining: w.Draining(),
	})
}

func (w *Worker) handleRun(rw http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeJSON(rw, http.StatusMethodNotAllowed, errorBody{Error: "POST only"})
		return
	}
	if w.Draining() {
		// 503, not 412: the shard is fine, this worker just won't take it.
		// The coordinator's retry path requeues it for the rest of the
		// fleet.
		writeJSON(rw, http.StatusServiceUnavailable, errorBody{Error: "worker is draining"})
		return
	}
	var rr RunRequest
	if err := json.NewDecoder(req.Body).Decode(&rr); err != nil {
		writeJSON(rw, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad request: %v", err)})
		return
	}
	// The version gate: serving a shard under a different ProtocolVersion
	// would merge results from a different timing model, job schema or
	// wire format into the coordinator's matrix. 412 tells the coordinator
	// this is fatal, not retryable.
	if rr.Version != ProtocolVersion {
		w.logf("dist: refused shard: coordinator is %s, worker is %s", rr.Version, ProtocolVersion)
		writeJSON(rw, http.StatusPreconditionFailed, errorBody{
			Error: fmt.Sprintf("version mismatch: coordinator %s, worker %s", rr.Version, ProtocolVersion)})
		return
	}
	r := w.Runner
	if r == nil {
		r = &harness.Runner{}
	}
	// The request context cancels the shard when the coordinator hangs up
	// (timeout, abort): in-flight jobs finish, queued jobs are skipped.
	results, err := r.Run(req.Context(), rr.Jobs)
	if err != nil {
		w.logf("dist: shard of %d failed: %v", len(rr.Jobs), err)
		writeJSON(rw, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	resp := RunResponse{Results: make([]JobResult, len(results))}
	for i, res := range results {
		resp.Results[i] = JobResult{Results: res.Results, Cached: res.Cached}
	}
	w.logf("dist: shard of %d done", len(rr.Jobs))
	writeJSON(rw, http.StatusOK, resp)
}
