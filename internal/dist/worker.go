package dist

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	nhpprof "net/http/pprof"
	"runtime"
	"sync/atomic"
	"time"

	"vbi/internal/harness"
	"vbi/internal/obs"
)

// Worker serves harness job batches over the dist protocol. It wraps a
// local harness.Runner: /run executes a shard through the runner's pool
// (and cache, when configured) and returns positional results plus
// per-job timing; /healthz serves the version handshake; /metrics the
// Prometheus exposition. cmd/vbiworker is the daemon around it, but any
// http server can mount Handler (the tests use httptest).
type Worker struct {
	// Runner executes the shards. A nil Runner means a default local pool
	// (GOMAXPROCS workers, no cache).
	Runner *harness.Runner
	// JobShards, when > 1, decomposes each whole job arriving at this
	// worker into that many intra-job shards over the local pool
	// (harness.JobShards): single-workload jobs become time slices,
	// bundles run their cores on concurrent goroutines. Results stay
	// byte-identical to undecomposed execution; per-job timing gains the
	// shard breakdown the /metrics intra-job families aggregate. Jobs
	// that are already slices pass through untouched, so a coordinator
	// that slices upstream composes safely with a sharding worker.
	JobShards int
	// AuthToken, when non-empty, gates every route (constant-time bearer
	// compare, 401 on mismatch), so an unauthenticated coordinator cannot
	// hand this worker shards. It must match the coordinator's token.
	AuthToken string
	// Logger, when non-nil, receives one structured record per shard.
	// Records carry the coordinator's trace-ID chain (the obs.TraceHeader
	// request header) as a "trace" attribute, so one job's lifecycle
	// greps across the coordinator's and this worker's logs.
	Logger *slog.Logger
	// Pprof, when true, mounts net/http/pprof's handlers under
	// /debug/pprof/ on the same (auth-gated) mux — opt-in, because
	// profiles expose process internals beyond what shard peers need.
	Pprof bool

	draining atomic.Bool
	metrics  workerMetrics
}

// SetDraining flips the worker into (or out of) drain mode: /run refuses
// new shards with 503 (the coordinator requeues them elsewhere) while
// requests already executing run to completion, and /healthz advertises
// Draining so a handshaking coordinator skips the worker entirely.
// cmd/vbiworker sets it on the first SIGTERM, then deregisters and waits
// for in-flight shards before exiting.
func (w *Worker) SetDraining(v bool) { w.draining.Store(v) }

// Draining reports whether the worker is refusing new shards.
func (w *Worker) Draining() bool { return w.draining.Load() }

// PoolWidth is the worker count advertised in the handshake (and in
// -join registrations): the runner's, defaulted the same way the runner
// itself defaults it.
func (w *Worker) PoolWidth() int {
	n := 0
	if w.Runner != nil {
		n = w.Runner.Workers
	}
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return n
}

func (w *Worker) log() *slog.Logger {
	if w.Logger != nil {
		return w.Logger
	}
	return obs.Discard
}

// Handler returns the worker's HTTP handler, serving PathHealthz,
// PathRun and PathMetrics (plus /debug/pprof/ when Pprof is set),
// auth-gated when AuthToken is set.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(PathHealthz, w.handleHealthz)
	mux.HandleFunc(PathRun, w.handleRun)
	mux.HandleFunc(PathMetrics, w.handleMetrics)
	if w.Pprof {
		// Mounted explicitly (not via the package's init-time
		// DefaultServeMux registration) so the profiles sit behind the
		// same auth gate as every other route.
		mux.HandleFunc("/debug/pprof/", nhpprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", nhpprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", nhpprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", nhpprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", nhpprof.Trace)
	}
	return requireAuth(w.AuthToken, mux)
}

func writeJSON(rw http.ResponseWriter, status int, v any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	json.NewEncoder(rw).Encode(v)
}

func (w *Worker) handleHealthz(rw http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		writeJSON(rw, http.StatusMethodNotAllowed, errorBody{Error: "GET only"})
		return
	}
	writeJSON(rw, http.StatusOK, Hello{
		Service:  "vbiworker",
		Version:  ProtocolVersion,
		Workers:  w.PoolWidth(),
		Draining: w.Draining(),
	})
}

func (w *Worker) handleMetrics(rw http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		writeJSON(rw, http.StatusMethodNotAllowed, errorBody{Error: "GET only"})
		return
	}
	rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	rw.WriteHeader(http.StatusOK)
	w.metrics.write(rw)
}

func (w *Worker) handleRun(rw http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeJSON(rw, http.StatusMethodNotAllowed, errorBody{Error: "POST only"})
		return
	}
	// The coordinator's trace chain ("<root>/<shard-seq>"); every log
	// record of this shard carries it so the two processes' logs join.
	log := w.log()
	if trace := req.Header.Get(obs.TraceHeader); trace != "" {
		log = log.With("trace", trace)
	}
	if w.Draining() {
		// 503, not 412: the shard is fine, this worker just won't take it.
		// The coordinator's retry path requeues it for the rest of the
		// fleet.
		writeJSON(rw, http.StatusServiceUnavailable, errorBody{Error: "worker is draining"})
		return
	}
	var rr RunRequest
	if err := json.NewDecoder(req.Body).Decode(&rr); err != nil {
		writeJSON(rw, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad request: %v", err)})
		return
	}
	// The version gate: serving a shard under a different ProtocolVersion
	// would merge results from a different timing model, job schema or
	// wire format into the coordinator's matrix. 412 tells the coordinator
	// this is fatal, not retryable.
	if rr.Version != ProtocolVersion {
		log.Warn("refused shard: version mismatch", "coordinator", rr.Version, "worker", ProtocolVersion)
		writeJSON(rw, http.StatusPreconditionFailed, errorBody{
			Error: fmt.Sprintf("version mismatch: coordinator %s, worker %s", rr.Version, ProtocolVersion)})
		return
	}
	r := w.Runner
	if r == nil {
		r = &harness.Runner{}
	}
	var exec harness.Executor = r
	if w.JobShards > 1 {
		exec = &harness.JobShards{Inner: r, K: w.JobShards, Cache: r.Cache}
	}
	log.Info("shard accepted", "jobs", len(rr.Jobs))
	w.metrics.shardStart(len(rr.Jobs))
	start := time.Now()
	// The request context cancels the shard when the coordinator hangs up
	// (timeout, abort): in-flight jobs finish, queued jobs are skipped.
	results, err := exec.Run(req.Context(), rr.Jobs)
	w.metrics.shardEnd(len(rr.Jobs))
	if err != nil {
		log.Error("shard failed", "jobs", len(rr.Jobs), "err", err)
		writeJSON(rw, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	resp := RunResponse{Results: make([]JobResult, len(results))}
	for i, res := range results {
		resp.Results[i] = JobResult{Results: res.Results, Cached: res.Cached, Timing: res.Timing}
		w.metrics.observeJob(res)
	}
	log.Info("shard done", "jobs", len(rr.Jobs), "seconds", time.Since(start).Seconds())
	writeJSON(rw, http.StatusOK, resp)
}
