package dist

import (
	"io"
	"sync"

	"vbi/internal/harness"
	"vbi/internal/obs"
)

// workerMetrics is the worker's exposition state, rendered on
// PathMetrics. Counters are cumulative over the process lifetime; the
// in-flight gauge tracks jobs currently executing. Rendering is
// deterministic (fixed family order, sorted label values), so two
// scrapes of the same state are byte-identical.
type workerMetrics struct {
	mu         sync.Mutex
	inFlight   int64
	shards     int64
	jobsSim    int64
	jobsCached int64
	phases     obs.PhaseCounts
	jobSeconds *obs.Histogram

	// Intra-job parallelism telemetry. sliceJobs counts time-slice
	// sub-jobs served (one slice of a decomposed simulation); the intra*
	// fields accumulate over jobs this worker itself decomposed
	// (Timing.Shards > 1): shard-seconds is total simulation work,
	// wall-seconds the decomposed critical path, and their ratio the
	// intra-job speedup.
	sliceJobs       int64
	intraSharded    int64
	intraShardNanos int64
	intraWallNanos  int64
}

func (m *workerMetrics) hist() *obs.Histogram {
	// Lazy under mu: Worker is a plain struct literal in the daemon and
	// the tests, with no constructor to hook.
	if m.jobSeconds == nil {
		m.jobSeconds = obs.NewHistogram(obs.LatencyBuckets()...)
	}
	return m.jobSeconds
}

func (m *workerMetrics) shardStart(jobs int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.shards++
	m.inFlight += int64(jobs)
}

func (m *workerMetrics) shardEnd(jobs int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.inFlight -= int64(jobs)
}

// observeJob accounts one completed job: simulated-vs-cached, its wall
// time into the latency histogram, and its phase breakdown.
func (m *workerMetrics) observeJob(res harness.Result) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if res.Cached {
		m.jobsCached++
	} else {
		m.jobsSim++
	}
	if res.Job.Slice != nil {
		m.sliceJobs++
	}
	if t := res.Timing; t != nil {
		m.phases = m.phases.Add(t.Phases)
		if !t.Cached {
			m.hist().Observe(t.Wall().Seconds())
		}
		if t.Shards > 1 {
			m.intraSharded++
			m.intraShardNanos += t.ShardWallNanos
			m.intraWallNanos += t.WallNanos
		}
	}
}

// write renders the full exposition. Families, in order:
//
//	vbiworker_in_flight_jobs            gauge
//	vbiworker_shards_total              counter
//	vbiworker_jobs_total{result=...}    counter (cached | simulated)
//	vbiworker_phase_events_total{phase=...} counter (sorted phase names)
//	vbiworker_job_seconds               histogram (obs.LatencyBuckets)
//	vbiworker_job_seconds_quantile{quantile=...} gauge (estimates)
func (m *workerMetrics) write(w io.Writer) {
	m.mu.Lock()
	defer m.mu.Unlock()

	obs.WriteFamily(w, "vbiworker_in_flight_jobs", "Jobs currently executing on the local pool.", "gauge",
		[]obs.Sample{obs.S(m.inFlight)})
	obs.WriteFamily(w, "vbiworker_shards_total", "Shard requests accepted since process start.", "counter",
		[]obs.Sample{obs.S(m.shards)})
	obs.WriteFamily(w, "vbiworker_jobs_total", "Jobs completed since process start, by result source.", "counter",
		[]obs.Sample{
			obs.S(m.jobsCached, obs.L("result", "cached")),
			obs.S(m.jobsSim, obs.L("result", "simulated")),
		})
	// Sorted phase order, spelled out rather than ranged from a map so
	// the exposition order is pinned at compile time.
	obs.WriteFamily(w, "vbiworker_phase_events_total", "Per-phase simulation events across completed jobs.", "counter",
		[]obs.Sample{
			obs.S(m.phases.Cache, obs.L("phase", "cache")),
			obs.S(m.phases.DRAM, obs.L("phase", "dram")),
			obs.S(m.phases.PWC, obs.L("phase", "pwc")),
			obs.S(m.phases.TLB, obs.L("phase", "tlb")),
			obs.S(m.phases.Walk, obs.L("phase", "walk")),
		})
	obs.WriteFamily(w, "vbiworker_slice_jobs_total", "Time-slice sub-jobs of decomposed simulations served.", "counter",
		[]obs.Sample{obs.S(m.sliceJobs)})
	obs.WriteFamily(w, "vbiworker_intra_job_sharded_total", "Jobs this worker decomposed into intra-job shards.", "counter",
		[]obs.Sample{obs.S(m.intraSharded)})
	obs.WriteFamily(w, "vbiworker_intra_job_shard_seconds_total",
		"Summed per-shard wall seconds of decomposed jobs; divided by vbiworker_intra_job_wall_seconds_total it is the intra-job speedup.", "counter",
		[]obs.Sample{obs.S(float64(m.intraShardNanos) / 1e9)})
	obs.WriteFamily(w, "vbiworker_intra_job_wall_seconds_total", "Critical-path wall seconds of decomposed jobs.", "counter",
		[]obs.Sample{obs.S(float64(m.intraWallNanos) / 1e9)})
	snap := m.hist().Snapshot()
	obs.WriteHistogram(w, "vbiworker_job_seconds", "Wall-clock seconds per simulated job (cache hits excluded).", nil, snap)
	obs.WriteFamily(w, "vbiworker_job_seconds_quantile", "Estimated job-latency quantiles from the histogram.", "gauge",
		obs.QuantileSamples(snap, []float64{0.5, 0.9, 0.99}))
}
