package dist

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"vbi/internal/harness"
	"vbi/internal/system"
)

// testJobs is a small batch (2 systems × 2 workloads), cheap enough to
// run several times per test binary.
func testJobs(t *testing.T) []harness.Job {
	t.Helper()
	jobs, err := harness.Grid{
		Systems:   []string{"Native", "VBI-Full"},
		Workloads: []string{"namd", "sjeng"},
		Refs:      5_000,
	}.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

// newWorkerServer starts an httptest server around a fresh Worker.
func newWorkerServer(t *testing.T, workers int) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer((&Worker{Runner: &harness.Runner{Workers: workers}}).Handler())
	t.Cleanup(srv.Close)
	return srv
}

func localResults(t *testing.T, jobs []harness.Job) []harness.Result {
	t.Helper()
	want, err := (&harness.Runner{Workers: 1}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	return want
}

// matchLocal asserts a distributed run's payload equals the serial local
// run's, position by position (the Cached flag legitimately differs).
func matchLocal(t *testing.T, got, want []harness.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i].Job, want[i].Job) {
			t.Errorf("result %d: job %+v, want %+v", i, got[i].Job, want[i].Job)
		}
		if !reflect.DeepEqual(got[i].Results, want[i].Results) {
			t.Errorf("result %d (%s): results differ from serial local run", i, want[i].Job.Describe())
		}
	}
}

// TestWorkerHandshake pins the /healthz contract: service name, the
// binary's harness version, and the advertised pool width.
func TestWorkerHandshake(t *testing.T) {
	srv := newWorkerServer(t, 3)
	resp, err := http.Get(srv.URL + PathHealthz)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h Hello
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Service != "vbiworker" || h.Version != ProtocolVersion || h.Workers != 3 {
		t.Errorf("handshake = %+v, want vbiworker/%s/3", h, ProtocolVersion)
	}
}

// TestWorkerRejectsStaleVersion asserts the per-request version gate: a
// /run carrying a different harness version gets 412 and no results.
func TestWorkerRejectsStaleVersion(t *testing.T) {
	srv := newWorkerServer(t, 1)
	body, _ := json.Marshal(RunRequest{Version: "vbi-harness-v0", Jobs: testJobs(t)})
	resp, err := http.Post(srv.URL+PathRun, "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusPreconditionFailed {
		t.Fatalf("status = %s, want 412", resp.Status)
	}
}

// TestDistributedMatchesLocal is the core determinism guarantee: a
// coordinator sharding across two workers produces the same results — and
// the same rendered matrix bytes — as a serial local run.
func TestDistributedMatchesLocal(t *testing.T) {
	grid := harness.Grid{
		Systems:   []string{"Native", "VBI-Full"},
		Workloads: []string{"namd", "sjeng"},
		Refs:      5_000,
	}
	jobs, err := grid.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	want := localResults(t, jobs)

	a, b := newWorkerServer(t, 2), newWorkerServer(t, 1)
	coord := &Coordinator{
		Endpoints: []string{a.URL, b.URL},
		ShardSize: 1, // force every job onto its own shard
	}
	got, err := coord.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	matchLocal(t, got, want)

	wt, err := grid.Matrix(want, harness.MetricIPC)
	if err != nil {
		t.Fatal(err)
	}
	gt, err := grid.Matrix(got, harness.MetricIPC)
	if err != nil {
		t.Fatal(err)
	}
	if wt.Render() != gt.Render() {
		t.Errorf("distributed matrix differs:\nlocal:\n%s\ndistributed:\n%s", wt.Render(), gt.Render())
	}
}

// TestWorkerDeathRequeues kills one of two workers after its first shard:
// its remaining shards must requeue onto the survivor and the run must
// still match the serial local results.
func TestWorkerDeathRequeues(t *testing.T) {
	jobs := testJobs(t)
	want := localResults(t, jobs)

	healthy := newWorkerServer(t, 1)
	// The doomed worker serves exactly one /run, then drops every
	// connection — the shape of a killed process, not a clean error reply.
	inner := (&Worker{Runner: &harness.Runner{Workers: 1}}).Handler()
	var served atomic.Int64
	doomed := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		if req.URL.Path == PathRun && served.Add(1) > 1 {
			hj, ok := rw.(http.Hijacker)
			if !ok {
				t.Error("response writer cannot hijack")
				return
			}
			conn, _, err := hj.Hijack()
			if err == nil {
				conn.Close()
			}
			return
		}
		inner.ServeHTTP(rw, req)
	}))
	t.Cleanup(doomed.Close)

	coord := &Coordinator{
		Endpoints: []string{doomed.URL, healthy.URL},
		ShardSize: 1,
		Retries:   1,
		Timeout:   time.Minute,
	}
	got, err := coord.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	matchLocal(t, got, want)
	if served.Load() < 2 {
		t.Errorf("doomed worker saw %d /run requests; the kill never triggered", served.Load())
	}
}

// TestAllWorkersDeadFails asserts the coordinator reports failure — it
// must not silently fall back to local execution — when every endpoint
// dies mid-run.
func TestAllWorkersDeadFails(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		if req.URL.Path == PathHealthz {
			writeJSON(rw, http.StatusOK, Hello{Service: "vbiworker", Version: ProtocolVersion, Workers: 1})
			return
		}
		writeJSON(rw, http.StatusInternalServerError, errorBody{Error: "synthetic failure"})
	}))
	t.Cleanup(srv.Close)
	coord := &Coordinator{Endpoints: []string{srv.URL}, Retries: 1}
	if _, err := coord.Run(context.Background(), testJobs(t)); err == nil {
		t.Fatal("run with a permanently failing worker succeeded")
	}
}

// TestStaleCoordinatorVersionFatal asserts the handshake gate: an
// endpoint advertising a different harness version aborts the run before
// any job is dispatched.
func TestStaleCoordinatorVersionFatal(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		writeJSON(rw, http.StatusOK, Hello{Service: "vbiworker", Version: "vbi-harness-v0", Workers: 1})
	}))
	t.Cleanup(srv.Close)
	coord := &Coordinator{Endpoints: []string{srv.URL}}
	_, err := coord.Run(context.Background(), testJobs(t))
	if err == nil || !strings.Contains(err.Error(), "vbi-harness-v0") {
		t.Fatalf("stale worker version not rejected: err = %v", err)
	}
}

// TestNoEndpointsRunsLocally asserts the documented fallback: an empty
// endpoint list executes on the local pool.
func TestNoEndpointsRunsLocally(t *testing.T) {
	jobs := testJobs(t)
	got, err := (&Coordinator{}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	matchLocal(t, got, localResults(t, jobs))
}

// TestCoordinatorStreamsCache asserts completed shards land in the
// coordinator's cache as they arrive, and that a warmed cache serves a
// re-run without any network traffic — even against a dead endpoint.
func TestCoordinatorStreamsCache(t *testing.T) {
	jobs := testJobs(t)
	cache := &harness.Cache{Dir: t.TempDir()}
	srv := newWorkerServer(t, 2)

	first, err := (&Coordinator{Endpoints: []string{srv.URL}, Cache: cache, ShardSize: 2}).
		Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := cache.Len(); err != nil || n != len(jobs) {
		t.Fatalf("cache holds %d entries (err=%v), want %d", n, err, len(jobs))
	}

	// The worker is gone; only the cache can answer now.
	srv.Close()
	second, err := (&Coordinator{Endpoints: []string{srv.URL}, Cache: cache}).
		Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range second {
		if !second[i].Cached {
			t.Errorf("job %d not served from cache on re-run", i)
		}
		if !reflect.DeepEqual(first[i].Results, second[i].Results) {
			t.Errorf("job %d: cached results differ from remote results", i)
		}
	}
}

// TestCoordinatorValidatesBeforeDispatch asserts a bad job fails the
// batch before any network traffic (the endpoint does not even exist).
func TestCoordinatorValidatesBeforeDispatch(t *testing.T) {
	coord := &Coordinator{Endpoints: []string{"127.0.0.1:1"}}
	_, err := coord.Run(context.Background(), []harness.Job{{
		Spec:      &system.Spec{Name: "NotASystem", Base: "NotASystem"},
		Workloads: []string{"namd"}}})
	if err == nil || !strings.Contains(err.Error(), "NotASystem") {
		t.Fatalf("invalid job not rejected up front: err = %v", err)
	}
}

// TestCoordinatorHonorsContext asserts a cancelled context aborts a
// distributed run with ctx.Err().
func TestCoordinatorHonorsContext(t *testing.T) {
	srv := newWorkerServer(t, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := (&Coordinator{Endpoints: []string{srv.URL}}).Run(ctx, testJobs(t))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestSelfDescribingVariantRunsOnWorker is the regression for the
// since-PR-3 wire bug: a variant spec known only to the coordinator used
// to fail on every worker, because jobs travelled as names that each
// process re-resolved locally. Jobs now carry their resolved spec, so a
// spec that is registered in NO process at all — materialized inline here
// — must run on a remote worker and match the equivalent local
// base+overlay run byte for byte.
func TestSelfDescribingVariantRunsOnWorker(t *testing.T) {
	variant := &system.Spec{Name: "Coordinator-Only-128TLB", Base: "Native",
		Params: system.Params{L2TLBEntries: 128}}
	jobs := []harness.Job{{Spec: variant, Workloads: []string{"namd"}, Refs: 3_000}}

	srv := newWorkerServer(t, 2)
	got, err := (&Coordinator{Endpoints: []string{srv.URL}}).
		Run(context.Background(), jobs)
	if err != nil {
		t.Fatalf("unregistered variant failed on the worker: %v", err)
	}

	// The same configuration spelled as base kind + job overlay, run
	// locally: the variant's overlay must have reached the remote
	// simulator (not been dropped or defaulted).
	equiv := []harness.Job{{Spec: system.MustSpec("Native"), Workloads: []string{"namd"},
		Refs: 3_000, Params: system.Params{L2TLBEntries: 128}}}
	want := localResults(t, equiv)
	if !reflect.DeepEqual(got[0].Results, want[0].Results) {
		t.Error("worker-run variant results differ from the equivalent local base+overlay run")
	}

	base := localResults(t, []harness.Job{{Spec: system.MustSpec("Native"),
		Workloads: []string{"namd"}, Refs: 3_000}})
	if reflect.DeepEqual(got[0].Results, base[0].Results) {
		t.Error("variant ran identically to default Native: the overlay never crossed the wire")
	}
}
