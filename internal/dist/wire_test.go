package dist

import (
	"encoding/json"
	"testing"
)

// TestMemberJSONPinned byte-pins Member's JSON form on the /status plane.
// Member was historically untagged, so its tags repeat the Go field
// names; a rename that changes this document breaks status consumers and
// must be reverted rather than re-pinned.
func TestMemberJSONPinned(t *testing.T) {
	m := Member{
		ID:       "http://w1:9000",
		Base:     "http://w1:9000",
		Weight:   4,
		Static:   true,
		Instance: "abc123",
	}
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"ID":"http://w1:9000","Base":"http://w1:9000","Weight":4,"Static":true,"Instance":"abc123"}`
	if string(b) != want {
		t.Errorf("Member wire form changed:\n got %s\nwant %s", b, want)
	}
}
