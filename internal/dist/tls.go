package dist

import (
	"crypto/tls"
	"crypto/x509"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"
)

// TLSOptions is the shared TLS/mTLS configuration of every dist and
// sweepd endpoint: the coordinator's fleet listener, the worker's shard
// server, the sweep daemon's API plane, and all of their clients. One
// flag triple covers both roles:
//
//   - -tls-cert/-tls-key: this process's own certificate. A server with a
//     certificate serves HTTPS instead of HTTP; a client with one presents
//     it (the mTLS client half).
//   - -tls-ca: the CA bundle the peer must chain to. On a server this
//     demands and verifies client certificates (mTLS); on a client it
//     replaces the system roots for verifying the server (so self-signed
//     fleet CAs work without touching the host trust store).
//
// All three empty means plain HTTP — the loopback default. The shared
// bearer token (AuthToken) is independent and composes: mTLS
// authenticates the transport, the token authorizes the request.
type TLSOptions struct {
	// CertFile/KeyFile are this process's PEM certificate and key.
	CertFile, KeyFile string
	// CAFile is the PEM CA bundle peers must chain to.
	CAFile string
}

// Flags registers the -tls-cert/-tls-key/-tls-ca triple on fs.
func (o *TLSOptions) Flags(fs *flag.FlagSet) {
	fs.StringVar(&o.CertFile, "tls-cert", "", "PEM certificate: serve HTTPS / present as client cert (with -tls-key)")
	fs.StringVar(&o.KeyFile, "tls-key", "", "PEM private key for -tls-cert")
	fs.StringVar(&o.CAFile, "tls-ca", "", "PEM CA bundle: verify peer certs (server: require client certs; client: trust this CA for servers)")
}

// Enabled reports whether any TLS material was configured.
func (o *TLSOptions) Enabled() bool {
	return o.CertFile != "" || o.KeyFile != "" || o.CAFile != ""
}

// Scheme returns the URL scheme endpoints default to under this
// configuration: "https" once any TLS material is configured, else "http".
func (o *TLSOptions) Scheme() string {
	if o.Enabled() {
		return "https"
	}
	return "http"
}

func (o *TLSOptions) certificate() (tls.Certificate, bool, error) {
	if o.CertFile == "" && o.KeyFile == "" {
		return tls.Certificate{}, false, nil
	}
	if o.CertFile == "" || o.KeyFile == "" {
		return tls.Certificate{}, false, fmt.Errorf("dist: -tls-cert and -tls-key must be given together")
	}
	cert, err := tls.LoadX509KeyPair(o.CertFile, o.KeyFile)
	if err != nil {
		return tls.Certificate{}, false, fmt.Errorf("dist: load key pair: %w", err)
	}
	return cert, true, nil
}

func (o *TLSOptions) caPool() (*x509.CertPool, error) {
	if o.CAFile == "" {
		return nil, nil
	}
	pem, err := os.ReadFile(o.CAFile)
	if err != nil {
		return nil, fmt.Errorf("dist: read CA bundle: %w", err)
	}
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(pem) {
		return nil, fmt.Errorf("dist: no certificates in CA bundle %s", o.CAFile)
	}
	return pool, nil
}

// ServerConfig builds the listener-side tls.Config: nil (plain HTTP) when
// no TLS material is configured. A certificate is mandatory to serve TLS;
// a CA bundle escalates to mTLS (client certificates required and
// verified against it).
func (o *TLSOptions) ServerConfig() (*tls.Config, error) {
	if !o.Enabled() {
		return nil, nil
	}
	cert, ok, err := o.certificate()
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("dist: serving TLS needs -tls-cert/-tls-key (got only -tls-ca)")
	}
	cfg := &tls.Config{
		Certificates: []tls.Certificate{cert},
		MinVersion:   tls.VersionTLS12,
	}
	pool, err := o.caPool()
	if err != nil {
		return nil, err
	}
	if pool != nil {
		cfg.ClientCAs = pool
		cfg.ClientAuth = tls.RequireAndVerifyClientCert
	}
	return cfg, nil
}

// Client builds an HTTP client for dialing fleet peers: the default
// client when no TLS material is configured, otherwise one whose
// transport trusts -tls-ca for server verification (falling back to the
// system roots when absent) and presents -tls-cert/-tls-key when given
// (the mTLS client half).
func (o *TLSOptions) Client() (*http.Client, error) {
	if !o.Enabled() {
		return http.DefaultClient, nil
	}
	cfg := &tls.Config{MinVersion: tls.VersionTLS12}
	pool, err := o.caPool()
	if err != nil {
		return nil, err
	}
	if pool != nil {
		cfg.RootCAs = pool
	}
	cert, ok, err := o.certificate()
	if err != nil {
		return nil, err
	}
	if ok {
		cfg.Certificates = []tls.Certificate{cert}
	}
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.TLSClientConfig = cfg
	return &http.Client{Transport: tr}, nil
}

// ApplyScheme prefixes every scheme-less endpoint with scheme://, so
// "-remote host:9471" under -tls-ca dials https without the operator
// spelling the scheme on every entry. Already-qualified endpoints pass
// through untouched (a mixed fleet stays expressible).
func ApplyScheme(endpoints []string, scheme string) []string {
	out := make([]string, len(endpoints))
	for i, ep := range endpoints {
		if strings.Contains(ep, "://") {
			out[i] = ep
		} else {
			out[i] = scheme + "://" + ep
		}
	}
	return out
}

// Serve starts an HTTP or HTTPS server (per tlsCfg) on addr and returns
// it with its bound listener address. Every dist/sweepd listener goes
// through here so TLS cannot be wired on one plane and forgotten on
// another.
func Serve(addr string, handler http.Handler, tlsCfg *tls.Config) (*http.Server, string, error) {
	srv := &http.Server{
		Addr:              addr,
		Handler:           handler,
		TLSConfig:         tlsCfg,
		ReadHeaderTimeout: 10 * time.Second,
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	go func() {
		if tlsCfg != nil {
			// Certificates come from TLSConfig; the file arguments are unused.
			srv.ServeTLS(ln, "", "")
		} else {
			srv.Serve(ln)
		}
	}()
	return srv, ln.Addr().String(), nil
}
