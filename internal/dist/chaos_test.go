package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"vbi/internal/harness"
	"vbi/internal/system"
)

// chaosCoordinator builds a coordinator tuned for fast membership churn in
// tests: tight polling, single-job shards, drop on first failure.
func chaosCoordinator(reg *Registry) *Coordinator {
	return &Coordinator{
		Fleet:        reg,
		ShardSize:    1,
		Retries:      1,
		Timeout:      time.Minute,
		PollInterval: 5 * time.Millisecond,
	}
}

// TestFleetJoinMidRun starts a dynamic-fleet sweep with no workers at all:
// the coordinator must wait (not fail), a worker joining after the sweep
// is already in flight must drain the whole batch, and the results must
// match the serial local run.
func TestFleetJoinMidRun(t *testing.T) {
	jobs := testJobs(t)
	want := localResults(t, jobs)

	reg := &Registry{TTL: time.Minute}
	regSrv := httptest.NewServer(reg.Handler())
	t.Cleanup(regSrv.Close)

	runDone := make(chan struct{})
	var got []harness.Result
	var runErr error
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	go func() {
		defer close(runDone)
		got, runErr = chaosCoordinator(reg).Run(ctx, jobs)
	}()

	// The sweep is in flight with zero members. Give the scheduler time to
	// enter its waiting state, then join a worker through the real
	// register+heartbeat path.
	time.Sleep(30 * time.Millisecond)
	select {
	case <-runDone:
		t.Fatal("sweep finished with no workers")
	default:
	}
	worker := newWorkerServer(t, 2)
	joinCtx, stopJoin := context.WithCancel(ctx)
	defer stopJoin()
	go (&Joiner{Coordinator: regSrv.URL, Advertise: worker.URL, Workers: 2}).Run(joinCtx)

	<-runDone
	if runErr != nil {
		t.Fatal(runErr)
	}
	matchLocal(t, got, want)
}

// TestChaosMembershipChurn is the full chaos scenario the dynamic fleet
// exists for: a sweep starts with one worker, which is killed while
// holding a shard; a second worker joins mid-run; the killed worker later
// rejoins (new process, same address) and serves again. The final matrix
// must be byte-identical to a serial local harness.Runner run.
func TestChaosMembershipChurn(t *testing.T) {
	grid := harness.Grid{
		Systems:   []string{"Native", "VBI-Full"},
		Workloads: []string{"namd", "sjeng"},
		Seeds:     []uint64{1, 2},
		Refs:      5_000,
	}
	jobs, err := grid.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	want, err := (&harness.Runner{Workers: 1}).Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}

	reg := &Registry{TTL: 250 * time.Millisecond}
	regSrv := httptest.NewServer(reg.Handler())
	t.Cleanup(regSrv.Close)

	// Worker D ("doomed"): its first /run blocks holding the shard until
	// the test kills it, at which point the connection is dropped exactly
	// as a kill -9 would. Until then it heartbeats like a live process.
	var (
		dHolding  = make(chan struct{}) // closed: D holds a shard
		dKilled   = make(chan struct{}) // closed: D is dead
		dRejoined atomic.Bool           // D's second incarnation is up
		dServed   atomic.Int64          // jobs served by the rejoined D
	)
	inner := (&Worker{Runner: &harness.Runner{Workers: 1}}).Handler()
	var dHoldOnce atomic.Bool
	doomed := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		if req.URL.Path != PathRun {
			inner.ServeHTTP(rw, req)
			return
		}
		if dRejoined.Load() {
			inner.ServeHTTP(rw, req)
			dServed.Add(1)
			return
		}
		if dHoldOnce.CompareAndSwap(false, true) {
			close(dHolding)
		}
		<-dKilled
		// Dead: drop the connection with the shard unanswered.
		hj, ok := rw.(http.Hijacker)
		if !ok {
			t.Error("response writer cannot hijack")
			return
		}
		if conn, _, err := hj.Hijack(); err == nil {
			conn.Close()
		}
	}))
	t.Cleanup(doomed.Close)

	// Worker B joins mid-run. It pauses before its fourth job until D has
	// rejoined and served something, which forces the rejoin to matter: B
	// alone is not allowed to finish the sweep.
	var bServed atomic.Int64
	bGate := make(chan struct{})
	bInner := (&Worker{Runner: &harness.Runner{Workers: 1}}).Handler()
	bWorker := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		if req.URL.Path == PathRun && bServed.Add(1) >= 4 {
			<-bGate
		}
		bInner.ServeHTTP(rw, req)
	}))
	t.Cleanup(bWorker.Close)

	// Phase 0: D registers (instance d1) and heartbeats every 50ms until
	// killed, through the real HTTP registration path. The heartbeat
	// goroutines must not touch t (they can outlive the test briefly), so
	// they re-register fire-and-forget.
	register := func(addr, instance string) {
		resp := postRegister(t, regSrv.URL, RegisterRequest{
			Version: ProtocolVersion, Workers: 1, Addr: addr, Instance: instance}, "")
		if resp.StatusCode != http.StatusOK {
			t.Errorf("register %s: %s", instance, resp.Status)
		}
	}
	heartbeat := func(addr, instance string) {
		b, err := json.Marshal(RegisterRequest{
			Version: ProtocolVersion, Workers: 1, Addr: addr, Instance: instance})
		if err != nil {
			return
		}
		resp, err := http.Post(regSrv.URL+PathRegister, "application/json", bytes.NewReader(b))
		if err == nil {
			resp.Body.Close()
		}
	}
	heartbeatCtx, stopHeartbeat := context.WithCancel(context.Background())
	defer stopHeartbeat()
	beat := func(addr, instance string, stop <-chan struct{}) {
		for {
			select {
			case <-heartbeatCtx.Done():
				return
			case <-stop:
				return
			case <-time.After(50 * time.Millisecond):
				heartbeat(addr, instance)
			}
		}
	}
	register(doomed.URL, "d1")
	go beat(doomed.URL, "d1", dKilled)

	runDone := make(chan struct{})
	var got []harness.Result
	var runErr error
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	go func() {
		defer close(runDone)
		got, runErr = chaosCoordinator(reg).Run(ctx, jobs)
	}()

	// Phase 1: wait until D holds a shard, then bring B in mid-run.
	select {
	case <-dHolding:
	case <-runDone:
		t.Fatal("sweep finished before the doomed worker held a shard")
	}
	register(bWorker.URL, "b1")
	go beat(bWorker.URL, "b1", nil)

	// Phase 2: B is making progress; kill D while it still holds the
	// shard. The drop must requeue D's jobs onto B.
	for bServed.Load() < 2 {
		select {
		case <-runDone:
			t.Fatal("sweep finished while the doomed worker still held a shard")
		case <-time.After(5 * time.Millisecond):
		}
	}
	close(dKilled)

	// Phase 3: D rejoins as a new process (same address, new instance) and
	// must be readmitted despite its failure quarantine. B stays gated
	// until the rejoined D serves at least one job.
	dRejoined.Store(true)
	register(doomed.URL, "d2")
	go beat(doomed.URL, "d2", nil)
	for dServed.Load() == 0 {
		select {
		case <-runDone:
			t.Fatal("sweep finished without the rejoined worker serving anything")
		case <-time.After(5 * time.Millisecond):
		}
	}
	close(bGate)

	<-runDone
	if runErr != nil {
		t.Fatal(runErr)
	}
	if dServed.Load() == 0 {
		t.Error("rejoined worker served nothing")
	}
	matchLocal(t, got, want)

	// The headline invariant: the rendered matrix — the sweep's actual
	// output artifact — is byte-identical to the serial local run's,
	// regardless of the membership churn above.
	wt, err := grid.Matrix(want, harness.MetricIPC)
	if err != nil {
		t.Fatal(err)
	}
	gt, err := grid.Matrix(got, harness.MetricIPC)
	if err != nil {
		t.Fatal(err)
	}
	if wt.Render() != gt.Render() {
		t.Errorf("chaos matrix differs from serial local run:\nlocal:\n%s\nchaos:\n%s",
			wt.Render(), gt.Render())
	}
}

// TestChaosWorkerDiesHoldingIntraJobShard kills a worker while it holds
// one slice of a time-sharded job: harness.JobShards slices a single
// simulation 4-way over a 2-worker coordinator, the doomed worker blocks
// on its first slice and has its connection dropped mid-run, the slice
// requeues onto the survivor, and the folded result must still be
// byte-identical to a serial, unsliced local run.
func TestChaosWorkerDiesHoldingIntraJobShard(t *testing.T) {
	job := harness.Job{Spec: system.MustSpec("VBI-Full"), Workloads: []string{"mcf"}, Refs: 8_000}
	want, err := (&harness.Runner{Workers: 1}).Run(context.Background(), []harness.Job{job})
	if err != nil {
		t.Fatal(err)
	}

	survivor := newWorkerServer(t, 1)

	var (
		dHolding = make(chan struct{}) // closed: doomed worker holds a slice
		dKilled  = make(chan struct{}) // closed: doomed worker is dead
		dHold    atomic.Bool
	)
	inner := (&Worker{Runner: &harness.Runner{Workers: 1}}).Handler()
	doomed := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		if req.URL.Path != PathRun {
			inner.ServeHTTP(rw, req)
			return
		}
		if dHold.CompareAndSwap(false, true) {
			close(dHolding)
		}
		<-dKilled
		hj, ok := rw.(http.Hijacker)
		if !ok {
			t.Error("response writer cannot hijack")
			return
		}
		if conn, _, err := hj.Hijack(); err == nil {
			conn.Close()
		}
	}))
	t.Cleanup(doomed.Close)

	coord := &Coordinator{
		Endpoints:    []string{doomed.URL, survivor.URL},
		ShardSize:    1,
		Retries:      1,
		Timeout:      time.Minute,
		PollInterval: 5 * time.Millisecond,
	}
	exec := &harness.JobShards{Inner: coord, K: 4}

	runDone := make(chan struct{})
	var got []harness.Result
	var runErr error
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	go func() {
		defer close(runDone)
		got, runErr = exec.Run(ctx, []harness.Job{job})
	}()

	select {
	case <-dHolding:
	case <-runDone:
		t.Fatal("sweep finished before the doomed worker held a slice")
	}
	close(dKilled)

	<-runDone
	if runErr != nil {
		t.Fatal(runErr)
	}
	matchLocal(t, got, want)
	if got[0].Timing == nil || got[0].Timing.Shards != 4 {
		t.Errorf("folded timing = %+v, want Shards=4", got[0].Timing)
	}
}
