package dist

import (
	"crypto/tls"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Member is one fleet worker as the coordinator sees it. It rides inside
// MemberInfo on the /status plane, so the json tags pin the historical
// (untagged) field names.
//
//vbi:wire
type Member struct {
	// ID is the normalized base URL; it doubles as the registry key, so a
	// worker re-registering the same address is an upsert, not a duplicate.
	ID string `json:"ID"`
	// Base is the URL shards are POSTed to (same as ID).
	Base string `json:"Base"`
	// Weight is the worker's advertised pool width: shards pulled per round.
	Weight int `json:"Weight"`
	// Static marks a pre-registered -remote endpoint: it sends no
	// heartbeats and is never TTL-evicted, only removed when it fails.
	Static bool `json:"Static"`
	// Instance identifies one worker process lifetime. A re-register with a
	// different instance is a restart (and clears any failure quarantine); a
	// re-register with the same instance is a heartbeat.
	Instance string `json:"Instance"`
}

// Registry is the coordinator-side worker-fleet membership table. Dynamic
// members join over HTTP (Handler serves PathRegister) and stay alive by
// re-registering periodically; a dynamic member that misses heartbeats for
// TTL is evicted. Static members (the -remote list, pre-registered via
// Add) never expire. The scheduler polls Live and spawns or cancels serve
// loops as membership churns, so a worker joining mid-sweep immediately
// starts pulling queued shards and a worker that dies has its in-flight
// shards requeued.
//
// A member removed for request failures (Remove) is quarantined: its
// heartbeats alone do not resurrect it (that would churn the scheduler
// against a wedged worker), but a register with a new Instance — a process
// restart — readmits it at once, and the quarantine lapses on its own:
// it starts at TTL and doubles per repeated drop of the same
// incarnation, capped at 8x TTL (see Remove).
type Registry struct {
	// TTL evicts a dynamic member this long after its last heartbeat and
	// is the base unit of the failure quarantine, which escalates from TTL
	// up to 8x TTL for repeated drops (<=0 = 15s). Workers are told to
	// re-register every TTL/3.
	TTL time.Duration
	// AuthToken, when non-empty, is required (constant-time bearer compare)
	// on every request Handler serves.
	AuthToken string
	// Log, when non-nil, receives join/eviction lines.
	Log io.Writer

	mu      sync.Mutex
	members map[string]*memberEntry
	dynamic bool

	logMu sync.Mutex // guards Log (logf runs on HTTP handler goroutines too)
}

type memberEntry struct {
	Member
	lastSeen    time.Time
	bannedUntil time.Time
	// drops counts failure removals of this incarnation; the quarantine
	// doubles with each one (capped), so a worker that deterministically
	// fails every shard decays to an occasional retry instead of churning
	// the scheduler forever. A new instance resets it.
	drops int
}

func (r *Registry) ttl() time.Duration {
	if r.TTL <= 0 {
		return 15 * time.Second
	}
	return r.TTL
}

func (r *Registry) logf(format string, args ...any) {
	if r.Log == nil {
		return
	}
	r.logMu.Lock()
	defer r.logMu.Unlock()
	fmt.Fprintf(r.Log, format+"\n", args...)
}

// Dynamic reports whether the registry accepts joins (Handler has been
// mounted). The scheduler waits for joins when a dynamic registry runs
// dry; a static registry running dry is fatal.
func (r *Registry) Dynamic() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dynamic
}

// Add registers (or refreshes) a member and returns its current record.
// For dynamic members this is the heartbeat: lastSeen moves, and a new
// Instance clears any failure quarantine.
func (r *Registry) Add(base string, weight int, static bool, instance string) Member {
	if weight <= 0 {
		weight = 1
	}
	id := baseURL(base)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.members == nil {
		r.members = map[string]*memberEntry{}
	}
	e, ok := r.members[id]
	if !ok {
		e = &memberEntry{Member: Member{ID: id, Base: id}}
		r.members[id] = e
		r.logf("dist: worker %s joined (weight %d)", id, weight)
	}
	if static {
		// Pre-registration of the -remote list. Static is sticky and the
		// pre-registration never clobbers a dynamic incarnation's identity
		// or lifts its quarantine — a worker that is both listed and
		// joining (-remote plus -join) keeps its restart semantics.
		e.Static = true
	} else {
		if instance != "" && instance != e.Instance {
			e.bannedUntil = time.Time{}
			e.drops = 0
		}
		e.Instance = instance
	}
	e.Weight = weight
	e.lastSeen = time.Now()
	return e.Member
}

// Remove drops a member after request failures and quarantines it: until
// the quarantine lapses or the worker re-registers with a new Instance,
// its heartbeats do not readmit it. The quarantine starts at TTL and
// doubles per repeated drop of the same incarnation (capped at 8×TTL),
// so a deterministically failing worker is retried occasionally rather
// than redialed in a tight drop/readmit loop.
func (r *Registry) Remove(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.members[id]
	if !ok {
		return
	}
	if e.Static {
		delete(r.members, id)
		return
	}
	e.drops++
	ban := r.ttl() << min(e.drops-1, 3)
	e.bannedUntil = time.Now().Add(ban)
}

// Leave removes a member voluntarily (a draining worker's /leave): no
// quarantine, no penalty — the worker said goodbye, and a later register
// (same or new instance) readmits it immediately.
func (r *Registry) Leave(base string) {
	id := baseURL(base)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[id]; ok {
		delete(r.members, id)
		r.logf("dist: worker %s left the fleet", id)
	}
}

// MemberInfo is one member plus the observability fields the status plane
// reports alongside it.
//
//vbi:wire
type MemberInfo struct {
	Member
	// LastSeen is the time of the member's most recent heartbeat (or
	// pre-registration, for static members).
	LastSeen time.Time `json:"last_seen"`
	// Quarantined reports a member currently banned after request
	// failures: registered but not schedulable.
	Quarantined bool `json:"quarantined,omitempty"`
}

// Snapshot returns every registered member — including quarantined ones,
// which Live hides — sorted by ID, for status/metrics reporting. It does
// not evict; only Live has scheduling side effects.
func (r *Registry) Snapshot() []MemberInfo {
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]MemberInfo, 0, len(r.members))
	for _, e := range r.members {
		out = append(out, MemberInfo{
			Member:      e.Member,
			LastSeen:    e.lastSeen,
			Quarantined: now.Before(e.bannedUntil),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// WeightOf returns a member's current advertised weight, or def when the
// member is no longer registered. Dispatch loops re-read it each round so
// a worker that re-registers with a different pool width (a restart on a
// bigger machine) is honored mid-run.
func (r *Registry) WeightOf(id string, def int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.members[id]; ok && e.Weight > 0 {
		return e.Weight
	}
	return def
}

// Live returns the current schedulable members, sorted by ID. Dynamic
// members whose heartbeat is older than TTL are evicted as a side effect.
func (r *Registry) Live() []Member {
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	// Visit members in sorted-ID order: the result comes out sorted
	// without a second pass, and eviction log lines land in a stable
	// order when several workers expire on the same poll.
	ids := make([]string, 0, len(r.members))
	for id := range r.members {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var out []Member
	for _, id := range ids {
		e := r.members[id]
		if !e.Static && now.Sub(e.lastSeen) > r.ttl() {
			r.logf("dist: evicting worker %s (no heartbeat for %s)", id, now.Sub(e.lastSeen).Round(time.Millisecond))
			delete(r.members, id)
			continue
		}
		if now.Before(e.bannedUntil) {
			continue
		}
		out = append(out, e.Member)
	}
	return out
}

// Handler returns the registration endpoint (PathRegister) and marks the
// registry dynamic. Mount it on the coordinator's fleet listener
// (vbisweep -fleet / vbibench -fleet). Requests are auth-gated when
// AuthToken is set, and a registration carrying a different
// ProtocolVersion is refused with 412 so a stale worker binary fails
// loudly at join time instead of poisoning a sweep.
func (r *Registry) Handler() http.Handler {
	r.mu.Lock()
	r.dynamic = true
	r.mu.Unlock()
	mux := http.NewServeMux()
	mux.HandleFunc(PathRegister, r.handleRegister)
	mux.HandleFunc(PathLeave, r.handleLeave)
	return requireAuth(r.AuthToken, mux)
}

// Mount registers the fleet routes on an existing mux (and marks the
// registry dynamic), for servers that serve more than the fleet protocol
// on one listener — the sweep daemon mounts its API and the fleet plane
// together. Auth is the caller's concern (the surrounding server gates
// everything once).
func (r *Registry) Mount(mux *http.ServeMux) {
	r.mu.Lock()
	r.dynamic = true
	r.mu.Unlock()
	mux.HandleFunc(PathRegister, r.handleRegister)
	mux.HandleFunc(PathLeave, r.handleLeave)
}

// ServeFleet binds a registration listener for dynamic workers: the CLI
// front-ends' -fleet flag. It warns (to logw) when the bind is reachable
// beyond loopback with neither a token nor TLS, starts serving joins
// (HTTPS when tlsCfg is non-nil), and returns the registry to hand to a
// Coordinator plus the server to Close when the sweep ends. prog names
// the calling binary in the log lines.
func ServeFleet(addr, token, prog string, tlsCfg *tls.Config, logw io.Writer) (*Registry, io.Closer, error) {
	if token == "" && tlsCfg == nil && NonLoopbackBind(addr) {
		fmt.Fprintf(logw, "%s: warning: fleet listener %s is reachable beyond loopback with no -auth-token or TLS; any host can serve shards\n", prog, addr)
	}
	reg := &Registry{AuthToken: token, Log: logw}
	srv, bound, err := Serve(addr, reg.Handler(), tlsCfg)
	if err != nil {
		return nil, nil, fmt.Errorf("fleet listener: %w", err)
	}
	fmt.Fprintf(logw, "%s: fleet listening on %s (workers join with vbiworker -join)\n", prog, bound)
	return reg, srv, nil
}

func (r *Registry) handleRegister(rw http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeJSON(rw, http.StatusMethodNotAllowed, errorBody{Error: "POST only"})
		return
	}
	var rr RegisterRequest
	if err := json.NewDecoder(req.Body).Decode(&rr); err != nil {
		writeJSON(rw, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad request: %v", err)})
		return
	}
	if rr.Version != ProtocolVersion {
		r.logf("dist: refused join from %s: worker is %s, coordinator is %s", req.RemoteAddr, rr.Version, ProtocolVersion)
		writeJSON(rw, http.StatusPreconditionFailed, errorBody{
			Error: fmt.Sprintf("version mismatch: worker %s, coordinator %s", rr.Version, ProtocolVersion)})
		return
	}
	addr, err := advertisedAddr(rr.Addr, req.RemoteAddr)
	if err != nil {
		writeJSON(rw, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	r.Add(addr, rr.Workers, false, rr.Instance)
	writeJSON(rw, http.StatusOK, RegisterResponse{
		Version:         ProtocolVersion,
		HeartbeatMillis: r.ttl().Milliseconds() / 3,
	})
}

// handleLeave serves a draining worker's voluntary deregistration. The
// body is the same RegisterRequest shape the join sends; no version gate
// — any worker may say goodbye, stale binary or not.
func (r *Registry) handleLeave(rw http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeJSON(rw, http.StatusMethodNotAllowed, errorBody{Error: "POST only"})
		return
	}
	var rr RegisterRequest
	if err := json.NewDecoder(req.Body).Decode(&rr); err != nil {
		writeJSON(rw, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad request: %v", err)})
		return
	}
	addr, err := advertisedAddr(rr.Addr, req.RemoteAddr)
	if err != nil {
		writeJSON(rw, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	r.Leave(addr)
	writeJSON(rw, http.StatusOK, RegisterResponse{Version: ProtocolVersion})
}

// advertisedAddr resolves a worker's advertised serving address. A missing
// or unspecified host (":9471", "0.0.0.0:9471") is filled in from the
// registering connection's source address, so a LAN worker can advertise
// just its port.
func advertisedAddr(adv, remote string) (string, error) {
	if adv == "" {
		return "", fmt.Errorf("register: no advertised address")
	}
	if strings.Contains(adv, "://") {
		return adv, nil
	}
	host, port, err := net.SplitHostPort(adv)
	if err != nil {
		return "", fmt.Errorf("register: advertised address %q: %w", adv, err)
	}
	if ip := net.ParseIP(host); host == "" || (ip != nil && ip.IsUnspecified()) {
		rhost, _, err := net.SplitHostPort(remote)
		if err != nil {
			return "", fmt.Errorf("register: cannot derive host for %q from %q", adv, remote)
		}
		host = rhost
	}
	return net.JoinHostPort(host, port), nil
}
