package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"vbi/internal/harness"
	"vbi/internal/obs"
)

// TestJobResultTimingWireBytes pins the wire3 JobResult encoding: the
// timing record travels beside the results under a fixed key set, so a
// worker and coordinator built from this commit agree byte-for-byte.
func TestJobResultTimingWireBytes(t *testing.T) {
	jr := JobResult{
		Cached: false,
		Timing: &obs.JobTiming{
			WallNanos:  1_500_000,
			QueueNanos: 2_000,
			Phases:     obs.PhaseCounts{TLB: 1, PWC: 2, Walk: 3, Cache: 4, DRAM: 5},
		},
	}
	b, err := json.Marshal(jr)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"results":null,"cached":false,"timing":{"wall_nanos":1500000,"queue_nanos":2000,"phases":{"tlb":1,"pwc":2,"walk":3,"cache":4,"dram":5}}}`
	if string(b) != want {
		t.Errorf("JobResult wire bytes:\n got %s\nwant %s", b, want)
	}
	// Without timing the field disappears entirely, so wire2-era readers
	// of the result payload see nothing new on cached-only responses.
	b, err = json.Marshal(JobResult{Cached: true})
	if err != nil {
		t.Fatal(err)
	}
	if want := `{"results":null,"cached":true}`; string(b) != want {
		t.Errorf("timing-less JobResult wire bytes:\n got %s\nwant %s", b, want)
	}
}

// logTraces extracts the "trace" attribute from every JSON log record in
// buf.
func logTraces(t *testing.T, buf *bytes.Buffer) []string {
	t.Helper()
	var out []string
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad log record %q: %v", line, err)
		}
		if tr, ok := rec["trace"].(string); ok {
			out = append(out, tr)
		}
	}
	return out
}

// TestTracePropagation runs a distributed batch with structured JSON
// logging on both sides and asserts the coordinator's per-shard trace
// chain ("<root>/<seq>") appears verbatim in the worker's records — the
// one-grep-joins-both-logs contract — and that per-job timing survives
// the wire back into the merged results.
func TestTracePropagation(t *testing.T) {
	jobs := testJobs(t)

	var workerLog, coordLog bytes.Buffer
	w := &Worker{
		Runner: &harness.Runner{Workers: 2},
		Logger: slog.New(slog.NewJSONHandler(&workerLog, nil)),
	}
	srv := httptest.NewServer(w.Handler())
	t.Cleanup(srv.Close)

	coord := &Coordinator{
		Endpoints: []string{srv.URL},
		Logger:    slog.New(slog.NewJSONHandler(&coordLog, nil)),
	}
	results, err := coord.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}

	coordTraces := logTraces(t, &coordLog)
	if len(coordTraces) == 0 {
		t.Fatal("coordinator logged no trace attributes")
	}
	var shardTraces []string
	for _, tr := range coordTraces {
		if strings.Contains(tr, "/") { // child IDs only; the root has no shard seq
			shardTraces = append(shardTraces, tr)
		}
	}
	if len(shardTraces) == 0 {
		t.Fatalf("coordinator logged no shard trace chains, only %v", coordTraces)
	}
	workerTraces := map[string]bool{}
	for _, tr := range logTraces(t, &workerLog) {
		workerTraces[tr] = true
	}
	for _, tr := range shardTraces {
		if !workerTraces[tr] {
			t.Errorf("shard trace %s never appeared in the worker's log (worker saw %v)", tr, workerTraces)
		}
	}

	// wire3 end-to-end: every remotely simulated job carries its timing
	// beside its results.
	for i, r := range results {
		if r.Timing == nil {
			t.Fatalf("result %d (%s) has no timing", i, r.Job.Describe())
		}
		if r.Timing.Cached {
			t.Errorf("result %d marked cached on a cacheless worker", i)
		}
		if r.Timing.WallNanos <= 0 {
			t.Errorf("result %d: wall %d ns, want > 0", i, r.Timing.WallNanos)
		}
		if r.Timing.Phases.IsZero() {
			t.Errorf("result %d: zero phase counts for a simulated job", i)
		}
	}
}

// scrape fetches a worker's /metrics exposition.
func scrape(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + PathMetrics)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", PathMetrics, resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics Content-Type = %q, want text/plain exposition", ct)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestWorkerMetricsDeterministic runs a shard through a worker and pins
// the /metrics exposition's shape: every new family present, label
// values in sorted order, and two scrapes of quiesced state
// byte-identical.
func TestWorkerMetricsDeterministic(t *testing.T) {
	jobs := testJobs(t)
	srv := newWorkerServer(t, 2)

	m := Member{ID: srv.URL, Base: srv.URL, Weight: 2}
	resp, fatal, retry := ExecuteShard(context.Background(), http.DefaultClient, m, "",
		time.Minute, jobs, "t-test/1")
	if fatal != nil || retry != nil {
		t.Fatalf("ExecuteShard: fatal=%v retry=%v", fatal, retry)
	}
	if len(resp.Results) != len(jobs) {
		t.Fatalf("%d results for %d jobs", len(resp.Results), len(jobs))
	}

	first := scrape(t, srv.URL)
	second := scrape(t, srv.URL)
	if first != second {
		t.Errorf("two scrapes of quiesced state differ:\n--- first\n%s\n--- second\n%s", first, second)
	}

	for _, want := range []string{
		"# TYPE vbiworker_in_flight_jobs gauge",
		"vbiworker_in_flight_jobs 0",
		"vbiworker_shards_total 1",
		`vbiworker_jobs_total{result="cached"} 0`,
		`vbiworker_jobs_total{result="simulated"} 4`,
		"# TYPE vbiworker_job_seconds histogram",
		`vbiworker_job_seconds_bucket{le="+Inf"} 4`,
		"vbiworker_job_seconds_count 4",
		`vbiworker_job_seconds_quantile{quantile="0.5"}`,
		`vbiworker_job_seconds_quantile{quantile="0.99"}`,
	} {
		if !strings.Contains(first, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Phase label order is pinned sorted; the counts themselves are
	// deterministic simulation counters, so just pin the order.
	idx := -1
	for _, phase := range []string{"cache", "dram", "pwc", "tlb", "walk"} {
		at := strings.Index(first, `vbiworker_phase_events_total{phase="`+phase+`"}`)
		if at < 0 {
			t.Fatalf("exposition missing phase %q", phase)
		}
		if at < idx {
			t.Errorf("phase %q rendered out of sorted order", phase)
		}
		idx = at
	}
}

// TestWorkerPprofGate asserts /debug/pprof is absent by default and
// served (behind the same handler) when Pprof is set.
func TestWorkerPprofGate(t *testing.T) {
	off := newWorkerServer(t, 1)
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("default worker serves /debug/pprof/: %s", resp.Status)
	}

	on := httptest.NewServer((&Worker{Runner: &harness.Runner{Workers: 1}, Pprof: true}).Handler())
	t.Cleanup(on.Close)
	resp, err = http.Get(on.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("-pprof worker refuses /debug/pprof/cmdline: %s", resp.Status)
	}
}
