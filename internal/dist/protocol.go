// Package dist shards harness job batches across machines. A
// Coordinator implements harness.Executor by partitioning a batch into
// shards and dispatching them over HTTP/JSON to Worker daemons
// (cmd/vbiworker), each of which wraps an ordinary local harness.Runner
// (own worker pool, own optional result cache).
//
// The design goal is the same determinism contract the local pool gives:
// a distributed run is byte-identical to a serial local run. Two
// mechanisms carry that guarantee across the network:
//
//   - Positional merge. Shards are sets of job indices; a shard's results
//     land at those indices in the output slice, so scheduling, worker
//     speed, retries and requeues cannot reorder anything.
//   - Version handshake. Workers advertise the ProtocolVersion baked into
//     their binary, and every /run request repeats the coordinator's. A
//     mismatch on either side aborts instead of degrading, so a stale
//     worker binary can never contribute results from a different timing
//     model, job schema or wire format.
//
// Failure handling is shard-granular: a failed or timed-out request
// requeues its shard for the surviving endpoints, and completed shards
// stream into the coordinator's on-disk cache as they arrive, so even an
// aborted sweep resumes incrementally.
package dist

import (
	"fmt"

	"vbi/internal/harness"
	"vbi/internal/obs"
	"vbi/internal/system"
)

// VersionLine is the canonical `-version` output every cmd/ binary
// prints: the wire protocol this build speaks and the harness schema
// its caches and journals are keyed under. One helper so the seven
// binaries cannot drift in format.
func VersionLine(tool string) string {
	return fmt.Sprintf("%s %s (harness %s)", tool, ProtocolVersion, harness.Version)
}

// ProtocolVersion names the dist wire format: the harness.Version (timing
// model + job schema) plus a wire revision. Every handshake, run request
// and registration carries it, and a mismatch on either side is fatal —
// the same "never mix models" stance as before, now also covering wire
// shape. wire2 made jobs self-describing (RunRequest jobs carry their
// fully resolved system.Spec, so a worker executes exactly the
// configuration the coordinator resolved and never consults its own
// spec registry); wire3 adds per-job timing to RunResponse: every
// JobResult carries an obs.JobTiming beside its results, so the
// coordinator sees where remote time went without the deterministic
// result payload changing by a byte; wire4 adds intra-job sharding to
// the Job schema (Slice and Shards fields) — a wire3 worker would
// silently drop the slice window and simulate the whole job, so the
// bump makes stale fleets fail fast at handshake instead.
const ProtocolVersion = harness.Version + "+wire4"

// URL paths of the fleet protocol. PathHealthz and PathRun are served by
// workers; PathRegister and PathLeave are served by the coordinator's
// fleet listener (vbisweep -fleet, vbisweepd). When a shared auth token
// is configured, every route on a gated server requires it
// (Authorization: Bearer <token>).
const (
	PathHealthz = "/healthz"
	PathRun     = "/run"
	// PathMetrics is the worker's Prometheus text exposition: jobs run,
	// per-phase event counters, job-latency histogram, in-flight gauge.
	PathMetrics  = "/metrics"
	PathRegister = "/register"
	// PathLeave is a draining worker's voluntary deregistration: the
	// member is removed at once instead of lingering until TTL eviction,
	// so the scheduler stops handing it shards immediately. Best-effort —
	// a worker that dies without leaving is still TTL-evicted.
	PathLeave = "/leave"
)

// Hello is the handshake response served on /healthz. The coordinator
// refuses endpoints whose Version differs from its own ProtocolVersion
// and uses Workers as the shard-planning weight.
//
//vbi:wire
type Hello struct {
	Service string `json:"service"` // always "vbiworker"
	Version string `json:"version"` // ProtocolVersion of the worker binary
	Workers int    `json:"workers"` // local pool width
	// Draining reports a worker winding down (SIGTERM received): it
	// finishes in-flight shards but refuses new ones, so a coordinator
	// should not select it at handshake time.
	Draining bool `json:"draining,omitempty"`
}

// RunRequest carries one shard: a batch of canonical harness job specs,
// each self-describing (the resolved system spec rides inside the job).
// Version must equal the worker's ProtocolVersion; it is re-checked on
// every request (not just the handshake) so a worker binary swapped
// mid-sweep cannot silently serve results from a different model.
//
//vbi:wire
type RunRequest struct {
	Version string        `json:"version"`
	Jobs    []harness.Job `json:"jobs"`
}

// JobResult is one job's result on the wire, positionally aligned with
// RunRequest.Jobs. (harness.Result repeats the job and strips the cached
// flag from JSON; the wire format is positional and keeps the flag so
// simulated-vs-cached accounting survives the hop.)
//
//vbi:wire
type JobResult struct {
	Results []system.RunResult `json:"results"`
	Cached  bool               `json:"cached"`
	// Timing is the job's measurement record on the worker (wall time,
	// queue wait, phase breakdown) — wire3's addition. It travels beside
	// Results, never inside them, so Results (what the coordinator caches
	// and renders) stays byte-identical to a serial local run.
	Timing *obs.JobTiming `json:"timing,omitempty"`
}

// RunResponse answers a RunRequest.
//
//vbi:wire
type RunResponse struct {
	Results []JobResult `json:"results"`
}

// RegisterRequest is a worker's join — and, repeated periodically, its
// heartbeat. Version must equal the coordinator's ProtocolVersion (a
// mismatch is refused with 412 so a stale binary fails at join time).
//
//vbi:wire
type RegisterRequest struct {
	Version string `json:"version"`
	// Workers is the advertised pool width (the shard-planning weight).
	Workers int `json:"workers"`
	// Addr is the address the worker serves /run on, as "host:port" or a
	// base URL. An empty or unspecified host is filled in from the
	// registering connection's source address.
	Addr string `json:"addr"`
	// Instance identifies this worker process lifetime (any random string
	// chosen at startup). A changed instance tells the coordinator the
	// worker restarted, which readmits it even when its previous
	// incarnation was dropped for failures.
	Instance string `json:"instance,omitempty"`
}

// RegisterResponse answers a RegisterRequest.
//
//vbi:wire
type RegisterResponse struct {
	Version string `json:"version"` // coordinator's ProtocolVersion
	// HeartbeatMillis is how often the coordinator expects the worker to
	// re-register; missing heartbeats for 3× this evicts the worker.
	HeartbeatMillis int64 `json:"heartbeat_millis"`
}

// errorBody is the JSON body of every non-200 worker response.
//
//vbi:wire
type errorBody struct {
	Error string `json:"error"`
}
