package dist

import (
	"crypto/subtle"
	"net"
	"net/http"
	"os"
	"strings"
)

// AuthEnv is the environment variable both CLIs fall back to when
// -auth-token is not given, so a fleet-wide token can live in the
// environment instead of on process command lines.
const AuthEnv = "VBI_AUTH_TOKEN"

// ResolveToken returns the -auth-token flag value, or $VBI_AUTH_TOKEN when
// the flag is empty.
func ResolveToken(flagValue string) string {
	if flagValue != "" {
		return flagValue
	}
	return os.Getenv(AuthEnv)
}

// setAuth attaches the shared fleet token to an outgoing request.
func setAuth(req *http.Request, token string) {
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
}

// checkAuth reports whether a request carries the shared token as a
// bearer credential (the scheme is required — a malformed header is a
// 401, not a second accepted form). The token comparison is
// constant-time so the token cannot be guessed byte by byte from
// response timing. An empty configured token means auth is off.
func checkAuth(token string, req *http.Request) bool {
	if token == "" {
		return true
	}
	const scheme = "Bearer "
	h := req.Header.Get("Authorization")
	if !strings.HasPrefix(h, scheme) {
		return false
	}
	return subtle.ConstantTimeCompare([]byte(h[len(scheme):]), []byte(token)) == 1
}

// requireAuth wraps a handler with the shared-token gate: when token is
// non-empty, every request without the exact bearer token gets 401. Both
// sides of the protocol are gated — the worker's /healthz and /run, and
// the coordinator's /register — so neither an unauthenticated coordinator
// can hand shards to a fleet nor an unauthenticated host can join one.
func requireAuth(token string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		if !checkAuth(token, req) {
			writeJSON(rw, http.StatusUnauthorized, errorBody{Error: "missing or wrong auth token"})
			return
		}
		next.ServeHTTP(rw, req)
	})
}

// RequireAuth is requireAuth for other packages building on the dist
// control plane (the sweep daemon gates its API with the same shared
// token that gates the fleet routes).
func RequireAuth(token string, next http.Handler) http.Handler {
	return requireAuth(token, next)
}

// NonLoopbackBind reports whether a listen address accepts connections
// from beyond the loopback interface. The CLIs use it to warn when a
// worker or fleet listener is reachable from the network without an auth
// token configured.
func NonLoopbackBind(addr string) bool {
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		host = addr
	}
	if host == "" {
		return true // ":9471" binds every interface
	}
	if host == "localhost" {
		return false
	}
	ip := net.ParseIP(host)
	if ip == nil {
		return true // a hostname: assume routable
	}
	return !ip.IsLoopback()
}
