package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vbi/internal/harness"
	"vbi/internal/obs"
)

// Coordinator executes job batches by sharding them across remote Worker
// endpoints. It implements harness.Executor, so every sweep front-end
// that takes an executor can run distributed unchanged.
//
// The fleet can be static, dynamic, or both. Endpoints lists workers
// known up front (the -remote flag); they are handshaken and
// pre-registered. Fleet, when non-nil, is a membership registry whose
// /register endpoint the coordinator's front-end serves (-fleet): workers
// join and leave while the sweep runs, a joiner immediately starts
// pulling queued shards, and a worker that dies — detected by request
// failure or missed heartbeats — has its in-flight shards requeued for
// the survivors.
//
// Scheduling is work-pulling: the batch is cut into fixed-size shards of
// job indices, and each live member repeatedly pulls up to its advertised
// worker count of shards per request, so faster and wider workers
// naturally take more of the batch. A member that fails Retries
// consecutive times is dropped (and, for dynamic members, quarantined in
// the registry). Results merge positionally and completed shards stream
// into Cache as they arrive, so the output is byte-identical to a serial
// local run regardless of membership history, and an aborted sweep
// resumes incrementally.
type Coordinator struct {
	// Endpoints lists workers as "host:port" (or full base URLs), known up
	// front. With no Endpoints and no Fleet, the batch runs on Local (or a
	// default runner).
	Endpoints []string
	// Fleet, when non-nil, supplies dynamically joining workers. The
	// front-end mounts Fleet.Handler() on a listener; the coordinator only
	// reads membership. A sweep with a dynamic fleet and no live workers
	// waits for a join instead of failing.
	Fleet *Registry
	// AuthToken, when non-empty, is sent (bearer) on every worker request.
	// It must match the workers' configured token.
	AuthToken string
	// Cache, when non-nil, serves jobs before any network traffic and
	// stores every remote result, giving distributed sweeps the same
	// incremental re-run behavior as local ones.
	Cache *harness.Cache
	// Local runs the batch when no endpoints or fleet are configured.
	Local *harness.Runner
	// ShardSize is the number of jobs per shard, the requeue granularity
	// (<=0 = 4).
	ShardSize int
	// Timeout bounds one /run request (<=0 = 10m). It must cover a full
	// shard's simulation time, not one job's.
	Timeout time.Duration
	// Retries is how many consecutive failures drop an endpoint (<=0 =
	// default 2; 1 = drop on the first failure).
	Retries int
	// PollInterval is the membership-churn poll cadence: how often the
	// scheduler looks for joined, evicted or failed members (<=0 = 250ms).
	PollInterval time.Duration
	// Progress, when non-nil, receives shard-level progress lines.
	Progress io.Writer
	// Logger, when non-nil, receives structured shard-lifecycle records
	// (dispatch, completion, failure). Each Run mints a root trace ID and
	// numbers its shards ("<root>/<seq>"); the chain is sent to workers in
	// the obs.TraceHeader header and attached to every record here, so one
	// grep follows a shard through both processes' logs.
	Logger *slog.Logger
	// Client, when non-nil, overrides the HTTP client (tests).
	Client *http.Client

	mu sync.Mutex // guards Progress
}

// traceSeq numbers one Run's shard dispatches under its root trace ID.
// Per-run (not per-Coordinator) state, so a reused Coordinator value
// keeps runs' chains distinct.
type traceSeq struct {
	root string
	seq  atomic.Int64
}

func (t *traceSeq) next() string {
	return obs.ChildID(t.root, t.seq.Add(1))
}

func (c *Coordinator) log() *slog.Logger {
	if c.Logger != nil {
		return c.Logger
	}
	return obs.Discard
}

var _ harness.Executor = (*Coordinator)(nil)

func (c *Coordinator) logf(format string, args ...any) {
	if c.Progress == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	fmt.Fprintf(c.Progress, format+"\n", args...)
}

func (c *Coordinator) client() *http.Client {
	if c.Client != nil {
		return c.Client
	}
	return http.DefaultClient
}

func (c *Coordinator) shardSize() int {
	if c.ShardSize <= 0 {
		return 4
	}
	return c.ShardSize
}

func (c *Coordinator) timeout() time.Duration {
	if c.Timeout <= 0 {
		return 10 * time.Minute
	}
	return c.Timeout
}

func (c *Coordinator) retries() int {
	if c.Retries <= 0 {
		return 2
	}
	return c.Retries
}

func (c *Coordinator) pollInterval() time.Duration {
	if c.PollInterval <= 0 {
		return 250 * time.Millisecond
	}
	return c.PollInterval
}

// SplitEndpoints parses a comma-separated -remote flag value into an
// endpoint list, dropping empty entries. Both CLIs use it so -remote
// parsing cannot diverge between them.
func SplitEndpoints(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// baseURL normalizes a configured endpoint to a scheme-qualified base.
func baseURL(ep string) string {
	if strings.Contains(ep, "://") {
		return strings.TrimSuffix(ep, "/")
	}
	return "http://" + ep
}

// shardQueue holds unassigned shards (slices of job indices). Members
// pull from it and push failed shards back; order is irrelevant because
// the merge is positional.
type shardQueue struct {
	mu     sync.Mutex
	shards [][]int
}

func (q *shardQueue) push(shards ...[]int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.shards = append(q.shards, shards...)
}

// popUpTo removes and returns at most n shards.
func (q *shardQueue) popUpTo(n int) [][]int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if n > len(q.shards) {
		n = len(q.shards)
	}
	out := make([][]int, n)
	copy(out, q.shards[:n])
	q.shards = q.shards[n:]
	return out
}

// Run implements harness.Executor. With no endpoints and no fleet it
// delegates to the local runner; otherwise it validates, serves what it
// can from Cache, handshakes the static endpoints, and dispatches the
// remaining jobs as shards across the (possibly churning) membership.
// The first fatal condition (version mismatch, a static-only fleet fully
// dead, context cancelled) aborts the batch; already-completed shards
// remain in Cache.
func (c *Coordinator) Run(ctx context.Context, jobs []harness.Job) ([]harness.Result, error) {
	if len(c.Endpoints) == 0 && c.Fleet == nil {
		r := c.Local
		if r == nil {
			r = &harness.Runner{Cache: c.Cache, Progress: c.Progress}
		}
		return r.Run(ctx, jobs)
	}
	// Fail fast before any network traffic, exactly like the local pool.
	for i, j := range jobs {
		if err := j.Validate(); err != nil {
			return nil, fmt.Errorf("job %d (%s): %w", i, j.Describe(), err)
		}
	}
	if len(jobs) == 0 {
		return nil, nil
	}

	// Cache pre-pass: only misses travel. A fully warmed sweep never
	// contacts a worker at all.
	results := make([]harness.Result, len(jobs))
	var miss []int
	for i, j := range jobs {
		if c.Cache != nil {
			if res, ok := c.Cache.Get(j); ok {
				c.logf("  [cache] %s", j.Describe())
				results[i] = harness.Result{Job: j, Results: res, Cached: true}
				continue
			}
		}
		miss = append(miss, i)
	}
	if len(miss) == 0 {
		return results, nil
	}

	reg := c.Fleet
	if reg == nil {
		// The static -remote path is a degenerate fleet: every member is
		// pre-registered, nothing ever joins, and running dry is fatal.
		// No Log: the coordinator already narrates the handshake, and two
		// independently-locked writers to one Progress stream could
		// interleave.
		reg = &Registry{}
	}
	statics, err := c.handshake(ctx)
	if err != nil {
		return nil, err
	}
	if len(statics) == 0 && len(c.Endpoints) > 0 && !reg.Dynamic() {
		return nil, fmt.Errorf("dist: no live workers among %s", strings.Join(c.Endpoints, ","))
	}
	for _, h := range statics {
		reg.Add(h.base, h.workers, true, "")
	}

	q := &shardQueue{}
	size := c.shardSize()
	nshards := 0
	for lo := 0; lo < len(miss); lo += size {
		hi := lo + size
		if hi > len(miss) {
			hi = len(miss)
		}
		q.push(miss[lo:hi])
		nshards++
	}
	ts := &traceSeq{root: obs.NewTraceID()}
	c.logf("dist: %d jobs in %d shards across %d workers", len(miss), nshards, len(reg.Live()))
	c.log().Info("batch start", "trace", ts.root, "jobs", len(miss), "shards", nshards, "workers", len(reg.Live()))

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		remaining atomic.Int64
		fatalMu   sync.Mutex
		fatalErr  error
		doneOnce  sync.Once
	)
	done := make(chan struct{})
	remaining.Store(int64(len(miss)))
	fail := func(err error) {
		fatalMu.Lock()
		if fatalErr == nil {
			fatalErr = err
		}
		fatalMu.Unlock()
		cancel()
	}
	merged := func(n int64) {
		if remaining.Add(-n) == 0 {
			doneOnce.Do(func() { close(done) })
		}
	}

	c.schedule(runCtx, reg, q, ts, jobs, results, &remaining, merged, done, fail)

	fatalMu.Lock()
	err = fatalErr
	fatalMu.Unlock()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if n := remaining.Load(); n != 0 {
		return nil, fmt.Errorf("dist: %d jobs left unexecuted", n)
	}
	return results, nil
}

// memberLoop tracks one member's running serve goroutine.
type memberLoop struct {
	cancel context.CancelFunc
	done   chan struct{}
}

// schedule runs serve loops for the registry's live members until every
// missing job has merged, a fatal error occurs, or ctx is cancelled.
// Membership is re-polled every PollInterval: a joined member gets a
// serve loop immediately, an evicted or quarantined member has its loop
// cancelled (in-flight shards requeue through the normal failure path),
// and a static-only fleet running dry fails the batch.
func (c *Coordinator) schedule(ctx context.Context, reg *Registry, q *shardQueue, ts *traceSeq,
	jobs []harness.Job, results []harness.Result,
	remaining *atomic.Int64, merged func(int64), done <-chan struct{}, fail func(error)) {

	active := map[string]*memberLoop{}
	var (
		errMu   sync.Mutex
		lastErr error
	)
	recordErr := func(err error) {
		errMu.Lock()
		lastErr = err
		errMu.Unlock()
	}

	stopAll := func() {
		//vbi:allow maporder cancel is idempotent per loop; order immaterial, results merge positionally
		for _, l := range active {
			l.cancel()
		}
		//vbi:allow maporder joins every loop; completion set, not order, is what matters
		for _, l := range active {
			<-l.done
		}
	}

	ticker := time.NewTicker(c.pollInterval())
	defer ticker.Stop()
	waiting := false
	for {
		// Reap exited loops so a rejoined member can be re-served.
		//vbi:allow maporder per-member reap; each entry is tested and deleted independently
		for id, l := range active {
			select {
			case <-l.done:
				delete(active, id)
			default:
			}
		}
		live := reg.Live()
		alive := map[string]bool{}
		for _, m := range live {
			alive[m.ID] = true
		}
		// Cancel loops whose member was evicted (missed heartbeats) or
		// quarantined: a dead worker's loop must not sit on the queue.
		//vbi:allow maporder per-member cancel; entries are independent and cancel is idempotent
		for id, l := range active {
			if !alive[id] {
				l.cancel()
			}
		}
		for _, m := range live {
			if _, ok := active[m.ID]; ok {
				continue
			}
			mctx, mcancel := context.WithCancel(ctx)
			l := &memberLoop{cancel: mcancel, done: make(chan struct{})}
			active[m.ID] = l
			go func(m Member) {
				defer close(l.done)
				defer mcancel()
				c.serve(mctx, m, reg, q, ts, jobs, results, remaining, merged, fail, recordErr)
			}(m)
		}
		if len(active) == 0 && remaining.Load() > 0 {
			if !reg.Dynamic() {
				errMu.Lock()
				err := lastErr
				errMu.Unlock()
				if err == nil {
					err = fmt.Errorf("dist: no live workers")
				}
				fail(fmt.Errorf("dist: every worker failed: %w", err))
				return
			}
			if !waiting {
				waiting = true
				c.logf("dist: no live workers; waiting for joins (%d jobs queued)", remaining.Load())
			}
		} else {
			waiting = false
		}
		select {
		case <-ctx.Done():
			stopAll()
			return
		case <-done:
			stopAll()
			return
		case <-ticker.C:
		}
	}
}

// staticHello is one handshaken -remote endpoint.
type staticHello struct {
	base    string
	workers int
}

// handshake probes every configured static endpoint. Unreachable
// endpoints are dropped with a warning (the rest of the fleet absorbs
// their share); a version mismatch is fatal for the whole run, because a
// stale worker binary means the operator's fleet disagrees about the
// timing model and silently excluding it would hide that.
func (c *Coordinator) handshake(ctx context.Context) ([]staticHello, error) {
	if len(c.Endpoints) == 0 {
		return nil, nil
	}
	// Probe concurrently: a fleet with a few unroutable hosts must not
	// serialize their dial timeouts in front of the live workers.
	hellos := make([]Hello, len(c.Endpoints))
	errs := make([]error, len(c.Endpoints))
	var wg sync.WaitGroup
	for i, name := range c.Endpoints {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			hellos[i], errs[i] = c.hello(ctx, baseURL(name))
		}(i, name)
	}
	wg.Wait()
	// A cancelled batch is a cancellation, not a fleet of unreachable
	// workers.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var out []staticHello
	for i, name := range c.Endpoints {
		if errs[i] != nil {
			c.logf("dist: dropping unreachable worker %s: %v", name, errs[i])
			continue
		}
		h := hellos[i]
		if h.Version != ProtocolVersion {
			return nil, fmt.Errorf("dist: worker %s runs %s, coordinator runs %s: refusing to mix timing models",
				name, h.Version, ProtocolVersion)
		}
		if h.Draining {
			c.logf("dist: skipping draining worker %s", name)
			continue
		}
		out = append(out, staticHello{base: baseURL(name), workers: h.Workers})
	}
	return out, nil
}

// hello fetches an endpoint's handshake, retrying briefly so a worker
// still binding its socket (the loopback-smoke race) is not dropped.
func (c *Coordinator) hello(ctx context.Context, base string) (Hello, error) {
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 {
			if err := sleepCtx(ctx, 300*time.Millisecond); err != nil {
				return Hello{}, err
			}
		}
		h, err := c.helloOnce(ctx, base)
		if err == nil {
			return h, nil
		}
		lastErr = err
	}
	return Hello{}, lastErr
}

func (c *Coordinator) helloOnce(ctx context.Context, base string) (Hello, error) {
	return Probe(ctx, c.client(), base, c.AuthToken)
}

// Probe fetches one endpoint's handshake (PathHealthz). It is the
// client half every fleet front-end shares: the coordinator's static
// handshake and the sweep daemon's -remote pre-registration both go
// through it.
func Probe(ctx context.Context, client *http.Client, base, token string) (Hello, error) {
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL(base)+PathHealthz, nil)
	if err != nil {
		return Hello{}, err
	}
	setAuth(req, token)
	resp, err := client.Do(req)
	if err != nil {
		return Hello{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Hello{}, fmt.Errorf("healthz: %s", resp.Status)
	}
	var h Hello
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return Hello{}, fmt.Errorf("healthz: %w", err)
	}
	return h, nil
}

// serve is one member's dispatch loop: pull up to weight shards, send
// them as one request, merge or requeue. It exits when the member's
// context is cancelled (eviction, or the run ending) or when the member
// is dropped for consecutive failures.
func (c *Coordinator) serve(ctx context.Context, m Member, reg *Registry, q *shardQueue, ts *traceSeq,
	jobs []harness.Job, results []harness.Result,
	remaining *atomic.Int64, merged func(int64), fail, recordErr func(error)) {
	consecutive := 0
	for {
		if ctx.Err() != nil {
			return
		}
		// Re-read the weight each round: a member that re-registered with a
		// different pool width (restarted on different hardware) pulls at
		// its new width immediately.
		shards := q.popUpTo(reg.WeightOf(m.ID, m.Weight))
		if len(shards) == 0 {
			if remaining.Load() == 0 {
				return
			}
			// Another member holds the rest in flight; it may requeue.
			if sleepCtx(ctx, 25*time.Millisecond) != nil {
				return
			}
			continue
		}
		var indices []int
		for _, s := range shards {
			indices = append(indices, s...)
		}
		trace := ts.next()
		log := c.log().With("trace", trace, "worker", m.ID)
		log.Info("shard dispatch", "jobs", len(indices))
		start := time.Now()
		resp, fatal, err := c.runShard(ctx, m, indices, jobs, trace)
		if fatal != nil {
			q.push(shards...)
			log.Error("shard fatal", "err", fatal)
			fail(fatal)
			return
		}
		if err != nil {
			q.push(shards...)
			// A cancelled member (evicted mid-request, or the run ending)
			// is not a worker failure: requeue and leave quietly.
			if ctx.Err() != nil {
				return
			}
			consecutive++
			if consecutive >= c.retries() {
				c.logf("dist: dropping worker %s after %d consecutive failures: %v", m.ID, consecutive, err)
				log.Warn("worker dropped", "failures", consecutive, "err", err)
				recordErr(fmt.Errorf("last error from %s: %w", m.ID, err))
				reg.Remove(m.ID)
				return
			}
			c.logf("dist: %s failed (attempt %d, %d jobs requeued): %v", m.ID, consecutive, len(indices), err)
			log.Warn("shard requeued", "attempt", consecutive, "jobs", len(indices), "err", err)
			if sleepCtx(ctx, time.Duration(consecutive)*100*time.Millisecond) != nil {
				return
			}
			continue
		}
		consecutive = 0
		for k, idx := range indices {
			jr := resp.Results[k]
			// Timing rides beside the results into the merged matrix; the
			// cache stores only jr.Results, so cached bytes stay identical
			// to a serial local run.
			results[idx] = harness.Result{Job: jobs[idx], Results: jr.Results, Cached: jr.Cached, Timing: jr.Timing}
			if c.Cache != nil {
				if err := c.Cache.Put(jobs[idx], jr.Results); err != nil {
					fail(fmt.Errorf("cache put: %w", err))
					return
				}
			}
			merged(1)
		}
		c.logf("dist: %s completed %d jobs (%d remaining)", m.ID, len(indices), remaining.Load())
		log.Info("shard complete", "jobs", len(indices), "seconds", time.Since(start).Seconds(), "remaining", remaining.Load())
	}
}

// runShard sends one batch to one member. The second return is a fatal
// error (version mismatch: abort the run), the third a retryable one
// (requeue the shards).
func (c *Coordinator) runShard(ctx context.Context, m Member, indices []int,
	jobs []harness.Job, trace string) (RunResponse, error, error) {
	batch := make([]harness.Job, len(indices))
	for k, idx := range indices {
		batch[k] = jobs[idx]
	}
	return ExecuteShard(ctx, c.client(), m, c.AuthToken, c.timeout(), batch, trace)
}

// ExecuteShard sends one job batch to one member over the wire protocol
// and returns its positional results. The second return is a fatal error
// (version mismatch: this worker can never serve this process), the
// third a retryable one (requeue the shard for the rest of the fleet).
// The coordinator's dispatch loop and the sweep daemon's scheduler share
// it, so the protocol cannot drift between the one-shot and daemon paths.
// A non-empty trace is sent as the obs.TraceHeader header; the worker
// attaches it to its shard log records, joining the two processes' logs.
func ExecuteShard(ctx context.Context, client *http.Client, m Member, token string,
	timeout time.Duration, batch []harness.Job, trace string) (RunResponse, error, error) {
	body, err := json.Marshal(RunRequest{Version: ProtocolVersion, Jobs: batch})
	if err != nil {
		return RunResponse{}, nil, err
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, m.Base+PathRun, bytes.NewReader(body))
	if err != nil {
		return RunResponse{}, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if trace != "" {
		req.Header.Set(obs.TraceHeader, trace)
	}
	setAuth(req, token)
	resp, err := client.Do(req)
	if err != nil {
		return RunResponse{}, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		json.NewDecoder(resp.Body).Decode(&eb)
		if eb.Error == "" {
			eb.Error = resp.Status
		}
		if resp.StatusCode == http.StatusPreconditionFailed {
			return RunResponse{}, fmt.Errorf("dist: worker %s: %s", m.ID, eb.Error), nil
		}
		return RunResponse{}, nil, fmt.Errorf("run: %s: %s", resp.Status, eb.Error)
	}
	var rr RunResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		return RunResponse{}, nil, fmt.Errorf("run: decode: %w", err)
	}
	if len(rr.Results) != len(batch) {
		return RunResponse{}, nil, fmt.Errorf("run: %d results for %d jobs", len(rr.Results), len(batch))
	}
	return rr, nil, nil
}

// sleepCtx sleeps d or returns early with ctx's error.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
