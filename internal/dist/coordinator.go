package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"vbi/internal/harness"
)

// Coordinator executes job batches by sharding them across remote Worker
// endpoints. It implements harness.Executor, so every sweep front-end
// that takes an executor can run distributed unchanged.
//
// Scheduling is work-pulling: the batch is cut into fixed-size shards of
// job indices, and each live endpoint repeatedly pulls up to its
// advertised worker count of shards per request, so faster and wider
// workers naturally take more of the batch. A failed or timed-out
// request requeues its shards for the survivors; an endpoint that fails
// Retries consecutive times is dropped. Results merge positionally and
// completed shards stream into Cache as they arrive, so the output is
// byte-identical to a serial local run and an aborted sweep resumes
// incrementally from the cache.
type Coordinator struct {
	// Endpoints lists workers as "host:port" (or full base URLs). Empty
	// means local fallback: the batch runs on Local (or a default runner).
	Endpoints []string
	// Cache, when non-nil, serves jobs before any network traffic and
	// stores every remote result, giving distributed sweeps the same
	// incremental re-run behavior as local ones.
	Cache *harness.Cache
	// Local runs the batch when Endpoints is empty.
	Local *harness.Runner
	// ShardSize is the number of jobs per shard, the requeue granularity
	// (<=0 = 4).
	ShardSize int
	// Timeout bounds one /run request (<=0 = 10m). It must cover a full
	// shard's simulation time, not one job's.
	Timeout time.Duration
	// Retries is how many consecutive failures drop an endpoint (<=0 =
	// default 2; 1 = drop on the first failure).
	Retries int
	// Progress, when non-nil, receives shard-level progress lines.
	Progress io.Writer
	// Client, when non-nil, overrides the HTTP client (tests).
	Client *http.Client

	mu sync.Mutex // guards Progress
}

var _ harness.Executor = (*Coordinator)(nil)

func (c *Coordinator) logf(format string, args ...any) {
	if c.Progress == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	fmt.Fprintf(c.Progress, format+"\n", args...)
}

func (c *Coordinator) client() *http.Client {
	if c.Client != nil {
		return c.Client
	}
	return http.DefaultClient
}

func (c *Coordinator) shardSize() int {
	if c.ShardSize <= 0 {
		return 4
	}
	return c.ShardSize
}

func (c *Coordinator) timeout() time.Duration {
	if c.Timeout <= 0 {
		return 10 * time.Minute
	}
	return c.Timeout
}

func (c *Coordinator) retries() int {
	if c.Retries <= 0 {
		return 2
	}
	return c.Retries
}

// SplitEndpoints parses a comma-separated -remote flag value into an
// endpoint list, dropping empty entries. Both CLIs use it so -remote
// parsing cannot diverge between them.
func SplitEndpoints(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// baseURL normalizes a configured endpoint to a scheme-qualified base.
func baseURL(ep string) string {
	if strings.Contains(ep, "://") {
		return strings.TrimSuffix(ep, "/")
	}
	return "http://" + ep
}

// endpoint is a handshaken worker.
type endpoint struct {
	name   string // as configured, for messages
	base   string
	weight int // advertised pool width: shards pulled per round
}

// shardQueue holds unassigned shards (slices of job indices). Endpoints
// pull from it and push failed shards back; order is irrelevant because
// the merge is positional.
type shardQueue struct {
	mu     sync.Mutex
	shards [][]int
}

func (q *shardQueue) push(shards ...[]int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.shards = append(q.shards, shards...)
}

// popUpTo removes and returns at most n shards.
func (q *shardQueue) popUpTo(n int) [][]int {
	q.mu.Lock()
	defer q.mu.Unlock()
	if n > len(q.shards) {
		n = len(q.shards)
	}
	out := make([][]int, n)
	copy(out, q.shards[:n])
	q.shards = q.shards[n:]
	return out
}

// Run implements harness.Executor. With no endpoints it delegates to the
// local runner; otherwise it validates, serves what it can from Cache,
// handshakes every endpoint, and dispatches the remaining jobs as shards.
// The first fatal condition (version mismatch, every endpoint dead,
// context cancelled) aborts the batch; already-completed shards remain in
// Cache.
func (c *Coordinator) Run(ctx context.Context, jobs []harness.Job) ([]harness.Result, error) {
	if len(c.Endpoints) == 0 {
		r := c.Local
		if r == nil {
			r = &harness.Runner{Cache: c.Cache, Progress: c.Progress}
		}
		return r.Run(ctx, jobs)
	}
	// Fail fast before any network traffic, exactly like the local pool.
	for i, j := range jobs {
		if err := j.Validate(); err != nil {
			return nil, fmt.Errorf("job %d (%s): %w", i, j.Describe(), err)
		}
	}
	if len(jobs) == 0 {
		return nil, nil
	}

	// Cache pre-pass: only misses travel. A fully warmed sweep never
	// contacts a worker at all.
	results := make([]harness.Result, len(jobs))
	var miss []int
	for i, j := range jobs {
		if c.Cache != nil {
			if res, ok := c.Cache.Get(j); ok {
				c.logf("  [cache] %s", j.Describe())
				results[i] = harness.Result{Job: j, Results: res, Cached: true}
				continue
			}
		}
		miss = append(miss, i)
	}
	if len(miss) == 0 {
		return results, nil
	}

	eps, err := c.handshake(ctx)
	if err != nil {
		return nil, err
	}

	q := &shardQueue{}
	size := c.shardSize()
	nshards := 0
	for lo := 0; lo < len(miss); lo += size {
		hi := lo + size
		if hi > len(miss) {
			hi = len(miss)
		}
		q.push(miss[lo:hi])
		nshards++
	}
	c.logf("dist: %d jobs in %d shards across %d workers", len(miss), nshards, len(eps))

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		remaining atomic.Int64
		live      atomic.Int64
		fatalMu   sync.Mutex
		fatalErr  error
	)
	remaining.Store(int64(len(miss)))
	live.Store(int64(len(eps)))
	fail := func(err error) {
		fatalMu.Lock()
		if fatalErr == nil {
			fatalErr = err
		}
		fatalMu.Unlock()
		cancel()
	}

	var wg sync.WaitGroup
	for _, ep := range eps {
		wg.Add(1)
		go func(ep endpoint) {
			defer wg.Done()
			c.serve(runCtx, ep, q, jobs, results, &remaining, &live, fail)
		}(ep)
	}
	wg.Wait()

	fatalMu.Lock()
	err = fatalErr
	fatalMu.Unlock()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if n := remaining.Load(); n != 0 {
		return nil, fmt.Errorf("dist: %d jobs left unexecuted", n)
	}
	return results, nil
}

// handshake probes every configured endpoint. Unreachable endpoints are
// dropped with a warning (the rest of the fleet absorbs their share); a
// version mismatch is fatal for the whole run, because a stale worker
// binary means the operator's fleet disagrees about the timing model and
// silently excluding it would hide that. No endpoints left is fatal too:
// distributed execution never silently degrades to local.
func (c *Coordinator) handshake(ctx context.Context) ([]endpoint, error) {
	// Probe concurrently: a fleet with a few unroutable hosts must not
	// serialize their dial timeouts in front of the live workers.
	hellos := make([]Hello, len(c.Endpoints))
	errs := make([]error, len(c.Endpoints))
	var wg sync.WaitGroup
	for i, name := range c.Endpoints {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			hellos[i], errs[i] = c.hello(ctx, baseURL(name))
		}(i, name)
	}
	wg.Wait()
	// A cancelled batch is a cancellation, not a fleet of unreachable
	// workers.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var eps []endpoint
	for i, name := range c.Endpoints {
		if errs[i] != nil {
			c.logf("dist: dropping unreachable worker %s: %v", name, errs[i])
			continue
		}
		h := hellos[i]
		if h.Version != harness.Version {
			return nil, fmt.Errorf("dist: worker %s runs %s, coordinator runs %s: refusing to mix timing models",
				name, h.Version, harness.Version)
		}
		w := h.Workers
		if w <= 0 {
			w = 1
		}
		eps = append(eps, endpoint{name: name, base: baseURL(name), weight: w})
	}
	if len(eps) == 0 {
		return nil, fmt.Errorf("dist: no live workers among %s", strings.Join(c.Endpoints, ","))
	}
	return eps, nil
}

// hello fetches an endpoint's handshake, retrying briefly so a worker
// still binding its socket (the loopback-smoke race) is not dropped.
func (c *Coordinator) hello(ctx context.Context, base string) (Hello, error) {
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 {
			if err := sleepCtx(ctx, 300*time.Millisecond); err != nil {
				return Hello{}, err
			}
		}
		h, err := c.helloOnce(ctx, base)
		if err == nil {
			return h, nil
		}
		lastErr = err
	}
	return Hello{}, lastErr
}

func (c *Coordinator) helloOnce(ctx context.Context, base string) (Hello, error) {
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+PathHealthz, nil)
	if err != nil {
		return Hello{}, err
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return Hello{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Hello{}, fmt.Errorf("healthz: %s", resp.Status)
	}
	var h Hello
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return Hello{}, fmt.Errorf("healthz: %w", err)
	}
	return h, nil
}

// serve is one endpoint's dispatch loop: pull up to weight shards, send
// them as one request, merge or requeue.
func (c *Coordinator) serve(ctx context.Context, ep endpoint, q *shardQueue,
	jobs []harness.Job, results []harness.Result,
	remaining, live *atomic.Int64, fail func(error)) {
	consecutive := 0
	for {
		if ctx.Err() != nil {
			return
		}
		shards := q.popUpTo(ep.weight)
		if len(shards) == 0 {
			if remaining.Load() == 0 {
				return
			}
			// Another endpoint holds the rest in flight; it may requeue.
			if sleepCtx(ctx, 25*time.Millisecond) != nil {
				return
			}
			continue
		}
		var indices []int
		for _, s := range shards {
			indices = append(indices, s...)
		}
		resp, fatal, err := c.runShard(ctx, ep, indices, jobs)
		if fatal != nil {
			q.push(shards...)
			fail(fatal)
			return
		}
		if err != nil {
			q.push(shards...)
			consecutive++
			if consecutive >= c.retries() {
				c.logf("dist: dropping worker %s after %d consecutive failures: %v", ep.name, consecutive, err)
				if live.Add(-1) == 0 {
					fail(fmt.Errorf("dist: every worker failed; last error from %s: %w", ep.name, err))
				}
				return
			}
			c.logf("dist: %s failed (attempt %d, %d jobs requeued): %v", ep.name, consecutive, len(indices), err)
			if sleepCtx(ctx, time.Duration(consecutive)*100*time.Millisecond) != nil {
				return
			}
			continue
		}
		consecutive = 0
		for k, idx := range indices {
			jr := resp.Results[k]
			results[idx] = harness.Result{Job: jobs[idx], Results: jr.Results, Cached: jr.Cached}
			if c.Cache != nil {
				if err := c.Cache.Put(jobs[idx], jr.Results); err != nil {
					fail(fmt.Errorf("cache put: %w", err))
					return
				}
			}
			remaining.Add(-1)
		}
		c.logf("dist: %s completed %d jobs (%d remaining)", ep.name, len(indices), remaining.Load())
	}
}

// runShard sends one batch to one endpoint. The second return is a fatal
// error (version mismatch: abort the run), the third a retryable one
// (requeue the shards).
func (c *Coordinator) runShard(ctx context.Context, ep endpoint, indices []int,
	jobs []harness.Job) (RunResponse, error, error) {
	batch := make([]harness.Job, len(indices))
	for k, idx := range indices {
		batch[k] = jobs[idx]
	}
	body, err := json.Marshal(RunRequest{Version: harness.Version, Jobs: batch})
	if err != nil {
		return RunResponse{}, nil, err
	}
	ctx, cancel := context.WithTimeout(ctx, c.timeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ep.base+PathRun, bytes.NewReader(body))
	if err != nil {
		return RunResponse{}, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client().Do(req)
	if err != nil {
		return RunResponse{}, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		json.NewDecoder(resp.Body).Decode(&eb)
		if eb.Error == "" {
			eb.Error = resp.Status
		}
		if resp.StatusCode == http.StatusPreconditionFailed {
			return RunResponse{}, fmt.Errorf("dist: worker %s: %s", ep.name, eb.Error), nil
		}
		return RunResponse{}, nil, fmt.Errorf("run: %s: %s", resp.Status, eb.Error)
	}
	var rr RunResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		return RunResponse{}, nil, fmt.Errorf("run: decode: %w", err)
	}
	if len(rr.Results) != len(indices) {
		return RunResponse{}, nil, fmt.Errorf("run: %d results for %d jobs", len(rr.Results), len(indices))
	}
	return rr, nil, nil
}

// sleepCtx sleeps d or returns early with ctx's error.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
