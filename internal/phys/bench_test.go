package phys

import "testing"

func BenchmarkBuddyAllocFree(b *testing.B) {
	bd := NewBuddy(1 << 30)
	owner := vb(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a, ok := bd.Alloc(owner, 0)
		if !ok {
			b.Fatal("exhausted")
		}
		bd.Free(a, 0)
	}
}

func BenchmarkBuddyAllocAt(b *testing.B) {
	bd := NewBuddy(1 << 30)
	owner := vb(1)
	base, _ := bd.Reserve(owner, 18) // 1 GB reservation
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		at := base + Addr((i%1000)*FrameSize)
		if !bd.AllocAt(owner, at, 0) {
			b.Fatal("AllocAt failed")
		}
		bd.Free(at, 0)
	}
}

func BenchmarkFrameAllocator(b *testing.B) {
	f := NewFrameAllocator(1 << 30)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a, ok := f.Alloc()
		if !ok {
			b.Fatal("exhausted")
		}
		f.Free(a)
	}
}
