package phys

import "testing"

func TestFrameAllocatorBasics(t *testing.T) {
	f := NewFrameAllocator(4 * FrameSize)
	if f.Capacity() != 4*FrameSize {
		t.Fatalf("capacity = %d", f.Capacity())
	}
	seen := map[Addr]bool{}
	for i := 0; i < 4; i++ {
		a, ok := f.Alloc()
		if !ok {
			t.Fatalf("alloc %d failed", i)
		}
		if seen[a] {
			t.Fatalf("frame %v handed out twice", a)
		}
		if a != a.Frame() {
			t.Fatalf("frame %v not aligned", a)
		}
		seen[a] = true
	}
	if _, ok := f.Alloc(); ok {
		t.Fatal("alloc succeeded past capacity")
	}
	if f.FreeBytes() != 0 {
		t.Fatalf("FreeBytes = %d, want 0", f.FreeBytes())
	}
}

func TestFrameAllocatorReuse(t *testing.T) {
	f := NewFrameAllocator(2 * FrameSize)
	a, _ := f.Alloc()
	bAddr, _ := f.Alloc()
	f.Free(a)
	c, ok := f.Alloc()
	if !ok || c != a {
		t.Fatalf("freed frame not reused: got %v, want %v", c, a)
	}
	f.Free(bAddr)
	f.Free(c)
	if f.FreeBytes() != 2*FrameSize {
		t.Fatalf("FreeBytes = %d", f.FreeBytes())
	}
}

func TestFrameAllocatorRoundsDown(t *testing.T) {
	f := NewFrameAllocator(FrameSize + 123)
	if f.Capacity() != FrameSize {
		t.Fatalf("capacity = %d, want %d", f.Capacity(), FrameSize)
	}
}

func TestFrameFreePanicsOnUnaligned(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFrameAllocator(FrameSize).Free(Addr(12))
}

func TestAddrHelpers(t *testing.T) {
	a := Addr(0x12345)
	if a.Frame() != 0x12000 {
		t.Errorf("Frame() = %#x", uint64(a.Frame()))
	}
	if a.Line() != 0x12340 {
		t.Errorf("Line() = %#x", uint64(a.Line()))
	}
	if NoAddr.String() != "phys(none)" {
		t.Errorf("NoAddr.String() = %q", NoAddr.String())
	}
	if a.String() != "phys(0x12345)" {
		t.Errorf("String() = %q", a.String())
	}
}

func TestOrderFor(t *testing.T) {
	cases := []struct {
		size  uint64
		order int
		ok    bool
	}{
		{1, 0, true},
		{FrameSize, 0, true},
		{FrameSize + 1, 1, true},
		{128 << 10, 5, true},
		{4 << 20, 10, true},
		{OrderBytes(MaxOrder), MaxOrder, true},
		{OrderBytes(MaxOrder) + 1, 0, false},
	}
	for _, c := range cases {
		o, ok := OrderFor(c.size)
		if ok != c.ok || (ok && o != c.order) {
			t.Errorf("OrderFor(%d) = %d,%v want %d,%v", c.size, o, ok, c.order, c.ok)
		}
	}
}
