package phys

import (
	"fmt"
	"sort"

	"vbi/internal/addr"
)

// Owner identifies the virtual block a reservation or allocation belongs to.
// The zero Owner means "unreserved".
type Owner = addr.VBUID

// MaxOrder bounds block sizes at 4 KB << 28 = 1 TB, far beyond any simulated
// physical capacity.
const MaxOrder = 28

// OrderBytes returns the size in bytes of an order-k buddy block.
func OrderBytes(order int) uint64 { return FrameSize << order }

// OrderFor returns the smallest order whose blocks hold size bytes, and
// ok=false when size exceeds the largest order.
func OrderFor(size uint64) (int, bool) {
	for o := 0; o <= MaxOrder; o++ {
		if size <= OrderBytes(o) {
			return o, true
		}
	}
	return 0, false
}

// blockKey uniquely names an existing buddy block: its base address plus its
// order (the same base can exist at several orders after splits, but only
// one of them is live at a time; the key disambiguates book-keeping).
type blockKey struct {
	base  Addr
	order int
}

type blockState struct {
	free bool
	// owner is the reservation the block belongs to (0 = unreserved). For
	// allocated blocks it records which reservation the block was carved
	// from so that Free returns it to the right pool; note a block stolen
	// by VB X from VB Y's reservation has owner Y here.
	owner Owner
}

// Buddy is a binary-buddy allocator with per-VB reservations (§5.3).
//
// A reservation is an ordinary free block tagged with the owning VB. When
// VB X requests memory the allocator uses a three-level priority: (1) free
// blocks reserved for X, (2) unreserved free blocks, (3) free blocks
// reserved for other VBs (stealing, used only under memory pressure by
// construction of the priority order).
type Buddy struct {
	capacity uint64
	// live holds every currently-existing block, free or allocated.
	live map[blockKey]blockState
	// freeUnres[o] is the set of unreserved free order-o blocks.
	freeUnres [MaxOrder + 1]map[Addr]struct{}
	// freeRes[o] maps base -> reservation owner for reserved free blocks.
	freeRes [MaxOrder + 1]map[Addr]Owner
	// byOwner indexes the free reserved blocks of each owner: owner ->
	// order -> set of bases.
	byOwner map[Owner]map[int]map[Addr]struct{}
	// allocatedFrom indexes allocated blocks carved out of each owner's
	// reservation, so Unreserve can retag them.
	allocatedFrom map[Owner]map[blockKey]struct{}

	freeBytes     uint64
	reservedBytes uint64 // subset of freeBytes that is reserved
}

// NewBuddy returns a buddy allocator over capacity bytes (rounded down to a
// whole number of frames). The capacity need not be a power of two: the pool
// is seeded with the greedy binary decomposition of the capacity.
func NewBuddy(capacity uint64) *Buddy {
	capacity &^= FrameSize - 1
	b := &Buddy{
		capacity:      capacity,
		live:          make(map[blockKey]blockState),
		byOwner:       make(map[Owner]map[int]map[Addr]struct{}),
		allocatedFrom: make(map[Owner]map[blockKey]struct{}),
	}
	for o := 0; o <= MaxOrder; o++ {
		b.freeUnres[o] = make(map[Addr]struct{})
		b.freeRes[o] = make(map[Addr]Owner)
	}
	// Seed with the largest aligned blocks that fit, high orders first.
	base := Addr(0)
	remaining := capacity
	for o := MaxOrder; o >= 0; o-- {
		sz := OrderBytes(o)
		for remaining >= sz && uint64(base)%sz == 0 {
			b.addFree(base, o, 0)
			base += Addr(sz)
			remaining -= sz
		}
	}
	b.freeBytes = capacity - remaining
	b.capacity = b.freeBytes
	return b
}

// Capacity returns the managed pool size in bytes.
func (b *Buddy) Capacity() uint64 { return b.capacity }

// FreeBytes returns the total free bytes (reserved free blocks included).
func (b *Buddy) FreeBytes() uint64 { return b.freeBytes }

// ReservedBytes returns the free bytes currently reserved for some VB.
func (b *Buddy) ReservedBytes() uint64 { return b.reservedBytes }

func (b *Buddy) addFree(base Addr, order int, owner Owner) {
	b.live[blockKey{base, order}] = blockState{free: true, owner: owner}
	if owner == 0 {
		b.freeUnres[order][base] = struct{}{}
	} else {
		b.freeRes[order][base] = owner
		m := b.byOwner[owner]
		if m == nil {
			m = make(map[int]map[Addr]struct{})
			b.byOwner[owner] = m
		}
		s := m[order]
		if s == nil {
			s = make(map[Addr]struct{})
			m[order] = s
		}
		s[base] = struct{}{}
		b.reservedBytes += OrderBytes(order)
	}
}

func (b *Buddy) removeFree(base Addr, order int, owner Owner) {
	delete(b.live, blockKey{base, order})
	if owner == 0 {
		delete(b.freeUnres[order], base)
	} else {
		delete(b.freeRes[order], base)
		if m := b.byOwner[owner]; m != nil {
			if s := m[order]; s != nil {
				delete(s, base)
				if len(s) == 0 {
					delete(m, order)
				}
			}
			if len(m) == 0 {
				delete(b.byOwner, owner)
			}
		}
		b.reservedBytes -= OrderBytes(order)
	}
}

// splitTo repeatedly halves the free block (base, from, owner) until an
// order-"to" block is available, re-tagging all pieces with the same owner.
// It returns the base of the order-"to" block (always == base).
func (b *Buddy) splitTo(base Addr, from, to int, owner Owner) Addr {
	b.removeFree(base, from, owner)
	for o := from; o > to; o-- {
		half := OrderBytes(o - 1)
		b.addFree(base+Addr(half), o-1, owner)
	}
	b.addFree(base, to, owner)
	return base
}

// lowestBase returns the smallest address in the set (first-fit). Picking
// an arbitrary map element here would make allocation placement — and so
// bank/row timing — vary between otherwise-identical runs. The scan is
// O(free blocks at this order); the sets stay small (splitting keeps at
// most a handful of blocks per order until heavy churn), so membership
// maps plus a scan beat maintaining a sorted mirror of every set.
func lowestBase[V any](m map[Addr]V, keep func(V) bool) (Addr, bool) {
	best, found := NoAddr, false
	//vbi:allow maporder min-reduction under a strict total order on base; any visit order yields the same minimum
	for base, v := range m {
		if keep != nil && !keep(v) {
			continue
		}
		if !found || base < best {
			best, found = base, true
		}
	}
	return best, found
}

// takeFreeUnres finds an unreserved free block of order >= want and splits
// it down. Smallest sufficient order first to limit fragmentation.
func (b *Buddy) takeFreeUnres(want int) (Addr, bool) {
	for o := want; o <= MaxOrder; o++ {
		if base, ok := lowestBase(b.freeUnres[o], nil); ok {
			return b.splitTo(base, o, want, 0), true
		}
	}
	return NoAddr, false
}

// takeFreeOwned finds a free block reserved for owner of order >= want.
func (b *Buddy) takeFreeOwned(owner Owner, want int) (Addr, bool) {
	m := b.byOwner[owner]
	if m == nil {
		return NoAddr, false
	}
	for o := want; o <= MaxOrder; o++ {
		if base, ok := lowestBase(m[o], nil); ok {
			return b.splitTo(base, o, want, owner), true
		}
	}
	return NoAddr, false
}

// takeFreeStolen finds a free block reserved for any owner other than self.
func (b *Buddy) takeFreeStolen(self Owner, want int) (Addr, Owner, bool) {
	for o := want; o <= MaxOrder; o++ {
		if base, ok := lowestBase(b.freeRes[o], func(owner Owner) bool { return owner != self }); ok {
			owner := b.freeRes[o][base]
			return b.splitTo(base, o, want, owner), owner, true
		}
	}
	return NoAddr, 0, false
}

// Alloc allocates an order-sized block for VB vb using the three-level
// priority of §5.3. It returns ok=false only when no free block of
// sufficient order exists anywhere.
func (b *Buddy) Alloc(vb Owner, order int) (Addr, bool) {
	if order < 0 || order > MaxOrder {
		return NoAddr, false
	}
	// Priority 1: free blocks reserved for this VB.
	if base, ok := b.takeFreeOwned(vb, order); ok {
		b.markAllocated(base, order, vb)
		return base, true
	}
	// Priority 2: unreserved free blocks.
	if base, ok := b.takeFreeUnres(order); ok {
		b.markAllocated(base, order, 0)
		return base, true
	}
	// Priority 3: steal from another VB's reservation.
	if base, owner, ok := b.takeFreeStolen(vb, order); ok {
		b.markAllocated(base, order, owner)
		return base, true
	}
	return NoAddr, false
}

func (b *Buddy) markAllocated(base Addr, order int, reservedOwner Owner) {
	b.removeFree(base, order, reservedOwner)
	b.live[blockKey{base, order}] = blockState{free: false, owner: reservedOwner}
	b.freeBytes -= OrderBytes(order)
	if reservedOwner != 0 {
		m := b.allocatedFrom[reservedOwner]
		if m == nil {
			m = make(map[blockKey]struct{})
			b.allocatedFrom[reservedOwner] = m
		}
		m[blockKey{base, order}] = struct{}{}
	}
}

// AllocAt allocates the specific order-sized block at base for vb, if that
// exact region is currently free (whether unreserved or reserved for any
// owner). Directly-mapped VBs use it to materialize a 4 KB region at its
// fixed position inside the VB's reservation (§5.3); it fails when the
// region was stolen by another VB under memory pressure, which is the
// signal that the VB has lost its direct mapping.
func (b *Buddy) AllocAt(vb Owner, base Addr, order int) bool {
	if order < 0 || order > MaxOrder || uint64(base)%OrderBytes(order) != 0 {
		return false
	}
	// Find the free block containing [base, base+2^order): the smallest
	// enclosing aligned block that exists and is free.
	for o := order; o <= MaxOrder; o++ {
		enclosing := base &^ Addr(OrderBytes(o)-1)
		st, ok := b.live[blockKey{enclosing, o}]
		if !ok {
			continue
		}
		if !st.free {
			return false // region (or part of it) already allocated
		}
		b.splitToAt(enclosing, o, base, order, st.owner)
		b.markAllocated(base, order, st.owner)
		return true
	}
	return false
}

// splitToAt splits the free block (blockBase, from, owner) down to an
// order-"to" block at exactly target, keeping every split-off sibling free
// with the same owner.
func (b *Buddy) splitToAt(blockBase Addr, from int, target Addr, to int, owner Owner) {
	b.removeFree(blockBase, from, owner)
	cur := blockBase
	for o := from; o > to; o-- {
		half := Addr(OrderBytes(o - 1))
		if target >= cur+half {
			b.addFree(cur, o-1, owner) // target in upper half; lower stays free
			cur += half
		} else {
			b.addFree(cur+half, o-1, owner)
		}
	}
	b.addFree(cur, to, owner)
}

// Reserve carves an order-sized contiguous region out of *unreserved* free
// memory and tags it as reserved for vb. Reserved blocks remain free (they
// count toward FreeBytes) but are preferred by vb's future allocations and
// only used by other VBs when nothing unreserved remains.
func (b *Buddy) Reserve(vb Owner, order int) (Addr, bool) {
	if vb == 0 || order < 0 || order > MaxOrder {
		return NoAddr, false
	}
	base, ok := b.takeFreeUnres(order)
	if !ok {
		return NoAddr, false
	}
	// Retag the block as reserved-free for vb.
	b.removeFree(base, order, 0)
	b.addFree(base, order, vb)
	return base, true
}

// Free returns an allocated block to the pool. The block rejoins the
// reservation it was carved from (if that reservation still stands) and
// merges with same-state buddies.
func (b *Buddy) Free(base Addr, order int) {
	k := blockKey{base, order}
	st, ok := b.live[k]
	if !ok || st.free {
		panic(fmt.Sprintf("phys: Free of non-allocated block %v order %d", base, order))
	}
	delete(b.live, k)
	if st.owner != 0 {
		if m := b.allocatedFrom[st.owner]; m != nil {
			delete(m, k)
			if len(m) == 0 {
				delete(b.allocatedFrom, st.owner)
			}
		}
	}
	b.freeBytes += OrderBytes(order)
	b.freeAndMerge(base, order, st.owner)
}

func (b *Buddy) freeAndMerge(base Addr, order int, owner Owner) {
	for order < MaxOrder {
		buddy := base ^ Addr(OrderBytes(order))
		st, ok := b.live[blockKey{buddy, order}]
		if !ok || !st.free || st.owner != owner {
			break
		}
		b.removeFree(buddy, order, owner)
		if buddy < base {
			base = buddy
		}
		order++
	}
	b.addFree(base, order, owner)
}

// Unreserve releases vb's reservation: its remaining reserved-free blocks
// become unreserved free blocks, and blocks still allocated out of the
// reservation are retagged so that freeing them later returns them to the
// unreserved pool.
func (b *Buddy) Unreserve(vb Owner) {
	if m := b.byOwner[vb]; m != nil {
		type fb struct {
			base  Addr
			order int
		}
		var blocks []fb
		//vbi:allow maporder collected blocks are sorted below before any state changes
		for o, set := range m {
			//vbi:allow maporder collected blocks are sorted below before any state changes
			for base := range set {
				blocks = append(blocks, fb{base, o})
			}
		}
		// Deterministic order for reproducible merging.
		sort.Slice(blocks, func(i, j int) bool { return blocks[i].base < blocks[j].base })
		for _, blk := range blocks {
			b.removeFree(blk.base, blk.order, vb)
			b.freeAndMerge(blk.base, blk.order, 0)
		}
	}
	if m := b.allocatedFrom[vb]; m != nil {
		for k := range m {
			b.live[k] = blockState{free: false, owner: 0}
		}
		delete(b.allocatedFrom, vb)
	}
}

// LargestFreeOrder returns the order of the largest allocatable contiguous
// block available to vb at each priority level combined (i.e. the largest
// block Alloc(vb, order) would currently succeed for), or -1 when nothing
// is free.
func (b *Buddy) LargestFreeOrder(vb Owner) int {
	for o := MaxOrder; o >= 0; o-- {
		if len(b.freeUnres[o]) > 0 {
			return o
		}
		if m := b.byOwner[vb]; m != nil && len(m[o]) > 0 {
			return o
		}
		//vbi:allow maporder existence test; the returned order is the same whichever entry matches
		for _, owner := range b.freeRes[o] {
			if owner != vb {
				return o
			}
		}
	}
	return -1
}

// LargestUnreservedOrder returns the order of the largest unreserved free
// block (the contiguity Reserve can still satisfy), or -1 when none.
func (b *Buddy) LargestUnreservedOrder() int {
	for o := MaxOrder; o >= 0; o-- {
		if len(b.freeUnres[o]) > 0 {
			return o
		}
	}
	return -1
}

// CheckInvariants verifies structural invariants and returns an error
// describing the first violation. It is exercised by the property tests.
func (b *Buddy) CheckInvariants() error {
	type span struct {
		base Addr
		size uint64
	}
	var spans []span
	var free, reserved uint64
	//vbi:allow maporder check-only aggregation; spans are sorted before the overlap scan below
	for k, st := range b.live {
		spans = append(spans, span{k.base, OrderBytes(k.order)})
		if st.free {
			free += OrderBytes(k.order)
			if st.owner != 0 {
				reserved += OrderBytes(k.order)
			}
		}
		if uint64(k.base)%OrderBytes(k.order) != 0 {
			return fmt.Errorf("block %v order %d misaligned", k.base, k.order)
		}
	}
	if free != b.freeBytes {
		return fmt.Errorf("freeBytes %d, blocks sum to %d", b.freeBytes, free)
	}
	if reserved != b.reservedBytes {
		return fmt.Errorf("reservedBytes %d, blocks sum to %d", b.reservedBytes, reserved)
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].base < spans[j].base })
	var total uint64
	for i, s := range spans {
		if i > 0 {
			prev := spans[i-1]
			if uint64(prev.base)+prev.size > uint64(s.base) {
				return fmt.Errorf("blocks overlap at %v", s.base)
			}
		}
		total += s.size
	}
	if total != b.capacity {
		return fmt.Errorf("blocks cover %d bytes, capacity %d", total, b.capacity)
	}
	return nil
}
