package phys

import (
	"fmt"
	"math/bits"
	"sort"

	"vbi/internal/addr"
)

// Owner identifies the virtual block a reservation or allocation belongs to.
// The zero Owner means "unreserved".
type Owner = addr.VBUID

// MaxOrder bounds block sizes at 4 KB << 28 = 1 TB, far beyond any simulated
// physical capacity.
const MaxOrder = 28

// OrderBytes returns the size in bytes of an order-k buddy block.
func OrderBytes(order int) uint64 { return FrameSize << order }

// OrderFor returns the smallest order whose blocks hold size bytes, and
// ok=false when size exceeds the largest order.
func OrderFor(size uint64) (int, bool) {
	for o := 0; o <= MaxOrder; o++ {
		if size <= OrderBytes(o) {
			return o, true
		}
	}
	return 0, false
}

// blockKey uniquely names an existing buddy block: its base address plus its
// order (the same base can exist at several orders after splits, but only
// one of them is live at a time; the key disambiguates book-keeping).
type blockKey struct {
	base  Addr
	order int
}

// Per-frame block metadata, indexed by frame number (base >> FrameShift).
// Only the frame a block *starts* at carries its record; since at most one
// block is live at a given base, one byte suffices: liveness, freeness and
// the block's order.
const (
	metaLive  uint8 = 1 << 7
	metaFree  uint8 = 1 << 6
	metaOrder uint8 = 0x1f
)

// bitset is a fixed-size bit vector over block indexes (frame >> order).
type bitset []uint64

func (bs bitset) set(i int)   { bs[i>>6] |= 1 << (uint(i) & 63) }
func (bs bitset) clear(i int) { bs[i>>6] &^= 1 << (uint(i) & 63) }

// nextSet returns the first set bit >= from, or -1 when none remains.
func (bs bitset) nextSet(from int) int {
	if from < 0 {
		from = 0
	}
	w := from >> 6
	if w >= len(bs) {
		return -1
	}
	word := bs[w] & (^uint64(0) << (uint(from) & 63))
	for {
		if word != 0 {
			return w<<6 + bits.TrailingZeros64(word)
		}
		w++
		if w >= len(bs) {
			return -1
		}
		word = bs[w]
	}
}

// Buddy is a binary-buddy allocator with per-VB reservations (§5.3).
//
// A reservation is an ordinary free block tagged with the owning VB. When
// VB X requests memory the allocator uses a three-level priority: (1) free
// blocks reserved for X, (2) unreserved free blocks, (3) free blocks
// reserved for other VBs (stealing, used only under memory pressure by
// construction of the priority order).
//
// Book-keeping is flat and hash-free: block existence/state lives in a
// per-frame metadata array, and the free blocks of each order are tracked
// in per-order bitmaps searched lowest-base-first with find-first-set. A
// per-order hint (a lower bound below which no bit is set) makes the
// first-fit scan effectively O(1) under the allocator's own first-fit
// placement. Placement is identical to the map-backed implementation this
// replaced — both pick the lowest base at the smallest sufficient order —
// but the hot path no longer hashes keys or churns map buckets, which
// matters because region allocation sits on the machine-construction path
// (Prefill) and, under delayed allocation (§5.1), on the per-writeback
// path of the simulated run.
type Buddy struct {
	capacity uint64
	nframes  uint64
	// meta holds the block record of the frame each block starts at.
	meta []uint8
	// ownerOf is the interned owner index of the block starting at each
	// frame (meaningful only where meta has metaLive).
	ownerOf []uint16
	// owners interns distinct reservation owners; owners[0] is the zero
	// Owner ("unreserved").
	owners   []Owner
	ownerIdx map[Owner]uint16

	// freeUnres[o]/freeRes[o] mark the free order-o blocks by block index,
	// split by reservation state; hints are maintained lower bounds on the
	// lowest set bit; counts allow O(1) emptiness tests per order.
	freeUnres [MaxOrder + 1]bitset
	freeRes   [MaxOrder + 1]bitset
	hintUnres [MaxOrder + 1]int
	hintRes   [MaxOrder + 1]int
	cntUnres  [MaxOrder + 1]int
	cntRes    [MaxOrder + 1]int
	// cntResOwn[oi][o] counts reserved-free order-o blocks of owner index
	// oi, for per-owner emptiness tests without a per-owner index.
	cntResOwn [][MaxOrder + 1]int32

	// allocatedFrom indexes allocated blocks carved out of each owner's
	// reservation, so Unreserve can retag them.
	allocatedFrom map[Owner]map[blockKey]struct{}

	freeBytes     uint64
	reservedBytes uint64 // subset of freeBytes that is reserved
}

// NewBuddy returns a buddy allocator over capacity bytes (rounded down to a
// whole number of frames). The capacity need not be a power of two: the pool
// is seeded with the greedy binary decomposition of the capacity.
func NewBuddy(capacity uint64) *Buddy {
	capacity &^= FrameSize - 1
	nframes := capacity >> FrameShift
	b := &Buddy{
		capacity:      capacity,
		nframes:       nframes,
		meta:          make([]uint8, nframes),
		ownerOf:       make([]uint16, nframes),
		owners:        []Owner{0},
		ownerIdx:      make(map[Owner]uint16),
		cntResOwn:     make([][MaxOrder + 1]int32, 1),
		allocatedFrom: make(map[Owner]map[blockKey]struct{}),
	}
	for o := 0; o <= MaxOrder; o++ {
		nbits := (nframes + OrderBytes(o)>>FrameShift - 1) >> uint(o)
		words := int((nbits + 63) / 64)
		b.freeUnres[o] = make(bitset, words)
		b.freeRes[o] = make(bitset, words)
	}
	// Seed with the largest aligned blocks that fit, high orders first.
	base := Addr(0)
	remaining := capacity
	for o := MaxOrder; o >= 0; o-- {
		sz := OrderBytes(o)
		for remaining >= sz && uint64(base)%sz == 0 {
			b.addFree(base, o, 0)
			base += Addr(sz)
			remaining -= sz
		}
	}
	b.freeBytes = capacity - remaining
	b.capacity = b.freeBytes
	return b
}

// Capacity returns the managed pool size in bytes.
func (b *Buddy) Capacity() uint64 { return b.capacity }

// FreeBytes returns the total free bytes (reserved free blocks included).
func (b *Buddy) FreeBytes() uint64 { return b.freeBytes }

// ReservedBytes returns the free bytes currently reserved for some VB.
func (b *Buddy) ReservedBytes() uint64 { return b.reservedBytes }

// internOwner maps an owner to its stable small index, assigning one on
// first sight. The zero owner is index 0 by construction.
func (b *Buddy) internOwner(o Owner) uint16 {
	if o == 0 {
		return 0
	}
	if i, ok := b.ownerIdx[o]; ok {
		return i
	}
	if len(b.owners) > 0xfffe {
		panic("phys: too many distinct reservation owners")
	}
	i := uint16(len(b.owners))
	b.owners = append(b.owners, o)
	b.ownerIdx[o] = i
	b.cntResOwn = append(b.cntResOwn, [MaxOrder + 1]int32{})
	return i
}

//vbi:hotpath
func (b *Buddy) addFree(base Addr, order int, owner Owner) {
	fi := uint64(base) >> FrameShift
	b.meta[fi] = metaLive | metaFree | uint8(order)
	oi := b.internOwner(owner)
	b.ownerOf[fi] = oi
	bi := int(fi >> uint(order))
	if oi == 0 {
		b.freeUnres[order].set(bi)
		if bi < b.hintUnres[order] {
			b.hintUnres[order] = bi
		}
		b.cntUnres[order]++
	} else {
		b.freeRes[order].set(bi)
		if bi < b.hintRes[order] {
			b.hintRes[order] = bi
		}
		b.cntRes[order]++
		b.cntResOwn[oi][order]++
		b.reservedBytes += OrderBytes(order)
	}
}

// removeFree deletes the free block starting at base. The recorded owner
// index (not the caller's owner argument) decides which bitmap the block
// leaves, keeping the two views self-consistent by construction.
//
//vbi:hotpath
func (b *Buddy) removeFree(base Addr, order int) {
	fi := uint64(base) >> FrameShift
	oi := b.ownerOf[fi]
	b.meta[fi] = 0
	bi := int(fi >> uint(order))
	if oi == 0 {
		b.freeUnres[order].clear(bi)
		b.cntUnres[order]--
	} else {
		b.freeRes[order].clear(bi)
		b.cntRes[order]--
		b.cntResOwn[oi][order]--
		b.reservedBytes -= OrderBytes(order)
	}
}

// splitTo repeatedly halves the free block (base, from, owner) until an
// order-"to" block is available, re-tagging all pieces with the same owner.
// It returns the base of the order-"to" block (always == base).
//
//vbi:hotpath
func (b *Buddy) splitTo(base Addr, from, to int, owner Owner) Addr {
	b.removeFree(base, from)
	for o := from; o > to; o-- {
		half := OrderBytes(o - 1)
		b.addFree(base+Addr(half), o-1, owner)
	}
	b.addFree(base, to, owner)
	return base
}

// takeFreeUnres finds an unreserved free block of order >= want and splits
// it down. Smallest sufficient order first to limit fragmentation; within
// an order the lowest base wins (first fit), so allocation placement — and
// with it bank/row timing — is identical between runs.
//
//vbi:hotpath
func (b *Buddy) takeFreeUnres(want int) (Addr, bool) {
	for o := want; o <= MaxOrder; o++ {
		if b.cntUnres[o] == 0 {
			continue
		}
		bi := b.freeUnres[o].nextSet(b.hintUnres[o])
		b.hintUnres[o] = bi
		base := Addr(uint64(bi) << uint(FrameShift+o))
		return b.splitTo(base, o, want, 0), true
	}
	return NoAddr, false
}

// firstRes returns the lowest-base free reserved order-o block whose owner
// index matches (equal=true) or differs from (equal=false) target.
func (b *Buddy) firstRes(order int, target uint16, equal bool) (Addr, uint16, bool) {
	bs := b.freeRes[order]
	bi := bs.nextSet(b.hintRes[order])
	if bi >= 0 {
		// The hint may only advance to the first set bit: later bits are
		// skipped by the filter, not cleared, and must stay reachable.
		b.hintRes[order] = bi
	}
	for bi >= 0 {
		oi := b.ownerOf[uint64(bi)<<uint(order)]
		if (oi == target) == equal {
			return Addr(uint64(bi) << uint(FrameShift+order)), oi, true
		}
		bi = bs.nextSet(bi + 1)
	}
	return NoAddr, 0, false
}

// takeFreeOwned finds a free block reserved for owner of order >= want.
func (b *Buddy) takeFreeOwned(owner Owner, want int) (Addr, bool) {
	oi, ok := b.ownerIdx[owner]
	if !ok {
		return NoAddr, false
	}
	for o := want; o <= MaxOrder; o++ {
		if b.cntResOwn[oi][o] == 0 {
			continue
		}
		if base, _, ok := b.firstRes(o, oi, true); ok {
			return b.splitTo(base, o, want, owner), true
		}
	}
	return NoAddr, false
}

// takeFreeStolen finds a free block reserved for any owner other than self.
func (b *Buddy) takeFreeStolen(self Owner, want int) (Addr, Owner, bool) {
	selfIdx := uint16(0)
	if i, ok := b.ownerIdx[self]; ok {
		selfIdx = i
	}
	for o := want; o <= MaxOrder; o++ {
		own := int32(0)
		if selfIdx != 0 {
			own = b.cntResOwn[selfIdx][o]
		}
		if int32(b.cntRes[o])-own <= 0 {
			continue
		}
		if base, oi, ok := b.firstRes(o, selfIdx, false); ok {
			owner := b.owners[oi]
			return b.splitTo(base, o, want, owner), owner, true
		}
	}
	return NoAddr, 0, false
}

// Alloc allocates an order-sized block for VB vb using the three-level
// priority of §5.3. It returns ok=false only when no free block of
// sufficient order exists anywhere.
//
//vbi:hotpath
func (b *Buddy) Alloc(vb Owner, order int) (Addr, bool) {
	if order < 0 || order > MaxOrder {
		return NoAddr, false
	}
	// Priority 1: free blocks reserved for this VB.
	if base, ok := b.takeFreeOwned(vb, order); ok {
		b.markAllocated(base, order, vb)
		return base, true
	}
	// Priority 2: unreserved free blocks.
	if base, ok := b.takeFreeUnres(order); ok {
		b.markAllocated(base, order, 0)
		return base, true
	}
	// Priority 3: steal from another VB's reservation.
	if base, owner, ok := b.takeFreeStolen(vb, order); ok {
		b.markAllocated(base, order, owner)
		return base, true
	}
	return NoAddr, false
}

//vbi:hotpath
func (b *Buddy) markAllocated(base Addr, order int, reservedOwner Owner) {
	b.removeFree(base, order)
	fi := uint64(base) >> FrameShift
	b.meta[fi] = metaLive | uint8(order)
	b.ownerOf[fi] = b.internOwner(reservedOwner)
	b.freeBytes -= OrderBytes(order)
	if reservedOwner != 0 {
		m := b.allocatedFrom[reservedOwner]
		if m == nil {
			//vbi:allow hotalloc one map per owner with live reservation-backed allocations; owners are few and the map is reused for the owner's lifetime
			m = make(map[blockKey]struct{})
			b.allocatedFrom[reservedOwner] = m
		}
		m[blockKey{base, order}] = struct{}{}
	}
}

// AllocAt allocates the specific order-sized block at base for vb, if that
// exact region is currently free (whether unreserved or reserved for any
// owner). Directly-mapped VBs use it to materialize a 4 KB region at its
// fixed position inside the VB's reservation (§5.3); it fails when the
// region was stolen by another VB under memory pressure, which is the
// signal that the VB has lost its direct mapping.
//
//vbi:hotpath
func (b *Buddy) AllocAt(vb Owner, base Addr, order int) bool {
	if order < 0 || order > MaxOrder || uint64(base)%OrderBytes(order) != 0 {
		return false
	}
	if uint64(base)>>FrameShift >= b.nframes {
		return false
	}
	// Find the free block containing [base, base+2^order): the smallest
	// enclosing aligned block that exists and is free.
	for o := order; o <= MaxOrder; o++ {
		enclosing := base &^ Addr(OrderBytes(o)-1)
		fi := uint64(enclosing) >> FrameShift
		m := b.meta[fi]
		if m&metaLive == 0 || int(m&metaOrder) != o {
			continue
		}
		if m&metaFree == 0 {
			return false // region (or part of it) already allocated
		}
		owner := b.owners[b.ownerOf[fi]]
		b.splitToAt(enclosing, o, base, order, owner)
		b.markAllocated(base, order, owner)
		return true
	}
	return false
}

// splitToAt splits the free block (blockBase, from, owner) down to an
// order-"to" block at exactly target, keeping every split-off sibling free
// with the same owner.
//
//vbi:hotpath
func (b *Buddy) splitToAt(blockBase Addr, from int, target Addr, to int, owner Owner) {
	b.removeFree(blockBase, from)
	cur := blockBase
	for o := from; o > to; o-- {
		half := Addr(OrderBytes(o - 1))
		if target >= cur+half {
			b.addFree(cur, o-1, owner) // target in upper half; lower stays free
			cur += half
		} else {
			b.addFree(cur+half, o-1, owner)
		}
	}
	b.addFree(cur, to, owner)
}

// Reserve carves an order-sized contiguous region out of *unreserved* free
// memory and tags it as reserved for vb. Reserved blocks remain free (they
// count toward FreeBytes) but are preferred by vb's future allocations and
// only used by other VBs when nothing unreserved remains.
func (b *Buddy) Reserve(vb Owner, order int) (Addr, bool) {
	if vb == 0 || order < 0 || order > MaxOrder {
		return NoAddr, false
	}
	base, ok := b.takeFreeUnres(order)
	if !ok {
		return NoAddr, false
	}
	// Retag the block as reserved-free for vb.
	b.removeFree(base, order)
	b.addFree(base, order, vb)
	return base, true
}

// Free returns an allocated block to the pool. The block rejoins the
// reservation it was carved from (if that reservation still stands) and
// merges with same-state buddies.
//
//vbi:hotpath
func (b *Buddy) Free(base Addr, order int) {
	fi := uint64(base) >> FrameShift
	var m uint8
	if order >= 0 && order <= MaxOrder && fi < b.nframes {
		m = b.meta[fi]
	}
	if m&metaLive == 0 || int(m&metaOrder) != order || m&metaFree != 0 {
		//vbi:allow hotalloc panic formatting on a caller bug, never reached by a correct simulation
		panic(fmt.Sprintf("phys: Free of non-allocated block %v order %d", base, order))
	}
	owner := b.owners[b.ownerOf[fi]]
	b.meta[fi] = 0
	if owner != 0 {
		k := blockKey{base, order}
		if am := b.allocatedFrom[owner]; am != nil {
			delete(am, k)
			if len(am) == 0 {
				delete(b.allocatedFrom, owner)
			}
		}
	}
	b.freeBytes += OrderBytes(order)
	b.freeAndMerge(base, order, owner)
}

//vbi:hotpath
func (b *Buddy) freeAndMerge(base Addr, order int, owner Owner) {
	for order < MaxOrder {
		buddy := base ^ Addr(OrderBytes(order))
		bfi := uint64(buddy) >> FrameShift
		if bfi >= b.nframes {
			break
		}
		m := b.meta[bfi]
		if m&metaLive == 0 || m&metaFree == 0 || int(m&metaOrder) != order {
			break
		}
		if b.owners[b.ownerOf[bfi]] != owner {
			break
		}
		b.removeFree(buddy, order)
		if buddy < base {
			base = buddy
		}
		order++
	}
	b.addFree(base, order, owner)
}

// Unreserve releases vb's reservation: its remaining reserved-free blocks
// become unreserved free blocks, and blocks still allocated out of the
// reservation are retagged so that freeing them later returns them to the
// unreserved pool.
func (b *Buddy) Unreserve(vb Owner) {
	if oi, ok := b.ownerIdx[vb]; ok {
		type fb struct {
			base  Addr
			order int
		}
		var blocks []fb
		for o := 0; o <= MaxOrder; o++ {
			if b.cntResOwn[oi][o] == 0 {
				continue
			}
			bs := b.freeRes[o]
			for bi := bs.nextSet(b.hintRes[o]); bi >= 0; bi = bs.nextSet(bi + 1) {
				if b.ownerOf[uint64(bi)<<uint(o)] == oi {
					blocks = append(blocks, fb{Addr(uint64(bi) << uint(FrameShift+o)), o})
				}
			}
		}
		// Deterministic order for reproducible merging.
		sort.Slice(blocks, func(i, j int) bool { return blocks[i].base < blocks[j].base })
		for _, blk := range blocks {
			b.removeFree(blk.base, blk.order)
			b.freeAndMerge(blk.base, blk.order, 0)
		}
	}
	if m := b.allocatedFrom[vb]; m != nil {
		//vbi:allow maporder retagging each block's owner independently; no state read depends on visit order
		for k := range m {
			b.ownerOf[uint64(k.base)>>FrameShift] = 0
		}
		delete(b.allocatedFrom, vb)
	}
}

// LargestFreeOrder returns the order of the largest allocatable contiguous
// block available to vb at each priority level combined (i.e. the largest
// block Alloc(vb, order) would currently succeed for), or -1 when nothing
// is free.
func (b *Buddy) LargestFreeOrder(vb Owner) int {
	vbIdx, hasIdx := b.ownerIdx[vb]
	for o := MaxOrder; o >= 0; o-- {
		if b.cntUnres[o] > 0 {
			return o
		}
		own := int32(0)
		if hasIdx {
			own = b.cntResOwn[vbIdx][o]
		}
		if own > 0 {
			return o
		}
		if int32(b.cntRes[o])-own > 0 {
			return o
		}
	}
	return -1
}

// LargestUnreservedOrder returns the order of the largest unreserved free
// block (the contiguity Reserve can still satisfy), or -1 when none.
func (b *Buddy) LargestUnreservedOrder() int {
	for o := MaxOrder; o >= 0; o-- {
		if b.cntUnres[o] > 0 {
			return o
		}
	}
	return -1
}

// CheckInvariants verifies structural invariants and returns an error
// describing the first violation. It is exercised by the property tests.
func (b *Buddy) CheckInvariants() error {
	var free, reserved, total uint64
	var cntUnres, cntRes [MaxOrder + 1]int
	prevEnd := uint64(0)
	for fi := uint64(0); fi < b.nframes; fi++ {
		m := b.meta[fi]
		if m&metaLive == 0 {
			continue
		}
		o := int(m & metaOrder)
		base := fi << FrameShift
		size := OrderBytes(o)
		if base%size != 0 {
			return fmt.Errorf("block %v order %d misaligned", Addr(base), o)
		}
		if base < prevEnd {
			return fmt.Errorf("blocks overlap at %v", Addr(base))
		}
		prevEnd = base + size
		total += size
		if m&metaFree != 0 {
			bi := int(fi >> uint(o))
			free += size
			if b.ownerOf[fi] == 0 {
				cntUnres[o]++
				if b.freeUnres[o][bi>>6]&(1<<(uint(bi)&63)) == 0 {
					return fmt.Errorf("free block %v order %d missing from unreserved bitmap", Addr(base), o)
				}
			} else {
				cntRes[o]++
				reserved += size
				if b.freeRes[o][bi>>6]&(1<<(uint(bi)&63)) == 0 {
					return fmt.Errorf("free block %v order %d missing from reserved bitmap", Addr(base), o)
				}
			}
		}
	}
	if free != b.freeBytes {
		return fmt.Errorf("freeBytes %d, blocks sum to %d", b.freeBytes, free)
	}
	if reserved != b.reservedBytes {
		return fmt.Errorf("reservedBytes %d, blocks sum to %d", b.reservedBytes, reserved)
	}
	if total != b.capacity {
		return fmt.Errorf("blocks cover %d bytes, capacity %d", total, b.capacity)
	}
	for o := 0; o <= MaxOrder; o++ {
		if cntUnres[o] != b.cntUnres[o] || cntRes[o] != b.cntRes[o] {
			return fmt.Errorf("order %d free counts (%d unres, %d res) disagree with blocks (%d, %d)",
				o, b.cntUnres[o], b.cntRes[o], cntUnres[o], cntRes[o])
		}
	}
	return nil
}
