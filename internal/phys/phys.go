// Package phys models the physical memory space of the simulated machine and
// provides the allocators the Memory Translation Layer builds on:
//
//   - a simple 4 KB frame allocator (the base allocation mechanism of
//     §4.5.2, also used by the conventional-VM OS model), and
//   - a buddy allocator with per-VB reservations implementing the
//     early-reservation mechanism of §5.3, including the three-level
//     allocation priority (blocks reserved for the requesting VB, then
//     unreserved blocks, then blocks reserved for other VBs).
package phys

import "fmt"

// Addr is a physical byte address.
type Addr uint64

// NoAddr is the sentinel "no physical address" value.
const NoAddr Addr = ^Addr(0)

// FrameShift is log2 of the base allocation granularity (4 KB, §4.5.2).
const FrameShift = 12

// FrameSize is the base allocation granularity in bytes.
const FrameSize = 1 << FrameShift

// Frame returns the frame-aligned address containing a.
func (a Addr) Frame() Addr { return a &^ (FrameSize - 1) }

// Line returns the 64-byte line-aligned address containing a.
func (a Addr) Line() Addr { return a &^ 63 }

func (a Addr) String() string {
	if a == NoAddr {
		return "phys(none)"
	}
	return fmt.Sprintf("phys(%#x)", uint64(a))
}

// FrameAllocator hands out 4 KB physical frames from a fixed-capacity pool.
// It is the base memory allocation mechanism (§4.5.2) and is also used by
// the OS model of conventional baselines. Frames are handed out in address
// order from a free list so behaviour is deterministic.
type FrameAllocator struct {
	capacity uint64 // bytes
	next     Addr   // bump pointer for never-used frames
	freed    []Addr // LIFO of returned frames
	inUse    uint64 // frames currently allocated
}

// NewFrameAllocator returns an allocator over capacity bytes of physical
// memory. Capacity is rounded down to a whole number of frames.
func NewFrameAllocator(capacity uint64) *FrameAllocator {
	return &FrameAllocator{capacity: capacity &^ (FrameSize - 1)}
}

// Capacity returns the total pool size in bytes.
func (f *FrameAllocator) Capacity() uint64 { return f.capacity }

// FreeBytes returns the number of unallocated bytes.
func (f *FrameAllocator) FreeBytes() uint64 {
	return f.capacity - f.inUse*FrameSize
}

// Alloc returns a free frame, or ok=false when the pool is exhausted.
func (f *FrameAllocator) Alloc() (Addr, bool) {
	if n := len(f.freed); n > 0 {
		a := f.freed[n-1]
		f.freed = f.freed[:n-1]
		f.inUse++
		return a, true
	}
	if uint64(f.next)+FrameSize <= f.capacity {
		a := f.next
		f.next += FrameSize
		f.inUse++
		return a, true
	}
	return NoAddr, false
}

// Free returns a frame to the pool. It panics on a non-frame-aligned
// address, which always indicates a caller bug.
func (f *FrameAllocator) Free(a Addr) {
	if a != a.Frame() {
		panic(fmt.Sprintf("phys: Free of unaligned address %v", a))
	}
	f.freed = append(f.freed, a)
	f.inUse--
}
