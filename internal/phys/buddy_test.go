package phys

import (
	"math/rand"
	"testing"

	"vbi/internal/addr"
)

func vb(id uint64) Owner { return addr.MakeVBUID(addr.Size4MB, id) }

func TestBuddySimpleAllocFree(t *testing.T) {
	b := NewBuddy(1 << 20) // 1 MB = 256 frames
	if b.Capacity() != 1<<20 {
		t.Fatalf("capacity = %d", b.Capacity())
	}
	a1, ok := b.Alloc(vb(1), 0)
	if !ok {
		t.Fatal("alloc failed")
	}
	a2, ok := b.Alloc(vb(1), 0)
	if !ok || a2 == a1 {
		t.Fatalf("second alloc = %v,%v", a2, ok)
	}
	if b.FreeBytes() != 1<<20-2*FrameSize {
		t.Fatalf("FreeBytes = %d", b.FreeBytes())
	}
	b.Free(a1, 0)
	b.Free(a2, 0)
	if b.FreeBytes() != 1<<20 {
		t.Fatalf("FreeBytes after frees = %d", b.FreeBytes())
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Everything must have coalesced back into one 1 MB block (order 8).
	if got := b.LargestUnreservedOrder(); got != 8 {
		t.Fatalf("LargestUnreservedOrder = %d, want 8", got)
	}
}

func TestBuddyNonPowerOfTwoCapacity(t *testing.T) {
	// 3 MB decomposes into 2 MB + 1 MB top-level blocks.
	b := NewBuddy(3 << 20)
	if b.Capacity() != 3<<20 {
		t.Fatalf("capacity = %d", b.Capacity())
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := b.LargestUnreservedOrder(); got != 9 {
		t.Fatalf("largest order = %d, want 9 (2 MB)", got)
	}
}

func TestBuddyReservationPriority(t *testing.T) {
	b := NewBuddy(1 << 20)
	x, y := vb(1), vb(2)

	// Reserve 512 KB (order 7) for X.
	resBase, ok := b.Reserve(x, 7)
	if !ok {
		t.Fatal("reserve failed")
	}
	if b.ReservedBytes() != 512<<10 {
		t.Fatalf("ReservedBytes = %d", b.ReservedBytes())
	}

	// Priority 1: X's allocations come from its own reservation.
	a, ok := b.Alloc(x, 0)
	if !ok {
		t.Fatal("alloc failed")
	}
	if uint64(a) < uint64(resBase) || uint64(a) >= uint64(resBase)+512<<10 {
		t.Fatalf("X's allocation %v outside its reservation at %v", a, resBase)
	}

	// Priority 2: Y's allocations avoid X's reservation while unreserved
	// memory remains.
	for i := 0; i < (512<<10-FrameSize)/FrameSize; i++ {
		ya, ok := b.Alloc(y, 0)
		if !ok {
			t.Fatalf("Y alloc %d failed", i)
		}
		if uint64(ya) >= uint64(resBase) && uint64(ya) < uint64(resBase)+512<<10 {
			t.Fatalf("Y's allocation %v inside X's reservation while unreserved memory remains", ya)
		}
	}
	// One unreserved frame remains (we allocated one frame for X out of its
	// own reservation, so unreserved = 512 KB minus Y's allocations).
	if _, ok := b.Alloc(y, 0); !ok {
		t.Fatal("Y alloc of last unreserved frame failed")
	}

	// Priority 3: with unreserved memory exhausted, Y steals from X's
	// reservation.
	ya, ok := b.Alloc(y, 0)
	if !ok {
		t.Fatal("Y steal alloc failed")
	}
	if uint64(ya) < uint64(resBase) || uint64(ya) >= uint64(resBase)+512<<10 {
		t.Fatalf("steal allocation %v not inside X's reservation", ya)
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBuddyFreeReturnsToReservation(t *testing.T) {
	b := NewBuddy(1 << 20)
	x := vb(1)
	if _, ok := b.Reserve(x, 8); !ok { // reserve everything
		t.Fatal("reserve failed")
	}
	a, ok := b.Alloc(x, 3)
	if !ok {
		t.Fatal("alloc failed")
	}
	b.Free(a, 3)
	if b.ReservedBytes() != 1<<20 {
		t.Fatalf("ReservedBytes = %d, want full pool (block returned to reservation)", b.ReservedBytes())
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBuddyUnreserve(t *testing.T) {
	b := NewBuddy(1 << 20)
	x := vb(1)
	if _, ok := b.Reserve(x, 8); !ok {
		t.Fatal("reserve failed")
	}
	a, _ := b.Alloc(x, 2)
	b.Unreserve(x)
	if b.ReservedBytes() != 0 {
		t.Fatalf("ReservedBytes = %d after Unreserve", b.ReservedBytes())
	}
	// Freeing the surviving allocation must return it to the unreserved
	// pool and coalesce fully.
	b.Free(a, 2)
	if got := b.LargestUnreservedOrder(); got != 8 {
		t.Fatalf("largest unreserved order = %d, want 8", got)
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBuddyStolenBlockFreesBackToVictim(t *testing.T) {
	b := NewBuddy(256 << 10) // order 6 pool
	x, y := vb(1), vb(2)
	if _, ok := b.Reserve(x, 6); !ok { // X reserves everything
		t.Fatal("reserve failed")
	}
	a, ok := b.Alloc(y, 0) // Y must steal
	if !ok {
		t.Fatal("steal failed")
	}
	b.Free(a, 0)
	// The freed frame rejoins X's reservation.
	if b.ReservedBytes() != 256<<10 {
		t.Fatalf("ReservedBytes = %d, want full pool", b.ReservedBytes())
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBuddyExhaustion(t *testing.T) {
	b := NewBuddy(64 << 10) // 16 frames
	for i := 0; i < 16; i++ {
		if _, ok := b.Alloc(vb(1), 0); !ok {
			t.Fatalf("alloc %d failed", i)
		}
	}
	if _, ok := b.Alloc(vb(1), 0); ok {
		t.Fatal("alloc succeeded on empty pool")
	}
	if b.LargestFreeOrder(vb(1)) != -1 {
		t.Fatal("LargestFreeOrder should be -1")
	}
}

func TestBuddyLargestFreeOrderSeesStealable(t *testing.T) {
	b := NewBuddy(256 << 10)
	x, y := vb(1), vb(2)
	b.Reserve(x, 6) // everything reserved for X
	if got := b.LargestUnreservedOrder(); got != -1 {
		t.Fatalf("LargestUnreservedOrder = %d, want -1", got)
	}
	// Y can still allocate by stealing, so LargestFreeOrder reports it.
	if got := b.LargestFreeOrder(y); got != 6 {
		t.Fatalf("LargestFreeOrder(y) = %d, want 6", got)
	}
}

func TestBuddyFreePanicsOnBadBlock(t *testing.T) {
	b := NewBuddy(1 << 20)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.Free(Addr(0), 0) // never allocated
}

// TestBuddyRandomizedInvariants drives a random workload of reservations,
// allocations and frees and checks structural invariants throughout.
func TestBuddyRandomizedInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	b := NewBuddy(8 << 20)
	type alloced struct {
		base  Addr
		order int
	}
	var outstanding []alloced
	owners := []Owner{vb(1), vb(2), vb(3), vb(4)}
	reserved := map[Owner]bool{}
	for step := 0; step < 4000; step++ {
		switch r := rng.Intn(10); {
		case r < 5: // alloc
			o := rng.Intn(5)
			owner := owners[rng.Intn(len(owners))]
			if base, ok := b.Alloc(owner, o); ok {
				outstanding = append(outstanding, alloced{base, o})
			}
		case r < 8: // free
			if len(outstanding) > 0 {
				i := rng.Intn(len(outstanding))
				a := outstanding[i]
				outstanding[i] = outstanding[len(outstanding)-1]
				outstanding = outstanding[:len(outstanding)-1]
				b.Free(a.base, a.order)
			}
		case r < 9: // reserve
			owner := owners[rng.Intn(len(owners))]
			if _, ok := b.Reserve(owner, rng.Intn(7)); ok {
				reserved[owner] = true
			}
		default: // unreserve
			owner := owners[rng.Intn(len(owners))]
			if reserved[owner] {
				b.Unreserve(owner)
				delete(reserved, owner)
			}
		}
		if step%200 == 0 {
			if err := b.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	// Drain everything and verify full coalescing.
	for _, a := range outstanding {
		b.Free(a.base, a.order)
	}
	for o := range reserved {
		b.Unreserve(o)
	}
	for _, owner := range owners {
		b.Unreserve(owner)
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if b.FreeBytes() != b.Capacity() {
		t.Fatalf("FreeBytes = %d, want %d", b.FreeBytes(), b.Capacity())
	}
	if got := b.LargestUnreservedOrder(); got != 11 { // 8 MB = order 11
		t.Fatalf("largest order = %d, want 11", got)
	}
}

func TestBuddyAllocOrderBounds(t *testing.T) {
	b := NewBuddy(1 << 20)
	if _, ok := b.Alloc(vb(1), -1); ok {
		t.Error("negative order alloc succeeded")
	}
	if _, ok := b.Alloc(vb(1), MaxOrder+1); ok {
		t.Error("over-max order alloc succeeded")
	}
	if _, ok := b.Reserve(0, 0); ok {
		t.Error("reserve for owner 0 succeeded")
	}
}

func TestBuddyAllocAt(t *testing.T) {
	b := NewBuddy(1 << 20)
	x := vb(1)
	resBase, ok := b.Reserve(x, 8) // whole pool reserved
	if !ok {
		t.Fatal("reserve failed")
	}
	// Materialize a specific frame deep inside the reservation.
	target := resBase + Addr(37*FrameSize)
	if !b.AllocAt(x, target, 0) {
		t.Fatal("AllocAt failed on free reserved region")
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The same frame cannot be allocated twice.
	if b.AllocAt(x, target, 0) {
		t.Fatal("AllocAt double-allocated a frame")
	}
	// Neighbouring frame still works.
	if !b.AllocAt(x, target+FrameSize, 0) {
		t.Fatal("AllocAt of neighbour failed")
	}
	b.Free(target, 0)
	b.Free(target+FrameSize, 0)
	b.Unreserve(x)
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := b.LargestUnreservedOrder(); got != 8 {
		t.Fatalf("pool did not re-coalesce: largest order %d", got)
	}
}

func TestBuddyAllocAtStolenRegionFails(t *testing.T) {
	b := NewBuddy(128 << 10) // 32 frames
	x, y := vb(1), vb(2)
	resBase, ok := b.Reserve(x, 5) // X reserves all 32 frames
	if !ok {
		t.Fatal("reserve failed")
	}
	// Y steals a specific region (simulating pressure): allocate every
	// frame to Y.
	for i := 0; i < 32; i++ {
		if _, ok := b.Alloc(y, 0); !ok {
			t.Fatalf("steal alloc %d failed", i)
		}
	}
	// X can no longer materialize its frames: direct mapping lost.
	if b.AllocAt(x, resBase, 0) {
		t.Fatal("AllocAt succeeded on stolen region")
	}
}

func TestBuddyAllocAtUnaligned(t *testing.T) {
	b := NewBuddy(1 << 20)
	if b.AllocAt(vb(1), Addr(FrameSize/2), 0) {
		t.Fatal("unaligned AllocAt succeeded")
	}
	if b.AllocAt(vb(1), Addr(FrameSize), 1) { // misaligned for order 1
		t.Fatal("order-misaligned AllocAt succeeded")
	}
}

func TestBuddyAllocAtUnreservedRegion(t *testing.T) {
	b := NewBuddy(1 << 20)
	if !b.AllocAt(vb(1), Addr(512<<10), 3) {
		t.Fatal("AllocAt on unreserved free region failed")
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	b.Free(Addr(512<<10), 3)
	if got := b.LargestUnreservedOrder(); got != 8 {
		t.Fatalf("did not coalesce: %d", got)
	}
}
