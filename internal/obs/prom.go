package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// This file is the shared Prometheus text-exposition writer: three
// lines of header per family plus one line per sample, hand-rolled
// because the format is trivial and a client library is a dependency
// this repo does not take. Rendering is deterministic — callers pass
// samples in sorted order (SortSamples helps), so two scrapes of the
// same state are byte-identical and diffable. Both the worker's
// /metrics and sweepd's use it, so the exposition style cannot drift
// between daemons.

// Label is one name="value" pair on a sample.
type Label struct {
	Key   string
	Value string
}

// Sample is one exposition line's value and labels. Value is printed
// with %v so integer-valued counters render without a decimal point.
type Sample struct {
	Labels []Label
	Value  any
}

// L builds a label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// S builds a sample.
func S(value any, labels ...Label) Sample { return Sample{Labels: labels, Value: value} }

// SortSamples orders samples by their rendered label sets, giving every
// family a deterministic line order regardless of how the samples were
// gathered.
func SortSamples(samples []Sample) {
	sort.SliceStable(samples, func(i, j int) bool {
		return labelKey(samples[i].Labels) < labelKey(samples[j].Labels)
	})
}

func labelKey(labels []Label) string {
	s := ""
	for _, l := range labels {
		s += l.Key + "\x00" + l.Value + "\x00"
	}
	return s
}

// WriteFamily renders one metric family: HELP/TYPE header plus each
// sample in the given order.
func WriteFamily(w io.Writer, name, help, typ string, samples []Sample) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	for _, s := range samples {
		if len(s.Labels) == 0 {
			fmt.Fprintf(w, "%s %v\n", name, s.Value)
			continue
		}
		fmt.Fprintf(w, "%s{", name)
		for i, l := range s.Labels {
			if i > 0 {
				io.WriteString(w, ",")
			}
			fmt.Fprintf(w, "%s=%q", l.Key, l.Value)
		}
		fmt.Fprintf(w, "} %v\n", s.Value)
	}
}

// formatBound renders a bucket bound the shortest way that round-trips
// ("0.25", "1", "10").
func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}

// WriteHistogram renders a snapshot as a Prometheus histogram family:
// cumulative <name>_bucket{le="..."} lines (the +Inf bucket last), then
// <name>_sum and <name>_count. base labels, when given, prefix every
// line's label set (e.g. a worker="..." dimension).
func WriteHistogram(w io.Writer, name, help string, base []Label, s HistogramSnapshot) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum uint64
	line := func(suffix string, labels []Label, v any) {
		fmt.Fprintf(w, "%s%s{", name, suffix)
		for i, l := range labels {
			if i > 0 {
				io.WriteString(w, ",")
			}
			fmt.Fprintf(w, "%s=%q", l.Key, l.Value)
		}
		fmt.Fprintf(w, "} %v\n", v)
	}
	for i, b := range s.Bounds {
		cum += s.Counts[i]
		line("_bucket", append(append([]Label{}, base...), L("le", formatBound(b))), cum)
	}
	if len(s.Counts) > len(s.Bounds) {
		cum += s.Counts[len(s.Bounds)]
	}
	line("_bucket", append(append([]Label{}, base...), L("le", "+Inf")), cum)
	if len(base) == 0 {
		fmt.Fprintf(w, "%s_sum %v\n%s_count %d\n", name, s.Sum, name, s.Count)
		return
	}
	line("_sum", base, s.Sum)
	line("_count", base, s.Count)
}

// QuantileSamples renders a snapshot's estimated quantiles as gauge
// samples with a quantile="..." label appended to base, in the given
// quantile order (pass ascending quantiles for sorted output).
func QuantileSamples(s HistogramSnapshot, quantiles []float64, base ...Label) []Sample {
	out := make([]Sample, 0, len(quantiles))
	for _, q := range quantiles {
		labels := append(append([]Label{}, base...), L("quantile", formatBound(q)))
		out = append(out, Sample{Labels: labels, Value: s.Quantile(q)})
	}
	return out
}
