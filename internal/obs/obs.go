// Package obs is the repo's observability layer: per-job timing
// (Timer/JobTiming), fixed-bucket latency histograms with deterministic
// Prometheus rendering (Histogram, WriteFamily), shared structured-log
// setup over log/slog (LogOptions), trace-ID minting/chaining for
// cross-process request correlation, and pprof capture around figure
// runs (Profiles).
//
// It is stdlib-only and imports nothing else from this module, so every
// tier — sim core, harness, dist plane, daemons, CLIs — can depend on it
// without cycles. Timing and trace data ride *beside* results, never
// inside them: harness.Result excludes Timing from JSON, and the dist
// wire carries JobTiming in a separate field, so cached result bytes and
// rendered matrices stay byte-identical whether or not anyone is
// watching.
//
// The trace-ID chain is "<root>/<shard-seq>": the root names one
// coordinator run (or one daemon lifetime), minted with NewTraceID;
// each dispatched shard appends its sequence number with ChildID. The
// chain travels coordinator→worker in the TraceHeader HTTP header and
// appears as the "trace" attribute in both sides' structured logs, so
// one grep follows a shard across machines. DESIGN.md §8 documents the
// format and the metric families.
package obs

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
)

// TraceHeader is the HTTP header carrying the trace-ID chain on every
// shard request (dist.ExecuteShard sets it, the worker logs it).
const TraceHeader = "X-VBI-Trace"

// NewTraceID mints a root trace ID: "t-" plus 8 random hex digits.
// Collisions across concurrent runs are what the random bits prevent;
// the ID carries no timestamp so minting stays deterministic-friendly
// (nothing downstream may branch on it).
func NewTraceID() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing means the platform is broken; ids are
		// best-effort observability, so fall back to a fixed marker
		// rather than taking the run down.
		return "t-00000000"
	}
	return "t-" + hex.EncodeToString(b[:])
}

// ChildID appends one link to a trace chain: "<parent>/<seq>". The
// coordinator numbers shards with it; a deeper chain (sweep/shard/job)
// just applies it again.
func ChildID(parent string, seq int64) string {
	return fmt.Sprintf("%s/%d", parent, seq)
}
