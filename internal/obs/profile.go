package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
)

// Profiles captures pprof profiles around a region of work — the
// mechanism behind `vbibench -profile cpu,heap,out=dir/`. Start it
// before the region, Stop after; the profiles land as cpu.pprof and
// heap.pprof in the output directory, ready for `go tool pprof`.
type Profiles struct {
	dir  string
	heap bool
	cpu  *os.File
}

// StartProfiles parses a -profile spec and starts the requested
// captures. The spec is a comma list of "cpu", "heap" and "out=DIR"
// (default directory "."): "cpu,heap,out=prof/" captures both into
// prof/. An empty spec returns nil — callers can pass the flag value
// straight through and Stop handles the nil receiver.
func StartProfiles(spec string) (*Profiles, error) {
	if spec == "" {
		return nil, nil
	}
	p := &Profiles{dir: "."}
	wantCPU := false
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		switch {
		case part == "":
		case part == "cpu":
			wantCPU = true
		case part == "heap":
			p.heap = true
		case strings.HasPrefix(part, "out="):
			p.dir = strings.TrimPrefix(part, "out=")
		default:
			return nil, fmt.Errorf("obs: bad -profile element %q (want cpu, heap or out=DIR)", part)
		}
	}
	if !wantCPU && !p.heap {
		return nil, fmt.Errorf("obs: -profile %q selects no profile (want cpu and/or heap)", spec)
	}
	if err := os.MkdirAll(p.dir, 0o755); err != nil {
		return nil, fmt.Errorf("obs: profile dir: %w", err)
	}
	if wantCPU {
		f, err := os.Create(filepath.Join(p.dir, "cpu.pprof"))
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("obs: start cpu profile: %w", err)
		}
		p.cpu = f
	}
	return p, nil
}

// Stop ends the captures and writes the heap profile. Safe on a nil
// receiver (the no-profiling case).
func (p *Profiles) Stop() error {
	if p == nil {
		return nil
	}
	if p.cpu != nil {
		pprof.StopCPUProfile()
		if err := p.cpu.Close(); err != nil {
			return err
		}
		p.cpu = nil
	}
	if p.heap {
		f, err := os.Create(filepath.Join(p.dir, "heap.pprof"))
		if err != nil {
			return err
		}
		// An up-to-date GC cycle makes the heap profile reflect live
		// memory at Stop, not whenever the last cycle happened to run.
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		p.heap = false
	}
	return nil
}
