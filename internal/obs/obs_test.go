package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestJobTimingJSONPinned pins JobTiming's wire JSON byte-for-byte: it
// rides dist RunResponses under the protocol version, so any shape
// change must arrive together with a wire bump.
func TestJobTimingJSONPinned(t *testing.T) {
	timing := JobTiming{
		WallNanos:  1500,
		QueueNanos: 25,
		Cached:     true,
		Phases:     PhaseCounts{TLB: 1, PWC: 2, Walk: 3, Cache: 4, DRAM: 5},
	}
	b, err := json.Marshal(timing)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"wall_nanos":1500,"queue_nanos":25,"cached":true,"phases":{"tlb":1,"pwc":2,"walk":3,"cache":4,"dram":5}}`
	if string(b) != want {
		t.Fatalf("JobTiming JSON drifted:\n got %s\nwant %s", b, want)
	}
	// The omitempty fields must vanish for the common simulated case, so
	// the wire stays small across large sweeps.
	b, err = json.Marshal(JobTiming{WallNanos: 7})
	if err != nil {
		t.Fatal(err)
	}
	want = `{"wall_nanos":7,"phases":{"tlb":0,"pwc":0,"walk":0,"cache":0,"dram":0}}`
	if string(b) != want {
		t.Fatalf("zero-queue JobTiming JSON drifted:\n got %s\nwant %s", b, want)
	}
}

func TestPhaseCounts(t *testing.T) {
	a := PhaseCounts{TLB: 1, PWC: 2, Walk: 3, Cache: 4, DRAM: 5}
	b := PhaseCounts{TLB: 10, PWC: 20, Walk: 30, Cache: 40, DRAM: 50}
	sum := a.Add(b)
	if sum != (PhaseCounts{TLB: 11, PWC: 22, Walk: 33, Cache: 44, DRAM: 55}) {
		t.Fatalf("Add: got %+v", sum)
	}
	if !(PhaseCounts{}).IsZero() || a.IsZero() {
		t.Fatal("IsZero misreports")
	}
	if got, want := a.String(), "tlb=1 pwc=2 walk=3 cache=4 dram=5"; got != want {
		t.Fatalf("String: got %q, want %q", got, want)
	}
}

// TestTimerAllocationFree proves the hot-path claim the hotalloc
// analyzer checks statically: starting and stopping a Timer allocates
// nothing.
func TestTimerAllocationFree(t *testing.T) {
	queued := time.Now()
	var sink time.Duration
	allocs := testing.AllocsPerRun(1000, func() {
		tm := StartTimer(queued)
		wall, queue := tm.Stop()
		sink = wall + queue
	})
	_ = sink
	if allocs != 0 {
		t.Fatalf("Timer start/stop allocates %v times per run; want 0", allocs)
	}
}

func TestTimerQueueWait(t *testing.T) {
	queued := time.Now().Add(-50 * time.Millisecond)
	tm := StartTimer(queued)
	wall, queue := tm.Stop()
	if queue < 40*time.Millisecond {
		t.Fatalf("queue wait %v, want >=40ms", queue)
	}
	if wall < 0 || wall > time.Second {
		t.Fatalf("implausible wall %v", wall)
	}
	// A zero queuedAt means "no queue": the wait must be exactly zero.
	if _, q := StartTimer(time.Time{}).Stop(); q != 0 {
		t.Fatalf("zero queuedAt produced queue wait %v", q)
	}
}

// TestHistogramObserveAllocationFree pins Observe as safe to call from
// dispatch paths.
func TestHistogramObserveAllocationFree(t *testing.T) {
	h := NewHistogram(LatencyBuckets()...)
	allocs := testing.AllocsPerRun(1000, func() { h.Observe(0.42) })
	if allocs != 0 {
		t.Fatalf("Observe allocates %v times per run; want 0", allocs)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(1, 2, 4, 8)
	for i := 0; i < 100; i++ {
		h.Observe(1.5) // all land in the (1,2] bucket
	}
	s := h.Snapshot()
	if s.Count != 100 || s.Sum != 150 {
		t.Fatalf("snapshot: count=%d sum=%v", s.Count, s.Sum)
	}
	// Every rank interpolates within (1,2].
	for _, q := range []float64{0.1, 0.5, 0.99} {
		if v := s.Quantile(q); v <= 1 || v > 2 {
			t.Fatalf("q%v = %v, want in (1,2]", q, v)
		}
	}
	// Values past the last bound clamp to it.
	h2 := NewHistogram(1, 2)
	h2.Observe(100)
	if v := h2.Snapshot().Quantile(0.5); v != 2 {
		t.Fatalf("+Inf-bucket quantile = %v, want 2 (last finite bound)", v)
	}
	if v := (HistogramSnapshot{}).Quantile(0.5); v != 0 {
		t.Fatalf("empty quantile = %v, want 0", v)
	}
}

// TestHistogramRenderingDeterministic pins the exposition bytes: same
// observations (any order, any interleaving) render identically, bucket
// lines cumulative and in bound order with +Inf last.
func TestHistogramRenderingDeterministic(t *testing.T) {
	render := func(values []float64) string {
		h := NewHistogram(0.1, 1, 10)
		var wg sync.WaitGroup
		for _, v := range values {
			wg.Add(1)
			go func(v float64) { defer wg.Done(); h.Observe(v) }(v)
		}
		wg.Wait()
		var buf bytes.Buffer
		WriteHistogram(&buf, "x_seconds", "Test.", []Label{L("worker", "w1")}, h.Snapshot())
		return buf.String()
	}
	values := []float64{0.05, 0.5, 5, 50, 0.5}
	a := render(values)
	b := render([]float64{50, 0.5, 0.5, 5, 0.05}) // permuted
	if a != b {
		t.Fatalf("rendering depends on observation order:\n%s\nvs\n%s", a, b)
	}
	want := `# HELP x_seconds Test.
# TYPE x_seconds histogram
x_seconds_bucket{worker="w1",le="0.1"} 1
x_seconds_bucket{worker="w1",le="1"} 3
x_seconds_bucket{worker="w1",le="10"} 4
x_seconds_bucket{worker="w1",le="+Inf"} 5
x_seconds_sum{worker="w1"} 56.05
x_seconds_count{worker="w1"} 5
`
	if a != want {
		t.Fatalf("exposition drifted:\n got %q\nwant %q", a, want)
	}
}

func TestWriteFamilyAndSortSamples(t *testing.T) {
	samples := []Sample{
		S(int64(2), L("worker", "b")),
		S(int64(1), L("worker", "a")),
		S(3.5, L("worker", "c"), L("quantile", "0.5")),
	}
	SortSamples(samples)
	var buf bytes.Buffer
	WriteFamily(&buf, "f_total", "Help text.", "counter", samples)
	want := `# HELP f_total Help text.
# TYPE f_total counter
f_total{worker="a"} 1
f_total{worker="b"} 2
f_total{worker="c",quantile="0.5"} 3.5
`
	if buf.String() != want {
		t.Fatalf("family drifted:\n got %q\nwant %q", buf.String(), want)
	}
}

func TestQuantileSamples(t *testing.T) {
	h := NewHistogram(1, 2)
	h.Observe(1.5)
	got := QuantileSamples(h.Snapshot(), []float64{0.5, 0.99}, L("worker", "w"))
	if len(got) != 2 {
		t.Fatalf("got %d samples", len(got))
	}
	if got[0].Labels[1] != (Label{Key: "quantile", Value: "0.5"}) {
		t.Fatalf("quantile label: %+v", got[0].Labels)
	}
}

func TestTraceIDs(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if !strings.HasPrefix(a, "t-") || len(a) != 10 {
		t.Fatalf("bad trace id %q", a)
	}
	if a == b {
		t.Fatalf("trace ids collide: %q", a)
	}
	if got, want := ChildID(a, 3), a+"/3"; got != want {
		t.Fatalf("ChildID: got %q, want %q", got, want)
	}
}

func TestLogOptions(t *testing.T) {
	var buf bytes.Buffer
	log, err := LogOptions{Format: "json", Level: "warn"}.New(&buf)
	if err != nil {
		t.Fatal(err)
	}
	log.Info("dropped")
	log.Warn("kept", "trace", "t-1234/1")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("not one JSON record: %v (%q)", err, buf.String())
	}
	if rec["msg"] != "kept" || rec["trace"] != "t-1234/1" {
		t.Fatalf("record: %v", rec)
	}
	if _, err := (LogOptions{Format: "xml"}).New(&buf); err == nil {
		t.Fatal("bad format accepted")
	}
	if _, err := (LogOptions{Level: "loud"}).New(&buf); err == nil {
		t.Fatal("bad level accepted")
	}
	// The zero value must work: it is what a daemon without log flags
	// passes.
	if _, err := (LogOptions{}).New(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestProfiles(t *testing.T) {
	dir := t.TempDir()
	p, err := StartProfiles("cpu,heap,out=" + dir)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has samples to write.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := p.Stop(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"cpu.pprof", "heap.pprof"} {
		if fi, err := os.Stat(filepath.Join(dir, name)); err != nil || fi.Size() == 0 {
			t.Fatalf("%s missing or empty (err=%v)", name, err)
		}
	}
	// Nil and empty-spec cases must be no-ops.
	if p, err := StartProfiles(""); err != nil || p != nil {
		t.Fatalf("empty spec: %v %v", p, err)
	}
	if err := (*Profiles)(nil).Stop(); err != nil {
		t.Fatal(err)
	}
	if _, err := StartProfiles("gpu"); err == nil {
		t.Fatal("bad spec accepted")
	}
	if _, err := StartProfiles("out=" + dir); err == nil {
		t.Fatal("profile-less spec accepted")
	}
}
