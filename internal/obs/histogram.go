package obs

import (
	"sync"
)

// Histogram is a fixed-bucket histogram safe for concurrent Observe.
// Buckets are chosen at construction and never change, so Observe is
// allocation-free (a mutex and a linear scan over a few bounds — the
// bucket count is small by design). Snapshot copies the state out for
// rendering and quantile estimation, so scrapes never block observers
// for longer than the copy.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds; implicit +Inf after the last
	counts []uint64  // len(bounds)+1; counts[len(bounds)] is the +Inf bucket
	sum    float64
	total  uint64
}

// NewHistogram builds a histogram over ascending upper bounds. An
// implicit +Inf bucket catches everything past the last bound.
func NewHistogram(bounds ...float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

// LatencyBuckets is the shared bucket layout for job and shard
// latencies, in seconds: 1ms to 2m, roughly ×2.5 per step. One layout
// everywhere keeps worker and daemon histograms comparable and is the
// layout DESIGN.md §8 documents.
func LatencyBuckets() []float64 {
	return []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120}
}

// Observe records one value.
//
//vbi:hotpath
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// HistogramSnapshot is a point-in-time copy of a histogram's state,
// detached from the live counters.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64 // per-bucket (not cumulative); last entry is +Inf
	Sum    float64
	Count  uint64
}

// Snapshot copies the histogram out under the lock.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Bounds: make([]float64, len(h.bounds)),
		Counts: make([]uint64, len(h.counts)),
		Sum:    h.sum,
		Count:  h.total,
	}
	copy(s.Bounds, h.bounds)
	copy(s.Counts, h.counts)
	return s
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear
// interpolation inside the bucket holding the target rank, the standard
// fixed-bucket estimate. An empty histogram returns 0; ranks landing in
// the +Inf bucket return the last finite bound (the estimate cannot
// exceed what the layout can resolve).
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		next := cum + float64(c)
		if rank <= next && c > 0 {
			if i >= len(s.Bounds) {
				return s.Bounds[len(s.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Bounds[i]
			return lo + (hi-lo)*((rank-cum)/float64(c))
		}
		cum = next
	}
	return s.Bounds[len(s.Bounds)-1]
}
