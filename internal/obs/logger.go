package obs

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// LogOptions is the shared structured-logging configuration every
// daemon and CLI exposes as -log-format/-log-level, so "how do I get
// JSON logs" has exactly one answer across vbiworker, vbisweepd and the
// coordinator front-ends.
type LogOptions struct {
	// Format selects the slog handler: "text" (the default, human
	// key=value lines) or "json" (one JSON object per record, what the
	// CI observability smoke greps).
	Format string
	// Level is the minimum level emitted: debug, info, warn or error.
	Level string
}

// Flags registers -log-format and -log-level on fs.
func (o *LogOptions) Flags(fs *flag.FlagSet) {
	fs.StringVar(&o.Format, "log-format", "text", "structured log format: text or json")
	fs.StringVar(&o.Level, "log-level", "info", "minimum log level: debug, info, warn or error")
}

// New builds the configured logger writing to w. The zero LogOptions is
// valid (text at info).
func (o LogOptions) New(w io.Writer) (*slog.Logger, error) {
	var level slog.Level
	switch strings.ToLower(o.Level) {
	case "", "info":
		level = slog.LevelInfo
	case "debug":
		level = slog.LevelDebug
	case "warn", "warning":
		level = slog.LevelWarn
	case "error":
		level = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown -log-level %q (want debug, info, warn or error)", o.Level)
	}
	opts := &slog.HandlerOptions{Level: level}
	switch strings.ToLower(o.Format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown -log-format %q (want text or json)", o.Format)
	}
}

// Discard is a logger that drops every record: the nil-object for
// components whose Logger field was left unset.
var Discard = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{
	// Above every real level, so records are rejected before formatting.
	Level: slog.Level(127),
}))
