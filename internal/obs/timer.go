package obs

import "time"

// PhaseCounts is the cross-system per-phase event breakdown carried in
// JobTiming: how a job's simulated work distributes over the memory
// hierarchy's phases, built from the counters every system already
// keeps (system.RunResult.Phases maps its Extra counters onto these
// fields). Counts are events, not cycles — they attribute *where* the
// simulation spent its effort, which is what the wall clock is being
// broken down against.
//
//vbi:wire
type PhaseCounts struct {
	// TLB counts first-level translation-cache misses (TLB, MTL TLB,
	// Enigma CTC).
	TLB uint64 `json:"tlb"`
	// PWC counts translation-structure lookups past the TLB: page-table
	// walks started and VBI CVT misses.
	PWC uint64 `json:"pwc"`
	// Walk counts memory accesses issued by table walks (conventional
	// walkers and the MTL's).
	Walk uint64 `json:"walk"`
	// Cache counts references entering the cache hierarchy (MemRefs).
	Cache uint64 `json:"cache"`
	// DRAM counts main-memory accesses (reads+writes, translation
	// traffic included).
	DRAM uint64 `json:"dram"`
}

// Add returns the field-wise sum; multi-core jobs and sweep aggregates
// fold per-run counts with it.
func (p PhaseCounts) Add(q PhaseCounts) PhaseCounts {
	return PhaseCounts{
		TLB:   p.TLB + q.TLB,
		PWC:   p.PWC + q.PWC,
		Walk:  p.Walk + q.Walk,
		Cache: p.Cache + q.Cache,
		DRAM:  p.DRAM + q.DRAM,
	}
}

// IsZero reports whether no phase recorded any event.
func (p PhaseCounts) IsZero() bool {
	return p == PhaseCounts{}
}

// String renders the fixed-order human form used in progress lines:
// "tlb=1 pwc=2 walk=3 cache=4 dram=5".
func (p PhaseCounts) String() string {
	return "tlb=" + utoa(p.TLB) + " pwc=" + utoa(p.PWC) + " walk=" + utoa(p.Walk) +
		" cache=" + utoa(p.Cache) + " dram=" + utoa(p.DRAM)
}

// utoa is strconv.FormatUint without the import weight in the hot
// package surface; PhaseCounts.String is cold, clarity wins.
func utoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// JobTiming is one job's measurement record: wall time on the executing
// pool, time spent queued behind the batch, whether the result came
// from a cache, and the per-phase event breakdown. It rides the dist
// wire in JobResult.Timing — beside the results, never inside them — so
// the coordinator sees where remote time went while cached result bytes
// stay byte-identical to untimed runs.
//
//vbi:wire
type JobTiming struct {
	// WallNanos is the job's simulation wall clock on the pool that
	// executed it (zero for cache hits).
	WallNanos int64 `json:"wall_nanos"`
	// QueueNanos is how long the job waited between batch start and its
	// own start on the executing pool.
	QueueNanos int64 `json:"queue_nanos,omitempty"`
	// Cached reports a result served from a result cache (local or the
	// worker's) rather than simulated.
	Cached bool `json:"cached,omitempty"`
	// Phases is the per-phase event breakdown summed across the job's
	// cores (cache hits report it too — the counters are part of the
	// cached result).
	Phases PhaseCounts `json:"phases"`

	// Shards is the number of intra-job shards the job was decomposed
	// into (0 or 1 = executed whole). For time-sliced jobs it counts the
	// slice sub-jobs; for sharded bundles, the worker goroutines.
	Shards int `json:"shards,omitempty"`
	// ShardWallNanos is the summed wall clock of the shard executions.
	// Against WallNanos (the decomposed job's end-to-end critical path)
	// it yields the intra-job speedup ShardWallNanos/WallNanos.
	ShardWallNanos int64 `json:"shard_wall_nanos,omitempty"`
}

// Speedup returns the intra-job parallel speedup (1 when the job was not
// decomposed or not timed).
func (t *JobTiming) Speedup() float64 {
	if t.Shards <= 1 || t.ShardWallNanos == 0 || t.WallNanos == 0 {
		return 1
	}
	return float64(t.ShardWallNanos) / float64(t.WallNanos)
}

// Wall returns the wall clock as a duration.
func (t *JobTiming) Wall() time.Duration { return time.Duration(t.WallNanos) }

// Queue returns the queue wait as a duration.
func (t *JobTiming) Queue() time.Duration { return time.Duration(t.QueueNanos) }

// Timer measures one job without allocating: a value type with concrete
// methods, so wrapping a run in one is free on the runner's dispatch
// path. StartTimer notes the start, Stop returns wall time and queue
// wait. The methods are marked //vbi:hotpath so vbilint's hotalloc
// analyzer machine-checks the allocation-free claim.
type Timer struct {
	queuedAt  time.Time
	startedAt time.Time
}

// StartTimer starts timing now. queuedAt, when non-zero, is the moment
// the job entered its batch's queue (queue wait = start − queuedAt); a
// zero queuedAt records zero wait.
//
//vbi:hotpath
func StartTimer(queuedAt time.Time) Timer {
	now := time.Now()
	if queuedAt.IsZero() {
		queuedAt = now
	}
	return Timer{queuedAt: queuedAt, startedAt: now}
}

// Stop returns the wall time since StartTimer and the queue wait before
// it. It may be called multiple times; each call measures from the same
// start.
//
//vbi:hotpath
func (t Timer) Stop() (wall, queue time.Duration) {
	return time.Since(t.startedAt), t.startedAt.Sub(t.queuedAt)
}
