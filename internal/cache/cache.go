// Package cache models set-associative write-back, write-allocate caches and
// the three-level on-chip hierarchy of Table 1. The caches are address-type
// agnostic: they index by 64-byte line address, which may be a virtual,
// VBI, intermediate or physical address depending on the system being
// simulated (conventional systems index by physical address after
// translation, while VBI/VIVT/Enigma systems index caches purely virtually,
// §3.5).
package cache

import (
	"fmt"
	"slices"
)

// LineShift is log2 of the cache line size (64 B).
const LineShift = 6

// LineSize is the cache line size in bytes.
const LineSize = 1 << LineShift

// LineOf returns the line address (low 6 bits cleared) containing a.
func LineOf(a uint64) uint64 { return a &^ (LineSize - 1) }

type way struct {
	tag   uint64 // full line address
	valid bool
	dirty bool
	used  uint64 // LRU timestamp
}

// Stats holds per-cache event counters.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64 // dirty evictions
}

// Cache is one set-associative write-back cache level. The probe path is
// map-free: a line's set is a direct index into the flattened lines array
// and the tag match is a linear scan over the set's ways (ways <= 16, so
// the scan stays within one or two cache lines of host memory and beats a
// hash probe). Probes never allocate.
type Cache struct {
	Name string
	// Stats accumulates hit/miss/eviction counts.
	Stats Stats

	sets     int
	ways     int
	setMask  uint64
	lines    []way // sets*ways, row-major by set
	tick     uint64
	occupied int // valid lines, maintained by Insert/Invalidate
}

// New builds a cache of sizeBytes capacity and the given associativity.
// sizeBytes must be a multiple of ways*LineSize and the set count must be a
// power of two; New panics otherwise (configuration error).
func New(name string, sizeBytes, ways int) *Cache {
	if ways <= 0 || sizeBytes%(ways*LineSize) != 0 {
		panic(fmt.Sprintf("cache %s: bad geometry size=%d ways=%d", name, sizeBytes, ways))
	}
	sets := sizeBytes / (ways * LineSize)
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache %s: set count %d not a power of two", name, sets))
	}
	return &Cache{
		Name:    name,
		sets:    sets,
		ways:    ways,
		setMask: uint64(sets - 1),
		lines:   make([]way, sets*ways),
	}
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

func (c *Cache) setOf(line uint64) int {
	return int((line >> LineShift) & c.setMask)
}

// sameSet reports whether two line addresses index the same set (used by
// the sharded-run back-invalidation conflict check: an invalidation frees
// a way, which changes victim selection for later inserts in that set).
//
//vbi:hotpath
func (c *Cache) sameSet(a, b uint64) bool { return c.setOf(a) == c.setOf(b) }

// probe returns the index of the line's way within the flattened array, or
// -1. It is the one tag-match loop every probe shares and never allocates.
//
//vbi:hotpath
func (c *Cache) probe(line uint64) int {
	base := c.setOf(line) * c.ways
	for i := base; i < base+c.ways; i++ {
		if c.lines[i].valid && c.lines[i].tag == line {
			return i
		}
	}
	return -1
}

// Lookup probes for the line, updating LRU state and (for writes) the dirty
// bit. It reports whether the line was present and does not allocate.
//
//vbi:hotpath
func (c *Cache) Lookup(line uint64, write bool) bool {
	if i := c.probe(line); i >= 0 {
		c.tick++
		c.lines[i].used = c.tick
		if write {
			c.lines[i].dirty = true
		}
		c.Stats.Hits++
		return true
	}
	c.Stats.Misses++
	return false
}

// MarkDirty updates LRU state and sets the dirty bit exactly like a write
// hit — same tick advance, same used stamp — but never touches Stats. It
// reports whether the line was present. The hierarchy uses it for internal
// bookkeeping probes (recording dirty state at the LLC on write fills and
// writeback spills) that are not demand accesses and must not inflate the
// demand hit/miss counters.
//
//vbi:hotpath
func (c *Cache) MarkDirty(line uint64) bool {
	if i := c.probe(line); i >= 0 {
		c.tick++
		c.lines[i].used = c.tick
		c.lines[i].dirty = true
		return true
	}
	return false
}

// Contains probes without perturbing LRU or statistics (for tests and
// back-invalidation checks).
func (c *Cache) Contains(line uint64) bool {
	return c.probe(line) >= 0
}

// IsDirty reports whether the line is present and dirty, without
// perturbing LRU or statistics.
func (c *Cache) IsDirty(line uint64) bool {
	i := c.probe(line)
	return i >= 0 && c.lines[i].dirty
}

// Victim describes a line evicted by Insert.
type Victim struct {
	Line  uint64
	Dirty bool
	Valid bool
}

// Insert fills the line into its set, evicting the LRU way if the set is
// full. The returned victim is Valid when a live line was displaced.
// Insert never allocates.
//
//vbi:hotpath
func (c *Cache) Insert(line uint64, dirty bool) Victim {
	set := c.setOf(line)
	base := set * c.ways
	victimIdx := base
	var oldest uint64 = ^uint64(0)
	for i := base; i < base+c.ways; i++ {
		if c.lines[i].valid && c.lines[i].tag == line {
			// Already present (e.g. racing fill): just merge dirty state.
			c.tick++
			c.lines[i].used = c.tick
			c.lines[i].dirty = c.lines[i].dirty || dirty
			return Victim{}
		}
		if !c.lines[i].valid {
			if oldest != 0 {
				victimIdx = i
				oldest = 0
			}
			continue
		}
		if c.lines[i].used < oldest {
			oldest = c.lines[i].used
			victimIdx = i
		}
	}
	var v Victim
	w := &c.lines[victimIdx]
	if w.valid {
		v = Victim{Line: w.tag, Dirty: w.dirty, Valid: true}
		c.occupied--
		c.Stats.Evictions++
		if w.dirty {
			c.Stats.Writebacks++
		}
	}
	c.tick++
	*w = way{tag: line, valid: true, dirty: dirty, used: c.tick}
	c.occupied++
	return v
}

// Invalidate drops the line if present, returning whether it was dirty.
func (c *Cache) Invalidate(line uint64) (wasPresent, wasDirty bool) {
	i := c.probe(line)
	if i < 0 {
		return false, false
	}
	wasDirty = c.lines[i].dirty
	c.lines[i] = way{}
	c.occupied--
	return true, wasDirty
}

// InvalidateAll empties the cache in place: the flat array is cleared
// without reallocating, so repeated invalidate/refill cycles are
// allocation-free. The LRU clock keeps running (monotonic ticks are what
// make eviction order reproducible).
func (c *Cache) InvalidateAll() {
	for i := range c.lines {
		c.lines[i] = way{}
	}
	c.occupied = 0
}

// InvalidateIf drops every line for which pred returns true (used for the
// lazy cache cleanup after disable_vb, §4.2.4) and returns the count.
// This is the cold path: it collects and sorts the live line addresses
// before calling pred or mutating, because an array-order walk would visit
// lines in (set, way) placement order — a function of eviction history —
// and the invalidation sequence (and a stateful pred's view) must depend
// only on cache contents.
func (c *Cache) InvalidateIf(pred func(line uint64) bool) int {
	lines := make([]uint64, 0, c.occupied)
	for i := range c.lines {
		if c.lines[i].valid {
			lines = append(lines, c.lines[i].tag)
		}
	}
	slices.Sort(lines)
	doomed := 0
	for _, line := range lines {
		if pred(line) {
			c.Invalidate(line)
			doomed++
		}
	}
	return doomed
}

// OccupiedLines returns the number of valid lines (for tests).
func (c *Cache) OccupiedLines() int { return c.occupied }
