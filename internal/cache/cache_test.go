package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCacheGeometry(t *testing.T) {
	c := New("L1", 32<<10, 8)
	if c.Sets() != 64 || c.Ways() != 8 {
		t.Fatalf("geometry = %dx%d, want 64x8", c.Sets(), c.Ways())
	}
}

func TestCacheBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New("bad", 100, 3)
}

func TestCacheHitMiss(t *testing.T) {
	c := New("c", 4<<10, 4) // 16 sets
	line := uint64(0x1000)
	if c.Lookup(line, false) {
		t.Fatal("hit on empty cache")
	}
	c.Insert(line, false)
	if !c.Lookup(line, false) {
		t.Fatal("miss after insert")
	}
	if c.Stats.Hits != 1 || c.Stats.Misses != 1 {
		t.Fatalf("stats = %+v", c.Stats)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := New("c", 2*LineSize, 2) // 1 set, 2 ways
	a, b, d := uint64(0), uint64(64), uint64(128)
	c.Insert(a, false)
	c.Insert(b, false)
	c.Lookup(a, false) // a is now MRU
	v := c.Insert(d, false)
	if !v.Valid || v.Line != b {
		t.Fatalf("victim = %+v, want line %d", v, b)
	}
	if !c.Contains(a) || !c.Contains(d) || c.Contains(b) {
		t.Fatal("wrong resident set after eviction")
	}
}

func TestCacheDirtyEviction(t *testing.T) {
	c := New("c", LineSize, 1) // 1 line total
	c.Insert(0, false)
	c.Lookup(0, true) // dirty it
	v := c.Insert(64, false)
	if !v.Valid || !v.Dirty || v.Line != 0 {
		t.Fatalf("victim = %+v, want dirty line 0", v)
	}
	if c.Stats.Writebacks != 1 {
		t.Fatalf("writebacks = %d", c.Stats.Writebacks)
	}
}

func TestCacheInsertMergesDirty(t *testing.T) {
	c := New("c", 4<<10, 4)
	c.Insert(0, true)
	c.Insert(0, false) // must not clear dirty
	if !c.IsDirty(0) {
		t.Fatal("dirty bit lost by duplicate insert")
	}
	if c.OccupiedLines() != 1 {
		t.Fatalf("occupied = %d", c.OccupiedLines())
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := New("c", 4<<10, 4)
	c.Insert(0, true)
	present, dirty := c.Invalidate(0)
	if !present || !dirty {
		t.Fatalf("Invalidate = %v,%v", present, dirty)
	}
	if present, _ := c.Invalidate(0); present {
		t.Fatal("double invalidate reported presence")
	}
}

func TestCacheInvalidateIf(t *testing.T) {
	c := New("c", 4<<10, 4)
	for i := uint64(0); i < 16; i++ {
		c.Insert(i*64, false)
	}
	n := c.InvalidateIf(func(line uint64) bool { return line < 8*64 })
	if n != 8 {
		t.Fatalf("invalidated %d, want 8", n)
	}
	if c.OccupiedLines() != 8 {
		t.Fatalf("occupied = %d, want 8", c.OccupiedLines())
	}
}

// TestCacheNoDuplicateTags is a property test: after any access sequence a
// line address appears at most once in the cache.
func TestCacheNoDuplicateTags(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New("c", 2<<10, 2)
		lines := map[uint64]bool{}
		for i := 0; i < 500; i++ {
			line := uint64(rng.Intn(64)) * 64
			if rng.Intn(2) == 0 {
				c.Lookup(line, rng.Intn(2) == 0)
			} else {
				if v := c.Insert(line, false); v.Valid {
					delete(lines, v.Line)
				}
				lines[line] = true
			}
		}
		return c.OccupiedLines() <= c.Sets()*c.Ways() && len(lines) >= c.OccupiedLines()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCacheCapacityBound(t *testing.T) {
	c := New("c", 8<<10, 8)
	for i := uint64(0); i < 10000; i++ {
		c.Insert(i*64, i%2 == 0)
	}
	if c.OccupiedLines() > c.Sets()*c.Ways() {
		t.Fatalf("occupied %d exceeds capacity %d", c.OccupiedLines(), c.Sets()*c.Ways())
	}
}

func TestCacheMarkDirty(t *testing.T) {
	c := New("L1", 1<<10, 8)
	if c.MarkDirty(0x40) {
		t.Fatal("MarkDirty hit on an empty cache")
	}
	if c.Stats.Hits != 0 || c.Stats.Misses != 0 {
		t.Fatalf("MarkDirty touched stats: %+v", c.Stats)
	}
	c.Insert(0x40, false)
	if c.IsDirty(0x40) {
		t.Fatal("clean insert came out dirty")
	}
	if !c.MarkDirty(0x40) {
		t.Fatal("MarkDirty missed a present line")
	}
	if !c.IsDirty(0x40) {
		t.Fatal("MarkDirty did not set the dirty bit")
	}
	if c.Stats.Hits != 0 || c.Stats.Misses != 0 {
		t.Fatalf("MarkDirty touched stats: %+v", c.Stats)
	}
	// MarkDirty refreshes recency exactly like a write hit: in a one-set
	// cache, fill all 8 ways, re-touch line 0 via MarkDirty, then overflow
	// the set. Line 0 must survive (line at 1*64 is now the LRU victim).
	c2 := New("L2", 512, 8)
	for i := uint64(0); i < 8; i++ {
		c2.Insert(i*64, false)
	}
	c2.MarkDirty(0)
	c2.Insert(8*64, false)
	if !c2.Contains(0) {
		t.Fatal("MarkDirty did not refresh recency: line 0 was evicted")
	}
	if c2.Contains(1 * 64) {
		t.Fatal("wrong victim: expected line 0x40 (the LRU) to be evicted")
	}
}

// Repeated InvalidateAll/refill cycles must not allocate: InvalidateAll
// clears the flat line array in place and Insert recycles it.
func TestCacheInvalidateRefillNoAllocs(t *testing.T) {
	c := New("L1", 1<<12, 8)
	for i := uint64(0); i < 64; i++ {
		c.Insert(i*64, i%2 == 0)
	}
	allocs := testing.AllocsPerRun(100, func() {
		c.InvalidateAll()
		for i := uint64(0); i < 64; i++ {
			c.Insert(i*64, i%2 == 0)
		}
	})
	if allocs != 0 {
		t.Fatalf("invalidate/refill cycle allocates %v times", allocs)
	}
}
