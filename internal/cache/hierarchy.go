package cache

import "vbi/internal/lockstep"

// Latencies holds the cumulative hit latencies of the hierarchy (cycles).
// Table 1: L1 4 cycles, L2 8 cycles, L3 31 cycles; we interpret each as the
// additional lookup latency of that level along the miss path.
type Latencies struct {
	L1  uint64 // L1 hit latency
	L2  uint64 // additional L2 lookup latency
	LLC uint64 // additional LLC lookup latency
}

// DefaultLatencies mirrors Table 1.
var DefaultLatencies = Latencies{L1: 4, L2: 8, LLC: 31}

// L1Hit returns the total latency of an L1 hit.
func (l Latencies) L1Hit() uint64 { return l.L1 }

// L2Hit returns the total latency of an L2 hit.
func (l Latencies) L2Hit() uint64 { return l.L1 + l.L2 }

// LLCHit returns the total latency of an LLC hit.
func (l Latencies) LLCHit() uint64 { return l.L1 + l.L2 + l.LLC }

// AccessResult describes one access walked through the hierarchy.
type AccessResult struct {
	// Latency is the on-chip portion of the access latency in cycles (the
	// caller adds memory latency when MissedLLC is set).
	Latency uint64
	// MissedLLC is set when the access needs data from main memory.
	MissedLLC bool
	// HitLevel is 1, 2 or 3 for cache hits, 0 for misses to memory.
	HitLevel int
	// Writebacks lists dirty lines pushed out of the LLC to memory by the
	// fills this access performed. The slice aliases the hierarchy's
	// per-core scratch buffer: it is valid until the next
	// Access/Fill/WalkerAccess call on this core's view and must be
	// consumed (drained to memory) before then.
	Writebacks []uint64
}

// Hierarchy glues per-core L1/L2 caches to a (possibly shared) LLC. Fills
// are mostly-inclusive: a fill inserts at every level. LLC evictions
// back-invalidate the upper levels so that a dirty line is written back to
// memory exactly once, which the VBI delayed-allocation mechanism (§5.1)
// relies on to trigger physical allocation.
type Hierarchy struct {
	L1  *Cache
	L2  *Cache
	LLC *Cache
	Lat Latencies

	// upper holds every L1/L2 that may hold lines of this LLC (all cores'
	// private caches in a multi-core system) for back-invalidation. It is
	// shared by pointer across the per-core Hierarchy views.
	upper *upperSet

	// wb is this core's reusable writeback scratch: every
	// Access/Fill/WalkerAccess call resets it to length zero and appends
	// the dirty LLC victims its fills displace, so the per-reference loop
	// performs no slice allocations in steady state. Each per-core view
	// owns its own scratch (views are single-threaded; multicore runs
	// interleave step-by-step — or, under lockstep sharding, concurrently
	// with shared-structure access serialized by the turnstile).
	wb []uint64

	// ls, when non-nil, is this core's lockstep handle for sharded
	// multi-core execution: LLC/shared paths acquire the serial-order
	// turn through it, and private L1/L2 operations performed without the
	// turn are locked and logged for back-invalidation conflict checks.
	ls *lockstep.Handle
}

type upperSet struct {
	caches []*Cache
	// owners aligns lockstep handles with caches (nil entries when the
	// machine runs serially or the cache's core has no handle).
	owners []*lockstep.Handle
}

// wbScratchCap seeds the scratch capacity. A single access can displace at
// most a handful of dirty lines (one per fill performed); the buffer grows
// once at first use if a pathological chain exceeds it and then sticks.
const wbScratchCap = 8

// NewHierarchy builds a single-core hierarchy with its own LLC slice.
func NewHierarchy(l1, l2, llc *Cache, lat Latencies) *Hierarchy {
	return &Hierarchy{L1: l1, L2: l2, LLC: llc, Lat: lat,
		upper: &upperSet{caches: []*Cache{l1, l2}, owners: make([]*lockstep.Handle, 2)},
		wb:    make([]uint64, 0, wbScratchCap)}
}

// ShareLLC registers another core's private caches with this hierarchy's
// LLC for back-invalidation, and returns a Hierarchy view for that core
// (with its own writeback scratch).
func (h *Hierarchy) ShareLLC(l1, l2 *Cache) *Hierarchy {
	h.upper.caches = append(h.upper.caches, l1, l2)
	h.upper.owners = append(h.upper.owners, nil, nil)
	return &Hierarchy{L1: l1, L2: l2, LLC: h.LLC, Lat: h.Lat, upper: h.upper,
		wb: make([]uint64, 0, wbScratchCap)}
}

// SetLockstep attaches a lockstep handle to this core's view for a sharded
// run (nil detaches). The handle is registered against the view's own
// L1/L2 in the shared upper set so the turn holder's back-invalidations
// know which peer lock and log to consult.
func (h *Hierarchy) SetLockstep(ls *lockstep.Handle) {
	h.ls = ls
	for i, c := range h.upper.caches {
		if c == h.L1 || c == h.L2 {
			h.upper.owners[i] = ls
		}
	}
}

// Access performs a demand load or store of the line through the hierarchy.
// On an LLC miss the caller is responsible for the memory access and must
// then call Fill to install the line.
//
//vbi:hotpath
func (h *Hierarchy) Access(line uint64, write bool) AccessResult {
	line = LineOf(line)
	if h.privLookup(h.L1, line, write) {
		return AccessResult{Latency: h.Lat.L1Hit(), HitLevel: 1}
	}
	if h.privLookup(h.L2, line, write) {
		res := AccessResult{Latency: h.Lat.L2Hit(), HitLevel: 2}
		res.Writebacks = h.fillL1(line, write, h.wb[:0])
		h.wb = res.Writebacks[:0]
		return res
	}
	// From here the access touches the shared LLC: take the serial-order
	// turn (held until the driver ends the step).
	h.ls.Enter()
	if h.LLC.Lookup(line, write) {
		res := AccessResult{Latency: h.Lat.LLCHit(), HitLevel: 3}
		res.Writebacks = h.fillUpper(line, write, h.wb[:0])
		h.wb = res.Writebacks[:0]
		return res
	}
	return AccessResult{Latency: h.Lat.LLCHit(), MissedLLC: true}
}

// Fill installs a line fetched from memory into all levels and returns any
// dirty LLC writebacks caused by the fills. The returned slice aliases the
// per-core scratch buffer (see AccessResult.Writebacks).
//
//vbi:hotpath
func (h *Hierarchy) Fill(line uint64, write bool) []uint64 {
	line = LineOf(line)
	h.ls.Enter()
	wbs := h.wb[:0]
	if v := h.LLC.Insert(line, false); v.Valid {
		wbs = h.evictFromLLC(v, wbs)
	}
	if write {
		h.LLC.MarkDirty(line) // record dirty state at the LLC too
	}
	wbs = h.fillUpper(line, write, wbs)
	h.wb = wbs[:0]
	return wbs
}

// WalkerAccess performs a page-table-walker access: it probes L2 and LLC
// (walker accesses do not consult or pollute the L1 data cache) and
// allocates the line on a miss. The boolean result reports whether main
// memory must be accessed. The writebacks slice aliases the per-core
// scratch buffer (see AccessResult.Writebacks).
//
//vbi:hotpath
func (h *Hierarchy) WalkerAccess(line uint64) (latency uint64, missed bool, writebacks []uint64) {
	line = LineOf(line)
	if h.privLookup(h.L2, line, false) {
		return h.Lat.L2Hit(), false, nil
	}
	h.ls.Enter()
	if h.LLC.Lookup(line, false) {
		return h.Lat.LLCHit(), false, nil
	}
	// Miss: fill into LLC and L2.
	wbs := h.wb[:0]
	if v := h.LLC.Insert(line, false); v.Valid {
		wbs = h.evictFromLLC(v, wbs)
	}
	if v := h.L2.Insert(line, false); v.Valid && v.Dirty {
		if inner := h.LLC.Insert(v.Line, true); inner.Valid {
			wbs = h.evictFromLLC(inner, wbs)
		}
	}
	h.wb = wbs[:0]
	return h.Lat.LLCHit(), true, wbs
}

// fillL1 inserts into L1 only (after an L2 hit), cascading dirty evictions.
//
//vbi:hotpath
func (h *Hierarchy) fillL1(line uint64, write bool, wbs []uint64) []uint64 {
	if v := h.privInsert(h.L1, line, write); v.Valid && v.Dirty {
		// Dirty L1 victim merges into L2; L2 should contain it
		// (mostly-inclusive), but insert if not.
		if !h.privLookup(h.L2, v.Line, true) {
			if iv := h.privInsert(h.L2, v.Line, true); iv.Valid && iv.Dirty {
				wbs = h.spillToLLC(iv.Line, wbs)
			}
		}
	}
	return wbs
}

// fillUpper inserts into both private levels (after LLC hit or fill).
//
//vbi:hotpath
func (h *Hierarchy) fillUpper(line uint64, write bool, wbs []uint64) []uint64 {
	if v := h.privInsert(h.L2, line, false); v.Valid && v.Dirty {
		wbs = h.spillToLLC(v.Line, wbs)
	}
	return h.fillL1(line, write, wbs)
}

// spillToLLC merges a dirty private-level victim into the LLC. The present
// case is internal bookkeeping, not a demand access: MarkDirty keeps the
// LRU and dirty state exactly as a write hit would but leaves the demand
// hit/miss counters alone.
//
//vbi:hotpath
func (h *Hierarchy) spillToLLC(line uint64, wbs []uint64) []uint64 {
	h.ls.Enter()
	if h.LLC.MarkDirty(line) {
		return wbs
	}
	if v := h.LLC.Insert(line, true); v.Valid {
		wbs = h.evictFromLLC(v, wbs)
	}
	return wbs
}

// evictFromLLC handles an LLC victim: back-invalidate upper levels (pulling
// in any dirtier copy) and emit a writeback if the line was dirty anywhere.
//
//vbi:hotpath
func (h *Hierarchy) evictFromLLC(v Victim, wbs []uint64) []uint64 {
	dirty := v.Dirty
	for i, c := range h.upper.caches {
		owner := h.upper.owners[i]
		if owner == nil || owner == h.ls {
			if present, wasDirty := c.Invalidate(v.Line); present && wasDirty {
				dirty = true
			}
			continue
		}
		if h.invalidatePeer(c, owner, v.Line) {
			dirty = true
		}
	}
	if dirty {
		//vbi:allow hotalloc append into the per-core scratch buffer: capacity is pre-sized in NewHierarchy/ShareLLC and retained across calls, so steady state never grows it
		wbs = append(wbs, v.Line)
	}
	return wbs
}

// invalidatePeer back-invalidates a line in another core's private cache
// during a sharded run. The caller holds the turn, so this core's step is
// the global minimum of the interleave — but the peer may have free-run
// past this point in its private state. The peer's activity log decides
// whether the race changed anything the serial run would have seen:
//
//   - the peer touched exactly this line at a key after ours: its hit,
//     recency stamp or dirty bit diverged from serial (serial would have
//     invalidated first) — conflict;
//   - the line is still present and the peer did a structural
//     insert/evict in the same set at a key after ours: serial's
//     invalidation would have freed a way before that insert picked its
//     victim — conflict;
//   - the log wrapped past our key's window: can't prove innocence —
//     conflict.
//
// Absent line with no later touch is the common case (bundle members
// reference disjoint lines) and is race-free: serial's invalidation would
// have been a no-op on everything the peer did. On conflict the group
// aborts and the caller re-runs serially on a fresh machine.
//
//vbi:hotpath
func (h *Hierarchy) invalidatePeer(c *Cache, owner *lockstep.Handle, line uint64) bool {
	since := h.ls.Cur()
	owner.Lock()
	present, wasDirty := c.Invalidate(line)
	ring, total, mask := owner.Ring(), owner.Total(), lockstep.RingMask()
	conflict := false
	bounded := false
	for j := total - 1; j >= 0 && total-j <= len(ring); j-- {
		e := ring[j&mask]
		if e.Key <= since {
			bounded = true
			break
		}
		l := e.Line &^ uint64(lockstep.Structural)
		if l == line || (present && e.Line&lockstep.Structural != 0 && c.sameSet(l, line)) {
			conflict = true
			break
		}
	}
	if !conflict && !bounded && total >= len(ring) {
		conflict = true // log wrapped past our window
	}
	owner.Unlock()
	if conflict {
		h.ls.Abort()
	}
	return present && wasDirty
}

// privLookup performs a private L1/L2 lookup. Without the turn it runs
// under the core's lock and logs hits so a later back-invalidation of the
// line can detect the divergence; with the turn (or serially) it is
// lock-free — only the unique turn holder invalidates peers.
//
//vbi:hotpath
func (h *Hierarchy) privLookup(c *Cache, line uint64, write bool) bool {
	ls := h.ls
	if ls == nil || ls.Holding() {
		return c.Lookup(line, write)
	}
	ls.Lock()
	ok := c.Lookup(line, write)
	if ok {
		ls.Log(line, false)
	}
	ls.Unlock()
	return ok
}

// privInsert performs a private L1/L2 insert, logging the inserted line
// and any victim as structural events (they change set membership, which
// back-invalidation victim selection depends on).
//
//vbi:hotpath
func (h *Hierarchy) privInsert(c *Cache, line uint64, dirty bool) Victim {
	ls := h.ls
	if ls == nil || ls.Holding() {
		return c.Insert(line, dirty)
	}
	ls.Lock()
	v := c.Insert(line, dirty)
	ls.Log(line, true)
	if v.Valid {
		ls.Log(v.Line, true)
	}
	ls.Unlock()
	return v
}

// InvalidateIf drops matching lines from every level (lazy VB cleanup,
// §4.2.4). Dirty lines are discarded: disable_vb destroys VB state.
func (h *Hierarchy) InvalidateIf(pred func(line uint64) bool) int {
	n := h.LLC.InvalidateIf(pred)
	for _, c := range h.upper.caches {
		n += c.InvalidateIf(pred)
	}
	return n
}
