package cache

// Latencies holds the cumulative hit latencies of the hierarchy (cycles).
// Table 1: L1 4 cycles, L2 8 cycles, L3 31 cycles; we interpret each as the
// additional lookup latency of that level along the miss path.
type Latencies struct {
	L1  uint64 // L1 hit latency
	L2  uint64 // additional L2 lookup latency
	LLC uint64 // additional LLC lookup latency
}

// DefaultLatencies mirrors Table 1.
var DefaultLatencies = Latencies{L1: 4, L2: 8, LLC: 31}

// L1Hit returns the total latency of an L1 hit.
func (l Latencies) L1Hit() uint64 { return l.L1 }

// L2Hit returns the total latency of an L2 hit.
func (l Latencies) L2Hit() uint64 { return l.L1 + l.L2 }

// LLCHit returns the total latency of an LLC hit.
func (l Latencies) LLCHit() uint64 { return l.L1 + l.L2 + l.LLC }

// AccessResult describes one access walked through the hierarchy.
type AccessResult struct {
	// Latency is the on-chip portion of the access latency in cycles (the
	// caller adds memory latency when MissedLLC is set).
	Latency uint64
	// MissedLLC is set when the access needs data from main memory.
	MissedLLC bool
	// HitLevel is 1, 2 or 3 for cache hits, 0 for misses to memory.
	HitLevel int
	// Writebacks lists dirty lines pushed out of the LLC to memory by the
	// fills this access performed. The slice aliases the hierarchy's
	// per-core scratch buffer: it is valid until the next
	// Access/Fill/WalkerAccess call on this core's view and must be
	// consumed (drained to memory) before then.
	Writebacks []uint64
}

// Hierarchy glues per-core L1/L2 caches to a (possibly shared) LLC. Fills
// are mostly-inclusive: a fill inserts at every level. LLC evictions
// back-invalidate the upper levels so that a dirty line is written back to
// memory exactly once, which the VBI delayed-allocation mechanism (§5.1)
// relies on to trigger physical allocation.
type Hierarchy struct {
	L1  *Cache
	L2  *Cache
	LLC *Cache
	Lat Latencies

	// upper holds every L1/L2 that may hold lines of this LLC (all cores'
	// private caches in a multi-core system) for back-invalidation. It is
	// shared by pointer across the per-core Hierarchy views.
	upper *upperSet

	// wb is this core's reusable writeback scratch: every
	// Access/Fill/WalkerAccess call resets it to length zero and appends
	// the dirty LLC victims its fills displace, so the per-reference loop
	// performs no slice allocations in steady state. Each per-core view
	// owns its own scratch (views are single-threaded; multicore runs
	// interleave step-by-step, never concurrently within a machine).
	wb []uint64
}

type upperSet struct {
	caches []*Cache
}

// wbScratchCap seeds the scratch capacity. A single access can displace at
// most a handful of dirty lines (one per fill performed); the buffer grows
// once at first use if a pathological chain exceeds it and then sticks.
const wbScratchCap = 8

// NewHierarchy builds a single-core hierarchy with its own LLC slice.
func NewHierarchy(l1, l2, llc *Cache, lat Latencies) *Hierarchy {
	return &Hierarchy{L1: l1, L2: l2, LLC: llc, Lat: lat,
		upper: &upperSet{caches: []*Cache{l1, l2}},
		wb:    make([]uint64, 0, wbScratchCap)}
}

// ShareLLC registers another core's private caches with this hierarchy's
// LLC for back-invalidation, and returns a Hierarchy view for that core
// (with its own writeback scratch).
func (h *Hierarchy) ShareLLC(l1, l2 *Cache) *Hierarchy {
	h.upper.caches = append(h.upper.caches, l1, l2)
	return &Hierarchy{L1: l1, L2: l2, LLC: h.LLC, Lat: h.Lat, upper: h.upper,
		wb: make([]uint64, 0, wbScratchCap)}
}

// Access performs a demand load or store of the line through the hierarchy.
// On an LLC miss the caller is responsible for the memory access and must
// then call Fill to install the line.
//
//vbi:hotpath
func (h *Hierarchy) Access(line uint64, write bool) AccessResult {
	line = LineOf(line)
	if h.L1.Lookup(line, write) {
		return AccessResult{Latency: h.Lat.L1Hit(), HitLevel: 1}
	}
	if h.L2.Lookup(line, write) {
		res := AccessResult{Latency: h.Lat.L2Hit(), HitLevel: 2}
		res.Writebacks = h.fillL1(line, write, h.wb[:0])
		h.wb = res.Writebacks[:0]
		return res
	}
	if h.LLC.Lookup(line, write) {
		res := AccessResult{Latency: h.Lat.LLCHit(), HitLevel: 3}
		res.Writebacks = h.fillUpper(line, write, h.wb[:0])
		h.wb = res.Writebacks[:0]
		return res
	}
	return AccessResult{Latency: h.Lat.LLCHit(), MissedLLC: true}
}

// Fill installs a line fetched from memory into all levels and returns any
// dirty LLC writebacks caused by the fills. The returned slice aliases the
// per-core scratch buffer (see AccessResult.Writebacks).
//
//vbi:hotpath
func (h *Hierarchy) Fill(line uint64, write bool) []uint64 {
	line = LineOf(line)
	wbs := h.wb[:0]
	if v := h.LLC.Insert(line, false); v.Valid {
		wbs = h.evictFromLLC(v, wbs)
	}
	if write {
		h.LLC.MarkDirty(line) // record dirty state at the LLC too
	}
	wbs = h.fillUpper(line, write, wbs)
	h.wb = wbs[:0]
	return wbs
}

// WalkerAccess performs a page-table-walker access: it probes L2 and LLC
// (walker accesses do not consult or pollute the L1 data cache) and
// allocates the line on a miss. The boolean result reports whether main
// memory must be accessed. The writebacks slice aliases the per-core
// scratch buffer (see AccessResult.Writebacks).
//
//vbi:hotpath
func (h *Hierarchy) WalkerAccess(line uint64) (latency uint64, missed bool, writebacks []uint64) {
	line = LineOf(line)
	if h.L2.Lookup(line, false) {
		return h.Lat.L2Hit(), false, nil
	}
	if h.LLC.Lookup(line, false) {
		return h.Lat.LLCHit(), false, nil
	}
	// Miss: fill into LLC and L2.
	wbs := h.wb[:0]
	if v := h.LLC.Insert(line, false); v.Valid {
		wbs = h.evictFromLLC(v, wbs)
	}
	if v := h.L2.Insert(line, false); v.Valid && v.Dirty {
		if inner := h.LLC.Insert(v.Line, true); inner.Valid {
			wbs = h.evictFromLLC(inner, wbs)
		}
	}
	h.wb = wbs[:0]
	return h.Lat.LLCHit(), true, wbs
}

// fillL1 inserts into L1 only (after an L2 hit), cascading dirty evictions.
//
//vbi:hotpath
func (h *Hierarchy) fillL1(line uint64, write bool, wbs []uint64) []uint64 {
	if v := h.L1.Insert(line, write); v.Valid && v.Dirty {
		// Dirty L1 victim merges into L2; L2 should contain it
		// (mostly-inclusive), but insert if not.
		if !h.L2.Lookup(v.Line, true) {
			if iv := h.L2.Insert(v.Line, true); iv.Valid && iv.Dirty {
				wbs = h.spillToLLC(iv.Line, wbs)
			}
		}
	}
	return wbs
}

// fillUpper inserts into both private levels (after LLC hit or fill).
//
//vbi:hotpath
func (h *Hierarchy) fillUpper(line uint64, write bool, wbs []uint64) []uint64 {
	if v := h.L2.Insert(line, false); v.Valid && v.Dirty {
		wbs = h.spillToLLC(v.Line, wbs)
	}
	return h.fillL1(line, write, wbs)
}

// spillToLLC merges a dirty private-level victim into the LLC. The present
// case is internal bookkeeping, not a demand access: MarkDirty keeps the
// LRU and dirty state exactly as a write hit would but leaves the demand
// hit/miss counters alone.
//
//vbi:hotpath
func (h *Hierarchy) spillToLLC(line uint64, wbs []uint64) []uint64 {
	if h.LLC.MarkDirty(line) {
		return wbs
	}
	if v := h.LLC.Insert(line, true); v.Valid {
		wbs = h.evictFromLLC(v, wbs)
	}
	return wbs
}

// evictFromLLC handles an LLC victim: back-invalidate upper levels (pulling
// in any dirtier copy) and emit a writeback if the line was dirty anywhere.
//
//vbi:hotpath
func (h *Hierarchy) evictFromLLC(v Victim, wbs []uint64) []uint64 {
	dirty := v.Dirty
	for _, c := range h.upper.caches {
		if present, wasDirty := c.Invalidate(v.Line); present && wasDirty {
			dirty = true
		}
	}
	if dirty {
		//vbi:allow hotalloc append into the per-core scratch buffer: capacity is pre-sized in NewHierarchy/ShareLLC and retained across calls, so steady state never grows it
		wbs = append(wbs, v.Line)
	}
	return wbs
}

// InvalidateIf drops matching lines from every level (lazy VB cleanup,
// §4.2.4). Dirty lines are discarded: disable_vb destroys VB state.
func (h *Hierarchy) InvalidateIf(pred func(line uint64) bool) int {
	n := h.LLC.InvalidateIf(pred)
	for _, c := range h.upper.caches {
		n += c.InvalidateIf(pred)
	}
	return n
}
