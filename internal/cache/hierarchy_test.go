package cache

import "testing"

func newTestHierarchy() *Hierarchy {
	l1 := New("L1", 1<<10, 8) // 2 sets
	l2 := New("L2", 4<<10, 8) // 8 sets
	llc := New("LLC", 16<<10, 16)
	return NewHierarchy(l1, l2, llc, DefaultLatencies)
}

func TestHierarchyMissThenHit(t *testing.T) {
	h := newTestHierarchy()
	r := h.Access(0x1000, false)
	if !r.MissedLLC || r.HitLevel != 0 {
		t.Fatalf("first access = %+v, want LLC miss", r)
	}
	h.Fill(0x1000, false)
	r = h.Access(0x1000, false)
	if r.MissedLLC || r.HitLevel != 1 || r.Latency != 4 {
		t.Fatalf("after fill = %+v, want L1 hit at 4cy", r)
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := newTestHierarchy()
	h.Fill(0x40, false)
	if r := h.Access(0x40, false); r.Latency != h.Lat.L1Hit() {
		t.Fatalf("L1 hit latency = %d", r.Latency)
	}
	// Evict from L1 only: L1 is 1 KB (16 lines); fill 16 conflicting lines.
	h2 := newTestHierarchy()
	h2.Fill(0, false)
	for i := uint64(1); i <= 15; i++ {
		h2.Fill(i*1024, false) // all map to L1/L2/LLC set 0; 16 lines fit the 16-way LLC set
	}
	// line 0 may or may not be in L1 now; look for a level-2 or 3 hit at
	// the right latency.
	r := h2.Access(0, false)
	if r.MissedLLC {
		t.Fatalf("line 0 fell out of LLC unexpectedly: %+v", r)
	}
	switch r.HitLevel {
	case 1:
		if r.Latency != h2.Lat.L1Hit() {
			t.Fatalf("bad L1 latency %d", r.Latency)
		}
	case 2:
		if r.Latency != h2.Lat.L2Hit() {
			t.Fatalf("bad L2 latency %d", r.Latency)
		}
	case 3:
		if r.Latency != h2.Lat.LLCHit() {
			t.Fatalf("bad LLC latency %d", r.Latency)
		}
	}
}

func TestHierarchyDirtyWritebackOnLLCEviction(t *testing.T) {
	// Tiny LLC so we can force evictions: 2 lines, direct-ish.
	l1 := New("L1", 1<<10, 8)
	l2 := New("L2", 1<<10, 8)
	llc := New("LLC", 2*LineSize, 2) // 1 set, 2 ways
	h := NewHierarchy(l1, l2, llc, DefaultLatencies)

	h.Fill(0, true) // dirty line 0
	h.Fill(64, false)
	wbs := h.Fill(128, false) // evicts LRU = line 0 (dirty)
	found := false
	for _, wb := range wbs {
		if wb == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected writeback of line 0, got %v", wbs)
	}
	// Back-invalidation: line 0 must be gone from L1/L2 too.
	if l1.Contains(0) || l2.Contains(0) {
		t.Fatal("LLC eviction did not back-invalidate upper levels")
	}
}

func TestHierarchyDirtyInL1OnlyStillWrittenBack(t *testing.T) {
	// A line dirty only in L1 must still produce a writeback when the LLC
	// drops it (the LLC copy is clean but back-invalidation finds dirt).
	l1 := New("L1", 1<<10, 8)
	l2 := New("L2", 1<<10, 8)
	llc := New("LLC", 2*LineSize, 2)
	h := NewHierarchy(l1, l2, llc, DefaultLatencies)

	h.Fill(0, false)
	h.Access(0, true) // L1 hit, dirties only L1
	h.Fill(64, false)
	wbs := h.Fill(128, false)
	found := false
	for _, wb := range wbs {
		if wb == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("dirty-in-L1 line not written back: %v", wbs)
	}
}

func TestHierarchyWalkerAccess(t *testing.T) {
	h := newTestHierarchy()
	lat, missed, _ := h.WalkerAccess(0x2000)
	if !missed {
		t.Fatal("first walker access should miss")
	}
	if lat != h.Lat.LLCHit() {
		t.Fatalf("walker miss on-chip latency = %d", lat)
	}
	lat, missed, _ = h.WalkerAccess(0x2000)
	if missed || lat != h.Lat.L2Hit() {
		t.Fatalf("second walker access = %d,%v want L2 hit", lat, missed)
	}
	// Walker fills must not pollute L1.
	if h.L1.Contains(0x2000) {
		t.Fatal("walker access polluted L1")
	}
}

func TestHierarchyInvalidateIf(t *testing.T) {
	h := newTestHierarchy()
	for i := uint64(0); i < 8; i++ {
		h.Fill(i*64, true)
	}
	n := h.InvalidateIf(func(line uint64) bool { return line < 4*64 })
	if n == 0 {
		t.Fatal("nothing invalidated")
	}
	r := h.Access(0, false)
	if !r.MissedLLC {
		t.Fatal("invalidated line still resident")
	}
}

func TestHierarchySharedLLC(t *testing.T) {
	l1a := New("L1a", 1<<10, 8)
	l2a := New("L2a", 4<<10, 8)
	llc := New("LLC", 16<<10, 16)
	ha := NewHierarchy(l1a, l2a, llc, DefaultLatencies)
	l1b := New("L1b", 1<<10, 8)
	l2b := New("L2b", 4<<10, 8)
	hb := ha.ShareLLC(l1b, l2b)

	ha.Fill(0x3000, false)
	// Core B misses its private caches but hits the shared LLC.
	r := hb.Access(0x3000, false)
	if r.MissedLLC || r.HitLevel != 3 {
		t.Fatalf("core B access = %+v, want LLC hit", r)
	}
}

// A cold write fill must not perturb LLC demand statistics: Fill and
// spillToLLC use the non-stat MarkDirty probe for their internal dirty-bit
// bookkeeping, so Stats.Hits/Misses count only demand accesses. (The old
// Lookup(line, true) bookkeeping probe inflated LLC hits on every fill of
// a line the LLC already held, and misses on every cold fill.)
func TestFillColdWriteNoLLCDemandHits(t *testing.T) {
	h := newTestHierarchy()
	r := h.Access(0x2000, true)
	if !r.MissedLLC {
		t.Fatalf("cold access = %+v, want LLC miss", r)
	}
	hits, misses := h.LLC.Stats.Hits, h.LLC.Stats.Misses
	h.Fill(0x2000, true)
	if h.LLC.Stats.Hits != hits {
		t.Fatalf("cold write fill added %d LLC demand hits", h.LLC.Stats.Hits-hits)
	}
	if h.LLC.Stats.Misses != misses {
		t.Fatalf("cold write fill added %d LLC demand misses", h.LLC.Stats.Misses-misses)
	}
	// Re-filling a line the LLC still holds (an L1/L2 refill after an LLC
	// hit) must not count either.
	h.Fill(0x2000, true)
	if h.LLC.Stats.Hits != hits || h.LLC.Stats.Misses != misses {
		t.Fatalf("warm fill changed LLC demand stats: %+v", h.LLC.Stats)
	}
	// A genuine demand access still counts.
	if r := h.Access(0x2000, false); r.MissedLLC {
		t.Fatalf("line lost after fills: %+v", r)
	}
	if h.LLC.Stats.Hits != hits && h.LLC.Stats.Hits == hits+1 {
		t.Fatalf("demand hit not counted")
	}
}
