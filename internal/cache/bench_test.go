package cache

import "testing"

func BenchmarkCacheHit(b *testing.B) {
	c := New("L1", 32<<10, 8)
	c.Insert(0, false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Lookup(0, false)
	}
}

func BenchmarkHierarchyL1Hit(b *testing.B) {
	h := NewHierarchy(New("L1", 32<<10, 8), New("L2", 256<<10, 8), New("LLC", 8<<20, 16), DefaultLatencies)
	h.Fill(0, false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Access(0, false)
	}
}

func BenchmarkHierarchyMissFill(b *testing.B) {
	h := NewHierarchy(New("L1", 32<<10, 8), New("L2", 256<<10, 8), New("LLC", 8<<20, 16), DefaultLatencies)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		line := uint64(i) * 64
		h.Access(line, false)
		h.Fill(line, false)
	}
}

func BenchmarkCacheInsertEvict(b *testing.B) {
	c := New("L1", 32<<10, 8)
	// Working set twice the capacity: every insert past warm-up evicts.
	lines := 2 * (32 << 10 / 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Insert(uint64(i%lines)*64, i%2 == 0)
	}
}

func BenchmarkCacheMarkDirty(b *testing.B) {
	c := New("L1", 32<<10, 8)
	c.Insert(0, false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.MarkDirty(0)
	}
}
