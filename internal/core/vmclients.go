package core

import "fmt"

// This file implements the client-ID half of §6.1: just as the VBI address
// space is partitioned among virtual machines by pinning the top VBID bits
// (addr.VMPartition), the 16-bit client-ID space is partitioned so each
// guest OS assigns client IDs to its processes without coordinating with
// the host.

// VMClientBits is the number of client-ID bits naming the virtual machine
// (matching addr.VMIDBits: 31 VMs plus the host).
const VMClientBits = 5

// MaxVMClients is the number of client IDs available to each VM.
const MaxVMClients = MaxClients >> VMClientBits

// VMClientPartition carves the client-ID space per virtual machine.
type VMClientPartition struct{}

// Range returns the inclusive client-ID range owned by vm (vm 0 is the
// host).
func (VMClientPartition) Range(vm uint32) (lo, hi ClientID, err error) {
	if vm >= 1<<VMClientBits {
		return 0, 0, fmt.Errorf("vbi: VM %d out of range", vm)
	}
	lo = ClientID(vm) << (16 - VMClientBits)
	return lo, lo + MaxVMClients - 1, nil
}

// ClientFor returns the idx-th client ID of vm.
func (p VMClientPartition) ClientFor(vm uint32, idx int) (ClientID, error) {
	lo, hi, err := p.Range(vm)
	if err != nil {
		return 0, err
	}
	if idx < 0 || ClientID(idx) > hi-lo {
		return 0, fmt.Errorf("vbi: client index %d overflows VM %d", idx, vm)
	}
	return lo + ClientID(idx), nil
}

// VMOf returns the virtual machine that owns the client ID.
func (VMClientPartition) VMOf(c ClientID) uint32 {
	return uint32(c >> (16 - VMClientBits))
}
