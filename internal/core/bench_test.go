package core

import (
	"testing"

	"vbi/internal/addr"
	"vbi/internal/mtl"
)

func BenchmarkCVTAccess(b *testing.B) {
	m := mtl.NewSimple(mtl.Config{}, 64<<20)
	s := NewSystem(m)
	s.RegisterClient(1)
	c := NewCore(s)
	c.SwitchClient(1)
	u := addr.MakeVBUID(addr.Size4MB, 1)
	s.EnableVB(u, 0)
	idx, _ := s.Attach(1, u, PermRW)
	v := VAddr{Index: idx, Offset: 64}
	c.Access(v, PermR)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Access(v, PermR); err != nil {
			b.Fatal(err)
		}
	}
}
