package core

import (
	"bytes"
	"errors"
	"testing"

	"vbi/internal/addr"
	"vbi/internal/mtl"
	"vbi/internal/phys"
)

func newTestSystem(t *testing.T) (*System, *Core) {
	t.Helper()
	m := mtl.NewSimple(mtl.Config{DelayedAlloc: true}, 64<<20)
	s := NewSystem(m)
	s.RegisterClient(1)
	c := NewCore(s)
	c.SwitchClient(1)
	return s, c
}

func enableVB(t *testing.T, s *System, class addr.SizeClass, vbid uint64) addr.VBUID {
	t.Helper()
	u := addr.MakeVBUID(class, vbid)
	if err := s.EnableVB(u, 0); err != nil {
		t.Fatal(err)
	}
	return u
}

func TestAttachDetachRefCount(t *testing.T) {
	s, _ := newTestSystem(t)
	u := enableVB(t, s, addr.Size128KB, 1)
	idx, err := s.Attach(1, u, PermRW)
	if err != nil {
		t.Fatal(err)
	}
	if s.MTL.RefCount(u) != 1 {
		t.Fatalf("refcount = %d", s.MTL.RefCount(u))
	}
	s.RegisterClient(2)
	if _, err := s.Attach(2, u, PermR); err != nil {
		t.Fatal(err)
	}
	if s.MTL.RefCount(u) != 2 {
		t.Fatalf("refcount = %d", s.MTL.RefCount(u))
	}
	if n, err := s.Detach(1, u); err != nil || n != 1 {
		t.Fatalf("detach = %d, %v", n, err)
	}
	if n, err := s.Detach(2, u); err != nil || n != 0 {
		t.Fatalf("detach = %d, %v", n, err)
	}
	_ = idx
}

func TestAttachReusesInvalidSlots(t *testing.T) {
	s, _ := newTestSystem(t)
	u1 := enableVB(t, s, addr.Size4KB, 1)
	u2 := enableVB(t, s, addr.Size4KB, 2)
	u3 := enableVB(t, s, addr.Size4KB, 3)
	i1, _ := s.Attach(1, u1, PermR)
	i2, _ := s.Attach(1, u2, PermR)
	s.Detach(1, u1)
	i3, _ := s.Attach(1, u3, PermR)
	if i3 != i1 {
		t.Fatalf("attach did not reuse slot %d, got %d", i1, i3)
	}
	if i2 == i3 {
		t.Fatal("slot collision")
	}
}

func TestAttachDisabledVB(t *testing.T) {
	s, _ := newTestSystem(t)
	if _, err := s.Attach(1, addr.MakeVBUID(addr.Size4KB, 9), PermR); err == nil {
		t.Fatal("attach of disabled VB accepted")
	}
}

func TestPermissionEnforcement(t *testing.T) {
	s, c := newTestSystem(t)
	u := enableVB(t, s, addr.Size128KB, 1)
	idx, _ := s.Attach(1, u, PermR) // read-only

	if _, err := c.Access(VAddr{idx, 0}, PermR); err != nil {
		t.Fatalf("read denied: %v", err)
	}
	_, err := c.Access(VAddr{idx, 0}, PermW)
	if !errors.Is(err, ErrNoPermission) {
		t.Fatalf("write allowed on read-only VB: %v", err)
	}
	_, err = c.Access(VAddr{idx, 0}, PermX)
	if !errors.Is(err, ErrNoPermission) {
		t.Fatalf("execute allowed on read-only VB: %v", err)
	}
}

func TestBoundsCheck(t *testing.T) {
	s, c := newTestSystem(t)
	u := enableVB(t, s, addr.Size4KB, 1)
	idx, _ := s.Attach(1, u, PermRWX)
	if _, err := c.Access(VAddr{idx, 4095}, PermR); err != nil {
		t.Fatalf("in-bounds access denied: %v", err)
	}
	_, err := c.Access(VAddr{idx, 4096}, PermR)
	if !errors.Is(err, ErrOutOfBounds) {
		t.Fatalf("out-of-bounds access: %v", err)
	}
}

func TestBadIndexFaults(t *testing.T) {
	s, c := newTestSystem(t)
	u := enableVB(t, s, addr.Size4KB, 1)
	idx, _ := s.Attach(1, u, PermR)
	if _, err := c.Access(VAddr{idx + 5, 0}, PermR); !errors.Is(err, ErrBadIndex) {
		t.Fatalf("bad index: %v", err)
	}
	s.Detach(1, u)
	if _, err := c.Access(VAddr{idx, 0}, PermR); !errors.Is(err, ErrInvalidEntry) {
		t.Fatalf("detached entry access: %v", err)
	}
}

func TestVBIAddressGeneration(t *testing.T) {
	s, c := newTestSystem(t)
	u := enableVB(t, s, addr.Size4MB, 7)
	idx, _ := s.Attach(1, u, PermR)
	ev, err := c.Access(VAddr{idx, 0x1234}, PermR)
	if err != nil {
		t.Fatal(err)
	}
	if ev.VBI != addr.Make(u, 0x1234) {
		t.Fatalf("VBI = %v, want %v", ev.VBI, addr.Make(u, 0x1234))
	}
}

func TestCVTCacheBehaviour(t *testing.T) {
	s, c := newTestSystem(t)
	u := enableVB(t, s, addr.Size128KB, 1)
	idx, _ := s.Attach(1, u, PermRW)
	ev, _ := c.Access(VAddr{idx, 0}, PermR)
	if ev.CVTCacheHit {
		t.Fatal("cold access hit the CVT cache")
	}
	if ev.CVTMemAccess == phys.NoAddr {
		t.Fatal("cold access did not fetch the CVT entry")
	}
	ev, _ = c.Access(VAddr{idx, 64}, PermR)
	if !ev.CVTCacheHit {
		t.Fatal("warm access missed the CVT cache")
	}
	// §4.3: with ≤ 48 VBs per program a 64-entry direct-mapped cache gives
	// a near-100% hit rate.
	for i := uint64(2); i < 48; i++ {
		v := enableVB(t, s, addr.Size128KB, i)
		s.Attach(1, v, PermRW)
	}
	c.Stats = CoreStats{}
	cvt, _ := s.CVT(1)
	for pass := 0; pass < 10; pass++ {
		for i := range cvt {
			if _, err := c.Access(VAddr{i, 0}, PermR); err != nil {
				t.Fatal(err)
			}
		}
	}
	hitRate := float64(c.Stats.CVTCacheHits) / float64(c.Stats.Accesses)
	if hitRate < 0.89 { // 47/470 misses are compulsory
		t.Fatalf("CVT cache hit rate = %.2f", hitRate)
	}
}

func TestCVTCacheInvalidatedOnClientSwitch(t *testing.T) {
	s, c := newTestSystem(t)
	s.RegisterClient(2)
	u := enableVB(t, s, addr.Size128KB, 1)
	i1, _ := s.Attach(1, u, PermRW)
	i2, _ := s.Attach(2, u, PermR)
	if i1 != i2 {
		t.Fatalf("indices differ: %d vs %d", i1, i2)
	}
	c.Access(VAddr{i1, 0}, PermW) // warm cache as client 1
	c.SwitchClient(2)
	// Client 2 only has read permission; a stale cached entry from client
	// 1 must not let the write through.
	if _, err := c.Access(VAddr{i2, 0}, PermW); !errors.Is(err, ErrNoPermission) {
		t.Fatalf("stale CVT cache let a write through: %v", err)
	}
}

func TestReplaceVBKeepsPointersValid(t *testing.T) {
	s, c := newTestSystem(t)
	old := enableVB(t, s, addr.Size128KB, 1)
	idx, _ := s.Attach(1, old, PermRW)
	if err := c.Store(VAddr{idx, 100}, []byte("before")); err != nil {
		t.Fatal(err)
	}
	// Promote to a 4 MB VB; the program's {index, offset} pointers are
	// untouched (§4.2.2).
	big := enableVB(t, s, addr.Size4MB, 1)
	if err := s.PromoteVB(old, big); err != nil {
		t.Fatal(err)
	}
	if err := s.ReplaceVB(1, idx, big); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 6)
	if err := c.Load(VAddr{idx, 100}, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "before" {
		t.Fatalf("data after promotion = %q", got)
	}
	// And the program can now use the grown portion.
	if err := c.Store(VAddr{idx, 2 << 20}, []byte("grown")); err != nil {
		t.Fatal(err)
	}
}

func TestCVTRelativeAddressing(t *testing.T) {
	s, c := newTestSystem(t)
	code := enableVB(t, s, addr.Size128KB, 1)
	data := enableVB(t, s, addr.Size128KB, 2)
	ci, _ := s.Attach(1, code, PermRX)
	if err := s.AttachAt(1, ci+1, data, PermRW); err != nil {
		t.Fatal(err)
	}
	// §4.4: shared-library references to static data use +1 CVT-relative
	// addressing.
	ref := VAddr{Index: ci, Offset: 0x40}
	if err := c.Store(ref.Rel(1), []byte("static")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 6)
	if err := c.Load(VAddr{ci + 1, 0x40}, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "static" {
		t.Fatalf("static data = %q", got)
	}
}

func TestTrueSharing(t *testing.T) {
	// §3.4: two clients attached to the same VB have a coherent view.
	s, c1 := newTestSystem(t)
	s.RegisterClient(2)
	c2 := NewCore(s)
	c2.SwitchClient(2)
	u := enableVB(t, s, addr.Size128KB, 1)
	i1, _ := s.Attach(1, u, PermRW)
	i2, _ := s.Attach(2, u, PermRW)

	if err := c1.Store(VAddr{i1, 0}, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4)
	if err := c2.Load(VAddr{i2, 0}, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "ping" {
		t.Fatalf("client 2 reads %q", got)
	}
	c2.Store(VAddr{i2, 0}, []byte("pong"))
	c1.Load(VAddr{i1, 0}, got)
	if string(got) != "pong" {
		t.Fatalf("client 1 reads %q", got)
	}
}

func TestFunctionalLoadStoreFetch(t *testing.T) {
	s, c := newTestSystem(t)
	code := enableVB(t, s, addr.Size4KB, 1)
	idx, _ := s.Attach(1, code, PermRWX)
	prog := []byte{0x90, 0x90, 0xC3}
	if err := c.Store(VAddr{idx, 0}, prog); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 3)
	if err := c.Fetch(VAddr{idx, 0}, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, prog) {
		t.Fatalf("fetch = %v", got)
	}
}

func TestAttachAtConflict(t *testing.T) {
	s, _ := newTestSystem(t)
	u := enableVB(t, s, addr.Size4KB, 1)
	v := enableVB(t, s, addr.Size4KB, 2)
	if err := s.AttachAt(1, 3, u, PermR); err != nil {
		t.Fatal(err)
	}
	if err := s.AttachAt(1, 3, v, PermR); err == nil {
		t.Fatal("AttachAt onto live entry accepted")
	}
	if err := s.AttachAt(1, -1, v, PermR); err == nil {
		t.Fatal("negative index accepted")
	}
}

func TestReleaseClient(t *testing.T) {
	s, c := newTestSystem(t)
	u := enableVB(t, s, addr.Size4KB, 1)
	idx, _ := s.Attach(1, u, PermR)
	s.Detach(1, u)
	s.ReleaseClient(1)
	if _, err := c.Access(VAddr{idx, 0}, PermR); !errors.Is(err, ErrUnknownClient) {
		t.Fatalf("access after release: %v", err)
	}
	if _, err := s.Attach(1, u, PermR); !errors.Is(err, ErrUnknownClient) {
		t.Fatalf("attach after release: %v", err)
	}
}

func TestPermString(t *testing.T) {
	if PermRWX.String() != "RWX" || PermR.String() != "R--" || Perm(0).String() != "---" {
		t.Fatal("Perm.String broken")
	}
}

func TestCVTEntryAddrDistinct(t *testing.T) {
	seen := map[phys.Addr]bool{}
	for c := ClientID(0); c < 4; c++ {
		for i := 0; i < 100; i++ {
			a := CVTEntryAddr(c, i)
			if seen[a] {
				t.Fatalf("CVT entry address collision at %v", a)
			}
			seen[a] = true
		}
	}
}
